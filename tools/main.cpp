/**
 * @file
 * Entry point of the dlrmopt CLI.
 */

#include <iostream>

#include "cli.hpp"

int
main(int argc, char **argv)
{
    const auto args = dlrmopt::cli::parseArgs(argc, argv);
    return dlrmopt::cli::run(args, std::cout, std::cerr);
}
