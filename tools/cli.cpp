#include "cli.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "core/autotune.hpp"
#include "core/simd.hpp"
#include "core/dlrm.hpp"
#include "core/embedding_store.hpp"
#include "core/errors.hpp"
#include "core/hot_tier.hpp"
#include "core/quant.hpp"
#include "core/snapshot.hpp"
#include "core/versioned.hpp"
#include "platform/report.hpp"
#include "sched/topology.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/fleet.hpp"
#include "serve/loadgen.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "trace/stats.hpp"

namespace dlrmopt::cli
{

std::string
ParsedArgs::get(const std::string& key, const std::string& fallback) const
{
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
}

long
ParsedArgs::getInt(const std::string& key, long fallback) const
{
    const auto it = options.find(key);
    if (it == options.end())
        return fallback;
    try {
        std::size_t pos = 0;
        const long v = std::stol(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing garbage");
        return v;
    } catch (const std::exception&) {
        throw std::invalid_argument("--" + key +
                                    " wants an integer, got '" +
                                    it->second + "'");
    }
}

double
ParsedArgs::getDouble(const std::string& key, double fallback) const
{
    const auto it = options.find(key);
    if (it == options.end())
        return fallback;
    try {
        std::size_t pos = 0;
        const double v = std::stod(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing garbage");
        return v;
    } catch (const std::exception&) {
        throw std::invalid_argument("--" + key +
                                    " wants a number, got '" +
                                    it->second + "'");
    }
}

ParsedArgs
parseArgs(int argc, const char *const *argv)
{
    ParsedArgs out;
    int i = 1;
    if (i < argc && argv[i][0] != '-')
        out.command = argv[i++];
    for (; i < argc; ++i) {
        const std::string tok = argv[i];
        if (tok.rfind("--", 0) == 0) {
            const std::string key = tok.substr(2);
            if (key.empty())
                throw std::invalid_argument("empty option name");
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                out.options[key] = argv[++i];
            } else {
                out.options[key] = "1";
            }
        } else {
            out.positional.push_back(tok);
        }
    }
    return out;
}

traces::Hotness
parseHotness(const std::string& v)
{
    if (v == "low")
        return traces::Hotness::Low;
    if (v == "medium")
        return traces::Hotness::Medium;
    if (v == "high")
        return traces::Hotness::High;
    if (v == "random")
        return traces::Hotness::Random;
    if (v == "one-item")
        return traces::Hotness::OneItem;
    throw std::invalid_argument("unknown hotness '" + v + "'");
}

core::Scheme
parseScheme(const std::string& v)
{
    if (v == "baseline")
        return core::Scheme::Baseline;
    if (v == "hwpf-off")
        return core::Scheme::HwPfOff;
    if (v == "swpf")
        return core::Scheme::SwPf;
    if (v == "dpht")
        return core::Scheme::DpHt;
    if (v == "mpht")
        return core::Scheme::MpHt;
    if (v == "integrated")
        return core::Scheme::Integrated;
    throw std::invalid_argument("unknown scheme '" + v + "'");
}

platform::EvalConfig
buildEvalConfig(const ParsedArgs& args)
{
    platform::EvalConfig cfg;
    cfg.cpu = platform::cpuByName(args.get("cpu", "CSL"));
    cfg.model = core::modelByName(args.get("model", "rm2_1"));
    cfg.hotness = parseHotness(args.get("hotness", "low"));
    cfg.scheme = parseScheme(args.get("scheme", "baseline"));
    cfg.cores =
        static_cast<std::size_t>(args.getInt("cores", 1));
    cfg.numBatches =
        static_cast<std::size_t>(args.getInt("batches", 0));
    cfg.maxSimTables =
        static_cast<std::size_t>(args.getInt("sim-tables", 24));
    cfg.pfDistance = static_cast<int>(args.getInt("pf-distance", 4));
    cfg.pfAmount = static_cast<int>(args.getInt("pf-amount", -1));
    const std::string hint = args.get("pf-hint", "T0");
    if (hint != "T0" && hint != "T1" && hint != "T2")
        throw std::invalid_argument("--pf-hint wants T0|T1|T2, got '" +
                                    hint + "'");
    cfg.pfLocality = hint == "T0" ? 3 : hint == "T1" ? 2 : 1;
    cfg.seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    if (cfg.cores == 0 || cfg.cores > cfg.cpu.totalCores())
        throw std::invalid_argument("--cores must be 1.." +
                                    std::to_string(
                                        cfg.cpu.totalCores()));
    if (cfg.pfDistance < 0 || (cfg.pfAmount < 0 && cfg.pfAmount != -1)) {
        throw std::invalid_argument(
            "--pf-distance/--pf-amount must be >= 0 (-1 amount = "
            "platform default)");
    }
    core::PrefetchSpec{cfg.pfDistance,
                       cfg.pfAmount >= 0 ? cfg.pfAmount : 0,
                       cfg.pfLocality}
        .validate();
    return cfg;
}

namespace
{

/**
 * Parses the shared --dtype option (default fp32). parseEmbDtype
 * rejects unknown words; quantized serving sessions additionally
 * attach the matching reduced-precision store via attachQuantized.
 */
core::EmbDtype
parseDtypeOption(const ParsedArgs& args)
{
    return core::parseEmbDtype(args.get("dtype", "fp32"));
}

/**
 * Attaches a freshly quantized store of @p dtype to @p model so the
 * session's fused-dequant bags read real reduced-precision bytes
 * instead of falling back to fp32 storage. No-op for fp32.
 */
void
attachQuantized(core::DlrmModel& model, const core::ModelConfig& cfg,
                std::uint64_t seed, core::EmbDtype dtype)
{
    if (dtype == core::EmbDtype::Fp32)
        return;
    model.attachQuantizedStore(
        core::EmbeddingStore::create(cfg, seed, 256, dtype));
}

/**
 * Builds the hot tier the shared --cache-budget option asks for (null
 * when the option is absent or zero): a HotTierCache over the store
 * the session's serving precision reads, sized from the byte budget.
 */
std::shared_ptr<core::HotTierCache>
makeHotTier(const core::DlrmModel& model, core::EmbDtype dtype,
            const ParsedArgs& args)
{
    const double budget = args.getDouble("cache-budget", 0.0);
    if (!(budget > 0.0))
        return nullptr;
    core::HotTierConfig hc;
    hc.budgetBytes = static_cast<std::size_t>(budget);
    hc.epochLookups = static_cast<std::size_t>(
        args.getInt("cache-epoch-lookups", 20'000));
    hc.minAccesses = static_cast<std::uint32_t>(
        args.getInt("cache-min-accesses", 2));
    hc.validate();
    return std::make_shared<core::HotTierCache>(
        model.sharedStoreFor(dtype), hc);
}

/** One-line tier report ("hit 93.2% | resident 4096/4096 rows ..."). */
std::string
tierSummary(const core::HotTierCache& tier)
{
    const core::HotTierStats s = tier.stats();
    char buf[192];
    std::snprintf(
        buf, sizeof(buf),
        "hit %.1f%% | resident %zu/%zu rows (%.1f%% of budget) | "
        "promoted %llu demoted %llu epochs %llu",
        100.0 * s.hitRate(), s.residentRows, s.capacityRows,
        100.0 * s.occupancy(),
        static_cast<unsigned long long>(s.promotions),
        static_cast<unsigned long long>(s.demotions),
        static_cast<unsigned long long>(s.epochs));
    return buf;
}

void
printResultText(std::ostream& out, const platform::EvalConfig& cfg,
                const platform::EvalResult& r)
{
    out << cfg.cpu.name << " / " << cfg.model.name << " / "
        << traces::hotnessName(cfg.hotness) << " / "
        << core::schemeName(cfg.scheme) << " / " << cfg.cores
        << " core(s)\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "batch %.3f ms (bottom %.3f, emb %.3f, inter %.3f, "
                  "top %.3f)\n",
                  r.batchMs, r.stages.bottom, r.stages.emb,
                  r.stages.inter, r.stages.top);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "L1D hit %.3f, load latency %.1f cy, DRAM util "
                  "%.2f, %.1f GB/s\n",
                  r.sim.vtuneL1HitRate(), r.embTiming.avgLoadLatency,
                  r.embTiming.dramUtilization,
                  r.embTiming.achievedGBs);
    out << buf;
}

void
emit(std::ostream& out, const std::string& format,
     const platform::EvalConfig& cfg, const platform::EvalResult& r,
     bool first_row)
{
    if (format == "json") {
        out << platform::toJson(cfg, r) << "\n";
    } else if (format == "csv") {
        if (first_row)
            out << platform::csvHeader();
        platform::writeCsvRow(out, cfg, r);
    } else {
        printResultText(out, cfg, r);
    }
}

int
cmdModels(std::ostream& out)
{
    for (const auto& m : core::allModels()) {
        char buf[200];
        std::snprintf(buf, sizeof(buf),
                      "%-7s %5zu tables x %8zu rows x dim %3zu, %3zu "
                      "lookups, %.1f GB, SLA %.0f ms\n",
                      m.name.c_str(), m.tables, m.rows, m.dim,
                      m.lookups, m.embeddingBytes() / (1u << 30),
                      m.slaMs());
        out << buf;
    }
    return 0;
}

int
cmdPlatforms(std::ostream& out)
{
    for (const auto& c : platform::allCpus()) {
        char buf[220];
        std::snprintf(
            buf, sizeof(buf),
            "%-5s %2zu cores x %zu sockets @ %.2f GHz, LLC %5.1f MB, "
            "%3.0f GB/s/socket, ROB %3zu, pf amount %d\n",
            c.name.c_str(), c.cores, c.sockets, c.freqGHz,
            c.l3.sizeBytes / (1024.0 * 1024.0), c.dramBandwidthGBs,
            c.robSize, c.bestPfAmount);
        out << buf;
    }
    return 0;
}

int
cmdEvaluate(const ParsedArgs& args, std::ostream& out)
{
    const auto cfg = buildEvalConfig(args);
    const auto res = platform::evaluate(cfg);
    emit(out, args.get("format", "text"), cfg, res, true);
    return 0;
}

int
cmdSweep(const ParsedArgs& args, std::ostream& out, std::ostream& err)
{
    const std::string axis = args.get("vary", "scheme");
    auto cfg = buildEvalConfig(args);
    const std::string format = args.get("format", "csv");

    bool first = true;
    auto point = [&](platform::EvalConfig c) {
        emit(out, format, c, platform::evaluate(c), first);
        first = false;
    };

    if (axis == "scheme") {
        for (auto s : core::allSchemes) {
            cfg.scheme = s;
            point(cfg);
        }
    } else if (axis == "hotness") {
        for (auto h : {traces::Hotness::High, traces::Hotness::Medium,
                       traces::Hotness::Low}) {
            cfg.hotness = h;
            point(cfg);
        }
    } else if (axis == "cores") {
        for (std::size_t c : {std::size_t(1), std::size_t(2),
                              std::size_t(4), std::size_t(8),
                              std::size_t(16), std::size_t(24)}) {
            if (c > cfg.cpu.totalCores())
                break;
            cfg.cores = c;
            cfg.numBatches = 0;
            point(cfg);
        }
    } else if (axis == "distance") {
        for (int d : {1, 2, 4, 8, 16}) {
            cfg.pfDistance = d;
            point(cfg);
        }
    } else if (axis == "amount") {
        for (int a : {1, 2, 4, 8}) {
            cfg.pfAmount = a;
            point(cfg);
        }
    } else {
        err << "unknown sweep axis '" << axis
            << "' (scheme|hotness|cores|distance|amount)\n";
        return 2;
    }
    return 0;
}

int
cmdTrace(const ParsedArgs& args, std::ostream& out, std::ostream& err)
{
    const std::string sub =
        args.positional.empty() ? "" : args.positional.front();
    if (sub == "gen") {
        traces::TraceConfig tc;
        tc.rows = static_cast<std::size_t>(
            args.getInt("rows", 100'000));
        tc.tables =
            static_cast<std::size_t>(args.getInt("tables", 8));
        tc.lookups =
            static_cast<std::size_t>(args.getInt("lookups", 32));
        tc.batchSize = static_cast<std::size_t>(
            args.getInt("batch-size", 64));
        tc.numBatches = static_cast<std::size_t>(
            args.getInt("batches", 16));
        tc.hotness = parseHotness(args.get("hotness", "medium"));
        tc.seed =
            static_cast<std::uint64_t>(args.getInt("seed", 1));
        const std::string path = args.get("out", "trace.bin");

        traces::TraceGenerator gen(tc);
        std::vector<core::SparseBatch> batches;
        for (std::size_t b = 0; b < tc.numBatches; ++b)
            batches.push_back(gen.batch(b));
        traces::saveTrace(path, batches);
        out << "wrote " << batches.size() << " batches ("
            << tc.tables << " tables x " << tc.batchSize << " x "
            << tc.lookups << " lookups) to " << path << "\n";
        return 0;
    }
    if (sub == "info") {
        if (args.positional.size() < 2) {
            err << "trace info <file>\n";
            return 2;
        }
        const auto batches = traces::loadTrace(args.positional[1]);
        out << batches.size() << " batches\n";
        if (batches.empty())
            return 0;
        out << batches.front().numTables() << " tables, batch size "
            << batches.front().batchSize << "\n";
        std::vector<RowIndex> stream;
        for (const auto& b : batches) {
            stream.insert(stream.end(), b.indices[0].begin(),
                          b.indices[0].end());
        }
        const auto st = traces::computeAccessStats(stream);
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "table 0: %llu accesses, %.1f%% unique, "
                      "top-1024 rows carry %.1f%%\n",
                      static_cast<unsigned long long>(
                          st.totalAccesses),
                      100.0 * st.uniqueFraction(),
                      100.0 * st.topKShare(1024));
        out << buf;
        return 0;
    }
    err << "trace gen|info [options]\n";
    return 2;
}

int
cmdTune(const ParsedArgs& args, std::ostream& out)
{
    const std::size_t rows = static_cast<std::size_t>(
        args.getInt("rows", 262'144));
    const std::size_t dim =
        static_cast<std::size_t>(args.getInt("dim", 128));
    const std::size_t samples =
        static_cast<std::size_t>(args.getInt("samples", 64));
    const std::size_t lookups =
        static_cast<std::size_t>(args.getInt("lookups", 64));

    out << "building " << rows << " x " << dim
        << " table and tuning on this host...\n";
    core::EmbeddingTable table(rows, dim, 7);
    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets = {0};
    for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t l = 0; l < lookups; ++l) {
            indices.push_back(static_cast<RowIndex>(
                mix64(s * 7919 + l) % rows));
        }
        offsets.push_back(static_cast<RowIndex>(indices.size()));
    }
    const auto res = core::tunePrefetch(
        table, indices.data(), offsets.data(), samples, {},
        static_cast<int>(args.getInt("repeats", 3)));

    char buf[160];
    for (const auto& m : res.measurements) {
        std::snprintf(buf, sizeof(buf),
                      "  distance %2d, %d lines: %8.3f ms\n",
                      m.spec.distance, m.spec.lines, m.millis);
        out << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "baseline %.3f ms; best %s (distance %d, %d lines) "
                  "%.3f ms -> %.2fx\n",
                  res.baselineMs,
                  res.best.enabled() ? "spec" : "baseline",
                  res.best.distance, res.best.lines, res.bestMs,
                  res.speedup());
    out << buf;
    return 0;
}

int
cmdGemmTune(const ParsedArgs& args, std::ostream& out)
{
    // Sweeps register-blocking tiles for every MLP layer shape of the
    // chosen model across the coalesced-batch buckets, installs the
    // winners in the process-wide GemmTileCache, and reports each
    // point's speedup over the scalar blocked baseline kernel.
    const auto model = core::modelByName(args.get("model", "rm2_1"));
    const int repeats =
        static_cast<int>(args.getInt("repeats", 3));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    if (repeats < 1)
        throw std::invalid_argument("--repeats must be >= 1");
    const core::EmbDtype dtype = parseDtypeOption(args);
    if (dtype == core::EmbDtype::Bf16) {
        throw std::invalid_argument(
            "--dtype bf16: bf16 is an embedding-storage format; the "
            "MLPs run the fp32 GEMM engine for it — tune fp32 or "
            "int8");
    }

    std::vector<std::size_t> batches;
    if (args.has("m")) {
        const long m = args.getInt("m", 0);
        if (m < 1)
            throw std::invalid_argument("--m must be >= 1");
        batches.push_back(static_cast<std::size_t>(m));
    } else if (args.has("quick")) {
        batches = {1, 16};
    }

    const auto level = core::currentSimdLevel();
    out << model.name << " MLP tile autotune ("
        << core::embDtypeName(dtype) << ") @ "
        << core::simdLevelName(level) << " (panel width "
        << core::PackedWeights::panelWidth << ", max microtile rows "
        << core::gemmMaxRows(level) << ")\n";
    out << "    m   layer shape        best tile      packed ms  "
           "blocked ms  speedup\n";

    double prod = 1.0;
    std::size_t points = 0;
    for (const bool bottom : {true, false}) {
        const auto dims =
            bottom ? model.bottomMlp : model.topMlpDims();
        const auto results =
            core::tuneMlpGemm(dims, batches, repeats, seed, dtype);
        for (const auto& r : results) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "  %4zu  %6zu x %-6zu  mr %zu kc %-6zu "
                          "%9.4f  %10.4f  %6.2fx\n",
                          r.batch, r.inDim, r.outDim, r.best.mr,
                          r.best.kc, r.bestMs, r.baselineMs,
                          r.speedup());
            out << buf;
            prod *= r.speedup();
            ++points;
        }
    }
    if (points > 0) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "%zu tile(s) installed; geomean speedup over "
                      "scalar blocked baseline %.2fx\n",
                      core::GemmTileCache::instance().size(),
                      std::pow(prod, 1.0 / static_cast<double>(points)));
        out << buf;
    }
    return 0;
}

int
cmdServe(const ParsedArgs& args, std::ostream& out)
{
    // A scaled-down Table 2 model that really executes on this host.
    const auto base = core::modelByName(args.get("model", "rm2_1"));
    const double max_bytes =
        args.getDouble("max-bytes", 64.0 * (1u << 20));
    const auto cfg_model = base.scaledToFit(max_bytes);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));

    serve::ServerConfig scfg;
    scfg.slaMs = args.getDouble("sla", 25.0);
    scfg.service = serve::ServiceModel::constant(
        args.getDouble("service-ms", 1.0));
    scfg.admission = !args.has("no-admission");
    scfg.maxRetries =
        static_cast<std::size_t>(args.getInt("retries", 2));
    scfg.dtype = parseDtypeOption(args);

    serve::FaultConfig fc;
    fc.seed = seed;
    fc.taskExceptionRate =
        args.getDouble("fault-exception-rate", 0.0);
    fc.allocFailureRate = args.getDouble("fault-alloc-rate", 0.0);
    fc.corruptIndexRate = args.getDouble("fault-corrupt-rate", 0.0);
    fc.stragglerCore =
        static_cast<int>(args.getInt("fault-straggler-core", -1));
    fc.stragglerFactor =
        args.getDouble("fault-straggler-factor", 1.0);
    const serve::FaultInjector inj(fc);

    const std::size_t cores =
        static_cast<std::size_t>(args.getInt("cores", 2));
    const std::size_t requests =
        static_cast<std::size_t>(args.getInt("requests", 200));
    const double arrival_ms = args.getDouble("arrival-ms", 2.0);
    if (cores == 0)
        throw std::invalid_argument("--cores must be >= 1");
    if (requests == 0)
        throw std::invalid_argument("--requests must be >= 1");

    traces::TraceConfig tc = traces::TraceConfig::forModel(
        cfg_model, parseHotness(args.get("hotness", "medium")), seed);
    tc.batchSize = static_cast<std::size_t>(
        args.getInt("batch-size", 16));
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 16; ++b)
        batches.push_back(gen.batch(b));

    core::DlrmModel model(cfg_model, seed);
    attachQuantized(model, cfg_model, seed, scfg.dtype);
    core::Tensor dense(tc.batchSize, cfg_model.denseDim());
    dense.randomize(seed + 1);

    const auto arrivals =
        serve::PoissonLoadGen(arrival_ms, seed).arrivals(requests);
    const auto hot_tier = makeHotTier(model, scfg.dtype, args);

    out << cfg_model.name << " scaled to "
        << model.embeddingBytes() / (1u << 20) << " MB embeddings, "
        << cores << " core(s), SLA " << scfg.slaMs << " ms, mean "
        << "interarrival " << arrival_ms << " ms, precision "
        << core::embDtypeName(scfg.dtype) << "\n";
    if (hot_tier) {
        out << "hot tier: " << hot_tier->capacityRows()
            << " row budget\n";
    }

    const auto topo = sched::Topology::synthetic(cores, 2);
    {
        serve::Server srv(model, topo, scfg, &inj);
        if (hot_tier)
            srv.attachHotTier(hot_tier);
        const auto st = srv.serve(dense, batches, arrivals);
        out << "baseline    " << st.summary() << "\n";
    }
    {
        serve::ServerConfig dcfg = scfg;
        dcfg.degrade.enabled = true;
        serve::Server srv(model, topo, dcfg, &inj);
        if (hot_tier)
            srv.attachHotTier(hot_tier);
        const auto st = srv.serve(dense, batches, arrivals);
        out << "degradation " << st.summary() << "\n";
    }
    if (hot_tier)
        out << "hot tier    " << tierSummary(*hot_tier) << "\n";
    return 0;
}

int
cmdRouter(const ParsedArgs& args, std::ostream& out)
{
    // Same scaled-down real-execution setup as `serve`, but fronted
    // by a Router: one shared EmbeddingStore, N replica instances
    // over disjoint core groups, the same Poisson stream for every
    // configuration so the comparison is apples to apples.
    const auto base = core::modelByName(args.get("model", "rm2_1"));
    const double max_bytes =
        args.getDouble("max-bytes", 64.0 * (1u << 20));
    const auto cfg_model = base.scaledToFit(max_bytes);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));

    serve::RouterConfig rcfg;
    rcfg.server.slaMs = args.getDouble("sla", 25.0);
    rcfg.server.service = serve::ServiceModel::constant(
        args.getDouble("service-ms", 1.0));
    rcfg.server.admission = !args.has("no-admission");
    rcfg.server.maxRetries =
        static_cast<std::size_t>(args.getInt("retries", 2));
    rcfg.seed = seed;
    rcfg.maxFailovers =
        static_cast<std::size_t>(args.getInt("failovers", 1));

    const std::size_t cores =
        static_cast<std::size_t>(args.getInt("cores", 4));
    const std::size_t instances =
        static_cast<std::size_t>(args.getInt("instances", 2));
    const std::size_t requests =
        static_cast<std::size_t>(args.getInt("requests", 400));
    const double arrival_ms = args.getDouble("arrival-ms", 1.0);
    if (cores == 0)
        throw std::invalid_argument("--cores must be >= 1");
    if (instances == 0 || instances > cores) {
        throw std::invalid_argument("--instances must be 1..cores");
    }
    if (requests == 0)
        throw std::invalid_argument("--requests must be >= 1");
    const std::string policy = args.get("policy", "all");
    if (policy != "all")
        serve::parseRoutePolicy(policy); // fail fast on typos

    traces::TraceConfig tc = traces::TraceConfig::forModel(
        cfg_model, parseHotness(args.get("hotness", "medium")), seed);
    tc.batchSize = static_cast<std::size_t>(
        args.getInt("batch-size", 16));
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 16; ++b)
        batches.push_back(gen.batch(b));

    const auto store = core::EmbeddingStore::create(cfg_model, seed);
    core::Tensor dense(tc.batchSize, cfg_model.denseDim());
    dense.randomize(seed + 1);
    const auto arrivals =
        serve::PoissonLoadGen(arrival_ms, seed).arrivals(requests);
    const auto topo = sched::Topology::synthetic(cores, 2);

    out << cfg_model.name << " scaled to "
        << store->bytes() / (1u << 20)
        << " MB embeddings (one shared store), " << cores
        << " core(s), SLA " << rcfg.server.slaMs << " ms, mean "
        << "interarrival " << arrival_ms << " ms, " << requests
        << " requests\n";

    // Optional straggler instance for exercising health routing.
    const int straggler_inst =
        static_cast<int>(args.getInt("straggler-instance", -1));
    serve::FaultConfig fc;
    fc.seed = seed;
    fc.stragglerCore = 0; // local core 0 of the afflicted instance
    fc.stragglerFactor = args.getDouble("straggler-factor", 4.0);
    const serve::FaultInjector straggler(fc);
    std::vector<const serve::FaultInjector *> faults(instances,
                                                     nullptr);
    if (straggler_inst >= 0 &&
        straggler_inst < static_cast<int>(instances)) {
        faults[static_cast<std::size_t>(straggler_inst)] = &straggler;
        out << "straggler: instance " << straggler_inst << " x"
            << fc.stragglerFactor << "\n";
    }

    const auto report = [&](const std::string& label,
                            const serve::RouterStats& st) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%8.1f req/s | ",
                      st.makespanMs > 0.0
                          ? 1000.0 * static_cast<double>(
                                st.total.served) / st.makespanMs
                          : 0.0);
        out << label << buf << st.summary() << "\n";
    };

    {
        serve::RouterConfig single = rcfg;
        single.instances = 1;
        serve::Router router(cfg_model, store, topo, single);
        report("1 instance            ", router.serve(dense, batches,
                                                      arrivals));
    }
    for (const auto p :
         {serve::RoutePolicy::RoundRobin, serve::RoutePolicy::PowerOfTwo,
          serve::RoutePolicy::HealthAware}) {
        if (policy != "all" && serve::parseRoutePolicy(policy) != p)
            continue;
        serve::RouterConfig multi = rcfg;
        multi.instances = instances;
        multi.policy = p;
        serve::Router router(cfg_model, store, topo, multi, faults);
        char label[48];
        std::snprintf(label, sizeof(label), "%zu instances %-7s ",
                      instances, serve::routePolicyName(p));
        report(label, router.serve(dense, batches, arrivals));
    }
    return 0;
}

int
cmdBatch(const ParsedArgs& args, std::ostream& out)
{
    // Unbatched vs. deadline-aware coalescing over the *same*
    // arrival stream, service model, and virtual clock, so the only
    // variable is the batching policy.
    const auto base = core::modelByName(args.get("model", "rm2_1"));
    const double max_bytes =
        args.getDouble("max-bytes", 64.0 * (1u << 20));
    const auto cfg_model = base.scaledToFit(max_bytes);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));

    const std::size_t cores =
        static_cast<std::size_t>(args.getInt("cores", 2));
    const std::size_t requests =
        static_cast<std::size_t>(args.getInt("requests", 400));
    const double arrival_ms = args.getDouble("arrival-ms", 0.6);
    if (cores == 0)
        throw std::invalid_argument("--cores must be >= 1");
    if (requests == 0)
        throw std::invalid_argument("--requests must be >= 1");

    traces::TraceConfig tc = traces::TraceConfig::forModel(
        cfg_model, parseHotness(args.get("hotness", "medium")), seed);
    tc.batchSize = static_cast<std::size_t>(
        args.getInt("batch-size", 16));
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 16; ++b)
        batches.push_back(gen.batch(b));

    core::DlrmModel model(cfg_model, seed);
    core::Tensor dense(tc.batchSize, cfg_model.denseDim());
    dense.randomize(seed + 1);

    serve::ServerConfig scfg;
    scfg.slaMs = args.getDouble("sla", 25.0);
    scfg.maxRetries =
        static_cast<std::size_t>(args.getInt("retries", 2));
    scfg.dtype = parseDtypeOption(args);
    attachQuantized(model, cfg_model, seed, scfg.dtype);
    if (args.has("calibrate")) {
        // Fit {base, per-sample} from real kernel timings on this
        // host instead of assuming a flat per-request cost.
        scfg.service = serve::calibrateServiceModel(
            model, dense, batches.front(), {1, 4, 16, tc.batchSize});
    } else {
        scfg.service.baseMs = args.getDouble("service-base-ms", 0.5);
        scfg.service.perSampleMs =
            args.getDouble("service-per-sample-ms", 0.05);
    }

    const auto arrivals =
        serve::PoissonLoadGen(arrival_ms, seed).arrivals(requests);
    const auto topo = sched::Topology::synthetic(cores, 2);
    const auto hot_tier = makeHotTier(model, scfg.dtype, args);

    char mb[96];
    std::snprintf(mb, sizeof(mb),
                  "service = %.4f + %.4f*samples ms",
                  scfg.service.baseMs, scfg.service.perSampleMs);
    out << cfg_model.name << " scaled to "
        << model.embeddingBytes() / (1u << 20) << " MB embeddings, "
        << cores << " core(s), SLA " << scfg.slaMs << " ms, mean "
        << "interarrival " << arrival_ms << " ms, precision "
        << core::embDtypeName(scfg.dtype) << ", " << mb << "\n";
    if (hot_tier) {
        out << "hot tier: " << hot_tier->capacityRows()
            << " row budget\n";
    }

    const auto report = [&](const std::string& label,
                            const serve::ServeStats& st) {
        char buf[192];
        std::snprintf(
            buf, sizeof(buf),
            "%7.1f req/s | p50 %6.2f p95 %6.2f p99 %6.2f ms | ",
            st.makespanMs > 0.0
                ? 1000.0 * static_cast<double>(st.served) /
                      st.makespanMs
                : 0.0,
            st.latency.percentile(50.0), st.latency.p95(),
            st.latency.p99());
        out << label << buf << st.summary() << "\n";
    };

    {
        serve::Server srv(model, topo, scfg);
        if (hot_tier)
            srv.attachHotTier(hot_tier);
        report("unbatched       ",
               srv.serve(dense, batches, arrivals));
    }
    serve::ServerConfig bcfg = scfg;
    bcfg.batching.enabled = true;
    bcfg.batching.maxRequests = static_cast<std::size_t>(
        args.getInt("max-requests", 8));
    for (const double linger :
         {0.0, args.getDouble("linger-ms", 1.0)}) {
        bcfg.batching.maxLingerMs = linger;
        serve::Server srv(model, topo, bcfg);
        if (hot_tier)
            srv.attachHotTier(hot_tier);
        char label[48];
        std::snprintf(label, sizeof(label),
                      "batch %zu @ %.1fms ",
                      bcfg.batching.maxRequests, linger);
        report(label, srv.serve(dense, batches, arrivals));
    }
    if (args.has("streamed")) {
        // Stage-pipelined dispatch over the same stream: gather of
        // dispatch k+1 overlaps compute of dispatch k on split core
        // groups (needs >= 2 cores for real overlap).
        serve::ServerConfig pcfg = bcfg;
        pcfg.batching.maxLingerMs = args.getDouble("linger-ms", 1.0);
        pcfg.streamed = true;
        pcfg.gatherFraction =
            args.getDouble("gather-fraction", 0.5);
        serve::Server srv(model, topo, pcfg);
        if (hot_tier)
            srv.attachHotTier(hot_tier);
        char label[48];
        std::snprintf(label, sizeof(label),
                      "streamed %zu g=%.2f ",
                      pcfg.batching.maxRequests, pcfg.gatherFraction);
        report(label, srv.serve(dense, batches, arrivals));
    }
    if (hot_tier)
        out << "hot tier        " << tierSummary(*hot_tier) << "\n";
    return 0;
}

int
cmdCache(const ParsedArgs& args, std::ostream& out)
{
    // Hot-tier inspection: builds a scaled Table-2 model, sizes a
    // pinned hot tier from --cache-budget over the chosen precision's
    // store, and for each hotness class (a) measures the class's row
    // popularity from real generated batches into the trace-side
    // AccessAccumulator, (b) replays those counts into the tier's
    // admission counters and runs a promotion epoch, then (c) serves
    // batches through the tiered embedding stage and reports the
    // class's hit rate next to occupancy and promotion/demotion
    // totals. The per-class loop doubles as a drift demo: each class
    // rotates the hot set and the epoch re-converges the tier.
    const auto base = core::modelByName(args.get("model", "rm2_1"));
    const double max_bytes =
        args.getDouble("max-bytes", 16.0 * (1u << 20));
    const auto cfg_model = base.scaledToFit(max_bytes);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    const core::EmbDtype dtype = parseDtypeOption(args);

    core::DlrmModel model(cfg_model, seed);
    attachQuantized(model, cfg_model, seed, dtype);
    const auto& store = model.sharedStoreFor(dtype);

    core::HotTierConfig hc;
    hc.budgetBytes = static_cast<std::size_t>(
        args.getDouble("cache-budget", 4.0 * (1u << 20)));
    hc.minAccesses = static_cast<std::uint32_t>(
        args.getInt("cache-min-accesses", 2));
    hc.validate();
    core::HotTierCache tier(store, hc);

    const std::size_t batch_size = static_cast<std::size_t>(
        args.getInt("batch-size", 16));
    const std::size_t warm_n =
        static_cast<std::size_t>(args.getInt("warm-batches", 8));
    const std::size_t measure_n =
        static_cast<std::size_t>(args.getInt("batches", 16));
    if (measure_n == 0)
        throw std::invalid_argument("--batches must be >= 1");

    char buf[224];
    std::snprintf(
        buf, sizeof(buf),
        "%s scaled to %zu MB embeddings (%s), tier budget %.1f MB = "
        "%zu rows (%zu-byte slots, %zu blocks)\n",
        cfg_model.name.c_str(),
        static_cast<std::size_t>(store->bytes() / (1u << 20)),
        core::embDtypeName(dtype).c_str(),
        static_cast<double>(hc.budgetBytes) / (1u << 20),
        tier.capacityRows(), tier.slotStride(), tier.numBlocks());
    out << buf;

    core::Tensor emb_out(cfg_model.tables,
                         batch_size * cfg_model.dim);
    const core::PrefetchSpec pf = core::PrefetchSpec::paperDefault();

    out << "class    hit rate   resident        promoted  demoted\n";
    for (const auto h :
         {traces::Hotness::High, traces::Hotness::Medium,
          traces::Hotness::Low}) {
        traces::TraceConfig tc =
            traces::TraceConfig::forModel(cfg_model, h, seed);
        tc.batchSize = batch_size;
        traces::TraceGenerator gen(tc);

        // (a) + (b): measured hotness feeds admission, one epoch
        // promotes — the offline mirror of the serving path's online
        // counters.
        traces::AccessAccumulator acc(store->numTables(),
                                      store->rows());
        for (std::size_t b = 0; b < warm_n; ++b)
            acc.observeBatch(gen.batch(b));
        for (const auto& [t, row] : acc.hottest(tier.capacityRows())) {
            tier.recordAccess(t, row,
                              static_cast<std::uint32_t>(
                                  acc.count(t, row)));
        }
        tier.endEpoch();

        // (c): serve through the tiered embedding stage.
        const core::HotTierStats before = tier.stats();
        for (std::size_t b = 0; b < measure_n; ++b) {
            model.embeddingForward(gen.batch(warm_n + b), emb_out, pf,
                                   dtype, &tier);
        }
        const core::HotTierStats after = tier.stats();
        const std::uint64_t hits = after.hits - before.hits;
        const std::uint64_t misses = after.misses - before.misses;
        std::snprintf(
            buf, sizeof(buf),
            "%-8s %7.1f%%   %6zu/%zu    %8llu %8llu\n",
            traces::hotnessName(h).c_str(),
            hits + misses
                ? 100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses)
                : 0.0,
            after.residentRows, after.capacityRows,
            static_cast<unsigned long long>(after.promotions),
            static_cast<unsigned long long>(after.demotions));
        out << buf;
    }
    out << "total: " << tierSummary(tier) << "\n";
    return 0;
}

int
cmdChaos(const ParsedArgs& args, std::ostream& out)
{
    // Replays scripted fault timelines (instance crashes, corruption
    // bursts, flapping stragglers) against the routed cluster, twice
    // per scenario over the same arrival stream: once with every
    // resilience feature off (baseline) and once with circuit
    // breakers, hedged failover, and integrity repair on. Each run
    // gets a fresh store so corruption never leaks across runs.
    const auto base = core::modelByName(args.get("model", "rm2_1"));
    const double max_bytes =
        args.getDouble("max-bytes", 64.0 * (1u << 20));
    const auto cfg_model = base.scaledToFit(max_bytes);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));

    serve::RouterConfig rcfg;
    rcfg.server.slaMs = args.getDouble("sla", 25.0);
    rcfg.server.service = serve::ServiceModel::constant(
        args.getDouble("service-ms", 1.0));
    rcfg.server.admission = !args.has("no-admission");
    rcfg.server.maxRetries =
        static_cast<std::size_t>(args.getInt("retries", 2));
    rcfg.seed = seed;
    rcfg.maxFailovers =
        static_cast<std::size_t>(args.getInt("failovers", 1));
    rcfg.policy = serve::parseRoutePolicy(args.get("policy", "rr"));
    rcfg.probationMs = args.getDouble("probation-ms", 5.0);

    const std::size_t cores =
        static_cast<std::size_t>(args.getInt("cores", 4));
    const std::size_t instances =
        static_cast<std::size_t>(args.getInt("instances", 2));
    const std::size_t requests =
        static_cast<std::size_t>(args.getInt("requests", 400));
    const double arrival_ms = args.getDouble("arrival-ms", 1.0);
    if (cores == 0)
        throw std::invalid_argument("--cores must be >= 1");
    if (instances < 2 || instances > cores) {
        throw std::invalid_argument("--instances must be 2..cores");
    }
    if (requests == 0)
        throw std::invalid_argument("--requests must be >= 1");

    std::vector<std::string> scenarios;
    const std::string which = args.get("scenario", "all");
    if (which == "all") {
        scenarios = serve::FaultSchedule::scenarioNames();
    } else {
        scenarios.push_back(which);
    }

    traces::TraceConfig tc = traces::TraceConfig::forModel(
        cfg_model, parseHotness(args.get("hotness", "medium")), seed);
    tc.batchSize = static_cast<std::size_t>(
        args.getInt("batch-size", 16));
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 16; ++b)
        batches.push_back(gen.batch(b));

    core::Tensor dense(tc.batchSize, cfg_model.denseDim());
    dense.randomize(seed + 1);
    const auto arrivals =
        serve::PoissonLoadGen(arrival_ms, seed).arrivals(requests);
    const double session_ms = arrivals.back();
    const auto topo = sched::Topology::synthetic(cores, 2);

    out << cfg_model.name << " chaos replay: " << instances
        << " instance(s) on " << cores << " core(s), SLA "
        << rcfg.server.slaMs << " ms, " << requests
        << " requests over " << static_cast<long>(session_ms)
        << " virtual ms\n";

    const auto report = [&](const std::string& label,
                            const serve::RouterStats& st) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "%5.1f%% compliant | ",
                      st.total.arrived > 0
                          ? 100.0 * static_cast<double>(st.compliant) /
                                static_cast<double>(st.total.arrived)
                          : 0.0);
        out << label << buf << st.summary() << "\n";
    };

    for (const auto& name : scenarios) {
        out << "-- " << name << " --\n";
        for (const bool resilient : {false, true}) {
            // Fresh store per run: the schedule may flip stored bits.
            auto store =
                core::EmbeddingStore::createMutable(cfg_model, seed);
            const auto schedule = serve::FaultSchedule::chaosScenario(
                name, instances, session_ms, seed);
            serve::RouterConfig run = rcfg;
            run.instances = instances;
            if (resilient) {
                run.breaker.enabled = true;
                run.hedging = true;
                run.integrity.enabled = true;
                run.integrity.repair = true;
            }
            serve::Router router(cfg_model, store, topo, run);
            report(resilient ? "resilient " : "baseline  ",
                   router.serve(dense, batches, arrivals,
                                core::PrefetchSpec::paperDefault(),
                                &schedule));
        }
    }
    return 0;
}

int
cmdTenants(const ParsedArgs& args, std::ostream& out)
{
    // One multi-tenant fleet session: each tenant binds a Table-2
    // preset to its own SLA, fair-share weight and admission budget,
    // with diurnal phase-skewed arrivals so the tenants peak at
    // different times of the simulated day. Optionally elastic
    // (windowed load forecast moves the Up set) and/or overlaid with
    // a scripted chaos scenario.
    const std::size_t n_tenants =
        static_cast<std::size_t>(args.getInt("tenants", 3));
    if (n_tenants < 2 || n_tenants > 4)
        throw std::invalid_argument("--tenants must be 2..4");
    const double max_bytes =
        args.getDouble("max-bytes", 4.0 * (1u << 20));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    const double day_ms = args.getDouble("day-ms", 60.0);
    const double arrival_ms = args.getDouble("arrival-ms", 0.3);
    const double amplitude = args.getDouble("amplitude", 0.8);
    const double sla_ms = args.getDouble("sla", 12.0);
    const std::size_t budget =
        static_cast<std::size_t>(args.getInt("budget", 16));
    const std::size_t cores =
        static_cast<std::size_t>(args.getInt("cores", 8));
    const std::size_t instances =
        static_cast<std::size_t>(args.getInt("instances", 4));
    if (instances == 0 || cores < instances)
        throw std::invalid_argument("--instances must be 1..cores");
    if (day_ms <= 0.0)
        throw std::invalid_argument("--day-ms must be > 0");

    const serve::ServiceModel law{
        args.getDouble("service-base-ms", 0.5),
        args.getDouble("service-per-sample-ms", 0.1)};
    const char *presets[] = {"rm1", "rm2_1", "rm2_3", "rm2_2"};

    // Optional comma-separated per-tenant weights, e.g. 2,1,1.
    std::vector<double> weights(n_tenants, 1.0);
    if (args.has("weights")) {
        const std::string w = args.get("weights");
        std::size_t pos = 0, k = 0;
        while (k < n_tenants && pos <= w.size()) {
            const std::size_t comma = std::min(w.find(',', pos),
                                               w.size());
            weights[k++] = std::stod(w.substr(pos, comma - pos));
            pos = comma + 1;
        }
        if (k != n_tenants)
            throw std::invalid_argument(
                "--weights wants one value per tenant");
    }

    serve::TenantRegistry reg;
    std::vector<serve::TenantWorkload> work;
    for (std::size_t k = 0; k < n_tenants; ++k) {
        serve::TenantConfig tc;
        tc.name = presets[k];
        tc.model = core::modelByName(presets[k]).scaledToFit(max_bytes);
        tc.slaMs = sla_ms;
        tc.weight = weights[k];
        tc.admissionBudget = budget;
        tc.service = law;
        tc.truth = serve::ServiceTimeline(law);
        reg.add(tc);

        traces::TraceConfig gen_cfg = traces::TraceConfig::forModel(
            tc.model, parseHotness(args.get("hotness", "medium")),
            seed + k);
        gen_cfg.batchSize = static_cast<std::size_t>(
            args.getInt("batch-size", 4));
        traces::TraceGenerator gen(gen_cfg);
        serve::TenantWorkload w;
        for (std::size_t b = 0; b < 8; ++b)
            w.batches.push_back(gen.batch(b));
        w.dense.reshape(gen_cfg.batchSize, tc.model.denseDim());
        w.dense.randomize(seed + 10 * k);
        w.arrivalsMs =
            serve::DiurnalLoadGen(
                arrival_ms, amplitude, day_ms,
                static_cast<double>(k) /
                    static_cast<double>(n_tenants),
                seed + k)
                .arrivalsUntil(day_ms);
        work.push_back(std::move(w));
    }

    serve::FleetConfig fcfg;
    fcfg.instances = instances;
    fcfg.batching.maxRequests = static_cast<std::size_t>(
        args.getInt("max-requests", 4));
    fcfg.batching.maxLingerMs = args.getDouble("linger-ms", 0.2);
    fcfg.admission = !args.has("no-admission");
    fcfg.seed = seed;
    fcfg.recalibration.enabled = true;
    fcfg.recalibration.intervalMs = 10.0;
    fcfg.scrub.enabled = true;
    if (args.has("elastic")) {
        fcfg.capacity.elastic = true;
        fcfg.capacity.minInstances = static_cast<std::size_t>(
            args.getInt("min-instances", 1));
        fcfg.capacity.windowMs = day_ms / 24.0;
        fcfg.capacity.downLag = 2;
        fcfg.capacity.probationMs = 2.0;
        fcfg.capacity.partialDrainCores = 1;
        fcfg.capacity.drainGraceMs = 4.0;
    }

    const auto topo = sched::Topology::synthetic(cores, 2);
    serve::TenantFleet fleet(reg, topo, fcfg);

    std::size_t total = 0;
    for (const auto& w : work)
        total += w.arrivalsMs.size();
    out << n_tenants << " tenant(s) on " << instances
        << " instance(s) x " << cores / instances << " core(s)"
        << (fcfg.capacity.elastic ? ", elastic" : "") << ", " << total
        << " requests over " << static_cast<long>(day_ms)
        << " virtual ms\n";

    serve::FleetStats fs;
    const std::string scenario = args.get("scenario");
    if (scenario.empty()) {
        fs = fleet.serve(work);
    } else {
        const auto schedule = serve::FaultSchedule::chaosScenario(
            scenario, instances, day_ms, seed);
        fs = fleet.serve(work, core::PrefetchSpec::paperDefault(),
                         &schedule);
    }

    out << fs.summary() << "\n";
    for (std::size_t k = 0; k < n_tenants; ++k) {
        const serve::TenantStats& t = fs.perTenant[k];
        char buf[192];
        std::snprintf(
            buf, sizeof(buf),
            "  %-8s w%.1f | arrived %5zu served %5zu shed %4zu "
            "(budget %zu deadline %zu) failed %zu | goodput %5.1f%%",
            reg.tenant(k).name.c_str(), reg.tenant(k).weight,
            t.stats.arrived, t.stats.served, t.stats.shed,
            t.budgetShed, t.deadlineShed, t.stats.failed,
            100.0 * t.goodput());
        out << buf << "\n";
    }
    out << (fs.conserved() ? "accounting conserved"
                           : "ACCOUNTING VIOLATION")
        << " (arrived == served + shed + failed per tenant)\n";
    return fs.conserved() ? 0 : 1;
}

/** Folds a checksum list into one FNV-1a digest for compact display. */
std::uint64_t
foldChecksums(const std::vector<std::uint64_t>& sums, std::size_t begin,
              std::size_t count)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = begin; i < begin + count; ++i) {
        const std::uint64_t v = sums[i];
        for (std::size_t b = 0; b < 8; ++b)
            h = (h ^ ((v >> (8 * b)) & 0xffu)) * 1099511628211ull;
    }
    return h;
}

void
printSnapshotInfo(std::ostream& out, const core::SnapshotInfo& info)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s v%llu (seed %llu): %zu tables x %zu rows x %zu "
                  "dim, %s, block-rows %zu, %zu bytes\n",
                  info.cfg.name.c_str(),
                  static_cast<unsigned long long>(info.modelVersion),
                  static_cast<unsigned long long>(info.weightSeed),
                  info.cfg.tables, info.cfg.rows, info.cfg.dim,
                  core::embDtypeName(info.dtype).c_str(),
                  info.blockRows, info.fileBytes);
    out << buf;
    // Per-table block-checksum digests: enough to diff two snapshots
    // by eye without dumping every block.
    for (std::size_t t = 0; t < info.cfg.tables; ++t) {
        if (t == 8 && info.cfg.tables > 9) {
            out << "  ... (" << info.cfg.tables - t
                << " more tables)\n";
            break;
        }
        std::snprintf(
            buf, sizeof(buf), "  table %2zu: %zu blocks, digest %016llx\n",
            t, info.blocksPerTable,
            static_cast<unsigned long long>(foldChecksums(
                info.blockChecksums, t * info.blocksPerTable,
                info.blocksPerTable)));
        out << buf;
    }
    out << "  probe rows: " << info.probeCount
        << " (golden predictions at " << core::embDtypeName(info.dtype)
        << ")\n";
}

int
cmdSnapshot(const ParsedArgs& args, std::ostream& out)
{
    // Crash-consistent snapshot tooling over core::ModelSnapshot:
    //   save      build a versioned model and persist it atomically
    //   verify    parse + checksum-verify a file (no materialization)
    //   load      materialize and check the golden probe bitwise
    //   roundtrip save -> load -> re-save, compare the files bytewise
    const std::string op =
        args.positional.empty() ? "" : args.positional[0];
    const std::string path = args.get("file", "");
    if (path.empty())
        throw std::invalid_argument("snapshot wants --file PATH");

    if (op == "verify") {
        printSnapshotInfo(out, core::ModelSnapshot::verifyFile(path));
        out << "verify OK (footer, section and per-block checksums)\n";
        return 0;
    }
    if (op == "load") {
        const core::LoadedSnapshot ls = core::ModelSnapshot::load(path);
        printSnapshotInfo(out, ls.info);
        const std::vector<float> got =
            core::ModelSnapshot::probePredictions(*ls.model);
        const bool bitwise =
            got.size() == ls.probePredictions.size() &&
            std::memcmp(got.data(), ls.probePredictions.data(),
                        got.size() * sizeof(float)) == 0;
        out << "golden probe: "
            << (bitwise ? "reproduced bitwise" : "MISMATCH") << "\n";
        return bitwise ? 0 : 1;
    }
    if (op != "save" && op != "roundtrip") {
        throw std::invalid_argument(
            "snapshot wants save|verify|load|roundtrip");
    }

    const auto base = core::modelByName(args.get("model", "rm2_1"));
    const double max_bytes =
        args.getDouble("max-bytes", 64.0 * (1u << 20));
    const auto cfg_model = base.scaledToFit(max_bytes);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("seed", 42));
    const std::uint64_t version =
        static_cast<std::uint64_t>(args.getInt("version", 1));
    const core::EmbDtype dtype = parseDtypeOption(args);
    const std::size_t block_rows =
        static_cast<std::size_t>(args.getInt("block-rows", 256));

    const auto v = core::ModelVersion::build(cfg_model, version, seed,
                                             dtype, block_rows);
    if (!core::ModelSnapshot::save(path, *v->model, version, seed))
        throw core::IoError("snapshot save failed: " + path);
    printSnapshotInfo(out, core::ModelSnapshot::verifyFile(path));
    if (op == "save") {
        out << "saved " << path << " (temp-file + fsync + atomic "
            << "rename)\n";
        return 0;
    }

    // roundtrip: a loaded snapshot re-saved must be byte-identical —
    // payload bytes, checksums and golden probe all survive the trip.
    const core::LoadedSnapshot ls = core::ModelSnapshot::load(
        path, &cfg_model);
    const std::string again = path + ".roundtrip";
    if (!core::ModelSnapshot::save(again, *ls.model,
                                   ls.info.modelVersion,
                                   ls.info.weightSeed))
        throw core::IoError("roundtrip re-save failed: " + again);
    std::ifstream a(path, std::ios::binary);
    std::ifstream b(again, std::ios::binary);
    const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    std::remove(again.c_str());
    const bool identical = !bytes_a.empty() && bytes_a == bytes_b;
    out << "roundtrip: save -> load -> re-save "
        << (identical ? "byte-identical" : "DIVERGED") << " ("
        << bytes_a.size() << " bytes)\n";
    return identical ? 0 : 1;
}

} // namespace

std::string
usage()
{
    return "dlrmopt <command> [options]\n"
           "\n"
           "commands:\n"
           "  models                      list Table-2 model presets\n"
           "  platforms                   list CPU platform presets\n"
           "  evaluate [options]          evaluate one configuration\n"
           "  sweep --vary <axis>         sweep "
           "scheme|hotness|cores|distance|amount\n"
           "  trace gen|info [options]    generate / inspect traces\n"
           "  tune [options]              auto-tune prefetching on "
           "this host\n"
           "  gemmtune [options]          auto-tune GEMM blocking "
           "tiles on this host\n"
           "  serve [options]             fault-tolerant serving "
           "session (real execution)\n"
           "  router [options]            multi-instance routed "
           "serving over one shared store\n"
           "  batch [options]             unbatched vs deadline-aware "
           "request coalescing\n"
           "  cache [options]             hot-tier hit rates by "
           "hotness class\n"
           "  chaos [options]             replay scripted fault "
           "timelines with/without resilience\n"
           "  tenants [options]           multi-tenant fleet with "
           "weighted-fair queueing\n"
           "  snapshot save|verify|load|roundtrip --file PATH\n"
           "                              crash-consistent model "
           "snapshots\n"
           "\n"
           "common options:\n"
           "  --cpu SKL|CSL|ICL|SPR|Zen3   (default CSL)\n"
           "  --model rm1|rm2_1|rm2_2|rm2_3 (default rm2_1)\n"
           "  --hotness low|medium|high|random|one-item\n"
           "  --scheme "
           "baseline|hwpf-off|swpf|dpht|mpht|integrated\n"
           "  --cores N --batches N --sim-tables N --seed N\n"
           "  --pf-distance N --pf-amount N --pf-hint T0|T1|T2\n"
           "  --format text|csv|json\n"
           "\n"
           "gemmtune options:\n"
           "  --model NAME --repeats N --seed N\n"
           "  --m N (tune one coalesced batch size; default: one "
           "per m-bucket)\n"
           "  --quick (m in {1,16} only)\n"
           "  --dtype fp32|int8 (fp32 packed engine or the u8·s8 "
           "quantized engine)\n"
           "\n"
           "serve options:\n"
           "  --arrival-ms X --requests N --sla X --service-ms X\n"
           "  --cores N --retries N --no-admission --batch-size N\n"
           "  --max-bytes X (embedding scale-down budget)\n"
           "  --dtype fp32|bf16|int8 (serving precision floor; "
           "quantized store attached)\n"
           "  --fault-exception-rate P --fault-alloc-rate P\n"
           "  --fault-corrupt-rate P --fault-straggler-core N\n"
           "  --fault-straggler-factor X\n"
           "\n"
           "router options (plus the serve options above):\n"
           "  --instances N --policy all|rr|po2|health\n"
           "  --failovers N --straggler-instance N "
           "--straggler-factor X\n"
           "\n"
           "batch options (plus the serve options above):\n"
           "  --max-requests N --linger-ms X --calibrate\n"
           "  --service-base-ms X --service-per-sample-ms X\n"
           "  --streamed (add the stage-pipelined dispatch row)\n"
           "  --gather-fraction F (stage split for --streamed)\n"
           "\n"
           "hot-tier options (serve, batch, cache):\n"
           "  --cache-budget BYTES (pinned hot-tier byte budget; 0 = "
           "off,\n"
           "                        cache defaults to 4 MiB)\n"
           "  --cache-epoch-lookups N --cache-min-accesses N\n"
           "  cache additionally takes --warm-batches N --batches N "
           "--batch-size N\n"
           "\n"
           "chaos options (plus the router options above):\n"
           "  --scenario all|crash-storm|rolling-corruption|"
           "flapping-straggler\n"
           "  --probation-ms X\n"
           "\n"
           "tenants options:\n"
           "  --tenants N --instances N --weights A,B,...\n"
           "  --day-ms X --arrival-ms X --amplitude A --sla X\n"
           "  --budget N (per-tenant admission budget)\n"
           "  --elastic --min-instances N\n"
           "  --scenario crash-storm|rolling-corruption|"
           "flapping-straggler\n"
           "\n"
           "snapshot options:\n"
           "  --file PATH (required)\n"
           "  --model NAME --max-bytes X --seed N --version V\n"
           "  --dtype fp32|bf16|int8 --block-rows N (save/roundtrip)\n"
           "  verify/load print the header and per-table block-"
           "checksum digests;\n"
           "  load additionally recomputes the golden probe "
           "(bitwise); roundtrip\n"
           "  re-saves a loaded snapshot and compares the files "
           "bytewise\n";
}

int
run(const ParsedArgs& args, std::ostream& out, std::ostream& err)
{
    try {
        if (args.command == "models")
            return cmdModels(out);
        if (args.command == "platforms")
            return cmdPlatforms(out);
        if (args.command == "evaluate")
            return cmdEvaluate(args, out);
        if (args.command == "sweep")
            return cmdSweep(args, out, err);
        if (args.command == "trace")
            return cmdTrace(args, out, err);
        if (args.command == "tune")
            return cmdTune(args, out);
        if (args.command == "gemmtune")
            return cmdGemmTune(args, out);
        if (args.command == "serve")
            return cmdServe(args, out);
        if (args.command == "router")
            return cmdRouter(args, out);
        if (args.command == "batch")
            return cmdBatch(args, out);
        if (args.command == "cache")
            return cmdCache(args, out);
        if (args.command == "chaos")
            return cmdChaos(args, out);
        if (args.command == "tenants")
            return cmdTenants(args, out);
        if (args.command == "snapshot")
            return cmdSnapshot(args, out);
        err << usage();
        return args.command.empty() ? 2 : 1;
    } catch (const std::exception& e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

} // namespace dlrmopt::cli
