/**
 * @file
 * Command-line interface for the dlrmopt library: argument parsing
 * and command dispatch, kept separate from main() so the parser is
 * unit-testable.
 *
 * Subcommands:
 *   models                      list Table-2 model presets
 *   platforms                   list Sec. 6.4 CPU presets
 *   evaluate [options]          one simulated-platform evaluation
 *   sweep --vary <axis> [...]   CSV sweep over one axis
 *   trace gen|info [...]        generate / inspect binary traces
 *   tune [options]              real-host prefetch auto-tune
 *   gemmtune [options]          real-host GEMM blocking-tile
 *                               auto-tune over a model's MLP shapes
 *                               (--dtype fp32|int8 picks the engine)
 *   serve [options]             fault-tolerant serving session with
 *                               admission control, retries, optional
 *                               fault injection and degradation
 *                               (--dtype sets the precision floor)
 *   router [options]            multi-instance routed serving over
 *                               one shared embedding store
 *   batch [options]             unbatched vs deadline-aware request
 *                               coalescing on the batched forward
 *                               path (real execution; --dtype sets
 *                               the precision floor)
 *   chaos [options]             scripted fault timelines replayed
 *                               with and without the resilience layer
 *   tenants [options]           multi-tenant fleet session: weighted-
 *                               fair queueing, per-tenant SLAs and
 *                               budgets, optional elastic capacity
 */

#ifndef DLRMOPT_TOOLS_CLI_HPP
#define DLRMOPT_TOOLS_CLI_HPP

#include <map>
#include <string>
#include <vector>

#include "platform/evaluator.hpp"

namespace dlrmopt::cli
{

/** Parsed command line: subcommand, positionals, --key value pairs. */
struct ParsedArgs
{
    std::string command;
    std::vector<std::string> positional;
    std::map<std::string, std::string> options;

    bool has(const std::string& key) const
    {
        return options.count(key) != 0;
    }

    /** Option value with a default. */
    std::string get(const std::string& key,
                    const std::string& fallback = "") const;

    /** Integer option; throws std::invalid_argument on bad input. */
    long getInt(const std::string& key, long fallback) const;

    /** Double option; throws std::invalid_argument on bad input. */
    double getDouble(const std::string& key, double fallback) const;
};

/**
 * Parses argv into a ParsedArgs. Flags are "--key value"; a flag at
 * the end of the line or followed by another flag gets value "1".
 *
 * @throws std::invalid_argument on malformed input (e.g. empty key).
 */
ParsedArgs parseArgs(int argc, const char *const *argv);

/** Maps a CLI hotness word (low/medium/high/random/one-item). */
traces::Hotness parseHotness(const std::string& v);

/** Maps a CLI scheme word (baseline/hwpf-off/swpf/dpht/mpht/integrated). */
core::Scheme parseScheme(const std::string& v);

/** Builds an EvalConfig from parsed options (shared by evaluate/sweep). */
platform::EvalConfig buildEvalConfig(const ParsedArgs& args);

/**
 * Runs the CLI. Returns the process exit code. Output goes to
 * @p out; diagnostics to @p err.
 */
int run(const ParsedArgs& args, std::ostream& out, std::ostream& err);

/** Usage text. */
std::string usage();

} // namespace dlrmopt::cli

#endif // DLRMOPT_TOOLS_CLI_HPP
