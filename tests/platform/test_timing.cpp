/**
 * @file
 * Tests for the analytic timing model: limiting behaviours and
 * monotonicity properties that must hold for any calibration.
 */

#include <gtest/gtest.h>

#include "platform/timing.hpp"

namespace
{

using namespace dlrmopt::platform;
using dlrmopt::core::PrefetchSpec;
using dlrmopt::memsim::EmbSimStats;

/** Builds synthetic stats with a given lookup-class mix. */
EmbSimStats
statsWith(std::uint64_t lookups, double f_l1, double f_l2, double f_l3,
          double f_dram, double f_pf_dram = 0.0)
{
    EmbSimStats st;
    st.lookups = lookups;
    st.lines = lookups * 8;
    st.cls.l1 = static_cast<std::uint64_t>(lookups * f_l1);
    st.cls.l2 = static_cast<std::uint64_t>(lookups * f_l2);
    st.cls.l3 = static_cast<std::uint64_t>(lookups * f_l3);
    st.cls.dram = static_cast<std::uint64_t>(lookups * f_dram);
    st.cls.pfDram = static_cast<std::uint64_t>(lookups * f_pf_dram);
    st.lineL1 = static_cast<std::uint64_t>(st.lines * f_l1);
    st.lineDram = static_cast<std::uint64_t>(
        st.lines * (f_dram + f_pf_dram) * 0.8);
    st.dramDemandFills = static_cast<std::uint64_t>(st.lines * f_dram);
    st.swPfDramFills =
        static_cast<std::uint64_t>(st.lines * f_pf_dram);
    return st;
}

TEST(TimingModel, EmptyStatsYieldZero)
{
    TimingModel tm(cascadeLake());
    const auto t = tm.embeddingTime({}, 1, 1, {});
    EXPECT_DOUBLE_EQ(t.msPerBatch, 0.0);
}

TEST(TimingModel, AllL1IsComputeBound)
{
    TimingModel tm(cascadeLake());
    const auto st = statsWith(100'000, 1.0, 0, 0, 0);
    const auto t = tm.embeddingTime(st, 1, 1, {});
    // No memory stall: per-lookup time equals the compute terms.
    const auto& p = tm.params();
    EXPECT_NEAR(t.cyclesPerLookup,
                p.cyclesPerLookupBase + 8 * p.cyclesPerLine, 1.0);
    EXPECT_DOUBLE_EQ(t.dramUtilization, 0.0);
}

TEST(TimingModel, MoreDramClassMeansSlower)
{
    TimingModel tm(cascadeLake());
    const auto fast =
        tm.embeddingTime(statsWith(100'000, 0.9, 0, 0, 0.1), 1, 1, {});
    const auto slow =
        tm.embeddingTime(statsWith(100'000, 0.4, 0, 0, 0.6), 1, 1, {});
    EXPECT_GT(slow.msPerBatch, fast.msPerBatch);
    EXPECT_GT(slow.avgLoadLatency, fast.avgLoadLatency);
}

TEST(TimingModel, PrefetchCoveredIsFasterThanExposed)
{
    TimingModel tm(cascadeLake());
    const PrefetchSpec pf{4, 8, 3};
    const auto exposed =
        tm.embeddingTime(statsWith(100'000, 0.3, 0, 0, 0.7), 1, 1, {});
    const auto covered = tm.embeddingTime(
        statsWith(100'000, 0.3, 0, 0, 0.0, 0.7), 1, 1, pf);
    EXPECT_LT(covered.msPerBatch, exposed.msPerBatch);
}

TEST(TimingModel, LargerPrefetchDistanceHidesMore)
{
    TimingModel tm(cascadeLake());
    const auto st = statsWith(100'000, 0.3, 0, 0, 0.0, 0.7);
    double prev = 1e18;
    for (int d : {1, 2, 4}) {
        const auto t =
            tm.embeddingTime(st, 1, 1, PrefetchSpec{d, 8, 3});
        EXPECT_LE(t.msPerBatch, prev) << d;
        prev = t.msPerBatch;
    }
}

TEST(TimingModel, ResidualFloorBoundsPrefetchGain)
{
    // Even an infinite distance leaves the floor fraction exposed.
    TimingModel tm(cascadeLake());
    const auto st = statsWith(100'000, 0.0, 0, 0, 0.0, 1.0);
    const auto t =
        tm.embeddingTime(st, 1, 1, PrefetchSpec{1000, 8, 3});
    const auto& p = tm.params();
    const double floor_cycles =
        p.pfResidualFraction * cascadeLake().dramLatencyCycles /
        tm.overlapFactor();
    EXPECT_GE(t.cyclesPerLookup,
              p.cyclesPerLookupBase + floor_cycles * 0.99);
}

TEST(TimingModel, MultiCoreSaturatesBandwidth)
{
    TimingModel tm(cascadeLake());
    // Very DRAM-heavy mix at high core count must show utilization.
    auto st = statsWith(24 * 500'000, 0.1, 0, 0, 0.9);
    const auto t24 = tm.embeddingTime(st, 24, 24, {});
    const auto t1 = tm.embeddingTime(statsWith(500'000, 0.1, 0, 0, 0.9),
                                     1, 1, {});
    EXPECT_GT(t24.dramUtilization, t1.dramUtilization);
    // Per-batch latency grows under contention (Fig. 8 behaviour).
    EXPECT_GE(t24.msPerBatch, t1.msPerBatch * 0.99);
    EXPECT_LE(t24.achievedGBs, cascadeLake().dramBandwidthGBs + 1.0);
}

TEST(TimingModel, WindowShareBelowOneAmplifiesExposure)
{
    TimingModel tm(cascadeLake());
    const auto st = statsWith(100'000, 0.3, 0.2, 0.2, 0.3);
    const auto full = tm.embeddingTime(st, 1, 1, {}, 1.0);
    const auto half = tm.embeddingTime(st, 1, 1, {}, 0.5);
    EXPECT_GT(half.msPerBatch, full.msPerBatch);
}

TEST(TimingModel, ComputeInflationScalesComputeOnly)
{
    TimingModel tm(cascadeLake());
    const auto st = statsWith(100'000, 1.0, 0, 0, 0);
    const auto base = tm.embeddingTime(st, 1, 1, {}, 1.0, 1.0);
    const auto infl = tm.embeddingTime(st, 1, 1, {}, 1.0, 2.0);
    EXPECT_NEAR(infl.cyclesPerLookup, 2.0 * base.cyclesPerLookup,
                1e-6);
}

TEST(TimingModel, BiggerWindowPlatformsExposeLess)
{
    // Sec. 6.4: ICL/SPR's larger windows implicitly improve MLP —
    // both the factor itself and the resulting batch time.
    const auto st = statsWith(100'000, 0.2, 0.2, 0.2, 0.4);
    TimingModel csl(cascadeLake());
    TimingModel spr(sapphireRapids());
    EXPECT_GT(spr.overlapFactor(), csl.overlapFactor());
    const auto t_csl = csl.embeddingTime(st, 1, 1, {});
    const auto t_spr = spr.embeddingTime(st, 1, 1, {});
    EXPECT_LT(t_spr.cyclesPerLookup, t_csl.cyclesPerLookup * 1.2);
}

TEST(TimingModel, MlpMsScalesWithFlops)
{
    TimingModel tm(cascadeLake());
    EXPECT_NEAR(tm.mlpMs(2e9), 2.0 * tm.mlpMs(1e9), 1e-9);
    EXPECT_GT(tm.mlpMs(1e9, 1.5), tm.mlpMs(1e9));
    // Interaction runs at lower efficiency than GEMM.
    EXPECT_GT(tm.interactionMs(1e9), tm.mlpMs(1e9));
}

TEST(TimingModel, StageTimesTotal)
{
    StageTimesMs st{1.0, 2.0, 0.5, 0.25};
    EXPECT_DOUBLE_EQ(st.total(), 3.75);
}

} // namespace
