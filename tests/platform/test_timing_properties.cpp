/**
 * @file
 * Property sweeps over the timing model: for any class mix and any
 * platform the fixed point must converge to sane values, and the
 * paper's qualitative orderings must hold.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "platform/timing.hpp"

namespace
{

using namespace dlrmopt::platform;
using dlrmopt::core::PrefetchSpec;
using dlrmopt::memsim::EmbSimStats;

EmbSimStats
mixStats(std::uint64_t lookups, double f_l1, double f_l2, double f_l3,
         double f_dram, double f_pf_dram)
{
    EmbSimStats st;
    st.lookups = lookups;
    st.lines = lookups * 8;
    st.cls.l1 = static_cast<std::uint64_t>(lookups * f_l1);
    st.cls.l2 = static_cast<std::uint64_t>(lookups * f_l2);
    st.cls.l3 = static_cast<std::uint64_t>(lookups * f_l3);
    st.cls.dram = static_cast<std::uint64_t>(lookups * f_dram);
    st.cls.pfDram = static_cast<std::uint64_t>(lookups * f_pf_dram);
    st.lineL1 = static_cast<std::uint64_t>(st.lines * f_l1);
    st.lineDram = static_cast<std::uint64_t>(
        st.lines * (f_dram + f_pf_dram));
    st.dramDemandFills = static_cast<std::uint64_t>(st.lines * f_dram);
    st.swPfDramFills =
        static_cast<std::uint64_t>(st.lines * f_pf_dram);
    return st;
}

/** (platform index, dram fraction, cores) sweep. */
class TimingSweep
    : public ::testing::TestWithParam<
          std::tuple<int, double, std::size_t>>
{
};

TEST_P(TimingSweep, FixedPointConvergesToSaneValues)
{
    const auto [cpu_idx, f_dram, cores] = GetParam();
    const CpuConfig cpu = allCpus()[static_cast<std::size_t>(cpu_idx)];
    TimingModel tm(cpu);

    const double f_l1 = 1.0 - f_dram;
    const auto st =
        mixStats(cores * 100'000, f_l1, 0.0, 0.0, f_dram, 0.0);
    const auto t = tm.embeddingTime(st, cores, cores, {});

    EXPECT_GT(t.msPerBatch, 0.0);
    EXPECT_GE(t.dramUtilization, 0.0);
    EXPECT_LE(t.dramUtilization, 1.0);
    EXPECT_LE(t.achievedGBs, cpu.dramBandwidthGBs * 1.001);
    EXPECT_GE(t.avgLoadLatency, cpu.l1LatencyCycles);
    EXPECT_GE(t.cyclesPerLookup,
              tm.params().cyclesPerLookupBase);
    EXPECT_LE(t.effectiveDramLatency,
              cpu.dramLatencyCycles * cpu.dramQueueCap + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimingSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(0.0, 0.3, 0.9),
                       ::testing::Values(std::size_t(1),
                                         std::size_t(16))));

TEST(TimingProperties, PrefetchGainShrinksWithRobAcrossPlatforms)
{
    // Sec. 6.4: larger windows => baseline overlaps more => smaller
    // SW-PF speedup. Isolate the window effect on one platform.
    const auto base_mix = mixStats(100'000, 0.3, 0.0, 0.0, 0.7, 0.0);
    const auto pf_mix = mixStats(100'000, 0.3, 0.0, 0.0, 0.0, 0.7);
    double prev = 1e9;
    for (std::size_t rob : {160u, 224u, 352u, 512u, 800u}) {
        CpuConfig cpu = cascadeLake();
        cpu.robSize = rob;
        TimingModel tm(cpu);
        const double b = tm.embeddingTime(base_mix, 1, 1, {}).msPerBatch;
        const double p =
            tm.embeddingTime(pf_mix, 1, 1, PrefetchSpec{4, 8, 3})
                .msPerBatch;
        const double speedup = b / p;
        EXPECT_LE(speedup, prev + 1e-9) << rob;
        prev = speedup;
    }
}

TEST(TimingProperties, BandwidthContentionRaisesMultiCoreLatency)
{
    TimingModel tm(cascadeLake());
    // Same per-core mix; total lookups scale with cores.
    double prev = 0.0;
    for (std::size_t cores : {1u, 8u, 16u, 24u, 48u}) {
        const auto st =
            mixStats(cores * 200'000, 0.2, 0.0, 0.0, 0.8, 0.0);
        const auto t = tm.embeddingTime(st, cores, cores, {});
        EXPECT_GE(t.msPerBatch, prev * 0.999) << cores;
        prev = t.msPerBatch;
    }
}

TEST(TimingProperties, DistanceSweepHasInteriorOptimum)
{
    // Fig. 10b: distance 1 is late (pipelining bound), huge
    // distances gain nothing more; 4-8 is the sweet region.
    TimingModel tm(cascadeLake());
    const auto st = mixStats(100'000, 0.2, 0.0, 0.0, 0.0, 0.8);
    auto ms = [&](int d) {
        return tm.embeddingTime(st, 1, 1, PrefetchSpec{d, 8, 3})
            .msPerBatch;
    };
    EXPECT_GT(ms(1), ms(4));
    EXPECT_NEAR(ms(16), ms(4), ms(4) * 0.25);
}

TEST(TimingProperties, HwPfOffPenalizesDenseStages)
{
    TimingModel tm(cascadeLake());
    EXPECT_GT(tm.params().hwPfOffMlpPenalty, 1.0);
    EXPECT_GT(tm.mlpMs(1e9, tm.params().hwPfOffMlpPenalty),
              tm.mlpMs(1e9));
}

} // namespace
