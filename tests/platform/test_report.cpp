/**
 * @file
 * Tests for the CSV/JSON result export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "platform/report.hpp"

namespace
{

using namespace dlrmopt::platform;
using namespace dlrmopt::core;

EvalConfig
tinyConfig()
{
    EvalConfig c;
    c.cpu = cascadeLake();
    c.model.name = "report_test";
    c.model.cls = ModelClass::RMC2;
    c.model.rows = 50'000;
    c.model.dim = 128;
    c.model.tables = 2;
    c.model.lookups = 8;
    c.model.bottomMlp = {64, 128};
    c.model.topMlp = {8, 1};
    c.hotness = dlrmopt::traces::Hotness::Medium;
    c.scheme = Scheme::SwPf;
    c.cores = 2;
    c.numBatches = 2;
    return c;
}

TEST(Report, CsvHeaderAndRowHaveMatchingArity)
{
    const auto cfg = tinyConfig();
    const auto res = evaluate(cfg);

    const std::string header = csvHeader();
    std::ostringstream row;
    writeCsvRow(row, cfg, res);

    const auto count = [](const std::string& s) {
        std::size_t n = 1;
        for (char c : s)
            n += c == ',';
        return n;
    };
    EXPECT_EQ(count(header), count(row.str()));
    EXPECT_EQ(header.back(), '\n');
    EXPECT_EQ(row.str().back(), '\n');
    EXPECT_NE(row.str().find("report_test"), std::string::npos);
    EXPECT_NE(row.str().find("SW-PF"), std::string::npos);
}

TEST(Report, JsonIsWellFormedEnough)
{
    const auto cfg = tinyConfig();
    const auto res = evaluate(cfg);
    const std::string j = toJson(cfg, res);

    // Balanced braces, quoted keys, no trailing newline.
    int depth = 0, max_depth = 0;
    for (char c : j) {
        if (c == '{')
            max_depth = std::max(max_depth, ++depth);
        if (c == '}')
            --depth;
    }
    EXPECT_EQ(depth, 0);
    EXPECT_GE(max_depth, 2);
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
    EXPECT_NE(j.find("\"batch_ms\":"), std::string::npos);
    EXPECT_NE(j.find("\"l1_hit_vtune\":"), std::string::npos);
    EXPECT_NE(j.find("\"scheme\":\"SW-PF\""), std::string::npos);
}

TEST(Report, JsonEscaping)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Report, NumbersAreParseable)
{
    const auto cfg = tinyConfig();
    const auto res = evaluate(cfg);
    std::ostringstream row;
    writeCsvRow(row, cfg, res);

    // Tokenize and confirm the numeric fields parse as doubles.
    std::string line = row.str();
    line.pop_back();
    std::stringstream ss(line);
    std::string tok;
    int idx = 0;
    while (std::getline(ss, tok, ',')) {
        if (idx >= 5) { // numeric columns start after cores
            EXPECT_FALSE(tok.empty()) << idx;
            EXPECT_NO_THROW({ (void)std::stod(tok); }) << tok;
        }
        ++idx;
    }
    EXPECT_EQ(idx, 19);
}

} // namespace
