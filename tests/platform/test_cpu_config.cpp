/**
 * @file
 * Tests for the CPU platform presets (Table 3 and Sec. 6.4).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "platform/cpu_config.hpp"

namespace
{

using namespace dlrmopt::platform;

TEST(CpuConfig, CascadeLakeMatchesTable3)
{
    const CpuConfig c = cascadeLake();
    EXPECT_EQ(c.name, "CSL");
    EXPECT_DOUBLE_EQ(c.freqGHz, 2.4);
    EXPECT_EQ(c.l1.sizeBytes, 32u * 1024u);
    EXPECT_EQ(c.l2.sizeBytes, 1024u * 1024u);
    // 35.75 MB LLC.
    EXPECT_EQ(c.l3.sizeBytes, 35u * 1024u * 1024u + 768u * 1024u);
    EXPECT_DOUBLE_EQ(c.l1LatencyCycles, 5.0); // Table 3
    EXPECT_DOUBLE_EQ(c.dramBandwidthGBs, 140.0); // Table 3
    EXPECT_EQ(c.cores, 24u);
    EXPECT_EQ(c.smtWays, 2u);
    EXPECT_EQ(c.bestPfAmount, 8);
}

TEST(CpuConfig, Section64PlatformList)
{
    const auto& cpus = allCpus();
    ASSERT_EQ(cpus.size(), 5u);
    EXPECT_EQ(cpus[0].name, "SKL");
    EXPECT_EQ(cpus[1].name, "CSL");
    EXPECT_EQ(cpus[2].name, "ICL");
    EXPECT_EQ(cpus[3].name, "SPR");
    EXPECT_EQ(cpus[4].name, "Zen3");
}

TEST(CpuConfig, WindowGrowthMatchesSection64)
{
    // ICL & SPR have instruction windows larger by 58% & 129%.
    const double csl = static_cast<double>(cascadeLake().robSize);
    EXPECT_NEAR(icelake().robSize / csl, 1.58, 0.02);
    EXPECT_NEAR(sapphireRapids().robSize / csl, 2.29, 0.02);
}

TEST(CpuConfig, TunedPrefetchAmounts)
{
    // Sec. 6.4: optimal prefetch amount 2 on ICL/SPR, 4 on Zen3.
    EXPECT_EQ(icelake().bestPfAmount, 2);
    EXPECT_EQ(sapphireRapids().bestPfAmount, 2);
    EXPECT_EQ(zen3().bestPfAmount, 4);
    EXPECT_EQ(skylake().bestPfAmount, 8);
}

TEST(CpuConfig, Zen3UsesAvx2Width)
{
    EXPECT_DOUBLE_EQ(zen3().simdFlopsPerCycle, 32.0);
    EXPECT_DOUBLE_EQ(cascadeLake().simdFlopsPerCycle, 64.0);
}

TEST(CpuConfig, HierarchyConversion)
{
    const auto h = cascadeLake().hierarchy(24);
    EXPECT_EQ(h.cores, 24u);
    EXPECT_EQ(h.l1.sizeBytes, 32u * 1024u);
    EXPECT_EQ(h.l3.sizeBytes, cascadeLake().l3.sizeBytes);
}

TEST(CpuConfig, DramConversion)
{
    const auto d = cascadeLake().dram();
    EXPECT_DOUBLE_EQ(d.peakBandwidthGBs, 140.0);
    EXPECT_DOUBLE_EQ(d.freqGHz, 2.4);
    EXPECT_DOUBLE_EQ(d.baseLatencyCycles,
                     cascadeLake().dramLatencyCycles);
}

TEST(CpuConfig, LookupByName)
{
    EXPECT_EQ(cpuByName("SPR").cores, 56u);
    EXPECT_THROW(cpuByName("M1"), std::out_of_range);
}

TEST(CpuConfig, LatenciesOrderedAcrossLevels)
{
    for (const auto& c : allCpus()) {
        EXPECT_LT(c.l1LatencyCycles, c.l2LatencyCycles) << c.name;
        EXPECT_LT(c.l2LatencyCycles, c.l3LatencyCycles) << c.name;
        EXPECT_LT(c.l3LatencyCycles, c.dramLatencyCycles) << c.name;
    }
}

} // namespace
