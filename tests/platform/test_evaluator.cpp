/**
 * @file
 * Tests for the end-to-end evaluator: scheme composition rules on a
 * small (fast) model, using reduced trace sizes.
 */

#include <gtest/gtest.h>

#include "platform/evaluator.hpp"

namespace
{

using namespace dlrmopt::platform;
using namespace dlrmopt::core;
using dlrmopt::traces::Hotness;

/** A fast evaluation config: small model, small caches' workload. */
EvalConfig
fastConfig(Scheme s, Hotness h = Hotness::Low, std::size_t cores = 1)
{
    EvalConfig c;
    c.cpu = cascadeLake();
    c.model.name = "test";
    c.model.cls = ModelClass::RMC2;
    c.model.rows = 300'000;
    c.model.dim = 128;
    c.model.tables = 8;
    c.model.lookups = 24;
    c.model.bottomMlp = {256, 128, 128};
    c.model.topMlp = {64, 1};
    c.hotness = h;
    c.scheme = s;
    c.cores = cores;
    c.numBatches = std::max<std::size_t>(cores, 4);
    return c;
}

TEST(Evaluator, FlopsHelpers)
{
    EXPECT_DOUBLE_EQ(mlpFlops({10, 20}, 3), 3.0 * 2 * 10 * 20);
    ModelConfig m;
    m.tables = 4;
    m.dim = 8;
    EXPECT_DOUBLE_EQ(interactionFlops(m, 2), 2.0 * 10 * 2 * 8);
}

TEST(Evaluator, ResolvePrefetchSpecUsesPlatformBest)
{
    EvalConfig c = fastConfig(Scheme::SwPf);
    c.cpu.bestPfAmount = 2;
    EXPECT_EQ(resolvePrefetchSpec(c).lines, 2);
    c.pfAmount = 6;
    EXPECT_EQ(resolvePrefetchSpec(c).lines, 6);
    EXPECT_EQ(resolvePrefetchSpec(c).distance, 4);
}

TEST(Evaluator, StagesSumToTotalForSequentialSchemes)
{
    for (Scheme s : {Scheme::Baseline, Scheme::HwPfOff, Scheme::SwPf}) {
        const auto r = evaluate(fastConfig(s));
        EXPECT_NEAR(r.batchMs, r.stages.total(), 1e-9)
            << schemeName(s);
        EXPECT_GT(r.embMs, 0.0);
        EXPECT_GT(r.stages.bottom, 0.0);
    }
}

TEST(Evaluator, SwPfBeatsBaseline)
{
    const auto base = evaluate(fastConfig(Scheme::Baseline));
    const auto pf = evaluate(fastConfig(Scheme::SwPf));
    EXPECT_LT(pf.batchMs, base.batchMs);
    EXPECT_LT(pf.embMs, base.embMs);
    EXPECT_GT(pf.sim.l1HitRate(), base.sim.l1HitRate());
}

TEST(Evaluator, MpHtBeatsBaseline)
{
    const auto base = evaluate(fastConfig(Scheme::Baseline));
    const auto mp = evaluate(fastConfig(Scheme::MpHt));
    EXPECT_LT(mp.batchMs, base.batchMs);
}

TEST(Evaluator, DpHtIsWorseThanBaseline)
{
    const auto base = evaluate(fastConfig(Scheme::DpHt, Hotness::Low));
    const auto seq = evaluate(fastConfig(Scheme::Baseline, Hotness::Low));
    // The paper's key negative result (Figs. 13/14): naive
    // hyperthreading hurts batch latency.
    EXPECT_GT(base.batchMs, seq.batchMs);
}

TEST(Evaluator, IntegratedIsBestScheme)
{
    const auto base = evaluate(fastConfig(Scheme::Baseline));
    const auto pf = evaluate(fastConfig(Scheme::SwPf));
    const auto mp = evaluate(fastConfig(Scheme::MpHt));
    const auto both = evaluate(fastConfig(Scheme::Integrated));
    EXPECT_LT(both.batchMs, pf.batchMs);
    EXPECT_LT(both.batchMs, mp.batchMs);
    EXPECT_LT(both.batchMs, base.batchMs);
}

TEST(Evaluator, IntegratedIsSynergistic)
{
    // Sec. 4.4: the combination beats what multiplying the two
    // individual gains of MP-HT alone would give on the embedding
    // side; at minimum it must beat the better of the two.
    const auto base = evaluate(fastConfig(Scheme::Baseline));
    const auto pf = evaluate(fastConfig(Scheme::SwPf));
    const auto both = evaluate(fastConfig(Scheme::Integrated));
    const double spd_pf = base.batchMs / pf.batchMs;
    const double spd_both = base.batchMs / both.batchMs;
    EXPECT_GT(spd_both, spd_pf);
}

TEST(Evaluator, AutoBatchesCoverAllCores)
{
    EvalConfig c = fastConfig(Scheme::Baseline, Hotness::High, 4);
    c.numBatches = 0; // auto
    const auto r = evaluate(c);
    // 4 cores get at least one batch each.
    EXPECT_GE(r.sim.lookups,
              4u * c.model.tables * 64u * c.model.lookups);
}

TEST(Evaluator, HotnessOrdersLatency)
{
    const auto low = evaluate(fastConfig(Scheme::Baseline, Hotness::Low));
    const auto high =
        evaluate(fastConfig(Scheme::Baseline, Hotness::High));
    EXPECT_GT(low.batchMs, high.batchMs);
}

} // namespace
