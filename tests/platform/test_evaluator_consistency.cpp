/**
 * @file
 * Consistency tests for the evaluator's split API: evaluate() must
 * equal simulateEmbedding() + compose(), scheme contents-sharing must
 * be sound (MP-HT over the Baseline run, Integrated over the SW-PF
 * run), and table folding must stay within tolerance of exact runs
 * at test scale.
 */

#include <gtest/gtest.h>

#include "platform/evaluator.hpp"

namespace
{

using namespace dlrmopt::platform;
using namespace dlrmopt::core;
using dlrmopt::traces::Hotness;

EvalConfig
baseCfg(Scheme s = Scheme::Baseline)
{
    EvalConfig c;
    c.cpu = cascadeLake();
    c.model.name = "consistency";
    c.model.cls = ModelClass::RMC2;
    c.model.rows = 200'000;
    c.model.dim = 128;
    c.model.tables = 6;
    c.model.lookups = 16;
    c.model.bottomMlp = {128, 128};
    c.model.topMlp = {32, 1};
    c.hotness = Hotness::Medium;
    c.scheme = s;
    c.cores = 2;
    c.numBatches = 4;
    return c;
}

TEST(EvaluatorConsistency, EvaluateEqualsSimulatePlusCompose)
{
    for (Scheme s : {Scheme::Baseline, Scheme::SwPf, Scheme::DpHt}) {
        const auto cfg = baseCfg(s);
        const auto direct = evaluate(cfg);
        const auto split = compose(cfg, simulateEmbedding(cfg));
        EXPECT_DOUBLE_EQ(direct.batchMs, split.batchMs)
            << schemeName(s);
        EXPECT_DOUBLE_EQ(direct.embMs, split.embMs);
        EXPECT_EQ(direct.sim.lineL1, split.sim.lineL1);
    }
}

TEST(EvaluatorConsistency, MpHtComposesOverBaselineContents)
{
    const auto base_cfg = baseCfg(Scheme::Baseline);
    const auto run = simulateEmbedding(base_cfg);

    auto mp_cfg = base_cfg;
    mp_cfg.scheme = Scheme::MpHt;
    const auto via_shared = compose(mp_cfg, run);
    const auto direct = evaluate(mp_cfg);
    EXPECT_DOUBLE_EQ(via_shared.batchMs, direct.batchMs);
}

TEST(EvaluatorConsistency, IntegratedComposesOverSwPfContents)
{
    auto pf_cfg = baseCfg(Scheme::SwPf);
    const auto run = simulateEmbedding(pf_cfg);

    auto int_cfg = pf_cfg;
    int_cfg.scheme = Scheme::Integrated;
    const auto via_shared = compose(int_cfg, run);
    const auto direct = evaluate(int_cfg);
    EXPECT_DOUBLE_EQ(via_shared.batchMs, direct.batchMs);
}

TEST(EvaluatorConsistency, SimulationIsDeterministic)
{
    const auto cfg = baseCfg(Scheme::SwPf);
    const auto a = simulateEmbedding(cfg);
    const auto b = simulateEmbedding(cfg);
    EXPECT_EQ(a.stats.lineL1, b.stats.lineL1);
    EXPECT_EQ(a.stats.swPfIssued, b.stats.swPfIssued);
    EXPECT_EQ(a.stats.dramDemandFills, b.stats.dramDemandFills);
    EXPECT_EQ(a.fold, b.fold);
}

TEST(EvaluatorConsistency, TableFoldingWithinTolerance)
{
    auto exact_cfg = baseCfg(Scheme::Baseline);
    exact_cfg.model.tables = 8;
    exact_cfg.maxSimTables = 0;
    const auto exact = evaluate(exact_cfg);

    auto folded_cfg = exact_cfg;
    folded_cfg.maxSimTables = 4;
    const auto folded = evaluate(folded_cfg);

    EXPECT_NEAR(folded.embMs, exact.embMs, exact.embMs * 0.15);
    // The simulated stats cover half the tables.
    EXPECT_NEAR(static_cast<double>(folded.sim.lookups),
                static_cast<double>(exact.sim.lookups) / 2.0,
                1.0);
}

TEST(EvaluatorConsistency, SeedChangesTraceNotStructure)
{
    auto a_cfg = baseCfg(Scheme::Baseline);
    auto b_cfg = a_cfg;
    b_cfg.seed = 999;
    const auto a = evaluate(a_cfg);
    const auto b = evaluate(b_cfg);
    EXPECT_EQ(a.sim.lookups, b.sim.lookups); // same volume
    EXPECT_NE(a.sim.lineL1, b.sim.lineL1);   // different draws
    // Same hotness: aggregate behaviour within a few percent.
    EXPECT_NEAR(a.batchMs, b.batchMs, a.batchMs * 0.1);
}

TEST(EvaluatorConsistency, MoreSocketsNeverSlower)
{
    // Same per-socket core count: engaging the second socket doubles
    // LLC and bandwidth, so per-batch latency cannot degrade much.
    auto one = baseCfg(Scheme::Baseline);
    one.cores = 24; // socket 0 only
    one.numBatches = 24;
    auto two = one;
    two.cores = 48; // both sockets
    two.numBatches = 48;
    const auto r1 = evaluate(one);
    const auto r2 = evaluate(two);
    EXPECT_LT(r2.embMs, r1.embMs * 1.25);
}

} // namespace
