/**
 * @file
 * Property tests for the serving layer against queueing theory: an
 * M/D/1 queue's mean waiting time is rho*S / (2*(1-rho)); the
 * simulator must converge to it.
 */

#include <gtest/gtest.h>

#include "serve/loadgen.hpp"
#include "serve/queue_sim.hpp"

namespace
{

using namespace dlrmopt::serve;

class MD1Theory : public ::testing::TestWithParam<double /*rho*/>
{
};

TEST_P(MD1Theory, MeanLatencyMatchesPollaczekKhinchine)
{
    const double rho = GetParam();
    const double service = 4.0;                 // deterministic S
    const double arrival = service / rho;       // mean inter-arrival

    PoissonLoadGen gen(arrival, 21);
    const std::size_t n = 60'000;
    const auto res = simulateQueue(gen.arrivals(n), service, 1);

    // M/D/1: W_q = rho * S / (2 * (1 - rho)); latency = W_q + S.
    const double expected = rho * service / (2.0 * (1.0 - rho)) +
                            service;
    EXPECT_NEAR(res.latency.mean(), expected, expected * 0.08)
        << "rho=" << rho;
    EXPECT_NEAR(res.serverUtilization, rho, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Load, MD1Theory,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(QueueProperties, LatencyDistributionIsMonotoneInLoad)
{
    const double service = 5.0;
    double prev_p95 = 0.0;
    for (double arrival : {25.0, 12.5, 8.0, 6.5}) {
        PoissonLoadGen gen(arrival, 3);
        const auto res =
            simulateQueue(gen.arrivals(20'000), service, 1);
        EXPECT_GE(res.latency.p95(), prev_p95 * 0.999);
        prev_p95 = res.latency.p95();
    }
}

TEST(QueueProperties, ScalingServersMatchesScalingArrivals)
{
    // c servers at arrival a behave like 1 server at arrival c*a for
    // the utilization metric.
    PoissonLoadGen g1(2.0, 5);
    const auto one = simulateQueue(g1.arrivals(20'000), 5.0, 4);
    PoissonLoadGen g2(8.0, 5);
    const auto four = simulateQueue(g2.arrivals(20'000), 5.0, 1);
    EXPECT_NEAR(one.serverUtilization, four.serverUtilization, 0.05);
}

TEST(QueueProperties, LatencyNeverBelowServiceTime)
{
    PoissonLoadGen gen(3.0, 9);
    const auto res = simulateQueue(gen.arrivals(5'000), 2.5, 3);
    for (double l : res.latency.samples())
        EXPECT_GE(l, 2.5 - 1e-12);
}

} // namespace
