/**
 * @file
 * Tests for scripted fault timelines: phase resolution over the
 * virtual clock, lifecycle-script validation, corruption detection
 * hints, and the named chaos scenarios.
 */

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "serve/fault_schedule.hpp"

namespace
{

using namespace dlrmopt::serve;
using Kind = LifecycleEvent::Kind;

FaultConfig
throwingConfig(std::uint64_t seed, double rate)
{
    FaultConfig c;
    c.seed = seed;
    c.taskExceptionRate = rate;
    return c;
}

TEST(FaultSchedule, EmptyScheduleHasNoEffect)
{
    const FaultSchedule s;
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.corruptsStore());
    EXPECT_EQ(s.injectorAt(0.0, 0), nullptr);
    EXPECT_EQ(s.injectorAt(1e9, 5), nullptr);
    EXPECT_NO_THROW(s.validate(1));
}

TEST(FaultSchedule, LatestApplicablePhaseWins)
{
    std::vector<FaultPhase> phases;
    phases.push_back({10.0, -1, throwingConfig(1, 0.1)});
    phases.push_back({20.0, -1, throwingConfig(2, 0.2)});
    const FaultSchedule s(std::move(phases), {}, {});

    EXPECT_EQ(s.injectorAt(9.9, 0), nullptr);
    const FaultInjector *p1 = s.injectorAt(10.0, 0);
    ASSERT_NE(p1, nullptr);
    EXPECT_DOUBLE_EQ(p1->config().taskExceptionRate, 0.1);
    const FaultInjector *p2 = s.injectorAt(25.0, 0);
    ASSERT_NE(p2, nullptr);
    EXPECT_DOUBLE_EQ(p2->config().taskExceptionRate, 0.2);
}

TEST(FaultSchedule, InstancePhaseBeatsGlobalAndScopesToTarget)
{
    std::vector<FaultPhase> phases;
    phases.push_back({10.0, -1, throwingConfig(1, 0.1)});
    phases.push_back({10.0, 1, throwingConfig(2, 0.9)});
    const FaultSchedule s(std::move(phases), {}, {});

    const FaultInjector *other = s.injectorAt(15.0, 0);
    ASSERT_NE(other, nullptr);
    EXPECT_DOUBLE_EQ(other->config().taskExceptionRate, 0.1);
    const FaultInjector *target = s.injectorAt(15.0, 1);
    ASSERT_NE(target, nullptr);
    EXPECT_DOUBLE_EQ(target->config().taskExceptionRate, 0.9);
}

TEST(FaultSchedule, SortsEventsAndRejectsBadTimestamps)
{
    // Deliberately unsorted scripts come back ascending.
    std::vector<LifecycleEvent> lc = {
        {30.0, 0, Kind::Recover},
        {10.0, 0, Kind::Crash},
    };
    std::vector<BitFlipEvent> flips = {
        {20.0, 1, 2, 3},
        {5.0, 0, 0, 0},
    };
    const FaultSchedule s({}, std::move(lc), std::move(flips));
    ASSERT_EQ(s.lifecycleEvents().size(), 2u);
    EXPECT_EQ(s.lifecycleEvents()[0].kind, Kind::Crash);
    EXPECT_DOUBLE_EQ(s.lifecycleEvents()[0].atMs, 10.0);
    ASSERT_EQ(s.bitFlipEvents().size(), 2u);
    EXPECT_DOUBLE_EQ(s.bitFlipEvents()[0].atMs, 5.0);
    EXPECT_TRUE(s.corruptsStore());

    EXPECT_THROW(
        FaultSchedule({}, {{-1.0, 0, Kind::Crash}}, {}),
        std::invalid_argument);
    EXPECT_THROW(
        FaultSchedule(
            {}, {},
            {{std::numeric_limits<double>::quiet_NaN(), 0, 0, 0}}),
        std::invalid_argument);
    std::vector<FaultPhase> bad_phase;
    bad_phase.push_back({0.0, -2, FaultConfig{}});
    EXPECT_THROW(FaultSchedule(std::move(bad_phase), {}, {}),
                 std::invalid_argument);
    // Phase configs are validated through FaultInjector's ctor.
    std::vector<FaultPhase> bad_cfg;
    bad_cfg.push_back({0.0, -1, throwingConfig(1, 1.5)});
    EXPECT_THROW(FaultSchedule(std::move(bad_cfg), {}, {}),
                 std::invalid_argument);
}

TEST(FaultSchedule, ValidateChecksInstanceRangeAndAlternation)
{
    {
        const FaultSchedule s({}, {{1.0, 3, Kind::Crash}}, {});
        EXPECT_THROW(s.validate(2), std::invalid_argument);
        EXPECT_NO_THROW(s.validate(4));
    }
    {
        std::vector<FaultPhase> phases;
        phases.push_back({0.0, 2, FaultConfig{}});
        const FaultSchedule s(std::move(phases), {}, {});
        EXPECT_THROW(s.validate(2), std::invalid_argument);
        EXPECT_NO_THROW(s.validate(3));
    }
    {
        // Crash twice without recovering.
        const FaultSchedule s(
            {}, {{1.0, 0, Kind::Crash}, {2.0, 0, Kind::Crash}}, {});
        EXPECT_THROW(s.validate(2), std::invalid_argument);
    }
    {
        // Recover without having crashed.
        const FaultSchedule s({}, {{1.0, 0, Kind::Recover}}, {});
        EXPECT_THROW(s.validate(2), std::invalid_argument);
    }
    {
        const FaultSchedule s(
            {},
            {{1.0, 0, Kind::Crash},
             {2.0, 0, Kind::Recover},
             {3.0, 0, Kind::Crash}},
            {});
        EXPECT_NO_THROW(s.validate(1));
    }
}

TEST(FaultSchedule, CorruptsStoreDetectsBitFlipPhases)
{
    FaultConfig flip;
    flip.bitFlipRate = 0.5;
    std::vector<FaultPhase> phases;
    phases.push_back({0.0, -1, flip});
    const FaultSchedule s(std::move(phases), {}, {});
    EXPECT_TRUE(s.corruptsStore());

    std::vector<FaultPhase> clean;
    clean.push_back({0.0, -1, FaultConfig{}});
    const FaultSchedule t(std::move(clean), {}, {});
    EXPECT_FALSE(t.corruptsStore());
}

TEST(FaultSchedule, ChaosScenariosAreWellFormed)
{
    for (const auto& name : FaultSchedule::scenarioNames()) {
        const auto s =
            FaultSchedule::chaosScenario(name, 2, 100.0, 7);
        EXPECT_FALSE(s.empty()) << name;
        EXPECT_NO_THROW(s.validate(2)) << name;
        // Everything the scenario scripts happens inside the session.
        for (const auto& e : s.lifecycleEvents())
            EXPECT_LT(e.atMs, 100.0 * 1.5) << name;
        for (const auto& e : s.bitFlipEvents())
            EXPECT_LT(e.atMs, 100.0) << name;
    }
    EXPECT_TRUE(FaultSchedule::chaosScenario("rolling-corruption", 2,
                                             100.0, 7)
                    .corruptsStore());
    EXPECT_FALSE(
        FaultSchedule::chaosScenario("crash-storm", 2, 100.0, 7)
            .corruptsStore());

    EXPECT_THROW(FaultSchedule::chaosScenario("nope", 2, 100.0, 7),
                 std::invalid_argument);
    EXPECT_THROW(
        FaultSchedule::chaosScenario("crash-storm", 1, 100.0, 7),
        std::invalid_argument);
    EXPECT_THROW(
        FaultSchedule::chaosScenario("crash-storm", 2, 0.0, 7),
        std::invalid_argument);
}

TEST(FaultSchedule, MoveOnlySemanticsPreserveState)
{
    auto s = FaultSchedule::chaosScenario("crash-storm", 3, 100.0, 1);
    const std::size_t events = s.lifecycleEvents().size();
    FaultSchedule moved = std::move(s);
    EXPECT_EQ(moved.lifecycleEvents().size(), events);
    EXPECT_NO_THROW(moved.validate(3));
}

} // namespace
