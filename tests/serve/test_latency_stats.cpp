/**
 * @file
 * Tests for latency percentile statistics.
 */

#include <gtest/gtest.h>

#include "serve/latency_stats.hpp"

namespace
{

using dlrmopt::serve::LatencyStats;

TEST(LatencyStats, EmptyIsZero)
{
    LatencyStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.p95(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.slaCompliance(100.0), 0.0);
}

TEST(LatencyStats, SingleSample)
{
    LatencyStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(LatencyStats, NearestRankPercentiles)
{
    LatencyStats s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
}

TEST(LatencyStats, OrderIndependent)
{
    LatencyStats a({3.0, 1.0, 2.0});
    LatencyStats b({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(a.p95(), b.p95());
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(LatencyStats, PercentileClampsInput)
{
    LatencyStats s({1.0, 2.0});
    EXPECT_DOUBLE_EQ(s.percentile(-5), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(200), 2.0);
}

TEST(LatencyStats, SlaCompliance)
{
    LatencyStats s({50.0, 90.0, 150.0, 390.0});
    EXPECT_DOUBLE_EQ(s.slaCompliance(100.0), 0.5);
    EXPECT_DOUBLE_EQ(s.slaCompliance(400.0), 1.0);
    EXPECT_DOUBLE_EQ(s.slaCompliance(10.0), 0.0);
    EXPECT_DOUBLE_EQ(s.slaCompliance(90.0), 0.5); // inclusive
}

TEST(LatencyStats, P95DominatedByTail)
{
    LatencyStats s;
    for (int i = 0; i < 95; ++i)
        s.add(1.0);
    for (int i = 0; i < 5; ++i)
        s.add(1000.0);
    EXPECT_DOUBLE_EQ(s.p95(), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(96), 1000.0);
    EXPECT_GT(s.mean(), 1.0);
}

} // namespace
