/**
 * @file
 * Tests for the per-instance circuit breaker: trip thresholds,
 * cooldown to half-open, single-probe admission, probe verdicts, and
 * warm-restart reset.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/breaker.hpp"

namespace
{

using namespace dlrmopt::serve;
using State = CircuitBreaker::State;

BreakerConfig
smallConfig()
{
    BreakerConfig cfg;
    cfg.enabled = true;
    cfg.window = 8;
    cfg.minSamples = 4;
    cfg.failureThreshold = 0.5;
    cfg.cooldownMs = 10.0;
    return cfg;
}

TEST(Breaker, ConfigValidation)
{
    BreakerConfig bad = smallConfig();
    bad.window = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = smallConfig();
    bad.minSamples = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = smallConfig();
    bad.minSamples = 9; // > window
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = smallConfig();
    bad.failureThreshold = 0.0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = smallConfig();
    bad.failureThreshold = 1.5;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = smallConfig();
    bad.cooldownMs = -1.0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    EXPECT_NO_THROW(smallConfig().validate());
    EXPECT_THROW(CircuitBreaker{bad}, std::invalid_argument);
}

TEST(Breaker, StaysClosedBelowMinSamples)
{
    CircuitBreaker b(smallConfig());
    // Three straight failures: 100% failure rate but < minSamples.
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(b.record(false, static_cast<double>(i)));
    EXPECT_EQ(b.state(3.0), State::Closed);
    EXPECT_TRUE(b.admits(3.0));
    EXPECT_EQ(b.trips(), 0u);
}

TEST(Breaker, TripsAtThresholdAndBlocksUntilCooldown)
{
    CircuitBreaker b(smallConfig());
    b.record(true, 0.0);
    b.record(true, 1.0);
    b.record(false, 2.0);
    // 4th sample makes the failure rate 2/4 = threshold: trips.
    EXPECT_TRUE(b.record(false, 3.0));
    EXPECT_EQ(b.trips(), 1u);
    EXPECT_EQ(b.state(3.0), State::Open);
    EXPECT_FALSE(b.admits(5.0));
    // Cooldown (10 ms from the tripping outcome) lapses -> half-open.
    EXPECT_EQ(b.state(13.0), State::HalfOpen);
    EXPECT_TRUE(b.admits(13.0));
}

TEST(Breaker, HalfOpenAdmitsExactlyOneProbe)
{
    CircuitBreaker b(smallConfig());
    for (int i = 0; i < 4; ++i)
        b.record(false, static_cast<double>(i));
    ASSERT_EQ(b.state(20.0), State::HalfOpen);
    ASSERT_TRUE(b.admits(20.0));
    b.beginProbe(20.0);
    // Probe in flight: nothing else may be routed here.
    EXPECT_FALSE(b.admits(20.0));
    EXPECT_FALSE(b.admits(100.0));
}

TEST(Breaker, SuccessfulProbeClosesAndClearsHistory)
{
    CircuitBreaker b(smallConfig());
    for (int i = 0; i < 4; ++i)
        b.record(false, static_cast<double>(i));
    b.beginProbe(20.0);
    EXPECT_FALSE(b.record(true, 21.0));
    EXPECT_EQ(b.state(21.0), State::Closed);
    EXPECT_TRUE(b.admits(21.0));
    // The pre-trip failures are forgotten: a single new failure must
    // not re-trip against stale history.
    EXPECT_FALSE(b.record(false, 22.0));
    EXPECT_EQ(b.state(22.0), State::Closed);
    EXPECT_EQ(b.trips(), 1u);
}

TEST(Breaker, FailedProbeReopensForAnotherCooldown)
{
    CircuitBreaker b(smallConfig());
    for (int i = 0; i < 4; ++i)
        b.record(false, static_cast<double>(i));
    b.beginProbe(20.0);
    EXPECT_TRUE(b.record(false, 21.0)); // counted as another trip
    EXPECT_EQ(b.trips(), 2u);
    EXPECT_EQ(b.state(21.0), State::Open);
    EXPECT_FALSE(b.admits(25.0));
    EXPECT_EQ(b.state(31.0), State::HalfOpen); // 21 + 10 cooldown
}

TEST(Breaker, ResetRestoresCleanClosedState)
{
    CircuitBreaker b(smallConfig());
    for (int i = 0; i < 4; ++i)
        b.record(false, static_cast<double>(i));
    ASSERT_EQ(b.state(5.0), State::Open);
    b.reset();
    EXPECT_EQ(b.state(5.0), State::Closed);
    EXPECT_TRUE(b.admits(5.0));
    // Trip count survives reset: it is a session statistic.
    EXPECT_EQ(b.trips(), 1u);
    // And the cleared window needs minSamples fresh outcomes again.
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(b.record(false, 10.0 + i));
    EXPECT_EQ(b.state(13.0), State::Closed);
}

TEST(Breaker, LastTripTimestampTracksTripsAndReset)
{
    CircuitBreaker b(smallConfig());
    EXPECT_LT(b.lastTripMs(), 0.0); // never tripped
    for (int i = 0; i < 4; ++i)
        b.record(false, static_cast<double>(i));
    EXPECT_DOUBLE_EQ(b.lastTripMs(), 3.0);

    // A failed half-open probe re-trips at the probe's end time (the
    // recency the router's health score penalizes).
    ASSERT_EQ(b.state(20.0), State::HalfOpen);
    b.beginProbe(20.0);
    b.record(false, 21.0);
    EXPECT_DOUBLE_EQ(b.lastTripMs(), 21.0);

    // Warm restart wipes the history including the trip recency.
    b.reset();
    EXPECT_LT(b.lastTripMs(), 0.0);
}

TEST(Breaker, RollingWindowForgetsOldOutcomes)
{
    // 8 successes fill the window; subsequent failures must displace
    // them one by one, tripping only once failures dominate.
    CircuitBreaker b(smallConfig());
    for (int i = 0; i < 8; ++i)
        b.record(true, static_cast<double>(i));
    int trip_at = -1;
    for (int i = 0; i < 8; ++i) {
        if (b.record(false, 10.0 + i)) {
            trip_at = i;
            break;
        }
    }
    // Trip exactly when 4 of the rolled 8 outcomes are failures.
    EXPECT_EQ(trip_at, 3);
}

} // namespace
