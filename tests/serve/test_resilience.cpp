/**
 * @file
 * Cluster-resilience acceptance tests (ISSUE 4): a scripted chaos
 * session — instance crash mid-session plus silent embedding
 * corruption — must serve zero wrong predictions (asserted bitwise
 * against a fault-free run), warm-restart the crashed instance within
 * the session, stay bit-reproducible under a fixed seed, and show
 * breakers + hedging strictly improving SLA compliance; RouterStats
 * accounting invariants must hold through all of it.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/embedding_store.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/loadgen.hpp"
#include "serve/router.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;
using Kind = LifecycleEvent::Kind;

core::ModelConfig
smallModel()
{
    core::ModelConfig m;
    m.name = "resilience_small";
    m.cls = core::ModelClass::RMC2;
    m.rows = 4096;
    m.dim = 16;
    m.tables = 3;
    m.lookups = 4;
    m.bottomMlp = {24, 16, 16};
    m.topMlp = {8, 1};
    return m;
}

class ResilienceTest : public ::testing::Test
{
  protected:
    ResilienceTest()
    {
        traces::TraceConfig tc = traces::TraceConfig::forModel(
            smallModel(), traces::Hotness::Medium, 5);
        tc.batchSize = 8;
        traces::TraceGenerator gen(tc);
        for (std::size_t b = 0; b < 16; ++b)
            batches.push_back(gen.batch(b));
        dense.reshape(8, smallModel().denseDim());
        dense.randomize(3);
    }

    /** A row the request stream is guaranteed to look up. */
    std::size_t
    hotRow() const
    {
        return static_cast<std::size_t>(batches.front().indices[0][0]);
    }

    RouterConfig
    baseConfig() const
    {
        RouterConfig cfg;
        cfg.instances = 2;
        cfg.policy = RoutePolicy::RoundRobin;
        cfg.server.slaMs = 50.0;
        cfg.server.service = ServiceModel::constant(1.0);
        cfg.server.maxRetries = 2;
        cfg.recordPredictions = true;
        cfg.probationMs = 5.0;
        return cfg;
    }

    /** Crash instance 0 mid-session, recover it, and silently flip a
     *  bit of a row the stream actually reads. */
    FaultSchedule
    chaosScript() const
    {
        std::vector<LifecycleEvent> lc = {
            {30.0, 0, Kind::Crash},
            {60.0, 0, Kind::Recover},
        };
        std::vector<BitFlipEvent> flips = {{10.0, 0, hotRow(), 30}};
        return FaultSchedule({}, std::move(lc), std::move(flips));
    }

    std::vector<core::SparseBatch> batches;
    core::Tensor dense;
};

TEST_F(ResilienceTest, ChaosSessionServesZeroWrongPredictions)
{
    const auto arrivals = PoissonLoadGen(1.0, 3).arrivals(150);

    // Fault-free reference: what every prediction should be.
    auto ref_store = core::EmbeddingStore::createMutable(smallModel(), 11);
    Router ref_router(smallModel(), ref_store,
                      sched::Topology::synthetic(4, 2), baseConfig());
    const auto ref = ref_router.serve(dense, batches, arrivals);
    ASSERT_EQ(ref.total.served, 150u);

    // Chaos run: crash + corruption, integrity verification on.
    RouterConfig cfg = baseConfig();
    cfg.integrity.enabled = true;
    cfg.integrity.repair = true;
    auto store = core::EmbeddingStore::createMutable(smallModel(), 11);
    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), cfg);
    const auto script = chaosScript();
    const auto rs = router.serve(dense, batches, arrivals,
                                 core::PrefetchSpec::paperDefault(),
                                 &script);

    // The crash happened and the instance warm-restarted in-session.
    EXPECT_EQ(rs.crashes, 1u);
    EXPECT_EQ(rs.restarts, 1u);
    EXPECT_EQ(router.instance(0).lifecycleState(), InstanceState::Up);
    EXPECT_EQ(router.instance(0).restarts(), 1u);
    ASSERT_EQ(rs.availability.size(), 2u);
    EXPECT_LT(rs.availability[0], 1.0);
    EXPECT_DOUBLE_EQ(rs.availability[1], 1.0);
    EXPECT_GT(rs.perInstance[0].served, 0u);

    // The corruption was caught and repaired, never served.
    EXPECT_GE(rs.corruptionsDetected, 1u);
    EXPECT_GE(rs.blocksRepaired, 1u);
    EXPECT_EQ(rs.integrityDegraded, 0u);
    EXPECT_TRUE(store->findCorruptBlocks().empty());

    // Acceptance: zero wrong predictions served — every served
    // request's prediction is bitwise-identical to the fault-free run.
    ASSERT_EQ(rs.predFingerprints.size(), 150u);
    std::size_t compared = 0;
    for (std::size_t r = 0; r < 150; ++r) {
        if (rs.predFingerprints[r] == 0 ||
            ref.predFingerprints[r] == 0)
            continue; // not served in one of the runs
        EXPECT_EQ(rs.predFingerprints[r], ref.predFingerprints[r])
            << "request " << r << " served a wrong prediction";
        ++compared;
    }
    EXPECT_GT(compared, 100u);
}

TEST_F(ResilienceTest, CorruptionWithoutIntegrityServesWrongAnswers)
{
    // The control experiment: same corruption, integrity checks off —
    // wrong predictions ARE served, which is exactly what the
    // integrity layer exists to prevent.
    const auto arrivals = PoissonLoadGen(1.0, 3).arrivals(100);

    auto ref_store = core::EmbeddingStore::createMutable(smallModel(), 11);
    Router ref_router(smallModel(), ref_store,
                      sched::Topology::synthetic(4, 2), baseConfig());
    const auto ref = ref_router.serve(dense, batches, arrivals);

    auto store = core::EmbeddingStore::createMutable(smallModel(), 11);
    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), baseConfig());
    std::vector<BitFlipEvent> flips = {{0.0, 0, hotRow(), 30}};
    const FaultSchedule script({}, {}, std::move(flips));
    const auto rs = router.serve(dense, batches, arrivals,
                                 core::PrefetchSpec::paperDefault(),
                                 &script);

    EXPECT_FALSE(store->findCorruptBlocks().empty());
    std::size_t wrong = 0;
    for (std::size_t r = 0; r < 100; ++r) {
        if (rs.predFingerprints[r] != 0 &&
            ref.predFingerprints[r] != 0 &&
            rs.predFingerprints[r] != ref.predFingerprints[r])
            ++wrong;
    }
    EXPECT_GT(wrong, 0u);
}

TEST_F(ResilienceTest, IntegrityWithoutRepairDegradesInsteadOfServing)
{
    const auto arrivals = PoissonLoadGen(1.0, 3).arrivals(60);
    RouterConfig cfg = baseConfig();
    cfg.integrity.enabled = true;
    cfg.integrity.repair = false;
    auto store = core::EmbeddingStore::createMutable(smallModel(), 11);
    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), cfg);
    std::vector<BitFlipEvent> flips = {{0.0, 0, hotRow(), 30}};
    const FaultSchedule script({}, {}, std::move(flips));
    const auto rs = router.serve(dense, batches, arrivals,
                                 core::PrefetchSpec::paperDefault(),
                                 &script);

    // Touching requests are degraded (counted failures), the block
    // stays corrupt (no repair), and nothing wrong is served.
    EXPECT_GT(rs.integrityDegraded, 0u);
    EXPECT_EQ(rs.integrityDegraded,
              rs.total.failed); // no other fault source
    EXPECT_FALSE(store->findCorruptBlocks().empty());
    EXPECT_EQ(rs.total.served + rs.total.shed + rs.total.failed, 60u);
}

TEST_F(ResilienceTest, WarmRestartedInstanceServesAgainInSession)
{
    // Crash instance 0 before the first arrival: every request it
    // serves is therefore proof of post-restart serving.
    const auto arrivals = PoissonLoadGen(1.0, 3).arrivals(100);
    auto store = core::EmbeddingStore::createMutable(smallModel(), 11);
    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), baseConfig());
    std::vector<LifecycleEvent> lc = {
        {0.0, 0, Kind::Crash},
        {20.0, 0, Kind::Recover},
    };
    const FaultSchedule script({}, std::move(lc), {});
    const auto rs = router.serve(dense, batches, arrivals,
                                 core::PrefetchSpec::paperDefault(),
                                 &script);

    EXPECT_EQ(rs.restarts, 1u);
    EXPECT_GT(rs.perInstance[0].served, 0u);
    EXPECT_EQ(router.instance(0).lifecycleState(), InstanceState::Up);
    // While down, the cluster kept serving on the survivor.
    EXPECT_EQ(rs.total.served, 100u);
    EXPECT_EQ(rs.total.failed, 0u);
}

TEST_F(ResilienceTest, FaultySessionIsBitReproducible)
{
    // Acceptance: the whole chaos session — crash, restart, bit flip,
    // integrity repair — replays bit-identically under a fixed seed.
    const auto arrivals = PoissonLoadGen(1.0, 3).arrivals(120);
    RouterConfig cfg = baseConfig();
    cfg.integrity.enabled = true;
    cfg.integrity.repair = true;

    const auto run = [&]() {
        auto store =
            core::EmbeddingStore::createMutable(smallModel(), 11);
        Router router(smallModel(), store,
                      sched::Topology::synthetic(4, 2), cfg);
        const auto script = chaosScript();
        return router.serve(dense, batches, arrivals,
                            core::PrefetchSpec::paperDefault(),
                            &script);
    };
    const auto a = run();
    const auto b = run();

    EXPECT_EQ(a.total.served, b.total.served);
    EXPECT_EQ(a.total.shed, b.total.shed);
    EXPECT_EQ(a.total.failed, b.total.failed);
    EXPECT_EQ(a.total.retried, b.total.retried);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.compliant, b.compliant);
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.breakerTrips, b.breakerTrips);
    EXPECT_EQ(a.hedges, b.hedges);
    EXPECT_EQ(a.corruptionsDetected, b.corruptionsDetected);
    EXPECT_EQ(a.blocksRepaired, b.blocksRepaired);
    EXPECT_EQ(a.makespanMs, b.makespanMs);
    ASSERT_EQ(a.predFingerprints.size(), b.predFingerprints.size());
    for (std::size_t r = 0; r < a.predFingerprints.size(); ++r)
        ASSERT_EQ(a.predFingerprints[r], b.predFingerprints[r]);
    for (std::size_t i = 0; i < a.perInstance.size(); ++i) {
        EXPECT_EQ(a.perInstance[i].served, b.perInstance[i].served);
        EXPECT_EQ(a.availability[i], b.availability[i]);
    }
}

TEST_F(ResilienceTest, BreakersAndHedgingImproveSlaCompliance)
{
    // Acceptance: under the flapping-straggler timeline, breakers +
    // hedging must serve strictly more SLA-compliant requests than
    // the same cluster with them disabled, over the same arrivals.
    const auto arrivals = PoissonLoadGen(0.35, 13).arrivals(400);
    const double session_ms = arrivals.back();

    const auto run = [&](bool resilient) {
        RouterConfig cfg = baseConfig();
        cfg.recordPredictions = false;
        cfg.server.slaMs = 12.0;
        cfg.server.service = ServiceModel{0.8, 0.04};
        if (resilient) {
            cfg.breaker.enabled = true;
            cfg.hedging = true;
        }
        auto store =
            core::EmbeddingStore::createMutable(smallModel(), 11);
        Router router(smallModel(), store,
                      sched::Topology::synthetic(4, 2), cfg);
        const auto script = FaultSchedule::chaosScenario(
            "flapping-straggler", 2, session_ms, 7);
        return router.serve(dense, batches, arrivals,
                            core::PrefetchSpec::paperDefault(),
                            &script);
    };

    const auto baseline = run(false);
    const auto resilient = run(true);
    EXPECT_GT(resilient.compliant, baseline.compliant);
    EXPECT_GT(resilient.breakerTrips + resilient.hedges, 0u);
    EXPECT_EQ(baseline.breakerTrips, 0u);
    EXPECT_EQ(baseline.hedges, 0u);
}

TEST_F(ResilienceTest, StatsInvariantsHoldUnderEveryChaosScenario)
{
    const auto arrivals = PoissonLoadGen(0.5, 13).arrivals(250);
    const double session_ms = arrivals.back();

    for (const auto& name : FaultSchedule::scenarioNames()) {
        RouterConfig cfg = baseConfig();
        cfg.recordPredictions = false;
        cfg.server.slaMs = 15.0;
        cfg.server.service = ServiceModel{0.8, 0.04};
        cfg.breaker.enabled = true;
        cfg.hedging = true;
        cfg.integrity.enabled = true;
        cfg.integrity.repair = true;

        auto store =
            core::EmbeddingStore::createMutable(smallModel(), 11);
        Router router(smallModel(), store,
                      sched::Topology::synthetic(4, 2), cfg);
        const auto script = FaultSchedule::chaosScenario(
            name, 2, session_ms, 7);
        const auto rs = router.serve(dense, batches, arrivals,
                                     core::PrefetchSpec::paperDefault(),
                                     &script);

        // Every request reaches exactly one terminal outcome.
        EXPECT_EQ(rs.total.served + rs.total.shed + rs.total.failed,
                  rs.total.arrived)
            << name;
        EXPECT_EQ(rs.total.arrived, 250u) << name;
        EXPECT_LE(rs.compliant, rs.total.served) << name;
        EXPECT_LE(rs.clusterShed, rs.total.shed) << name;
        EXPECT_LE(rs.lifecycleShed, rs.total.shed) << name;

        // Per-instance tallies fold up into the cluster totals;
        // lifecycle sheds and no-instance failures are cluster-level
        // and deliberately unattributed.
        std::size_t served = 0, shed = 0, failed = 0;
        std::uint64_t pool_failed = 0;
        for (std::size_t i = 0; i < rs.perInstance.size(); ++i) {
            served += rs.perInstance[i].served;
            shed += rs.perInstance[i].shed;
            failed += rs.perInstance[i].failed;
            pool_failed += router.instance(i).totalFailed();
            EXPECT_GE(rs.availability[i], 0.0) << name;
            EXPECT_LE(rs.availability[i], 1.0) << name;
        }
        EXPECT_EQ(served, rs.total.served) << name;
        EXPECT_EQ(shed + rs.lifecycleShed, rs.total.shed) << name;
        EXPECT_LE(failed, rs.total.failed) << name;
        // Every failover was provoked by at least one failed attempt
        // on the instance it abandoned.
        EXPECT_LE(rs.failovers, static_cast<std::size_t>(pool_failed))
            << name;
        EXPECT_LE(rs.blocksRepaired, rs.corruptionsDetected) << name;
        EXPECT_FALSE(rs.summary().empty()) << name;
    }
}

TEST_F(ResilienceTest, ServeValidatesScheduleAgainstCluster)
{
    auto store = core::EmbeddingStore::createMutable(smallModel(), 11);
    RouterConfig cfg = baseConfig();
    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), cfg);
    const auto arrivals = PoissonLoadGen(1.0, 3).arrivals(10);

    // Schedule targets instance 5 of a 2-instance cluster.
    const FaultSchedule bad({}, {{1.0, 5, Kind::Crash}}, {});
    EXPECT_THROW(router.serve(dense, batches, arrivals,
                              core::PrefetchSpec::paperDefault(),
                              &bad),
                 std::invalid_argument);

    // A corrupting schedule demands a mutable store handle.
    std::shared_ptr<const core::EmbeddingStore> const_store =
        core::EmbeddingStore::create(smallModel(), 11);
    Router immutable(smallModel(), const_store,
                     sched::Topology::synthetic(4, 2), cfg);
    const FaultSchedule corrupting({}, {}, {{1.0, 0, 0, 0}});
    EXPECT_THROW(immutable.serve(dense, batches, arrivals,
                                 core::PrefetchSpec::paperDefault(),
                                 &corrupting),
                 std::invalid_argument);
}

TEST_F(ResilienceTest, LifecycleTransitionsAreGuarded)
{
    // Direct Server-level state machine checks (the router drives
    // these transitions from scripted events).
    core::DlrmModel model(smallModel(), 11);
    ServerConfig scfg;
    Server srv(model, sched::Topology::synthetic(2, 2), scfg);
    EXPECT_EQ(srv.lifecycleState(), InstanceState::Up);
    EXPECT_THROW(srv.markDown(), std::logic_error);
    EXPECT_THROW(srv.beginWarmRestart(), std::logic_error);
    EXPECT_THROW(srv.completeWarmRestart(), std::logic_error);
    srv.beginDrain();
    EXPECT_EQ(srv.lifecycleState(), InstanceState::Draining);
    EXPECT_THROW(srv.beginDrain(), std::logic_error);
    srv.markDown();
    EXPECT_EQ(srv.lifecycleState(), InstanceState::Down);
    srv.beginWarmRestart();
    EXPECT_EQ(srv.lifecycleState(), InstanceState::WarmRestart);
    srv.completeWarmRestart();
    EXPECT_EQ(srv.lifecycleState(), InstanceState::Up);
    EXPECT_EQ(srv.restarts(), 1u);
    EXPECT_STREQ(instanceStateName(InstanceState::Draining),
                 "Draining");
}

TEST_F(ResilienceTest, TripRecencyPenaltySteersTrafficOffAFlapper)
{
    // Instance 0 throws everything for its first 25 ms, then heals.
    // The breaker trips on it either way; the trip-recency and
    // half-open penalties decide how eagerly health-aware routing
    // sends traffic back once it closes again.
    const auto arrivals = PoissonLoadGen(0.4, 13).arrivals(300);
    const auto run = [&](double penalty_ms) {
        RouterConfig cfg = baseConfig();
        cfg.recordPredictions = false;
        cfg.policy = RoutePolicy::HealthAware;
        cfg.breaker.enabled = true;
        cfg.halfOpenPenaltyMs = penalty_ms;
        cfg.tripRecencyPenaltyMs = penalty_ms;
        cfg.tripRecencyWindowMs = 1e6; // no decay within the session
        auto store =
            core::EmbeddingStore::createMutable(smallModel(), 11);
        Router router(smallModel(), store,
                      sched::Topology::synthetic(4, 2), cfg);
        FaultConfig throwing;
        throwing.taskExceptionRate = 1.0;
        throwing.seed = 3;
        const FaultSchedule script(
            {{0.0, 0, throwing}, {25.0, 0, FaultConfig{}}}, {}, {});
        return router.serve(dense, batches, arrivals,
                            core::PrefetchSpec::paperDefault(),
                            &script);
    };

    const auto shy = run(500.0);
    const auto eager = run(0.0);
    EXPECT_LT(shy.perInstance[0].served,
              eager.perInstance[0].served);
    EXPECT_GT(eager.perInstance[0].served, 0u);
    for (const auto *rs : {&shy, &eager}) {
        EXPECT_EQ(rs->total.arrived,
                  rs->total.served + rs->total.shed +
                      rs->total.failed);
    }
}

TEST_F(ResilienceTest, PartialDrainServesPinnedRetriesInPlace)
{
    // A global fault phase keeps a steady stream of pinned retries in
    // flight when instance 0 crashes. With a residual core configured
    // the drain serves them in place instead of re-routing; without
    // one, the partial-drain counter must stay zero.
    const auto arrivals = PoissonLoadGen(0.5, 13).arrivals(300);
    const auto run = [&](std::size_t residual) {
        RouterConfig cfg = baseConfig();
        cfg.recordPredictions = false;
        cfg.partialDrainCores = residual;
        auto store =
            core::EmbeddingStore::createMutable(smallModel(), 11);
        Router router(smallModel(), store,
                      sched::Topology::synthetic(4, 2), cfg);
        FaultConfig flaky;
        flaky.taskExceptionRate = 0.4;
        flaky.seed = 5;
        const FaultSchedule script(
            {{0.0, -1, flaky}},
            {{40.0, 0, Kind::Crash}, {90.0, 0, Kind::Recover}}, {});
        return router.serve(dense, batches, arrivals,
                            core::PrefetchSpec::paperDefault(),
                            &script);
    };

    const auto full = run(0);
    const auto partial = run(1);
    EXPECT_EQ(full.partialDrainServed, 0u);
    EXPECT_GT(partial.partialDrainServed, 0u);
    for (const auto *rs : {&full, &partial}) {
        EXPECT_EQ(rs->crashes, 1u);
        EXPECT_EQ(rs->total.arrived,
                  rs->total.served + rs->total.shed +
                      rs->total.failed);
    }
}

TEST_F(ResilienceTest, RejectsBadRoutingAndScrubKnobs)
{
    auto store = core::EmbeddingStore::createMutable(smallModel(), 11);
    RouterConfig cfg = baseConfig();
    cfg.halfOpenPenaltyMs = -1.0;
    EXPECT_THROW(Router(smallModel(), store,
                        sched::Topology::synthetic(4, 2), cfg),
                 std::invalid_argument);
    cfg = baseConfig();
    cfg.tripRecencyWindowMs = 0.0;
    EXPECT_THROW(Router(smallModel(), store,
                        sched::Topology::synthetic(4, 2), cfg),
                 std::invalid_argument);

    // A repairing scrubber needs a mutable store handle.
    std::shared_ptr<const core::EmbeddingStore> ro =
        core::EmbeddingStore::create(smallModel(), 11);
    cfg = baseConfig();
    cfg.scrub.enabled = true;
    cfg.scrub.repair = true;
    EXPECT_THROW(Router(smallModel(), ro,
                        sched::Topology::synthetic(4, 2), cfg),
                 std::invalid_argument);
    cfg.scrub.repair = false;
    EXPECT_NO_THROW(Router(smallModel(), ro,
                           sched::Topology::synthetic(4, 2), cfg));
}

} // namespace
