/**
 * @file
 * Tests for the SLA-boundary search.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "serve/loadgen.hpp"
#include "serve/queue_sim.hpp"
#include "serve/sla.hpp"

namespace
{

using namespace dlrmopt::serve;

TEST(SlaSearch, ImpossibleSlaIsInfinite)
{
    SlaSearchConfig cfg;
    cfg.serviceMs = 200.0;
    cfg.slaMs = 100.0;
    EXPECT_TRUE(std::isinf(minCompliantArrivalMs(cfg)));
}

TEST(SlaSearch, BoundaryIsAboveSaturation)
{
    SlaSearchConfig cfg;
    cfg.serviceMs = 10.0;
    cfg.servers = 4;
    cfg.slaMs = 50.0;
    cfg.requests = 4000;
    const double b = minCompliantArrivalMs(cfg);
    EXPECT_GT(b, cfg.serviceMs / 4.0); // above rho = 1
    EXPECT_LT(b, 20.0);                // but not absurdly conservative
}

TEST(SlaSearch, BoundaryIsActuallyCompliant)
{
    SlaSearchConfig cfg;
    cfg.serviceMs = 5.0;
    cfg.servers = 2;
    cfg.slaMs = 25.0;
    cfg.requests = 4000;
    const double b = minCompliantArrivalMs(cfg);

    PoissonLoadGen gen(b, cfg.seed);
    const auto at = simulateQueue(gen.arrivals(cfg.requests),
                                  cfg.serviceMs, cfg.servers);
    EXPECT_LE(at.latency.p95(), cfg.slaMs * 1.001);

    // Slightly inside the saturation side must violate.
    PoissonLoadGen gen2(b * 0.9, cfg.seed);
    const auto inside = simulateQueue(gen2.arrivals(cfg.requests),
                                      cfg.serviceMs, cfg.servers);
    EXPECT_GT(inside.latency.p95(), at.latency.p95() * 0.99);
}

TEST(SlaSearch, FasterServiceToleratesFasterArrivals)
{
    // The Fig. 17 headline: a scheme with smaller service time has a
    // smaller (better) compliant-arrival boundary.
    SlaSearchConfig slow;
    slow.serviceMs = 10.0;
    slow.servers = 4;
    slow.slaMs = 40.0;
    slow.requests = 4000;
    SlaSearchConfig fast = slow;
    fast.serviceMs = 6.0;

    const double b_slow = minCompliantArrivalMs(slow);
    const double b_fast = minCompliantArrivalMs(fast);
    EXPECT_LT(b_fast, b_slow);
    // Roughly proportional to service time under fixed SLA headroom.
    EXPECT_GT(b_slow / b_fast, 1.2);
}

TEST(SlaSearch, RejectsDegenerateConfigs)
{
    SlaSearchConfig cfg; // defaults are valid
    EXPECT_NO_THROW(validate(cfg));

    SlaSearchConfig bad = cfg;
    bad.serviceMs = 0.0;
    EXPECT_THROW(minCompliantArrivalMs(bad), std::invalid_argument);
    bad = cfg;
    bad.serviceMs = std::nan("");
    EXPECT_THROW(minCompliantArrivalMs(bad), std::invalid_argument);
    bad = cfg;
    bad.slaMs = -5.0;
    EXPECT_THROW(minCompliantArrivalMs(bad), std::invalid_argument);
    bad = cfg;
    bad.slaMs = std::nan("");
    EXPECT_THROW(minCompliantArrivalMs(bad), std::invalid_argument);
    bad = cfg;
    bad.servers = 0;
    EXPECT_THROW(minCompliantArrivalMs(bad), std::invalid_argument);
    bad = cfg;
    bad.requests = 0;
    EXPECT_THROW(minCompliantArrivalMs(bad), std::invalid_argument);
    bad = cfg;
    bad.iterations = 0;
    EXPECT_THROW(minCompliantArrivalMs(bad), std::invalid_argument);
}

TEST(SlaSearchShedding, SheddingToleratesFasterArrivalsThanStrict)
{
    // With load shedding, the server can run closer to saturation:
    // the compliant-arrival boundary at a 5% shed budget is at or
    // below (faster than) the strict no-shed boundary.
    SlaSearchConfig cfg;
    cfg.serviceMs = 5.0;
    cfg.servers = 2;
    cfg.slaMs = 25.0;
    cfg.requests = 4000;
    const double strict = minCompliantArrivalMs(cfg);
    const double shed = minCompliantArrivalShedding(cfg, 0.05);
    EXPECT_LE(shed, strict * 1.001);

    // And the boundary actually honors the shed budget.
    PoissonLoadGen gen(shed, cfg.seed);
    const auto st = simulateQueueShedding(gen.arrivals(cfg.requests),
                                          cfg.serviceMs, cfg.servers,
                                          cfg.slaMs);
    EXPECT_LE(st.shedRate(), 0.05 * 1.001);
    EXPECT_LE(st.latency.p95(), cfg.slaMs);
}

TEST(SlaSearchShedding, ImpossibleServiceAndBadBudgetRejected)
{
    SlaSearchConfig cfg;
    cfg.serviceMs = 200.0;
    cfg.slaMs = 100.0;
    EXPECT_TRUE(std::isinf(minCompliantArrivalShedding(cfg, 0.1)));

    SlaSearchConfig ok;
    EXPECT_THROW(minCompliantArrivalShedding(ok, -0.1),
                 std::invalid_argument);
    EXPECT_THROW(minCompliantArrivalShedding(ok, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(minCompliantArrivalShedding(ok, std::nan("")),
                 std::invalid_argument);
}

TEST(SlaSearch, MoreServersToleratesFasterArrivals)
{
    SlaSearchConfig few;
    few.serviceMs = 8.0;
    few.servers = 2;
    few.slaMs = 40.0;
    few.requests = 4000;
    SlaSearchConfig many = few;
    many.servers = 8;
    EXPECT_LT(minCompliantArrivalMs(many),
              minCompliantArrivalMs(few));
}

} // namespace
