/**
 * @file
 * Tests for the tenant registry: config validation, SLA-class
 * defaulting from the model class (Table 1), dense id assignment,
 * duplicate-name rejection, and the DRR weight vector handed to the
 * shared queue.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/tenant.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;

core::ModelConfig
tinyModel(const char *name)
{
    core::ModelConfig m;
    m.name = name;
    m.cls = core::ModelClass::RMC2;
    m.rows = 512;
    m.dim = 8;
    m.tables = 2;
    m.lookups = 2;
    m.bottomMlp = {8, 8};
    m.topMlp = {4, 1};
    return m;
}

TenantConfig
tenant(const char *name)
{
    TenantConfig t;
    t.name = name;
    t.model = tinyModel(name);
    return t;
}

TEST(TenantConfig, ValidateRejectsBadBindings)
{
    TenantConfig t = tenant("ok");
    t.validate();

    t = tenant("x");
    t.name = "";
    EXPECT_THROW(t.validate(), std::invalid_argument);

    t = tenant("x");
    t.weight = 0.0;
    EXPECT_THROW(t.validate(), std::invalid_argument);

    t = tenant("x");
    t.slaMs = -1.0;
    EXPECT_THROW(t.validate(), std::invalid_argument);

    t = tenant("x");
    t.model.tables = 0;
    EXPECT_THROW(t.validate(), std::invalid_argument);

    t = tenant("x");
    t.service = ServiceModel{-1.0, 0.0};
    EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(TenantConfig, SlaDefaultsToTheModelClassTarget)
{
    TenantConfig t = tenant("sla");
    EXPECT_DOUBLE_EQ(t.effectiveSlaMs(), t.model.slaMs());
    t.slaMs = 7.5;
    EXPECT_DOUBLE_EQ(t.effectiveSlaMs(), 7.5);
}

TEST(TenantRegistry, AssignsDenseIdsAndRejectsDuplicates)
{
    TenantRegistry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.add(tenant("ranking")), 0u);
    EXPECT_EQ(reg.add(tenant("retrieval")), 1u);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.idOf("retrieval"), 1u);
    EXPECT_EQ(reg.tenant(0).name, "ranking");
    EXPECT_THROW(reg.add(tenant("ranking")), std::invalid_argument);
    EXPECT_THROW(reg.idOf("ads"), std::out_of_range);
}

TEST(TenantRegistry, WeightsComeOutInIdOrder)
{
    TenantRegistry reg;
    TenantConfig a = tenant("a");
    a.weight = 1.0;
    TenantConfig b = tenant("b");
    b.weight = 3.0;
    reg.add(a);
    reg.add(b);
    const std::vector<double> w = reg.weights();
    ASSERT_EQ(w.size(), 2u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
    EXPECT_DOUBLE_EQ(w[1], 3.0);
}

TEST(TenantStats, ConservationAndGoodput)
{
    TenantStats t;
    t.stats.arrived = 10;
    t.stats.served = 6;
    t.stats.shed = 3;
    t.stats.failed = 1;
    t.compliant = 5;
    EXPECT_TRUE(t.conserved());
    EXPECT_DOUBLE_EQ(t.goodput(), 0.5);
    EXPECT_DOUBLE_EQ(t.complianceOfServed(), 5.0 / 6.0);
    t.stats.failed = 0;
    EXPECT_FALSE(t.conserved());
}

} // namespace
