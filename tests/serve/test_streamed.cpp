/**
 * @file
 * Tests for the stage-pipelined streaming dispatch (serveStreamed):
 * per-stage service pricing (StageServiceModel), real gather/compute
 * overlap on disjoint cores, steady-state makespan tracking the
 * bottleneck stage, fault containment mid-pipeline, degradation
 * collapse to sequential dispatch, and buffer-fingerprint stability.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/embedding_store.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "serve/service_model.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;

core::ModelConfig
smallModel()
{
    core::ModelConfig m;
    m.name = "streamed_small";
    m.cls = core::ModelClass::RMC2;
    m.rows = 4096;
    m.dim = 16;
    m.tables = 3;
    m.lookups = 4;
    m.bottomMlp = {24, 16, 16};
    m.topMlp = {8, 1};
    return m;
}

class StreamedTest : public ::testing::Test
{
  protected:
    StreamedTest() : model(smallModel(), 11)
    {
        traces::TraceConfig tc = traces::TraceConfig::forModel(
            smallModel(), traces::Hotness::Medium, 5);
        tc.batchSize = 8;
        traces::TraceGenerator gen(tc);
        for (std::size_t b = 0; b < 16; ++b)
            batches.push_back(gen.batch(b));
        dense.reshape(8, smallModel().denseDim());
        dense.randomize(3);
    }

    /** Streamed baseline config: batching on, generous SLA. */
    ServerConfig
    streamedConfig() const
    {
        ServerConfig cfg;
        cfg.slaMs = 80.0;
        cfg.service = ServiceModel::constant(1.0);
        cfg.batching.enabled = true;
        cfg.batching.maxRequests = 4;
        cfg.streamed = true;
        return cfg;
    }

    core::DlrmModel model;
    std::vector<core::SparseBatch> batches;
    core::Tensor dense;
};

// ---------------------------------------------------------------------------
// StageServiceModel: per-stage pricing of the pipelined dispatch.
// ---------------------------------------------------------------------------

TEST(StageServiceModelTest, SplitPreservesTheTotal)
{
    const ServiceModel total{2.0, 0.5};
    const StageServiceModel s = StageServiceModel::split(total, 0.25);
    EXPECT_DOUBLE_EQ(s.gather.baseMs, 0.5);
    EXPECT_DOUBLE_EQ(s.gather.perSampleMs, 0.125);
    EXPECT_DOUBLE_EQ(s.compute.baseMs, 1.5);
    EXPECT_DOUBLE_EQ(s.compute.perSampleMs, 0.375);
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}}) {
        EXPECT_DOUBLE_EQ(s.sequentialMs(n), total.serviceMs(n));
        EXPECT_DOUBLE_EQ(s.gatherMs(n) + s.computeMs(n),
                         total.serviceMs(n));
    }
}

TEST(StageServiceModelTest, PipelinedCostIsTheSlowerStage)
{
    const StageServiceModel s =
        StageServiceModel::split(ServiceModel::constant(4.0), 0.75);
    EXPECT_DOUBLE_EQ(s.gatherMs(9), 3.0);
    EXPECT_DOUBLE_EQ(s.computeMs(9), 1.0);
    EXPECT_DOUBLE_EQ(s.pipelinedMs(9), 3.0);
    EXPECT_DOUBLE_EQ(s.sequentialMs(9), 4.0);

    const StageServiceModel t =
        StageServiceModel::split(ServiceModel::constant(4.0), 0.25);
    EXPECT_DOUBLE_EQ(t.pipelinedMs(9), 3.0); // compute-bound now
}

TEST(StageServiceModelTest, SplitRejectsDegenerateFractions)
{
    const ServiceModel total{1.0, 0.1};
    EXPECT_THROW(StageServiceModel::split(total, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(StageServiceModel::split(total, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(StageServiceModel::split(total, -0.5),
                 std::invalid_argument);
    EXPECT_THROW(StageServiceModel::split(total, std::nan("")),
                 std::invalid_argument);
    EXPECT_NO_THROW(StageServiceModel::split(total, 0.5).validate());
}

// ---------------------------------------------------------------------------
// Construction contracts.
// ---------------------------------------------------------------------------

TEST_F(StreamedTest, StreamedRequiresBatchingAndAValidFraction)
{
    ServerConfig cfg;
    cfg.streamed = true; // batching left disabled
    EXPECT_THROW(Server(model, sched::Topology::synthetic(2, 2), cfg),
                 std::invalid_argument);

    cfg.batching.enabled = true;
    cfg.gatherFraction = 1.0;
    EXPECT_THROW(Server(model, sched::Topology::synthetic(2, 2), cfg),
                 std::invalid_argument);

    cfg.gatherFraction = 0.5;
    EXPECT_NO_THROW(Server(model, sched::Topology::synthetic(2, 2), cfg));
}

// ---------------------------------------------------------------------------
// Clean streams: everything served, stages really overlap.
// ---------------------------------------------------------------------------

TEST_F(StreamedTest, ServesACleanStreamWithRealOverlap)
{
    Server srv(model, sched::Topology::synthetic(2, 2), streamedConfig());

    // Everything queued at once: the pipeline stays full throughout.
    const std::vector<double> arrivals(64, 0.0);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_EQ(st.arrived, 64u);
    EXPECT_EQ(st.served, 64u);
    EXPECT_EQ(st.shed, 0u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.retried, 0u);
    EXPECT_EQ(st.latency.count(), 64u);
    EXPECT_GT(st.dispatches, 1u);
    EXPECT_GT(st.execTotalMs, 0.0);

    // The streamed win in one inequality: both lanes were busy for
    // longer than the session took, so gather and compute overlapped.
    EXPECT_GT(st.gatherBusyMs, 0.0);
    EXPECT_GT(st.computeBusyMs, 0.0);
    EXPECT_LT(st.makespanMs, st.gatherBusyMs + st.computeBusyMs);
    EXPECT_GT(st.serverUtilization, 0.0);
    EXPECT_LE(st.serverUtilization, 1.0 + 1e-12);
}

TEST_F(StreamedTest, SteadyStateMakespanTracksTheBottleneckStage)
{
    // With every dispatch the same size, the recurrence collapses to
    // a closed form: the first dispatch fills the pipeline (g + c),
    // every later one costs only the slower stage. Checked for a
    // compute-bound and a gather-bound split.
    const std::size_t d = 16;
    const std::vector<double> arrivals(d, 0.0);
    for (const double f : {0.25, 0.75}) {
        ServerConfig cfg = streamedConfig();
        cfg.admission = false;
        cfg.batching.maxRequests = 1; // one request per dispatch
        cfg.gatherFraction = f;
        Server srv(model, sched::Topology::synthetic(2, 2), cfg);

        const auto st = srv.serve(dense, batches, arrivals);
        const double g = f, c = 1.0 - f;

        ASSERT_EQ(st.served, d) << "fraction " << f;
        ASSERT_EQ(st.dispatches, d);
        EXPECT_NEAR(st.makespanMs,
                    g + c + static_cast<double>(d - 1) * std::max(g, c),
                    1e-9)
            << "fraction " << f;
        EXPECT_NEAR(st.gatherBusyMs, static_cast<double>(d) * g, 1e-9);
        EXPECT_NEAR(st.computeBusyMs, static_cast<double>(d) * c, 1e-9);

        // The acceptance bound the serving bench also asserts: the
        // steady-state per-dispatch cost stays within 1.15x of the
        // bottleneck stage (here it is exactly the bottleneck).
        const double steady = (st.makespanMs - (g + c)) /
                              static_cast<double>(d - 1);
        EXPECT_NEAR(steady, std::max(g, c), 1e-9);
        EXPECT_LE(steady, 1.15 * std::max(g, c));

        // The same stream through a collapsed (single-core) pipeline
        // pays both stages per dispatch: overlap is the entire win.
        Server solo(model, sched::Topology::synthetic(1, 2), cfg);
        const auto sq = solo.serve(dense, batches, arrivals);
        EXPECT_EQ(sq.served, d);
        EXPECT_NEAR(sq.makespanMs, static_cast<double>(d) * (g + c),
                    1e-9);
        EXPECT_LT(st.makespanMs, sq.makespanMs);
    }
}

TEST_F(StreamedTest, SingleCoreCollapsesToSequentialDispatch)
{
    ServerConfig cfg = streamedConfig();
    cfg.admission = false;
    cfg.batching.maxRequests = 1;
    Server srv(model, sched::Topology::synthetic(1, 2), cfg);

    const std::vector<double> arrivals(8, 0.0);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_EQ(st.served, 8u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_NEAR(st.makespanMs, 8.0, 1e-9); // g + c back to back, x8
    // One lane, saturated from t=0: utilization accounting must not
    // divide by phantom second lane.
    EXPECT_NEAR(st.serverUtilization, 1.0, 1e-9);
}

TEST_F(StreamedTest, StreamedPredictionsMatchBatchedBitwise)
{
    // The same request stream through serveStreamed and serveBatched
    // must leave bitwise-identical predictions for the final dispatch
    // (both paths resolve to the same coalesced groups on the same
    // virtual clock, and the pipelined kernels are bit-stable).
    ServerConfig cfg = streamedConfig();
    const std::vector<double> arrivals(12, 0.0);

    Server streamed(model, sched::Topology::synthetic(2, 2), cfg);
    const auto ss = streamed.serve(dense, batches, arrivals);
    ASSERT_EQ(ss.served, 12u);
    const core::Tensor& sp = streamed.lastPredictions();
    const std::vector<float> want(sp.data(), sp.data() + sp.size());

    ServerConfig plain = cfg;
    plain.streamed = false;
    Server batched(model, sched::Topology::synthetic(2, 2), plain);
    const auto bs = batched.serve(dense, batches, arrivals);
    ASSERT_EQ(bs.served, 12u);
    const core::Tensor& bp = batched.lastPredictions();

    ASSERT_EQ(bp.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(want[i], bp.data()[i]) << "prediction " << i;
}

// ---------------------------------------------------------------------------
// Faults mid-pipeline: containment, conservation, reproducibility.
// ---------------------------------------------------------------------------

TEST_F(StreamedTest, PoisonedMemberMidPipelineFailsAlone)
{
    FaultConfig fc;
    fc.seed = 33;
    fc.corruptIndexRate = 0.08;
    fc.taskExceptionRate = 0.05;
    const FaultInjector inj(fc);

    ServerConfig cfg = streamedConfig();
    cfg.slaMs = 60.0;
    cfg.maxRetries = 3;
    Server srv(model, sched::Topology::synthetic(2, 2), cfg, &inj);

    const auto arrivals = PoissonLoadGen(1.0, 7).arrivals(160);
    const auto st = srv.serve(dense, batches, arrivals);
    const std::size_t ws_fp = srv.workspaceFingerprint();

    // Faults really hit, yet every request is accounted for exactly
    // once and the overwhelming majority still gets served: a
    // poisoned member is quarantined before staging, so it never
    // takes its batch siblings (or the sibling rotation set) down.
    EXPECT_GT(inj.injectedCorruptions() + inj.injectedExceptions(), 0u);
    EXPECT_GT(st.retried, 0u);
    EXPECT_EQ(st.served + st.shed + st.failed, 160u);
    EXPECT_GT(st.served, st.failed);
    EXPECT_EQ(st.latency.count(), st.served);

    // Bit-reproducible: the identical session replays to identical
    // counters and never reallocates a workspace buffer.
    const auto st2 = srv.serve(dense, batches, arrivals);
    EXPECT_EQ(st2.served, st.served);
    EXPECT_EQ(st2.shed, st.shed);
    EXPECT_EQ(st2.failed, st.failed);
    EXPECT_EQ(st2.retried, st.retried);
    EXPECT_EQ(st2.dispatches, st.dispatches);
    EXPECT_DOUBLE_EQ(st2.makespanMs, st.makespanMs);
    EXPECT_DOUBLE_EQ(st2.latency.p95(), st.latency.p95());
    EXPECT_EQ(srv.workspaceFingerprint(), ws_fp);
}

TEST_F(StreamedTest, InFlightStageFailureDrainsWithoutCorruption)
{
    // A hot exception rate with no retry budget: dispatches keep
    // failing members while their siblings' stage (the other rotation
    // set) is in flight. The pipeline must drain every dispatch and
    // the workspace must stay put.
    FaultConfig fc;
    fc.seed = 9;
    fc.taskExceptionRate = 0.30;
    const FaultInjector inj(fc);

    ServerConfig cfg = streamedConfig();
    cfg.maxRetries = 0;
    Server srv(model, sched::Topology::synthetic(2, 2), cfg, &inj);

    const std::vector<double> arrivals(96, 0.0);
    const auto st = srv.serve(dense, batches, arrivals);
    const std::size_t ws_fp = srv.workspaceFingerprint();

    EXPECT_GT(st.failed, 0u);
    EXPECT_GT(st.served, 0u);
    EXPECT_EQ(st.served + st.shed + st.failed, 96u);

    // A follow-up session on the same server still accounts for
    // everything: no poisoned state leaked across sessions.
    const auto again = srv.serve(dense, batches, arrivals);
    EXPECT_EQ(again.served + again.shed + again.failed, 96u);
    EXPECT_EQ(srv.workspaceFingerprint(), ws_fp);
}

TEST_F(StreamedTest, OverloadShedsAndProtectsTheTail)
{
    // Hopeless overload: admission control must shed, and what the
    // pipelined path *does* serve must stay within the SLA (the
    // deadline of an in-flight stage is priced at admission).
    ServerConfig cfg = streamedConfig();
    cfg.slaMs = 10.0;
    cfg.batching.maxRequests = 2;
    Server srv(model, sched::Topology::synthetic(2, 2), cfg);

    const auto arrivals = PoissonLoadGen(0.2, 3).arrivals(300);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_GT(st.shed, 0u);
    EXPECT_EQ(st.served + st.shed, 300u);
    EXPECT_LE(st.latency.p95(), cfg.slaMs);
}

TEST_F(StreamedTest, TierCollapseDrainsThePipelineAndGoesSequential)
{
    // Sustained latency pressure with degradation enabled: the tier
    // controller must escalate (eventually to the sequential scheme,
    // which drains the in-flight stage before dispatching), and the
    // session must still account for every request.
    ServerConfig cfg = streamedConfig();
    cfg.slaMs = 6.0;
    cfg.service = ServiceModel::constant(2.0);
    cfg.admission = false; // let the backlog build real latency
    cfg.degrade.enabled = true;
    cfg.degrade.window = 8;
    cfg.degrade.cooldown = 8;
    Server srv(model, sched::Topology::synthetic(2, 2), cfg);

    const std::vector<double> arrivals(120, 0.0);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_EQ(st.served, 120u);
    EXPECT_EQ(st.shed, 0u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_GT(st.degradeEscalations, 0u);
    EXPECT_GT(st.finalTier, 0);
}

// ---------------------------------------------------------------------------
// Bit-flip quarantine: store integrity around the overlapped gather.
// ---------------------------------------------------------------------------

TEST_F(StreamedTest, BitFlipQuarantineRestoresBitwiseServing)
{
    auto mut = core::EmbeddingStore::createMutable(smallModel(), 11);
    const core::DlrmModel m(smallModel(), mut, 11);

    ServerConfig cfg = streamedConfig();
    Server srv(m, sched::Topology::synthetic(2, 2), cfg);

    // Pristine baseline through the overlapped gather path.
    const std::vector<double> arrivals(12, 0.0);
    const auto base = srv.serve(dense, batches, arrivals);
    ASSERT_EQ(base.served, 12u);
    const core::Tensor& p0 = srv.lastPredictions();
    const std::vector<float> want(p0.data(), p0.data() + p0.size());
    const std::size_t ws_fp = srv.workspaceFingerprint();

    // A DRAM upset flips one stored row bit: the block's checksum
    // stops verifying, nothing else announces the corruption.
    FaultConfig fc;
    fc.seed = 5;
    fc.bitFlipRate = 1.0;
    const FaultInjector flipper(fc);
    ASSERT_TRUE(flipper.maybeFlipStoredBit(*mut, 0, 0));
    const auto bad = mut->findCorruptBlocks();
    ASSERT_EQ(bad.size(), 1u);

    // Quarantine + repair (the Router integrity sweep's job), then
    // the identical streamed session must serve bit-identical
    // predictions again — zero wrong answers survive the upset.
    mut->repairBlock(bad[0].table, bad[0].block);
    EXPECT_TRUE(mut->findCorruptBlocks().empty());

    const auto st = srv.serve(dense, batches, arrivals);
    EXPECT_EQ(st.served, 12u);
    const core::Tensor& p1 = srv.lastPredictions();
    ASSERT_EQ(p1.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(want[i], p1.data()[i]) << "prediction " << i;
    EXPECT_EQ(srv.workspaceFingerprint(), ws_fp);
}

// ---------------------------------------------------------------------------
// Concurrent handoff stress: the TSan target for the double-buffered
// gather/compute overlap (real pool, real kernels, many rotations).
// ---------------------------------------------------------------------------

TEST_F(StreamedTest, ConcurrentHandoffStressIsRaceFree)
{
    ServerConfig cfg = streamedConfig();
    cfg.batching.maxRequests = 2; // more dispatches = more handoffs
    Server srv(model, sched::Topology::synthetic(2, 2), cfg);

    const std::vector<double> arrivals(48, 0.0);
    for (int round = 0; round < 3; ++round) {
        const auto st = srv.serve(dense, batches, arrivals);
        ASSERT_EQ(st.served, 48u) << "round " << round;
        ASSERT_EQ(st.failed, 0u);
    }
}

} // namespace
