/**
 * @file
 * Tests for the deterministic fault-injection layer: same seed, same
 * faults — plus rate calibration and index poisoning.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <new>
#include <stdexcept>

#include "core/embedding_store.hpp"
#include "serve/fault.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;

core::SparseBatch
tinyBatch()
{
    core::SparseBatch b;
    b.batchSize = 2;
    b.indices = {{1, 2, 3, 4}, {5, 6}};
    b.offsets = {{0, 2, 4}, {0, 1, 2}};
    return b;
}

TEST(FaultInjector, RejectsBadConfig)
{
    FaultConfig bad;
    bad.taskExceptionRate = 1.5;
    EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
    bad = {};
    bad.corruptIndexRate = -0.1;
    EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
    bad = {};
    bad.stragglerFactor = 0.5;
    EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
}

TEST(FaultInjector, ValidateCoversEveryKnob)
{
    // The injector's ctor defers to FaultConfig::validate(); these
    // exercise validate() directly, including the numCores overload
    // the ctor cannot check.
    FaultConfig bad;
    bad.bitFlipRate = 1.01;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = {};
    bad.bitFlipRate = -0.5;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = {};
    bad.stragglerFactor = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = {};
    bad.stragglerCore = -2;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad = {};
    bad.stragglerCore = 4;
    EXPECT_NO_THROW(bad.validate());    // core count unknown
    EXPECT_NO_THROW(bad.validate(8));   // in range
    EXPECT_THROW(bad.validate(4), std::invalid_argument);
    EXPECT_NO_THROW(FaultConfig{}.validate());
}

TEST(FaultInjector, DecisionsAreDeterministicInSeed)
{
    FaultConfig cfg;
    cfg.seed = 99;
    cfg.taskExceptionRate = 0.2;
    cfg.allocFailureRate = 0.1;
    cfg.corruptIndexRate = 0.15;
    const FaultInjector a(cfg), b(cfg);
    for (std::uint64_t req = 0; req < 500; ++req) {
        for (std::uint64_t att = 0; att < 3; ++att) {
            EXPECT_EQ(a.taskExceptionHits(req, att),
                      b.taskExceptionHits(req, att));
            EXPECT_EQ(a.allocFailureHits(req, att),
                      b.allocFailureHits(req, att));
            EXPECT_EQ(a.corruptionHits(req, att),
                      b.corruptionHits(req, att));
        }
    }

    cfg.seed = 100;
    const FaultInjector c(cfg);
    int diff = 0;
    for (std::uint64_t req = 0; req < 500; ++req) {
        if (a.taskExceptionHits(req, 0) != c.taskExceptionHits(req, 0))
            ++diff;
    }
    EXPECT_GT(diff, 0);
}

TEST(FaultInjector, HitRatesMatchConfiguredProbability)
{
    FaultConfig cfg;
    cfg.taskExceptionRate = 0.05;
    const FaultInjector inj(cfg);
    int hits = 0;
    for (std::uint64_t req = 0; req < 20'000; ++req) {
        if (inj.taskExceptionHits(req, 0))
            ++hits;
    }
    EXPECT_NEAR(hits / 20'000.0, 0.05, 0.01);
}

TEST(FaultInjector, MaybeThrowRaisesAndCounts)
{
    FaultConfig cfg;
    cfg.taskExceptionRate = 1.0;
    const FaultInjector inj(cfg);
    EXPECT_THROW(inj.maybeThrow(0, 0), InjectedFault);
    EXPECT_EQ(inj.injectedExceptions(), 1u);

    FaultConfig alloc_cfg;
    alloc_cfg.allocFailureRate = 1.0;
    const FaultInjector alloc_inj(alloc_cfg);
    EXPECT_THROW(alloc_inj.maybeThrow(0, 0), std::bad_alloc);
    EXPECT_EQ(alloc_inj.injectedAllocFailures(), 1u);

    const FaultInjector clean{FaultConfig{}};
    EXPECT_NO_THROW(clean.maybeThrow(0, 0));
}

TEST(FaultInjector, CorruptionDrivesOneIndexOutOfRange)
{
    const std::size_t rows = 100;
    FaultConfig cfg;
    cfg.corruptIndexRate = 1.0;
    const FaultInjector inj(cfg);

    const auto batch = tinyBatch();
    ASSERT_TRUE(batch.valid(rows));
    const auto poisoned = inj.maybeCorrupt(batch, rows, 7, 0);
    EXPECT_FALSE(poisoned.valid(rows));
    EXPECT_EQ(inj.injectedCorruptions(), 1u);

    // Exactly one index differs, and it is out of range.
    int diffs = 0;
    for (std::size_t t = 0; t < batch.numTables(); ++t) {
        for (std::size_t i = 0; i < batch.indices[t].size(); ++i) {
            if (batch.indices[t][i] != poisoned.indices[t][i]) {
                ++diffs;
                EXPECT_GE(poisoned.indices[t][i],
                          static_cast<dlrmopt::RowIndex>(rows));
            }
        }
    }
    EXPECT_EQ(diffs, 1);

    // No hit -> untouched copy.
    FaultConfig off;
    const FaultInjector none(off);
    const auto same = none.maybeCorrupt(batch, rows, 7, 0);
    EXPECT_TRUE(same.valid(rows));
    EXPECT_EQ(same.indices, batch.indices);
}

TEST(FaultInjector, BitFlipCorruptsExactlyOneVerifiableBlock)
{
    core::ModelConfig m;
    m.name = "flip_tiny";
    m.cls = core::ModelClass::RMC2;
    m.rows = 512;
    m.dim = 8;
    m.tables = 2;
    m.lookups = 2;
    m.bottomMlp = {8, 8};
    m.topMlp = {4, 1};
    auto store = core::EmbeddingStore::createMutable(m, 21);
    ASSERT_TRUE(store->findCorruptBlocks().empty());

    FaultConfig cfg;
    cfg.bitFlipRate = 1.0;
    cfg.seed = 5;
    const FaultInjector inj(cfg);
    ASSERT_TRUE(inj.bitFlipHits(0, 0));
    EXPECT_TRUE(inj.maybeFlipStoredBit(*store, 0, 0));
    EXPECT_EQ(inj.injectedBitFlips(), 1u);

    // Checksums localize the damage to exactly one block; repair
    // restores a clean store.
    const auto corrupt = store->findCorruptBlocks();
    ASSERT_EQ(corrupt.size(), 1u);
    store->repairBlock(corrupt[0].table, corrupt[0].block);
    EXPECT_TRUE(store->findCorruptBlocks().empty());

    // Site choice is deterministic in (seed, req, attempt): replaying
    // the hit flips the same bit back out of the same block.
    EXPECT_TRUE(inj.maybeFlipStoredBit(*store, 0, 0));
    const auto again = store->findCorruptBlocks();
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].table, corrupt[0].table);
    EXPECT_EQ(again[0].block, corrupt[0].block);

    // Rate 0 never touches the store.
    const FaultInjector off{FaultConfig{}};
    EXPECT_FALSE(off.bitFlipHits(0, 0));
    EXPECT_FALSE(off.maybeFlipStoredBit(*store, 0, 0));
    EXPECT_EQ(off.injectedBitFlips(), 0u);
}

TEST(FaultInjector, BitFlipRateCalibratesLikeOtherFaults)
{
    FaultConfig cfg;
    cfg.bitFlipRate = 0.05;
    cfg.seed = 77;
    const FaultInjector inj(cfg), twin(cfg);
    int hits = 0;
    for (std::uint64_t req = 0; req < 20'000; ++req) {
        const bool h = inj.bitFlipHits(req, 0);
        EXPECT_EQ(h, twin.bitFlipHits(req, 0));
        if (h)
            ++hits;
    }
    EXPECT_NEAR(hits / 20'000.0, 0.05, 0.01);
}

TEST(FaultInjector, StragglerFactorAppliesToOneCore)
{
    FaultConfig cfg;
    cfg.stragglerCore = 2;
    cfg.stragglerFactor = 4.0;
    const FaultInjector inj(cfg);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(0), 1.0);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(1), 1.0);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(2), 4.0);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(3), 1.0);
}

} // namespace
