/**
 * @file
 * Tests for the deterministic fault-injection layer: same seed, same
 * faults — plus rate calibration and index poisoning.
 */

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>

#include "serve/fault.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;

core::SparseBatch
tinyBatch()
{
    core::SparseBatch b;
    b.batchSize = 2;
    b.indices = {{1, 2, 3, 4}, {5, 6}};
    b.offsets = {{0, 2, 4}, {0, 1, 2}};
    return b;
}

TEST(FaultInjector, RejectsBadConfig)
{
    FaultConfig bad;
    bad.taskExceptionRate = 1.5;
    EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
    bad = {};
    bad.corruptIndexRate = -0.1;
    EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
    bad = {};
    bad.stragglerFactor = 0.5;
    EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
}

TEST(FaultInjector, DecisionsAreDeterministicInSeed)
{
    FaultConfig cfg;
    cfg.seed = 99;
    cfg.taskExceptionRate = 0.2;
    cfg.allocFailureRate = 0.1;
    cfg.corruptIndexRate = 0.15;
    const FaultInjector a(cfg), b(cfg);
    for (std::uint64_t req = 0; req < 500; ++req) {
        for (std::uint64_t att = 0; att < 3; ++att) {
            EXPECT_EQ(a.taskExceptionHits(req, att),
                      b.taskExceptionHits(req, att));
            EXPECT_EQ(a.allocFailureHits(req, att),
                      b.allocFailureHits(req, att));
            EXPECT_EQ(a.corruptionHits(req, att),
                      b.corruptionHits(req, att));
        }
    }

    cfg.seed = 100;
    const FaultInjector c(cfg);
    int diff = 0;
    for (std::uint64_t req = 0; req < 500; ++req) {
        if (a.taskExceptionHits(req, 0) != c.taskExceptionHits(req, 0))
            ++diff;
    }
    EXPECT_GT(diff, 0);
}

TEST(FaultInjector, HitRatesMatchConfiguredProbability)
{
    FaultConfig cfg;
    cfg.taskExceptionRate = 0.05;
    const FaultInjector inj(cfg);
    int hits = 0;
    for (std::uint64_t req = 0; req < 20'000; ++req) {
        if (inj.taskExceptionHits(req, 0))
            ++hits;
    }
    EXPECT_NEAR(hits / 20'000.0, 0.05, 0.01);
}

TEST(FaultInjector, MaybeThrowRaisesAndCounts)
{
    FaultConfig cfg;
    cfg.taskExceptionRate = 1.0;
    const FaultInjector inj(cfg);
    EXPECT_THROW(inj.maybeThrow(0, 0), InjectedFault);
    EXPECT_EQ(inj.injectedExceptions(), 1u);

    FaultConfig alloc_cfg;
    alloc_cfg.allocFailureRate = 1.0;
    const FaultInjector alloc_inj(alloc_cfg);
    EXPECT_THROW(alloc_inj.maybeThrow(0, 0), std::bad_alloc);
    EXPECT_EQ(alloc_inj.injectedAllocFailures(), 1u);

    const FaultInjector clean{FaultConfig{}};
    EXPECT_NO_THROW(clean.maybeThrow(0, 0));
}

TEST(FaultInjector, CorruptionDrivesOneIndexOutOfRange)
{
    const std::size_t rows = 100;
    FaultConfig cfg;
    cfg.corruptIndexRate = 1.0;
    const FaultInjector inj(cfg);

    const auto batch = tinyBatch();
    ASSERT_TRUE(batch.valid(rows));
    const auto poisoned = inj.maybeCorrupt(batch, rows, 7, 0);
    EXPECT_FALSE(poisoned.valid(rows));
    EXPECT_EQ(inj.injectedCorruptions(), 1u);

    // Exactly one index differs, and it is out of range.
    int diffs = 0;
    for (std::size_t t = 0; t < batch.numTables(); ++t) {
        for (std::size_t i = 0; i < batch.indices[t].size(); ++i) {
            if (batch.indices[t][i] != poisoned.indices[t][i]) {
                ++diffs;
                EXPECT_GE(poisoned.indices[t][i],
                          static_cast<dlrmopt::RowIndex>(rows));
            }
        }
    }
    EXPECT_EQ(diffs, 1);

    // No hit -> untouched copy.
    FaultConfig off;
    const FaultInjector none(off);
    const auto same = none.maybeCorrupt(batch, rows, 7, 0);
    EXPECT_TRUE(same.valid(rows));
    EXPECT_EQ(same.indices, batch.indices);
}

TEST(FaultInjector, StragglerFactorAppliesToOneCore)
{
    FaultConfig cfg;
    cfg.stragglerCore = 2;
    cfg.stragglerFactor = 4.0;
    const FaultInjector inj(cfg);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(0), 1.0);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(1), 1.0);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(2), 4.0);
    EXPECT_DOUBLE_EQ(inj.serviceFactor(3), 1.0);
}

} // namespace
