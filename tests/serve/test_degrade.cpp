/**
 * @file
 * Tests for the sliding-window p95 tracker and the graceful
 * degradation tier controller.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/degrade.hpp"
#include "serve/latency_stats.hpp"

namespace
{

using namespace dlrmopt::serve;

TEST(WindowedP95, MatchesLatencyStatsOnPartialWindow)
{
    WindowedP95 win(100);
    LatencyStats ref;
    for (int i = 0; i < 40; ++i) {
        const double v = (i * 37) % 23 + 0.5;
        win.add(v);
        ref.add(v);
    }
    EXPECT_FALSE(win.full());
    EXPECT_DOUBLE_EQ(win.p95(), ref.p95());
}

TEST(WindowedP95, OldSamplesFallOutOfTheWindow)
{
    WindowedP95 win(10);
    for (int i = 0; i < 10; ++i)
        win.add(1000.0); // ancient spike
    for (int i = 0; i < 10; ++i)
        win.add(1.0); // calm recent history
    EXPECT_TRUE(win.full());
    EXPECT_DOUBLE_EQ(win.p95(), 1.0);
}

TEST(WindowedP95, EmptyAndDegenerate)
{
    WindowedP95 win(4);
    EXPECT_DOUBLE_EQ(win.p95(), 0.0);
    EXPECT_THROW(WindowedP95(0), std::invalid_argument);
}

DegradeConfig
fastConfig()
{
    DegradeConfig c;
    c.enabled = true;
    c.window = 16;
    c.cooldown = 16;
    return c;
}

TEST(DegradationPolicy, EscalatesUnderSustainedTailPressure)
{
    DegradationPolicy p(fastConfig(), 100.0);
    EXPECT_EQ(p.tier(), 0);
    for (int i = 0; i < 64 && p.tier() == 0; ++i)
        p.observe(95.0); // p95 above 0.9 * SLA
    EXPECT_EQ(p.tier(), 1);
    EXPECT_GE(p.escalations(), 1u);

    // Keep the pressure on: walks the ladder but never past maxTier.
    for (int i = 0; i < 500; ++i)
        p.observe(95.0);
    EXPECT_EQ(p.tier(), DegradationPolicy::maxTier());
}

TEST(DegradationPolicy, RecoversAfterCalmCooldown)
{
    DegradationPolicy p(fastConfig(), 100.0);
    for (int i = 0; i < 64 && p.tier() == 0; ++i)
        p.observe(95.0);
    ASSERT_GE(p.tier(), 1);
    const int peak = p.tier();

    for (int i = 0; i < 500; ++i)
        p.observe(10.0); // far below 0.5 * SLA
    EXPECT_LT(p.tier(), peak);
    EXPECT_EQ(p.tier(), 0);
}

TEST(DegradationPolicy, DisabledPolicyNeverMoves)
{
    DegradeConfig c = fastConfig();
    c.enabled = false;
    DegradationPolicy p(c, 100.0);
    for (int i = 0; i < 500; ++i)
        p.observe(99.0);
    EXPECT_EQ(p.tier(), 0);
    EXPECT_EQ(p.escalations(), 0u);
}

TEST(DegradationPolicy, HysteresisPreventsFlapping)
{
    // Latencies oscillating around the high-water mark must not cause
    // a tier change per sample: cooldown bounds the change rate.
    DegradationPolicy p(fastConfig(), 100.0);
    std::size_t changes = 0;
    int last = p.tier();
    for (int i = 0; i < 320; ++i) {
        p.observe(i % 2 ? 96.0 : 85.0);
        if (p.tier() != last) {
            ++changes;
            last = p.tier();
        }
    }
    EXPECT_LE(changes, 320u / 16u);
}

TEST(DegradationPolicy, TierStatesFormTheDocumentedLadder)
{
    using dlrmopt::core::EmbDtype;

    const auto t0 = DegradationPolicy::stateForTier(0);
    EXPECT_EQ(t0.dtype, EmbDtype::Fp32);
    EXPECT_DOUBLE_EQ(t0.batchFraction, 1.0);
    EXPECT_TRUE(t0.prefetchEnabled);
    EXPECT_TRUE(dlrmopt::core::usesMpHt(t0.scheme));
    EXPECT_DOUBLE_EQ(t0.serviceFactor, 1.0);
    EXPECT_DOUBLE_EQ(t0.knobFactor, 1.0);

    // Precision drops before any work is shed: tiers 1-2 serve every
    // admitted sample, just cheaper.
    const auto t1 = DegradationPolicy::stateForTier(1);
    EXPECT_EQ(t1.dtype, EmbDtype::Bf16);
    EXPECT_DOUBLE_EQ(t1.batchFraction, 1.0);
    EXPECT_TRUE(t1.prefetchEnabled);
    EXPECT_DOUBLE_EQ(t1.knobFactor, 1.0);
    EXPECT_LT(t1.serviceFactor, 1.0);

    const auto t2 = DegradationPolicy::stateForTier(2);
    EXPECT_EQ(t2.dtype, EmbDtype::Int8);
    EXPECT_DOUBLE_EQ(t2.batchFraction, 1.0);
    EXPECT_LT(t2.serviceFactor, t1.serviceFactor);

    // Only after precision is exhausted does work shrink.
    const auto t3 = DegradationPolicy::stateForTier(3);
    EXPECT_EQ(t3.dtype, EmbDtype::Int8);
    EXPECT_LT(t3.batchFraction, 1.0);
    EXPECT_TRUE(t3.prefetchEnabled);

    const auto t4 = DegradationPolicy::stateForTier(4);
    EXPECT_FALSE(t4.prefetchEnabled);
    EXPECT_TRUE(dlrmopt::core::usesMpHt(t4.scheme));

    const auto t5 = DegradationPolicy::stateForTier(5);
    EXPECT_FALSE(t5.prefetchEnabled);
    EXPECT_FALSE(dlrmopt::core::usesMpHt(t5.scheme));

    // serviceFactor = knobFactor * dtype speedup at every tier (the
    // invariant that keeps dtype-aware pricing from double-counting).
    for (int t = 0; t <= DegradationPolicy::maxTier(); ++t) {
        const auto s = DegradationPolicy::stateForTier(t);
        EXPECT_LE(s.serviceFactor, s.knobFactor) << "tier " << t;
        EXPECT_GT(s.serviceFactor, 0.0) << "tier " << t;
    }
    // The ladder only ever gets cheaper going down.
    for (int t = 1; t <= DegradationPolicy::maxTier(); ++t) {
        EXPECT_LT(DegradationPolicy::stateForTier(t).serviceFactor,
                  DegradationPolicy::stateForTier(t - 1).serviceFactor)
            << "tier " << t;
    }

    // Beyond the ladder clamps to the deepest tier.
    EXPECT_EQ(DegradationPolicy::stateForTier(7).tier, 5);

    EXPECT_THROW(DegradationPolicy(fastConfig(), 0.0),
                 std::invalid_argument);
}

} // namespace
