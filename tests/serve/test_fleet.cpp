/**
 * @file
 * Acceptance tests for the multi-tenant fleet (ISSUE 6): weighted-fair
 * admission isolating a light tenant from a flooding one, per-tenant
 * admission budgets charging the flooder, elastic capacity spending
 * strictly fewer instance-ms than static provisioning on a bursty
 * stream, conservation invariants (arrived == served + shed + failed,
 * per tenant and aggregate) under clean, overloaded and chaos
 * sessions, and bit-reproducibility under a fixed seed.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "sched/topology.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/fleet.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;
using Kind = LifecycleEvent::Kind;

core::ModelConfig
tenantModel(const char *name, std::size_t rows)
{
    core::ModelConfig m;
    m.name = name;
    m.cls = core::ModelClass::RMC2;
    m.rows = rows;
    m.dim = 16;
    m.tables = 2;
    m.lookups = 4;
    m.bottomMlp = {24, 16, 16};
    m.topMlp = {8, 1};
    return m;
}

/** Evenly spaced arrivals: n requests, one every gap_ms from t0. */
std::vector<double>
evenArrivals(std::size_t n, double gap_ms, double t0 = 0.0)
{
    std::vector<double> a;
    a.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        a.push_back(t0 + static_cast<double>(i) * gap_ms);
    return a;
}

class FleetTest : public ::testing::Test
{
  protected:
    TenantConfig
    makeTenant(const char *name, std::size_t rows, double sla_ms,
               double weight) const
    {
        TenantConfig t;
        t.name = name;
        t.model = tenantModel(name, rows);
        t.slaMs = sla_ms;
        t.weight = weight;
        t.service = ServiceModel::constant(1.0);
        t.truth = ServiceTimeline(ServiceModel::constant(1.0));
        return t;
    }

    TenantWorkload
    makeWork(const core::ModelConfig& m, std::uint64_t seed,
             std::vector<double> arrivals) const
    {
        traces::TraceConfig tc = traces::TraceConfig::forModel(
            m, traces::Hotness::Medium, seed);
        tc.batchSize = 4;
        traces::TraceGenerator gen(tc);
        TenantWorkload w;
        for (std::size_t b = 0; b < 8; ++b)
            w.batches.push_back(gen.batch(b));
        w.dense.reshape(4, m.denseDim());
        w.dense.randomize(seed);
        w.arrivalsMs = std::move(arrivals);
        return w;
    }

    FleetConfig
    baseConfig() const
    {
        FleetConfig cfg;
        cfg.instances = 2;
        cfg.batching.maxRequests = 4;
        cfg.batching.maxLingerMs = 0.2;
        return cfg;
    }

    sched::Topology topo = sched::Topology::synthetic(4, 2);
};

TEST_F(FleetTest, ServesTwoCleanStreamsWithConservation)
{
    TenantRegistry reg;
    reg.add(makeTenant("ranking", 4096, 20.0, 1.0));
    reg.add(makeTenant("retrieval", 2048, 30.0, 1.0));
    TenantFleet fleet(reg, topo, baseConfig());
    EXPECT_EQ(fleet.numTenants(), 2u);
    EXPECT_EQ(fleet.numInstances(), 2u);
    EXPECT_EQ(fleet.coresPerInstance(), 2u);

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5,
                            evenArrivals(30, 1.0)));
    work.push_back(makeWork(reg.tenant(1).model, 6,
                            evenArrivals(30, 1.0)));
    const FleetStats fs = fleet.serve(work);

    EXPECT_TRUE(fs.conserved());
    EXPECT_EQ(fs.total.arrived, 60u);
    ASSERT_EQ(fs.perTenant.size(), 2u);
    for (const TenantStats& t : fs.perTenant) {
        EXPECT_EQ(t.stats.arrived, 30u);
        EXPECT_GT(t.stats.served, 0u);
        EXPECT_GT(t.compliant, 0u);
    }
    EXPECT_GT(fs.makespanMs, 0.0);
    EXPECT_GT(fs.total.dispatches, 0u);
    EXPECT_FALSE(fs.summary().empty());
}

TEST_F(FleetTest, SessionIsDeterministicUnderFixedSeed)
{
    TenantRegistry reg;
    reg.add(makeTenant("a", 4096, 15.0, 1.0));
    reg.add(makeTenant("b", 2048, 25.0, 2.0));

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5,
                            evenArrivals(40, 0.4)));
    work.push_back(makeWork(reg.tenant(1).model, 6,
                            evenArrivals(40, 0.6)));

    TenantFleet f1(reg, topo, baseConfig());
    TenantFleet f2(reg, topo, baseConfig());
    const FleetStats s1 = f1.serve(work);
    const FleetStats s2 = f2.serve(work);

    EXPECT_EQ(s1.total.served, s2.total.served);
    EXPECT_EQ(s1.total.shed, s2.total.shed);
    EXPECT_EQ(s1.total.failed, s2.total.failed);
    EXPECT_EQ(s1.compliant, s2.compliant);
    EXPECT_EQ(s1.total.dispatches, s2.total.dispatches);
    EXPECT_DOUBLE_EQ(s1.makespanMs, s2.makespanMs);
    EXPECT_DOUBLE_EQ(s1.total.latency.p95(), s2.total.latency.p95());
    for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_EQ(s1.perTenant[k].stats.served,
                  s2.perTenant[k].stats.served);
        EXPECT_EQ(s1.perTenant[k].compliant,
                  s2.perTenant[k].compliant);
    }
}

TEST_F(FleetTest, WfqIsolatesALightTenantFromAFloodingOne)
{
    // Victim: one request every 2 ms — well within its fair share of
    // 2 instances x 2 cores at ~1 ms/dispatch. Flooder: 10x the
    // victim's rate, more than the whole fleet can absorb. The
    // victim's goodput must not fall below its isolated-run floor:
    // the flood burns its own deficit and its own budget, never the
    // victim's dispatch bandwidth.
    const double horizon = 60.0;
    TenantConfig victim = makeTenant("victim", 4096, 10.0, 1.0);
    TenantConfig flood = makeTenant("flood", 2048, 10.0, 1.0);
    // An affine service law makes coalescing cost real time (a
    // 4-request group of 4-sample batches runs 4.5 ms), so the fleet
    // tops out near 3.6 req/ms and the flood is a ~3x overload.
    for (TenantConfig *t : {&victim, &flood}) {
        t->service = ServiceModel{0.5, 0.25};
        t->truth = ServiceTimeline(ServiceModel{0.5, 0.25});
    }

    // Isolated floor: the victim alone on an identical fleet.
    double isolated_goodput = 0.0;
    {
        TenantRegistry reg;
        reg.add(victim);
        TenantFleet fleet(reg, topo, baseConfig());
        std::vector<TenantWorkload> work;
        work.push_back(makeWork(victim.model, 5,
                                evenArrivals(30, horizon / 30.0)));
        const FleetStats fs = fleet.serve(work);
        ASSERT_TRUE(fs.conserved());
        isolated_goodput = fs.perTenant[0].goodput();
        ASSERT_GT(isolated_goodput, 0.9);
    }

    TenantRegistry reg;
    const std::size_t vid = reg.add(victim);
    const std::size_t fid = reg.add(flood);
    TenantFleet fleet(reg, topo, baseConfig());
    std::vector<TenantWorkload> work;
    work.push_back(makeWork(victim.model, 5,
                            evenArrivals(30, horizon / 30.0)));
    work.push_back(makeWork(flood.model, 6,
                            evenArrivals(600, horizon / 600.0)));
    const FleetStats fs = fleet.serve(work);

    EXPECT_TRUE(fs.conserved());
    // SLA isolation: the victim keeps its isolated-run goodput (small
    // tolerance for group-formation boundary effects).
    EXPECT_GE(fs.perTenant[vid].goodput(), isolated_goodput - 0.05);
    // The flood pays for the overload itself.
    EXPECT_GT(fs.perTenant[fid].stats.shed, 0u);
    EXPECT_LT(fs.perTenant[fid].goodput(),
              fs.perTenant[vid].goodput());
}

TEST_F(FleetTest, AdmissionBudgetChargesTheFlooderAtArrival)
{
    TenantConfig victim = makeTenant("victim", 4096, 10.0, 1.0);
    TenantConfig flood = makeTenant("flood", 2048, 10.0, 1.0);
    flood.admissionBudget = 4;
    for (TenantConfig *t : {&victim, &flood}) {
        t->service = ServiceModel{0.5, 0.25};
        t->truth = ServiceTimeline(ServiceModel{0.5, 0.25});
    }

    TenantRegistry reg;
    reg.add(victim);
    const std::size_t fid = reg.add(flood);
    TenantFleet fleet(reg, topo, baseConfig());
    std::vector<TenantWorkload> work;
    work.push_back(makeWork(victim.model, 5, evenArrivals(20, 2.0)));
    work.push_back(makeWork(flood.model, 6, evenArrivals(200, 0.2)));
    const FleetStats fs = fleet.serve(work);

    EXPECT_TRUE(fs.conserved());
    EXPECT_GT(fs.budgetShed, 0u);
    EXPECT_GT(fs.perTenant[fid].budgetShed, 0u);
    EXPECT_EQ(fs.perTenant[0].budgetShed, 0u);
    // Budget sheds are part of the tenant's shed count (conservation
    // is checked over them too).
    EXPECT_GE(fs.perTenant[fid].stats.shed,
              fs.perTenant[fid].budgetShed);
}

TEST_F(FleetTest, ElasticSpendsFewerInstanceMsThanStaticOnABurst)
{
    // A 25 ms burst followed by a long sparse tail. Static keeps
    // every instance up for the whole session; elastic rides the
    // burst up and the lull down, so it must spend strictly fewer
    // instance-ms while conserving every request.
    TenantRegistry reg;
    reg.add(makeTenant("diurnal", 4096, 20.0, 1.0));
    std::vector<double> arrivals = evenArrivals(50, 0.5);
    for (std::size_t i = 0; i < 10; ++i)
        arrivals.push_back(50.0 + static_cast<double>(i) * 20.0);

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5, arrivals));

    FleetConfig scfg = baseConfig();
    scfg.instances = 3;
    TenantFleet sfleet(reg, sched::Topology::synthetic(6, 2), scfg);
    const FleetStats sstat = sfleet.serve(work);
    ASSERT_TRUE(sstat.conserved());
    EXPECT_NEAR(sstat.instanceMsUp, 3.0 * sstat.makespanMs, 1e-6);

    FleetConfig ecfg = scfg;
    ecfg.capacity.elastic = true;
    ecfg.capacity.minInstances = 1;
    ecfg.capacity.windowMs = 5.0;
    ecfg.capacity.downLag = 2;
    ecfg.capacity.probationMs = 1.0;
    TenantFleet efleet(reg, sched::Topology::synthetic(6, 2), ecfg);
    const FleetStats estat = efleet.serve(work);

    EXPECT_TRUE(estat.conserved());
    EXPECT_LT(estat.instanceMsUp, sstat.instanceMsUp);
    EXPECT_GT(estat.scaleUps, 0u);
    EXPECT_GT(estat.scaleDowns, 0u);
    EXPECT_GT(estat.peakForecastLoad, 0.0);
    // Elasticity trades provisioning for at most a modest goodput
    // dip on this stream (the bench asserts the strict comparison on
    // a full diurnal replay).
    EXPECT_GE(estat.perTenant[0].goodput(),
              sstat.perTenant[0].goodput() - 0.15);
}

TEST_F(FleetTest, DegradationTiersAreScopedPerTenant)
{
    // Both tenants run the *same* degradation knobs, but only the
    // flooding tenant builds latency pressure against its tight SLA.
    // Its policy must escalate — shrinking its own coalescing cap —
    // while the calm neighbour's policy, fed only its own latencies,
    // stays at tier 0 on the very same instances.
    TenantRegistry reg;
    TenantConfig pressured = makeTenant("pressured", 4096, 8.0, 1.0);
    pressured.degrade.enabled = true;
    pressured.degrade.window = 16;
    pressured.degrade.cooldown = 16;
    TenantConfig calm = makeTenant("calm", 2048, 60.0, 1.0);
    calm.degrade = pressured.degrade;
    reg.add(pressured);
    reg.add(calm);

    FleetConfig cfg = baseConfig();
    cfg.admission = false; // let the backlog produce real latencies

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5,
                            evenArrivals(200, 0.05)));
    work.push_back(makeWork(reg.tenant(1).model, 6,
                            evenArrivals(20, 3.0)));

    TenantFleet fleet(reg, topo, cfg);
    const FleetStats fs = fleet.serve(work);

    EXPECT_TRUE(fs.conserved());
    ASSERT_EQ(fs.perTenant.size(), 2u);
    EXPECT_GT(fs.perTenant[0].stats.degradeEscalations, 0u);
    EXPECT_GT(fs.perTenant[0].stats.finalTier, 0);
    EXPECT_EQ(fs.perTenant[1].stats.degradeEscalations, 0u);
    EXPECT_EQ(fs.perTenant[1].stats.finalTier, 0);
}

TEST_F(FleetTest, ChaosSessionConservesAndRecovers)
{
    TenantRegistry reg;
    reg.add(makeTenant("a", 4096, 20.0, 1.0));
    reg.add(makeTenant("b", 2048, 20.0, 1.0));

    FleetConfig cfg = baseConfig();
    cfg.scrub.enabled = true;
    cfg.scrub.intervalMs = 0.5;
    cfg.scrub.blocksPerTick = 4;
    cfg.capacity.probationMs = 2.0;
    TenantFleet fleet(reg, topo, cfg);

    // Crash instance 0 mid-burst, recover it, and flip a stored bit
    // in a row both tenants hold (a host-level memory fault).
    FaultSchedule schedule(
        {}, {{10.0, 0, Kind::Crash}, {25.0, 0, Kind::Recover}},
        {BitFlipEvent{5.0, 0, 100, 3}});

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5,
                            evenArrivals(60, 0.8)));
    work.push_back(makeWork(reg.tenant(1).model, 6,
                            evenArrivals(60, 0.8)));
    const FleetStats fs = fleet.serve(work,
                                      core::PrefetchSpec::paperDefault(),
                                      &schedule);

    EXPECT_TRUE(fs.conserved());
    EXPECT_EQ(fs.crashes, 1u);
    EXPECT_GE(fs.restarts, 1u);
    EXPECT_GT(fs.blocksScrubbed, 0u);
    // The flip landed in both tenants' stores; the scrubbers repair
    // both copies in the background.
    EXPECT_GE(fs.scrubCorruptions, 2u);
    EXPECT_GE(fs.scrubRepairs, 2u);
    for (std::size_t k = 0; k < fleet.numTenants(); ++k)
        EXPECT_TRUE(fleet.store(k).findCorruptBlocks().empty());
}

TEST_F(FleetTest, LosingEveryInstanceForGoodAbandonsTheQueueLoudly)
{
    TenantRegistry reg;
    reg.add(makeTenant("stranded", 4096, 20.0, 1.0));
    TenantFleet fleet(reg, topo, baseConfig());

    FaultSchedule schedule(
        {}, {{2.0, 0, Kind::Crash}, {2.0, 1, Kind::Crash}}, {});
    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5,
                            evenArrivals(30, 0.5)));
    const FleetStats fs = fleet.serve(work,
                                      core::PrefetchSpec::paperDefault(),
                                      &schedule);

    EXPECT_TRUE(fs.conserved());
    EXPECT_GT(fs.lifecycleShed, 0u);
    EXPECT_GT(fs.total.failed, 0u);
    EXPECT_EQ(fs.crashes, 2u);
    EXPECT_EQ(fs.restarts, 0u);
}

TEST_F(FleetTest, RecalibrationTracksAScriptedServiceDrift)
{
    // The seed estimate says 0.5 ms flat; the scripted truth doubles
    // its slope mid-session. With recalibration on, the fleet's final
    // estimate error must be small and not stale.
    TenantConfig t = makeTenant("drifty", 4096, 30.0, 1.0);
    t.service = ServiceModel::constant(0.5);
    t.truth = ServiceTimeline(std::vector<ServiceTimeline::Segment>{
        {0.0, ServiceModel{0.5, 0.05}},
        {25.0, ServiceModel{1.0, 0.1}},
    });
    TenantRegistry reg;
    reg.add(t);

    FleetConfig cfg = baseConfig();
    cfg.recalibration.enabled = true;
    cfg.recalibration.intervalMs = 5.0;
    cfg.recalibration.window = 32;
    cfg.recalibration.minObservations = 8;
    TenantFleet fleet(reg, topo, cfg);

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5,
                            evenArrivals(80, 0.8)));
    const FleetStats fs = fleet.serve(work);

    EXPECT_TRUE(fs.conserved());
    EXPECT_GT(fs.recalibrations, 0u);
    ASSERT_EQ(fs.estimateError.size(), 1u);
    EXPECT_LT(fs.estimateError[0], 0.25);
    EXPECT_EQ(fs.estimateStale[0], 0);
}

TEST_F(FleetTest, RejectsBadShapesAndInputs)
{
    TenantRegistry reg;
    reg.add(makeTenant("only", 4096, 20.0, 1.0));

    EXPECT_THROW(TenantFleet(TenantRegistry{}, topo, baseConfig()),
                 std::invalid_argument);

    FleetConfig bad = baseConfig();
    bad.capacity.minInstances = 5; // > instances
    EXPECT_THROW(TenantFleet(reg, topo, bad), std::invalid_argument);

    TenantFleet fleet(reg, topo, baseConfig());
    EXPECT_THROW(fleet.serve({}), std::invalid_argument);

    TenantWorkload no_batches;
    no_batches.arrivalsMs = {0.0};
    EXPECT_THROW(fleet.serve({no_batches}), std::invalid_argument);
}


TEST_F(FleetTest, HotTierReplicasServeRepeatedLookups)
{
    TenantRegistry reg;
    reg.add(makeTenant("ranking", 4096, 20.0, 1.0));
    reg.add(makeTenant("retrieval", 2048, 30.0, 1.0));

    FleetConfig cfg = baseConfig();
    cfg.hotTier.budgetBytes = 256 * 1024;
    cfg.hotTier.minAccesses = 1;
    cfg.hotTier.epochLookups = 200;
    TenantFleet fleet(reg, topo, cfg);

    // Every (instance, tenant) replica got its own tier over that
    // tenant's shared cold store.
    for (std::size_t i = 0; i < fleet.numInstances(); ++i) {
        for (std::size_t k = 0; k < fleet.numTenants(); ++k) {
            const core::HotTierCache *t = fleet.hotTier(i, k);
            ASSERT_NE(t, nullptr);
            EXPECT_TRUE(t->matches(fleet.currentStore(k)));
            EXPECT_GT(t->capacityRows(), 0u);
        }
    }

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5,
                            evenArrivals(40, 0.5)));
    work.push_back(makeWork(reg.tenant(1).model, 6,
                            evenArrivals(40, 0.5)));
    const FleetStats fs = fleet.serve(work);

    EXPECT_TRUE(fs.conserved());
    // The request streams cycle 8 batches, so served lookups repeat;
    // online epochs must promote them and later dispatches must hit.
    EXPECT_GT(fs.tierHits + fs.tierMisses, 0u);
    EXPECT_GT(fs.tierPromotions, 0u);
    EXPECT_GT(fs.tierHits, 0u);
    EXPECT_GT(fs.tierHitRate(), 0.0);

    // Without a budget there are no tiers at all.
    TenantFleet bare(reg, topo, baseConfig());
    EXPECT_EQ(bare.hotTier(0, 0), nullptr);
}

TEST_F(FleetTest, ElasticScaleDownsHoldDuringACanaryRollout)
{
    TenantRegistry reg;
    reg.add(makeTenant("ranking", 2048, 50.0, 1.0));

    FleetConfig cfg = baseConfig();
    cfg.instances = 3;
    cfg.capacity.elastic = true;
    cfg.capacity.minInstances = 1;
    cfg.capacity.windowMs = 10.0;
    cfg.capacity.downLag = 2;
    cfg.capacity.forecastDecay = 0.0;
    cfg.reload.loadMs = 2.0;
    cfg.reload.shadowRequests = 2;
    cfg.reload.shadowDriftBudget = 1.0;
    cfg.reload.canaryWindowMs = 60.0;
    cfg.reload.stageHoldMs = 5.0;
    TenantFleet fleet(reg, topo, cfg);

    // A burst that scales the fleet up, then a lull that begins just
    // after the push lands — exactly the window where banked
    // hysteresis credit would otherwise drain the canary mid-rollout.
    std::vector<double> arrivals = evenArrivals(160, 0.25);
    for (double t = 48.0; t <= 160.0; t += 8.0)
        arrivals.push_back(t);
    std::vector<TenantWorkload> work;
    work.push_back(
        makeWork(reg.tenant(0).model, 5, std::move(arrivals)));

    std::vector<ReloadEvent> reloads(1);
    reloads[0].atMs = 45.0;
    reloads[0].tenant = 0;
    reloads[0].newVersion = 2;
    reloads[0].weightSeed = 99;

    const FleetStats fs = fleet.serve(
        work, core::PrefetchSpec::paperDefault(), nullptr, reloads);

    EXPECT_TRUE(fs.conserved());
    ASSERT_EQ(fs.reloadsStarted, 1u);
    ASSERT_EQ(fs.reloadsCommitted, 1u);
    ASSERT_EQ(fs.reloadOutcomes.size(), 1u);
    const ReloadOutcome& ro = fs.reloadOutcomes[0];

    // No controller-initiated drain may land inside the reload's
    // canary/rollout window: a drained instance could be the canary
    // (or mid-swap), churning the pin set the stages are walking.
    for (const double t : fs.scaleDownAtMs) {
        EXPECT_TRUE(t < ro.startedMs || t > ro.finishedMs)
            << "scale-down at " << t << " inside reload ["
            << ro.startedMs << ", " << ro.finishedMs << "]";
    }
    // The lull outlives the rollout, so the shrink the hold deferred
    // does eventually happen — the hold delays, never cancels.
    EXPECT_GT(fs.scaleDowns, 0u);
}

} // namespace
