/**
 * @file
 * Tests for the Poisson load generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "serve/loadgen.hpp"

namespace
{

using dlrmopt::serve::PoissonLoadGen;

TEST(PoissonLoadGen, RejectsNonPositiveMean)
{
    EXPECT_THROW(PoissonLoadGen(0.0), std::invalid_argument);
    EXPECT_THROW(PoissonLoadGen(-3.0), std::invalid_argument);
}

TEST(PoissonLoadGen, RejectsNanAndInfiniteMean)
{
    EXPECT_THROW(PoissonLoadGen(std::nan("")), std::invalid_argument);
    EXPECT_THROW(PoissonLoadGen(
                     std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
}

TEST(PoissonLoadGen, ArrivalsAreStrictlyIncreasing)
{
    PoissonLoadGen g(5.0, 1);
    const auto a = g.arrivals(1000);
    ASSERT_EQ(a.size(), 1000u);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GT(a[i], a[i - 1]);
    EXPECT_GT(a[0], 0.0);
}

TEST(PoissonLoadGen, Deterministic)
{
    PoissonLoadGen a(5.0, 7), b(5.0, 7);
    EXPECT_EQ(a.arrivals(100), b.arrivals(100));
}

TEST(PoissonLoadGen, SeedsChangeTheStream)
{
    PoissonLoadGen a(5.0, 1), b(5.0, 2);
    EXPECT_NE(a.arrivals(50), b.arrivals(50));
}

TEST(PoissonLoadGen, MeanInterarrivalConverges)
{
    const double mean = 12.5;
    PoissonLoadGen g(mean, 3);
    const std::size_t n = 20'000;
    const auto a = g.arrivals(n);
    const double measured = a.back() / static_cast<double>(n);
    EXPECT_NEAR(measured, mean, mean * 0.05);
}

TEST(PoissonLoadGen, ExponentialTailsPresent)
{
    // A Poisson process has inter-arrival gaps both far below and far
    // above the mean (unlike a uniform clock).
    PoissonLoadGen g(10.0, 5);
    const auto a = g.arrivals(5000);
    int below_half = 0, above_double = 0;
    double prev = 0.0;
    for (double t : a) {
        const double gap = t - prev;
        prev = t;
        below_half += gap < 5.0;
        above_double += gap > 20.0;
    }
    EXPECT_GT(below_half, 1000); // P(gap < mean/2) = 39%
    EXPECT_GT(above_double, 300); // P(gap > 2*mean) = 13.5%
}

} // namespace
