/**
 * @file
 * Tests for the Poisson load generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "serve/loadgen.hpp"

namespace
{

using dlrmopt::serve::PoissonLoadGen;

TEST(PoissonLoadGen, RejectsNonPositiveMean)
{
    EXPECT_THROW(PoissonLoadGen(0.0), std::invalid_argument);
    EXPECT_THROW(PoissonLoadGen(-3.0), std::invalid_argument);
}

TEST(PoissonLoadGen, RejectsNanAndInfiniteMean)
{
    EXPECT_THROW(PoissonLoadGen(std::nan("")), std::invalid_argument);
    EXPECT_THROW(PoissonLoadGen(
                     std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
}

TEST(PoissonLoadGen, ArrivalsAreStrictlyIncreasing)
{
    PoissonLoadGen g(5.0, 1);
    const auto a = g.arrivals(1000);
    ASSERT_EQ(a.size(), 1000u);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GT(a[i], a[i - 1]);
    EXPECT_GT(a[0], 0.0);
}

TEST(PoissonLoadGen, Deterministic)
{
    PoissonLoadGen a(5.0, 7), b(5.0, 7);
    EXPECT_EQ(a.arrivals(100), b.arrivals(100));
}

TEST(PoissonLoadGen, SeedsChangeTheStream)
{
    PoissonLoadGen a(5.0, 1), b(5.0, 2);
    EXPECT_NE(a.arrivals(50), b.arrivals(50));
}

TEST(PoissonLoadGen, MeanInterarrivalConverges)
{
    const double mean = 12.5;
    PoissonLoadGen g(mean, 3);
    const std::size_t n = 20'000;
    const auto a = g.arrivals(n);
    const double measured = a.back() / static_cast<double>(n);
    EXPECT_NEAR(measured, mean, mean * 0.05);
}

TEST(PoissonLoadGen, ExponentialTailsPresent)
{
    // A Poisson process has inter-arrival gaps both far below and far
    // above the mean (unlike a uniform clock).
    PoissonLoadGen g(10.0, 5);
    const auto a = g.arrivals(5000);
    int below_half = 0, above_double = 0;
    double prev = 0.0;
    for (double t : a) {
        const double gap = t - prev;
        prev = t;
        below_half += gap < 5.0;
        above_double += gap > 20.0;
    }
    EXPECT_GT(below_half, 1000); // P(gap < mean/2) = 39%
    EXPECT_GT(above_double, 300); // P(gap > 2*mean) = 13.5%
}

TEST(DiurnalLoadGen, RejectsBadKnobs)
{
    using dlrmopt::serve::DiurnalLoadGen;
    EXPECT_THROW(DiurnalLoadGen(0.0, 0.5, 100.0),
                 std::invalid_argument);
    EXPECT_THROW(DiurnalLoadGen(5.0, 1.0, 100.0),
                 std::invalid_argument); // amplitude must be < 1
    EXPECT_THROW(DiurnalLoadGen(5.0, -0.1, 100.0),
                 std::invalid_argument);
    EXPECT_THROW(DiurnalLoadGen(5.0, 0.5, 0.0),
                 std::invalid_argument);
}

TEST(DiurnalLoadGen, RateOscillatesAroundTheBase)
{
    // rate(t) = base * (1 + A sin(2pi (t/T + phase))): the crest sits
    // a quarter period in, the trough three quarters in.
    dlrmopt::serve::DiurnalLoadGen g(10.0, 0.5, 100.0, 0.0, 3);
    EXPECT_NEAR(g.rateAt(0.0), 0.1, 1e-12);
    EXPECT_NEAR(g.rateAt(25.0), 0.15, 1e-12);
    EXPECT_NEAR(g.rateAt(75.0), 0.05, 1e-12);
    EXPECT_NEAR(g.rateAt(100.0), g.rateAt(0.0), 1e-12);
}

TEST(DiurnalLoadGen, PhaseShiftsTheCurve)
{
    // A half-period phase offset models the second tenant peaking
    // while the first one troughs (diurnal skew).
    dlrmopt::serve::DiurnalLoadGen a(10.0, 0.5, 100.0, 0.0, 3);
    dlrmopt::serve::DiurnalLoadGen b(10.0, 0.5, 100.0, 0.5, 3);
    EXPECT_NEAR(a.rateAt(25.0), b.rateAt(75.0), 1e-12);
    EXPECT_NEAR(a.rateAt(75.0), b.rateAt(25.0), 1e-12);
}

TEST(DiurnalLoadGen, ArrivalsAreAscendingDeterministicAndPeakBiased)
{
    using dlrmopt::serve::DiurnalLoadGen;
    DiurnalLoadGen g(2.0, 0.8, 200.0, 0.0, 11);
    const auto a = g.arrivalsUntil(1000.0);
    ASSERT_GT(a.size(), 100u);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GT(a[i], a[i - 1]);
    EXPECT_LT(a.back(), 1000.0);
    EXPECT_EQ(a, DiurnalLoadGen(2.0, 0.8, 200.0, 0.0, 11)
                     .arrivalsUntil(1000.0));

    // More arrivals land in peak half-periods than trough ones.
    std::size_t peak = 0, trough = 0;
    for (double t : a) {
        const double frac =
            t / 200.0 - std::floor(t / 200.0); // position in period
        (frac < 0.5 ? peak : trough) += 1;
    }
    EXPECT_GT(peak, trough * 2);
}

TEST(DiurnalLoadGen, ZeroAmplitudeCountsMatchThePoissonRate)
{
    // With A = 0 thinning accepts everything: the stream is a plain
    // exponential process at the base rate.
    dlrmopt::serve::DiurnalLoadGen g(10.0, 0.0, 100.0, 0.0, 5);
    const auto a = g.arrivalsUntil(50'000.0);
    const double measured =
        50'000.0 / static_cast<double>(a.size());
    EXPECT_NEAR(measured, 10.0, 0.5);
}

} // namespace
