/**
 * @file
 * Tests for the FCFS multi-server queueing simulator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "serve/loadgen.hpp"
#include "serve/queue_sim.hpp"

namespace
{

using namespace dlrmopt::serve;

TEST(QueueSim, RejectsBadArguments)
{
    EXPECT_THROW(simulateQueue({1.0}, 5.0, 0), std::invalid_argument);
    EXPECT_THROW(
        simulateQueue({1.0, 2.0}, std::vector<double>{5.0}, 1),
        std::invalid_argument);
}

TEST(QueueSim, UnloadedRequestsSeeServiceTimeOnly)
{
    // Arrivals far apart: latency == service time.
    const auto r = simulateQueue({0.0, 100.0, 200.0}, 5.0, 1);
    ASSERT_EQ(r.latency.count(), 3u);
    for (double l : r.latency.samples())
        EXPECT_DOUBLE_EQ(l, 5.0);
}

TEST(QueueSim, BackToBackArrivalsQueueUp)
{
    // Three simultaneous arrivals, one server, service 10:
    // latencies 10, 20, 30.
    const auto r = simulateQueue({0.0, 0.0, 0.0}, 10.0, 1);
    auto s = r.latency.samples();
    std::sort(s.begin(), s.end());
    EXPECT_DOUBLE_EQ(s[0], 10.0);
    EXPECT_DOUBLE_EQ(s[1], 20.0);
    EXPECT_DOUBLE_EQ(s[2], 30.0);
}

TEST(QueueSim, MoreServersAbsorbBursts)
{
    const auto one = simulateQueue({0.0, 0.0, 0.0, 0.0}, 10.0, 1);
    const auto four = simulateQueue({0.0, 0.0, 0.0, 0.0}, 10.0, 4);
    EXPECT_DOUBLE_EQ(four.latency.max(), 10.0);
    EXPECT_DOUBLE_EQ(one.latency.max(), 40.0);
}

TEST(QueueSim, PerRequestServiceTimes)
{
    const auto r =
        simulateQueue({0.0, 0.0}, std::vector<double>{5.0, 1.0}, 1);
    auto s = r.latency.samples();
    // FCFS: first request served first (5), second waits 5 then
    // takes 1.
    EXPECT_DOUBLE_EQ(s[0], 5.0);
    EXPECT_DOUBLE_EQ(s[1], 6.0);
}

TEST(QueueSim, UtilizationBounded)
{
    PoissonLoadGen g(10.0, 1);
    const auto r = simulateQueue(g.arrivals(500), 5.0, 2);
    EXPECT_GT(r.serverUtilization, 0.0);
    EXPECT_LE(r.serverUtilization, 1.0);
}

TEST(QueueSim, FasterServiceShortensTail)
{
    // The Fig. 17 mechanism: a faster scheme (smaller service time)
    // reduces p95 latency at the same arrival rate.
    PoissonLoadGen g(6.0, 3);
    const auto arrivals = g.arrivals(2000);
    const auto slow = simulateQueue(arrivals, 5.5, 1);
    const auto fast = simulateQueue(arrivals, 3.5, 1);
    EXPECT_LT(fast.latency.p95(), slow.latency.p95());
}

TEST(QueueSim, SaturationBlowsUpTail)
{
    // Arrival rate above service capacity: queue grows without
    // bound, p95 far exceeds service time (the "saturation region").
    PoissonLoadGen g(4.0, 9);
    const auto arrivals = g.arrivals(2000);
    const auto sat = simulateQueue(arrivals, 5.0, 1); // rho = 1.25
    EXPECT_GT(sat.latency.p95(), 100.0);
    const auto ok = simulateQueue(arrivals, 2.0, 1); // rho = 0.5
    EXPECT_LT(ok.latency.p95(), 50.0);
}

TEST(QueueSimShedding, LightLoadShedsNothingAndMatchesPlainSim)
{
    PoissonLoadGen g(10.0, 5);
    const auto arrivals = g.arrivals(1000);
    const auto plain = simulateQueue(arrivals, 5.0, 2);
    const auto shed = simulateQueueShedding(arrivals, 5.0, 2, 500.0);
    EXPECT_EQ(shed.arrived, 1000u);
    EXPECT_EQ(shed.served, 1000u);
    EXPECT_EQ(shed.shed, 0u);
    EXPECT_EQ(shed.latency.samples(), plain.latency.samples());
    EXPECT_DOUBLE_EQ(shed.serverUtilization, plain.serverUtilization);
}

TEST(QueueSimShedding, OverloadShedsButProtectsServedTail)
{
    // rho = 1.25: the unbounded queue blows through any SLA, while
    // the shedding variant drops just enough load that every request
    // it *does* serve finishes within the deadline.
    PoissonLoadGen g(4.0, 9);
    const auto arrivals = g.arrivals(2000);
    const auto st = simulateQueueShedding(arrivals, 5.0, 1, 30.0);
    EXPECT_GT(st.shed, 0u);
    EXPECT_EQ(st.served + st.shed, 2000u);
    EXPECT_LE(st.latency.p95(), 30.0);
    EXPECT_GT(st.shedRate(), 0.0);
    EXPECT_LT(st.shedRate(), 1.0);
}

TEST(QueueSimShedding, AdmissionOffReducesToPlainSimulation)
{
    PoissonLoadGen g(4.0, 9);
    const auto arrivals = g.arrivals(500);
    const auto plain = simulateQueue(arrivals, 5.0, 1);
    const auto open =
        simulateQueueShedding(arrivals, 5.0, 1, 30.0, false);
    EXPECT_EQ(open.shed, 0u);
    EXPECT_EQ(open.served, 500u);
    EXPECT_EQ(open.latency.samples(), plain.latency.samples());
}

TEST(QueueSimShedding, RejectsBadArguments)
{
    EXPECT_THROW(simulateQueueShedding({1.0}, 5.0, 0, 10.0),
                 std::invalid_argument);
    EXPECT_THROW(simulateQueueShedding({1.0}, 0.0, 1, 10.0),
                 std::invalid_argument);
    EXPECT_THROW(simulateQueueShedding({1.0}, 5.0, 1, 0.0),
                 std::invalid_argument);
}

} // namespace
