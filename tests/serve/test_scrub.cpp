/**
 * @file
 * Tests for background checksum scrubbing: the round-robin sweep over
 * every (table, block) pair, bounded detection latency for a silent
 * flip in a *cold* block no request would touch, backlog catch-up on
 * sparse virtual-clock ticks, verify-only mode over a const store,
 * and the Router integration (scrub counters in RouterStats, a
 * scripted flip repaired in the background).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "core/embedding_store.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/loadgen.hpp"
#include "serve/router.hpp"
#include "serve/scrub.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;

core::ModelConfig
smallModel()
{
    core::ModelConfig m;
    m.name = "scrub_small";
    m.cls = core::ModelClass::RMC2;
    m.rows = 1024;
    m.dim = 16;
    m.tables = 2;
    m.lookups = 4;
    m.bottomMlp = {24, 16, 16};
    m.topMlp = {8, 1};
    return m;
}

TEST(ScrubConfig, ValidateRejectsBadKnobs)
{
    ScrubConfig c;
    c.intervalMs = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.blocksPerTick = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.validate();
}

TEST(Scrubber, RepairRequiresAMutableStore)
{
    std::shared_ptr<const core::EmbeddingStore> ro =
        core::EmbeddingStore::create(smallModel(), 7, 128);
    ScrubConfig cfg;
    cfg.enabled = true;
    cfg.repair = true;
    EXPECT_THROW(EmbeddingScrubber(ro, cfg), std::invalid_argument);
    cfg.repair = false;
    EmbeddingScrubber ok(ro, cfg);
    EXPECT_EQ(ok.blocksPerSweep(),
              ro->numTables() * ro->numBlocks());
}

TEST(Scrubber, OneSweepFindsAndRepairsAColdFlip)
{
    // Flip a bit in the *last* block of the last table — a block the
    // on-demand integrity path would only reach by request luck. One
    // full sweep must find and repair it regardless.
    auto store = core::EmbeddingStore::createMutable(smallModel(), 7,
                                                     128);
    const std::size_t t = store->numTables() - 1;
    const std::size_t b = store->numBlocks() - 1;
    store->flipBit(t, (b + 1) * store->blockRows() - 1, 3);
    ASSERT_FALSE(store->verifyBlock(t, b));

    ScrubConfig cfg;
    cfg.enabled = true;
    cfg.intervalMs = 1.0;
    cfg.blocksPerTick = 2;
    EmbeddingScrubber s(store, cfg);

    // Worst-case detection latency is one sweep period.
    const double sweep_ms =
        cfg.intervalMs *
        static_cast<double>(
            (s.blocksPerSweep() + cfg.blocksPerTick - 1) /
            cfg.blocksPerTick);
    s.advanceTo(sweep_ms + 1.0);
    EXPECT_EQ(s.corruptionsFound(), 1u);
    EXPECT_EQ(s.blocksRepaired(), 1u);
    EXPECT_GE(s.sweepsCompleted(), 1u);
    EXPECT_TRUE(store->verifyBlock(t, b));
    EXPECT_TRUE(store->findCorruptBlocks().empty());
}

TEST(Scrubber, QuantizedStoresScrubJustLikeFp32)
{
    // The checksum sweep covers reduced-precision stores too: a
    // payload flip in a bf16 store and a *metadata* flip (a scale
    // bit past the code payload) in an int8 store are both found and
    // repaired within one sweep.
    for (const core::EmbDtype dtype :
         {core::EmbDtype::Bf16, core::EmbDtype::Int8}) {
        auto store = core::EmbeddingStore::createMutable(
            smallModel(), 7, 128, dtype);
        ASSERT_EQ(store->dtype(), dtype);
        const std::size_t dim = store->table(0).dim();
        const std::size_t bit = dtype == core::EmbDtype::Int8
                                    ? dim * 8 + 5 // scale mantissa
                                    : 3;
        store->flipBit(1, store->blockRows() + 7, bit);
        ASSERT_FALSE(store->verifyBlock(1, 1));

        ScrubConfig cfg;
        cfg.enabled = true;
        cfg.intervalMs = 1.0;
        cfg.blocksPerTick = 2;
        EmbeddingScrubber s(store, cfg);
        const double sweep_ms =
            cfg.intervalMs *
            static_cast<double>(
                (s.blocksPerSweep() + cfg.blocksPerTick - 1) /
                cfg.blocksPerTick);
        s.advanceTo(sweep_ms + 1.0);
        EXPECT_EQ(s.corruptionsFound(), 1u)
            << core::embDtypeName(dtype);
        EXPECT_EQ(s.blocksRepaired(), 1u)
            << core::embDtypeName(dtype);
        EXPECT_TRUE(store->findCorruptBlocks().empty())
            << core::embDtypeName(dtype);
    }
}

TEST(Scrubber, VerifyOnlyCountsButNeverRepairs)
{
    auto store = core::EmbeddingStore::createMutable(smallModel(), 7,
                                                     128);
    store->flipBit(0, 0, 0);

    ScrubConfig cfg;
    cfg.enabled = true;
    cfg.intervalMs = 1.0;
    cfg.blocksPerTick = 4;
    cfg.repair = false;
    EmbeddingScrubber s(
        std::shared_ptr<const core::EmbeddingStore>(store), cfg);
    s.advanceTo(1e4);
    EXPECT_GE(s.corruptionsFound(), 1u); // re-found every sweep
    EXPECT_EQ(s.blocksRepaired(), 0u);
    EXPECT_FALSE(store->verifyBlock(0, 0));
}

TEST(Scrubber, BacklogTicksRunOnSparseAdvances)
{
    // Coverage must depend on virtual time only, not on how often the
    // caller happens to call advanceTo.
    auto s1_store = core::EmbeddingStore::createMutable(smallModel(), 7);
    auto s2_store = core::EmbeddingStore::createMutable(smallModel(), 7);
    ScrubConfig cfg;
    cfg.enabled = true;
    cfg.intervalMs = 2.0;
    cfg.blocksPerTick = 1;
    EmbeddingScrubber fine(s1_store, cfg);
    EmbeddingScrubber coarse(s2_store, cfg);

    for (int t = 1; t <= 100; ++t)
        fine.advanceTo(static_cast<double>(t));
    coarse.advanceTo(100.0);
    EXPECT_EQ(fine.blocksScrubbed(), coarse.blocksScrubbed());
    EXPECT_EQ(fine.sweepsCompleted(), coarse.sweepsCompleted());
}

TEST(Scrubber, DisabledIsANoOp)
{
    auto store = core::EmbeddingStore::createMutable(smallModel(), 7);
    ScrubConfig cfg; // enabled = false
    EmbeddingScrubber s(store, cfg);
    EXPECT_EQ(s.advanceTo(1e6), 0u);
    EXPECT_EQ(s.blocksScrubbed(), 0u);
}

TEST(RouterScrub, BackgroundScrubRepairsAScriptedFlipMidSession)
{
    // A scripted early bit flip lands in a block; with scrubbing on,
    // the session's RouterStats must report it found and repaired.
    auto store = core::EmbeddingStore::createMutable(smallModel(), 11,
                                                     128);
    traces::TraceConfig tc = traces::TraceConfig::forModel(
        smallModel(), traces::Hotness::Medium, 5);
    tc.batchSize = 8;
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 16; ++b)
        batches.push_back(gen.batch(b));
    core::Tensor dense(8, smallModel().denseDim());
    dense.randomize(3);

    RouterConfig cfg;
    cfg.instances = 2;
    cfg.server.slaMs = 50.0;
    cfg.server.service = ServiceModel::constant(1.0);
    cfg.scrub.enabled = true;
    cfg.scrub.intervalMs = 0.5;
    cfg.scrub.blocksPerTick = 2;

    FaultSchedule schedule({}, {},
                           {BitFlipEvent{5.0, 0, 100, 7}});

    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), cfg);
    PoissonLoadGen load(2.0, 9);
    const RouterStats rs = router.serve(dense, batches,
                                        load.arrivals(150),
                                        core::PrefetchSpec::paperDefault(),
                                        &schedule);

    EXPECT_GT(rs.blocksScrubbed, 0u);
    EXPECT_EQ(rs.scrubCorruptions, 1u);
    EXPECT_EQ(rs.scrubRepairs, 1u);
    EXPECT_TRUE(store->findCorruptBlocks().empty());
    EXPECT_EQ(rs.total.arrived,
              rs.total.served + rs.total.shed + rs.total.failed);
}

/** Retargeting mid-sweep restarts the cursor on the new store's
 *  geometry and subsequent ticks verify the *new* version's blocks. */
TEST(ScrubRetarget, SweepMovesToTheNewStore)
{
    const core::ModelConfig cfg = smallModel();
    auto v1 = core::EmbeddingStore::createMutable(cfg, 7, 128);
    auto v2 = core::EmbeddingStore::createMutable(cfg, 8, 64);

    ScrubConfig sc;
    sc.enabled = true;
    sc.intervalMs = 1.0;
    sc.blocksPerTick = 2;
    EmbeddingScrubber scrub(v1, sc);

    scrub.advanceTo(3.0);
    const std::uint64_t before = scrub.blocksScrubbed();
    EXPECT_GT(before, 0u);

    // v2 carries a silent flip; v1's copy of the same row is clean.
    v2->flipBit(1, 5, 3);
    scrub.retarget(v2);
    EXPECT_EQ(scrub.blocksPerSweep(),
              v2->numTables() * v2->numBlocks());
    EXPECT_DOUBLE_EQ(scrub.sweepProgress(), 0.0);

    // One full sweep over v2 finds and repairs the flip; counters
    // carried over from the v1 era keep accumulating.
    scrub.advanceTo(3.0 + static_cast<double>(scrub.blocksPerSweep()));
    EXPECT_GT(scrub.blocksScrubbed(), before);
    EXPECT_EQ(scrub.corruptionsFound(), 1u);
    EXPECT_EQ(scrub.blocksRepaired(), 1u);
    EXPECT_TRUE(v2->findCorruptBlocks().empty());
    EXPECT_TRUE(v1->findCorruptBlocks().empty());

    EXPECT_THROW(scrub.retarget(nullptr), std::invalid_argument);
}

/**
 * Scrub-during-swap race regression: one thread drives scrub ticks
 * while another retargets the scrubber across versions, repeatedly.
 * Run under TSan (sanitize-threads preset) this proves ticks never
 * race the swap; the assertions prove ticks always land on whichever
 * store is current (no torn cursor/geometry mix).
 */
TEST(ScrubRetarget, ConcurrentAdvanceAndRetargetIsClean)
{
    const core::ModelConfig cfg = smallModel();
    auto v1 = core::EmbeddingStore::createMutable(cfg, 7, 128);
    auto v2 = core::EmbeddingStore::createMutable(cfg, 8, 64);

    ScrubConfig sc;
    sc.enabled = true;
    sc.intervalMs = 0.25;
    sc.blocksPerTick = 1;
    EmbeddingScrubber scrub(v1, sc);

    std::thread ticker([&] {
        for (int i = 1; i <= 400; ++i)
            scrub.advanceTo(static_cast<double>(i) * 0.25);
    });
    for (int swap = 0; swap < 50; ++swap)
        scrub.retarget(swap % 2 == 0 ? v2 : v1);
    ticker.join();

    EXPECT_GT(scrub.blocksScrubbed(), 0u);
    EXPECT_EQ(scrub.corruptionsFound(), 0u);
    // A post-join tick still works on the final target.
    scrub.retarget(v2);
    scrub.advanceTo(200.0);
    EXPECT_LE(scrub.sweepProgress(), 1.0);
}

} // namespace
