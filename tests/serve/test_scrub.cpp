/**
 * @file
 * Tests for background checksum scrubbing: the round-robin sweep over
 * every (table, block) pair, bounded detection latency for a silent
 * flip in a *cold* block no request would touch, backlog catch-up on
 * sparse virtual-clock ticks, verify-only mode over a const store,
 * and the Router integration (scrub counters in RouterStats, a
 * scripted flip repaired in the background).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/embedding_store.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/loadgen.hpp"
#include "serve/router.hpp"
#include "serve/scrub.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;

core::ModelConfig
smallModel()
{
    core::ModelConfig m;
    m.name = "scrub_small";
    m.cls = core::ModelClass::RMC2;
    m.rows = 1024;
    m.dim = 16;
    m.tables = 2;
    m.lookups = 4;
    m.bottomMlp = {24, 16, 16};
    m.topMlp = {8, 1};
    return m;
}

TEST(ScrubConfig, ValidateRejectsBadKnobs)
{
    ScrubConfig c;
    c.intervalMs = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.blocksPerTick = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.validate();
}

TEST(Scrubber, RepairRequiresAMutableStore)
{
    std::shared_ptr<const core::EmbeddingStore> ro =
        core::EmbeddingStore::create(smallModel(), 7, 128);
    ScrubConfig cfg;
    cfg.enabled = true;
    cfg.repair = true;
    EXPECT_THROW(EmbeddingScrubber(ro, cfg), std::invalid_argument);
    cfg.repair = false;
    EmbeddingScrubber ok(ro, cfg);
    EXPECT_EQ(ok.blocksPerSweep(),
              ro->numTables() * ro->numBlocks());
}

TEST(Scrubber, OneSweepFindsAndRepairsAColdFlip)
{
    // Flip a bit in the *last* block of the last table — a block the
    // on-demand integrity path would only reach by request luck. One
    // full sweep must find and repair it regardless.
    auto store = core::EmbeddingStore::createMutable(smallModel(), 7,
                                                     128);
    const std::size_t t = store->numTables() - 1;
    const std::size_t b = store->numBlocks() - 1;
    store->flipBit(t, (b + 1) * store->blockRows() - 1, 3);
    ASSERT_FALSE(store->verifyBlock(t, b));

    ScrubConfig cfg;
    cfg.enabled = true;
    cfg.intervalMs = 1.0;
    cfg.blocksPerTick = 2;
    EmbeddingScrubber s(store, cfg);

    // Worst-case detection latency is one sweep period.
    const double sweep_ms =
        cfg.intervalMs *
        static_cast<double>(
            (s.blocksPerSweep() + cfg.blocksPerTick - 1) /
            cfg.blocksPerTick);
    s.advanceTo(sweep_ms + 1.0);
    EXPECT_EQ(s.corruptionsFound(), 1u);
    EXPECT_EQ(s.blocksRepaired(), 1u);
    EXPECT_GE(s.sweepsCompleted(), 1u);
    EXPECT_TRUE(store->verifyBlock(t, b));
    EXPECT_TRUE(store->findCorruptBlocks().empty());
}

TEST(Scrubber, QuantizedStoresScrubJustLikeFp32)
{
    // The checksum sweep covers reduced-precision stores too: a
    // payload flip in a bf16 store and a *metadata* flip (a scale
    // bit past the code payload) in an int8 store are both found and
    // repaired within one sweep.
    for (const core::EmbDtype dtype :
         {core::EmbDtype::Bf16, core::EmbDtype::Int8}) {
        auto store = core::EmbeddingStore::createMutable(
            smallModel(), 7, 128, dtype);
        ASSERT_EQ(store->dtype(), dtype);
        const std::size_t dim = store->table(0).dim();
        const std::size_t bit = dtype == core::EmbDtype::Int8
                                    ? dim * 8 + 5 // scale mantissa
                                    : 3;
        store->flipBit(1, store->blockRows() + 7, bit);
        ASSERT_FALSE(store->verifyBlock(1, 1));

        ScrubConfig cfg;
        cfg.enabled = true;
        cfg.intervalMs = 1.0;
        cfg.blocksPerTick = 2;
        EmbeddingScrubber s(store, cfg);
        const double sweep_ms =
            cfg.intervalMs *
            static_cast<double>(
                (s.blocksPerSweep() + cfg.blocksPerTick - 1) /
                cfg.blocksPerTick);
        s.advanceTo(sweep_ms + 1.0);
        EXPECT_EQ(s.corruptionsFound(), 1u)
            << core::embDtypeName(dtype);
        EXPECT_EQ(s.blocksRepaired(), 1u)
            << core::embDtypeName(dtype);
        EXPECT_TRUE(store->findCorruptBlocks().empty())
            << core::embDtypeName(dtype);
    }
}

TEST(Scrubber, VerifyOnlyCountsButNeverRepairs)
{
    auto store = core::EmbeddingStore::createMutable(smallModel(), 7,
                                                     128);
    store->flipBit(0, 0, 0);

    ScrubConfig cfg;
    cfg.enabled = true;
    cfg.intervalMs = 1.0;
    cfg.blocksPerTick = 4;
    cfg.repair = false;
    EmbeddingScrubber s(
        std::shared_ptr<const core::EmbeddingStore>(store), cfg);
    s.advanceTo(1e4);
    EXPECT_GE(s.corruptionsFound(), 1u); // re-found every sweep
    EXPECT_EQ(s.blocksRepaired(), 0u);
    EXPECT_FALSE(store->verifyBlock(0, 0));
}

TEST(Scrubber, BacklogTicksRunOnSparseAdvances)
{
    // Coverage must depend on virtual time only, not on how often the
    // caller happens to call advanceTo.
    auto s1_store = core::EmbeddingStore::createMutable(smallModel(), 7);
    auto s2_store = core::EmbeddingStore::createMutable(smallModel(), 7);
    ScrubConfig cfg;
    cfg.enabled = true;
    cfg.intervalMs = 2.0;
    cfg.blocksPerTick = 1;
    EmbeddingScrubber fine(s1_store, cfg);
    EmbeddingScrubber coarse(s2_store, cfg);

    for (int t = 1; t <= 100; ++t)
        fine.advanceTo(static_cast<double>(t));
    coarse.advanceTo(100.0);
    EXPECT_EQ(fine.blocksScrubbed(), coarse.blocksScrubbed());
    EXPECT_EQ(fine.sweepsCompleted(), coarse.sweepsCompleted());
}

TEST(Scrubber, DisabledIsANoOp)
{
    auto store = core::EmbeddingStore::createMutable(smallModel(), 7);
    ScrubConfig cfg; // enabled = false
    EmbeddingScrubber s(store, cfg);
    EXPECT_EQ(s.advanceTo(1e6), 0u);
    EXPECT_EQ(s.blocksScrubbed(), 0u);
}

TEST(RouterScrub, BackgroundScrubRepairsAScriptedFlipMidSession)
{
    // A scripted early bit flip lands in a block; with scrubbing on,
    // the session's RouterStats must report it found and repaired.
    auto store = core::EmbeddingStore::createMutable(smallModel(), 11,
                                                     128);
    traces::TraceConfig tc = traces::TraceConfig::forModel(
        smallModel(), traces::Hotness::Medium, 5);
    tc.batchSize = 8;
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 16; ++b)
        batches.push_back(gen.batch(b));
    core::Tensor dense(8, smallModel().denseDim());
    dense.randomize(3);

    RouterConfig cfg;
    cfg.instances = 2;
    cfg.server.slaMs = 50.0;
    cfg.server.service = ServiceModel::constant(1.0);
    cfg.scrub.enabled = true;
    cfg.scrub.intervalMs = 0.5;
    cfg.scrub.blocksPerTick = 2;

    FaultSchedule schedule({}, {},
                           {BitFlipEvent{5.0, 0, 100, 7}});

    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), cfg);
    PoissonLoadGen load(2.0, 9);
    const RouterStats rs = router.serve(dense, batches,
                                        load.arrivals(150),
                                        core::PrefetchSpec::paperDefault(),
                                        &schedule);

    EXPECT_GT(rs.blocksScrubbed, 0u);
    EXPECT_EQ(rs.scrubCorruptions, 1u);
    EXPECT_EQ(rs.scrubRepairs, 1u);
    EXPECT_TRUE(store->findCorruptBlocks().empty());
    EXPECT_EQ(rs.total.arrived,
              rs.total.served + rs.total.shed + rs.total.failed);
}

} // namespace
