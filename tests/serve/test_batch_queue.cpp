/**
 * @file
 * Tests for the deadline-aware coalescing queue and the batch-size-
 * aware service model: group-formation semantics (linger window,
 * capacity cap, tightest-member deadline, solo infeasible heads,
 * fresh SLA-derived retry deadlines), ServiceModel fitting/validation,
 * and the
 * batch-aware shedding queue simulator's equivalence with the scalar
 * overload under a constant model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "serve/batch_queue.hpp"
#include "serve/loadgen.hpp"
#include "serve/queue_sim.hpp"
#include "serve/service_model.hpp"

namespace
{

using namespace dlrmopt::serve;

PendingRequest
req(double ready, std::uint64_t seq, std::size_t samples = 1,
    std::uint64_t tries = 0)
{
    PendingRequest r;
    r.readyMs = ready;
    r.seq = seq;
    r.req = seq;
    r.tries = tries;
    r.arrivalMs = ready;
    r.samples = samples;
    return r;
}

TEST(ServiceModel, ConstantIsBatchSizeIndependent)
{
    const ServiceModel m = ServiceModel::constant(2.5);
    EXPECT_DOUBLE_EQ(m.serviceMs(1), 2.5);
    EXPECT_DOUBLE_EQ(m.serviceMs(64), 2.5);
    m.validate();
}

TEST(ServiceModel, FitRecoversAnAffineLaw)
{
    // Exact data from 0.5 + 0.25n must be recovered exactly (the
    // normal equations are solved in closed form).
    const std::vector<std::size_t> n = {1, 2, 4, 8, 16};
    std::vector<double> ms;
    for (const auto s : n)
        ms.push_back(0.5 + 0.25 * static_cast<double>(s));
    const ServiceModel m = ServiceModel::fit(n, ms);
    EXPECT_NEAR(m.baseMs, 0.5, 1e-9);
    EXPECT_NEAR(m.perSampleMs, 0.25, 1e-9);
}

TEST(ServiceModel, FitClampsUnphysicalCoefficients)
{
    // Decreasing times would fit a negative slope: clamp to flat.
    const ServiceModel flat =
        ServiceModel::fit({1, 2, 4}, {4.0, 3.0, 2.0});
    EXPECT_DOUBLE_EQ(flat.perSampleMs, 0.0);
    EXPECT_DOUBLE_EQ(flat.baseMs, 3.0);
    flat.validate();

    // A steep through-origin law would fit a negative intercept:
    // clamp to base 0 and keep a positive slope.
    const ServiceModel origin =
        ServiceModel::fit({1, 10}, {0.1, 10.0});
    EXPECT_DOUBLE_EQ(origin.baseMs, 0.0);
    EXPECT_GT(origin.perSampleMs, 0.0);
    origin.validate();
}

TEST(ServiceModel, ValidateRejectsBadModels)
{
    EXPECT_THROW(ServiceModel::constant(-1.0).validate(),
                 std::invalid_argument);
    EXPECT_THROW((ServiceModel{0.0, 0.0}).validate(),
                 std::invalid_argument);
    EXPECT_THROW((ServiceModel{1.0, -0.5}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(ServiceModel::fit({}, {}), std::invalid_argument);
    EXPECT_THROW(ServiceModel::fit({1, 2}, {1.0}),
                 std::invalid_argument);
}

TEST(BatchConfig, ValidateRejectsBadKnobs)
{
    BatchConfig c;
    c.maxRequests = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.maxLingerMs = -1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

class BatchQueueTest : public ::testing::Test
{
  protected:
    BatchConfig cfg;
    ServiceModel svc = ServiceModel{0.5, 0.1}; // 0.5 + 0.1n ms
    std::vector<PendingRequest> out;
};

TEST_F(BatchQueueTest, CoalescesEverythingReadyByDispatchTime)
{
    // Three requests queued while the core was busy until t=10: all
    // are ready by dispatch, so even with zero linger they coalesce.
    cfg.maxLingerMs = 0.0;
    BatchQueue q(cfg);
    q.push(req(1.0, 0));
    q.push(req(2.0, 1));
    q.push(req(3.0, 2));

    q.nextBatch(10.0, 8, 100.0, svc, 1.0, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].seq, 0u);
    EXPECT_EQ(out[1].seq, 1u);
    EXPECT_EQ(out[2].seq, 2u);
    EXPECT_TRUE(q.empty());
}

TEST_F(BatchQueueTest, LingerWindowBoundsHowLongTheHeadWaits)
{
    // Head ready at 0 on an idle core; follower ready at 5. With a
    // 2ms linger the follower is outside the window; with 6ms it
    // joins.
    cfg.maxLingerMs = 2.0;
    BatchQueue tight(cfg);
    tight.push(req(0.0, 0));
    tight.push(req(5.0, 1));
    tight.nextBatch(0.0, 8, 100.0, svc, 1.0, out);
    EXPECT_EQ(out.size(), 1u);

    cfg.maxLingerMs = 6.0;
    BatchQueue loose(cfg);
    loose.push(req(0.0, 0));
    loose.push(req(5.0, 1));
    loose.nextBatch(0.0, 8, 100.0, svc, 1.0, out);
    EXPECT_EQ(out.size(), 2u);
}

TEST_F(BatchQueueTest, CapacityCapLimitsTheGroup)
{
    BatchQueue q(cfg);
    for (std::uint64_t i = 0; i < 6; ++i)
        q.push(req(0.0, i));
    q.nextBatch(1.0, 4, 100.0, svc, 1.0, out);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(q.size(), 2u);
    // The survivors are the latest two in queue order.
    q.nextBatch(1.0, 4, 100.0, svc, 1.0, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].seq, 4u);
    EXPECT_EQ(out[1].seq, 5u);
}

TEST_F(BatchQueueTest, NeverCoalescesAMemberPastItsDeadline)
{
    // Head (16 samples) alone: 0.5 + 1.6 = 2.1ms, fine under a 3ms
    // SLA. Adding the follower's 16 samples doubles the group to
    // 3.7ms, blowing both deadlines -> the follower must stay queued.
    BatchQueue q(cfg);
    q.push(req(0.0, 0, 16));
    q.push(req(0.0, 1, 16));
    q.nextBatch(0.0, 8, 3.0, svc, 1.0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].seq, 0u);
    EXPECT_EQ(q.size(), 1u);
}

TEST_F(BatchQueueTest, SkipsAnInfeasibleMemberButKeepsScanning)
{
    // Follower seq=1 is huge (deadline-infeasible in a group);
    // follower seq=2 is tiny and must still be picked up behind it.
    BatchQueue q(cfg);
    q.push(req(0.0, 0, 4));
    q.push(req(0.0, 1, 64));
    q.push(req(0.0, 2, 1));
    q.nextBatch(0.0, 8, 2.0, svc, 1.0, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].seq, 0u);
    EXPECT_EQ(out[1].seq, 2u);
    EXPECT_EQ(q.size(), 1u);
}

TEST_F(BatchQueueTest, InfeasibleHeadDispatchesSoloForShedding)
{
    // The head alone blows its deadline: it must come back solo (the
    // serving loop sheds it) and must not drag the follower with it.
    BatchQueue q(cfg);
    q.push(req(0.0, 0, 64));
    q.push(req(0.0, 1, 1));
    q.nextBatch(0.0, 8, 1.0, svc, 1.0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].seq, 0u);
    EXPECT_EQ(q.size(), 1u);
}

TEST_F(BatchQueueTest, RetriesGetAFreshDeadlineFromTheirReadyTime)
{
    // Same shape as the solo-shed case, but the head is a retry:
    // retries are always admitted, and the follower's own deadline
    // still vetoes joining the doomed group.
    BatchQueue q(cfg);
    q.push(req(0.0, 0, 64, /*tries=*/1));
    q.push(req(0.0, 1, 1));
    q.nextBatch(0.0, 8, 1.0, svc, 1.0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].tries, 1u);

    // Regression (the PR-3 behaviour gave retries *no* deadline):
    // two infeasible retries no longer coalesce freely — the head's
    // fresh readyMs + SLA deadline (1.0ms, vs 0.5 + 12.8ms service)
    // is already blown, so it dispatches solo like any other doomed
    // head instead of dragging the second retry along.
    BatchQueue q2(cfg);
    q2.push(req(0.0, 0, 64, 1));
    q2.push(req(0.0, 1, 64, 2));
    q2.nextBatch(0.0, 8, 1.0, svc, 1.0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].seq, 0u);
    EXPECT_EQ(q2.size(), 1u);

    // A *feasible* retry pair coalesces exactly like first attempts:
    // the fresh deadline is readyMs + SLA, not arrival + SLA. Anchor
    // the retries' readyMs late (backoff expiry at t=50 with arrival
    // at t=0 would long have blown an arrival-anchored deadline).
    BatchQueue q3(cfg);
    PendingRequest r0 = req(50.0, 0, 8, 1);
    PendingRequest r1 = req(50.0, 1, 8, 1);
    r0.arrivalMs = 0.0;
    r1.arrivalMs = 0.0;
    q3.push(r0);
    q3.push(r1);
    // Group service = 0.5 + 1.6 = 2.1ms <= 3ms SLA from readyMs.
    q3.nextBatch(50.0, 8, 3.0, svc, 1.0, out);
    EXPECT_EQ(out.size(), 2u);
}

TEST_F(BatchQueueTest, StraggleScalesTheFeasibilityCheck)
{
    // On a 1x core two 8-sample requests fit a 3ms SLA
    // (0.5 + 1.6 = 2.1ms); on a 2x straggler they do not (4.2ms).
    BatchQueue q(cfg);
    q.push(req(0.0, 0, 8));
    q.push(req(0.0, 1, 8));
    q.nextBatch(0.0, 8, 3.0, svc, 1.0, out);
    EXPECT_EQ(out.size(), 2u);

    BatchQueue q2(cfg);
    q2.push(req(0.0, 0, 8));
    q2.push(req(0.0, 1, 8));
    q2.nextBatch(0.0, 8, 3.0, svc, 2.0, out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(QueueSimBatchAware, ConstantModelReproducesScalarOverload)
{
    const auto arrivals = PoissonLoadGen(0.8, 11).arrivals(500);
    const auto scalar =
        simulateQueueShedding(arrivals, 1.5, 2, 10.0);
    const auto batch = simulateQueueShedding(
        arrivals, ServiceModel::constant(1.5), {4, 16, 64}, 2, 10.0);
    EXPECT_EQ(scalar.served, batch.served);
    EXPECT_EQ(scalar.shed, batch.shed);
    EXPECT_EQ(scalar.dispatches, batch.dispatches);
    EXPECT_DOUBLE_EQ(scalar.latency.p95(), batch.latency.p95());
    EXPECT_DOUBLE_EQ(scalar.makespanMs, batch.makespanMs);
}

TEST(QueueSimBatchAware, BiggerRequestsTakeLongerAndShedMore)
{
    const auto arrivals = PoissonLoadGen(1.0, 3).arrivals(400);
    const ServiceModel svc{0.5, 0.05};
    const auto small =
        simulateQueueShedding(arrivals, svc, {4}, 1, 8.0);
    const auto big =
        simulateQueueShedding(arrivals, svc, {64}, 1, 8.0);
    EXPECT_GT(big.shed, small.shed);
    EXPECT_THROW(simulateQueueShedding(arrivals, svc, {}, 1, 8.0),
                 std::invalid_argument);
}

PendingRequest
treq(std::uint32_t tenant, double ready, std::uint64_t seq,
     std::size_t samples = 1)
{
    PendingRequest r = req(ready, seq, samples);
    r.tenant = tenant;
    return r;
}

TEST(WfqConfig, ValidateRejectsBadKnobs)
{
    WfqConfig c;
    c.weights = {1.0, 0.0};
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c.weights = {1.0, 2.0};
    c.quantumSamples = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.weights = {1.0, 2.0};
    c.validate();
}

TEST(WfqQueue, PushRejectsATenantWithoutAWeight)
{
    WfqConfig wfq;
    wfq.weights = {1.0, 1.0};
    BatchQueue q(BatchConfig{}, wfq);
    q.push(treq(1, 0.0, 0));
    EXPECT_THROW(q.push(treq(2, 0.0, 1)), std::invalid_argument);
    EXPECT_EQ(q.queuedOf(1), 1u);
    EXPECT_EQ(q.queuedOf(0), 0u);
    EXPECT_EQ(q.queuedSamplesOf(1), 1u);
}

TEST(WfqQueue, GroupsNeverMixTenants)
{
    // Different tenants serve different models: a dispatch group must
    // stay single-tenant even when both tenants' requests are ready.
    WfqConfig wfq;
    wfq.weights = {1.0, 1.0};
    BatchConfig cfg;
    BatchQueue q(cfg, wfq);
    for (std::uint64_t i = 0; i < 3; ++i) {
        q.push(treq(0, 0.0, i));
        q.push(treq(1, 0.0, 100 + i));
    }
    const ServiceModel svc{0.5, 0.1};
    std::vector<PendingRequest> out;
    while (!q.empty()) {
        q.nextBatch(10.0, 8, 100.0, svc, 1.0, out);
        ASSERT_FALSE(out.empty());
        for (const PendingRequest& r : out)
            EXPECT_EQ(r.tenant, out.front().tenant);
    }
}

TEST(WfqQueue, DeficitRoundRobinSharesBandwidthByWeight)
{
    // 8-sample requests against quantum 2: tenant 0 (weight 1)
    // accrues 2 samples/round, tenant 1 (weight 3) accrues 6 — so
    // under a persistent backlog their dispatch shares converge to
    // exactly 1:3.
    WfqConfig wfq;
    wfq.weights = {1.0, 3.0};
    wfq.quantumSamples = 2.0;
    BatchConfig cfg;
    cfg.maxRequests = 1; // one request per dispatch: count shares
    BatchQueue q(cfg, wfq);
    for (std::uint64_t i = 0; i < 64; ++i) {
        q.push(treq(0, 0.0, i, 8));
        q.push(treq(1, 0.0, 100 + i, 8));
    }
    const ServiceModel svc = ServiceModel::constant(0.1);
    std::vector<PendingRequest> out;
    std::size_t served[2] = {0, 0};
    for (int d = 0; d < 32; ++d) {
        q.nextBatch(0.0, 8, 1e6, svc, 1.0, out);
        ASSERT_EQ(out.size(), 1u);
        ++served[out.front().tenant];
    }
    EXPECT_EQ(served[0], 8u);
    EXPECT_EQ(served[1], 24u);
}

TEST(WfqQueue, AnEmptiedTenantForfeitsItsDeficit)
{
    // Tenant 1 goes idle with banked deficit; the DRR rule zeroes it,
    // so its next burst starts from scratch and tenant 0 (which kept
    // a backlog) wins the next dispatch.
    WfqConfig wfq;
    wfq.weights = {1.0, 1.0};
    wfq.quantumSamples = 2.0;
    BatchConfig cfg;
    cfg.maxRequests = 1;
    BatchQueue q(cfg, wfq);
    const ServiceModel svc = ServiceModel::constant(0.1);
    std::vector<PendingRequest> out;

    q.push(treq(1, 0.0, 0, 2)); // drains tenant 1 entirely
    for (std::uint64_t i = 0; i < 8; ++i)
        q.push(treq(0, 0.0, 10 + i, 8));
    q.nextBatch(0.0, 8, 1e6, svc, 1.0, out);
    ASSERT_EQ(out.front().tenant, 1u);

    // Burst returns: with its credit forfeited, tenant 1's 8-sample
    // head needs 4 fresh rounds of quantum, and tenant 0 (accruing in
    // the same rounds with an equal weight) dispatches first.
    q.push(treq(1, 0.0, 1, 8));
    q.nextBatch(0.0, 8, 1e6, svc, 1.0, out);
    EXPECT_EQ(out.front().tenant, 0u);
}

TEST(WfqQueue, PerTenantModelsPriceTheGroupDeadline)
{
    // Same queue shape for both tenants; tenant 1's model is 20x
    // slower, so its follower would blow the group deadline and must
    // be left behind, while tenant 0 coalesces.
    WfqConfig wfq;
    wfq.weights = {1.0, 1.0};
    wfq.quantumSamples = 64.0;
    BatchQueue q(BatchConfig{}, wfq);
    q.push(treq(0, 0.0, 0, 4));
    q.push(treq(0, 0.0, 1, 4));
    q.push(treq(1, 0.0, 2, 4));
    q.push(treq(1, 0.0, 3, 4));

    const std::vector<ServiceModel> models = {
        ServiceModel{0.1, 0.01}, // 8 samples: 0.18 ms
        ServiceModel{2.0, 1.0},  // 8 samples: 10 ms > 8 ms SLA
    };
    std::vector<PendingRequest> out;
    std::size_t group_of[2] = {0, 0};
    while (!q.empty()) {
        q.nextBatch(0.0, 8, 8.0, models, 1.0, out);
        ASSERT_FALSE(out.empty());
        group_of[out.front().tenant] =
            std::max(group_of[out.front().tenant], out.size());
    }
    EXPECT_EQ(group_of[0], 2u);
    EXPECT_EQ(group_of[1], 1u);

    q.push(treq(0, 0.0, 9));
    const std::vector<ServiceModel> too_few = {models[0]};
    EXPECT_THROW(q.nextBatch(0.0, 8, 8.0, too_few, 1.0, out),
                 std::invalid_argument);
}

TEST(WfqQueue, PerTenantCapsShrinkOnlyTheirOwnTenant)
{
    // Tenant 0 is degraded to a cap of 1 while tenant 1 keeps its
    // full cap of 4: every tenant-0 dispatch must go out solo while
    // tenant-1 groups still coalesce to 4, from the same queue.
    WfqConfig wfq;
    wfq.weights = {1.0, 1.0};
    wfq.quantumSamples = 64.0;
    BatchQueue q(BatchConfig{}, wfq);
    for (std::uint64_t i = 0; i < 4; ++i) {
        q.push(treq(0, 0.0, i));
        q.push(treq(1, 0.0, 100 + i));
    }

    const std::vector<std::size_t> caps = {1, 4};
    const std::vector<ServiceModel> models = {
        ServiceModel{0.1, 0.01}, ServiceModel{0.1, 0.01}};
    std::vector<PendingRequest> out;
    std::size_t biggest[2] = {0, 0};
    std::size_t dispatches[2] = {0, 0};
    while (!q.empty()) {
        q.nextBatch(0.0, caps, 100.0, models, 1.0, out);
        ASSERT_FALSE(out.empty());
        const std::uint32_t t = out.front().tenant;
        biggest[t] = std::max(biggest[t], out.size());
        ++dispatches[t];
    }
    EXPECT_EQ(biggest[0], 1u);   // degraded cap binds
    EXPECT_EQ(dispatches[0], 4u);
    EXPECT_EQ(biggest[1], 4u);   // neighbour keeps full coalescing
    EXPECT_EQ(dispatches[1], 1u);

    // Contract checks: a zero cap and a short cap vector are bugs.
    q.push(treq(0, 0.0, 9));
    const std::vector<std::size_t> zero = {0, 4};
    EXPECT_THROW(q.nextBatch(0.0, zero, 100.0, models, 1.0, out),
                 std::invalid_argument);
    const std::vector<std::size_t> too_few_caps = {1};
    EXPECT_THROW(q.nextBatch(0.0, too_few_caps, 100.0, models, 1.0, out),
                 std::invalid_argument);
}

TEST_F(BatchQueueTest, RequestSlaOverridesTheSessionSla)
{
    // A request carrying its own 1 ms SLA is infeasible under the
    // 0.5 + 0.1n model even though the session-wide 100 ms SLA would
    // admit it — it must dispatch solo for shedding.
    BatchQueue q(cfg);
    PendingRequest tight = req(0.0, 0);
    tight.slaMs = 0.4;
    q.push(tight);
    q.push(req(0.0, 1));

    q.nextBatch(0.0, 8, 100.0, svc, 1.0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out.front().seq, 0u);

    // Without the override the same shape coalesces under the
    // session-wide SLA.
    q.push(req(0.0, 2));
    q.nextBatch(0.0, 8, 100.0, svc, 1.0, out);
    EXPECT_EQ(out.size(), 2u);
}

} // namespace
