/**
 * @file
 * Live-reload tests: the ReloadManager state machine standalone
 * (commit timeline, canary rollback, failure modes that leave the old
 * version serving) and the TenantFleet integration (snapshot reloads
 * under traffic, torn-write and bad_alloc chaos, crash mid-rollout,
 * committed versions persisting across sessions, conservation under
 * every outcome).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "core/versioned.hpp"
#include "sched/topology.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/fleet.hpp"
#include "serve/reload.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;
using Kind = LifecycleEvent::Kind;

core::ModelConfig
reloadModel(const char *name, std::size_t rows = 1024)
{
    core::ModelConfig m;
    m.name = name;
    m.cls = core::ModelClass::RMC2;
    m.rows = rows;
    m.dim = 16;
    m.tables = 2;
    m.lookups = 4;
    m.bottomMlp = {24, 16, 16};
    m.topMlp = {8, 1};
    return m;
}

/** Self-deleting snapshot path. */
class TempSnap
{
  public:
    explicit TempSnap(const char *tag)
        : _path(std::string("/tmp/dlrmopt_reload_") + tag + ".snap")
    {
        std::remove(_path.c_str());
        std::remove((_path + ".tmp").c_str());
    }
    ~TempSnap()
    {
        std::remove(_path.c_str());
        std::remove((_path + ".tmp").c_str());
    }
    const std::string& path() const { return _path; }

  private:
    std::string _path;
};

ReloadConfig
fastReload()
{
    ReloadConfig rc;
    rc.loadMs = 5.0;
    rc.shadowRequests = 4;
    rc.shadowDriftBudget = 1.0; // gates exercised in dedicated tests
    rc.canaryWindowMs = 20.0;
    rc.stageHoldMs = 10.0;
    rc.rolloutConcurrency = 1;
    return rc;
}

TEST(ReloadConfig, ValidateRejectsBadKnobs)
{
    ReloadConfig c;
    c.loadMs = -1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.shadowRequests = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.maxP95RegressionFactor = 0.5;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.rolloutConcurrency = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.validate();
}

TEST(ReloadManager, CommitsAnInMemoryBuildInStages)
{
    const core::ModelConfig cfg = reloadModel("mgr_commit");
    core::VersionedModel holder(core::ModelVersion::build(cfg, 1, 7));
    std::vector<core::VersionedModel *> holders{&holder};

    std::vector<ReloadEvent> events(1);
    events[0].atMs = 10.0;
    events[0].tenant = 0;
    events[0].newVersion = 2;
    events[0].weightSeed = 8;

    ReloadManager mgr(fastReload(), events, holders, 3);
    const std::vector<char> up(3, 1);

    mgr.advanceTo(9.0, up);
    EXPECT_EQ(mgr.started(), 0u);
    EXPECT_EQ(mgr.pinned(0, 0)->version, 1u);

    // Load ready at 15; canary (instance 0) pinned there.
    mgr.advanceTo(15.0, up);
    EXPECT_EQ(mgr.started(), 1u);
    EXPECT_EQ(mgr.pinned(0, 0)->version, 2u);
    EXPECT_EQ(mgr.pinned(1, 0)->version, 1u);
    EXPECT_EQ(mgr.pinned(2, 0)->version, 1u);
    EXPECT_EQ(holder.currentVersion(), 1u); // not committed yet

    // Canary window ends at 35; instance 1 swaps there, instance 2 a
    // stage hold later, and the commit publishes.
    mgr.advanceTo(34.9, up);
    EXPECT_EQ(mgr.pinned(1, 0)->version, 1u);
    mgr.advanceTo(35.0, up);
    EXPECT_EQ(mgr.pinned(1, 0)->version, 2u);
    EXPECT_EQ(mgr.pinned(2, 0)->version, 1u);
    mgr.advanceTo(45.0, up);
    EXPECT_EQ(mgr.pinned(2, 0)->version, 2u);

    EXPECT_EQ(mgr.committed(), 1u);
    EXPECT_FALSE(mgr.active());
    EXPECT_EQ(holder.currentVersion(), 2u);
    EXPECT_GT(mgr.shadowedRequests(), 0u);
    EXPECT_EQ(mgr.instanceSwaps(), 3u);
    ASSERT_EQ(mgr.outcomes().size(), 1u);
    EXPECT_EQ(mgr.outcomes()[0].finalState, ReloadState::Committed);
    EXPECT_DOUBLE_EQ(mgr.outcomes()[0].startedMs, 10.0);
    EXPECT_DOUBLE_EQ(mgr.outcomes()[0].finishedMs, 45.0);

    // The boot version drains once nothing pins it.
    EXPECT_EQ(holder.retireDrained(), 1u);
}

TEST(ReloadManager, RollsBackOnCanaryCorruption)
{
    const core::ModelConfig cfg = reloadModel("mgr_rollback");
    core::VersionedModel holder(core::ModelVersion::build(cfg, 1, 7));
    std::vector<core::VersionedModel *> holders{&holder};

    std::vector<ReloadEvent> events(1);
    events[0].atMs = 10.0;
    events[0].newVersion = 2;
    events[0].weightSeed = 8;

    ReloadManager mgr(fastReload(), events, holders, 2);
    const std::vector<char> up(2, 1);

    mgr.advanceTo(20.0, up); // canary live since 15
    EXPECT_EQ(mgr.pinned(0, 0)->version, 2u);
    mgr.applyBitFlip(0, 5, 3); // upset the incoming version's store

    mgr.advanceTo(100.0, up);
    EXPECT_EQ(mgr.rolledBack(), 1u);
    EXPECT_EQ(mgr.committed(), 0u);
    EXPECT_EQ(mgr.pinned(0, 0)->version, 1u);
    EXPECT_EQ(mgr.pinned(1, 0)->version, 1u);
    EXPECT_EQ(holder.currentVersion(), 1u);
    ASSERT_EQ(mgr.outcomes().size(), 1u);
    EXPECT_EQ(mgr.outcomes()[0].finalState, ReloadState::RolledBack);
    EXPECT_NE(mgr.outcomes()[0].detail.find("corrupt"),
              std::string::npos);
}

TEST(ReloadManager, FailureModesLeaveTheOldVersionServing)
{
    const core::ModelConfig cfg = reloadModel("mgr_fail");
    core::VersionedModel holder(core::ModelVersion::build(cfg, 1, 7));
    std::vector<core::VersionedModel *> holders{&holder};

    std::vector<ReloadEvent> events(3);
    events[0].atMs = 1.0; // missing snapshot file
    events[0].newVersion = 2;
    events[0].snapshotPath = "/tmp/dlrmopt_reload_no_such_file.snap";
    events[1].atMs = 2.0; // stale compare-and-swap
    events[1].newVersion = 3;
    events[1].weightSeed = 9;
    events[1].expectedVersion = 42;
    events[2].atMs = 3.0; // drift gate: different weights, zero budget
    events[2].newVersion = 4;
    events[2].weightSeed = 10;

    ReloadConfig rc = fastReload();
    rc.shadowDriftBudget = 0.0;
    ReloadManager mgr(rc, events, holders, 2);
    const std::vector<char> up(2, 1);

    mgr.advanceTo(500.0, up);
    EXPECT_EQ(mgr.failed(), 3u);
    EXPECT_EQ(mgr.committed(), 0u);
    EXPECT_EQ(holder.currentVersion(), 1u);
    EXPECT_EQ(mgr.pinned(0, 0)->version, 1u);
    ASSERT_EQ(mgr.outcomes().size(), 3u);
    EXPECT_NE(mgr.outcomes()[0].detail.find("load rejected"),
              std::string::npos);
    EXPECT_NE(mgr.outcomes()[1].detail.find("expected version"),
              std::string::npos);
    EXPECT_NE(mgr.outcomes()[2].detail.find("shadow drift"),
              std::string::npos);
}

// ---- Fleet integration --------------------------------------------

class ReloadFleetTest : public ::testing::Test
{
  protected:
    TenantConfig
    makeTenant(const char *name, double sla_ms) const
    {
        TenantConfig t;
        t.name = name;
        t.model = reloadModel(name);
        t.slaMs = sla_ms;
        t.weight = 1.0;
        t.service = ServiceModel::constant(1.0);
        t.truth = ServiceTimeline(ServiceModel::constant(1.0));
        return t;
    }

    TenantWorkload
    makeWork(const core::ModelConfig& m, std::uint64_t seed,
             std::size_t n, double gap_ms) const
    {
        traces::TraceConfig tc = traces::TraceConfig::forModel(
            m, traces::Hotness::Medium, seed);
        tc.batchSize = 4;
        traces::TraceGenerator gen(tc);
        TenantWorkload w;
        for (std::size_t b = 0; b < 8; ++b)
            w.batches.push_back(gen.batch(b));
        w.dense.reshape(4, m.denseDim());
        w.dense.randomize(seed);
        for (std::size_t i = 0; i < n; ++i)
            w.arrivalsMs.push_back(static_cast<double>(i) * gap_ms);
        return w;
    }

    FleetConfig
    baseConfig() const
    {
        FleetConfig cfg;
        cfg.instances = 2;
        cfg.batching.maxRequests = 4;
        cfg.batching.maxLingerMs = 0.2;
        cfg.reload.loadMs = 2.0;
        cfg.reload.shadowRequests = 4;
        cfg.reload.shadowDriftBudget = 1.0;
        cfg.reload.canaryWindowMs = 10.0;
        cfg.reload.stageHoldMs = 2.0;
        return cfg;
    }

    sched::Topology topo = sched::Topology::synthetic(4, 2);
};

TEST_F(ReloadFleetTest, CommitsASnapshotReloadUnderTraffic)
{
    TempSnap snap("fleet_commit");
    TenantRegistry reg;
    reg.add(makeTenant("ranking", 25.0));
    reg.add(makeTenant("retrieval", 30.0));
    TenantFleet fleet(reg, topo, baseConfig());

    // Version 2 of tenant 0, persisted as a crash-consistent snapshot.
    const auto v2 = core::ModelVersion::build(reg.tenant(0).model, 2, 99);
    ASSERT_TRUE(core::ModelSnapshot::save(snap.path(), *v2->model, 2, 99));

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5, 60, 1.0));
    work.push_back(makeWork(reg.tenant(1).model, 6, 60, 1.0));

    std::vector<ReloadEvent> reloads(1);
    reloads[0].atMs = 5.0;
    reloads[0].tenant = 0;
    reloads[0].newVersion = 2;
    reloads[0].snapshotPath = snap.path();

    const FleetStats fs = fleet.serve(
        work, core::PrefetchSpec::paperDefault(), nullptr, reloads);

    EXPECT_TRUE(fs.conserved());
    EXPECT_EQ(fs.reloadsStarted, 1u);
    EXPECT_EQ(fs.reloadsCommitted, 1u);
    EXPECT_EQ(fs.reloadsRolledBack, 0u);
    EXPECT_EQ(fs.reloadsFailed, 0u);
    EXPECT_GT(fs.shadowedRequests, 0u);
    EXPECT_EQ(fs.versionSwaps, 2u); // canary + one rollout stage
    ASSERT_EQ(fs.finalVersions.size(), 2u);
    EXPECT_EQ(fs.finalVersions[0], 2u);
    EXPECT_EQ(fs.finalVersions[1], 1u);
    EXPECT_EQ(fleet.versioned(0).currentVersion(), 2u);
    // The boot version drained once its in-flight pins released.
    EXPECT_GE(fs.versionsRetired, 1u);
    EXPECT_EQ(fleet.versioned(0).retiringCount(), 0u);
    EXPECT_GT(fs.total.served, 0u);
    EXPECT_NE(fs.summary().find("reloads 1"), std::string::npos);

    // Committed versions persist into the next session.
    const FleetStats fs2 = fleet.serve(work);
    EXPECT_TRUE(fs2.conserved());
    ASSERT_EQ(fs2.finalVersions.size(), 2u);
    EXPECT_EQ(fs2.finalVersions[0], 2u);
}

TEST_F(ReloadFleetTest, RollsBackWhenTheIncomingVersionCorrupts)
{
    TenantRegistry reg;
    reg.add(makeTenant("ranking", 25.0));
    TenantFleet fleet(reg, topo, baseConfig());

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5, 60, 1.0));

    // Reload at 5: load ready 7, canary 7..17. The scripted upset at
    // 10 lands inside the canary window; the integrity gate must
    // catch it and restore version 1 fleet-wide.
    std::vector<ReloadEvent> reloads(1);
    reloads[0].atMs = 5.0;
    reloads[0].newVersion = 2;
    reloads[0].weightSeed = 77;

    FaultSchedule schedule({}, {}, {BitFlipEvent{10.0, 0, 50, 7}});
    const FleetStats fs = fleet.serve(
        work, core::PrefetchSpec::paperDefault(), &schedule, reloads);

    EXPECT_TRUE(fs.conserved());
    EXPECT_EQ(fs.reloadsRolledBack, 1u);
    EXPECT_EQ(fs.reloadsCommitted, 0u);
    ASSERT_EQ(fs.finalVersions.size(), 1u);
    EXPECT_EQ(fs.finalVersions[0], 1u);
    ASSERT_EQ(fs.reloadOutcomes.size(), 1u);
    EXPECT_EQ(fs.reloadOutcomes[0].finalState, ReloadState::RolledBack);
    EXPECT_GT(fs.total.served, 0u);
}

TEST_F(ReloadFleetTest, SurvivesACrashMidRollout)
{
    TenantRegistry reg;
    reg.add(makeTenant("ranking", 25.0));
    FleetConfig cfg = baseConfig();
    cfg.instances = 3;
    TenantFleet fleet(reg, topo, cfg);

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5, 80, 1.0));

    // Canary 7..17, rollout stages at 17 and 19. The crash hits an
    // already-swapped replica at 18; it recovers at 40 and must come
    // back on the committed version.
    std::vector<ReloadEvent> reloads(1);
    reloads[0].atMs = 5.0;
    reloads[0].newVersion = 2;
    reloads[0].weightSeed = 77;

    FaultSchedule schedule({},
                           {LifecycleEvent{18.0, 1, Kind::Crash},
                            LifecycleEvent{40.0, 1, Kind::Recover}},
                           {});
    const FleetStats fs = fleet.serve(
        work, core::PrefetchSpec::paperDefault(), &schedule, reloads);

    EXPECT_TRUE(fs.conserved());
    EXPECT_EQ(fs.crashes, 1u);
    EXPECT_EQ(fs.reloadsCommitted, 1u);
    ASSERT_EQ(fs.finalVersions.size(), 1u);
    EXPECT_EQ(fs.finalVersions[0], 2u);
    EXPECT_GT(fs.total.served, 0u);
}

TEST_F(ReloadFleetTest, ChaosFaultsFailTheReloadNotTheFleet)
{
    TempSnap torn("fleet_torn");
    TenantRegistry reg;
    reg.add(makeTenant("ranking", 25.0));
    TenantFleet fleet(reg, topo, baseConfig());

    // A torn snapshot write never publishes the file (the injector's
    // deterministic faults drive ModelSnapshot::save)...
    const auto v2 = core::ModelVersion::build(reg.tenant(0).model, 2, 99);
    FaultConfig fc;
    fc.snapshotTornWriteRate = 1.0;
    const FaultInjector inj(fc);
    const core::SnapshotFaults sf = inj.snapshotFaults(2);
    EXPECT_TRUE(sf.tornWrite);
    EXPECT_FALSE(core::ModelSnapshot::save(torn.path(), *v2->model, 2,
                                           99, &sf));
    EXPECT_GT(inj.injectedSnapshotFaults(), 0u);

    std::vector<TenantWorkload> work;
    work.push_back(makeWork(reg.tenant(0).model, 5, 60, 1.0));

    // ...so reload 2 finds no file, and reload 3's in-memory build
    // bad_allocs via the scheduled phase. Both fail cleanly; version
    // 1 serves the whole session.
    std::vector<ReloadEvent> reloads(2);
    reloads[0].atMs = 5.0;
    reloads[0].newVersion = 2;
    reloads[0].snapshotPath = torn.path();
    reloads[1].atMs = 20.0;
    reloads[1].newVersion = 3;
    reloads[1].weightSeed = 9;

    FaultConfig phase;
    phase.snapshotBadAllocRate = 1.0;
    FaultSchedule schedule({FaultPhase{15.0, -1, phase}}, {}, {});

    const FleetStats fs = fleet.serve(
        work, core::PrefetchSpec::paperDefault(), &schedule, reloads);

    EXPECT_TRUE(fs.conserved());
    EXPECT_EQ(fs.reloadsFailed, 2u);
    EXPECT_EQ(fs.reloadsCommitted, 0u);
    ASSERT_EQ(fs.finalVersions.size(), 1u);
    EXPECT_EQ(fs.finalVersions[0], 1u);
    EXPECT_GT(fs.total.served, 0u);
    ASSERT_EQ(fs.reloadOutcomes.size(), 2u);
    EXPECT_NE(fs.reloadOutcomes[0].detail.find("load rejected"),
              std::string::npos);
    EXPECT_NE(fs.reloadOutcomes[1].detail.find("bad_alloc"),
              std::string::npos);
}

TEST_F(ReloadFleetTest, ReloadSessionsAreDeterministic)
{
    auto run = [&]() {
        TenantRegistry reg;
        reg.add(makeTenant("ranking", 25.0));
        TenantFleet fleet(reg, topo, baseConfig());
        std::vector<TenantWorkload> work;
        work.push_back(makeWork(reg.tenant(0).model, 5, 60, 1.0));
        std::vector<ReloadEvent> reloads(1);
        reloads[0].atMs = 5.0;
        reloads[0].newVersion = 2;
        reloads[0].weightSeed = 77;
        return fleet.serve(work, core::PrefetchSpec::paperDefault(),
                           nullptr, reloads);
    };
    const FleetStats a = run();
    const FleetStats b = run();
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.total.served, b.total.served);
    EXPECT_EQ(a.versionSwaps, b.versionSwaps);
    EXPECT_EQ(a.versionsRetired, b.versionsRetired);
    EXPECT_DOUBLE_EQ(a.makespanMs, b.makespanMs);
}

} // namespace
