/**
 * @file
 * Tests for elastic capacity forecasting and in-session service-model
 * recalibration: windowed load forecasting with immediate scale-up
 * and lagged scale-down, ServiceModel::fit() convergence when the
 * scripted service truth drifts mid-session, stale-model detection,
 * and bit-for-bit reproduction of the legacy constant() behaviour
 * when recalibration is disabled.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "serve/capacity.hpp"
#include "serve/service_model.hpp"

namespace
{

using namespace dlrmopt::serve;

TEST(CapacityConfig, ValidateRejectsBadKnobs)
{
    CapacityConfig c;
    c.minInstances = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.windowMs = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.forecastDecay = 1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.targetUtilization = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.downLag = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.drainGraceMs = -1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.validate();
}

TEST(CapacityController, RejectsImpossibleShapes)
{
    CapacityConfig c;
    EXPECT_THROW(CapacityController(c, 0, 4), std::invalid_argument);
    EXPECT_THROW(CapacityController(c, 2, 0), std::invalid_argument);
    c.minInstances = 3;
    EXPECT_THROW(CapacityController(c, 2, 4), std::invalid_argument);
}

TEST(CapacityController, StartsAtTheFloor)
{
    CapacityConfig c;
    c.minInstances = 1;
    CapacityController ctrl(c, 8, 4);
    EXPECT_EQ(ctrl.desiredInstances(0.0), 1u);
    EXPECT_EQ(ctrl.windowsClosed(), 0u);
}

TEST(CapacityController, ScalesUpImmediatelyUnderLoad)
{
    CapacityConfig c;
    c.minInstances = 1;
    c.windowMs = 10.0;
    c.forecastDecay = 0.0; // forecast = last window, no smoothing
    c.targetUtilization = 0.5;
    CapacityController ctrl(c, 8, 4);

    // 60 ms of service demand in a 10 ms window = 6 core-equivalents;
    // at 4 cores x 0.5 target that needs ceil(6 / 2) = 3 instances.
    for (int i = 0; i < 6; ++i)
        ctrl.observeArrival(static_cast<double>(i), 10.0);
    EXPECT_EQ(ctrl.desiredInstances(10.0), 3u);
    EXPECT_EQ(ctrl.windowsClosed(), 1u);
    EXPECT_NEAR(ctrl.forecastLoad(), 6.0, 1e-12);
}

TEST(CapacityController, ScaleDownWaitsOutTheLag)
{
    CapacityConfig c;
    c.minInstances = 1;
    c.windowMs = 10.0;
    c.forecastDecay = 0.0;
    c.targetUtilization = 0.5;
    c.downLag = 3;
    CapacityController ctrl(c, 8, 4);

    for (int i = 0; i < 6; ++i)
        ctrl.observeArrival(static_cast<double>(i), 10.0);
    ASSERT_EQ(ctrl.desiredInstances(10.0), 3u);

    // Quiet windows: the desired count must hold for downLag - 1
    // closed windows and only then drop (over-capacity wastes, it
    // does not shed — so the controller demands a sustained lull).
    EXPECT_EQ(ctrl.desiredInstances(20.0), 3u);
    EXPECT_EQ(ctrl.desiredInstances(30.0), 3u);
    EXPECT_EQ(ctrl.desiredInstances(40.0), 1u);
}

TEST(CapacityController, BurstDuringTheLagResetsIt)
{
    CapacityConfig c;
    c.minInstances = 1;
    c.windowMs = 10.0;
    c.forecastDecay = 0.0;
    c.targetUtilization = 0.5;
    c.downLag = 2;
    CapacityController ctrl(c, 8, 4);

    for (int i = 0; i < 6; ++i)
        ctrl.observeArrival(static_cast<double>(i), 10.0);
    ASSERT_EQ(ctrl.desiredInstances(10.0), 3u);
    ASSERT_EQ(ctrl.desiredInstances(20.0), 3u); // one quiet window

    // The burst window re-arms the lag: the next quiet window is the
    // first of a fresh streak, not the second of the old one.
    for (int i = 0; i < 6; ++i)
        ctrl.observeArrival(20.0 + static_cast<double>(i), 10.0);
    ASSERT_EQ(ctrl.desiredInstances(30.0), 3u);
    EXPECT_EQ(ctrl.desiredInstances(40.0), 3u);
    EXPECT_EQ(ctrl.desiredInstances(50.0), 1u);
}

TEST(CapacityController, ClampsToTheSlotCount)
{
    CapacityConfig c;
    c.minInstances = 1;
    c.windowMs = 10.0;
    c.forecastDecay = 0.0;
    c.targetUtilization = 0.5;
    CapacityController ctrl(c, 2, 4);

    for (int i = 0; i < 100; ++i)
        ctrl.observeArrival(0.5, 10.0);
    EXPECT_EQ(ctrl.desiredInstances(10.0), 2u);
}

TEST(RecalibrationConfig, ValidateRejectsBadKnobs)
{
    RecalibrationConfig c;
    c.intervalMs = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.window = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.minObservations = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.minObservations = c.window + 1;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.staleThreshold = 0.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
    c = {};
    c.validate();
}

TEST(Recalibrator, DisabledKeepsTheLegacyConstantBitForBit)
{
    // With recalibration off, the estimate must be the seed model
    // unchanged — bit-for-bit, so a constant() fleet reproduces the
    // legacy scalar accounting exactly no matter what it observes.
    const ServiceModel seed = ServiceModel::constant(2.5);
    RecalibrationConfig cfg; // enabled = false
    ServiceModelRecalibrator r(seed, cfg);

    for (int i = 0; i < 100; ++i)
        r.observe(8, 123.456);
    EXPECT_FALSE(r.maybeRecalibrate(1e9));
    EXPECT_EQ(r.recalibrations(), 0u);
    EXPECT_EQ(r.observations(), 0u); // disabled: not even recorded
    EXPECT_EQ(r.current().baseMs, seed.baseMs);
    EXPECT_EQ(r.current().perSampleMs, seed.perSampleMs);
    for (std::size_t n = 1; n <= 64; n *= 2)
        EXPECT_EQ(r.current().serviceMs(n), seed.serviceMs(n));
}

TEST(Recalibrator, RespectsIntervalAndMinObservations)
{
    RecalibrationConfig cfg;
    cfg.enabled = true;
    cfg.intervalMs = 50.0;
    cfg.minObservations = 4;
    ServiceModelRecalibrator r(ServiceModel::constant(1.0), cfg);

    r.observe(8, 2.0);
    EXPECT_FALSE(r.maybeRecalibrate(100.0)); // too few observations
    r.observe(8, 2.0);
    r.observe(4, 1.5);
    r.observe(2, 1.25);
    EXPECT_FALSE(r.maybeRecalibrate(40.0)); // interval not yet due
    EXPECT_TRUE(r.maybeRecalibrate(60.0));
    EXPECT_FALSE(r.maybeRecalibrate(80.0)); // refit re-arms the timer
    EXPECT_EQ(r.recalibrations(), 1u);
}

TEST(Recalibrator, ConvergesOnDriftedServiceTruth)
{
    // The session starts calibrated to 1 + 0.05n. Mid-session the
    // truth drifts to 3 + 0.2n; once the observation window has
    // turned over, a refit must recover the new law (fit() solves the
    // normal equations exactly on exact data) and the estimate error
    // must collapse back to ~0.
    RecalibrationConfig cfg;
    cfg.enabled = true;
    cfg.intervalMs = 10.0;
    cfg.window = 64;
    cfg.minObservations = 8;
    const ServiceModel before{1.0, 0.05};
    const ServiceModel after{3.0, 0.2};
    ServiceModelRecalibrator r(before, cfg);

    double now = 0.0;
    for (int i = 0; i < 64; ++i) {
        const std::size_t n = 1 + static_cast<std::size_t>(i % 8);
        r.observe(n, before.serviceMs(n));
        now += 1.0;
        r.maybeRecalibrate(now);
    }
    EXPECT_LT(r.meanRelativeError(), 1e-9);

    // Drift. Fill the whole window with the new regime, then refit.
    for (int i = 0; i < 64; ++i) {
        const std::size_t n = 1 + static_cast<std::size_t>(i % 8);
        r.observe(n, after.serviceMs(n));
        now += 1.0;
        r.maybeRecalibrate(now);
    }
    // One more due refit now that the ring holds only the new regime.
    ASSERT_TRUE(r.maybeRecalibrate(now + cfg.intervalMs));
    EXPECT_GE(r.recalibrations(), 2u);
    EXPECT_NEAR(r.current().baseMs, after.baseMs, 1e-6);
    EXPECT_NEAR(r.current().perSampleMs, after.perSampleMs, 1e-6);
    EXPECT_LT(r.meanRelativeError(), 1e-9);
    EXPECT_FALSE(r.stale());
}

TEST(Recalibrator, FlagsAStaleModelBeforeTheRefitLands)
{
    // Between the drift and the next due refit the estimate is wrong
    // by construction; stale() is the alarm that window exposes.
    RecalibrationConfig cfg;
    cfg.enabled = true;
    cfg.intervalMs = 1e6; // never due within this test
    cfg.window = 32;
    cfg.minObservations = 8;
    cfg.staleThreshold = 0.25;
    const ServiceModel truth{4.0, 0.5};
    ServiceModelRecalibrator r(ServiceModel::constant(1.0), cfg);

    for (int i = 0; i < 32; ++i) {
        const std::size_t n = 1 + static_cast<std::size_t>(i % 8);
        r.observe(n, truth.serviceMs(n));
    }
    EXPECT_GT(r.meanRelativeError(), 0.25);
    EXPECT_TRUE(r.stale());
}


TEST(CapacityController, HoldScaleDownsFreezesHysteresisDuringReload)
{
    CapacityConfig c;
    c.minInstances = 1;
    c.windowMs = 10.0;
    c.forecastDecay = 0.0;
    c.targetUtilization = 0.5;
    c.downLag = 3;
    CapacityController ctrl(c, 8, 4);

    // Load one busy window up to 3 instances.
    for (int i = 0; i < 6; ++i)
        ctrl.observeArrival(static_cast<double>(i), 10.0);
    ASSERT_EQ(ctrl.desiredInstances(10.0), 3u);

    // A reload starts; the lull spans it. Held, the controller must
    // never bank hysteresis credit: four idle windows in a row and
    // the desired count still does not move.
    ctrl.holdScaleDowns(true);
    EXPECT_TRUE(ctrl.scaleDownsHeld());
    for (double t = 20.0; t <= 50.0; t += 10.0)
        EXPECT_EQ(ctrl.desiredInstances(t), 3u);

    // Release the hold at commit: the streak restarts from zero, so
    // the scale-down still needs downLag *fresh* idle windows...
    ctrl.holdScaleDowns(false);
    EXPECT_FALSE(ctrl.scaleDownsHeld());
    EXPECT_EQ(ctrl.desiredInstances(60.0), 3u);
    EXPECT_EQ(ctrl.desiredInstances(70.0), 3u);
    // ...and only then shrinks.
    EXPECT_EQ(ctrl.desiredInstances(80.0), 1u);
}

} // namespace
