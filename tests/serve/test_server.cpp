/**
 * @file
 * Tests for the fault-tolerant request server: admission control,
 * deadline compliance, retry with backoff, graceful degradation, and
 * bit-reproducible behaviour under seeded fault injection.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;

core::ModelConfig
smallModel()
{
    core::ModelConfig m;
    m.name = "serve_small";
    m.cls = core::ModelClass::RMC2;
    m.rows = 4096;
    m.dim = 16;
    m.tables = 3;
    m.lookups = 4;
    m.bottomMlp = {24, 16, 16};
    m.topMlp = {8, 1};
    return m;
}

class ServerTest : public ::testing::Test
{
  protected:
    ServerTest() : model(smallModel(), 11)
    {
        traces::TraceConfig tc = traces::TraceConfig::forModel(
            smallModel(), traces::Hotness::Medium, 5);
        tc.batchSize = 8;
        traces::TraceGenerator gen(tc);
        for (std::size_t b = 0; b < 16; ++b)
            batches.push_back(gen.batch(b));
        dense.reshape(8, smallModel().denseDim());
        dense.randomize(3);
    }

    core::DlrmModel model;
    std::vector<core::SparseBatch> batches;
    core::Tensor dense;
};

TEST_F(ServerTest, ServesACleanStreamCompletely)
{
    ServerConfig cfg;
    cfg.slaMs = 50.0;
    cfg.service = ServiceModel::constant(1.0);
    Server srv(model, sched::Topology::synthetic(2, 2), cfg);

    const auto arrivals = PoissonLoadGen(2.0, 3).arrivals(100);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_EQ(st.arrived, 100u);
    EXPECT_EQ(st.served, 100u);
    EXPECT_EQ(st.shed, 0u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.retried, 0u);
    EXPECT_EQ(st.latency.count(), 100u);
    EXPECT_LE(st.latency.p95(), cfg.slaMs);
    EXPECT_GT(st.execTotalMs, 0.0);
    EXPECT_FALSE(st.summary().empty());
}

TEST_F(ServerTest, AdmissionControlShedsOverloadAndProtectsTheTail)
{
    // rho = service / (mean arrival * cores) = 1 / (0.2 * 2) = 2.5:
    // hopeless overload. Admission control must shed, and the p95 of
    // what it *does* serve must stay within the SLA.
    ServerConfig cfg;
    cfg.slaMs = 10.0;
    cfg.service = ServiceModel::constant(1.0);
    Server srv(model, sched::Topology::synthetic(2, 2), cfg);

    const auto arrivals = PoissonLoadGen(0.2, 3).arrivals(300);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_GT(st.shed, 0u);
    EXPECT_EQ(st.served + st.shed, 300u);
    EXPECT_LE(st.latency.p95(), cfg.slaMs);

    // Same overload without admission control: everything is served
    // but the tail blows through the SLA.
    ServerConfig open = cfg;
    open.admission = false;
    Server srv2(model, sched::Topology::synthetic(2, 2), open);
    const auto st2 = srv2.serve(dense, batches, arrivals);
    EXPECT_EQ(st2.served, 300u);
    EXPECT_EQ(st2.shed, 0u);
    EXPECT_GT(st2.latency.p95(), cfg.slaMs);
}

TEST_F(ServerTest, InjectedFaultsAreRetriedNotFatal)
{
    FaultConfig fc;
    fc.seed = 21;
    fc.taskExceptionRate = 0.10;
    fc.corruptIndexRate = 0.05;
    fc.allocFailureRate = 0.02;
    const FaultInjector inj(fc);

    ServerConfig cfg;
    cfg.slaMs = 50.0;
    cfg.service = ServiceModel::constant(1.0);
    cfg.maxRetries = 4;
    Server srv(model, sched::Topology::synthetic(2, 2), cfg, &inj);

    const auto arrivals = PoissonLoadGen(2.0, 3).arrivals(200);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_EQ(st.arrived, 200u);
    EXPECT_EQ(st.served + st.shed + st.failed, 200u);
    EXPECT_GT(st.retried, 0u);
    // ~17% per-attempt fault rate with 4 retries: nearly everything
    // eventually lands.
    EXPECT_GT(st.served, 190u);
    // The pool recorded the injected failures without dying.
    EXPECT_GT(srv.coreHealth(0).failed + srv.coreHealth(1).failed, 0u);
    EXPECT_GT(inj.injectedExceptions(), 0u);
    EXPECT_GT(inj.injectedCorruptions(), 0u);
}

TEST_F(ServerTest, SeededFaultRunIsExactlyReproducible)
{
    // Acceptance criterion: 5% task exceptions plus one straggler
    // core, two runs with the same seed -> zero crashes, identical
    // shed/retry/failed counters, identical served latencies, and a
    // served p95 within the SLA.
    FaultConfig fc;
    fc.seed = 77;
    fc.taskExceptionRate = 0.05;
    fc.stragglerCore = 0;
    fc.stragglerFactor = 3.0;

    ServerConfig cfg;
    cfg.slaMs = 25.0;
    cfg.service = ServiceModel::constant(1.0);
    cfg.maxRetries = 3;
    cfg.backoffBaseMs = 1.0;
    cfg.backoffCapMs = 4.0;

    const auto arrivals = PoissonLoadGen(1.5, 9).arrivals(400);

    const FaultInjector inj1(fc);
    Server srv1(model, sched::Topology::synthetic(2, 2), cfg, &inj1);
    const auto a = srv1.serve(dense, batches, arrivals);

    const FaultInjector inj2(fc);
    Server srv2(model, sched::Topology::synthetic(2, 2), cfg, &inj2);
    const auto b = srv2.serve(dense, batches, arrivals);

    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.latency.samples(), b.latency.samples());

    EXPECT_EQ(a.served + a.shed + a.failed, 400u);
    EXPECT_GT(a.retried, 0u);
    EXPECT_LE(a.latency.p95(), cfg.slaMs);
}

TEST_F(ServerTest, DegradationEngagesUnderPressureAndHelps)
{
    // Sustained overload (rho ~ 1.7) with admission off so nothing is
    // shed: latencies climb without bound, the windowed p95 crosses
    // the high-water mark, and the tiers engage. Tier 1's smaller
    // batches then let the queue drain.
    ServerConfig cfg;
    cfg.slaMs = 60.0;
    cfg.service = ServiceModel::constant(1.0);
    cfg.admission = false;
    cfg.degrade.enabled = true;
    cfg.degrade.window = 32;
    cfg.degrade.cooldown = 32;

    const auto arrivals = PoissonLoadGen(0.3, 3).arrivals(400);

    Server degraded(model, sched::Topology::synthetic(2, 2), cfg);
    const auto st = degraded.serve(dense, batches, arrivals);
    EXPECT_GT(st.degradeEscalations, 0u);
    EXPECT_GT(st.finalTier, 0);

    ServerConfig rigid = cfg;
    rigid.degrade.enabled = false;
    Server fixed(model, sched::Topology::synthetic(2, 2), rigid);
    const auto st2 = fixed.serve(dense, batches, arrivals);
    EXPECT_EQ(st2.degradeEscalations, 0u);

    // Shrunken batches drain the queue faster: the degraded run's
    // tail must beat the rigid one's.
    EXPECT_LT(st.latency.p95(), st2.latency.p95());
}

TEST_F(ServerTest, BatchingCoalescesWithoutChangingOutcomes)
{
    // Affine service model: coalescing amortizes the 0.5ms dispatch
    // cost, so the batched session must serve everything the
    // unbatched one does with strictly fewer dispatches.
    ServerConfig cfg;
    cfg.slaMs = 50.0;
    cfg.service = ServiceModel{0.5, 0.05};
    const auto arrivals = PoissonLoadGen(1.0, 3).arrivals(200);

    Server flat(model, sched::Topology::synthetic(2, 2), cfg);
    const auto base = flat.serve(dense, batches, arrivals);

    ServerConfig bcfg = cfg;
    bcfg.batching.enabled = true;
    bcfg.batching.maxRequests = 8;
    bcfg.batching.maxLingerMs = 1.0;
    Server coalescing(model, sched::Topology::synthetic(2, 2), bcfg);
    const auto st = coalescing.serve(dense, batches, arrivals);

    EXPECT_EQ(st.arrived, 200u);
    EXPECT_EQ(st.served, 200u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_LT(st.dispatches, base.dispatches);
    EXPECT_GT(st.dispatches, 0u);
    EXPECT_LE(st.latency.p95(), cfg.slaMs);
    EXPECT_GT(st.execTotalMs, 0.0);
}

TEST_F(ServerTest, BatchingServesMoreUnderOverload)
{
    // Heavy overload with a large per-dispatch cost: the unbatched
    // server sheds aggressively; coalescing amortizes the base cost
    // and must push substantially more requests through within the
    // same SLA.
    ServerConfig cfg;
    cfg.slaMs = 20.0;
    cfg.service = ServiceModel{1.0, 0.02};
    const auto arrivals = PoissonLoadGen(0.25, 5).arrivals(400);

    Server flat(model, sched::Topology::synthetic(2, 2), cfg);
    const auto base = flat.serve(dense, batches, arrivals);

    ServerConfig bcfg = cfg;
    bcfg.batching.enabled = true;
    bcfg.batching.maxRequests = 8;
    bcfg.batching.maxLingerMs = 2.0;
    Server coalescing(model, sched::Topology::synthetic(2, 2), bcfg);
    const auto st = coalescing.serve(dense, batches, arrivals);

    EXPECT_GT(base.shed, 0u);
    EXPECT_GT(st.served, base.served);
    EXPECT_LE(st.latency.p95(), cfg.slaMs);
    // The acceptance bar: >= 1.3x sustained throughput at an equal
    // or better served tail.
    const double base_rate =
        static_cast<double>(base.served) / base.makespanMs;
    const double batched_rate =
        static_cast<double>(st.served) / st.makespanMs;
    EXPECT_GE(batched_rate, 1.3 * base_rate);
    EXPECT_LE(st.latency.p95(), base.latency.p95() + 1e-9);
}

TEST_F(ServerTest, BatchedFaultsAreIsolatedPerMember)
{
    // Faults hit individual members of a coalesced dispatch: the
    // sibling requests in the same batch must still be served, and
    // the afflicted members retried, exactly as in the unbatched
    // path.
    FaultConfig fc;
    fc.seed = 33;
    fc.taskExceptionRate = 0.10;
    fc.corruptIndexRate = 0.05;
    const FaultInjector inj(fc);

    ServerConfig cfg;
    cfg.slaMs = 50.0;
    cfg.service = ServiceModel{0.5, 0.05};
    cfg.maxRetries = 4;
    cfg.batching.enabled = true;
    cfg.batching.maxRequests = 6;
    cfg.batching.maxLingerMs = 1.0;
    Server srv(model, sched::Topology::synthetic(2, 2), cfg, &inj);

    const auto arrivals = PoissonLoadGen(1.5, 3).arrivals(200);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_EQ(st.arrived, 200u);
    EXPECT_EQ(st.served + st.shed + st.failed, 200u);
    EXPECT_GT(st.retried, 0u);
    EXPECT_GT(st.served, 190u);
    EXPECT_GT(inj.injectedExceptions(), 0u);
}

TEST_F(ServerTest, SeededBatchedRunIsExactlyReproducible)
{
    FaultConfig fc;
    fc.seed = 55;
    fc.taskExceptionRate = 0.05;
    fc.stragglerCore = 0;
    fc.stragglerFactor = 2.0;

    ServerConfig cfg;
    cfg.slaMs = 30.0;
    cfg.service = ServiceModel{0.5, 0.05};
    cfg.maxRetries = 3;
    cfg.batching.enabled = true;
    cfg.batching.maxRequests = 8;
    cfg.batching.maxLingerMs = 1.0;

    const auto arrivals = PoissonLoadGen(1.0, 9).arrivals(300);

    const FaultInjector inj1(fc);
    Server srv1(model, sched::Topology::synthetic(2, 2), cfg, &inj1);
    const auto a = srv1.serve(dense, batches, arrivals);

    const FaultInjector inj2(fc);
    Server srv2(model, sched::Topology::synthetic(2, 2), cfg, &inj2);
    const auto b = srv2.serve(dense, batches, arrivals);

    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.latency.samples(), b.latency.samples());
    EXPECT_EQ(a.served + a.shed + a.failed, 300u);
}

TEST_F(ServerTest, DegradationShrinksTheCoalescingCap)
{
    // Under sustained overload the tiers engage; tiered runs shrink
    // the coalescing cap (batchFraction), so the deepest tier's
    // dispatches carry fewer members than tier 0 would allow. The
    // end-to-end signal: the degraded batched run still completes and
    // records escalations.
    ServerConfig cfg;
    cfg.slaMs = 40.0;
    cfg.service = ServiceModel{1.0, 0.15};
    cfg.admission = false;
    cfg.degrade.enabled = true;
    cfg.degrade.window = 32;
    cfg.degrade.cooldown = 32;
    cfg.batching.enabled = true;
    cfg.batching.maxRequests = 8;
    cfg.batching.maxLingerMs = 1.0;

    const auto arrivals = PoissonLoadGen(0.2, 3).arrivals(400);
    Server srv(model, sched::Topology::synthetic(2, 2), cfg);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_EQ(st.served, 400u);
    EXPECT_GT(st.degradeEscalations, 0u);
    EXPECT_GT(st.finalTier, 0);
}

TEST_F(ServerTest, QuantizedTiersEngageBeforeShedding)
{
    // Overload a server whose quantized tiers are genuinely cheaper
    // (dtype-aware pricing): the ladder must drop precision first —
    // serving every admitted sample at bf16/int8 — and only shed what
    // even int8 capacity cannot absorb. The rigid control run (no
    // degradation) at the same load sheds strictly more.
    core::DlrmModel m(smallModel(), 11);
    m.attachQuantizedStore(core::EmbeddingStore::create(
        smallModel(), 11, 256, core::EmbDtype::Bf16));
    m.attachQuantizedStore(core::EmbeddingStore::create(
        smallModel(), 11, 256, core::EmbDtype::Int8));

    ServerConfig cfg;
    cfg.slaMs = 12.0;
    cfg.service = ServiceModel::constant(1.0);
    cfg.dtypeServiceEnabled = true;
    cfg.serviceBf16 = ServiceModel::constant(0.8);
    cfg.serviceInt8 = ServiceModel::constant(0.5);
    cfg.degrade.enabled = true;
    cfg.degrade.window = 16;
    cfg.degrade.cooldown = 16;

    // rho ~ 1.25 at fp32 on 2 cores: overloaded at full precision,
    // comfortably under capacity at int8 (rho ~ 0.63).
    const auto arrivals = PoissonLoadGen(0.4, 3).arrivals(400);
    Server degraded(m, sched::Topology::synthetic(2, 2), cfg);
    const auto st = degraded.serve(dense, batches, arrivals);

    EXPECT_GT(st.degradeEscalations, 0u);
    EXPECT_GT(st.quantDispatches, 0u);
    EXPECT_GT(st.finalTier, 0);
    // Quantized dispatches serve full batches: degradation reached
    // the precision tiers, not just the old shrink-work knobs.
    EXPECT_EQ(st.served + st.shed + st.failed, 400u);

    ServerConfig rigid = cfg;
    rigid.degrade.enabled = false;
    Server fixed(m, sched::Topology::synthetic(2, 2), rigid);
    const auto rst = fixed.serve(dense, batches, arrivals);

    EXPECT_EQ(rst.quantDispatches, 0u);
    // Dropping precision buys real admission headroom.
    EXPECT_LT(st.shed, rst.shed);
    EXPECT_GT(st.served, rst.served);
}

TEST_F(ServerTest, QuantizedTierFallsBackGracefullyWithoutStores)
{
    // A degradation tier asking for a precision that was never
    // provisioned must still serve (embedding bags fall back to the
    // fp32 store; the int8 MLP engine is always available).
    ServerConfig cfg;
    cfg.slaMs = 12.0;
    cfg.service = ServiceModel::constant(1.0);
    cfg.admission = false;
    cfg.degrade.enabled = true;
    cfg.degrade.window = 16;
    cfg.degrade.cooldown = 16;

    const auto arrivals = PoissonLoadGen(0.4, 3).arrivals(200);
    Server srv(model, sched::Topology::synthetic(2, 2), cfg);
    const auto st = srv.serve(dense, batches, arrivals);

    EXPECT_EQ(st.served, 200u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_GT(st.quantDispatches, 0u);
}

TEST_F(ServerTest, RejectsBadConfigsAndInputs)
{
    ServerConfig cfg;
    cfg.slaMs = 0.0;
    EXPECT_THROW(Server(model, sched::Topology::synthetic(1, 1), cfg),
                 std::invalid_argument);
    cfg = {};
    cfg.service = ServiceModel::constant(-1.0);
    EXPECT_THROW(Server(model, sched::Topology::synthetic(1, 1), cfg),
                 std::invalid_argument);
    cfg = {};
    cfg.backoffBaseMs = 4.0;
    cfg.backoffCapMs = 1.0;
    EXPECT_THROW(Server(model, sched::Topology::synthetic(1, 1), cfg),
                 std::invalid_argument);
    cfg = {};
    cfg.batching.maxRequests = 0;
    EXPECT_THROW(Server(model, sched::Topology::synthetic(1, 1), cfg),
                 std::invalid_argument);

    cfg = {};
    Server srv(model, sched::Topology::synthetic(1, 1), cfg);
    EXPECT_THROW(srv.serve(dense, {}, {0.0}), std::invalid_argument);
}

} // namespace
