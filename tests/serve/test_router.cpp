/**
 * @file
 * Tests for the multi-instance Router: replica instances sharing one
 * EmbeddingStore, deterministic power-of-two-choices sessions,
 * health-aware routing around a straggling instance, cross-instance
 * failover, and cluster-level shedding.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/embedding_store.hpp"
#include "serve/loadgen.hpp"
#include "serve/router.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::serve;

core::ModelConfig
smallModel()
{
    core::ModelConfig m;
    m.name = "router_small";
    m.cls = core::ModelClass::RMC2;
    m.rows = 4096;
    m.dim = 16;
    m.tables = 3;
    m.lookups = 4;
    m.bottomMlp = {24, 16, 16};
    m.topMlp = {8, 1};
    return m;
}

class RouterTest : public ::testing::Test
{
  protected:
    RouterTest() : store(core::EmbeddingStore::create(smallModel(), 11))
    {
        traces::TraceConfig tc = traces::TraceConfig::forModel(
            smallModel(), traces::Hotness::Medium, 5);
        tc.batchSize = 8;
        traces::TraceGenerator gen(tc);
        for (std::size_t b = 0; b < 16; ++b)
            batches.push_back(gen.batch(b));
        dense.reshape(8, smallModel().denseDim());
        dense.randomize(3);
    }

    std::shared_ptr<const core::EmbeddingStore> store;
    std::vector<core::SparseBatch> batches;
    core::Tensor dense;
};

TEST_F(RouterTest, PolicyNamesRoundTrip)
{
    EXPECT_EQ(parseRoutePolicy("rr"), RoutePolicy::RoundRobin);
    EXPECT_EQ(parseRoutePolicy("po2"), RoutePolicy::PowerOfTwo);
    EXPECT_EQ(parseRoutePolicy("health-aware"),
              RoutePolicy::HealthAware);
    EXPECT_STREQ(routePolicyName(RoutePolicy::PowerOfTwo), "po2");
    EXPECT_THROW(parseRoutePolicy("random"), std::invalid_argument);
}

TEST_F(RouterTest, ReplicaInstancesShareOneStore)
{
    // Acceptance criterion: N replica Servers over one EmbeddingStore
    // add zero embedding bytes beyond the single copy.
    RouterConfig cfg;
    cfg.instances = 3;
    Router router(smallModel(), store,
                  sched::Topology::synthetic(6, 2), cfg);

    // One reference here, one in the router, one per replica model.
    EXPECT_EQ(store.use_count(), 3 + 2);
    for (std::size_t i = 0; i < router.numInstances(); ++i) {
        EXPECT_EQ(router.model(i).embeddingBytes(), store->bytes());
        EXPECT_EQ(router.model(i).store().get(), store.get());
        for (std::size_t t = 0; t < smallModel().tables; ++t) {
            EXPECT_EQ(router.model(i).table(t).data(),
                      store->table(t).data());
        }
    }
}

TEST_F(RouterTest, ServesACleanStreamOnEveryPolicy)
{
    const auto arrivals = PoissonLoadGen(2.0, 3).arrivals(100);
    for (RoutePolicy p : {RoutePolicy::RoundRobin,
                          RoutePolicy::PowerOfTwo,
                          RoutePolicy::HealthAware}) {
        RouterConfig cfg;
        cfg.instances = 2;
        cfg.policy = p;
        cfg.server.slaMs = 50.0;
        cfg.server.service = ServiceModel::constant(1.0);
        Router router(smallModel(), store,
                      sched::Topology::synthetic(4, 2), cfg);
        const auto rs = router.serve(dense, batches, arrivals);

        EXPECT_EQ(rs.total.arrived, 100u) << routePolicyName(p);
        EXPECT_EQ(rs.total.served, 100u) << routePolicyName(p);
        EXPECT_EQ(rs.total.shed, 0u);
        EXPECT_EQ(rs.total.failed, 0u);
        EXPECT_EQ(rs.failovers, 0u);
        EXPECT_EQ(rs.compliant, 100u);
        EXPECT_GT(rs.makespanMs, 0.0);
        EXPECT_FALSE(rs.summary().empty());

        // Work actually spread across both instances.
        ASSERT_EQ(rs.perInstance.size(), 2u);
        EXPECT_GT(rs.perInstance[0].served, 0u);
        EXPECT_GT(rs.perInstance[1].served, 0u);
        EXPECT_EQ(rs.perInstance[0].served + rs.perInstance[1].served,
                  100u);
    }
}

TEST_F(RouterTest, Po2SessionIsDeterministicUnderFixedSeed)
{
    // Acceptance criterion: a power-of-two-choices session over >= 2
    // instances with injected faults is bit-reproducible.
    FaultConfig fc;
    fc.seed = 77;
    fc.taskExceptionRate = 0.05;
    fc.stragglerCore = 0;
    fc.stragglerFactor = 2.0;

    RouterConfig cfg;
    cfg.instances = 2;
    cfg.policy = RoutePolicy::PowerOfTwo;
    cfg.seed = 9;
    cfg.server.slaMs = 25.0;
    cfg.server.service = ServiceModel::constant(1.0);
    cfg.server.maxRetries = 2;

    const auto arrivals = PoissonLoadGen(1.5, 9).arrivals(300);

    const FaultInjector inj1(fc);
    Router r1(smallModel(), store, sched::Topology::synthetic(4, 2),
              cfg, {&inj1, &inj1});
    const auto a = r1.serve(dense, batches, arrivals);

    const FaultInjector inj2(fc);
    Router r2(smallModel(), store, sched::Topology::synthetic(4, 2),
              cfg, {&inj2, &inj2});
    const auto b = r2.serve(dense, batches, arrivals);

    EXPECT_EQ(a.total.arrived, b.total.arrived);
    EXPECT_EQ(a.total.served, b.total.served);
    EXPECT_EQ(a.total.shed, b.total.shed);
    EXPECT_EQ(a.total.failed, b.total.failed);
    EXPECT_EQ(a.total.retried, b.total.retried);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.clusterShed, b.clusterShed);
    EXPECT_EQ(a.compliant, b.compliant);
    EXPECT_EQ(a.makespanMs, b.makespanMs);
    EXPECT_EQ(a.total.latency.samples(), b.total.latency.samples());
    for (std::size_t i = 0; i < a.perInstance.size(); ++i) {
        EXPECT_EQ(a.perInstance[i].served, b.perInstance[i].served);
        EXPECT_EQ(a.perInstance[i].latency.samples(),
                  b.perInstance[i].latency.samples());
    }

    EXPECT_EQ(a.total.served + a.total.shed + a.total.failed, 300u);
    EXPECT_GT(a.total.retried, 0u);
}

TEST_F(RouterTest, HealthAwareBeatsRoundRobinAroundAStraggler)
{
    // Acceptance criterion: with one instance straggling 10x, the
    // health-aware policy must serve strictly more SLA-compliant
    // requests than round-robin over the same arrival stream.
    // Round-robin keeps sending every other request to the straggler,
    // where admission control sheds it on arrival (10 ms service
    // against a 6 ms SLA); the health score learns from those sheds
    // and steers traffic to the healthy instance.
    FaultConfig fc;
    fc.seed = 5;
    fc.stragglerCore = 0; // instance-local core id
    fc.stragglerFactor = 10.0;
    const FaultInjector straggler(fc);

    RouterConfig cfg;
    cfg.instances = 2;
    cfg.server.slaMs = 6.0;
    cfg.server.service = ServiceModel::constant(1.0);

    const auto arrivals = PoissonLoadGen(1.2, 7).arrivals(300);

    cfg.policy = RoutePolicy::RoundRobin;
    Router rr(smallModel(), store, sched::Topology::synthetic(2, 2),
              cfg, {nullptr, &straggler});
    const auto rr_stats = rr.serve(dense, batches, arrivals);

    cfg.policy = RoutePolicy::HealthAware;
    Router health(smallModel(), store,
                  sched::Topology::synthetic(2, 2), cfg,
                  {nullptr, &straggler});
    const auto h_stats = health.serve(dense, batches, arrivals);

    // Round-robin loses roughly half the stream to the straggler.
    EXPECT_GT(rr_stats.total.shed, 100u);
    EXPECT_GT(h_stats.compliant, rr_stats.compliant);
    EXPECT_GT(h_stats.total.served, rr_stats.total.served);
    // The healthy instance carries nearly everything under the
    // health-aware policy.
    EXPECT_GT(h_stats.perInstance[0].served,
              h_stats.perInstance[1].served);
}

TEST_F(RouterTest, FailoverRedispatchesAfterRetryExhaustion)
{
    // Instance 0 fails every attempt; requests routed there must burn
    // their retry budget, then fail over to instance 1 and succeed.
    FaultConfig fc;
    fc.seed = 3;
    fc.taskExceptionRate = 1.0;
    const FaultInjector broken(fc);

    RouterConfig cfg;
    cfg.instances = 2;
    cfg.policy = RoutePolicy::RoundRobin;
    cfg.server.slaMs = 50.0;
    cfg.server.service = ServiceModel::constant(1.0);
    cfg.server.maxRetries = 1;
    cfg.maxFailovers = 1;

    const auto arrivals = PoissonLoadGen(3.0, 3).arrivals(60);
    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), cfg,
                  {&broken, nullptr});
    const auto rs = router.serve(dense, batches, arrivals);

    EXPECT_EQ(rs.total.served, 60u);
    EXPECT_EQ(rs.total.failed, 0u);
    EXPECT_GT(rs.failovers, 0u);
    EXPECT_GT(rs.total.retried, 0u);
    // Instance 1 ends up serving everything.
    EXPECT_EQ(rs.perInstance[1].served, 60u);
    EXPECT_EQ(rs.perInstance[0].served, 0u);

    // Same session without failover: those requests are lost.
    RouterConfig no_fo = cfg;
    no_fo.maxFailovers = 0;
    Router rigid(smallModel(), store,
                 sched::Topology::synthetic(4, 2), no_fo,
                 {&broken, nullptr});
    const auto rs2 = rigid.serve(dense, batches, arrivals);
    EXPECT_GT(rs2.total.failed, 0u);
    EXPECT_EQ(rs2.failovers, 0u);
    EXPECT_EQ(rs2.total.served + rs2.total.failed, 60u);
}

TEST_F(RouterTest, ClusterShedsWhenNoInstanceCanMeetTheSla)
{
    // Service time alone exceeds the SLA: every request is shed on
    // arrival, and every shed is a cluster-level shed because no
    // instance could have met the deadline either.
    RouterConfig cfg;
    cfg.instances = 2;
    cfg.server.slaMs = 0.5;
    cfg.server.service = ServiceModel::constant(1.0);

    const auto arrivals = PoissonLoadGen(2.0, 3).arrivals(40);
    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), cfg);
    const auto rs = router.serve(dense, batches, arrivals);

    EXPECT_EQ(rs.total.served, 0u);
    EXPECT_EQ(rs.total.shed, 40u);
    EXPECT_EQ(rs.clusterShed, 40u);
}

TEST_F(RouterTest, RejectsBadConfigsAndInputs)
{
    RouterConfig cfg;
    cfg.instances = 0;
    EXPECT_THROW(Router(smallModel(), store,
                        sched::Topology::synthetic(4, 2), cfg),
                 std::invalid_argument);

    cfg.instances = 5; // more instances than physical cores
    EXPECT_THROW(Router(smallModel(), store,
                        sched::Topology::synthetic(4, 2), cfg),
                 std::invalid_argument);

    cfg.instances = 2;
    Router router(smallModel(), store,
                  sched::Topology::synthetic(4, 2), cfg);
    EXPECT_THROW(router.serve(dense, {}, {0.0}),
                 std::invalid_argument);

    // More injectors than instances: the extras could never fire, so
    // the config is almost certainly a mistake. (Injectors are NOT
    // owned by the router; these outlive it on the stack.)
    const FaultInjector a{FaultConfig{}}, b{FaultConfig{}},
        c{FaultConfig{}};
    EXPECT_THROW(Router(smallModel(), store,
                        sched::Topology::synthetic(4, 2), cfg,
                        {&a, &b, &c}),
                 std::invalid_argument);
    EXPECT_NO_THROW(Router(smallModel(), store,
                           sched::Topology::synthetic(4, 2), cfg,
                           {&a, &b}));
    EXPECT_NO_THROW(Router(smallModel(), store,
                           sched::Topology::synthetic(4, 2), cfg,
                           {&a})); // shorter is fine: no faults on 1

    // Store-mutating features demand the mutable-store constructor.
    FaultConfig flip;
    flip.bitFlipRate = 0.5;
    const FaultInjector flipper(flip);
    EXPECT_THROW(Router(smallModel(), store,
                        sched::Topology::synthetic(4, 2), cfg,
                        {&flipper}),
                 std::invalid_argument);
    RouterConfig repair = cfg;
    repair.integrity.enabled = true;
    repair.integrity.repair = true;
    EXPECT_THROW(Router(smallModel(), store,
                        sched::Topology::synthetic(4, 2), repair),
                 std::invalid_argument);
    auto mut = core::EmbeddingStore::createMutable(smallModel(), 11);
    EXPECT_NO_THROW(Router(smallModel(), mut,
                           sched::Topology::synthetic(4, 2), repair,
                           {&flipper}));
}

} // namespace
