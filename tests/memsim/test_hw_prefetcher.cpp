/**
 * @file
 * Tests for the hardware prefetcher models.
 */

#include <gtest/gtest.h>

#include <vector>

#include "memsim/hw_prefetcher.hpp"

namespace
{

using namespace dlrmopt::memsim;

TEST(NextLine, PrefetchesNextLineOnMiss)
{
    NextLinePrefetcher pf;
    std::vector<std::uint64_t> out;
    pf.observe(0x1000, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1000u + 64u);
    EXPECT_EQ(pf.issued(), 1u);
}

TEST(NextLine, SilentOnHit)
{
    NextLinePrefetcher pf;
    std::vector<std::uint64_t> out;
    pf.observe(0x1000, false, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.issued(), 0u);
}

TEST(NextLine, DegreeControlsFanout)
{
    NextLinePrefetcher pf(64, 3);
    std::vector<std::uint64_t> out;
    pf.observe(0, true, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 64u);
    EXPECT_EQ(out[1], 128u);
    EXPECT_EQ(out[2], 192u);
}

TEST(NextLine, AppendsWithoutClearing)
{
    NextLinePrefetcher pf;
    std::vector<std::uint64_t> out = {7};
    pf.observe(0x80, true, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 7u);
}

TEST(Stride, DetectsConstantStrideAfterTraining)
{
    StridePrefetcher pf(64, 16, 1);
    std::vector<std::uint64_t> out;
    // Stride of 2 lines within one 4 KiB region.
    pf.observe(0 * 64, true, out);   // first touch
    pf.observe(2 * 64, true, out);   // stride learned (conf 1)
    EXPECT_TRUE(out.empty());
    pf.observe(4 * 64, true, out);   // confirmed (conf 2) -> prefetch
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 6u * 64u);
}

TEST(Stride, RandomPatternStaysQuiet)
{
    StridePrefetcher pf;
    std::vector<std::uint64_t> out;
    // Pseudo-random line addresses (different regions and strides).
    const std::uint64_t addrs[] = {0x10000, 0x83240, 0x2FC0, 0x55000,
                                   0x91180, 0x3C40, 0x77700, 0x1240};
    for (std::uint64_t a : addrs)
        pf.observe(a, true, out);
    // Irregular accesses must produce (nearly) no prefetches — the
    // paper's argument for why HW prefetching can't cover embedding
    // lookups (Sec. 4.1).
    EXPECT_LE(out.size(), 1u);
}

TEST(Stride, StrideChangeResetsConfidence)
{
    StridePrefetcher pf(64, 16, 1);
    std::vector<std::uint64_t> out;
    pf.observe(0 * 64, true, out);
    pf.observe(1 * 64, true, out);
    pf.observe(2 * 64, true, out); // stride 1 confirmed
    const std::size_t after_train = out.size();
    EXPECT_GE(after_train, 1u);
    out.clear();
    pf.observe(10 * 64, true, out); // stride jumps to 8
    EXPECT_TRUE(out.empty());       // confidence reset
}

TEST(Stride, ZeroStrideNeverPrefetches)
{
    StridePrefetcher pf(64, 16, 2);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 5; ++i)
        pf.observe(0x4000, true, out);
    EXPECT_TRUE(out.empty());
}

} // namespace
