/**
 * @file
 * Tests for multi-socket hierarchies: per-socket LLCs are isolated,
 * core-to-socket striping is contiguous, and single-socket behaviour
 * is unchanged.
 */

#include <gtest/gtest.h>

#include "memsim/hierarchy.hpp"
#include "platform/cpu_config.hpp"

namespace
{

using namespace dlrmopt::memsim;

HierarchyConfig
twoSocket()
{
    HierarchyConfig h;
    h.l1 = {1024, 2, 64};
    h.l2 = {4096, 4, 64};
    h.l3 = {16 * 1024, 8, 64};
    h.cores = 4;
    h.sockets = 2;
    return h;
}

TEST(Sockets, RejectsBadSocketCounts)
{
    HierarchyConfig h = twoSocket();
    h.sockets = 0;
    EXPECT_THROW(CacheHierarchy a(h), std::invalid_argument);
    h.sockets = 8; // more sockets than cores
    EXPECT_THROW(CacheHierarchy b(h), std::invalid_argument);
}

TEST(Sockets, CoresStripeContiguously)
{
    CacheHierarchy h(twoSocket());
    EXPECT_EQ(h.socketOf(0), 0u);
    EXPECT_EQ(h.socketOf(1), 0u);
    EXPECT_EQ(h.socketOf(2), 1u);
    EXPECT_EQ(h.socketOf(3), 1u);
}

TEST(Sockets, LlcIsSharedWithinSocketOnly)
{
    CacheHierarchy h(twoSocket());
    h.access(0, 0x5000); // core 0, socket 0: fills socket-0 LLC

    // Core 1 (same socket): constructive sharing via the LLC.
    EXPECT_EQ(h.access(1, 0x5000).level, HitLevel::L3);
    // Core 2 (other socket): its LLC is cold — DRAM again.
    EXPECT_EQ(h.access(2, 0x5000).level, HitLevel::Dram);
    // And now core 3 hits socket 1's LLC.
    EXPECT_EQ(h.access(3, 0x5000).level, HitLevel::L3);
}

TEST(Sockets, PrefetchFillsOwnSocketLlc)
{
    CacheHierarchy h(twoSocket());
    h.prefetch(2, 0x900, false, false, pfflag::sw); // socket 1 LLC
    EXPECT_EQ(h.access(3, 0x900).level, HitLevel::L3);
    EXPECT_EQ(h.access(0, 0x900).level, HitLevel::Dram);
}

TEST(Sockets, SingleSocketMatchesLegacyBehaviour)
{
    HierarchyConfig one = twoSocket();
    one.sockets = 1;
    CacheHierarchy h(one);
    h.access(0, 0x100);
    EXPECT_EQ(h.access(3, 0x100).level, HitLevel::L3);
}

TEST(Sockets, CpuConfigActiveSockets)
{
    using dlrmopt::platform::cascadeLake;
    const auto cpu = cascadeLake(); // 24 cores/socket, 2 sockets
    EXPECT_EQ(cpu.totalCores(), 48u);
    EXPECT_EQ(cpu.activeSockets(1), 1u);
    EXPECT_EQ(cpu.activeSockets(24), 1u);
    EXPECT_EQ(cpu.activeSockets(25), 2u);
    EXPECT_EQ(cpu.activeSockets(48), 2u);
    EXPECT_EQ(cpu.activeSockets(100), 2u); // clamped to the machine
}

TEST(Sockets, PaperPlatformTotals)
{
    using namespace dlrmopt::platform;
    // Sec. 6.4's core counts: SKL 24, CSL 48, ICL 32, SPR 56,
    // Zen3 128.
    EXPECT_EQ(skylake().totalCores(), 24u);
    EXPECT_EQ(cascadeLake().totalCores(), 48u);
    EXPECT_EQ(icelake().totalCores(), 32u);
    EXPECT_EQ(sapphireRapids().totalCores(), 56u);
    EXPECT_EQ(zen3().totalCores(), 128u);
}

} // namespace
