/**
 * @file
 * Tests for the Fig. 6 reuse model pipeline.
 */

#include <gtest/gtest.h>

#include "memsim/reuse_model.hpp"

namespace
{

using namespace dlrmopt::memsim;
using namespace dlrmopt::traces;

ReuseModelConfig
smallModel(Hotness h, std::size_t cores)
{
    ReuseModelConfig c;
    c.trace.rows = 100'000;
    c.trace.tables = 4;
    c.trace.lookups = 16;
    c.trace.batchSize = 16;
    c.trace.numBatches = 16;
    c.trace.hotness = h;
    c.dim = 128;
    c.cores = cores;
    c.numBatches = 8;
    return c;
}

TEST(ReuseModel, DefaultsToCslCacheLevels)
{
    const auto r = runReuseModel(smallModel(Hotness::Medium, 1));
    ASSERT_EQ(r.capacityVectors.size(), 3u);
    ASSERT_EQ(r.hitRates.size(), 3u);
    // 32 KiB / 512 B = 64 vectors in L1D (the paper's example).
    EXPECT_EQ(r.capacityVectors[0], 64u);
    EXPECT_EQ(r.capacityVectors[1], 2048u);   // 1 MiB L2
    EXPECT_EQ(r.capacityVectors[2], 73'216u); // 35.75 MB LLC
}

TEST(ReuseModel, HitRatesMonotoneAcrossLevels)
{
    const auto r = runReuseModel(smallModel(Hotness::Medium, 2));
    EXPECT_LE(r.hitRates[0], r.hitRates[1]);
    EXPECT_LE(r.hitRates[1], r.hitRates[2]);
    for (double h : r.hitRates) {
        EXPECT_GE(h, 0.0);
        EXPECT_LE(h, 1.0);
    }
}

TEST(ReuseModel, ColdFractionTracksHotness)
{
    // Low hot = many unique rows = more cold misses (key takeaway 4).
    const auto low = runReuseModel(smallModel(Hotness::Low, 1));
    const auto high = runReuseModel(smallModel(Hotness::High, 1));
    EXPECT_GT(low.coldFraction(), high.coldFraction());
    EXPECT_GT(low.distinctRows, high.distinctRows);
}

TEST(ReuseModel, TotalAccessesMatchTraceVolume)
{
    const auto cfg = smallModel(Hotness::Medium, 2);
    const auto r = runReuseModel(cfg);
    EXPECT_EQ(r.hist.totalAccesses,
              cfg.numBatches * cfg.trace.tables * cfg.trace.batchSize *
                  cfg.trace.lookups);
}

TEST(ReuseModel, OneItemHasPerfectReuse)
{
    const auto r = runReuseModel(smallModel(Hotness::OneItem, 1));
    // One row per table: exactly tables cold accesses.
    EXPECT_EQ(r.distinctRows, 4u);
    // Everything else hits even in L1-sized capacity... per table the
    // reuse distance within a table pass is 0, but switching tables
    // costs at most tables-1 distinct rows, far below 64 vectors.
    EXPECT_GT(r.hitRates[0], 0.99);
}

TEST(ReuseModel, CustomCapacities)
{
    auto cfg = smallModel(Hotness::Medium, 1);
    cfg.cacheBytes = {512, 512 * 1024};
    const auto r = runReuseModel(cfg);
    ASSERT_EQ(r.capacityVectors.size(), 2u);
    EXPECT_EQ(r.capacityVectors[0], 1u); // 512 B / 512 B per vector
}

TEST(ReuseModel, CoreInterleavingPreservesWorkload)
{
    // Interleaving the same batches across more cores changes reuse
    // distances (constructive/destructive sharing) but never the
    // total access volume or the distinct-row footprint.
    const auto one = runReuseModel(smallModel(Hotness::Medium, 1));
    const auto eight = runReuseModel(smallModel(Hotness::Medium, 8));
    EXPECT_EQ(eight.hist.totalAccesses, one.hist.totalAccesses);
    EXPECT_EQ(eight.distinctRows, one.distinctRows);
    // Cold misses are first touches: interleaving-invariant too.
    EXPECT_EQ(eight.hist.coldAccesses, one.hist.coldAccesses);
}

} // namespace
