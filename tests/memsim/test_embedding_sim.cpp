/**
 * @file
 * Tests for the embedding-stage contents simulator: conservation
 * laws, prefetch accounting, and the qualitative behaviours the
 * paper's evaluation depends on.
 */

#include <gtest/gtest.h>

#include "memsim/embedding_sim.hpp"

namespace
{

using namespace dlrmopt::memsim;
using namespace dlrmopt::traces;
using dlrmopt::core::PrefetchSpec;

EmbSimConfig
smallSim(Hotness h, std::size_t cores = 1)
{
    EmbSimConfig c;
    c.trace.rows = 200'000;
    c.trace.tables = 4;
    c.trace.lookups = 16;
    c.trace.batchSize = 16;
    c.trace.numBatches = 16;
    // Small draw volumes need a small hot set, or the unique-target
    // calibration degenerates (hot set alone exceeds the target) and
    // all hotness classes collapse to the same mixture.
    c.trace.hotSetSize = 64;
    c.trace.hotness = h;
    c.dim = 128;
    c.hier.l1 = {32 * 1024, 8, 64};
    c.hier.l2 = {256 * 1024, 8, 64};
    c.hier.l3 = {2 * 1024 * 1024, 8, 64};
    c.hier.cores = cores;
    c.numBatches = cores * 2;
    return c;
}

TEST(EmbeddingSim, CountsAreConserved)
{
    auto cfg = smallSim(Hotness::Medium, 2);
    const auto st = EmbeddingSim(cfg).run();

    const auto expected_lookups = cfg.numBatches * cfg.trace.tables *
                                  cfg.trace.batchSize *
                                  cfg.trace.lookups;
    EXPECT_EQ(st.lookups, expected_lookups);
    EXPECT_EQ(st.lines, st.lookups * cfg.rowLines());
    EXPECT_EQ(st.lineL1 + st.lineL2 + st.lineL3 + st.lineDram,
              st.lines);
    EXPECT_EQ(st.cls.total(), st.lookups);
    EXPECT_EQ(st.dramDemandFills, st.lineDram);
    // Covered lines are a subset of L1 hits.
    EXPECT_LE(st.swCoveredTotal() + st.hwCoveredTotal(), st.lineL1);
}

TEST(EmbeddingSim, RowLinesFollowDim)
{
    EmbSimConfig c;
    c.dim = 128;
    EXPECT_EQ(c.rowLines(), 8u);
    c.dim = 64;
    EXPECT_EQ(c.rowLines(), 4u);
    c.dim = 17; // partial line rounds up
    EXPECT_EQ(c.rowLines(), 2u);
}

TEST(EmbeddingSim, DeterministicAcrossRuns)
{
    auto cfg = smallSim(Hotness::Low, 2);
    const auto a = EmbeddingSim(cfg).run();
    const auto b = EmbeddingSim(cfg).run();
    EXPECT_EQ(a.lineL1, b.lineL1);
    EXPECT_EQ(a.lineDram, b.lineDram);
    EXPECT_EQ(a.cls.dram, b.cls.dram);
    EXPECT_EQ(a.swPfIssued, b.swPfIssued);
}

TEST(EmbeddingSim, SwPrefetchIssueAccounting)
{
    auto cfg = smallSim(Hotness::Medium);
    cfg.swPf = PrefetchSpec{4, 8, 3};
    const auto st = EmbeddingSim(cfg).run();

    // One prefetch (8 lines) per lookup, minus the last `distance`
    // lookups of every (table, batch) segment.
    const auto segments = cfg.numBatches * cfg.trace.tables;
    const auto per_segment = cfg.trace.batchSize * cfg.trace.lookups;
    const auto expected =
        segments * (per_segment - 4) * cfg.rowLines();
    EXPECT_EQ(st.swPfIssued, expected);
    EXPECT_GT(st.swCoveredTotal(), 0u);
}

TEST(EmbeddingSim, SwPrefetchRaisesL1HitRate)
{
    auto base_cfg = smallSim(Hotness::Low);
    const auto base = EmbeddingSim(base_cfg).run();

    auto pf_cfg = base_cfg;
    pf_cfg.swPf = PrefetchSpec{4, 8, 3};
    const auto pf = EmbeddingSim(pf_cfg).run();

    // Fig. 15: SW-PF lifts the L1D hit rate dramatically.
    EXPECT_GT(pf.l1HitRate(), base.l1HitRate() + 0.2);
    EXPECT_GT(pf.vtuneL1HitRate(), 0.95);
    // And converts demand DRAM fills into prefetch DRAM fills.
    EXPECT_LT(pf.cls.dram, base.cls.dram / 10 + 10);
}

TEST(EmbeddingSim, VtuneHitRateAveragesInAccumulatorLoads)
{
    const auto st = EmbeddingSim(smallSim(Hotness::Low)).run();
    EXPECT_NEAR(st.vtuneL1HitRate(), 0.5 + st.l1HitRate() / 2.0,
                1e-12);
}

TEST(EmbeddingSim, PrefetchAmountSweepIsMonotone)
{
    // Fig. 10c: more prefetched lines => higher L1 hit rate.
    double prev = -1.0;
    for (int lines : {1, 2, 4, 8}) {
        auto cfg = smallSim(Hotness::Low);
        cfg.swPf = PrefetchSpec{4, lines, 3};
        const auto st = EmbeddingSim(cfg).run();
        EXPECT_GT(st.l1HitRate(), prev) << lines;
        prev = st.l1HitRate();
    }
}

TEST(EmbeddingSim, LocalityHintControlsFillLevel)
{
    // T2 (LLC-only) prefetching must produce L3 hits, not L1 hits.
    auto t0 = smallSim(Hotness::Low);
    t0.swPf = PrefetchSpec{4, 8, 3};
    auto t2 = smallSim(Hotness::Low);
    t2.swPf = PrefetchSpec{4, 8, 1};
    const auto st0 = EmbeddingSim(t0).run();
    const auto st2 = EmbeddingSim(t2).run();
    EXPECT_GT(st0.l1HitRate(), st2.l1HitRate());
    EXPECT_GT(st2.l3HitRate(), 0.5); // prefetched rows land in LLC
    EXPECT_LT(st2.cls.dram, st2.lookups / 10);
}

TEST(EmbeddingSim, HotnessOrdersMissRates)
{
    const auto high = EmbeddingSim(smallSim(Hotness::High)).run();
    const auto med = EmbeddingSim(smallSim(Hotness::Medium)).run();
    const auto low = EmbeddingSim(smallSim(Hotness::Low)).run();
    EXPECT_GT(high.l1HitRate(), med.l1HitRate());
    EXPECT_GT(med.l1HitRate(), low.l1HitRate());
    EXPECT_LT(high.dramBytes(), med.dramBytes());
    EXPECT_LT(med.dramBytes(), low.dramBytes());
}

TEST(EmbeddingSim, OneItemIsNearlyAllL1)
{
    const auto st = EmbeddingSim(smallSim(Hotness::OneItem)).run();
    // Fig. 4: the one-item input is the best case — hit rates are
    // maximized (only compulsory misses and table switches remain).
    EXPECT_GT(st.l1HitRate(), 0.99);
    EXPECT_LT(st.dramBytes(), 16.0 * 1024);
}

TEST(EmbeddingSim, HwPrefetchCoversRowInteriors)
{
    auto on = smallSim(Hotness::Low);
    auto off = smallSim(Hotness::Low);
    off.hwPrefetch = false;
    const auto st_on = EmbeddingSim(on).run();
    const auto st_off = EmbeddingSim(off).run();
    EXPECT_GT(st_on.hwPfIssued, 0u);
    EXPECT_EQ(st_off.hwPfIssued, 0u);
    // Next-line prefetching converts interior-line misses into
    // covered L1 hits.
    EXPECT_GT(st_on.l1HitRate(), st_off.l1HitRate());
    EXPECT_GT(st_on.hwCoveredTotal(), 0u);
}

TEST(EmbeddingSim, MultiCoreSharesLlcConstructively)
{
    // Same batch count on 1 vs 4 cores, one-item input: cores share
    // the same hot rows, so the LLC turns other cores' cold misses
    // into hits (constructive sharing, Sec. 3.1.2).
    auto c1 = smallSim(Hotness::OneItem, 1);
    c1.numBatches = 8;
    auto c4 = smallSim(Hotness::OneItem, 4);
    c4.numBatches = 8;
    const auto s1 = EmbeddingSim(c1).run();
    const auto s4 = EmbeddingSim(c4).run();
    // Cold DRAM fills should not scale with cores.
    EXPECT_LE(s4.dramDemandFills, s1.dramDemandFills + 64);
}

TEST(EmbeddingSim, MultiCoreLowHotThrashesLlc)
{
    // Destructive sharing: with low-hot traces, more cores touching
    // disjoint rows inflate total DRAM traffic per lookup.
    auto c1 = smallSim(Hotness::Low, 1);
    c1.numBatches = 8;
    auto c8 = smallSim(Hotness::Low, 8);
    c8.numBatches = 8;
    const auto s1 = EmbeddingSim(c1).run();
    const auto s8 = EmbeddingSim(c8).run();
    EXPECT_GE(s8.dramBytes() * 1.05, s1.dramBytes());
}

} // namespace
