/**
 * @file
 * Property-based tests for the cache model.
 *
 * The strongest check cross-validates two independent components: a
 * fully-associative LRU cache's hit count on any trace must equal
 * the number of accesses whose exact stack distance (from the
 * reuse-distance analyzer) is below the cache's capacity — the very
 * relationship the paper's Fig. 6 model relies on.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/types.hpp"
#include "memsim/cache.hpp"
#include "memsim/reuse.hpp"

namespace
{

using namespace dlrmopt::memsim;

/** Deterministic pseudo-random line-address trace. */
std::vector<std::uint64_t>
makeTrace(std::size_t n, std::uint64_t space, std::uint64_t seed)
{
    std::vector<std::uint64_t> t;
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        t.push_back((dlrmopt::mix64(seed + i) % space) * 64);
    return t;
}

class FullyAssocVsStackDistance
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t /*lines*/, std::uint64_t /*space*/,
                     std::uint64_t /*seed*/>>
{
};

TEST_P(FullyAssocVsStackDistance, HitsMatchExactly)
{
    const auto [lines, space, seed] = GetParam();
    const auto trace = makeTrace(4000, space, seed);

    // Fully associative: one set, assoc == capacity in lines.
    Cache cache(CacheConfig{static_cast<std::uint64_t>(lines) * 64,
                            lines, 64});
    std::uint64_t cache_hits = 0;
    for (auto addr : trace)
        cache_hits += cache.accessFill(addr).hit;

    ReuseDistanceAnalyzer an(trace.size());
    std::uint64_t predicted_hits = 0;
    for (auto addr : trace) {
        const std::int64_t d = an.access(addr / 64);
        predicted_hits += d >= 0 && d < static_cast<std::int64_t>(lines);
    }

    EXPECT_EQ(cache_hits, predicted_hits);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FullyAssocVsStackDistance,
    ::testing::Combine(::testing::Values(4u, 16u, 64u, 256u),
                       ::testing::Values(32ull, 200ull, 5000ull),
                       ::testing::Values(1ull, 99ull)));

/** Associativity sweep: more ways at equal capacity never lose to
 *  fewer ways on a uniformly random trace (conflict misses only
 *  shrink), within noise. */
class AssociativitySweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(AssociativitySweep, ValidBehaviourAtAnyGeometry)
{
    const std::uint32_t assoc = GetParam();
    Cache c(CacheConfig{64 * 1024, assoc, 64});
    const auto trace = makeTrace(20'000, 1500, 7);
    std::uint64_t hits = 0;
    for (auto addr : trace)
        hits += c.accessFill(addr).hit;
    EXPECT_EQ(c.accesses(), trace.size());
    EXPECT_EQ(c.hits(), hits);
    EXPECT_LE(c.hits(), c.accesses());
    // Every line that was just accessed must be resident.
    EXPECT_TRUE(c.contains(trace.back()));
}

INSTANTIATE_TEST_SUITE_P(Ways, AssociativitySweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(CacheProperties, HigherAssociativityHelpsConflictHeavyTraces)
{
    // Pathological same-set trace: k lines that all collide in a
    // direct-mapped cache but fit in a k-way one.
    const std::uint32_t k = 8;
    CacheConfig direct{64ull * 64, 1, 64};   // 64 sets, 1 way
    CacheConfig assoc{64ull * 64, k, 64};    // 8 sets, 8 ways... same size
    Cache dm(direct), sa(assoc);

    std::uint64_t dm_hits = 0, sa_hits = 0;
    for (int round = 0; round < 50; ++round) {
        for (std::uint32_t i = 0; i < k; ++i) {
            // Stride of 64 sets' worth of bytes: always set 0 in the
            // direct-mapped cache.
            const std::uint64_t addr =
                static_cast<std::uint64_t>(i) * 64 * 64;
            dm_hits += dm.accessFill(addr).hit;
            sa_hits += sa.accessFill(addr).hit;
        }
    }
    EXPECT_EQ(dm_hits, 0u);    // perpetual conflict thrash
    EXPECT_GT(sa_hits, 300u);  // fits once warm
}

TEST(CacheProperties, LookupInsertAgreesWithAccessFill)
{
    // The fused accessFill must behave exactly like lookup followed
    // by insert-on-miss.
    const auto trace = makeTrace(5000, 700, 3);
    Cache fused(CacheConfig{16 * 1024, 4, 64});
    Cache split(CacheConfig{16 * 1024, 4, 64});
    for (auto addr : trace) {
        const auto a = fused.accessFill(addr);
        const auto b = split.lookup(addr);
        if (!b.hit)
            split.insert(addr);
        EXPECT_EQ(a.hit, b.hit);
    }
    EXPECT_EQ(fused.hits(), split.hits());
    EXPECT_EQ(fused.evictions(), split.evictions());
}

TEST(CacheProperties, InsertProbeAgreesWithContainsInsert)
{
    const auto trace = makeTrace(3000, 500, 5);
    Cache fused(CacheConfig{8 * 1024, 4, 64});
    Cache split(CacheConfig{8 * 1024, 4, 64});
    for (auto addr : trace) {
        const bool was_present = fused.insertProbe(addr, 1);
        const bool expect_present = split.contains(addr);
        split.insert(addr, 1);
        EXPECT_EQ(was_present, expect_present);
    }
}

TEST(CacheProperties, TickRenormalizationPreservesLru)
{
    // Drive enough touches to trigger at least one 24-bit tick
    // renormalization and verify LRU still evicts oldest-first.
    Cache c(CacheConfig{2 * 64, 2, 64}); // 1 set, 2 ways
    // ~17M touches: renormalization happens at 2^24 - 1.
    for (std::uint64_t i = 0; i < (1ull << 24) + 10; ++i)
        c.accessFill((i & 1) * 64);
    // Lines 0 and 1 resident; 0 touched less recently than 1 when i
    // ends even... make it deterministic:
    c.accessFill(0 * 64);
    c.accessFill(1 * 64);
    c.accessFill(0 * 64); // order now: 1 is LRU
    c.insert(2 * 64);
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(1 * 64));
}

} // namespace
