/**
 * @file
 * Tests for the stack-distance analyzer, validated against a
 * brute-force reference.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/types.hpp"
#include "memsim/reuse.hpp"

namespace
{

using namespace dlrmopt::memsim;

/** O(n^2) reference: distinct elements between consecutive uses. */
std::vector<std::int64_t>
bruteForceDistances(const std::vector<std::uint64_t>& trace)
{
    std::vector<std::int64_t> out;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        std::int64_t dist = -1;
        for (std::size_t j = i; j-- > 0;) {
            if (trace[j] == trace[i]) {
                std::set<std::uint64_t> between(trace.begin() + j + 1,
                                                trace.begin() + i);
                dist = static_cast<std::int64_t>(between.size());
                break;
            }
        }
        out.push_back(dist);
    }
    return out;
}

TEST(ReuseDistance, HandComputedSequence)
{
    // a b c a  -> a cold, b cold, c cold, a distance 2 (b, c).
    const auto d = computeStackDistances({1, 2, 3, 1});
    ASSERT_EQ(d.size(), 4u);
    EXPECT_EQ(d[0], -1);
    EXPECT_EQ(d[1], -1);
    EXPECT_EQ(d[2], -1);
    EXPECT_EQ(d[3], 2);
}

TEST(ReuseDistance, ImmediateReuseIsZero)
{
    const auto d = computeStackDistances({5, 5, 5});
    EXPECT_EQ(d[1], 0);
    EXPECT_EQ(d[2], 0);
}

TEST(ReuseDistance, RepeatedElementsDontInflateDistance)
{
    // a b b b a: distance of final a is 1 (only b in between).
    const auto d = computeStackDistances({1, 2, 2, 2, 1});
    EXPECT_EQ(d[4], 1);
}

TEST(ReuseDistance, MatchesBruteForceOnRandomTraces)
{
    std::vector<std::uint64_t> trace;
    for (std::size_t i = 0; i < 500; ++i)
        trace.push_back(dlrmopt::mix64(i) % 40);
    EXPECT_EQ(computeStackDistances(trace), bruteForceDistances(trace));
}

TEST(ReuseDistance, MatchesBruteForceOnSkewedTraces)
{
    // Zipf-ish skew: most accesses to a few keys.
    std::vector<std::uint64_t> trace;
    for (std::size_t i = 0; i < 400; ++i) {
        const std::uint64_t r = dlrmopt::mix64(i * 7 + 1);
        trace.push_back(r % 4 == 0 ? r % 100 : r % 5);
    }
    EXPECT_EQ(computeStackDistances(trace), bruteForceDistances(trace));
}

TEST(ReuseDistance, GrowsPastCapacityHint)
{
    // Force internal Fenwick/map growth: hint 16, trace 10'000.
    ReuseDistanceAnalyzer a(16);
    std::vector<std::uint64_t> trace;
    for (std::size_t i = 0; i < 10'000; ++i)
        trace.push_back(dlrmopt::mix64(i) % 128);
    std::vector<std::int64_t> got;
    for (auto k : trace)
        got.push_back(a.access(k));
    EXPECT_EQ(got, bruteForceDistances(trace));
    EXPECT_EQ(a.distinctKeys(), 128u);
}

TEST(ReuseHistogram, BinningAndCounts)
{
    // Distances: -1, -1, -1, 2 from {1,2,3,1}.
    const auto h = computeReuseHistogram({1, 2, 3, 1});
    EXPECT_EQ(h.totalAccesses, 4u);
    EXPECT_EQ(h.coldAccesses, 3u);
    EXPECT_DOUBLE_EQ(h.coldFraction(), 0.75);
    // Distance 2 lands in bin 1 ([2, 4)).
    ASSERT_GE(h.bins.size(), 2u);
    EXPECT_EQ(h.bins[1], 1u);
}

TEST(ReuseHistogram, HitRateAtCapacity)
{
    // Trace with distances 0, 0 (plus 1 cold access). Bin 0 spans
    // [0, 2); capacity 1 counts half of it pro rata, capacity >= 2
    // counts it fully.
    const auto h = computeReuseHistogram({9, 9, 9});
    EXPECT_DOUBLE_EQ(h.hitRateAtCapacity(0), 0.0);
    EXPECT_NEAR(h.hitRateAtCapacity(1), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(h.hitRateAtCapacity(2), 2.0 / 3.0, 1e-9);
}

TEST(ReuseHistogram, HitRateMonotoneInCapacity)
{
    std::vector<std::uint64_t> trace;
    for (std::size_t i = 0; i < 5'000; ++i)
        trace.push_back(dlrmopt::mix64(i) % 512);
    const auto h = computeReuseHistogram(trace);
    double prev = -1.0;
    for (std::uint64_t cap : {0u, 8u, 64u, 256u, 1024u, 4096u}) {
        const double r = h.hitRateAtCapacity(cap);
        EXPECT_GE(r, prev);
        prev = r;
    }
    // Infinite capacity captures everything but cold misses.
    EXPECT_NEAR(h.hitRateAtCapacity(1u << 30), 1.0 - h.coldFraction(),
                1e-9);
}

TEST(ReuseHistogram, MergeAddsCounts)
{
    auto a = computeReuseHistogram({1, 1});
    const auto b = computeReuseHistogram({2, 3, 2});
    a.merge(b);
    EXPECT_EQ(a.totalAccesses, 5u);
    EXPECT_EQ(a.coldAccesses, 3u);
}

TEST(ReuseDistance, CyclicScanHasDistanceEqualToSetSize)
{
    // Scanning 1..k cyclically gives every non-cold access distance
    // k-1 — the classic LRU-worst-case pattern.
    const std::size_t k = 33;
    std::vector<std::uint64_t> trace;
    for (int pass = 0; pass < 3; ++pass) {
        for (std::size_t i = 0; i < k; ++i)
            trace.push_back(i);
    }
    const auto d = computeStackDistances(trace);
    for (std::size_t i = k; i < trace.size(); ++i)
        EXPECT_EQ(d[i], static_cast<std::int64_t>(k - 1)) << i;

    // Consequence: a cache of capacity k-1 gets zero hits; capacity k
    // captures every reuse. (The paper's Fig. 7 insight that caches
    // below the working set are "woefully inadequate".)
    const auto h = computeReuseHistogram(trace);
    EXPECT_DOUBLE_EQ(h.hitRateAtCapacity(k - 33 + 32), 0.0);
    EXPECT_NEAR(h.hitRateAtCapacity(64), 1.0 - h.coldFraction(), 0.02);
}

} // namespace
