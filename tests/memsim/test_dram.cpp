/**
 * @file
 * Tests for the DRAM latency/bandwidth model.
 */

#include <gtest/gtest.h>

#include "memsim/dram.hpp"

namespace
{

using namespace dlrmopt::memsim;

TEST(Dram, UnloadedLatencyIsBase)
{
    DramModel d(DramConfig{200.0, 140.0, 2.4, 4.0});
    EXPECT_DOUBLE_EQ(d.latencyAt(0.0), 200.0);
}

TEST(Dram, LatencyMonotoneInUtilization)
{
    DramModel d(DramConfig{200.0, 140.0, 2.4, 4.0});
    double prev = 0.0;
    for (double rho : {0.0, 0.2, 0.5, 0.8, 0.95, 0.99}) {
        const double l = d.latencyAt(rho);
        EXPECT_GE(l, prev);
        prev = l;
    }
}

TEST(Dram, LatencyCappedAtQueueCap)
{
    DramModel d(DramConfig{100.0, 140.0, 2.4, 3.0});
    EXPECT_LE(d.latencyAt(0.999), 300.0 + 1e-9);
    EXPECT_LE(d.latencyAt(2.0), 300.0 + 1e-9); // clamped input
}

TEST(Dram, PeakBytesPerCycle)
{
    DramConfig c{200.0, 144.0, 2.4, 4.0};
    EXPECT_DOUBLE_EQ(c.peakBytesPerCycle(), 60.0);
}

TEST(Dram, UtilizationComputation)
{
    DramModel d(DramConfig{200.0, 144.0, 2.4, 4.0});
    // 60 bytes/cycle peak: moving 600 bytes in 20 cycles = 50%.
    EXPECT_DOUBLE_EQ(d.utilization(600.0, 20.0), 0.5);
    // Clamped to 1.
    EXPECT_DOUBLE_EQ(d.utilization(1e12, 1.0), 1.0);
    // Degenerate cycle count.
    EXPECT_DOUBLE_EQ(d.utilization(100.0, 0.0), 1.0);
}

TEST(Dram, AchievedBandwidth)
{
    DramModel d(DramConfig{200.0, 144.0, 2.4, 4.0});
    // 600 bytes over 20 cycles at 2.4 GHz = 30 bytes/cycle = 72 GB/s.
    EXPECT_DOUBLE_EQ(d.achievedGBs(600.0, 20.0), 72.0);
    EXPECT_DOUBLE_EQ(d.achievedGBs(100.0, 0.0), 0.0);
}

TEST(Dram, NegativeUtilizationClamped)
{
    DramModel d(DramConfig{200.0, 140.0, 2.4, 4.0});
    EXPECT_DOUBLE_EQ(d.latencyAt(-1.0), 200.0);
}

} // namespace
