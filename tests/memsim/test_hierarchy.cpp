/**
 * @file
 * Tests for the three-level multi-core cache hierarchy.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "memsim/hierarchy.hpp"

namespace
{

using namespace dlrmopt::memsim;

HierarchyConfig
tinyHierarchy(std::size_t cores)
{
    HierarchyConfig h;
    h.l1 = {1024, 2, 64};      // 16 lines
    h.l2 = {4096, 4, 64};      // 64 lines
    h.l3 = {16 * 1024, 8, 64}; // 256 lines
    h.cores = cores;
    return h;
}

TEST(Hierarchy, RejectsZeroCores)
{
    EXPECT_THROW(CacheHierarchy h(tinyHierarchy(0)),
                 std::invalid_argument);
}

TEST(Hierarchy, ColdAccessGoesToDramAndFillsAllLevels)
{
    CacheHierarchy h(tinyHierarchy(1));
    EXPECT_EQ(h.access(0, 0x1000).level, HitLevel::Dram);
    EXPECT_EQ(h.access(0, 0x1000).level, HitLevel::L1);
    EXPECT_EQ(h.stats().dramFills, 1u);
}

TEST(Hierarchy, EvictedFromL1HitsInL2)
{
    CacheHierarchy h(tinyHierarchy(1));
    h.access(0, 0); // fill line 0 everywhere
    // Thrash L1 (16 lines, 8 sets x 2 ways): lines with the same set
    // as line 0 are 0, 8, 16, ... Evict line 0 from L1 only.
    h.access(0, 8 * 64);
    h.access(0, 16 * 64);
    EXPECT_EQ(h.access(0, 0).level, HitLevel::L2);
}

TEST(Hierarchy, SecondCoreHitsSharedL3)
{
    CacheHierarchy h(tinyHierarchy(2));
    h.access(0, 0x2000);
    // Core 1's private L1/L2 are cold, but the LLC is shared — the
    // paper's constructive inter-core sharing (Sec. 3.1.2).
    EXPECT_EQ(h.access(1, 0x2000).level, HitLevel::L3);
    // And now core 1 has it in L1 too.
    EXPECT_EQ(h.access(1, 0x2000).level, HitLevel::L1);
}

TEST(Hierarchy, CoresHavePrivateL1L2)
{
    CacheHierarchy h(tinyHierarchy(2));
    h.access(0, 0x2000);
    EXPECT_TRUE(h.inL1(0, 0x2000));
    EXPECT_FALSE(h.inL1(1, 0x2000));
}

TEST(Hierarchy, StatsTrackPerLevelHits)
{
    CacheHierarchy h(tinyHierarchy(1));
    h.access(0, 0);       // dram
    h.access(0, 0);       // L1 hit
    h.access(0, 64);      // dram
    EXPECT_EQ(h.stats().accesses[0], 3u);
    EXPECT_EQ(h.stats().hits[0], 1u);
    EXPECT_EQ(h.stats().dramFills, 2u);
    EXPECT_DOUBLE_EQ(h.stats().hitRate(HitLevel::L1), 1.0 / 3.0);
    h.resetStats();
    EXPECT_EQ(h.stats().accesses[0], 0u);
}

TEST(Hierarchy, PrefetchFillsSelectedLevels)
{
    CacheHierarchy h(tinyHierarchy(1));

    // T0-style prefetch: fills L1 (and below).
    EXPECT_EQ(h.prefetch(0, 0x100, true, true, pfflag::sw),
              HitLevel::Dram);
    auto r = h.access(0, 0x100);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(pfflag::kindOf(r.flag), pfflag::sw);
    EXPECT_EQ(pfflag::srcOf(r.flag), HitLevel::Dram);

    // T2-style prefetch: LLC only.
    EXPECT_EQ(h.prefetch(0, 0x2100, false, false, pfflag::sw),
              HitLevel::Dram);
    r = h.access(0, 0x2100);
    EXPECT_EQ(r.level, HitLevel::L3);
    EXPECT_EQ(pfflag::kindOf(r.flag), pfflag::sw);
}

TEST(Hierarchy, PrefetchOfResidentL1LineIsUseless)
{
    CacheHierarchy h(tinyHierarchy(1));
    h.access(0, 0x300);
    EXPECT_EQ(h.prefetch(0, 0x300, true, true, pfflag::sw),
              HitLevel::L1);
    // No annotation: the demand hit is a plain L1 hit.
    EXPECT_EQ(h.access(0, 0x300).flag, 0);
}

TEST(Hierarchy, PrefetchSourceLevelReported)
{
    CacheHierarchy h(tinyHierarchy(1));
    h.access(0, 0); // everywhere
    // Evict from L1 (same-set lines), keeping it in L2.
    h.access(0, 8 * 64);
    h.access(0, 16 * 64);
    EXPECT_EQ(h.prefetch(0, 0, true, true, pfflag::sw), HitLevel::L2);
    auto r = h.access(0, 0);
    EXPECT_EQ(r.level, HitLevel::L1);
    EXPECT_EQ(pfflag::srcOf(r.flag), HitLevel::L2);
}

TEST(Hierarchy, FlagConsumedOnce)
{
    CacheHierarchy h(tinyHierarchy(1));
    h.prefetch(0, 0x400, true, true, pfflag::hw);
    EXPECT_NE(h.access(0, 0x400).flag, 0);
    EXPECT_EQ(h.access(0, 0x400).flag, 0);
}

TEST(PfFlag, EncodingRoundTrips)
{
    for (auto kind : {pfflag::sw, pfflag::hw}) {
        for (auto lvl : {HitLevel::L2, HitLevel::L3, HitLevel::Dram}) {
            const std::uint8_t f = pfflag::make(kind, lvl);
            EXPECT_NE(f, 0);
            EXPECT_EQ(pfflag::kindOf(f), kind);
            EXPECT_EQ(pfflag::srcOf(f), lvl);
        }
    }
}

} // namespace
