/**
 * @file
 * Unit tests for the set-associative LRU cache.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "memsim/cache.hpp"

namespace
{

using namespace dlrmopt::memsim;

TEST(CacheConfig, Geometry)
{
    CacheConfig c{32 * 1024, 8, 64};
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.numLines(), 512u);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(CacheConfig{64, 0, 64}), std::invalid_argument);
    EXPECT_THROW(Cache(CacheConfig{64, 8, 0}), std::invalid_argument);
    EXPECT_THROW(Cache(CacheConfig{64, 8, 48}), std::invalid_argument);
    EXPECT_THROW(Cache(CacheConfig{32, 8, 64}), std::invalid_argument);
}

TEST(Cache, MissThenHitAfterInsert)
{
    Cache c(CacheConfig{1024, 2, 64});
    EXPECT_FALSE(c.lookup(0x100).hit);
    EXPECT_FALSE(c.contains(0x100));
    c.insert(0x100);
    EXPECT_TRUE(c.contains(0x100));
    EXPECT_TRUE(c.lookup(0x100).hit);
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    Cache c(CacheConfig{1024, 2, 64});
    c.insert(0x100);
    EXPECT_TRUE(c.lookup(0x100 + 63).hit);
    EXPECT_FALSE(c.lookup(0x100 + 64).hit);
}

TEST(Cache, LruEvictionOrder)
{
    // Direct-mapped-per-set behaviour test: 2-way, 1 set.
    Cache c(CacheConfig{128, 2, 64});
    c.insert(0 * 64);
    c.insert(1 * 64);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.lookup(0 * 64).hit);
    const bool evicted = c.insert(2 * 64);
    EXPECT_TRUE(evicted);
    EXPECT_TRUE(c.contains(0 * 64));  // recently used: kept
    EXPECT_FALSE(c.contains(1 * 64)); // LRU: evicted
    EXPECT_TRUE(c.contains(2 * 64));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, InsertExistingRefreshesWithoutEviction)
{
    Cache c(CacheConfig{128, 2, 64});
    c.insert(0 * 64);
    c.insert(1 * 64);
    EXPECT_FALSE(c.insert(0 * 64)); // refresh, no eviction
    c.insert(2 * 64);               // should evict line 1 now
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(1 * 64));
}

TEST(Cache, SetIndexingSeparatesConflicts)
{
    // 2 sets, 1 way: even/odd lines map to different sets.
    Cache c(CacheConfig{128, 1, 64});
    c.insert(0 * 64);
    c.insert(1 * 64);
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_TRUE(c.contains(1 * 64));
    c.insert(2 * 64); // conflicts with line 0 (same set)
    EXPECT_FALSE(c.contains(0 * 64));
    EXPECT_TRUE(c.contains(1 * 64));
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    // 11-way 35.75 MB LLC-style geometry has a non-power-of-two set
    // count and is indexed by a multiply-shift hash. Smaller analog:
    // 3 sets x 2 ways. Placement is hashed, so capacity can only be
    // bounded, but insert-then-probe must always work and residency
    // never exceeds the line count.
    Cache c(CacheConfig{3 * 2 * 64, 2, 64});
    for (std::uint64_t l = 0; l < 32; ++l) {
        c.insert(l * 64);
        EXPECT_TRUE(c.contains(l * 64)) << l;
    }
    std::size_t present = 0;
    for (std::uint64_t l = 0; l < 32; ++l)
        present += c.contains(l * 64);
    EXPECT_LE(present, 6u);
    EXPECT_GE(present, 2u); // at least the last inserts survive

    // Uniformity at scale: a large non-pow2 cache retains close to
    // its full capacity under a sequential fill.
    Cache big(CacheConfig{53248 * 64, 4, 64}); // 13312 sets (non-pow2)
    for (std::uint64_t l = 0; l < 53248 / 2; ++l)
        big.insert(l * 64);
    std::size_t kept = 0;
    for (std::uint64_t l = 0; l < 53248 / 2; ++l)
        kept += big.contains(l * 64);
    EXPECT_GT(static_cast<double>(kept) / (53248 / 2), 0.9);
}

TEST(Cache, FlagConsumedOnLookup)
{
    Cache c(CacheConfig{1024, 2, 64});
    c.insert(0x40, 9);
    auto r = c.lookup(0x40);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.flag, 9);
    // Second lookup: flag was consumed.
    r = c.lookup(0x40);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.flag, 0);
}

TEST(Cache, InsertOverwritesFlag)
{
    Cache c(CacheConfig{1024, 2, 64});
    c.insert(0x40, 5);
    c.insert(0x40, 7);
    EXPECT_EQ(c.lookup(0x40).flag, 7);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(CacheConfig{1024, 2, 64});
    c.insert(0x40);
    c.invalidate(0x40);
    EXPECT_FALSE(c.contains(0x40));
    c.invalidate(0x9999999); // no-op on absent line
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache c(CacheConfig{1024, 2, 64});
    c.insert(0x40);
    c.lookup(0x40);
    c.reset();
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.evictions(), 0u);
}

TEST(Cache, HitRateComputation)
{
    Cache c(CacheConfig{1024, 2, 64});
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.0);
    c.insert(0x40);
    c.lookup(0x40); // hit
    c.lookup(0x80); // miss
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
}

/** Property: a working set that fits is fully retained under LRU. */
TEST(Cache, WorkingSetWithinCapacityNeverMisses)
{
    Cache c(CacheConfig{8 * 1024, 8, 64}); // 128 lines
    // Touch 64 lines repeatedly; after the first pass everything
    // fits, so passes 2..5 must be all hits.
    for (std::uint64_t l = 0; l < 64; ++l)
        c.insert(l * 64);
    const std::uint64_t before = c.misses();
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t l = 0; l < 64; ++l)
            EXPECT_TRUE(c.lookup(l * 64).hit);
    }
    EXPECT_EQ(c.misses(), before);
}

} // namespace
