/**
 * @file
 * Round-trip tests for the binary trace format.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "trace/generator.hpp"
#include "trace/io.hpp"

namespace
{

using namespace dlrmopt::traces;

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = (std::filesystem::temp_directory_path() /
                ("dlrmopt_trace_test_" +
                 std::to_string(::testing::UnitTest::GetInstance()
                                    ->random_seed()) +
                 "_" + ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()))
                   .string();
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(TraceIoTest, RoundTripPreservesEverything)
{
    TraceConfig c;
    c.rows = 10'000;
    c.tables = 3;
    c.lookups = 7;
    c.batchSize = 16;
    c.numBatches = 5;
    c.hotness = Hotness::Medium;
    TraceGenerator g(c);
    std::vector<dlrmopt::core::SparseBatch> batches;
    for (std::size_t b = 0; b < 5; ++b)
        batches.push_back(g.batch(b));

    saveTrace(path, batches);
    const auto loaded = loadTrace(path);

    ASSERT_EQ(loaded.size(), batches.size());
    for (std::size_t b = 0; b < batches.size(); ++b) {
        EXPECT_EQ(loaded[b].batchSize, batches[b].batchSize);
        ASSERT_EQ(loaded[b].numTables(), batches[b].numTables());
        for (std::size_t t = 0; t < batches[b].numTables(); ++t) {
            EXPECT_EQ(loaded[b].indices[t], batches[b].indices[t]);
            EXPECT_EQ(loaded[b].offsets[t], batches[b].offsets[t]);
        }
        EXPECT_TRUE(loaded[b].valid(c.rows));
    }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips)
{
    saveTrace(path, {});
    EXPECT_TRUE(loadTrace(path).empty());
}

TEST_F(TraceIoTest, MissingFileThrows)
{
    EXPECT_THROW(loadTrace(path + ".does_not_exist"),
                 std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicThrows)
{
    std::ofstream os(path, std::ios::binary);
    const char junk[] = "this is not a trace file at all";
    os.write(junk, sizeof(junk));
    os.close();
    EXPECT_THROW(loadTrace(path), std::runtime_error);
}

namespace craft
{

void
u64(std::ofstream& os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
vec(std::ofstream& os, const std::vector<dlrmopt::RowIndex>& v)
{
    u64(os, v.size());
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(
                 v.size() * sizeof(dlrmopt::RowIndex)));
}

constexpr std::uint64_t magic = 0x444c524d54524331ull;

} // namespace craft

TEST_F(TraceIoTest, NonMonotoneOffsetsThrow)
{
    std::ofstream os(path, std::ios::binary);
    craft::u64(os, craft::magic);
    craft::u64(os, 1); // one batch
    craft::u64(os, 2); // batch size
    craft::u64(os, 1); // one table
    craft::vec(os, {0, 5, 3}); // offsets go backwards
    craft::vec(os, {1, 2, 3});
    os.close();
    EXPECT_THROW(loadTrace(path), std::runtime_error);
}

TEST_F(TraceIoTest, OffsetsNotCoveringIndicesThrow)
{
    std::ofstream os(path, std::ios::binary);
    craft::u64(os, craft::magic);
    craft::u64(os, 1);
    craft::u64(os, 2);
    craft::u64(os, 1);
    craft::vec(os, {0, 1, 7}); // claims 7 lookups...
    craft::vec(os, {1, 2});    // ...but only 2 indices follow
    os.close();
    EXPECT_THROW(loadTrace(path), std::runtime_error);
}

TEST_F(TraceIoTest, WrongOffsetsLengthThrows)
{
    std::ofstream os(path, std::ios::binary);
    craft::u64(os, craft::magic);
    craft::u64(os, 1);
    craft::u64(os, 4); // batch size 4 wants 5 offsets
    craft::u64(os, 1);
    craft::vec(os, {0, 2});
    craft::vec(os, {1, 2});
    os.close();
    EXPECT_THROW(loadTrace(path), std::runtime_error);
}

TEST_F(TraceIoTest, NegativeIndexThrows)
{
    std::ofstream os(path, std::ios::binary);
    craft::u64(os, craft::magic);
    craft::u64(os, 1);
    craft::u64(os, 2);
    craft::u64(os, 1);
    craft::vec(os, {0, 1, 2});
    craft::vec(os, {1, -4});
    os.close();
    EXPECT_THROW(loadTrace(path), std::runtime_error);
}

TEST_F(TraceIoTest, ImplausibleVectorLengthThrows)
{
    std::ofstream os(path, std::ios::binary);
    craft::u64(os, craft::magic);
    craft::u64(os, 1);
    craft::u64(os, 2);
    craft::u64(os, 1);
    craft::u64(os, 1ull << 60); // absurd offsets length
    os.close();
    EXPECT_THROW(loadTrace(path), std::runtime_error);
}

TEST_F(TraceIoTest, ImplausibleTableCountThrows)
{
    std::ofstream os(path, std::ios::binary);
    craft::u64(os, craft::magic);
    craft::u64(os, 1);
    craft::u64(os, 2);
    craft::u64(os, 1ull << 40); // absurd table count
    os.close();
    EXPECT_THROW(loadTrace(path), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedFileThrows)
{
    TraceConfig c;
    c.rows = 100;
    c.tables = 1;
    c.lookups = 2;
    c.batchSize = 4;
    TraceGenerator g(c);
    saveTrace(path, {g.batch(0)});

    // Truncate to half its size.
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full / 2);
    EXPECT_THROW(loadTrace(path), std::runtime_error);
}

} // namespace
