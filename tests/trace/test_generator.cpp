/**
 * @file
 * Tests for the synthetic trace generator: determinism, structure,
 * and — the load-bearing property — that generated traces hit the
 * paper's unique-access fractions (Sec. 5) within tolerance.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "trace/generator.hpp"
#include "trace/stats.hpp"

namespace
{

using namespace dlrmopt::traces;
using dlrmopt::RowIndex;

TraceConfig
smallConfig(Hotness h)
{
    TraceConfig c;
    c.rows = 100'000;
    c.tables = 4;
    c.lookups = 20;
    c.batchSize = 32;
    c.numBatches = 40;
    c.hotness = h;
    c.seed = 11;
    return c;
}

TEST(TraceGenerator, RejectsZeroDimensions)
{
    TraceConfig c = smallConfig(Hotness::Low);
    c.tables = 0;
    EXPECT_THROW(TraceGenerator g(c), std::invalid_argument);
}

TEST(TraceGenerator, DrawIsDeterministic)
{
    TraceGenerator a(smallConfig(Hotness::Medium));
    TraceGenerator b(smallConfig(Hotness::Medium));
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(a.drawIndex(1, i), b.drawIndex(1, i));
}

TEST(TraceGenerator, TablesHaveIndependentStreams)
{
    TraceGenerator g(smallConfig(Hotness::Low));
    int diff = 0;
    for (std::uint64_t i = 0; i < 100; ++i)
        diff += g.drawIndex(0, i) != g.drawIndex(1, i);
    EXPECT_GT(diff, 50);
}

TEST(TraceGenerator, OneItemAlwaysSameRowPerTable)
{
    TraceConfig c = smallConfig(Hotness::OneItem);
    TraceGenerator g(c);
    const RowIndex first = g.drawIndex(2, 0);
    for (std::uint64_t i = 1; i < 500; ++i)
        EXPECT_EQ(g.drawIndex(2, i), first);
}

TEST(TraceGenerator, IndicesStayInRange)
{
    for (Hotness h : {Hotness::OneItem, Hotness::High, Hotness::Medium,
                      Hotness::Low, Hotness::Random}) {
        TraceConfig c = smallConfig(h);
        TraceGenerator g(c);
        for (std::uint64_t i = 0; i < 2000; ++i) {
            const RowIndex idx = g.drawIndex(0, i);
            EXPECT_GE(idx, 0);
            EXPECT_LT(static_cast<std::size_t>(idx), c.rows);
        }
    }
}

TEST(TraceGenerator, BatchStructureMatchesConfig)
{
    TraceConfig c = smallConfig(Hotness::Medium);
    TraceGenerator g(c);
    const auto b = g.batch(3);
    EXPECT_EQ(b.batchSize, c.batchSize);
    EXPECT_EQ(b.numTables(), c.tables);
    EXPECT_TRUE(b.valid(c.rows));
    for (std::size_t t = 0; t < c.tables; ++t) {
        EXPECT_EQ(b.indices[t].size(), c.batchSize * c.lookups);
        EXPECT_EQ(b.offsets[t].size(), c.batchSize + 1);
        EXPECT_EQ(b.offsets[t][1], static_cast<RowIndex>(c.lookups));
    }
}

TEST(TraceGenerator, BatchesDifferButAreReproducible)
{
    TraceGenerator g(smallConfig(Hotness::Low));
    const auto b2a = g.batch(2);
    const auto b2b = g.batch(2);
    const auto b3 = g.batch(3);
    EXPECT_EQ(b2a.indices[0], b2b.indices[0]);
    EXPECT_NE(b2a.indices[0], b3.indices[0]);
}

TEST(TraceGenerator, TableStreamMatchesBatches)
{
    TraceConfig c = smallConfig(Hotness::Medium);
    TraceGenerator g(c);
    const auto stream = g.tableStream(1, 0, 2);
    const auto b0 = g.batch(0);
    const auto b1 = g.batch(1);
    ASSERT_EQ(stream.size(), 2 * c.batchSize * c.lookups);
    for (std::size_t i = 0; i < b0.indices[1].size(); ++i)
        EXPECT_EQ(stream[i], b0.indices[1][i]);
    for (std::size_t i = 0; i < b1.indices[1].size(); ++i)
        EXPECT_EQ(stream[b0.indices[1].size() + i], b1.indices[1][i]);
}

/**
 * The key calibration property: over the configured window, the
 * unique-access fraction must land near the paper's reported values
 * (60% / 24% / 3%).
 */
class HotnessCalibration : public ::testing::TestWithParam<Hotness>
{
};

TEST_P(HotnessCalibration, UniqueFractionMatchesTarget)
{
    TraceConfig c;
    c.rows = 1'000'000;
    c.tables = 1;
    c.lookups = 120;
    c.batchSize = 64;
    c.numBatches = 60; // half the paper window, keeps the test fast
    c.hotness = GetParam();
    TraceGenerator g(c);
    const auto stream = g.tableStream(0, 0, c.numBatches);
    const auto st = computeAccessStats(stream);

    // Calibration targets the full window; evaluating on the same
    // window the generator was calibrated for.
    TraceConfig full = c;
    TraceGenerator g2(full);
    const auto full_stream = g2.tableStream(0, 0, full.numBatches);
    const auto full_st = computeAccessStats(full_stream);

    const double target = targetUniqueFraction(GetParam());
    EXPECT_NEAR(full_st.uniqueFraction(), target, target * 0.25 + 0.01)
        << hotnessName(GetParam());
    (void)st;
}

INSTANTIATE_TEST_SUITE_P(Classes, HotnessCalibration,
                         ::testing::Values(Hotness::High, Hotness::Medium,
                                           Hotness::Low),
                         [](const auto& info) {
                             switch (info.param) {
                               case Hotness::High: return "High";
                               case Hotness::Medium: return "Medium";
                               default: return "Low";
                             }
                         });

TEST(TraceGenerator, RandomIsNearlyAllUnique)
{
    TraceConfig c = smallConfig(Hotness::Random);
    c.rows = 10'000'000; // >> draws, so collisions are rare
    TraceGenerator g(c);
    const auto stream = g.tableStream(0, 0, 10);
    std::unordered_set<RowIndex> uniq(stream.begin(), stream.end());
    EXPECT_GT(static_cast<double>(uniq.size()) / stream.size(), 0.95);
}

TEST(TraceGenerator, HotterClassesHaveFewerUniques)
{
    auto unique_frac = [](Hotness h) {
        TraceConfig c = smallConfig(h);
        TraceGenerator g(c);
        const auto stream = g.tableStream(0, 0, c.numBatches);
        return computeAccessStats(stream).uniqueFraction();
    };
    const double high = unique_frac(Hotness::High);
    const double med = unique_frac(Hotness::Medium);
    const double low = unique_frac(Hotness::Low);
    EXPECT_LT(high, med);
    EXPECT_LT(med, low);
}

} // namespace
