/**
 * @file
 * Tests for access-count statistics (the Fig. 5 machinery).
 */

#include <gtest/gtest.h>

#include "trace/generator.hpp"
#include "trace/stats.hpp"

namespace
{

using namespace dlrmopt::traces;
using dlrmopt::RowIndex;
namespace core = dlrmopt::core;

TEST(AccessStats, EmptyStream)
{
    const AccessStats st = computeAccessStats({});
    EXPECT_EQ(st.totalAccesses, 0u);
    EXPECT_EQ(st.uniqueRows(), 0u);
    EXPECT_DOUBLE_EQ(st.uniqueFraction(), 0.0);
    EXPECT_DOUBLE_EQ(st.topKShare(5), 0.0);
}

TEST(AccessStats, CountsAndSorting)
{
    // 3 accesses to row 7, 2 to row 1, 1 to row 9.
    const std::vector<RowIndex> stream = {7, 1, 7, 9, 1, 7};
    const AccessStats st = computeAccessStats(stream);
    EXPECT_EQ(st.totalAccesses, 6u);
    EXPECT_EQ(st.uniqueRows(), 3u);
    ASSERT_EQ(st.sortedCounts.size(), 3u);
    EXPECT_EQ(st.sortedCounts[0], 3u);
    EXPECT_EQ(st.sortedCounts[1], 2u);
    EXPECT_EQ(st.sortedCounts[2], 1u);
    EXPECT_DOUBLE_EQ(st.uniqueFraction(), 0.5);
}

TEST(AccessStats, TopKShare)
{
    const std::vector<RowIndex> stream = {7, 1, 7, 9, 1, 7};
    const AccessStats st = computeAccessStats(stream);
    EXPECT_DOUBLE_EQ(st.topKShare(1), 0.5);
    EXPECT_DOUBLE_EQ(st.topKShare(2), 5.0 / 6.0);
    EXPECT_DOUBLE_EQ(st.topKShare(3), 1.0);
    EXPECT_DOUBLE_EQ(st.topKShare(100), 1.0); // k > unique rows
}

TEST(AccessStats, HighHotIsDominatedByFewRows)
{
    // In a High-hot trace a small hot set must capture most accesses
    // (the power-law behaviour of Fig. 5).
    TraceConfig c;
    c.rows = 1'000'000;
    c.tables = 1;
    c.lookups = 120;
    c.batchSize = 64;
    c.numBatches = 20;
    c.hotness = Hotness::High;
    TraceGenerator g(c);
    const auto st =
        computeAccessStats(g.tableStream(0, 0, c.numBatches));
    EXPECT_GT(st.topKShare(c.hotSetSize), 0.85);
}

TEST(AccessStats, LowHotHasFlatterDistribution)
{
    TraceConfig c;
    c.rows = 1'000'000;
    c.tables = 1;
    c.lookups = 120;
    c.batchSize = 64;
    c.numBatches = 20;
    c.hotness = Hotness::Low;
    TraceGenerator g(c);
    const auto low =
        computeAccessStats(g.tableStream(0, 0, c.numBatches));
    c.hotness = Hotness::High;
    TraceGenerator g2(c);
    const auto high =
        computeAccessStats(g2.tableStream(0, 0, c.numBatches));
    EXPECT_LT(low.topKShare(1024), high.topKShare(1024));
}

TEST(AccessStats, SortedCountsSumToTotal)
{
    TraceConfig c;
    c.rows = 50'000;
    c.tables = 1;
    c.lookups = 10;
    c.batchSize = 16;
    c.numBatches = 10;
    c.hotness = Hotness::Medium;
    TraceGenerator g(c);
    const auto stream = g.tableStream(0, 0, c.numBatches);
    const auto st = computeAccessStats(stream);
    std::uint64_t sum = 0;
    for (auto v : st.sortedCounts)
        sum += v;
    EXPECT_EQ(sum, st.totalAccesses);
    EXPECT_EQ(st.totalAccesses, stream.size());
}


TEST(AccessAccumulator, RejectsBadShapesAndCoordinates)
{
    EXPECT_THROW(AccessAccumulator(0, 8), std::invalid_argument);
    EXPECT_THROW(AccessAccumulator(2, 0), std::invalid_argument);
    AccessAccumulator acc(2, 8);
    EXPECT_THROW(acc.observe(2, 0), std::out_of_range);
    EXPECT_THROW(acc.observe(0, 8), std::out_of_range);
    EXPECT_THROW(acc.count(2, 0), std::out_of_range);
    EXPECT_THROW(acc.decay(1.5), std::invalid_argument);
    EXPECT_THROW(acc.decay(-0.1), std::invalid_argument);
}

TEST(AccessAccumulator, ObserveCountsAndTableStats)
{
    AccessAccumulator acc(2, 16);
    acc.observe(0, 3, 5);
    acc.observe(0, 3);
    acc.observe(0, 7, 2);
    acc.observe(1, 7, 9);
    EXPECT_EQ(acc.count(0, 3), 6u);
    EXPECT_EQ(acc.count(0, 7), 2u);
    EXPECT_EQ(acc.count(1, 7), 9u);
    EXPECT_EQ(acc.count(1, 3), 0u);
    EXPECT_EQ(acc.totalAccesses(), 17u);

    const AccessStats t0 = acc.tableStats(0);
    ASSERT_EQ(t0.sortedCounts.size(), 2u);
    EXPECT_EQ(t0.sortedCounts[0], 6u);
    EXPECT_EQ(t0.sortedCounts[1], 2u);
    EXPECT_EQ(t0.totalAccesses, 8u);
}

TEST(AccessAccumulator, ObserveBatchMatchesPerIndexObservation)
{
    core::ModelConfig m;
    m.name = "acc_tiny";
    m.cls = core::ModelClass::RMC2;
    m.rows = 64;
    m.dim = 8;
    m.tables = 2;
    m.lookups = 4;
    m.bottomMlp = {8, 8};
    m.topMlp = {4, 1};
    TraceConfig tc = TraceConfig::forModel(m, Hotness::High, 11);
    tc.batchSize = 4;
    TraceGenerator gen(tc);
    const core::SparseBatch batch = gen.batch(0);

    AccessAccumulator a(2, 64), b(2, 64);
    a.observeBatch(batch);
    for (std::size_t t = 0; t < batch.indices.size(); ++t) {
        for (const RowIndex idx : batch.indices[t])
            b.observe(t, idx);
    }
    for (std::size_t t = 0; t < 2; ++t) {
        for (std::size_t r = 0; r < 64; ++r) {
            EXPECT_EQ(a.count(t, static_cast<RowIndex>(r)),
                      b.count(t, static_cast<RowIndex>(r)));
        }
    }
    EXPECT_EQ(a.totalAccesses(), b.totalAccesses());

    // A batch wider than the accumulator is rejected.
    AccessAccumulator narrow(1, 64);
    EXPECT_THROW(narrow.observeBatch(batch), std::out_of_range);
}

TEST(AccessAccumulator, HottestOrdersByCountWithDeterministicTieBreak)
{
    AccessAccumulator acc(2, 8);
    acc.observe(0, 1, 5);
    acc.observe(1, 2, 9);
    acc.observe(0, 4, 5); // ties (0,1): (0,1) must come first
    acc.observe(1, 0, 5); // ties too: table 1 after table 0

    const auto top = acc.hottest(4);
    ASSERT_EQ(top.size(), 4u);
    EXPECT_EQ(top[0], (std::pair<std::size_t, RowIndex>{1, 2}));
    EXPECT_EQ(top[1], (std::pair<std::size_t, RowIndex>{0, 1}));
    EXPECT_EQ(top[2], (std::pair<std::size_t, RowIndex>{0, 4}));
    EXPECT_EQ(top[3], (std::pair<std::size_t, RowIndex>{1, 0}));

    // k beyond the touched set returns only touched rows.
    EXPECT_EQ(acc.hottest(100).size(), 4u);
}

TEST(AccessAccumulator, DecayAgesAndResetClears)
{
    AccessAccumulator acc(1, 4);
    acc.observe(0, 0, 8);
    acc.observe(0, 1, 3);
    acc.decay(0.5);
    EXPECT_EQ(acc.count(0, 0), 4u);
    EXPECT_EQ(acc.count(0, 1), 1u); // floor(3 * 0.5)
    acc.decay(0.0);
    EXPECT_EQ(acc.count(0, 0), 0u);
    acc.observe(0, 2, 2);
    acc.reset();
    EXPECT_EQ(acc.count(0, 2), 0u);
    EXPECT_EQ(acc.totalAccesses(), 0u);
    EXPECT_TRUE(acc.hottest(4).empty());
}

} // namespace
