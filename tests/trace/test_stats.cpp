/**
 * @file
 * Tests for access-count statistics (the Fig. 5 machinery).
 */

#include <gtest/gtest.h>

#include "trace/generator.hpp"
#include "trace/stats.hpp"

namespace
{

using namespace dlrmopt::traces;
using dlrmopt::RowIndex;

TEST(AccessStats, EmptyStream)
{
    const AccessStats st = computeAccessStats({});
    EXPECT_EQ(st.totalAccesses, 0u);
    EXPECT_EQ(st.uniqueRows(), 0u);
    EXPECT_DOUBLE_EQ(st.uniqueFraction(), 0.0);
    EXPECT_DOUBLE_EQ(st.topKShare(5), 0.0);
}

TEST(AccessStats, CountsAndSorting)
{
    // 3 accesses to row 7, 2 to row 1, 1 to row 9.
    const std::vector<RowIndex> stream = {7, 1, 7, 9, 1, 7};
    const AccessStats st = computeAccessStats(stream);
    EXPECT_EQ(st.totalAccesses, 6u);
    EXPECT_EQ(st.uniqueRows(), 3u);
    ASSERT_EQ(st.sortedCounts.size(), 3u);
    EXPECT_EQ(st.sortedCounts[0], 3u);
    EXPECT_EQ(st.sortedCounts[1], 2u);
    EXPECT_EQ(st.sortedCounts[2], 1u);
    EXPECT_DOUBLE_EQ(st.uniqueFraction(), 0.5);
}

TEST(AccessStats, TopKShare)
{
    const std::vector<RowIndex> stream = {7, 1, 7, 9, 1, 7};
    const AccessStats st = computeAccessStats(stream);
    EXPECT_DOUBLE_EQ(st.topKShare(1), 0.5);
    EXPECT_DOUBLE_EQ(st.topKShare(2), 5.0 / 6.0);
    EXPECT_DOUBLE_EQ(st.topKShare(3), 1.0);
    EXPECT_DOUBLE_EQ(st.topKShare(100), 1.0); // k > unique rows
}

TEST(AccessStats, HighHotIsDominatedByFewRows)
{
    // In a High-hot trace a small hot set must capture most accesses
    // (the power-law behaviour of Fig. 5).
    TraceConfig c;
    c.rows = 1'000'000;
    c.tables = 1;
    c.lookups = 120;
    c.batchSize = 64;
    c.numBatches = 20;
    c.hotness = Hotness::High;
    TraceGenerator g(c);
    const auto st =
        computeAccessStats(g.tableStream(0, 0, c.numBatches));
    EXPECT_GT(st.topKShare(c.hotSetSize), 0.85);
}

TEST(AccessStats, LowHotHasFlatterDistribution)
{
    TraceConfig c;
    c.rows = 1'000'000;
    c.tables = 1;
    c.lookups = 120;
    c.batchSize = 64;
    c.numBatches = 20;
    c.hotness = Hotness::Low;
    TraceGenerator g(c);
    const auto low =
        computeAccessStats(g.tableStream(0, 0, c.numBatches));
    c.hotness = Hotness::High;
    TraceGenerator g2(c);
    const auto high =
        computeAccessStats(g2.tableStream(0, 0, c.numBatches));
    EXPECT_LT(low.topKShare(1024), high.topKShare(1024));
}

TEST(AccessStats, SortedCountsSumToTotal)
{
    TraceConfig c;
    c.rows = 50'000;
    c.tables = 1;
    c.lookups = 10;
    c.batchSize = 16;
    c.numBatches = 10;
    c.hotness = Hotness::Medium;
    TraceGenerator g(c);
    const auto stream = g.tableStream(0, 0, c.numBatches);
    const auto st = computeAccessStats(stream);
    std::uint64_t sum = 0;
    for (auto v : st.sortedCounts)
        sum += v;
    EXPECT_EQ(sum, st.totalAccesses);
    EXPECT_EQ(st.totalAccesses, stream.size());
}

} // namespace
