/**
 * @file
 * Tests for hotness classes and the mixture calibration math.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/hotness.hpp"

namespace
{

using namespace dlrmopt::traces;

TEST(Hotness, TargetsMatchPaperSection5)
{
    EXPECT_DOUBLE_EQ(targetUniqueFraction(Hotness::Low), 0.60);
    EXPECT_DOUBLE_EQ(targetUniqueFraction(Hotness::Medium), 0.24);
    EXPECT_DOUBLE_EQ(targetUniqueFraction(Hotness::High), 0.03);
    EXPECT_DOUBLE_EQ(targetUniqueFraction(Hotness::OneItem), 0.0);
    EXPECT_DOUBLE_EQ(targetUniqueFraction(Hotness::Random), 1.0);
}

TEST(Hotness, NamesMatchPaper)
{
    EXPECT_EQ(hotnessName(Hotness::Low), "Low Hot");
    EXPECT_EQ(hotnessName(Hotness::Medium), "Medium Hot");
    EXPECT_EQ(hotnessName(Hotness::High), "High Hot");
    EXPECT_EQ(hotnessName(Hotness::OneItem), "one-item");
    EXPECT_EQ(hotnessName(Hotness::Random), "random");
}

TEST(Calibration, ResultInUnitInterval)
{
    for (double u : {0.03, 0.24, 0.60, 0.99}) {
        const double q = calibrateUniformFraction(u, 921'600, 1'000'000,
                                                  1024);
        EXPECT_GE(q, 0.0) << u;
        EXPECT_LE(q, 1.0) << u;
    }
}

TEST(Calibration, MonotoneInTarget)
{
    double prev = -1.0;
    for (double u : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
        const double q = calibrateUniformFraction(u, 921'600, 1'000'000,
                                                  1024);
        EXPECT_GT(q, prev) << u;
        prev = q;
    }
}

TEST(Calibration, ZeroWhenHotSetAloneSuffices)
{
    // If the target unique count is below the hot-set size, no
    // uniform draws are needed at all.
    EXPECT_DOUBLE_EQ(
        calibrateUniformFraction(0.0001, 1'000'000, 1'000'000, 1024),
        0.0);
}

TEST(Calibration, SolvesExpectedDistinctEquation)
{
    // Verify q satisfies u*n = R*(1 - exp(-q*n/R)) + hot.
    const std::size_t n = 500'000, r = 1'000'000, hot = 1024;
    const double u = 0.4;
    const double q = calibrateUniformFraction(u, n, r, hot);
    const double expected_distinct =
        static_cast<double>(r) *
            (1.0 - std::exp(-q * static_cast<double>(n) / r)) +
        static_cast<double>(hot);
    EXPECT_NEAR(expected_distinct / n, u, 1e-9);
}

TEST(Calibration, SaturatesAtOne)
{
    // A target unique fraction near 1 with few draws needs all-uniform.
    EXPECT_DOUBLE_EQ(calibrateUniformFraction(1.0, 100, 1'000'000, 0),
                     1.0);
}

} // namespace
