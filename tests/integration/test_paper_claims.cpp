/**
 * @file
 * Simulator-level regression tests for the paper's headline claims,
 * on reduced-size workloads so the suite stays fast. The full-size
 * reproductions live in bench/ (see EXPERIMENTS.md); these tests pin
 * the *directions* so refactoring can't silently break them.
 */

#include <gtest/gtest.h>

#include "platform/evaluator.hpp"

namespace
{

using namespace dlrmopt::platform;
using namespace dlrmopt::core;
using dlrmopt::traces::Hotness;

EvalConfig
reducedRm2(Scheme s, Hotness h, std::size_t cores)
{
    EvalConfig c;
    c.cpu = cascadeLake();
    c.model = rm2_1();
    // Reduce the workload (not the architecture-critical dims) so
    // each sim runs in ~a second.
    c.model.tables = 10;
    c.model.lookups = 40;
    c.hotness = h;
    c.scheme = s;
    c.cores = cores;
    c.numBatches = std::max<std::size_t>(cores, 4);
    return c;
}

double
speedup(Hotness h, Scheme s, std::size_t cores)
{
    const auto base = evaluate(reducedRm2(Scheme::Baseline, h, cores));
    const auto opt = evaluate(reducedRm2(s, h, cores));
    return base.batchMs / opt.batchMs;
}

TEST(PaperClaims, SwPfSpeedsUpEverywhere)
{
    // Sec. 6.1: SW-PF outperforms the baseline on every dataset,
    // single- and multi-core.
    for (Hotness h : {Hotness::Low, Hotness::Medium, Hotness::High}) {
        EXPECT_GT(speedup(h, Scheme::SwPf, 1), 1.02);
        EXPECT_GT(speedup(h, Scheme::SwPf, 4), 1.02);
    }
}

TEST(PaperClaims, SwPfBestOnLowHot)
{
    // Sec. 6.1: "software prefetching performs best in the Low Hot
    // dataset as it offers more irregularity."
    EXPECT_GT(speedup(Hotness::Low, Scheme::SwPf, 1),
              speedup(Hotness::High, Scheme::SwPf, 1));
}

TEST(PaperClaims, DpHtIsDetrimental)
{
    // Sec. 6.2: DP-HT underperforms the baseline (as low as 0.5x).
    for (Hotness h : {Hotness::Low, Hotness::High})
        EXPECT_LT(speedup(h, Scheme::DpHt, 1), 0.95);
}

TEST(PaperClaims, MpHtHelpsAndPrefersHighHot)
{
    // Sec. 6.2: MP-HT yields speedups, best with fast (hot)
    // embedding stages.
    EXPECT_GT(speedup(Hotness::High, Scheme::MpHt, 1), 1.03);
    EXPECT_GE(speedup(Hotness::High, Scheme::MpHt, 1),
              speedup(Hotness::Low, Scheme::MpHt, 4) - 0.02);
}

TEST(PaperClaims, IntegratedBeatsBothParts)
{
    for (Hotness h : {Hotness::Low, Hotness::High}) {
        const double s_int = speedup(h, Scheme::Integrated, 1);
        EXPECT_GT(s_int, speedup(h, Scheme::SwPf, 1) * 0.999);
        EXPECT_GT(s_int, speedup(h, Scheme::MpHt, 1));
    }
}

TEST(PaperClaims, EmbeddingDominatesRmc2Models)
{
    // Fig. 1 / Table 2: RMC2 models spend ~95%+ in the embedding
    // stage.
    const auto r = evaluate(reducedRm2(Scheme::Baseline, Hotness::Low, 1));
    EXPECT_GT(r.stages.emb / r.batchMs, 0.85);
}

TEST(PaperClaims, MixedModelHasSubstantialMlpShare)
{
    EvalConfig c;
    c.cpu = cascadeLake();
    c.model = rm1();
    c.model.tables = 8;
    c.model.lookups = 30;
    c.hotness = Hotness::Low;
    c.scheme = Scheme::Baseline;
    c.cores = 1;
    c.numBatches = 4;
    const auto r = evaluate(c);
    // RM1 (RMC1 class): embedding around 65%, the rest is MLP-heavy.
    EXPECT_LT(r.stages.emb / r.batchMs, 0.85);
    EXPECT_GT(r.stages.bottom, r.stages.top);
}

TEST(PaperClaims, MultiCoreUsesMoreBandwidth)
{
    // Fig. 8: bandwidth rises steeply with core count while per-batch
    // latency rises mildly.
    const auto one =
        evaluate(reducedRm2(Scheme::Baseline, Hotness::Low, 1));
    const auto eight =
        evaluate(reducedRm2(Scheme::Baseline, Hotness::Low, 8));
    EXPECT_GT(eight.embTiming.achievedGBs,
              3.0 * one.embTiming.achievedGBs);
    EXPECT_LT(eight.embMs, one.embMs * 1.8);
}

TEST(PaperClaims, PrefetchDistanceSweetSpot)
{
    // Fig. 10b: distance 1 is too late; the 4-to-8 region is near
    // optimal.
    auto time_at = [&](int d) {
        auto c = reducedRm2(Scheme::SwPf, Hotness::Low, 1);
        c.pfDistance = d;
        return evaluate(c).embMs;
    };
    const double d1 = time_at(1);
    const double d4 = time_at(4);
    EXPECT_LT(d4, d1);
}

TEST(PaperClaims, SwPfLiftsL1HitRateToFig15Levels)
{
    const auto base =
        evaluate(reducedRm2(Scheme::Baseline, Hotness::Low, 1));
    const auto pf = evaluate(reducedRm2(Scheme::SwPf, Hotness::Low, 1));
    // Fig. 15: baseline 72-84%, SW-PF 96.7-99.4% (profiler view).
    EXPECT_GT(base.sim.vtuneL1HitRate(), 0.55);
    EXPECT_LT(base.sim.vtuneL1HitRate(), 0.93);
    EXPECT_GT(pf.sim.vtuneL1HitRate(), 0.95);
    EXPECT_LT(pf.embTiming.avgLoadLatency,
              base.embTiming.avgLoadLatency);
}

} // namespace
