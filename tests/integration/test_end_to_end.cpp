/**
 * @file
 * Integration tests exercising the whole real-execution stack
 * together: trace generation -> DLRM forward -> pipeline schemes ->
 * serving queue, plus trace IO in the loop.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/pipeline.hpp"
#include "sched/ht_thread_pool.hpp"
#include "serve/loadgen.hpp"
#include "serve/queue_sim.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

namespace
{

using namespace dlrmopt;

core::ModelConfig
smallModel()
{
    core::ModelConfig m;
    m.name = "it_small";
    m.cls = core::ModelClass::RMC2;
    m.rows = 20'000;
    m.dim = 32;
    m.tables = 6;
    m.lookups = 8;
    m.bottomMlp = {64, 32, 32};
    m.topMlp = {16, 1};
    return m;
}

TEST(EndToEnd, TraceToPredictionsAllSchemesAgree)
{
    const auto cfg = smallModel();
    core::DlrmModel model(cfg, 11);

    traces::TraceConfig tc = traces::TraceConfig::forModel(
        cfg, traces::Hotness::Medium, 5);
    tc.batchSize = 16;
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 4; ++b)
        batches.push_back(gen.batch(b));

    core::Tensor dense(16, cfg.denseDim());
    dense.randomize(3);

    // Predictions must be identical for every scheme (schemes change
    // timing, never math).
    core::DlrmWorkspace ref_ws;
    model.forward(dense, batches[0], ref_ws);

    core::DlrmWorkspace pf_ws;
    model.forward(dense, batches[0], pf_ws,
                  core::PrefetchSpec::paperDefault());
    for (std::size_t i = 0; i < ref_ws.pred.size(); ++i)
        EXPECT_EQ(ref_ws.pred.data()[i], pf_ws.pred.data()[i]);

    for (auto s : core::allSchemes) {
        core::InferencePipeline p(model, s);
        const auto st = p.run(dense, batches);
        EXPECT_EQ(st.batches, batches.size()) << core::schemeName(s);
    }
}

TEST(EndToEnd, TraceSurvivesIoRoundTripIntoInference)
{
    const auto cfg = smallModel();
    core::DlrmModel model(cfg, 1);

    traces::TraceConfig tc =
        traces::TraceConfig::forModel(cfg, traces::Hotness::High, 9);
    tc.batchSize = 8;
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches = {gen.batch(0),
                                              gen.batch(1)};

    const auto path =
        (std::filesystem::temp_directory_path() / "dlrmopt_e2e.trace")
            .string();
    traces::saveTrace(path, batches);
    const auto loaded = traces::loadTrace(path);
    std::filesystem::remove(path);

    core::Tensor dense(8, cfg.denseDim());
    dense.randomize(4);
    core::DlrmWorkspace w1, w2;
    model.forward(dense, batches[1], w1);
    model.forward(dense, loaded[1], w2);
    for (std::size_t i = 0; i < w1.pred.size(); ++i)
        EXPECT_EQ(w1.pred.data()[i], w2.pred.data()[i]);
}

TEST(EndToEnd, BatchPerCoreOnHtPool)
{
    // The paper's serving layout: one inference per physical core,
    // dispatched through the HT-aware pool.
    const auto cfg = smallModel();
    core::DlrmModel model(cfg, 2);
    sched::HtThreadPool pool(sched::Topology::synthetic(2, 2), false);

    traces::TraceConfig tc = traces::TraceConfig::forModel(
        cfg, traces::Hotness::Medium, 3);
    tc.batchSize = 8;
    traces::TraceGenerator gen(tc);

    core::Tensor dense(8, cfg.denseDim());
    dense.randomize(6);

    std::vector<std::vector<float>> preds(6);
    std::vector<std::future<void>> futs;
    for (std::size_t b = 0; b < 6; ++b) {
        futs.push_back(pool.submit(b % 2, [&, b] {
            core::DlrmWorkspace ws;
            model.forward(dense, gen.batch(b), ws);
            preds[b].assign(ws.pred.data(),
                            ws.pred.data() + ws.pred.size());
        }));
    }
    for (auto& f : futs)
        f.get();

    // Sequential reference.
    for (std::size_t b = 0; b < 6; ++b) {
        core::DlrmWorkspace ws;
        model.forward(dense, gen.batch(b), ws);
        ASSERT_EQ(preds[b].size(), ws.pred.size());
        for (std::size_t i = 0; i < preds[b].size(); ++i)
            EXPECT_EQ(preds[b][i], ws.pred.data()[i]) << b;
    }
}

TEST(EndToEnd, MeasuredServiceTimesDriveQueueSim)
{
    // Close the serving loop: measure a real batch latency, feed it
    // into the queueing model, check the SLA verdict is computable.
    const auto cfg = smallModel();
    core::DlrmModel model(cfg, 3);
    traces::TraceConfig tc =
        traces::TraceConfig::forModel(cfg, traces::Hotness::Low, 2);
    tc.batchSize = 8;
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches = {gen.batch(0)};
    core::Tensor dense(8, cfg.denseDim());

    core::InferencePipeline p(model, core::Scheme::Baseline);
    const auto stats = p.run(dense, batches);
    ASSERT_GT(stats.avgBatchMs(), 0.0);

    serve::PoissonLoadGen lg(stats.avgBatchMs() * 2.0, 4);
    const auto res =
        serve::simulateQueue(lg.arrivals(500), stats.avgBatchMs(), 2);
    EXPECT_GT(res.latency.p95(), 0.0);
    EXPECT_GE(res.latency.slaCompliance(cfg.slaMs()), 0.0);
}

} // namespace
