/**
 * @file
 * Cross-component validation: independent parts of the system must
 * agree about the same workload — the trace generator, the reuse
 * model, the contents simulator, and the real kernel all describe
 * one embedding stage.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/embedding.hpp"
#include "memsim/embedding_sim.hpp"
#include "memsim/reuse_model.hpp"
#include "trace/generator.hpp"
#include "trace/stats.hpp"

namespace
{

using namespace dlrmopt;

traces::TraceConfig
sharedTrace(traces::Hotness h)
{
    traces::TraceConfig tc;
    tc.rows = 60'000;
    tc.tables = 3;
    tc.lookups = 8;
    tc.batchSize = 16;
    tc.numBatches = 8;
    tc.hotness = h;
    tc.seed = 77;
    // Small draw volumes need a small hot set or the unique-target
    // calibration degenerates and all classes coincide.
    tc.hotSetSize = 32;
    return tc;
}

TEST(CrossValidation, SimAndReuseModelSeeTheSameVolume)
{
    const auto tc = sharedTrace(traces::Hotness::Medium);

    memsim::EmbSimConfig sc;
    sc.trace = tc;
    sc.dim = 64;
    sc.hier.cores = 2;
    sc.numBatches = 6;
    const auto sim = memsim::EmbeddingSim(sc).run();

    memsim::ReuseModelConfig rc;
    rc.trace = tc;
    rc.dim = 64;
    rc.cores = 2;
    rc.numBatches = 6;
    const auto reuse = memsim::runReuseModel(rc);

    // One reuse-model access per simulated lookup.
    EXPECT_EQ(sim.lookups, reuse.hist.totalAccesses);
}

TEST(CrossValidation, ColdRowsLowerBoundDramFills)
{
    // Every distinct row must be fetched from DRAM at least once in
    // the contents sim (compulsory misses), so the sim's demand DRAM
    // fills are at least the reuse model's distinct-row count (rows
    // span dim/16 lines; compare in row units via first lines).
    const auto tc = sharedTrace(traces::Hotness::Low);

    memsim::EmbSimConfig sc;
    sc.trace = tc;
    sc.dim = 64;
    sc.hier.cores = 1;
    sc.hwPrefetch = false; // demand fills only
    sc.numBatches = 4;
    const auto sim = memsim::EmbeddingSim(sc).run();

    memsim::ReuseModelConfig rc;
    rc.trace = tc;
    rc.dim = 64;
    rc.cores = 1;
    rc.numBatches = 4;
    const auto reuse = memsim::runReuseModel(rc);

    // 4 lines per 64-dim row: every distinct row's lines are all
    // compulsory misses at least once.
    EXPECT_GE(sim.dramDemandFills, reuse.distinctRows * 4);
}

TEST(CrossValidation, GeneratorStatsPredictSimHitOrdering)
{
    // Unique-fraction ordering from the trace stats must carry
    // through to the simulator's L1 hit-rate ordering.
    double unique[3], hit[3];
    int i = 0;
    for (auto h : {traces::Hotness::High, traces::Hotness::Medium,
                   traces::Hotness::Low}) {
        const auto tc = sharedTrace(h);
        traces::TraceGenerator gen(tc);
        unique[i] = traces::computeAccessStats(
                        gen.tableStream(0, 0, tc.numBatches))
                        .uniqueFraction();

        memsim::EmbSimConfig sc;
        sc.trace = tc;
        sc.dim = 64;
        sc.hier.cores = 1;
        sc.numBatches = 4;
        hit[i] = memsim::EmbeddingSim(sc).run().l1HitRate();
        ++i;
    }
    EXPECT_LT(unique[0], unique[1]);
    EXPECT_LT(unique[1], unique[2]);
    EXPECT_GT(hit[0], hit[1]);
    EXPECT_GT(hit[1], hit[2]);
}

TEST(CrossValidation, KernelTouchesExactlyTheSimulatedRows)
{
    // The real kernel and the simulator must agree on which rows a
    // batch touches: sum the kernel's output and compare against a
    // reference computed from the generator's indices directly.
    const auto tc = sharedTrace(traces::Hotness::High);
    traces::TraceGenerator gen(tc);
    const auto batch = gen.batch(2);

    core::EmbeddingTable table(tc.rows, 32, 5);
    std::vector<float> out(tc.batchSize * 32);
    table.bag(batch.indices[1].data(), batch.offsets[1].data(),
              tc.batchSize, out.data(),
              core::PrefetchSpec::paperDefault());

    // Reference: accumulate the same rows by hand from drawIndex.
    std::vector<float> want(tc.batchSize * 32, 0.0f);
    const std::size_t per_batch = tc.batchSize * tc.lookups;
    for (std::size_t s = 0; s < tc.batchSize; ++s) {
        for (std::size_t l = 0; l < tc.lookups; ++l) {
            const auto row = gen.drawIndex(
                1, 2 * per_batch + s * tc.lookups + l);
            const float *rp = table.rowPtr(row);
            for (std::size_t d = 0; d < 32; ++d)
                want[s * 32 + d] += rp[d];
        }
    }
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], want[i]) << i;
}

TEST(CrossValidation, SimDramBytesBoundedByFootprint)
{
    // Without prefetchers, demand DRAM traffic cannot exceed the
    // total line volume nor fall below the distinct-line footprint.
    const auto tc = sharedTrace(traces::Hotness::Medium);
    memsim::EmbSimConfig sc;
    sc.trace = tc;
    sc.dim = 64;
    sc.hier.cores = 1;
    sc.hwPrefetch = false;
    sc.numBatches = 4;
    const auto sim = memsim::EmbeddingSim(sc).run();

    // Distinct (table, row) pairs touched in the simulated window.
    traces::TraceGenerator gen(tc);
    std::unordered_set<std::uint64_t> rows;
    const std::size_t per_batch = tc.batchSize * tc.lookups;
    for (std::size_t b = 0; b < 4; ++b) {
        for (std::size_t t = 0; t < tc.tables; ++t) {
            for (std::size_t i = 0; i < per_batch; ++i) {
                rows.insert(t * tc.rows +
                            gen.drawIndex(t, b * per_batch + i));
            }
        }
    }
    const std::uint64_t distinct_lines = rows.size() * 4; // 4 lines/row
    EXPECT_GE(sim.dramDemandFills, distinct_lines);
    EXPECT_LE(sim.dramDemandFills, sim.lines);
}

} // namespace
