/**
 * @file
 * Tests for the CLI: argument parsing, config construction, command
 * dispatch, and output formats (run against small configurations).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "cli.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::cli;

ParsedArgs
parse(std::initializer_list<const char *> argv)
{
    std::vector<const char *> v = {"dlrmopt"};
    v.insert(v.end(), argv.begin(), argv.end());
    return parseArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliParse, CommandOptionsAndPositionals)
{
    const auto a = parse({"trace", "info", "file.bin", "--format",
                          "json", "--flag"});
    EXPECT_EQ(a.command, "trace");
    ASSERT_EQ(a.positional.size(), 2u);
    EXPECT_EQ(a.positional[0], "info");
    EXPECT_EQ(a.positional[1], "file.bin");
    EXPECT_EQ(a.get("format"), "json");
    EXPECT_EQ(a.get("flag"), "1"); // bare flag
    EXPECT_EQ(a.get("missing", "dflt"), "dflt");
}

TEST(CliParse, IntAndDoubleValidation)
{
    const auto a = parse({"evaluate", "--cores", "8", "--x", "abc"});
    EXPECT_EQ(a.getInt("cores", 1), 8);
    EXPECT_EQ(a.getInt("absent", 7), 7);
    EXPECT_THROW(a.getInt("x", 0), std::invalid_argument);
    EXPECT_THROW(a.getDouble("x", 0.0), std::invalid_argument);
}

TEST(CliParse, HotnessAndSchemeWords)
{
    EXPECT_EQ(parseHotness("low"), traces::Hotness::Low);
    EXPECT_EQ(parseHotness("one-item"), traces::Hotness::OneItem);
    EXPECT_THROW(parseHotness("warm"), std::invalid_argument);
    EXPECT_EQ(parseScheme("integrated"), core::Scheme::Integrated);
    EXPECT_EQ(parseScheme("hwpf-off"), core::Scheme::HwPfOff);
    EXPECT_THROW(parseScheme("turbo"), std::invalid_argument);
}

TEST(CliParse, BuildEvalConfig)
{
    const auto a = parse({"evaluate", "--cpu", "SPR", "--model",
                          "rm1", "--hotness", "high", "--scheme",
                          "swpf", "--cores", "4", "--pf-amount", "2",
                          "--pf-hint", "T1"});
    const auto cfg = buildEvalConfig(a);
    EXPECT_EQ(cfg.cpu.name, "SPR");
    EXPECT_EQ(cfg.model.name, "rm1");
    EXPECT_EQ(cfg.hotness, traces::Hotness::High);
    EXPECT_EQ(cfg.scheme, core::Scheme::SwPf);
    EXPECT_EQ(cfg.cores, 4u);
    EXPECT_EQ(cfg.pfAmount, 2);
    EXPECT_EQ(cfg.pfLocality, 2);
}

TEST(CliParse, RejectsBadCoreCounts)
{
    EXPECT_THROW(
        buildEvalConfig(parse({"evaluate", "--cores", "9999"})),
        std::invalid_argument);
}

TEST(CliRun, ListsModelsAndPlatforms)
{
    std::ostringstream out, err;
    EXPECT_EQ(run(parse({"models"}), out, err), 0);
    EXPECT_NE(out.str().find("rm2_3"), std::string::npos);
    out.str("");
    EXPECT_EQ(run(parse({"platforms"}), out, err), 0);
    EXPECT_NE(out.str().find("Zen3"), std::string::npos);
}

TEST(CliRun, UnknownCommandPrintsUsage)
{
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"frobnicate"}), out, err), 0);
    EXPECT_NE(err.str().find("commands:"), std::string::npos);
}

TEST(CliRun, EvaluateJsonOnTinyModel)
{
    // rm1 with few sim batches stays fast enough for a unit test.
    std::ostringstream out, err;
    const int rc = run(parse({"evaluate", "--model", "rm1",
                              "--hotness", "high", "--scheme",
                              "baseline", "--cores", "1",
                              "--batches", "1", "--sim-tables", "4",
                              "--format", "json"}),
                       out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("\"batch_ms\":"), std::string::npos);
}

TEST(CliRun, TraceGenAndInfoRoundTrip)
{
    const std::string path = "/tmp/dlrmopt_cli_trace_test.bin";
    std::ostringstream out, err;
    int rc = run(parse({"trace", "gen", "--rows", "5000", "--tables",
                        "2", "--lookups", "4", "--batch-size", "8",
                        "--batches", "3", "--out", path.c_str()}),
                 out, err);
    EXPECT_EQ(rc, 0) << err.str();

    out.str("");
    rc = run(parse({"trace", "info", path.c_str()}), out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("3 batches"), std::string::npos);
    EXPECT_NE(out.str().find("2 tables"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliRun, GemmTunePrintsTileTableAndSpeedup)
{
    // One small coalesced batch size keeps the real-kernel sweep
    // unit-test fast while still exercising grid construction, the
    // baseline comparison, and cache installation for every layer of
    // both MLPs.
    std::ostringstream out, err;
    const int rc = run(parse({"gemmtune", "--model", "rm2_1", "--m",
                              "4", "--repeats", "1"}),
                       out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("tile autotune"), std::string::npos);
    EXPECT_NE(s.find("best tile"), std::string::npos);
    EXPECT_NE(s.find("speedup"), std::string::npos);
    EXPECT_NE(s.find("installed"), std::string::npos);
    // rm2_1 layer shapes appear (bottom 256->128, top final ->1).
    EXPECT_NE(s.find("256"), std::string::npos);
}

TEST(CliRun, GemmTuneRejectsBadOptions)
{
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"gemmtune", "--m", "0"}), out, err), 0);
    EXPECT_NE(run(parse({"gemmtune", "--repeats", "0"}), out, err), 0);
    EXPECT_NE(run(parse({"gemmtune", "--model", "nope"}), out, err),
              0);
}

TEST(CliRun, GemmTuneInt8DtypeTunesTheQuantizedEngine)
{
    std::ostringstream out, err;
    const int rc = run(parse({"gemmtune", "--model", "rm2_1", "--m",
                              "4", "--repeats", "1", "--dtype",
                              "int8"}),
                       out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("tile autotune (int8)"), std::string::npos);
    EXPECT_NE(s.find("speedup"), std::string::npos);
    EXPECT_NE(s.find("installed"), std::string::npos);
}

TEST(CliRun, GemmTuneRejectsNonGemmDtypes)
{
    // bf16 is storage-only (the MLPs run fp32 for it); unknown words
    // are rejected by the shared dtype parser.
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"gemmtune", "--dtype", "bf16"}), out, err),
              0);
    EXPECT_NE(err.str().find("bf16"), std::string::npos);
    std::ostringstream o2, e2;
    EXPECT_NE(run(parse({"gemmtune", "--dtype", "fp64"}), o2, e2), 0);
}

TEST(CliRun, ServeRunsBaselineAndDegradedSessions)
{
    // Tiny scaled model + short stream so the real-execution serving
    // session stays unit-test fast. Faults are injected to prove the
    // session survives them end to end.
    std::ostringstream out, err;
    const int rc =
        run(parse({"serve", "--model", "rm1", "--max-bytes",
                   "2000000", "--batch-size", "4", "--requests", "60",
                   "--arrival-ms", "2.0", "--sla", "25", "--cores",
                   "2", "--retries", "3", "--fault-exception-rate",
                   "0.05", "--fault-straggler-core", "0",
                   "--fault-straggler-factor", "2.0", "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("baseline"), std::string::npos);
    EXPECT_NE(s.find("degradation"), std::string::npos);
    EXPECT_NE(s.find("arrived 60"), std::string::npos);
    EXPECT_NE(s.find("p95"), std::string::npos);
}

TEST(CliRun, ServeRejectsBadOptions)
{
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"serve", "--requests", "0"}), out, err), 0);
    EXPECT_NE(run(parse({"serve", "--fault-exception-rate", "2.0"}),
                  out, err),
              0);
    EXPECT_NE(run(parse({"serve", "--dtype", "fp64"}), out, err), 0);
}

TEST(CliRun, ServeQuantizedPrecisionFloorCountsEveryDispatch)
{
    // --dtype int8 attaches a quantized store and floors every
    // dispatch at int8, so no row may report zero quantized
    // dispatches.
    std::ostringstream out, err;
    const int rc =
        run(parse({"serve", "--model", "rm1", "--max-bytes",
                   "2000000", "--batch-size", "4", "--requests", "40",
                   "--arrival-ms", "2.0", "--sla", "25", "--cores",
                   "2", "--dtype", "int8", "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("precision int8"), std::string::npos);
    EXPECT_NE(s.find("quantized"), std::string::npos);
    EXPECT_EQ(s.find(" 0 quantized"), std::string::npos);
}

TEST(CliRun, RouterComparesSingleInstanceAgainstEveryPolicy)
{
    std::ostringstream out, err;
    const int rc =
        run(parse({"router", "--model", "rm1", "--max-bytes",
                   "2000000", "--batch-size", "4", "--requests", "60",
                   "--arrival-ms", "2.0", "--sla", "25", "--cores",
                   "2", "--instances", "2", "--straggler-instance",
                   "1", "--straggler-factor", "4.0", "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("one shared store"), std::string::npos);
    EXPECT_NE(s.find("1 instance"), std::string::npos);
    EXPECT_NE(s.find("2 instances rr"), std::string::npos);
    EXPECT_NE(s.find("2 instances po2"), std::string::npos);
    EXPECT_NE(s.find("2 instances health"), std::string::npos);
    EXPECT_NE(s.find("straggler: instance 1"), std::string::npos);
    EXPECT_NE(s.find("req/s"), std::string::npos);
}

TEST(CliRun, RouterRejectsBadOptions)
{
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"router", "--instances", "0"}), out, err), 0);
    EXPECT_NE(run(parse({"router", "--cores", "2", "--instances",
                         "4"}),
                  out, err),
              0);
    EXPECT_NE(run(parse({"router", "--policy", "warp"}), out, err), 0);
}

TEST(CliRun, BatchComparesUnbatchedAgainstCoalescing)
{
    std::ostringstream out, err;
    const int rc =
        run(parse({"batch", "--model", "rm1", "--max-bytes",
                   "2000000", "--batch-size", "4", "--requests", "80",
                   "--arrival-ms", "1.0", "--sla", "25", "--cores",
                   "2", "--max-requests", "4", "--linger-ms", "1.0",
                   "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("unbatched"), std::string::npos);
    EXPECT_NE(s.find("batch 4 @ 0.0ms"), std::string::npos);
    EXPECT_NE(s.find("batch 4 @ 1.0ms"), std::string::npos);
    EXPECT_NE(s.find("served/dispatch"), std::string::npos);
    EXPECT_NE(s.find("req/s"), std::string::npos);
}

TEST(CliRun, BatchRejectsBadOptions)
{
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"batch", "--requests", "0"}), out, err), 0);
    EXPECT_NE(run(parse({"batch", "--max-requests", "0"}), out, err),
              0);
    EXPECT_NE(run(parse({"batch", "--dtype", "int4"}), out, err), 0);
}

TEST(CliRun, BatchQuantizedPrecisionFloorRunsEveryRow)
{
    // --dtype bf16 floors the unbatched, coalesced, and streamed
    // rows alike: every dispatch in every row counts as quantized.
    std::ostringstream out, err;
    const int rc =
        run(parse({"batch", "--model", "rm1", "--max-bytes",
                   "2000000", "--batch-size", "4", "--requests", "60",
                   "--arrival-ms", "1.0", "--sla", "25", "--cores",
                   "2", "--max-requests", "4", "--linger-ms", "1.0",
                   "--streamed", "--dtype", "bf16", "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("precision bf16"), std::string::npos);
    EXPECT_NE(s.find("unbatched"), std::string::npos);
    EXPECT_NE(s.find("streamed"), std::string::npos);
    EXPECT_NE(s.find("quantized"), std::string::npos);
    EXPECT_EQ(s.find(" 0 quantized"), std::string::npos);
}

TEST(CliRun, BatchStreamedAddsThePipelinedRow)
{
    std::ostringstream out, err;
    const int rc =
        run(parse({"batch", "--model", "rm1", "--max-bytes",
                   "2000000", "--batch-size", "4", "--requests", "80",
                   "--arrival-ms", "1.0", "--sla", "25", "--cores",
                   "2", "--max-requests", "4", "--linger-ms", "1.0",
                   "--streamed", "--gather-fraction", "0.4", "--seed",
                   "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("batch 4 @ 1.0ms"), std::string::npos);
    EXPECT_NE(s.find("streamed 4 g=0.40"), std::string::npos);

    // A malformed stage split is rejected up front.
    std::ostringstream o2, e2;
    EXPECT_NE(run(parse({"batch", "--streamed", "--gather-fraction",
                         "1.5"}),
                  o2, e2),
              0);
}

TEST(CliRun, SweepRejectsUnknownAxis)
{
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"sweep", "--vary", "moonphase"}), out, err),
              0);
}

TEST(CliRun, ChaosReplaysBaselineAndResilientPerScenario)
{
    std::ostringstream out, err;
    const int rc =
        run(parse({"chaos", "--model", "rm1", "--max-bytes",
                   "2000000", "--batch-size", "4", "--requests", "60",
                   "--arrival-ms", "1.0", "--sla", "25", "--cores",
                   "2", "--instances", "2", "--scenario",
                   "crash-storm", "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("chaos replay"), std::string::npos);
    EXPECT_NE(s.find("crash-storm"), std::string::npos);
    EXPECT_NE(s.find("baseline"), std::string::npos);
    EXPECT_NE(s.find("resilient"), std::string::npos);
    EXPECT_NE(s.find("compliant"), std::string::npos);
}

TEST(CliRun, ChaosRejectsBadOptions)
{
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"chaos", "--scenario", "meteor-strike"}),
                  out, err),
              0);
    EXPECT_NE(run(parse({"chaos", "--cores", "2", "--instances",
                         "3"}),
                  out, err),
              0);
    EXPECT_NE(run(parse({"chaos", "--requests", "0"}), out, err), 0);
    // Usage advertises the new subcommand.
    std::ostringstream uout, uerr;
    run(parse({"frobnicate"}), uout, uerr);
    EXPECT_NE(uerr.str().find("chaos"), std::string::npos);
}

TEST(CliRun, TenantsRunsAWeightedElasticFleetSession)
{
    std::ostringstream out, err;
    const int rc =
        run(parse({"tenants", "--tenants", "2", "--max-bytes",
                   "1000000", "--day-ms", "30", "--arrival-ms", "0.5",
                   "--cores", "4", "--instances", "2", "--weights",
                   "2,1", "--elastic", "--min-instances", "1",
                   "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("2 tenant(s)"), std::string::npos);
    EXPECT_NE(s.find("elastic"), std::string::npos);
    EXPECT_NE(s.find("w2.0"), std::string::npos);
    EXPECT_NE(s.find("accounting conserved"), std::string::npos);
}

TEST(CliRun, TenantsReplaysAChaosScenarioConserved)
{
    std::ostringstream out, err;
    const int rc =
        run(parse({"tenants", "--tenants", "2", "--max-bytes",
                   "1000000", "--day-ms", "30", "--arrival-ms", "0.5",
                   "--cores", "4", "--instances", "2", "--scenario",
                   "crash-storm", "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("accounting conserved"),
              std::string::npos);
}

TEST(CliRun, TenantsRejectsBadOptions)
{
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"tenants", "--tenants", "9"}), out, err), 0);
    EXPECT_NE(run(parse({"tenants", "--cores", "2", "--instances",
                         "4"}),
                  out, err),
              0);
    EXPECT_NE(run(parse({"tenants", "--tenants", "3", "--weights",
                         "1,2"}),
                  out, err),
              0);
    EXPECT_NE(run(parse({"tenants", "--day-ms", "0"}), out, err), 0);
    EXPECT_NE(run(parse({"tenants", "--scenario", "meteor-strike"}),
                  out, err),
              0);
    // Usage advertises the new subcommand.
    std::ostringstream uout, uerr;
    run(parse({"frobnicate"}), uout, uerr);
    EXPECT_NE(uerr.str().find("tenants"), std::string::npos);
}

TEST(CliRun, SnapshotSaveVerifyLoadRoundtrip)
{
    const std::string path = "/tmp/dlrmopt_cli_snapshot_test.snap";
    std::remove(path.c_str());

    std::ostringstream out, err;
    int rc = run(parse({"snapshot", "save", "--file", path.c_str(),
                        "--model", "rm1", "--max-bytes", "500000",
                        "--version", "7", "--seed", "9"}),
                 out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("v7 (seed 9)"), std::string::npos);
    EXPECT_NE(out.str().find("atomic"), std::string::npos);
    EXPECT_NE(out.str().find("digest"), std::string::npos);

    out.str("");
    rc = run(parse({"snapshot", "verify", "--file", path.c_str()}),
             out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("verify OK"), std::string::npos);
    EXPECT_NE(out.str().find("fp32"), std::string::npos);

    out.str("");
    rc = run(parse({"snapshot", "load", "--file", path.c_str()}),
             out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("reproduced bitwise"), std::string::npos);

    std::remove(path.c_str());
}

TEST(CliRun, SnapshotQuantizedRoundtripIsByteIdentical)
{
    const std::string path = "/tmp/dlrmopt_cli_snapshot_rt.snap";
    std::remove(path.c_str());
    std::ostringstream out, err;
    const int rc =
        run(parse({"snapshot", "roundtrip", "--file", path.c_str(),
                   "--model", "rm1", "--max-bytes", "500000",
                   "--dtype", "int8", "--version", "2"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("int8"), std::string::npos);
    EXPECT_NE(out.str().find("byte-identical"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliRun, SnapshotRejectsBadInvocations)
{
    std::ostringstream out, err;
    // No --file.
    EXPECT_NE(run(parse({"snapshot", "save"}), out, err), 0);
    // Unknown operation.
    EXPECT_NE(run(parse({"snapshot", "frobnicate", "--file",
                         "/tmp/x.snap"}),
                  out, err),
              0);
    // Verify of a file that does not exist reports an IoError.
    EXPECT_NE(run(parse({"snapshot", "verify", "--file",
                         "/tmp/dlrmopt_cli_no_such.snap"}),
                  out, err),
              0);
    EXPECT_NE(err.str().find("error:"), std::string::npos);
    // Usage advertises the subcommand.
    std::ostringstream uout, uerr;
    run(parse({""}), uout, uerr);
    EXPECT_NE(uerr.str().find("snapshot save|verify|load|roundtrip"),
              std::string::npos);
}


TEST(CliRun, CacheReportsPerClassHitRatesAndTotals)
{
    std::ostringstream out, err;
    const int rc =
        run(parse({"cache", "--model", "rm1", "--max-bytes",
                   "2000000", "--cache-budget", "262144",
                   "--batch-size", "4", "--warm-batches", "4",
                   "--batches", "6", "--seed", "3"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("tier budget"), std::string::npos);
    EXPECT_NE(s.find("class"), std::string::npos);
    EXPECT_NE(s.find("High"), std::string::npos);
    EXPECT_NE(s.find("Medium"), std::string::npos);
    EXPECT_NE(s.find("Low"), std::string::npos);
    EXPECT_NE(s.find("total: hit "), std::string::npos);
    EXPECT_NE(s.find("resident"), std::string::npos);
}

TEST(CliRun, CacheRunsAtEveryStoragePrecision)
{
    for (const char *dt : {"fp32", "bf16", "int8"}) {
        std::ostringstream out, err;
        const int rc = run(parse({"cache", "--model", "rm1",
                                  "--max-bytes", "2000000",
                                  "--cache-budget", "131072",
                                  "--batch-size", "4",
                                  "--warm-batches", "2", "--batches",
                                  "4", "--dtype", dt}),
                           out, err);
        EXPECT_EQ(rc, 0) << dt << ": " << err.str();
        EXPECT_NE(out.str().find(dt), std::string::npos) << dt;
    }
}

TEST(CliRun, CacheRejectsBadOptions)
{
    std::ostringstream out, err;
    EXPECT_NE(run(parse({"cache", "--batches", "0"}), out, err), 0);
    EXPECT_NE(
        run(parse({"cache", "--cache-min-accesses", "0"}), out, err),
        0);
    EXPECT_NE(run(parse({"cache", "--dtype", "fp64"}), out, err), 0);
}

TEST(CliRun, ServeAttachesAHotTierFromCacheBudget)
{
    std::ostringstream out, err;
    const int rc =
        run(parse({"serve", "--model", "rm1", "--max-bytes",
                   "2000000", "--batch-size", "4", "--requests", "40",
                   "--arrival-ms", "2.0", "--sla", "25", "--cores",
                   "2", "--cache-budget", "262144",
                   "--cache-epoch-lookups", "200",
                   "--cache-min-accesses", "1", "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("hot tier"), std::string::npos);
    EXPECT_NE(s.find("hit "), std::string::npos);
    EXPECT_NE(s.find("promoted"), std::string::npos);

    // Without the option the session reports no tier at all.
    std::ostringstream bare, err2;
    ASSERT_EQ(run(parse({"serve", "--model", "rm1", "--max-bytes",
                         "2000000", "--batch-size", "4", "--requests",
                         "20", "--arrival-ms", "2.0", "--cores", "2",
                         "--seed", "5"}),
                  bare, err2),
              0)
        << err2.str();
    EXPECT_EQ(bare.str().find("hot tier"), std::string::npos);
}

TEST(CliRun, BatchAttachesAHotTierFromCacheBudget)
{
    std::ostringstream out, err;
    const int rc =
        run(parse({"batch", "--model", "rm1", "--max-bytes",
                   "2000000", "--batch-size", "4", "--requests", "40",
                   "--arrival-ms", "1.0", "--sla", "25", "--cores",
                   "2", "--max-requests", "4", "--linger-ms", "1.0",
                   "--cache-budget", "262144",
                   "--cache-epoch-lookups", "200",
                   "--cache-min-accesses", "1", "--seed", "5"}),
            out, err);
    EXPECT_EQ(rc, 0) << err.str();
    const std::string s = out.str();
    EXPECT_NE(s.find("hot tier"), std::string::npos);
    EXPECT_NE(s.find("hit "), std::string::npos);
}

} // namespace
