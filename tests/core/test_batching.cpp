/**
 * @file
 * Tests for request coalescing: SparseBatch concatenation semantics
 * (offset rebasing, empty bags, single-request no-op view,
 * heterogeneous inputs), prediction splitting, and the preallocated
 * ForwardWorkspace — including the bitwise identity of a coalesced
 * forward against per-request forwards and the zero-reallocation
 * steady state.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/batching.hpp"
#include "core/dlrm.hpp"
#include "core/errors.hpp"
#include "core/simd.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using namespace dlrmopt::core;

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "batching_tiny";
    m.cls = ModelClass::RMC2;
    m.rows = 2048;
    m.dim = 16;
    m.tables = 3;
    m.lookups = 4;
    m.bottomMlp = {24, 16, 16};
    m.topMlp = {8, 1};
    return m;
}

/** Hand-built two-table batch; bag b of sample s holds given rows. */
SparseBatch
makeBatch(const std::vector<std::vector<std::vector<RowIndex>>>& bags)
{
    // bags[t][s] = lookups of sample s in table t.
    SparseBatch b;
    b.batchSize = bags.front().size();
    for (const auto& table : bags) {
        std::vector<RowIndex> idx;
        std::vector<RowIndex> off = {0};
        for (const auto& sample : table) {
            idx.insert(idx.end(), sample.begin(), sample.end());
            off.push_back(static_cast<RowIndex>(idx.size()));
        }
        b.indices.push_back(std::move(idx));
        b.offsets.push_back(std::move(off));
    }
    return b;
}

TEST(ConcatSparseBatches, RebasesOffsetsAcrossParts)
{
    const SparseBatch a = makeBatch({{{1, 2}, {3}}, {{4}, {5, 6}}});
    const SparseBatch b = makeBatch({{{7}}, {{8, 9}}});
    SparseBatch scratch;
    const SparseBatch& c = concatSparseBatches({&a, &b}, scratch);

    ASSERT_EQ(&c, &scratch);
    EXPECT_EQ(c.batchSize, 3u);
    ASSERT_EQ(c.numTables(), 2u);
    EXPECT_TRUE(c.valid(2048));

    const std::vector<RowIndex> idx0 = {1, 2, 3, 7};
    const std::vector<RowIndex> off0 = {0, 2, 3, 4};
    EXPECT_EQ(c.indices[0], idx0);
    EXPECT_EQ(c.offsets[0], off0);
    const std::vector<RowIndex> idx1 = {4, 5, 6, 8, 9};
    const std::vector<RowIndex> off1 = {0, 1, 3, 5};
    EXPECT_EQ(c.indices[1], idx1);
    EXPECT_EQ(c.offsets[1], off1);
}

TEST(ConcatSparseBatches, EmptyBagsSurviveCoalescing)
{
    // Sample 0 of table 0 has no lookups at all; the rebased offsets
    // must keep the empty bag empty rather than stealing from the
    // neighbour request.
    const SparseBatch a = makeBatch({{{}, {3}}, {{4}, {}}});
    const SparseBatch b = makeBatch({{{}}, {{8}}});
    SparseBatch scratch;
    const SparseBatch& c = concatSparseBatches({&a, &b}, scratch);

    EXPECT_EQ(c.batchSize, 3u);
    EXPECT_TRUE(c.valid(2048));
    const std::vector<RowIndex> off0 = {0, 0, 1, 1};
    EXPECT_EQ(c.offsets[0], off0);
    const std::vector<RowIndex> off1 = {0, 1, 1, 2};
    EXPECT_EQ(c.offsets[1], off1);
}

TEST(ConcatSparseBatches, SingleRequestIsANoOpView)
{
    const SparseBatch a = makeBatch({{{1}}, {{2}}});
    SparseBatch scratch;
    scratch.batchSize = 99; // sentinel: must stay untouched
    const SparseBatch& c = concatSparseBatches({&a}, scratch);
    EXPECT_EQ(&c, &a);
    EXPECT_EQ(scratch.batchSize, 99u);
}

TEST(ConcatSparseBatches, RejectsEmptyAndHeterogeneousInputs)
{
    SparseBatch scratch;
    EXPECT_THROW(concatSparseBatches({}, scratch), IndexError);

    const SparseBatch two = makeBatch({{{1}}, {{2}}});
    const SparseBatch one = makeBatch({{{1}}});
    EXPECT_THROW(concatSparseBatches({&two, &one}, scratch),
                 IndexError);
}

TEST(SplitPredictions, ViewsPartitionTheTensorAndRejectMismatch)
{
    Tensor pred(6, 1);
    for (std::size_t i = 0; i < 6; ++i)
        pred.at(i, 0) = static_cast<float>(i);

    std::vector<core::PredictionSpan> spans;
    splitPredictions(pred, {2, 3, 1}, spans);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].data, pred.data());
    EXPECT_EQ(spans[0].batch, 2u);
    EXPECT_EQ(spans[1].data, pred.data() + 2);
    EXPECT_EQ(spans[1].batch, 3u);
    EXPECT_EQ(spans[2].data, pred.data() + 5);
    EXPECT_EQ(spans[2].batch, 1u);

    EXPECT_THROW(splitPredictions(pred, {2, 3}, spans), IndexError);
}

class ForwardWorkspaceTest : public ::testing::Test
{
  protected:
    ForwardWorkspaceTest() : model(tinyModel(), 17)
    {
        traces::TraceConfig tc = traces::TraceConfig::forModel(
            tinyModel(), traces::Hotness::Medium, 7);
        tc.batchSize = 8;
        traces::TraceGenerator gen(tc);
        // Three members with heterogeneous batch sizes.
        parts.push_back(gen.batch(0).truncated(3));
        parts.push_back(gen.batch(1).truncated(8));
        parts.push_back(gen.batch(2).truncated(5));
        for (std::size_t i = 0; i < parts.size(); ++i) {
            Tensor d(parts[i].batchSize, tinyModel().denseDim());
            d.randomize(100 + i);
            dense.push_back(std::move(d));
        }
    }

    std::vector<const SparseBatch *>
    partPtrs() const
    {
        std::vector<const SparseBatch *> p;
        for (const auto& b : parts)
            p.push_back(&b);
        return p;
    }

    std::vector<const Tensor *>
    densePtrs() const
    {
        std::vector<const Tensor *> p;
        for (const auto& d : dense)
            p.push_back(&d);
        return p;
    }

    DlrmModel model;
    std::vector<SparseBatch> parts;
    std::vector<Tensor> dense;
};

TEST_F(ForwardWorkspaceTest, CoalescedForwardIsBitwiseIdentical)
{
    ForwardWorkspace ws;
    ws.reserve(model, 16, tinyModel().lookups);

    const SparseBatch& merged =
        ws.coalesce(partPtrs(), densePtrs());
    EXPECT_EQ(merged.batchSize, 16u);
    const Tensor& pred =
        ws.forward(model, ws.stagedDense(), merged);

    std::vector<std::size_t> sizes;
    for (const auto& b : parts)
        sizes.push_back(b.batchSize);
    std::vector<core::PredictionSpan> spans;
    splitPredictions(pred, sizes, spans);

    // Reference: each member forwarded alone through the stock path.
    DlrmWorkspace ref;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        model.forward(dense[i], parts[i], ref);
        ASSERT_EQ(ref.pred.rows(), spans[i].batch);
        EXPECT_EQ(std::memcmp(spans[i].data, ref.pred.data(),
                              spans[i].batch * sizeof(float)),
                  0)
            << "member " << i << " diverged";
    }
}

TEST_F(ForwardWorkspaceTest, SingleMemberForwardMatchesStockPath)
{
    ForwardWorkspace ws;
    ws.reserve(model, 8, tinyModel().lookups);
    const SparseBatch& merged =
        ws.coalesce({&parts[1]}, {&dense[1]});
    EXPECT_EQ(&merged, &parts[1]);
    const Tensor& pred = ws.forward(model, ws.stagedDense(), merged);

    DlrmWorkspace ref;
    model.forward(dense[1], parts[1], ref);
    ASSERT_EQ(pred.rows(), ref.pred.rows());
    EXPECT_EQ(std::memcmp(pred.data(), ref.pred.data(),
                          pred.size() * sizeof(float)),
              0);
}

TEST_F(ForwardWorkspaceTest, SteadyStateReallocatesNothing)
{
    ForwardWorkspace ws;
    ws.reserve(model, 16, tinyModel().lookups);

    // Warm-up at full size, then capture the backing stores.
    ws.forward(model, ws.stagedDense(),
               ws.coalesce(partPtrs(), densePtrs()));
    const std::size_t fp = ws.bufferFingerprint();

    // Every smaller coalescing pattern must reuse the same storage.
    const auto p = partPtrs();
    const auto d = densePtrs();
    for (int rep = 0; rep < 3; ++rep) {
        ws.forward(model, ws.stagedDense(),
                   ws.coalesce({p[0], p[2]}, {d[0], d[2]}));
        EXPECT_EQ(ws.bufferFingerprint(), fp);
        ws.forward(model, ws.stagedDense(),
                   ws.coalesce(p, d));
        EXPECT_EQ(ws.bufferFingerprint(), fp);
    }
}

TEST_F(ForwardWorkspaceTest, ReserveRejectsZeroBatch)
{
    ForwardWorkspace ws;
    EXPECT_THROW(ws.reserve(model, 0, 4), std::invalid_argument);
}

/** Restores the forced SIMD dispatch level on scope exit. */
struct SimdLevelGuard
{
    SimdLevel saved = currentSimdLevel();
    ~SimdLevelGuard() { setSimdLevel(saved); }
};

TEST_F(ForwardWorkspaceTest, PipelinedForwardIsBitwiseIdentical)
{
    // Software-pipelined schedule — gather k+1 issued before compute
    // k, exactly how the streaming dispatcher interleaves the two
    // stages — must produce predictions bitwise-equal to the
    // sequential forward() path for every dispatch, at every SIMD
    // level, for members at every batch position.
    SimdLevelGuard guard;
    const std::vector<std::vector<std::size_t>> dispatches = {
        {0}, {1, 2}, {0, 1, 2}, {2}, {2, 0}};

    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512}) {
        setSimdLevel(level);
        ForwardWorkspace pipe, seq;
        pipe.reserve(model, 16, tinyModel().lookups);
        seq.reserve(model, 16, tinyModel().lookups);

        std::vector<std::size_t> sets(dispatches.size());
        const auto gatherOf = [&](std::size_t k) {
            std::vector<const SparseBatch *> p;
            std::vector<const Tensor *> d;
            for (const std::size_t m : dispatches[k]) {
                p.push_back(&parts[m]);
                d.push_back(&dense[m]);
            }
            sets[k] = pipe.stageGather(model, p, d);
        };

        gatherOf(0);
        for (std::size_t k = 0; k < dispatches.size(); ++k) {
            if (k + 1 < dispatches.size())
                gatherOf(k + 1);
            const Tensor& pred = pipe.stageCompute(model, sets[k]);
            EXPECT_EQ(sets[k], k % ForwardWorkspace::numSets);
            EXPECT_EQ(&pred, &pipe.predictions());

            // Sequential reference over the same coalesced group.
            std::vector<const SparseBatch *> p;
            std::vector<const Tensor *> d;
            std::vector<std::size_t> sizes;
            for (const std::size_t m : dispatches[k]) {
                p.push_back(&parts[m]);
                d.push_back(&dense[m]);
                sizes.push_back(parts[m].batchSize);
            }
            const SparseBatch& merged = seq.coalesce(p, d);
            const Tensor& want =
                seq.forward(model, seq.stagedDense(), merged);
            ASSERT_EQ(pred.rows(), want.rows());
            EXPECT_EQ(std::memcmp(pred.data(), want.data(),
                                  pred.rows() * sizeof(float)),
                      0)
                << "dispatch " << k << " level "
                << static_cast<int>(level);

            // And per member against the stock path (batch-position
            // independence survives the pipeline).
            std::vector<core::PredictionSpan> spans;
            splitPredictions(pred, sizes, spans);
            DlrmWorkspace ref;
            for (std::size_t i = 0; i < spans.size(); ++i) {
                const std::size_t m = dispatches[k][i];
                model.forward(dense[m], parts[m], ref);
                EXPECT_EQ(std::memcmp(spans[i].data, ref.pred.data(),
                                      spans[i].batch * sizeof(float)),
                          0)
                    << "dispatch " << k << " member " << m;
            }
        }
    }
}

TEST_F(ForwardWorkspaceTest, PipelineSteadyStateReallocatesNothing)
{
    ForwardWorkspace ws;
    ws.reserve(model, 16, tinyModel().lookups);
    const std::size_t fp = ws.bufferFingerprint();

    // Rotating gather/compute across both sets — full-size, small,
    // and single-member dispatches alike — must never reallocate a
    // backing store in either set.
    const auto p = partPtrs();
    const auto d = densePtrs();
    for (int rep = 0; rep < 4; ++rep) {
        const std::size_t s0 = ws.stageGather(model, p, d);
        const std::size_t s1 =
            ws.stageGather(model, {p[0]}, {d[0]});
        EXPECT_NE(s0, s1);
        ws.stageCompute(model, s0);
        EXPECT_EQ(ws.bufferFingerprint(), fp);
        ws.stageCompute(model, s1);
        EXPECT_EQ(ws.bufferFingerprint(), fp);
    }

    // Mixing in the sequential path keeps the same storage too.
    const SparseBatch& merged = ws.coalesce(p, d);
    ws.forward(model, ws.stagedDense(), merged);
    EXPECT_EQ(ws.bufferFingerprint(), fp);
}

TEST_F(ForwardWorkspaceTest, RotationAlternatesAndResets)
{
    ForwardWorkspace ws;
    ws.reserve(model, 16, tinyModel().lookups);
    EXPECT_EQ(ws.stageGather(model, {&parts[0]}, {&dense[0]}), 0u);
    EXPECT_EQ(ws.stageGather(model, {&parts[1]}, {&dense[1]}), 1u);
    EXPECT_EQ(ws.stageGather(model, {&parts[2]}, {&dense[2]}), 0u);
    ws.resetRotation();
    EXPECT_EQ(ws.stageGather(model, {&parts[0]}, {&dense[0]}), 0u);
}

} // namespace
