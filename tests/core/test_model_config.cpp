/**
 * @file
 * Tests that the model presets reproduce Table 2 of the paper and
 * that the SLA targets match Table 1.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/model_config.hpp"

namespace
{

using namespace dlrmopt::core;

TEST(ModelConfig, Rm2_1MatchesTable2)
{
    const ModelConfig m = rm2_1();
    EXPECT_EQ(m.rows, 1'000'000u);
    EXPECT_EQ(m.dim, 128u);
    EXPECT_EQ(m.tables, 60u);
    EXPECT_EQ(m.lookups, 120u);
    EXPECT_EQ(m.bottomMlp, (std::vector<std::size_t>{256, 128, 128}));
    EXPECT_EQ(m.topMlp, (std::vector<std::size_t>{128, 64, 1}));
    EXPECT_EQ(m.cls, ModelClass::RMC2);
    // Per-table capacity 488.3 MB (Table 2).
    EXPECT_NEAR(m.tableBytes() / (1024.0 * 1024.0), 488.3, 0.1);
    // Total 28.6 GB (Table 2).
    EXPECT_NEAR(m.embeddingBytes() / (1024.0 * 1024.0 * 1024.0), 28.6,
                0.1);
}

TEST(ModelConfig, Rm2_2MatchesTable2)
{
    const ModelConfig m = rm2_2();
    EXPECT_EQ(m.tables, 120u);
    EXPECT_EQ(m.lookups, 150u);
    EXPECT_EQ(m.bottomMlp,
              (std::vector<std::size_t>{1024, 512, 128, 128}));
    EXPECT_NEAR(m.embeddingBytes() / (1024.0 * 1024.0 * 1024.0), 57.2,
                0.1);
}

TEST(ModelConfig, Rm2_3MatchesTable2)
{
    const ModelConfig m = rm2_3();
    EXPECT_EQ(m.tables, 170u);
    EXPECT_EQ(m.lookups, 180u);
    EXPECT_NEAR(m.embeddingBytes() / (1024.0 * 1024.0 * 1024.0), 81.1,
                0.1);
}

TEST(ModelConfig, Rm1MatchesTable2)
{
    const ModelConfig m = rm1();
    EXPECT_EQ(m.rows, 500'000u);
    EXPECT_EQ(m.dim, 64u);
    EXPECT_EQ(m.tables, 32u);
    EXPECT_EQ(m.lookups, 80u);
    EXPECT_EQ(m.cls, ModelClass::RMC1);
    // Per-table capacity 122.0 MB (Table 2).
    EXPECT_NEAR(m.tableBytes() / (1024.0 * 1024.0), 122.0, 0.1);
    EXPECT_NEAR(m.embeddingBytes() / (1024.0 * 1024.0 * 1024.0), 3.8,
                0.1);
}

TEST(ModelConfig, SlaTargetsMatchTable1)
{
    EXPECT_DOUBLE_EQ(slaTargetMs(ModelClass::RMC1), 100.0);
    EXPECT_DOUBLE_EQ(slaTargetMs(ModelClass::RMC2), 400.0);
    EXPECT_DOUBLE_EQ(slaTargetMs(ModelClass::RMC3), 100.0);
    EXPECT_DOUBLE_EQ(rm2_3().slaMs(), 400.0);
    EXPECT_DOUBLE_EQ(rm1().slaMs(), 100.0);
}

TEST(ModelConfig, BottomMlpEndsAtEmbeddingDim)
{
    for (const auto& m : allModels())
        EXPECT_EQ(m.bottomMlp.back(), m.dim) << m.name;
}

TEST(ModelConfig, TopMlpDimsDerivedFromInteraction)
{
    const ModelConfig m = rm2_1();
    const auto dims = m.topMlpDims();
    EXPECT_EQ(dims.front(), 1958u); // 128 + 60*61/2
    EXPECT_EQ(dims.back(), 1u);
    EXPECT_EQ(dims.size(), m.topMlp.size() + 1);
}

TEST(ModelConfig, LookupByName)
{
    EXPECT_EQ(modelByName("rm2_2").tables, 120u);
    EXPECT_THROW(modelByName("nope"), std::out_of_range);
}

TEST(ModelConfig, AllModelsInPaperOrder)
{
    const auto& ms = allModels();
    ASSERT_EQ(ms.size(), 4u);
    EXPECT_EQ(ms[0].name, "rm2_1");
    EXPECT_EQ(ms[1].name, "rm2_2");
    EXPECT_EQ(ms[2].name, "rm2_3");
    EXPECT_EQ(ms[3].name, "rm1");
}

TEST(ModelConfig, ScaledToFitShrinksBelowBudget)
{
    const double budget = 512.0 * 1024 * 1024; // 512 MB
    const ModelConfig m = rm2_1().scaledToFit(budget);
    EXPECT_LE(m.embeddingBytes(), budget);
    EXPECT_EQ(m.dim, rm2_1().dim);       // dim preserved
    EXPECT_EQ(m.lookups, rm2_1().lookups); // lookup structure preserved
    EXPECT_NE(m.name, rm2_1().name);
}

TEST(ModelConfig, ScaledToFitNoopWhenSmallEnough)
{
    const ModelConfig m = rm1().scaledToFit(1e12);
    EXPECT_EQ(m.name, "rm1");
    EXPECT_EQ(m.rows, rm1().rows);
}

} // namespace
