/**
 * @file
 * Tests for the reduced-precision storage path: bf16/int8 conversion
 * helpers, fused-dequant embedding bags, the u8·s8 packed GEMM, and
 * end-to-end accuracy budgets of quantized forwards against fp32.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/dlrm.hpp"
#include "core/embedding.hpp"
#include "core/embedding_store.hpp"
#include "core/errors.hpp"
#include "core/gemm.hpp"
#include "core/quant.hpp"
#include "core/simd.hpp"

namespace
{

using namespace dlrmopt::core;
using dlrmopt::RowIndex;

constexpr SimdLevel kLevels[] = {SimdLevel::Scalar, SimdLevel::Avx2,
                                 SimdLevel::Avx512};

/** Restores the process-wide dispatch level on scope exit. */
struct LevelGuard
{
    SimdLevel saved;
    LevelGuard() : saved(currentSimdLevel()) {}
    ~LevelGuard() { setSimdLevel(saved); }
};

bool
bitwiseEqual(const std::vector<float>& a, const std::vector<float>& b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

float
maxAbsDiff(const float *a, const float *b, std::size_t n)
{
    float m = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

/** Bag inputs with varied bag lengths, including an empty bag. */
struct BagInputs
{
    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets{0};
    std::size_t samples = 0;

    BagInputs(std::size_t rows, std::size_t samples_,
              std::uint64_t seed)
        : samples(samples_)
    {
        for (std::size_t s = 0; s < samples; ++s) {
            const std::size_t len = s == 1 ? 0 : 1 + (s * 3) % 7;
            for (std::size_t l = 0; l < len; ++l) {
                indices.push_back(static_cast<RowIndex>(
                    dlrmopt::mix64(seed + s * 131 + l) % rows));
            }
            offsets.push_back(
                static_cast<RowIndex>(indices.size()));
        }
    }
};

TEST(QuantHelpers, Bf16RoundTripIsExactWidening)
{
    for (float v : {0.0f, -0.0f, 1.0f, -2.5f, 3.14159e-3f, 1e30f}) {
        const float w = bf16ToFp32(fp32ToBf16(v));
        // Truncation loses low mantissa bits but widening the stored
        // pattern is exact: re-truncating changes nothing.
        EXPECT_EQ(fp32ToBf16(w), fp32ToBf16(v));
        EXPECT_LE(std::fabs(w - v), std::fabs(v) * 0.008f);
    }
    EXPECT_THROW(parseEmbDtype("fp64"), std::invalid_argument);
    EXPECT_EQ(parseEmbDtype("bf16"), EmbDtype::Bf16);
    EXPECT_EQ(embDtypeName(EmbDtype::Int8), "int8");
    EXPECT_EQ(embDtypeBits(EmbDtype::Bf16), 16u);
}

TEST(QuantHelpers, Int8BlockQuantizationBoundsTheError)
{
    std::vector<float> src(37);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = std::sin(static_cast<float>(i)) * 3.0f - 1.0f;
    std::vector<std::uint8_t> codes(src.size());
    const QuantParams qp =
        quantizeBlockInt8(src.data(), src.size(), codes.data());
    for (std::size_t i = 0; i < src.size(); ++i) {
        const float deq =
            static_cast<float>(codes[i]) * qp.scale + qp.bias;
        EXPECT_LE(std::fabs(deq - src[i]), qp.scale * 0.51f) << i;
    }

    // A constant block dequantizes exactly.
    std::fill(src.begin(), src.end(), 0.75f);
    const QuantParams flat =
        quantizeBlockInt8(src.data(), src.size(), codes.data());
    EXPECT_EQ(codes[0], 0);
    EXPECT_FLOAT_EQ(static_cast<float>(codes[5]) * flat.scale +
                        flat.bias,
                    0.75f);
}

TEST(QuantEmbedding, QuantizedStorageShrinksStoredBytes)
{
    const EmbeddingTable f(256, 32, 7, EmbDtype::Fp32);
    const EmbeddingTable h(256, 32, 7, EmbDtype::Bf16);
    const EmbeddingTable q(256, 32, 7, EmbDtype::Int8);
    EXPECT_EQ(h.bytes() * 2, f.bytes());
    EXPECT_EQ(q.bytes(), f.bytes() / 4 + 256 * 2 * sizeof(float));
}

TEST(QuantEmbedding, FusedBagsAreBitwiseInvariantAcrossLevels)
{
    LevelGuard guard;
    for (const EmbDtype dtype : {EmbDtype::Bf16, EmbDtype::Int8}) {
        const EmbeddingTable t(512, 32, 11, dtype);
        const BagInputs in(512, 7, 23);
        std::vector<float> ref(in.samples * t.dim());
        t.bagRef(in.indices.data(), in.offsets.data(), in.samples,
                 ref.data());

        for (const SimdLevel lvl : kLevels) {
            setSimdLevel(lvl);
            std::vector<float> out(ref.size(), -1.0f);
            t.bag(in.indices.data(), in.offsets.data(), in.samples,
                  out.data());
            EXPECT_TRUE(bitwiseEqual(out, ref))
                << embDtypeName(dtype) << " @ " << simdLevelName(lvl);

            // Prefetching must never change the arithmetic.
            std::vector<float> pf_out(ref.size(), -2.0f);
            t.bag(in.indices.data(), in.offsets.data(), in.samples,
                  pf_out.data(), PrefetchSpec::paperDefault());
            EXPECT_TRUE(bitwiseEqual(pf_out, ref))
                << embDtypeName(dtype) << " pf @ "
                << simdLevelName(lvl);
        }
    }
}

TEST(QuantEmbedding, DegenerateShapesStayBitwiseInvariant)
{
    LevelGuard guard;
    for (const EmbDtype dtype : {EmbDtype::Bf16, EmbDtype::Int8}) {
        // dim 19: not a multiple of any vector width, so every level
        // exercises its scalar-mirror tail.
        {
            const EmbeddingTable t(64, 19, 3, dtype);
            const BagInputs in(64, 5, 17);
            std::vector<float> ref(in.samples * t.dim());
            t.bagRef(in.indices.data(), in.offsets.data(), in.samples,
                     ref.data());
            // The empty bag (sample 1) pools to exact zeros.
            for (std::size_t d = 0; d < t.dim(); ++d)
                EXPECT_EQ(ref[1 * t.dim() + d], 0.0f);
            for (const SimdLevel lvl : kLevels) {
                setSimdLevel(lvl);
                std::vector<float> out(ref.size(), -1.0f);
                t.bag(in.indices.data(), in.offsets.data(),
                      in.samples, out.data());
                EXPECT_TRUE(bitwiseEqual(out, ref))
                    << embDtypeName(dtype) << " dim 19 @ "
                    << simdLevelName(lvl);
            }
        }
        // Single-row table: every lookup hits row 0.
        {
            const EmbeddingTable t(1, 8, 5, dtype);
            const std::vector<RowIndex> idx(6, 0);
            const std::vector<RowIndex> off = {0, 3, 3, 6};
            std::vector<float> ref(3 * t.dim());
            t.bagRef(idx.data(), off.data(), 3, ref.data());
            for (const SimdLevel lvl : kLevels) {
                setSimdLevel(lvl);
                std::vector<float> out(ref.size(), -1.0f);
                t.bag(idx.data(), off.data(), 3, out.data());
                EXPECT_TRUE(bitwiseEqual(out, ref))
                    << embDtypeName(dtype) << " 1-row @ "
                    << simdLevelName(lvl);
            }
        }
    }
}

TEST(QuantEmbedding, SingleLookupBagEqualsDequantRow)
{
    for (const EmbDtype dtype :
         {EmbDtype::Fp32, EmbDtype::Bf16, EmbDtype::Int8}) {
        const EmbeddingTable t(128, 24, 9, dtype);
        const RowIndex idx[] = {77};
        const RowIndex off[] = {0, 1};
        std::vector<float> bag(t.dim());
        t.bag(idx, off, 1, bag.data());
        std::vector<float> row(t.dim());
        t.dequantRow(77, row.data());
        // A one-lookup bag accumulates the dequantized row onto
        // zeros: x + 0 is exact, so the results match bitwise.
        EXPECT_TRUE(bitwiseEqual(bag, row)) << embDtypeName(dtype);
    }
}

TEST(QuantEmbedding, QuantizedBagsKeepBoundsChecks)
{
    for (const EmbDtype dtype : {EmbDtype::Bf16, EmbDtype::Int8}) {
        const EmbeddingTable t(32, 8, 1, dtype);
        const RowIndex idx[] = {5, 32}; // 32 is out of range
        const RowIndex off[] = {0, 2};
        std::vector<float> out(t.dim());
        EXPECT_THROW(t.bag(idx, off, 1, out.data()), IndexError)
            << embDtypeName(dtype);
    }
}

TEST(QuantEmbedding, AccuracyOfQuantizedRowsAgainstFp32)
{
    const std::size_t rows = 256, dim = 32;
    const EmbeddingTable f(rows, dim, 21, EmbDtype::Fp32);
    const EmbeddingTable h(rows, dim, 21, EmbDtype::Bf16);
    const EmbeddingTable q(rows, dim, 21, EmbDtype::Int8);
    std::vector<float> rf(dim), rq(dim);
    float fmax = 0.0f, herr = 0.0f, qerr = 0.0f;
    for (std::size_t r = 0; r < rows; ++r) {
        f.dequantRow(r, rf.data());
        for (float v : rf)
            fmax = std::max(fmax, std::fabs(v));
        h.dequantRow(r, rq.data());
        herr = std::max(herr, maxAbsDiff(rf.data(), rq.data(), dim));
        q.dequantRow(r, rq.data());
        qerr = std::max(qerr, maxAbsDiff(rf.data(), rq.data(), dim));
    }
    ASSERT_GT(fmax, 0.0f);
    // bf16 keeps 8 mantissa bits (~0.4% relative); int8 spends 8 bits
    // across the row's range (~0.2% of range per step).
    EXPECT_LE(herr, fmax * 0.008f);
    EXPECT_LE(qerr, fmax * 0.01f);
}

TEST(QuantIntegrity, FlipBitIsDetectedAndRepairedPerDtype)
{
    ModelConfig cfg;
    cfg.name = "quant-integrity";
    cfg.cls = ModelClass::RMC2;
    cfg.rows = 96;
    cfg.dim = 16;
    cfg.tables = 2;
    cfg.lookups = 4;
    cfg.bottomMlp = {8, 16};
    cfg.topMlp = {4, 1};

    for (const EmbDtype dtype :
         {EmbDtype::Fp32, EmbDtype::Bf16, EmbDtype::Int8}) {
        auto store = EmbeddingStore::createMutable(cfg, 5, 32, dtype);
        ASSERT_EQ(store->dtype(), dtype);
        ASSERT_TRUE(store->findCorruptBlocks().empty())
            << embDtypeName(dtype);

        // Payload upset in (table 1, row 40) -> block 1.
        store->flipBit(1, 40, 3);
        EXPECT_FALSE(store->verifyBlock(1, 1)) << embDtypeName(dtype);
        EXPECT_TRUE(store->verifyBlock(1, 0));
        const auto corrupt = store->findCorruptBlocks();
        ASSERT_EQ(corrupt.size(), 1u) << embDtypeName(dtype);
        EXPECT_EQ(corrupt[0], (BlockRef{1, 1}));

        store->repairBlock(1, 1);
        EXPECT_TRUE(store->findCorruptBlocks().empty())
            << embDtypeName(dtype);
    }
}

TEST(QuantIntegrity, Int8MetadataFlipsAreDetectedToo)
{
    const std::size_t dim = 16;
    ModelConfig cfg;
    cfg.name = "quant-meta";
    cfg.cls = ModelClass::RMC2;
    cfg.rows = 64;
    cfg.dim = dim;
    cfg.tables = 1;
    cfg.lookups = 2;
    cfg.bottomMlp = {8, dim};
    cfg.topMlp = {4, 1};
    auto store = EmbeddingStore::createMutable(cfg, 9, 64,
                                               EmbDtype::Int8);

    // Bits past the code payload land in the row's scale, then bias.
    EXPECT_EQ(store->table(0).payloadBits(), dim * 8 + 64);
    store->flipBit(0, 10, dim * 8 + 7); // scale mantissa bit
    EXPECT_FALSE(store->verifyBlock(0, 0));
    store->repairBlock(0, 0);
    EXPECT_TRUE(store->verifyBlock(0, 0));

    store->flipBit(0, 10, dim * 8 + 32 + 1); // bias bit
    EXPECT_FALSE(store->verifyBlock(0, 0));
    store->repairBlock(0, 0);
    EXPECT_TRUE(store->verifyBlock(0, 0));

    EXPECT_THROW(store->flipBit(0, 10, dim * 8 + 64),
                 std::invalid_argument);
}

TEST(QuantGemm, Int8PackedGemmBitwiseInvariantAcrossLevelsAndTiles)
{
    // Awkward shape on purpose: odd depth (pads to even), out_dim not
    // a multiple of the panel width, batch not a multiple of any mr.
    const std::size_t batch = 5, in_dim = 19, out_dim = 21;
    std::vector<float> in(batch * in_dim), w(out_dim * in_dim),
        bias(out_dim);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = std::sin(static_cast<float>(i) * 0.7f);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = std::cos(static_cast<float>(i) * 0.3f) * 0.5f;
    for (std::size_t i = 0; i < bias.size(); ++i)
        bias[i] = 0.01f * static_cast<float>(i) - 0.1f;

    const PackedWeightsInt8 pack(w.data(), in_dim, out_dim);
    EXPECT_EQ(pack.paddedK(), 20u);
    std::vector<std::uint8_t> qin(batch * pack.paddedK());
    const QuantParams qp = quantizeActivationsInt8(
        in.data(), batch, in_dim, pack.paddedK(), qin.data());

    std::vector<float> ref(batch * out_dim, -7.0f);
    denseLayerForwardPackedInt8Level(SimdLevel::Scalar, qin.data(),
                                     batch, pack, bias.data(),
                                     ref.data(), true, qp.scale,
                                     qp.bias);

    for (const SimdLevel lvl : kLevels) {
        for (const std::size_t mr : {std::size_t(1), std::size_t(2),
                                     std::size_t(4), std::size_t(6)}) {
            std::vector<float> out(ref.size(), -3.0f);
            denseLayerForwardPackedInt8Level(
                lvl, qin.data(), batch, pack, bias.data(), out.data(),
                true, qp.scale, qp.bias, GemmTile{mr, 0});
            EXPECT_TRUE(bitwiseEqual(out, ref))
                << simdLevelName(lvl) << " mr " << mr;
        }
    }
}

TEST(QuantGemm, Int8GemmIsBatchPositionInvariant)
{
    // Identical samples must produce bitwise-identical output rows
    // regardless of their position in the batch or the tile in use.
    const std::size_t batch = 7, in_dim = 24, out_dim = 16;
    std::vector<float> in(batch * in_dim), w(out_dim * in_dim);
    for (std::size_t i = 0; i < in_dim; ++i)
        in[i] = std::sin(static_cast<float>(i));
    for (std::size_t b = 1; b < batch; ++b)
        std::memcpy(in.data() + b * in_dim, in.data(),
                    in_dim * sizeof(float));
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = std::cos(static_cast<float>(i) * 0.11f);

    const PackedWeightsInt8 pack(w.data(), in_dim, out_dim);
    std::vector<std::uint8_t> qin(batch * pack.paddedK());
    const QuantParams qp = quantizeActivationsInt8(
        in.data(), batch, in_dim, pack.paddedK(), qin.data());
    std::vector<float> out(batch * out_dim);
    denseLayerForwardPackedInt8(qin.data(), batch, pack, nullptr,
                                out.data(), false, qp.scale, qp.bias);
    for (std::size_t b = 1; b < batch; ++b) {
        EXPECT_EQ(std::memcmp(out.data(), out.data() + b * out_dim,
                              out_dim * sizeof(float)),
                  0)
            << "row " << b;
    }
}

TEST(QuantGemm, Int8GemmTracksTheFp32ReferenceWithinBudget)
{
    const std::size_t batch = 6, in_dim = 32, out_dim = 24;
    std::vector<float> in(batch * in_dim), w(out_dim * in_dim),
        bias(out_dim);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = std::sin(static_cast<float>(i) * 1.3f);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = std::cos(static_cast<float>(i) * 0.7f) * 0.25f;
    for (std::size_t i = 0; i < bias.size(); ++i)
        bias[i] = 0.05f * static_cast<float>(i % 5);

    std::vector<float> ref(batch * out_dim);
    denseLayerForwardRef(in.data(), batch, in_dim, w.data(),
                         bias.data(), out_dim, ref.data(), true);

    const PackedWeightsInt8 pack(w.data(), in_dim, out_dim);
    std::vector<std::uint8_t> qscratch;
    std::vector<float> out(batch * out_dim);
    denseLayerForwardInt8(in.data(), batch, pack, bias.data(),
                          out.data(), true, qscratch);

    float ref_max = 0.0f;
    for (float v : ref)
        ref_max = std::max(ref_max, std::fabs(v));
    EXPECT_LE(maxAbsDiff(out.data(), ref.data(), out.size()),
              std::max(1.0f, ref_max) * 0.05f);
}

/** A small but structurally faithful model for accuracy tests. */
ModelConfig
quantModel(std::size_t dim = 16)
{
    ModelConfig m;
    m.name = "quant-acc";
    m.cls = ModelClass::RMC2;
    m.rows = 512;
    m.dim = dim;
    m.tables = 3;
    m.lookups = 4;
    m.bottomMlp = {24, 16, dim};
    m.topMlp = {8, 1};
    return m;
}

SparseBatch
makeBatch(const ModelConfig& m, std::size_t batch, std::uint64_t seed,
          bool with_empty_bags = false)
{
    SparseBatch b;
    b.batchSize = batch;
    b.indices.resize(m.tables);
    b.offsets.resize(m.tables);
    for (std::size_t t = 0; t < m.tables; ++t) {
        b.offsets[t].push_back(0);
        for (std::size_t s = 0; s < batch; ++s) {
            const std::size_t len =
                with_empty_bags && (s + t) % 3 == 0 ? 0 : m.lookups;
            for (std::size_t l = 0; l < len; ++l) {
                b.indices[t].push_back(static_cast<RowIndex>(
                    dlrmopt::mix64(seed + t * 1000 + s * 31 + l) %
                    m.rows));
            }
            b.offsets[t].push_back(
                static_cast<RowIndex>(b.indices[t].size()));
        }
    }
    return b;
}

TEST(QuantAccuracy, PredictionBudgetsHoldAcrossBatchesAndLevels)
{
    LevelGuard guard;
    const ModelConfig cfg = quantModel();
    DlrmModel model(cfg, 42);
    model.attachQuantizedStore(
        EmbeddingStore::create(cfg, 42, 256, EmbDtype::Bf16));
    model.attachQuantizedStore(
        EmbeddingStore::create(cfg, 42, 256, EmbDtype::Int8));

    for (const std::size_t batch :
         {std::size_t(1), std::size_t(5), std::size_t(64)}) {
        const SparseBatch sparse = makeBatch(cfg, batch, 7);
        Tensor dense(batch, cfg.denseDim());
        dense.randomize(13);

        for (const SimdLevel lvl : kLevels) {
            setSimdLevel(lvl);
            DlrmWorkspace ws;
            model.forward(dense, sparse, ws);
            Tensor fp32_pred = ws.pred; // copy

            model.forward(dense, sparse, ws, {}, EmbDtype::Bf16);
            const float bf16_err = maxAbsDiff(
                fp32_pred.data(), ws.pred.data(), batch);
            EXPECT_LE(bf16_err, 0.03f)
                << "bf16 batch " << batch << " @ "
                << simdLevelName(lvl);

            model.forward(dense, sparse, ws, {}, EmbDtype::Int8);
            const float int8_err = maxAbsDiff(
                fp32_pred.data(), ws.pred.data(), batch);
            EXPECT_LE(int8_err, 0.08f)
                << "int8 batch " << batch << " @ "
                << simdLevelName(lvl);
        }
    }
}

TEST(QuantAccuracy, OddDimAndEmptyBagsStayWithinBudget)
{
    // dim 19 forces scalar-mirror tails through the whole stack, and
    // a third of the bags are empty (pool to zeros at every dtype).
    const ModelConfig cfg = quantModel(19);
    DlrmModel model(cfg, 11);
    model.attachQuantizedStore(
        EmbeddingStore::create(cfg, 11, 256, EmbDtype::Bf16));
    model.attachQuantizedStore(
        EmbeddingStore::create(cfg, 11, 256, EmbDtype::Int8));

    const std::size_t batch = 9;
    const SparseBatch sparse = makeBatch(cfg, batch, 3, true);
    Tensor dense(batch, cfg.denseDim());
    dense.randomize(5);

    DlrmWorkspace ws;
    model.forward(dense, sparse, ws);
    Tensor fp32_pred = ws.pred;

    model.forward(dense, sparse, ws, {}, EmbDtype::Bf16);
    EXPECT_LE(maxAbsDiff(fp32_pred.data(), ws.pred.data(), batch),
              0.03f);
    model.forward(dense, sparse, ws, {}, EmbDtype::Int8);
    EXPECT_LE(maxAbsDiff(fp32_pred.data(), ws.pred.data(), batch),
              0.08f);
}

TEST(QuantAccuracy, QuantizedEmbeddingStageIsBitwiseAcrossLevels)
{
    // The model-level probe of the kernel invariance contract: the
    // pooled embedding stage (the part that actually reads quantized
    // bytes) is bitwise-identical at every SimdLevel. (Full
    // predictions are only budget-comparable across levels because
    // the vector sigmoid is a polynomial approximation of libm.)
    LevelGuard guard;
    const ModelConfig cfg = quantModel();
    DlrmModel model(cfg, 42);
    model.attachQuantizedStore(
        EmbeddingStore::create(cfg, 42, 256, EmbDtype::Bf16));
    model.attachQuantizedStore(
        EmbeddingStore::create(cfg, 42, 256, EmbDtype::Int8));
    const SparseBatch sparse = makeBatch(cfg, 6, 19);

    for (const EmbDtype dtype : {EmbDtype::Bf16, EmbDtype::Int8}) {
        setSimdLevel(SimdLevel::Scalar);
        Tensor ref;
        model.embeddingForward(sparse, ref, {}, dtype);
        for (const SimdLevel lvl :
             {SimdLevel::Avx2, SimdLevel::Avx512}) {
            setSimdLevel(lvl);
            Tensor out;
            model.embeddingForward(sparse, out, {}, dtype);
            ASSERT_EQ(out.rows(), ref.rows());
            ASSERT_EQ(out.cols(), ref.cols());
            EXPECT_EQ(std::memcmp(out.data(), ref.data(),
                                  ref.rows() * ref.cols() *
                                      sizeof(float)),
                      0)
                << embDtypeName(dtype) << " @ " << simdLevelName(lvl);
        }
    }
}

} // namespace
