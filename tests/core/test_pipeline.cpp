/**
 * @file
 * Tests for the real-execution InferencePipeline: every scheme must
 * process all batches and produce consistent stage accounting.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt::core;
using dlrmopt::traces::Hotness;
using dlrmopt::traces::TraceConfig;
using dlrmopt::traces::TraceGenerator;

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.cls = ModelClass::RMC2;
    m.rows = 2048;
    m.dim = 16;
    m.tables = 3;
    m.lookups = 4;
    m.bottomMlp = {16, 16};
    m.topMlp = {4, 1};
    return m;
}

std::vector<SparseBatch>
makeBatches(const ModelConfig& m, std::size_t n, std::size_t batch_size)
{
    TraceConfig tc;
    tc.rows = m.rows;
    tc.tables = m.tables;
    tc.lookups = m.lookups;
    tc.batchSize = batch_size;
    tc.numBatches = n;
    tc.hotness = Hotness::Medium;
    TraceGenerator gen(tc);
    std::vector<SparseBatch> out;
    for (std::size_t b = 0; b < n; ++b)
        out.push_back(gen.batch(b));
    return out;
}

class PipelineTest : public ::testing::TestWithParam<Scheme>
{
  protected:
    PipelineTest() : model(tinyModel(), 42) {}
    DlrmModel model;
};

TEST_P(PipelineTest, RunsAllBatchesUnderEveryScheme)
{
    const std::size_t batch_size = 8;
    Tensor dense(batch_size, model.config().denseDim());
    dense.randomize(1);
    const auto batches = makeBatches(model.config(), 6, batch_size);

    InferencePipeline p(model, GetParam());
    const PipelineStats st = p.run(dense, batches);

    EXPECT_EQ(st.batches, 6u);
    EXPECT_GT(st.totalMs, 0.0);
    EXPECT_GT(st.embMs, 0.0);
    EXPECT_GT(st.bottomMs, 0.0);
    EXPECT_GT(st.interMs, 0.0);
    EXPECT_GT(st.topMs, 0.0);
    EXPECT_GT(st.avgBatchMs(), 0.0);
    EXPECT_NEAR(st.avgBatchMs() * 6.0, st.totalMs, st.totalMs * 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PipelineTest,
                         ::testing::ValuesIn(allSchemes),
                         [](const auto& info) {
                             std::string n = schemeName(info.param);
                             for (char& c : n) {
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return n;
                         });

TEST(Pipeline, EmptyBatchListIsHarmless)
{
    DlrmModel model(tinyModel(), 1);
    Tensor dense(4, model.config().denseDim());
    InferencePipeline p(model, Scheme::Baseline);
    const PipelineStats st = p.run(dense, {});
    EXPECT_EQ(st.batches, 0u);
    EXPECT_EQ(st.avgBatchMs(), 0.0);
}

TEST(Pipeline, MpHtMatchesSequentialResultsTimingAside)
{
    // MP-HT only reorders execution; stage totals must still all be
    // populated and the batch count preserved.
    DlrmModel model(tinyModel(), 7);
    Tensor dense(4, model.config().denseDim());
    dense.randomize(2);
    const auto batches = makeBatches(model.config(), 4, 4);

    InferencePipeline seq(model, Scheme::Baseline);
    InferencePipeline mp(model, Scheme::MpHt);
    EXPECT_EQ(seq.run(dense, batches).batches, 4u);
    EXPECT_EQ(mp.run(dense, batches).batches, 4u);
}

TEST(Pipeline, DpHtSplitsBatchesAcrossInstances)
{
    DlrmModel model(tinyModel(), 7);
    Tensor dense(4, model.config().denseDim());
    const auto batches = makeBatches(model.config(), 5, 4);
    InferencePipeline dp(model, Scheme::DpHt);
    const PipelineStats st = dp.run(dense, batches);
    EXPECT_EQ(st.batches, 5u); // both instances' batches counted
}

} // namespace
