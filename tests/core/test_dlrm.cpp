/**
 * @file
 * Unit/integration tests for the full DlrmModel on a scaled-down
 * configuration (construction allocates real tables).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/dlrm.hpp"

namespace
{

using namespace dlrmopt::core;
using dlrmopt::RowIndex;

/** A small but structurally faithful model for tests. */
ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.cls = ModelClass::RMC2;
    m.rows = 1024;
    m.dim = 16;
    m.tables = 4;
    m.lookups = 5;
    m.bottomMlp = {32, 24, 16};
    m.topMlp = {8, 1};
    return m;
}

SparseBatch
makeBatch(const ModelConfig& m, std::size_t batch, std::uint64_t seed)
{
    SparseBatch b;
    b.batchSize = batch;
    b.indices.resize(m.tables);
    b.offsets.resize(m.tables);
    for (std::size_t t = 0; t < m.tables; ++t) {
        for (std::size_t s = 0; s <= batch; ++s) {
            b.offsets[t].push_back(
                static_cast<RowIndex>(s * m.lookups));
        }
        for (std::size_t i = 0; i < batch * m.lookups; ++i) {
            b.indices[t].push_back(static_cast<RowIndex>(
                dlrmopt::mix64(seed + t * 1000 + i) % m.rows));
        }
    }
    return b;
}

class DlrmModelTest : public ::testing::Test
{
  protected:
    DlrmModelTest() : model(tinyModel(), 42) {}
    DlrmModel model;
};

TEST_F(DlrmModelTest, ConstructionMatchesConfig)
{
    EXPECT_EQ(model.config().name, "tiny");
    EXPECT_EQ(model.table(0).rows(), 1024u);
    EXPECT_EQ(model.table(0).dim(), 16u);
    EXPECT_EQ(model.embeddingBytes(), 4u * 1024u * 16u * 4u);
    EXPECT_EQ(model.bottomMlp().outputDim(), 16u);
    EXPECT_EQ(model.topMlp().inputDim(),
              tinyModel().topInputDim());
}

TEST(DlrmModel, RejectsMismatchedBottomMlp)
{
    ModelConfig bad = tinyModel();
    bad.bottomMlp = {32, 24, 8}; // != dim 16
    EXPECT_THROW(DlrmModel m(bad, 1), std::invalid_argument);
}

TEST_F(DlrmModelTest, ForwardShapesAndRange)
{
    const std::size_t batch = 8;
    Tensor dense(batch, model.config().denseDim());
    dense.randomize(3);
    const SparseBatch sparse = makeBatch(model.config(), batch, 7);
    ASSERT_TRUE(sparse.valid(model.config().rows));

    DlrmWorkspace ws;
    model.forward(dense, sparse, ws);

    EXPECT_EQ(ws.bottomOut.rows(), batch);
    EXPECT_EQ(ws.bottomOut.cols(), 16u);
    EXPECT_EQ(ws.embOut.rows(), 4u);
    EXPECT_EQ(ws.embOut.cols(), batch * 16u);
    EXPECT_EQ(ws.interOut.cols(), model.config().topInputDim());
    EXPECT_EQ(ws.pred.rows(), batch);
    EXPECT_EQ(ws.pred.cols(), 1u);
    // CTR predictions go through a sigmoid.
    for (std::size_t i = 0; i < batch; ++i) {
        EXPECT_GT(ws.pred.at(i, 0), 0.0f);
        EXPECT_LT(ws.pred.at(i, 0), 1.0f);
    }
}

TEST_F(DlrmModelTest, ForwardIsDeterministic)
{
    const std::size_t batch = 4;
    Tensor dense(batch, model.config().denseDim());
    dense.randomize(5);
    const SparseBatch sparse = makeBatch(model.config(), batch, 9);
    DlrmWorkspace w1, w2;
    model.forward(dense, sparse, w1);
    model.forward(dense, sparse, w2);
    for (std::size_t i = 0; i < w1.pred.size(); ++i)
        EXPECT_EQ(w1.pred.data()[i], w2.pred.data()[i]);
}

TEST_F(DlrmModelTest, PrefetchSpecDoesNotChangePredictions)
{
    const std::size_t batch = 4;
    Tensor dense(batch, model.config().denseDim());
    dense.randomize(5);
    const SparseBatch sparse = makeBatch(model.config(), batch, 9);
    DlrmWorkspace w1, w2;
    model.forward(dense, sparse, w1);
    model.forward(dense, sparse, w2, PrefetchSpec::paperDefault());
    for (std::size_t i = 0; i < w1.pred.size(); ++i)
        EXPECT_EQ(w1.pred.data()[i], w2.pred.data()[i]);
}

TEST_F(DlrmModelTest, DifferentSparseInputsChangePredictions)
{
    const std::size_t batch = 4;
    Tensor dense(batch, model.config().denseDim());
    dense.randomize(5);
    DlrmWorkspace w1, w2;
    model.forward(dense, makeBatch(model.config(), batch, 1), w1);
    model.forward(dense, makeBatch(model.config(), batch, 2), w2);
    int diff = 0;
    for (std::size_t i = 0; i < w1.pred.size(); ++i)
        diff += w1.pred.data()[i] != w2.pred.data()[i];
    EXPECT_GT(diff, 0);
}

TEST(SparseBatch, ValidationCatchesMalformedInputs)
{
    ModelConfig m = tinyModel();
    SparseBatch b = makeBatch(m, 2, 1);
    EXPECT_TRUE(b.valid(m.rows));

    SparseBatch bad = b;
    bad.indices[0][0] = static_cast<RowIndex>(m.rows); // out of range
    EXPECT_FALSE(bad.valid(m.rows));

    bad = b;
    bad.offsets[1][0] = 1; // must start at 0
    EXPECT_FALSE(bad.valid(m.rows));

    bad = b;
    bad.offsets[2].back() += 1; // must end at indices size
    EXPECT_FALSE(bad.valid(m.rows));

    bad = b;
    bad.offsets.pop_back(); // table count mismatch
    EXPECT_FALSE(bad.valid(m.rows));
}

TEST(SparseBatch, TotalLookupsSumsTables)
{
    ModelConfig m = tinyModel();
    SparseBatch b = makeBatch(m, 3, 1);
    EXPECT_EQ(b.totalLookups(), m.tables * 3 * m.lookups);
}

} // namespace
