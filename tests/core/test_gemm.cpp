/**
 * @file
 * Unit tests for the dense-layer kernels: blocked kernel vs the naive
 * reference, bias/ReLU handling, and a parameterized shape sweep.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/gemm.hpp"
#include "core/tensor.hpp"

namespace
{

using namespace dlrmopt::core;

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(seed + i)) - 0.5);
    }
    return v;
}

TEST(DenseLayer, MatchesHandComputedTinyCase)
{
    // 1 sample, 2 inputs, 1 output: out = 1*3 + 2*4 + 10 = 21.
    const float in[] = {1.0f, 2.0f};
    const float w[] = {3.0f, 4.0f};
    const float b[] = {10.0f};
    float out[1] = {-1.0f};
    denseLayerForward(in, 1, 2, w, b, 1, out, false);
    EXPECT_FLOAT_EQ(out[0], 21.0f);
}

TEST(DenseLayer, ReluClampsNegatives)
{
    const float in[] = {1.0f};
    const float w[] = {-2.0f};
    float out[1];
    denseLayerForward(in, 1, 1, w, nullptr, 1, out, true);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    denseLayerForward(in, 1, 1, w, nullptr, 1, out, false);
    EXPECT_FLOAT_EQ(out[0], -2.0f);
}

TEST(DenseLayer, NullBiasMeansZeroBias)
{
    const float in[] = {2.0f};
    const float w[] = {3.0f};
    float out[1];
    denseLayerForward(in, 1, 1, w, nullptr, 1, out, false);
    EXPECT_FLOAT_EQ(out[0], 6.0f);
}

/** Shape sweep: blocked kernel must match the reference everywhere,
 *  including shapes that don't divide the tile sizes. */
class DenseLayerShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, bool>>
{
};

TEST_P(DenseLayerShapes, BlockedMatchesReference)
{
    const auto [batch, in_dim, out_dim, relu] = GetParam();
    const auto in = randomVec(batch * in_dim, 1);
    const auto w = randomVec(out_dim * in_dim, 2);
    const auto b = randomVec(out_dim, 3);

    std::vector<float> got(batch * out_dim), want(batch * out_dim);
    denseLayerForward(in.data(), batch, in_dim, w.data(), b.data(),
                      out_dim, got.data(), relu);
    denseLayerForwardRef(in.data(), batch, in_dim, w.data(), b.data(),
                         out_dim, want.data(), relu);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-3f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseLayerShapes,
    ::testing::Values(
        std::make_tuple(1, 1, 1, false),
        std::make_tuple(1, 256, 128, true),
        std::make_tuple(64, 256, 128, true),   // rm2_1 bottom layer 0
        std::make_tuple(64, 128, 128, true),
        std::make_tuple(64, 128, 64, true),    // rm2_1 top hidden
        std::make_tuple(64, 64, 1, false),     // final CTR layer
        std::make_tuple(3, 300, 70, true),     // off-tile shapes
        std::make_tuple(7, 257, 65, false),
        std::make_tuple(2, 1000, 3, true)));

TEST(Sigmoid, MapsToUnitInterval)
{
    float v[] = {-100.0f, -1.0f, 0.0f, 1.0f, 100.0f};
    sigmoidInplace(v, 5);
    EXPECT_NEAR(v[0], 0.0f, 1e-6f);
    EXPECT_NEAR(v[1], 1.0f / (1.0f + std::exp(1.0f)), 1e-6f);
    EXPECT_FLOAT_EQ(v[2], 0.5f);
    EXPECT_NEAR(v[3], 1.0f / (1.0f + std::exp(-1.0f)), 1e-6f);
    EXPECT_NEAR(v[4], 1.0f, 1e-6f);
    // Monotone.
    for (int i = 1; i < 5; ++i)
        EXPECT_GT(v[i], v[i - 1]);
}

} // namespace
