/**
 * @file
 * Unit tests for the dense-layer kernels: blocked kernel vs the naive
 * reference, bias/ReLU handling, a parameterized shape sweep, the
 * packed register-blocked microkernel engine (tolerance vs the
 * reference, bitwise invariance across SimdLevels / tiles / batch
 * position, degenerate shapes), the PackedWeights panel layout, and
 * the GemmTileCache m-bucket table.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/gemm.hpp"
#include "core/simd.hpp"
#include "core/tensor.hpp"

namespace
{

using namespace dlrmopt::core;

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(seed + i)) - 0.5);
    }
    return v;
}

TEST(DenseLayer, MatchesHandComputedTinyCase)
{
    // 1 sample, 2 inputs, 1 output: out = 1*3 + 2*4 + 10 = 21.
    const float in[] = {1.0f, 2.0f};
    const float w[] = {3.0f, 4.0f};
    const float b[] = {10.0f};
    float out[1] = {-1.0f};
    denseLayerForward(in, 1, 2, w, b, 1, out, false);
    EXPECT_FLOAT_EQ(out[0], 21.0f);
}

TEST(DenseLayer, ReluClampsNegatives)
{
    const float in[] = {1.0f};
    const float w[] = {-2.0f};
    float out[1];
    denseLayerForward(in, 1, 1, w, nullptr, 1, out, true);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    denseLayerForward(in, 1, 1, w, nullptr, 1, out, false);
    EXPECT_FLOAT_EQ(out[0], -2.0f);
}

TEST(DenseLayer, NullBiasMeansZeroBias)
{
    const float in[] = {2.0f};
    const float w[] = {3.0f};
    float out[1];
    denseLayerForward(in, 1, 1, w, nullptr, 1, out, false);
    EXPECT_FLOAT_EQ(out[0], 6.0f);
}

/** Shape sweep: blocked kernel must match the reference everywhere,
 *  including shapes that don't divide the tile sizes. */
class DenseLayerShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, bool>>
{
};

TEST_P(DenseLayerShapes, BlockedMatchesReference)
{
    const auto [batch, in_dim, out_dim, relu] = GetParam();
    const auto in = randomVec(batch * in_dim, 1);
    const auto w = randomVec(out_dim * in_dim, 2);
    const auto b = randomVec(out_dim, 3);

    std::vector<float> got(batch * out_dim), want(batch * out_dim);
    denseLayerForward(in.data(), batch, in_dim, w.data(), b.data(),
                      out_dim, got.data(), relu);
    denseLayerForwardRef(in.data(), batch, in_dim, w.data(), b.data(),
                         out_dim, want.data(), relu);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-3f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseLayerShapes,
    ::testing::Values(
        std::make_tuple(1, 1, 1, false),
        std::make_tuple(1, 256, 128, true),
        std::make_tuple(64, 256, 128, true),   // rm2_1 bottom layer 0
        std::make_tuple(64, 128, 128, true),
        std::make_tuple(64, 128, 64, true),    // rm2_1 top hidden
        std::make_tuple(64, 64, 1, false),     // final CTR layer
        std::make_tuple(3, 300, 70, true),     // off-tile shapes
        std::make_tuple(7, 257, 65, false),
        std::make_tuple(2, 1000, 3, true)));

TEST(DenseLayer, ZeroBatchNeverTouchesOutput)
{
    // Regression: the old kernel ran its bias-init pass over
    // [batch x out_dim] even for batch == 0 reads/writes of size 0,
    // but the contract is stronger — out must not be dereferenced at
    // all (callers may pass a null or undersized pointer for an empty
    // batch).
    const float w[] = {1.0f, 2.0f};
    const float b[] = {5.0f};
    denseLayerForward(nullptr, 0, 2, w, b, 1, nullptr, true);

    float sentinel = -7.0f;
    denseLayerForward(nullptr, 0, 2, w, b, 1, &sentinel, true);
    EXPECT_FLOAT_EQ(sentinel, -7.0f);
}

TEST(DenseLayer, ZeroOutDimIsANoOp)
{
    const float in[] = {1.0f, 2.0f};
    denseLayerForward(in, 1, 2, nullptr, nullptr, 0, nullptr, true);
}

TEST(DenseLayer, ZeroInDimReducesToBiasEpilogue)
{
    const float b[] = {2.0f, -3.0f};
    float out[4] = {9.0f, 9.0f, 9.0f, 9.0f};
    denseLayerForward(nullptr, 2, 0, nullptr, b, 2, out, true);
    EXPECT_FLOAT_EQ(out[0], 2.0f);
    EXPECT_FLOAT_EQ(out[1], 0.0f); // ReLU clamps the negative bias
    EXPECT_FLOAT_EQ(out[2], 2.0f);
    EXPECT_FLOAT_EQ(out[3], 0.0f);

    denseLayerForward(nullptr, 1, 0, nullptr, b, 2, out, false);
    EXPECT_FLOAT_EQ(out[1], -3.0f);
}

/** Restores the global dispatch level on scope exit. */
struct SimdLevelGuard
{
    SimdLevel saved = currentSimdLevel();
    ~SimdLevelGuard() { setSimdLevel(saved); }
};

constexpr SimdLevel kLevels[] = {SimdLevel::Scalar, SimdLevel::Avx2,
                                 SimdLevel::Avx512};

TEST(PackedWeights, PanelLayoutMatchesSpec)
{
    const std::size_t in_dim = 5, out_dim = 21; // 2 panels, 5-wide tail
    const auto w = randomVec(out_dim * in_dim, 17);
    const PackedWeights p(w.data(), in_dim, out_dim);

    EXPECT_EQ(p.inDim(), in_dim);
    EXPECT_EQ(p.outDim(), out_dim);
    EXPECT_EQ(p.numPanels(), 2u);
    EXPECT_EQ(p.bytes(),
              2 * in_dim * PackedWeights::panelWidth * sizeof(float));
    EXPECT_FALSE(p.empty());

    constexpr std::size_t pw = PackedWeights::panelWidth;
    for (std::size_t pi = 0; pi < p.numPanels(); ++pi) {
        for (std::size_t k = 0; k < in_dim; ++k) {
            for (std::size_t j = 0; j < pw; ++j) {
                const std::size_t o = pi * pw + j;
                const float want =
                    o < out_dim ? w[o * in_dim + k] : 0.0f;
                EXPECT_EQ(p.panel(pi)[k * pw + j], want)
                    << "panel " << pi << " k " << k << " j " << j;
            }
        }
    }
}

TEST(PackedWeights, EmptyAndThrowingConstruction)
{
    const PackedWeights empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.numPanels(), 0u);
    EXPECT_EQ(empty.bytes(), 0u);

    EXPECT_THROW(PackedWeights(nullptr, 4, 4), std::invalid_argument);
    // Empty shapes accept a null source.
    const PackedWeights zero_out(nullptr, 4, 0);
    EXPECT_TRUE(zero_out.empty());
}

/** Packed engine vs reference across every dispatch level and odd
 *  shapes: prime dims, tail-only panels, sub-tile out_dim, GEMV. */
class PackedGemmShapes
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, bool>>
{
};

TEST_P(PackedGemmShapes, MatchesReferenceAtEveryLevel)
{
    const auto [batch, in_dim, out_dim, relu] = GetParam();
    const auto in = randomVec(batch * in_dim, 21);
    const auto w = randomVec(out_dim * in_dim, 22);
    const auto b = randomVec(out_dim, 23);
    const PackedWeights packed(w.data(), in_dim, out_dim);

    std::vector<float> want(batch * out_dim);
    denseLayerForwardRef(in.data(), batch, in_dim, w.data(), b.data(),
                         out_dim, want.data(), relu);

    for (const SimdLevel level : kLevels) {
        std::vector<float> got(batch * out_dim, -99.0f);
        denseLayerForwardPackedLevel(level, in.data(), batch, packed,
                                     b.data(), got.data(), relu);
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_NEAR(got[i], want[i], 1e-3f)
                << "level " << static_cast<int>(level) << " at " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedGemmShapes,
    ::testing::Values(
        std::make_tuple(1, 1, 1, false),
        std::make_tuple(1, 256, 128, true),    // GEMV-shaped path
        std::make_tuple(64, 256, 128, true),   // rm2_1 bottom layer 0
        std::make_tuple(64, 64, 1, false),     // final CTR layer
        std::make_tuple(7, 131, 17, true),     // prime dims
        std::make_tuple(5, 33, 9, false),      // tail-only panel
        std::make_tuple(3, 17, 16, true),      // exactly one panel
        std::make_tuple(13, 57, 31, true),     // 16 + 15-wide tail
        std::make_tuple(128, 512, 48, false))); // multi-tile m and n

TEST(PackedGemm, BitwiseIdenticalAcrossLevels)
{
    const std::size_t batch = 23, in_dim = 147, out_dim = 37;
    const auto in = randomVec(batch * in_dim, 31);
    const auto w = randomVec(out_dim * in_dim, 32);
    const auto b = randomVec(out_dim, 33);
    const PackedWeights packed(w.data(), in_dim, out_dim);

    std::vector<float> scalar(batch * out_dim);
    denseLayerForwardPackedLevel(SimdLevel::Scalar, in.data(), batch,
                                 packed, b.data(), scalar.data(), true);
    for (const SimdLevel level : {SimdLevel::Avx2, SimdLevel::Avx512}) {
        std::vector<float> got(batch * out_dim);
        denseLayerForwardPackedLevel(level, in.data(), batch, packed,
                                     b.data(), got.data(), true);
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(scalar[i], got[i])
                << "level " << static_cast<int>(level) << " at " << i;
        }
    }
}

TEST(PackedGemm, BitwiseIndependentOfTileChoice)
{
    const std::size_t batch = 11, in_dim = 300, out_dim = 29;
    const auto in = randomVec(batch * in_dim, 41);
    const auto w = randomVec(out_dim * in_dim, 42);
    const auto b = randomVec(out_dim, 43);
    const PackedWeights packed(w.data(), in_dim, out_dim);

    std::vector<float> want(batch * out_dim);
    denseLayerForwardPackedLevel(currentSimdLevel(), in.data(), batch,
                                 packed, b.data(), want.data(), true);
    // k-chunking (kc) forces store/reload roundtrips between chunks,
    // and mr changes which rows share a microtile — neither may change
    // a single bit.
    for (const GemmTile tile :
         {GemmTile{1, 0}, GemmTile{2, 64}, GemmTile{4, 128},
          GemmTile{6, 37}, GemmTile{3, 1}}) {
        std::vector<float> got(batch * out_dim);
        denseLayerForwardPackedLevel(currentSimdLevel(), in.data(),
                                     batch, packed, b.data(),
                                     got.data(), true, tile);
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(want[i], got[i]) << "tile {" << tile.mr << ","
                                       << tile.kc << "} at " << i;
        }
    }
}

TEST(PackedGemm, BitwiseIndependentOfBatchPosition)
{
    // Row r of a coalesced batch must equal the same sample run alone
    // (the property the serving layer's request coalescing asserts).
    const std::size_t batch = 9, in_dim = 123, out_dim = 21;
    const auto in = randomVec(batch * in_dim, 51);
    const auto w = randomVec(out_dim * in_dim, 52);
    const auto b = randomVec(out_dim, 53);
    const PackedWeights packed(w.data(), in_dim, out_dim);

    std::vector<float> batched(batch * out_dim);
    denseLayerForwardPacked(in.data(), batch, packed, b.data(),
                            batched.data(), true);
    std::vector<float> alone(out_dim);
    for (std::size_t r = 0; r < batch; ++r) {
        denseLayerForwardPacked(in.data() + r * in_dim, 1, packed,
                                b.data(), alone.data(), true);
        for (std::size_t j = 0; j < out_dim; ++j)
            ASSERT_EQ(batched[r * out_dim + j], alone[j])
                << "row " << r << " col " << j;
    }
}

TEST(PackedGemm, RepeatedForwardIsBitReproducible)
{
    SimdLevelGuard guard;
    const std::size_t batch = 6, in_dim = 77, out_dim = 19;
    const auto in = randomVec(batch * in_dim, 61);
    const auto w = randomVec(out_dim * in_dim, 62);
    const auto b = randomVec(out_dim, 63);
    const PackedWeights packed(w.data(), in_dim, out_dim);

    std::vector<float> first(batch * out_dim);
    denseLayerForwardPacked(in.data(), batch, packed, b.data(),
                            first.data(), false);
    for (int rep = 0; rep < 3; ++rep) {
        setSimdLevel(kLevels[rep % 3]); // dispatch must not matter
        std::vector<float> again(batch * out_dim);
        denseLayerForwardPacked(in.data(), batch, packed, b.data(),
                                again.data(), false);
        for (std::size_t i = 0; i < again.size(); ++i)
            ASSERT_EQ(first[i], again[i]) << "rep " << rep << " at " << i;
    }
}

TEST(PackedGemm, DegenerateShapes)
{
    // batch == 0: out never touched.
    const auto w = randomVec(8, 71);
    const PackedWeights packed(w.data(), 4, 2);
    float sentinel = -7.0f;
    denseLayerForwardPacked(nullptr, 0, packed, nullptr, &sentinel,
                            true);
    EXPECT_FLOAT_EQ(sentinel, -7.0f);

    // out_dim == 0: no-op.
    const PackedWeights none(nullptr, 4, 0);
    const float in4[] = {1.0f, 2.0f, 3.0f, 4.0f};
    denseLayerForwardPacked(in4, 1, none, nullptr, nullptr, true);

    // in_dim == 0: epilogue only (bias + ReLU), at every level.
    const PackedWeights kless(nullptr, 0, 2);
    const float b[] = {1.5f, -2.5f};
    for (const SimdLevel level : kLevels) {
        float out[2] = {9.0f, 9.0f};
        denseLayerForwardPackedLevel(level, nullptr, 1, kless, b, out,
                                     true);
        EXPECT_FLOAT_EQ(out[0], 1.5f);
        EXPECT_FLOAT_EQ(out[1], 0.0f);
    }

    // out_dim smaller than one tile with a null bias.
    const std::size_t in_dim = 10, out_dim = 3;
    const auto w2 = randomVec(out_dim * in_dim, 72);
    const auto in2 = randomVec(2 * in_dim, 73);
    const PackedWeights p2(w2.data(), in_dim, out_dim);
    std::vector<float> got(2 * out_dim), want(2 * out_dim);
    denseLayerForwardPacked(in2.data(), 2, p2, nullptr, got.data(),
                            false);
    denseLayerForwardRef(in2.data(), 2, in_dim, w2.data(), nullptr,
                         out_dim, want.data(), false);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-3f);
}

/** Feature-major copy of a row-major [batch x in_dim] activation. */
std::vector<float>
transposeActivations(const std::vector<float>& in, std::size_t batch,
                     std::size_t in_dim)
{
    std::vector<float> t(in.size());
    for (std::size_t m = 0; m < batch; ++m) {
        for (std::size_t k = 0; k < in_dim; ++k)
            t[k * batch + m] = in[m * in_dim + k];
    }
    return t;
}

TEST(TransposedGemm, MatchesReferenceAtEveryLevel)
{
    const std::size_t batch = 13, in_dim = 57, out_dim = 31;
    const auto in = randomVec(batch * in_dim, 81);
    const auto w = randomVec(out_dim * in_dim, 82);
    const auto b = randomVec(out_dim, 83);
    const auto in_t = transposeActivations(in, batch, in_dim);
    const PackedWeights packed(w.data(), in_dim, out_dim);

    std::vector<float> want(batch * out_dim);
    denseLayerForwardRef(in.data(), batch, in_dim, w.data(), b.data(),
                         out_dim, want.data(), true);
    for (const SimdLevel level : kLevels) {
        std::vector<float> got(batch * out_dim, -99.0f);
        denseLayerForwardPackedTransLevel(level, in_t.data(), batch,
                                          packed, b.data(), got.data(),
                                          true);
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_NEAR(got[i], want[i], 1e-3f)
                << "level " << static_cast<int>(level) << " at " << i;
        }
    }
}

TEST(TransposedGemm, BitwiseIdenticalToMMajorEngine)
{
    // The n-major variant only changes activation *load addresses*;
    // every output element runs the same fmaf chain, so it must match
    // the m-major engine bit for bit at every level and tile.
    const std::size_t batch = 23, in_dim = 147, out_dim = 37;
    const auto in = randomVec(batch * in_dim, 91);
    const auto w = randomVec(out_dim * in_dim, 92);
    const auto b = randomVec(out_dim, 93);
    const auto in_t = transposeActivations(in, batch, in_dim);
    const PackedWeights packed(w.data(), in_dim, out_dim);

    for (const SimdLevel level : kLevels) {
        std::vector<float> want(batch * out_dim);
        denseLayerForwardPackedLevel(level, in.data(), batch, packed,
                                     b.data(), want.data(), true);
        for (const GemmTile tile :
             {GemmTile{}, GemmTile{1, 0}, GemmTile{2, 64},
              GemmTile{4, 128}, GemmTile{6, 37}, GemmTile{3, 1}}) {
            std::vector<float> got(batch * out_dim);
            denseLayerForwardPackedTransLevel(level, in_t.data(),
                                              batch, packed, b.data(),
                                              got.data(), true, tile);
            for (std::size_t i = 0; i < got.size(); ++i) {
                ASSERT_EQ(want[i], got[i])
                    << "level " << static_cast<int>(level) << " tile {"
                    << tile.mr << "," << tile.kc << "} at " << i;
            }
        }
    }
}

TEST(TransposedGemm, BitwiseIndependentOfBatchPosition)
{
    // Row r of an n-major batched forward must equal the same sample
    // run alone — the coalescing guarantee the streaming pipeline's
    // compute stage inherits.
    const std::size_t batch = 9, in_dim = 123, out_dim = 21;
    const auto in = randomVec(batch * in_dim, 95);
    const auto w = randomVec(out_dim * in_dim, 96);
    const auto b = randomVec(out_dim, 97);
    const auto in_t = transposeActivations(in, batch, in_dim);
    const PackedWeights packed(w.data(), in_dim, out_dim);

    std::vector<float> batched(batch * out_dim);
    denseLayerForwardPackedTrans(in_t.data(), batch, packed, b.data(),
                                 batched.data(), true);
    std::vector<float> alone(out_dim);
    for (std::size_t r = 0; r < batch; ++r) {
        // A solo sample's feature-major layout is just its row.
        std::vector<float> one(in_dim);
        for (std::size_t k = 0; k < in_dim; ++k)
            one[k] = in[r * in_dim + k];
        denseLayerForwardPackedTrans(one.data(), 1, packed, b.data(),
                                     alone.data(), true);
        for (std::size_t j = 0; j < out_dim; ++j)
            ASSERT_EQ(batched[r * out_dim + j], alone[j])
                << "row " << r << " col " << j;
    }
}

TEST(TransposedGemm, DegenerateShapes)
{
    // batch == 0: out never touched.
    const auto w = randomVec(8, 85);
    const PackedWeights packed(w.data(), 4, 2);
    float sentinel = -7.0f;
    denseLayerForwardPackedTrans(nullptr, 0, packed, nullptr,
                                 &sentinel, true);
    EXPECT_FLOAT_EQ(sentinel, -7.0f);

    // in_dim == 0: epilogue only, same as the m-major engine.
    const PackedWeights kless(nullptr, 0, 2);
    const float b[] = {1.5f, -2.5f};
    for (const SimdLevel level : kLevels) {
        float out[2] = {9.0f, 9.0f};
        denseLayerForwardPackedTransLevel(level, nullptr, 1, kless, b,
                                          out, true);
        EXPECT_FLOAT_EQ(out[0], 1.5f);
        EXPECT_FLOAT_EQ(out[1], 0.0f);
    }
}

TEST(TransposedGemm, UsesItsOwnCacheEntries)
{
    // The trans engine consults (bucket, dims, level, trans=true)
    // entries; an m-major entry for the same shape must not leak in,
    // and tiles cannot change bits either way.
    auto& cache = GemmTileCache::instance();
    cache.clear();
    const std::size_t batch = 6, in_dim = 40, out_dim = 24;
    const auto in = randomVec(batch * in_dim, 87);
    const auto w = randomVec(out_dim * in_dim, 88);
    const auto in_t = transposeActivations(in, batch, in_dim);
    const PackedWeights packed(w.data(), in_dim, out_dim);

    std::vector<float> before(batch * out_dim);
    denseLayerForwardPackedTrans(in_t.data(), batch, packed, nullptr,
                                 before.data(), false);

    const SimdLevel level = currentSimdLevel();
    cache.install(batch, in_dim, out_dim, level, GemmTile{2, 16});
    cache.install(batch, in_dim, out_dim, level, GemmTile{1, 8},
                  /*trans=*/true);
    EXPECT_TRUE(cache.contains(batch, in_dim, out_dim, level, true));
    EXPECT_EQ(cache.lookup(batch, in_dim, out_dim, level, true),
              (GemmTile{1, 8}));
    EXPECT_EQ(cache.lookup(batch, in_dim, out_dim, level, false),
              (GemmTile{2, 16}));

    std::vector<float> after(batch * out_dim);
    denseLayerForwardPackedTrans(in_t.data(), batch, packed, nullptr,
                                 after.data(), false);
    for (std::size_t i = 0; i < after.size(); ++i)
        ASSERT_EQ(before[i], after[i]) << "at " << i;
    cache.clear();
}

TEST(GemmTileCache, BucketBoundaries)
{
    EXPECT_EQ(GemmTileCache::bucketOf(1), 0);
    EXPECT_EQ(GemmTileCache::bucketOf(2), 1);
    EXPECT_EQ(GemmTileCache::bucketOf(4), 1);
    EXPECT_EQ(GemmTileCache::bucketOf(5), 2);
    EXPECT_EQ(GemmTileCache::bucketOf(16), 2);
    EXPECT_EQ(GemmTileCache::bucketOf(17), 3);
    EXPECT_EQ(GemmTileCache::bucketOf(64), 3);
    EXPECT_EQ(GemmTileCache::bucketOf(65), 4);
    EXPECT_EQ(GemmTileCache::bucketOf(100000), 4);

    for (int bkt = 0; bkt < GemmTileCache::numBuckets; ++bkt) {
        EXPECT_EQ(
            GemmTileCache::bucketOf(GemmTileCache::bucketRepresentative(bkt)),
            bkt)
            << "bucket " << bkt;
    }
}

TEST(GemmTileCache, InstallLookupAndBucketSharing)
{
    auto& cache = GemmTileCache::instance();
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.contains(8, 256, 128, SimdLevel::Avx512));

    // A miss falls back to the heuristic.
    EXPECT_EQ(cache.lookup(8, 256, 128, SimdLevel::Avx512),
              defaultGemmTile(8, 256, 128, SimdLevel::Avx512));

    const GemmTile tuned{3, 96};
    cache.install(8, 256, 128, SimdLevel::Avx512, tuned);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.contains(8, 256, 128, SimdLevel::Avx512));
    EXPECT_EQ(cache.lookup(8, 256, 128, SimdLevel::Avx512), tuned);

    // Every batch in the 5-16 bucket shares the entry; neighbors miss.
    EXPECT_EQ(cache.lookup(5, 256, 128, SimdLevel::Avx512), tuned);
    EXPECT_EQ(cache.lookup(16, 256, 128, SimdLevel::Avx512), tuned);
    EXPECT_FALSE(cache.contains(17, 256, 128, SimdLevel::Avx512));
    EXPECT_FALSE(cache.contains(8, 256, 64, SimdLevel::Avx512));
    EXPECT_FALSE(cache.contains(8, 256, 128, SimdLevel::Scalar));

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

/** The VNNI quad layout must hold the identical codes as the maddubs
 *  pair layout — only the interleave differs. */
TEST(PackedWeightsInt8, VnniPanelHoldsSameCodes)
{
    const std::size_t in_dim = 27, out_dim = 21; // odd depth + tail
    std::vector<float> w(out_dim * in_dim);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = std::sin(static_cast<float>(i) * 0.37f);
    const PackedWeightsInt8 pack(w.data(), in_dim, out_dim);

    // paddedK is a multiple of 4 (k-quad granularity of vpdpbusd).
    EXPECT_EQ(pack.paddedK() % 4, 0u);
    EXPECT_GE(pack.paddedK(), in_dim);

    constexpr std::size_t pw = PackedWeightsInt8::panelWidth;
    for (std::size_t p = 0; p < pack.numPanels(); ++p) {
        const std::int8_t *pair = pack.panel(p);
        const std::int8_t *quad = pack.panelVnni(p);
        for (std::size_t k = 0; k < pack.paddedK(); ++k) {
            for (std::size_t j = 0; j < pw; ++j) {
                EXPECT_EQ(pair[(k / 2) * 2 * pw + j * 2 + (k & 1)],
                          quad[(k / 4) * 4 * pw + j * 4 + (k & 3)])
                    << "panel " << p << " k " << k << " j " << j;
            }
        }
    }
}

/**
 * The vpdpbusd path must be bitwise-identical to the widening
 * (maddubs) path: both accumulate the exact integer dot, and the
 * float epilogue is shared. Runs only where the host exposes VNNI
 * (elsewhere setVnniEnabled(true) clamps to off and the paths are
 * trivially the same code).
 */
TEST(PackedWeightsInt8, VnniBitwiseMatchesWideningPath)
{
    if (detectSimdLevel() != SimdLevel::Avx512)
        GTEST_SKIP() << "needs AVX-512";
    const bool hadVnni = vnniEnabled();
    const struct Restore
    {
        bool v;
        ~Restore() { setVnniEnabled(v); }
    } restore{hadVnni};

    for (const auto [in_dim, out_dim, batch] :
         {std::tuple<std::size_t, std::size_t, std::size_t>{64, 32, 8},
          {27, 21, 5},  // odd depth, tail panel, odd batch
          {13, 1, 1},   // GEMV
          {128, 64, 17}}) {
        std::vector<float> w(out_dim * in_dim), in(batch * in_dim);
        std::vector<float> bias(out_dim);
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i] = std::cos(static_cast<float>(i) * 0.21f) * 0.4f;
        for (std::size_t i = 0; i < in.size(); ++i)
            in[i] = std::sin(static_cast<float>(i) * 0.83f);
        for (std::size_t i = 0; i < bias.size(); ++i)
            bias[i] = 0.02f * static_cast<float>(i) - 0.3f;

        const PackedWeightsInt8 pack(w.data(), in_dim, out_dim);
        std::vector<std::uint8_t> qin(batch * pack.paddedK());
        const QuantParams qp = quantizeActivationsInt8(
            in.data(), batch, in_dim, pack.paddedK(), qin.data());

        std::vector<float> widened(batch * out_dim, -7.0f);
        std::vector<float> vnni(batch * out_dim, 3.0f);

        ASSERT_FALSE(setVnniEnabled(false));
        denseLayerForwardPackedInt8Level(
            SimdLevel::Avx512, qin.data(), batch, pack, bias.data(),
            widened.data(), true, qp.scale, qp.bias);

        if (!setVnniEnabled(true))
            GTEST_SKIP() << "host has no AVX512-VNNI";
        denseLayerForwardPackedInt8Level(
            SimdLevel::Avx512, qin.data(), batch, pack, bias.data(),
            vnni.data(), true, qp.scale, qp.bias);

        for (std::size_t i = 0; i < widened.size(); ++i)
            ASSERT_EQ(widened[i], vnni[i])
                << "element " << i << " (" << in_dim << "x" << out_dim
                << " batch " << batch << ")";
    }
}

TEST(Sigmoid, MapsToUnitInterval)
{
    float v[] = {-100.0f, -1.0f, 0.0f, 1.0f, 100.0f};
    sigmoidInplace(v, 5);
    EXPECT_NEAR(v[0], 0.0f, 1e-6f);
    EXPECT_NEAR(v[1], 1.0f / (1.0f + std::exp(1.0f)), 1e-6f);
    EXPECT_FLOAT_EQ(v[2], 0.5f);
    EXPECT_NEAR(v[3], 1.0f / (1.0f + std::exp(-1.0f)), 1e-6f);
    EXPECT_NEAR(v[4], 1.0f, 1e-6f);
    // Monotone.
    for (int i = 1; i < 5; ++i)
        EXPECT_GT(v[i], v[i - 1]);
}

} // namespace
