/**
 * @file
 * Unit tests for EmbeddingTable and the embedding_bag kernel,
 * including the software-prefetch variants (Algorithm 3): prefetching
 * must never change results, only timing.
 */

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "core/embedding.hpp"
#include "core/errors.hpp"

namespace
{

using namespace dlrmopt::core;
using dlrmopt::RowIndex;

TEST(PrefetchSpec, EnabledSemantics)
{
    EXPECT_FALSE(PrefetchSpec{}.enabled());
    EXPECT_FALSE((PrefetchSpec{0, 8, 3}).enabled());
    EXPECT_FALSE((PrefetchSpec{4, 0, 3}).enabled());
    EXPECT_TRUE((PrefetchSpec{4, 8, 3}).enabled());
    EXPECT_TRUE(PrefetchSpec::paperDefault().enabled());
    EXPECT_EQ(PrefetchSpec::paperDefault().distance, 4);
    EXPECT_EQ(PrefetchSpec::paperDefault().lines, 8);
}

TEST(PrefetchSpec, ValidateRejectsOutOfRangeFields)
{
    // Values the kernel silently tolerates (negative = disabled,
    // locality clamped to NTA) are made loud at configuration entry
    // points via validate().
    EXPECT_NO_THROW(PrefetchSpec{}.validate());
    EXPECT_NO_THROW(PrefetchSpec::paperDefault().validate());
    EXPECT_NO_THROW((PrefetchSpec{0, 0, 0}).validate());
    EXPECT_THROW((PrefetchSpec{-1, 8, 3}).validate(),
                 std::invalid_argument);
    EXPECT_THROW((PrefetchSpec{4, -2, 3}).validate(),
                 std::invalid_argument);
    EXPECT_THROW((PrefetchSpec{4, 8, 4}).validate(),
                 std::invalid_argument);
    EXPECT_THROW((PrefetchSpec{4, 8, -1}).validate(),
                 std::invalid_argument);
}

TEST(EmbeddingTable, RejectsEmptyGeometry)
{
    EXPECT_THROW(EmbeddingTable(0, 16, 1), std::invalid_argument);
    EXPECT_THROW(EmbeddingTable(16, 0, 1), std::invalid_argument);
    EXPECT_THROW(EmbeddingTable(0, 0, 1), std::invalid_argument);
}

TEST(EmbeddingTable, RejectsByteSizeOverflow)
{
    // rows * dim * sizeof(float) would wrap around; must throw
    // instead of allocating a tiny buffer.
    const std::size_t huge =
        std::numeric_limits<std::size_t>::max() / 2;
    EXPECT_THROW(EmbeddingTable(huge, 16, 1), std::invalid_argument);
    EXPECT_THROW(EmbeddingTable(16, huge, 1), std::invalid_argument);
}

TEST(EmbeddingTable, GeometryAndDeterminism)
{
    EmbeddingTable t(100, 16, 42);
    EXPECT_EQ(t.rows(), 100u);
    EXPECT_EQ(t.dim(), 16u);
    EXPECT_EQ(t.bytes(), 100u * 16u * 4u);

    EmbeddingTable t2(100, 16, 42);
    for (std::size_t i = 0; i < 100 * 16; ++i)
        EXPECT_EQ(t.data()[i], t2.data()[i]);
}

TEST(EmbeddingTable, RowPtrIndexesRows)
{
    EmbeddingTable t(10, 8, 1);
    EXPECT_EQ(t.rowPtr(0), t.data());
    EXPECT_EQ(t.rowPtr(3), t.data() + 3 * 8);
}

TEST(EmbeddingBag, SingleLookupCopiesRow)
{
    EmbeddingTable t(10, 8, 1);
    const RowIndex indices[] = {7};
    const RowIndex offsets[] = {0, 1};
    std::vector<float> out(8);
    t.bag(indices, offsets, 1, out.data());
    for (std::size_t d = 0; d < 8; ++d)
        EXPECT_EQ(out[d], t.rowPtr(7)[d]);
}

TEST(EmbeddingBag, SumsMultipleRows)
{
    EmbeddingTable t(10, 4, 1);
    const RowIndex indices[] = {2, 5, 2};
    const RowIndex offsets[] = {0, 3};
    std::vector<float> out(4);
    t.bag(indices, offsets, 1, out.data());
    for (std::size_t d = 0; d < 4; ++d) {
        EXPECT_FLOAT_EQ(out[d],
                        2 * t.rowPtr(2)[d] + t.rowPtr(5)[d]);
    }
}

TEST(EmbeddingBag, EmptyBagProducesZeros)
{
    EmbeddingTable t(10, 4, 1);
    const RowIndex indices[] = {1};
    const RowIndex offsets[] = {0, 0, 1}; // sample 0 empty, sample 1 has one
    std::vector<float> out(8, -1.0f);
    t.bag(indices, offsets, 2, out.data());
    for (std::size_t d = 0; d < 4; ++d)
        EXPECT_EQ(out[d], 0.0f);
    for (std::size_t d = 0; d < 4; ++d)
        EXPECT_EQ(out[4 + d], t.rowPtr(1)[d]);
}

TEST(EmbeddingBag, MatchesReferenceImplementation)
{
    EmbeddingTable t(64, 16, 3);
    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets = {0};
    for (std::size_t s = 0; s < 8; ++s) {
        for (std::size_t l = 0; l < 5; ++l)
            indices.push_back(static_cast<RowIndex>((s * 7 + l * 13) % 64));
        offsets.push_back(static_cast<RowIndex>(indices.size()));
    }
    std::vector<float> got(8 * 16), want(8 * 16);
    t.bag(indices.data(), offsets.data(), 8, got.data());
    embeddingBagRef(t.data(), 16, indices.data(), offsets.data(), 8,
                    want.data());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_FLOAT_EQ(got[i], want[i]);
}

/**
 * Property: software prefetching is purely a performance hint — the
 * kernel's result must be bit-identical for every (distance, lines,
 * locality) configuration, including distances past the end of the
 * indices array.
 */
class EmbeddingBagPrefetch
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(EmbeddingBagPrefetch, PrefetchNeverChangesResults)
{
    const auto [dist, lines, locality] = GetParam();
    EmbeddingTable t(256, 32, 5);
    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets = {0};
    for (std::size_t s = 0; s < 16; ++s) {
        for (std::size_t l = 0; l < 10; ++l) {
            indices.push_back(static_cast<RowIndex>(
                dlrmopt::mix64(s * 31 + l) % 256));
        }
        offsets.push_back(static_cast<RowIndex>(indices.size()));
    }
    std::vector<float> base(16 * 32), got(16 * 32);
    t.bag(indices.data(), offsets.data(), 16, base.data());
    PrefetchSpec pf{dist, lines, locality};
    t.bag(indices.data(), offsets.data(), 16, got.data(), pf);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], base[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Specs, EmbeddingBagPrefetch,
    ::testing::Values(std::make_tuple(1, 1, 3),
                      std::make_tuple(4, 8, 3),
                      std::make_tuple(4, 2, 2),
                      std::make_tuple(8, 4, 1),
                      std::make_tuple(16, 8, 0),
                      std::make_tuple(1000, 8, 3), // beyond array end
                      std::make_tuple(4, 100, 3))); // more lines than row

TEST(EmbeddingBag, LargeDimMatchesReference)
{
    // dim = 128 is the paper's RM2 configuration (8 cache lines).
    EmbeddingTable t(128, 128, 9);
    std::vector<RowIndex> indices = {0, 127, 64, 1, 2, 3};
    std::vector<RowIndex> offsets = {0, 3, 6};
    std::vector<float> got(2 * 128), want(2 * 128);
    t.bag(indices.data(), offsets.data(), 2, got.data(),
          PrefetchSpec::paperDefault());
    embeddingBagRef(t.data(), 128, indices.data(), offsets.data(), 2,
                    want.data());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_FLOAT_EQ(got[i], want[i]);
}

TEST(EmbeddingBag, OutOfRangeIndexThrowsIndexError)
{
    EmbeddingTable t(16, 8, 3);
    std::vector<float> out(2 * 8, 0.0f);

    // Row 16 is one past the end.
    std::vector<RowIndex> indices = {1, 16, 2, 3};
    std::vector<RowIndex> offsets = {0, 2, 4};
    EXPECT_THROW(t.bag(indices.data(), offsets.data(), 2, out.data()),
                 IndexError);

    // IndexError derives from std::out_of_range for older catch sites.
    EXPECT_THROW(t.bag(indices.data(), offsets.data(), 2, out.data()),
                 std::out_of_range);

    // A negative index must be rejected too, not scaled into a wild
    // pointer.
    indices = {1, -1, 2, 3};
    EXPECT_THROW(t.bag(indices.data(), offsets.data(), 2, out.data()),
                 IndexError);
}

TEST(EmbeddingBag, TableStillUsableAfterIndexError)
{
    EmbeddingTable t(16, 8, 3);
    std::vector<float> out(8, 0.0f);
    std::vector<RowIndex> bad = {99};
    std::vector<RowIndex> good = {5};
    std::vector<RowIndex> offsets = {0, 1};

    EXPECT_THROW(t.bag(bad.data(), offsets.data(), 1, out.data()),
                 dlrmopt::core::IndexError);

    t.bag(good.data(), offsets.data(), 1, out.data());
    for (std::size_t d = 0; d < 8; ++d)
        EXPECT_EQ(out[d], t.rowPtr(5)[d]);
}

TEST(EmbeddingBag, AllBagsEmptyProducesAllZeros)
{
    // A batch where *no* sample has a lookup: offsets all zero, the
    // indices array is never read, prefetching has nothing to do.
    EmbeddingTable t(10, 4, 1);
    const RowIndex offsets[] = {0, 0, 0, 0};
    std::vector<float> out(3 * 4, -1.0f);
    t.bag(nullptr, offsets, 3, out.data(),
          PrefetchSpec::paperDefault());
    for (float v : out)
        EXPECT_EQ(v, 0.0f);
}

TEST(EmbeddingBag, IndexErrorMidBatchLeavesEarlierSamplesComplete)
{
    // The kernel pools sample by sample; a poisoned index in sample 1
    // must not corrupt sample 0's already-written block. Sample 1's
    // own block is zero-initialized before the throw.
    EmbeddingTable t(16, 8, 3);
    const RowIndex indices[] = {5, 99};
    const RowIndex offsets[] = {0, 1, 2};
    std::vector<float> out(2 * 8, -1.0f);
    EXPECT_THROW(t.bag(indices, offsets, 2, out.data()), IndexError);
    for (std::size_t d = 0; d < 8; ++d) {
        EXPECT_EQ(out[d], t.rowPtr(5)[d]);
        EXPECT_EQ(out[8 + d], 0.0f);
    }
}

TEST(EmbeddingBag, PrefetchDistancePastEndOfStreamIsHarmless)
{
    // distance > total lookups: the look-ahead guard must skip every
    // prefetch rather than index past the array, and results must
    // still match the unprefetched run.
    EmbeddingTable t(32, 8, 7);
    const RowIndex indices[] = {3, 30, 12};
    const RowIndex offsets[] = {0, 2, 3};
    std::vector<float> base(2 * 8), got(2 * 8);
    t.bag(indices, offsets, 2, base.data());
    t.bag(indices, offsets, 2, got.data(), PrefetchSpec{64, 8, 3});
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], base[i]);
}

TEST(EmbeddingBag, PrefetchedLookupsAreBoundsCheckedToo)
{
    // The prefetch look-ahead reads indices[s + distance]; an
    // out-of-range *current* index must still throw even with
    // prefetching enabled.
    EmbeddingTable t(16, 8, 3);
    std::vector<float> out(8, 0.0f);
    std::vector<RowIndex> indices = {2, 4, 1000, 3};
    std::vector<RowIndex> offsets = {0, 4};
    EXPECT_THROW(t.bag(indices.data(), offsets.data(), 1, out.data(),
                       PrefetchSpec{2, 8, 3}),
                 IndexError);
}

} // namespace
