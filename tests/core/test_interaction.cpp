/**
 * @file
 * Unit tests for the dot-product feature interaction.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/interaction.hpp"
#include "core/types.hpp"

namespace
{

using namespace dlrmopt::core;

TEST(Interaction, OutputDimFormula)
{
    EXPECT_EQ(interactionOutputDim(0, 64), 64u);
    EXPECT_EQ(interactionOutputDim(1, 64), 64u + 1u);
    EXPECT_EQ(interactionOutputDim(2, 64), 64u + 3u);
    // rm2_1: 60 tables, dim 128 -> 128 + 60*61/2 = 1958.
    EXPECT_EQ(interactionOutputDim(60, 128), 1958u);
    // rm1: 32 tables, dim 64 -> 64 + 32*33/2 = 592.
    EXPECT_EQ(interactionOutputDim(32, 64), 592u);
}

TEST(Interaction, HandComputedTwoTables)
{
    // dim=2, batch=1, bottom=(1,2), emb0=(3,4), emb1=(5,6).
    const float bottom[] = {1.0f, 2.0f};
    const float e0[] = {3.0f, 4.0f};
    const float e1[] = {5.0f, 6.0f};
    std::vector<const float *> emb = {e0, e1};
    std::vector<float> out(interactionOutputDim(2, 2));
    dotInteraction(bottom, emb, 2, 1, 2, out.data());

    // Passthrough.
    EXPECT_FLOAT_EQ(out[0], 1.0f);
    EXPECT_FLOAT_EQ(out[1], 2.0f);
    // e0 . bottom = 3 + 8 = 11.
    EXPECT_FLOAT_EQ(out[2], 11.0f);
    // e1 . bottom = 5 + 12 = 17.
    EXPECT_FLOAT_EQ(out[3], 17.0f);
    // e1 . e0 = 15 + 24 = 39.
    EXPECT_FLOAT_EQ(out[4], 39.0f);
}

TEST(Interaction, BatchRowsAreIndependent)
{
    // Two samples with identical content must produce identical rows.
    const float bottom[] = {1.0f, 0.0f, 1.0f, 0.0f};
    const float e0[] = {2.0f, 3.0f, 2.0f, 3.0f};
    std::vector<const float *> emb = {e0};
    const std::size_t od = interactionOutputDim(1, 2);
    std::vector<float> out(2 * od);
    dotInteraction(bottom, emb, 1, 2, 2, out.data());
    for (std::size_t k = 0; k < od; ++k)
        EXPECT_FLOAT_EQ(out[k], out[od + k]);
}

TEST(Interaction, ZeroEmbeddingsYieldZeroDots)
{
    const float bottom[] = {1.0f, 2.0f};
    std::vector<float> zeros(2, 0.0f);
    std::vector<const float *> emb = {zeros.data(), zeros.data()};
    std::vector<float> out(interactionOutputDim(2, 2));
    dotInteraction(bottom, emb, 2, 1, 2, out.data());
    EXPECT_FLOAT_EQ(out[2], 0.0f);
    EXPECT_FLOAT_EQ(out[3], 0.0f);
    EXPECT_FLOAT_EQ(out[4], 0.0f);
}

TEST(Interaction, TransposedWritesSameBitsFeatureMajor)
{
    // dotInteractionTransposed runs the exact same dot() chains as
    // the row-major kernel and only scatters them feature-major:
    // out_t[f * batch + b] must equal out[b * F + f] bit for bit.
    const std::size_t tables = 3, batch = 5, dim = 4;
    std::vector<float> bottom(batch * dim);
    std::vector<float> e0(batch * dim), e1(batch * dim),
        e2(batch * dim);
    for (std::size_t i = 0; i < bottom.size(); ++i) {
        bottom[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(i)) - 0.5);
        e0[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(i + 100)) - 0.5);
        e1[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(i + 200)) - 0.5);
        e2[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(i + 300)) - 0.5);
    }
    std::vector<const float *> emb = {e0.data(), e1.data(), e2.data()};

    const std::size_t f = interactionOutputDim(tables, dim);
    std::vector<float> row_major(batch * f);
    std::vector<float> feat_major(f * batch);
    dotInteraction(bottom.data(), emb, tables, batch, dim,
                   row_major.data());
    dotInteractionTransposed(bottom.data(), emb, tables, batch, dim,
                             feat_major.data());
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t k = 0; k < f; ++k) {
            ASSERT_EQ(row_major[b * f + k], feat_major[k * batch + b])
                << "sample " << b << " feature " << k;
        }
    }
}

TEST(Interaction, SymmetricInputsProduceSymmetricDots)
{
    // If emb0 == emb1, then e0.bottom == e1.bottom.
    const float bottom[] = {1.0f, 1.0f};
    const float e[] = {4.0f, 5.0f};
    std::vector<const float *> emb = {e, e};
    std::vector<float> out(interactionOutputDim(2, 2));
    dotInteraction(bottom, emb, 2, 1, 2, out.data());
    EXPECT_FLOAT_EQ(out[2], out[3]);
}

} // namespace
