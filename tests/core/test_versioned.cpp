/**
 * @file
 * VersionedModel: epoch'd publish/pin/retire semantics — in-flight
 * pins keep a swapped-out version alive until they drain, version ids
 * are monotonic, and fingerprints separate versions that serve
 * different bytes.
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/snapshot.hpp"
#include "core/versioned.hpp"

namespace core = dlrmopt::core;

namespace
{

core::ModelConfig
tinyConfig()
{
    return core::rm1().scaledToFit(1u << 20);
}

} // namespace

TEST(VersionedTest, BuildIsDeterministic)
{
    const core::ModelConfig cfg = tinyConfig();
    auto a = core::ModelVersion::build(cfg, 1, 7);
    auto b = core::ModelVersion::build(cfg, 1, 7);
    EXPECT_EQ(a->fingerprint, b->fingerprint);
    EXPECT_EQ(a->version, 1u);
    EXPECT_EQ(a->weightSeed, 7u);

    // Different seed, version, or dtype → different fingerprint.
    EXPECT_NE(a->fingerprint,
              core::ModelVersion::build(cfg, 1, 8)->fingerprint);
    EXPECT_NE(a->fingerprint,
              core::ModelVersion::build(cfg, 2, 7)->fingerprint);
    EXPECT_NE(a->fingerprint,
              core::ModelVersion::build(cfg, 1, 7,
                                        core::EmbDtype::Bf16)
                  ->fingerprint);
}

TEST(VersionedTest, AdoptRejectsNulls)
{
    const core::ModelConfig cfg = tinyConfig();
    auto v = core::ModelVersion::build(cfg, 1, 7);
    EXPECT_THROW(core::ModelVersion::adopt(cfg, 2, 7, nullptr,
                                           v->model),
                 std::invalid_argument);
    EXPECT_THROW(core::ModelVersion::adopt(cfg, 2, 7, v->store,
                                           nullptr),
                 std::invalid_argument);
    EXPECT_THROW(core::VersionedModel(nullptr), std::invalid_argument);
}

TEST(VersionedTest, PublishSwapsAndPinsKeepOldAlive)
{
    const core::ModelConfig cfg = tinyConfig();
    core::VersionedModel vm(core::ModelVersion::build(cfg, 1, 7));
    EXPECT_EQ(vm.currentVersion(), 1u);

    // An in-flight dispatch pins version 1...
    auto pin = vm.current();
    ASSERT_EQ(pin->version, 1u);

    // ...then the fleet swaps to version 2 mid-flight.
    vm.publish(core::ModelVersion::build(cfg, 2, 8));
    EXPECT_EQ(vm.currentVersion(), 2u);
    EXPECT_EQ(vm.retiringCount(), 1u);

    // Version 1 cannot be reclaimed while the dispatch holds it: the
    // pinned model/store stay valid and serve the old bytes.
    EXPECT_EQ(vm.retireDrained(), 0u);
    EXPECT_EQ(vm.retiringCount(), 1u);
    EXPECT_EQ(pin->version, 1u);
    EXPECT_EQ(
        core::ModelSnapshot::probePredictions(*pin->model).size(),
        core::ModelSnapshot::kProbeBatch);

    // The dispatch completes → the pin drains → version 1 retires.
    pin.reset();
    EXPECT_EQ(vm.retireDrained(), 1u);
    EXPECT_EQ(vm.retiringCount(), 0u);
    EXPECT_EQ(vm.published(), 1u);
    EXPECT_EQ(vm.retired(), 1u);
}

TEST(VersionedTest, VersionIdsAreMonotonic)
{
    const core::ModelConfig cfg = tinyConfig();
    core::VersionedModel vm(core::ModelVersion::build(cfg, 5, 7));
    EXPECT_THROW(vm.publish(core::ModelVersion::build(cfg, 5, 8)),
                 std::invalid_argument);
    EXPECT_THROW(vm.publish(core::ModelVersion::build(cfg, 4, 8)),
                 std::invalid_argument);
    EXPECT_THROW(vm.publish(nullptr), std::invalid_argument);
    EXPECT_NO_THROW(vm.publish(core::ModelVersion::build(cfg, 6, 8)));
    EXPECT_EQ(vm.currentVersion(), 6u);
}

TEST(VersionedTest, MultipleRetiringVersionsDrainIndependently)
{
    const core::ModelConfig cfg = tinyConfig();
    core::VersionedModel vm(core::ModelVersion::build(cfg, 1, 7));
    auto pin1 = vm.current();
    vm.publish(core::ModelVersion::build(cfg, 2, 8));
    auto pin2 = vm.current();
    vm.publish(core::ModelVersion::build(cfg, 3, 9));
    EXPECT_EQ(vm.retiringCount(), 2u);

    // Draining pin2 first frees only version 2.
    pin2.reset();
    EXPECT_EQ(vm.retireDrained(), 1u);
    EXPECT_EQ(vm.retiringCount(), 1u);
    pin1.reset();
    EXPECT_EQ(vm.retireDrained(), 1u);
    EXPECT_EQ(vm.retiringCount(), 0u);
    EXPECT_EQ(vm.retired(), 2u);
}
