/**
 * @file
 * Unit tests for the Tensor container.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/tensor.hpp"

namespace
{

using dlrmopt::core::Tensor;

TEST(Tensor, DefaultConstructedIsEmpty)
{
    Tensor t;
    EXPECT_EQ(t.rows(), 0u);
    EXPECT_EQ(t.cols(), 0u);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.empty());
}

TEST(Tensor, ConstructionZeroInitializes)
{
    Tensor t(3, 5);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 5u);
    EXPECT_EQ(t.size(), 15u);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 5; ++c)
            EXPECT_EQ(t.at(r, c), 0.0f);
    }
}

TEST(Tensor, DataIsCachelineAligned)
{
    Tensor t(7, 9);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(t.data()) % 64, 0u);
}

TEST(Tensor, RowPointerArithmetic)
{
    Tensor t(4, 8);
    t.at(2, 3) = 42.0f;
    EXPECT_EQ(t.row(2)[3], 42.0f);
    EXPECT_EQ(t.row(0), t.data());
    EXPECT_EQ(t.row(3), t.data() + 3 * 8);
}

TEST(Tensor, FillAndZero)
{
    Tensor t(2, 2);
    t.fill(3.5f);
    EXPECT_EQ(t.at(1, 1), 3.5f);
    t.zero();
    EXPECT_EQ(t.at(0, 0), 0.0f);
    EXPECT_EQ(t.at(1, 1), 0.0f);
}

TEST(Tensor, ReshapeChangesShapeAndClears)
{
    Tensor t(2, 3);
    t.fill(1.0f);
    t.reshape(4, 5);
    EXPECT_EQ(t.rows(), 4u);
    EXPECT_EQ(t.cols(), 5u);
    EXPECT_EQ(t.at(0, 0), 0.0f);
}

TEST(Tensor, ReshapeSameShapeKeepsContents)
{
    Tensor t(2, 3);
    t.at(1, 2) = 9.0f;
    t.reshape(2, 3);
    EXPECT_EQ(t.at(1, 2), 9.0f);
}

TEST(Tensor, RandomizeIsDeterministic)
{
    Tensor a(5, 5), b(5, 5);
    a.randomize(123);
    b.randomize(123);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(Tensor, RandomizeDiffersAcrossSeeds)
{
    Tensor a(5, 5), b(5, 5);
    a.randomize(1);
    b.randomize(2);
    int diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diff += a.data()[i] != b.data()[i];
    EXPECT_GT(diff, 10);
}

TEST(Tensor, RandomizeRespectsScale)
{
    Tensor t(100, 10);
    t.randomize(7, 0.25f);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_LE(t.data()[i], 0.25f);
        EXPECT_GE(t.data()[i], -0.25f);
    }
}

} // namespace
