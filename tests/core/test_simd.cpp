/**
 * @file
 * Tests for the SIMD accumulate kernels: every implementation must
 * agree bit-for-bit with the scalar loop (same addition order) at
 * every alignment and tail length.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/embedding.hpp"
#include "core/gemm.hpp"
#include "core/simd.hpp"

namespace
{

using namespace dlrmopt::core;

std::vector<float>
pattern(std::size_t n, std::uint64_t seed)
{
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(seed + i)) * 8.0 -
            4.0);
    }
    return v;
}

class AccumulateLengths : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(AccumulateLengths, AllVariantsMatchScalar)
{
    const std::size_t n = GetParam();
    const auto row = pattern(n, 1);
    const auto base = pattern(n, 2);

    auto scalar = base;
    accumulateRowScalar(scalar.data(), row.data(), n);

    auto avx2 = base;
    accumulateRowAvx2(avx2.data(), row.data(), n);
    EXPECT_EQ(avx2, scalar);

    auto avx512 = base;
    accumulateRowAvx512(avx512.data(), row.data(), n);
    EXPECT_EQ(avx512, scalar);

    auto dispatched = base;
    accumulateRow(dispatched.data(), row.data(), n);
    EXPECT_EQ(dispatched, scalar);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AccumulateLengths,
                         ::testing::Values(std::size_t(0), 1, 3, 7, 8,
                                           15, 16, 17, 31, 64, 128,
                                           129, 1000));

TEST(Simd, DetectionIsStable)
{
    EXPECT_EQ(detectSimdLevel(), detectSimdLevel());
    EXPECT_FALSE(simdLevelName(detectSimdLevel()).empty());
}

TEST(Simd, SetLevelClampsToCapability)
{
    const SimdLevel cap = detectSimdLevel();
    const SimdLevel got = setSimdLevel(SimdLevel::Avx512);
    EXPECT_LE(static_cast<int>(got), static_cast<int>(cap));
    EXPECT_EQ(currentSimdLevel(), got);
    EXPECT_EQ(setSimdLevel(SimdLevel::Scalar), SimdLevel::Scalar);
    setSimdLevel(cap); // restore
}

TEST(Simd, EmbeddingBagIdenticalAcrossLevels)
{
    EmbeddingTable t(512, 48, 5); // 48 = non-multiple of 16
    std::vector<dlrmopt::RowIndex> idx = {1, 5, 7, 500, 3, 3};
    std::vector<dlrmopt::RowIndex> off = {0, 2, 6};
    std::vector<float> scalar_out(2 * 48), simd_out(2 * 48);

    const SimdLevel cap = detectSimdLevel();
    setSimdLevel(SimdLevel::Scalar);
    t.bag(idx.data(), off.data(), 2, scalar_out.data());
    setSimdLevel(cap);
    t.bag(idx.data(), off.data(), 2, simd_out.data());
    EXPECT_EQ(scalar_out, simd_out);
}

class SigmoidLengths : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SigmoidLengths, VectorVariantsTrackTheExactScalar)
{
    // The vector kernels use a polynomial exp; they must stay within
    // a tight relative tolerance of the libm-exact scalar everywhere,
    // including the clamp region and both tails.
    const std::size_t n = GetParam();
    std::vector<float> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(7 + i)) * 40.0 -
            20.0);
    }
    if (n > 2) {
        x[0] = 0.0f;
        x[1] = -100.0f; // beyond the exp clamp
        x[2] = 100.0f;
    }

    auto exact = x;
    sigmoidInplaceScalar(exact.data(), n);
    for (auto& variant : {&sigmoidInplaceAvx2, &sigmoidInplaceAvx512}) {
        auto got = x;
        variant(got.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(got[i], exact[i], 2e-7f)
                << "x = " << x[i] << " at " << i;
            EXPECT_GE(got[i], 0.0f);
            EXPECT_LE(got[i], 1.0f);
        }
    }
}

TEST_P(SigmoidLengths, ResultIsPositionIndependent)
{
    // Batching correctness hinges on every lane producing the same
    // bits regardless of where the element sits in the array: a
    // sample's prediction must not depend on its coalesced position.
    const std::size_t n = GetParam();
    if (n == 0)
        return;
    std::vector<float> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(91 + i)) * 16.0 -
            8.0);
    }

    const SimdLevel cap = detectSimdLevel();
    for (const SimdLevel lvl :
         {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512}) {
        if (static_cast<int>(lvl) > static_cast<int>(cap))
            continue;
        setSimdLevel(lvl);
        auto whole = x;
        sigmoidInplace(whole.data(), n);
        // Re-run each element alone at an arbitrary offset.
        for (std::size_t i = 0; i < n; ++i) {
            float solo[1] = {x[i]};
            sigmoidInplace(solo, 1);
            ASSERT_EQ(whole[i], solo[0])
                << simdLevelName(lvl) << " lane " << i;
        }
        // And as a shifted subarray (different lane assignment).
        if (n > 1) {
            auto shifted = std::vector<float>(x.begin() + 1, x.end());
            sigmoidInplace(shifted.data(), shifted.size());
            for (std::size_t i = 0; i + 1 < n; ++i)
                ASSERT_EQ(whole[i + 1], shifted[i]);
        }
    }
    setSimdLevel(cap);
}

INSTANTIATE_TEST_SUITE_P(Lengths, SigmoidLengths,
                         ::testing::Values(std::size_t(0), 1, 3, 7, 8,
                                           9, 15, 16, 17, 31, 33,
                                           128, 1000));

} // namespace
