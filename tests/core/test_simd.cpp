/**
 * @file
 * Tests for the SIMD accumulate kernels: every implementation must
 * agree bit-for-bit with the scalar loop (same addition order) at
 * every alignment and tail length.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/embedding.hpp"
#include "core/simd.hpp"

namespace
{

using namespace dlrmopt::core;

std::vector<float>
pattern(std::size_t n, std::uint64_t seed)
{
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(seed + i)) * 8.0 -
            4.0);
    }
    return v;
}

class AccumulateLengths : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(AccumulateLengths, AllVariantsMatchScalar)
{
    const std::size_t n = GetParam();
    const auto row = pattern(n, 1);
    const auto base = pattern(n, 2);

    auto scalar = base;
    accumulateRowScalar(scalar.data(), row.data(), n);

    auto avx2 = base;
    accumulateRowAvx2(avx2.data(), row.data(), n);
    EXPECT_EQ(avx2, scalar);

    auto avx512 = base;
    accumulateRowAvx512(avx512.data(), row.data(), n);
    EXPECT_EQ(avx512, scalar);

    auto dispatched = base;
    accumulateRow(dispatched.data(), row.data(), n);
    EXPECT_EQ(dispatched, scalar);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AccumulateLengths,
                         ::testing::Values(std::size_t(0), 1, 3, 7, 8,
                                           15, 16, 17, 31, 64, 128,
                                           129, 1000));

TEST(Simd, DetectionIsStable)
{
    EXPECT_EQ(detectSimdLevel(), detectSimdLevel());
    EXPECT_FALSE(simdLevelName(detectSimdLevel()).empty());
}

TEST(Simd, SetLevelClampsToCapability)
{
    const SimdLevel cap = detectSimdLevel();
    const SimdLevel got = setSimdLevel(SimdLevel::Avx512);
    EXPECT_LE(static_cast<int>(got), static_cast<int>(cap));
    EXPECT_EQ(currentSimdLevel(), got);
    EXPECT_EQ(setSimdLevel(SimdLevel::Scalar), SimdLevel::Scalar);
    setSimdLevel(cap); // restore
}

TEST(Simd, EmbeddingBagIdenticalAcrossLevels)
{
    EmbeddingTable t(512, 48, 5); // 48 = non-multiple of 16
    std::vector<dlrmopt::RowIndex> idx = {1, 5, 7, 500, 3, 3};
    std::vector<dlrmopt::RowIndex> off = {0, 2, 6};
    std::vector<float> scalar_out(2 * 48), simd_out(2 * 48);

    const SimdLevel cap = detectSimdLevel();
    setSimdLevel(SimdLevel::Scalar);
    t.bag(idx.data(), off.data(), 2, scalar_out.data());
    setSimdLevel(cap);
    t.bag(idx.data(), off.data(), 2, simd_out.data());
    EXPECT_EQ(scalar_out, simd_out);
}

} // namespace
