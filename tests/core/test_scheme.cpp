/**
 * @file
 * Tests for the scheme enumeration helpers.
 */

#include <gtest/gtest.h>

#include "core/scheme.hpp"

namespace
{

using namespace dlrmopt::core;

TEST(Scheme, NamesMatchPaperLegends)
{
    EXPECT_EQ(schemeName(Scheme::HwPfOff), "w/o HW-PF");
    EXPECT_EQ(schemeName(Scheme::Baseline), "Baseline");
    EXPECT_EQ(schemeName(Scheme::SwPf), "SW-PF");
    EXPECT_EQ(schemeName(Scheme::DpHt), "DP-HT");
    EXPECT_EQ(schemeName(Scheme::MpHt), "MP-HT");
    EXPECT_EQ(schemeName(Scheme::Integrated), "Integrated");
}

TEST(Scheme, SwPrefetchPredicate)
{
    EXPECT_TRUE(usesSwPrefetch(Scheme::SwPf));
    EXPECT_TRUE(usesSwPrefetch(Scheme::Integrated));
    EXPECT_FALSE(usesSwPrefetch(Scheme::Baseline));
    EXPECT_FALSE(usesSwPrefetch(Scheme::MpHt));
    EXPECT_FALSE(usesSwPrefetch(Scheme::DpHt));
    EXPECT_FALSE(usesSwPrefetch(Scheme::HwPfOff));
}

TEST(Scheme, MpHtPredicate)
{
    EXPECT_TRUE(usesMpHt(Scheme::MpHt));
    EXPECT_TRUE(usesMpHt(Scheme::Integrated));
    EXPECT_FALSE(usesMpHt(Scheme::DpHt));
    EXPECT_FALSE(usesMpHt(Scheme::Baseline));
}

TEST(Scheme, HwPrefetchPredicate)
{
    EXPECT_FALSE(usesHwPrefetch(Scheme::HwPfOff));
    for (Scheme s : {Scheme::Baseline, Scheme::SwPf, Scheme::DpHt,
                     Scheme::MpHt, Scheme::Integrated})
        EXPECT_TRUE(usesHwPrefetch(s));
}

TEST(Scheme, AllSchemesListsSixInOrder)
{
    ASSERT_EQ(allSchemes.size(), 6u);
    EXPECT_EQ(allSchemes.front(), Scheme::HwPfOff);
    EXPECT_EQ(allSchemes.back(), Scheme::Integrated);
}

} // namespace
