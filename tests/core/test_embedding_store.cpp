/**
 * @file
 * Tests for the shared EmbeddingStore and the DlrmModel view layer:
 * replicas must add zero embedding bytes, store-backed models must be
 * bitwise-identical to the pre-refactor standalone layout, and a
 * sharded forward (partial embeddingForward per shard + merge) must
 * reproduce the single-model forward exactly.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/dlrm.hpp"
#include "core/embedding_store.hpp"

namespace
{

using namespace dlrmopt::core;
using dlrmopt::RowIndex;

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "store_tiny";
    m.cls = ModelClass::RMC2;
    m.rows = 1024;
    m.dim = 16;
    m.tables = 4;
    m.lookups = 5;
    m.bottomMlp = {32, 24, 16};
    m.topMlp = {8, 1};
    return m;
}

SparseBatch
makeBatch(const ModelConfig& m, std::size_t batch, std::uint64_t seed)
{
    SparseBatch b;
    b.batchSize = batch;
    b.indices.resize(m.tables);
    b.offsets.resize(m.tables);
    for (std::size_t t = 0; t < m.tables; ++t) {
        for (std::size_t s = 0; s <= batch; ++s) {
            b.offsets[t].push_back(
                static_cast<RowIndex>(s * m.lookups));
        }
        for (std::size_t i = 0; i < batch * m.lookups; ++i) {
            b.indices[t].push_back(static_cast<RowIndex>(
                dlrmopt::mix64(seed + t * 1000 + i) % m.rows));
        }
    }
    return b;
}

TEST(EmbeddingStore, GeometryAndDeterminism)
{
    const ModelConfig cfg = tinyModel();
    const EmbeddingStore store(cfg, 42);
    EXPECT_EQ(store.numTables(), 4u);
    EXPECT_EQ(store.rows(), 1024u);
    EXPECT_EQ(store.dim(), 16u);
    EXPECT_EQ(store.bytes(), 4u * 1024u * 16u * 4u);

    // Same seed -> bitwise-equal table contents.
    const EmbeddingStore again(cfg, 42);
    for (std::size_t t = 0; t < store.numTables(); ++t) {
        for (std::size_t i = 0; i < 1024 * 16; ++i) {
            ASSERT_EQ(store.table(t).data()[i],
                      again.table(t).data()[i]);
        }
    }
}

TEST(EmbeddingStore, RejectsZeroTables)
{
    ModelConfig bad = tinyModel();
    bad.tables = 0;
    EXPECT_THROW(EmbeddingStore(bad, 1), std::invalid_argument);
}

TEST(EmbeddingStore, ReplicaViewsAddZeroEmbeddingBytes)
{
    // Acceptance criterion: N replica views over one store cost zero
    // embedding bytes beyond the single copy. The store's use-count
    // proves sharing; pointer identity proves no hidden copy.
    const ModelConfig cfg = tinyModel();
    auto store = EmbeddingStore::create(cfg, 42);
    ASSERT_EQ(store.use_count(), 1);

    std::vector<DlrmModel> replicas;
    const std::size_t kReplicas = 4;
    for (std::size_t i = 0; i < kReplicas; ++i)
        replicas.emplace_back(cfg, store, 42);

    EXPECT_EQ(store.use_count(),
              static_cast<long>(kReplicas) + 1);
    for (const DlrmModel& r : replicas) {
        EXPECT_TRUE(r.isFullView());
        EXPECT_EQ(r.embeddingBytes(), store->bytes());
        // Every view reads the exact same buffers.
        for (std::size_t t = 0; t < cfg.tables; ++t)
            EXPECT_EQ(r.table(t).data(), store->table(t).data());
    }
}

TEST(EmbeddingStore, StandaloneModelMatchesStoreBackedReplica)
{
    // The standalone constructor delegates through a private store
    // with the same seed derivation the old DlrmModel used, so a
    // store-backed replica must predict bitwise-identically.
    const ModelConfig cfg = tinyModel();
    DlrmModel standalone(cfg, 7);
    DlrmModel replica(cfg, EmbeddingStore::create(cfg, 7), 7);

    const std::size_t batch = 8;
    Tensor dense(batch, cfg.denseDim());
    dense.randomize(3);
    const SparseBatch sparse = makeBatch(cfg, batch, 5);

    DlrmWorkspace w1, w2;
    standalone.forward(dense, sparse, w1);
    replica.forward(dense, sparse, w2);
    ASSERT_EQ(w1.pred.size(), w2.pred.size());
    for (std::size_t i = 0; i < w1.pred.size(); ++i)
        EXPECT_EQ(w1.pred.data()[i], w2.pred.data()[i]);
}

TEST(EmbeddingStore, ShardedForwardIsBitwiseIdenticalToSingleModel)
{
    // Acceptance criterion: split the tables across two shard views,
    // run each shard's partial embeddingForward, merge, and finish
    // with the full view's interaction/top stages -- the predictions
    // must match a single model's forward bit for bit.
    const ModelConfig cfg = tinyModel();
    auto store = EmbeddingStore::create(cfg, 42);
    DlrmModel full(cfg, store, 42);
    DlrmModel shard_lo(cfg, store, 0, 1, 42);
    DlrmModel shard_hi(cfg, store, 1, 3, 42);

    EXPECT_FALSE(shard_lo.isFullView());
    EXPECT_EQ(shard_lo.numLocalTables(), 1u);
    EXPECT_EQ(shard_hi.firstTable(), 1u);
    EXPECT_EQ(shard_lo.embeddingBytes() + shard_hi.embeddingBytes(),
              store->bytes());

    const std::size_t batch = 8;
    Tensor dense(batch, cfg.denseDim());
    dense.randomize(3);
    const SparseBatch sparse = makeBatch(cfg, batch, 9);

    DlrmWorkspace single;
    full.forward(dense, sparse, single);

    Tensor part_lo, part_hi;
    shard_lo.embeddingForward(sparse, part_lo);
    shard_hi.embeddingForward(sparse, part_hi);
    EXPECT_EQ(part_lo.rows(), 1u);
    EXPECT_EQ(part_hi.rows(), 3u);
    EXPECT_EQ(part_hi.cols(), batch * cfg.dim);

    // Shard order must not matter to the merge.
    Tensor merged;
    mergeShardEmbeddings({&shard_hi, &shard_lo}, {&part_hi, &part_lo},
                         batch, merged);
    ASSERT_EQ(merged.rows(), cfg.tables);
    ASSERT_EQ(merged.cols(), batch * cfg.dim);
    for (std::size_t i = 0; i < merged.size(); ++i)
        ASSERT_EQ(merged.data()[i], single.embOut.data()[i]);

    Tensor bottom, inter, pred;
    full.bottomForward(dense, bottom);
    full.interactionForward(bottom, merged, batch, inter);
    full.topForward(inter, pred);
    ASSERT_EQ(pred.size(), single.pred.size());
    for (std::size_t i = 0; i < pred.size(); ++i)
        EXPECT_EQ(pred.data()[i], single.pred.data()[i]);
}

TEST(EmbeddingStore, ShardViewRefusesFullForward)
{
    const ModelConfig cfg = tinyModel();
    auto store = EmbeddingStore::create(cfg, 42);
    DlrmModel shard(cfg, store, 0, 2, 42);

    Tensor dense(2, cfg.denseDim());
    dense.randomize(1);
    const SparseBatch sparse = makeBatch(cfg, 2, 1);
    DlrmWorkspace ws;
    EXPECT_THROW(shard.forward(dense, sparse, ws), std::logic_error);
}

TEST(EmbeddingStore, ViewConstructionValidatesGeometryAndSpan)
{
    const ModelConfig cfg = tinyModel();
    auto store = EmbeddingStore::create(cfg, 42);

    // Store/config mismatch.
    ModelConfig other = cfg;
    other.tables = 3;
    EXPECT_THROW(DlrmModel(other, store, 42), std::invalid_argument);
    other = cfg;
    other.rows = 512;
    EXPECT_THROW(DlrmModel(other, store, 42), std::invalid_argument);

    // Empty and out-of-range table spans.
    EXPECT_THROW(DlrmModel(cfg, store, 0, 0, 42),
                 std::invalid_argument);
    EXPECT_THROW(DlrmModel(cfg, store, 2, 3, 42),
                 std::invalid_argument);
    EXPECT_THROW(DlrmModel(cfg, store, 4, 1, 42),
                 std::invalid_argument);

    EXPECT_THROW(DlrmModel(cfg, nullptr, 42), std::invalid_argument);
}

TEST(EmbeddingStoreIntegrity, ChecksumsVerifyOnBuild)
{
    const ModelConfig cfg = tinyModel();
    const EmbeddingStore store(cfg, 42, 256);
    EXPECT_EQ(store.blockRows(), 256u);
    EXPECT_EQ(store.numBlocks(), 4u); // 1024 rows / 256
    EXPECT_EQ(store.blockOfRow(0), 0u);
    EXPECT_EQ(store.blockOfRow(255), 0u);
    EXPECT_EQ(store.blockOfRow(256), 1u);
    for (std::size_t t = 0; t < store.numTables(); ++t) {
        for (std::size_t b = 0; b < store.numBlocks(); ++b) {
            EXPECT_TRUE(store.verifyBlock(t, b));
            EXPECT_EQ(store.computeChecksum(t, b),
                      store.storedChecksum(t, b));
        }
    }
    EXPECT_TRUE(store.findCorruptBlocks().empty());
}

TEST(EmbeddingStoreIntegrity, FlipIsDetectedAndRepairedBitwise)
{
    const ModelConfig cfg = tinyModel();
    auto store = EmbeddingStore::createMutable(cfg, 42);
    const EmbeddingStore pristine(cfg, 42);

    // One silent single-bit upset in table 2, row 700 (block 2).
    store->flipBit(2, 700, 5);
    EXPECT_FALSE(store->verifyBlock(2, 2));
    const auto corrupt = store->findCorruptBlocks();
    ASSERT_EQ(corrupt.size(), 1u);
    EXPECT_EQ(corrupt[0], (BlockRef{2, 2}));
    // Other tables/blocks are untouched.
    EXPECT_TRUE(store->verifyBlock(2, 1));
    EXPECT_TRUE(store->verifyBlock(1, 2));

    // Repair regenerates the exact as-built bytes, not approximations.
    store->repairBlock(2, 2);
    EXPECT_TRUE(store->verifyBlock(2, 2));
    EXPECT_TRUE(store->findCorruptBlocks().empty());
    for (std::size_t t = 0; t < cfg.tables; ++t) {
        for (std::size_t i = 0; i < cfg.rows * cfg.dim; ++i) {
            ASSERT_EQ(store->table(t).data()[i],
                      pristine.table(t).data()[i]);
        }
    }
}

TEST(EmbeddingStoreIntegrity, ShortLastBlockChecksAndRepairs)
{
    // blockRows that does not divide rows: the last block is short
    // (1024 = 3 * 300 + 124) and must checksum/repair exactly its own
    // rows, not read past the table.
    const ModelConfig cfg = tinyModel();
    auto store = EmbeddingStore::createMutable(cfg, 42, 300);
    EXPECT_EQ(store->numBlocks(), 4u);
    EXPECT_EQ(store->blockOfRow(1023), 3u);

    store->flipBit(0, 1023, 511); // last row, last payload bit
    EXPECT_FALSE(store->verifyBlock(0, 3));
    store->repairBlock(0, 3);
    EXPECT_TRUE(store->verifyBlock(0, 3));
}

TEST(EmbeddingStoreIntegrity, BlockRowsClampAndValidation)
{
    const ModelConfig cfg = tinyModel();
    EXPECT_THROW(EmbeddingStore(cfg, 42, 0), std::invalid_argument);

    // Oversized blockRows clamps to the table height: one block.
    const EmbeddingStore one(cfg, 42, 1u << 20);
    EXPECT_EQ(one.blockRows(), cfg.rows);
    EXPECT_EQ(one.numBlocks(), 1u);
    EXPECT_TRUE(one.verifyBlock(0, 0));
}

TEST(EmbeddingStoreIntegrity, MutationApiRangeChecks)
{
    const ModelConfig cfg = tinyModel();
    auto store = EmbeddingStore::createMutable(cfg, 42);
    EXPECT_THROW(store->flipBit(4, 0, 0), std::invalid_argument);
    EXPECT_THROW(store->flipBit(0, 1024, 0), std::invalid_argument);
    EXPECT_THROW(store->flipBit(0, 0, 16 * 32), std::invalid_argument);
    EXPECT_THROW(store->repairBlock(4, 0), std::invalid_argument);
    EXPECT_THROW(store->repairBlock(0, 4), std::invalid_argument);
}

TEST(EmbeddingStore, MergeValidatesCoverageAndShapes)
{
    const ModelConfig cfg = tinyModel();
    auto store = EmbeddingStore::create(cfg, 42);
    DlrmModel shard_lo(cfg, store, 0, 2, 42);
    DlrmModel shard_hi(cfg, store, 2, 2, 42);

    const std::size_t batch = 4;
    const SparseBatch sparse = makeBatch(cfg, batch, 3);
    Tensor part_lo, part_hi;
    shard_lo.embeddingForward(sparse, part_lo);
    shard_hi.embeddingForward(sparse, part_hi);

    Tensor out;
    // shards/parts length mismatch.
    EXPECT_THROW(mergeShardEmbeddings({&shard_lo}, {&part_lo, &part_hi},
                                      batch, out),
                 std::invalid_argument);
    // Missing coverage: tables [2, 4) never filled.
    EXPECT_THROW(
        mergeShardEmbeddings({&shard_lo}, {&part_lo}, batch, out),
        std::invalid_argument);
    // Double coverage of tables [0, 2).
    EXPECT_THROW(mergeShardEmbeddings({&shard_lo, &shard_lo},
                                      {&part_lo, &part_lo}, batch, out),
                 std::invalid_argument);
    // Part shape disagrees with the claimed batch size.
    EXPECT_THROW(mergeShardEmbeddings({&shard_lo, &shard_hi},
                                      {&part_lo, &part_hi}, 999, out),
                 std::invalid_argument);
}

} // namespace
