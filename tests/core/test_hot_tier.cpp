/**
 * @file
 * Tests for the pinned hot-row tier over the shared cold store: bag
 * output must be bitwise-identical tier on/off at every EmbDtype,
 * counted admission must promote the measured hot set and re-converge
 * after the hot set drifts, a flipped tier bit must be quarantined
 * and repaired with zero wrong outputs (the cold store stays the
 * source of truth one tier down), retargeting must carry the resident
 * set onto a new version's bytes, and the concurrent
 * bag x epoch x scrub x retarget interleaving must stay torn-free
 * (exercised under TSan via the sanitize-threads preset).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/dlrm.hpp"
#include "core/embedding_store.hpp"
#include "core/errors.hpp"
#include "core/hot_tier.hpp"

namespace
{

using namespace dlrmopt::core;
using dlrmopt::RowIndex;

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tier_tiny";
    m.cls = ModelClass::RMC2;
    m.rows = 2048;
    m.dim = 32;
    m.tables = 3;
    m.lookups = 6;
    m.bottomMlp = {32, 24, 32};
    m.topMlp = {8, 1};
    return m;
}

/**
 * A skewed index stream: 80% of lookups land in a small hot window
 * starting at @p hot_base (wrapping), the rest spread uniformly.
 */
void
makeBag(const ModelConfig& m, std::size_t samples, std::uint64_t seed,
        std::size_t hot_base, std::size_t hot_rows,
        std::vector<RowIndex>& indices, std::vector<RowIndex>& offsets)
{
    indices.clear();
    offsets.clear();
    for (std::size_t s = 0; s <= samples; ++s)
        offsets.push_back(static_cast<RowIndex>(s * m.lookups));
    for (std::size_t i = 0; i < samples * m.lookups; ++i) {
        const std::uint64_t r = dlrmopt::mix64(seed + i);
        const std::size_t row =
            (r % 5 != 0) ? (hot_base + r % hot_rows) % m.rows
                         : r % m.rows;
        indices.push_back(static_cast<RowIndex>(row));
    }
}

/** Warm the tier's admission counters from the stream and promote. */
void
warmFromStream(HotTierCache& tier, std::size_t table,
               const std::vector<RowIndex>& indices)
{
    for (const RowIndex idx : indices)
        tier.recordAccess(table, idx);
    tier.endEpoch();
}

TEST(HotTierConfig, ValidateRejectsBadKnobs)
{
    HotTierConfig hc;
    hc.decay = 1.0;
    EXPECT_THROW(hc.validate(), std::invalid_argument);
    hc = {};
    hc.decay = -0.1;
    EXPECT_THROW(hc.validate(), std::invalid_argument);
    hc = {};
    hc.blockRows = 0;
    EXPECT_THROW(hc.validate(), std::invalid_argument);
    hc = {};
    hc.minAccesses = 0;
    EXPECT_THROW(hc.validate(), std::invalid_argument);
    hc = {};
    hc.validate();

    EXPECT_THROW(HotTierCache(nullptr, hc), std::invalid_argument);
}

TEST(HotTier, BudgetSizingAndLineAlignedSlots)
{
    const auto m = tinyModel();
    for (const EmbDtype dt :
         {EmbDtype::Fp32, EmbDtype::Bf16, EmbDtype::Int8}) {
        const auto store = EmbeddingStore::create(m, 7, 64, dt);
        HotTierConfig hc;
        hc.budgetBytes = 64 * 1024;
        HotTierCache tier(store, hc);
        const std::size_t row_bytes = store->table(0).storedRowBytes();
        const std::size_t stride = tier.slotStride();
        EXPECT_EQ(stride % 64, 0u);
        EXPECT_GE(stride, row_bytes);
        EXPECT_LT(stride, row_bytes + 64);
        EXPECT_EQ(tier.capacityRows(), hc.budgetBytes / stride);
        EXPECT_EQ(tier.dtype(), dt);
        EXPECT_TRUE(tier.matches(*store));
    }
}

TEST(HotTier, ZeroBudgetIsAPassThrough)
{
    const auto m = tinyModel();
    const auto store = EmbeddingStore::create(m, 7);
    HotTierCache tier(store, HotTierConfig{});
    EXPECT_EQ(tier.capacityRows(), 0u);

    std::vector<RowIndex> idx, off;
    makeBag(m, 4, 11, 0, 64, idx, off);
    std::vector<float> got(4 * m.dim), want(4 * m.dim);
    tier.bag(0, idx.data(), off.data(), 4, got.data());
    store->table(0).bag(idx.data(), off.data(), 4, want.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(float)),
              0);
    const auto st = tier.stats();
    EXPECT_EQ(st.hits, 0u);
    EXPECT_EQ(st.misses, 4u * m.lookups);
}

TEST(HotTier, BagIsBitwiseIdenticalAtEveryDtype)
{
    const auto m = tinyModel();
    const std::size_t samples = 12;
    for (const EmbDtype dt :
         {EmbDtype::Fp32, EmbDtype::Bf16, EmbDtype::Int8}) {
        const auto store = EmbeddingStore::create(m, 9, 64, dt);
        HotTierConfig hc;
        hc.budgetBytes = 512 * 64 * 4; // plenty for the hot window
        hc.blockRows = 16;
        hc.minAccesses = 1;
        HotTierCache tier(store, hc);

        std::vector<RowIndex> idx, off;
        makeBag(m, samples, 33, 100, 128, idx, off);
        // Count every table's stream, then promote in ONE epoch — a
        // per-table epoch would decay earlier tables' single-access
        // rows below minAccesses before the last promotion ran.
        for (std::size_t t = 0; t < m.tables; ++t) {
            for (const RowIndex i : idx)
                tier.recordAccess(t, i);
        }
        tier.endEpoch();
        ASSERT_GT(tier.stats().residentRows, 0u);

        std::vector<float> got(samples * m.dim);
        std::vector<float> want(samples * m.dim);
        std::vector<float> ref(samples * m.dim);
        for (std::size_t t = 0; t < m.tables; ++t) {
            tier.bag(t, idx.data(), off.data(), samples, got.data());
            store->table(t).bag(idx.data(), off.data(), samples,
                                want.data());
            store->table(t).bagRef(idx.data(), off.data(), samples,
                                   ref.data());
            EXPECT_EQ(std::memcmp(got.data(), want.data(),
                                  got.size() * sizeof(float)),
                      0)
                << "tier vs cold bag, dtype "
                << embDtypeName(dt);
            EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                                  got.size() * sizeof(float)),
                      0)
                << "tier vs scalar reference, dtype "
                << embDtypeName(dt);
        }
        const auto st = tier.stats();
        EXPECT_GT(st.hits, 0u);
        EXPECT_GT(st.hitRate(), 0.5);
    }
}

TEST(HotTier, BagThrowsTheColdPathsIndexError)
{
    const auto m = tinyModel();
    const auto store = EmbeddingStore::create(m, 9);
    HotTierConfig hc;
    hc.budgetBytes = 64 * 1024;
    HotTierCache tier(store, hc);

    std::vector<RowIndex> idx = {0, static_cast<RowIndex>(m.rows)};
    std::vector<RowIndex> off = {0, 2};
    std::vector<float> out(m.dim);
    EXPECT_THROW(tier.bag(0, idx.data(), off.data(), 1, out.data()),
                 IndexError);
    EXPECT_THROW(tier.recordAccess(0, static_cast<RowIndex>(m.rows)),
                 std::invalid_argument);
    EXPECT_THROW(tier.recordAccess(m.tables, 0),
                 std::invalid_argument);
}

TEST(HotTier, PromotesTheCountedHotSetAndDecays)
{
    const auto m = tinyModel();
    const auto store = EmbeddingStore::create(m, 5);
    HotTierConfig hc;
    hc.budgetBytes = 8 * 1024;
    hc.minAccesses = 2;
    hc.decay = 0.5;
    HotTierCache tier(store, hc);
    const std::size_t cap = tier.capacityRows();
    ASSERT_GT(cap, 8u);

    // Rows 0..cap-1 of table 0 hot, row cap+5 seen once (below
    // minAccesses), everything else untouched.
    for (std::size_t r = 0; r < cap; ++r)
        tier.recordAccess(0, static_cast<RowIndex>(r), 10);
    tier.recordAccess(0, static_cast<RowIndex>(cap + 5), 1);
    tier.endEpoch();

    auto st = tier.stats();
    EXPECT_EQ(st.residentRows, cap);
    EXPECT_EQ(st.promotions, cap);
    EXPECT_EQ(st.epochs, 1u);
    for (std::size_t r = 0; r < cap; ++r)
        EXPECT_TRUE(tier.isResident(0, static_cast<RowIndex>(r)));
    EXPECT_FALSE(
        tier.isResident(0, static_cast<RowIndex>(cap + 5)));
    // Decay halved the counters at the boundary.
    EXPECT_EQ(tier.accessCount(0, 0), 5u);
}

TEST(HotTier, ReconvergesAfterHotSetDrift)
{
    const auto m = tinyModel();
    const auto store = EmbeddingStore::create(m, 5);
    HotTierConfig hc;
    hc.budgetBytes = 8 * 1024;
    hc.minAccesses = 1;
    hc.decay = 0.25; // forget fast: drift should win in few epochs
    HotTierCache tier(store, hc);
    const std::size_t cap = tier.capacityRows();

    // Epoch 1: hot set A = rows [0, cap) of table 0.
    for (std::size_t r = 0; r < cap; ++r)
        tier.recordAccess(0, static_cast<RowIndex>(r), 100);
    tier.endEpoch();
    ASSERT_TRUE(tier.isResident(0, 0));

    // The session drifts: hot set B = rows [1000, 1000 + cap), served
    // through real bags for several promotion epochs.
    std::vector<RowIndex> idx, off;
    makeBag(m, 16, 77, 1000, cap, idx, off);
    std::vector<float> out(16 * m.dim);
    for (int epoch = 0; epoch < 4; ++epoch) {
        for (int rep = 0; rep < 4; ++rep)
            tier.bag(0, idx.data(), off.data(), 16, out.data());
        tier.endEpoch();
    }

    // The tier must now hold (mostly) B, not A.
    std::size_t resident_b = 0;
    for (std::size_t r = 0; r < cap; ++r) {
        if (tier.isResident(
                0, static_cast<RowIndex>((1000 + r) % m.rows)))
            ++resident_b;
    }
    EXPECT_GT(resident_b, cap / 2);
    EXPECT_GT(tier.stats().demotions, 0u);

    // And serve B's stream mostly from the tier, bitwise-identically.
    const auto before = tier.stats();
    std::vector<float> want(16 * m.dim);
    tier.bag(0, idx.data(), off.data(), 16, out.data());
    store->table(0).bag(idx.data(), off.data(), 16, want.data());
    EXPECT_EQ(std::memcmp(out.data(), want.data(),
                          out.size() * sizeof(float)),
              0);
    const auto after = tier.stats();
    const double rate =
        static_cast<double>(after.hits - before.hits) /
        static_cast<double>(after.hits - before.hits + after.misses -
                            before.misses);
    EXPECT_GT(rate, 0.5);
}

TEST(HotTier, AutomaticEpochsFireFromServedLookups)
{
    const auto m = tinyModel();
    const auto store = EmbeddingStore::create(m, 5);
    HotTierConfig hc;
    hc.budgetBytes = 8 * 1024;
    hc.minAccesses = 1;
    hc.epochLookups = 200;
    HotTierCache tier(store, hc);

    std::vector<RowIndex> idx, off;
    makeBag(m, 16, 13, 0, 64, idx, off);
    std::vector<float> out(16 * m.dim);
    for (int rep = 0; rep < 8; ++rep)
        tier.bag(0, idx.data(), off.data(), 16, out.data());

    const auto st = tier.stats();
    EXPECT_GE(st.epochs, 2u);
    EXPECT_GT(st.residentRows, 0u);
    EXPECT_GT(st.hits, 0u);
}

TEST(HotTier, FlippedTierBitIsRepairedWithZeroWrongOutputs)
{
    const auto m = tinyModel();
    for (const EmbDtype dt :
         {EmbDtype::Fp32, EmbDtype::Bf16, EmbDtype::Int8}) {
        const auto store = EmbeddingStore::create(m, 3, 64, dt);
        HotTierConfig hc;
        hc.budgetBytes = 32 * 1024;
        hc.blockRows = 8;
        hc.minAccesses = 1;
        hc.verifyTouched = true;
        HotTierCache tier(store, hc);

        std::vector<RowIndex> idx, off;
        makeBag(m, 8, 21, 40, 64, idx, off);
        tier.recordAccess(0, 40, 100); // pin row 40 for certain
        warmFromStream(tier, 0, idx);
        ASSERT_TRUE(tier.isResident(0, 40));

        // Silently corrupt the *pinned copy* of a row the stream
        // keeps hitting; the cold store stays intact.
        ASSERT_TRUE(tier.flipBit(0, 40, 3));
        EXPECT_FALSE(tier.findCorruptBlocks().empty());

        // verify-touched must catch it before a byte is served: the
        // bag output stays bitwise-identical to the cold path.
        std::vector<float> got(8 * m.dim), want(8 * m.dim);
        tier.bag(0, idx.data(), off.data(), 8, got.data());
        store->table(0).bag(idx.data(), off.data(), 8, want.data());
        EXPECT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(float)),
                  0)
            << "dtype " << embDtypeName(dt);

        const auto st = tier.stats();
        EXPECT_GE(st.corruptionsFound, 1u);
        EXPECT_GE(st.blocksQuarantined, 1u);
        EXPECT_GE(st.blocksRepaired, 1u);
        EXPECT_TRUE(tier.findCorruptBlocks().empty());

        // Repaired, not evicted: the row serves from the tier again.
        const auto before = tier.stats();
        tier.bag(0, idx.data(), off.data(), 8, got.data());
        EXPECT_GT(tier.stats().hits, before.hits);

        // A flip on a non-resident row is a no-op...
        EXPECT_FALSE(tier.flipBit(0, static_cast<RowIndex>(2000), 0));
        // ...and out-of-range coordinates throw.
        EXPECT_THROW(tier.flipBit(m.tables, 0, 0),
                     std::invalid_argument);
    }
}

TEST(HotTier, ScrubTickFindsQuarantinesAndRepairs)
{
    const auto m = tinyModel();
    const auto store = EmbeddingStore::create(m, 3);
    HotTierConfig hc;
    hc.budgetBytes = 32 * 1024;
    hc.blockRows = 8;
    hc.minAccesses = 1;
    HotTierCache tier(store, hc);

    std::vector<RowIndex> idx, off;
    makeBag(m, 8, 21, 40, 64, idx, off);
    tier.recordAccess(1, 40, 100); // pin row 40 for certain
    warmFromStream(tier, 1, idx);
    ASSERT_TRUE(tier.flipBit(1, 40, 17));

    // One full round-robin sweep must find and repair the block.
    std::size_t scrubbed = 0;
    for (std::size_t i = 0; i < tier.numBlocks(); ++i)
        scrubbed += tier.scrubTick(1);
    EXPECT_EQ(scrubbed, tier.numBlocks());
    const auto st = tier.stats();
    EXPECT_EQ(st.corruptionsFound, 1u);
    EXPECT_EQ(st.blocksRepaired, 1u);
    EXPECT_TRUE(tier.findCorruptBlocks().empty());

    // Post-repair bags serve the intact bytes from the tier.
    std::vector<float> got(8 * m.dim), want(8 * m.dim);
    tier.bag(1, idx.data(), off.data(), 8, got.data());
    store->table(1).bag(idx.data(), off.data(), 8, want.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(float)),
              0);
}

TEST(HotTier, QuarantinedBlocksFallThroughUntilRepaired)
{
    const auto m = tinyModel();
    const auto store = EmbeddingStore::create(m, 3);
    HotTierConfig hc;
    hc.budgetBytes = 32 * 1024;
    hc.blockRows = 8;
    hc.minAccesses = 1;
    HotTierCache tier(store, hc);

    std::vector<RowIndex> idx, off;
    makeBag(m, 8, 21, 40, 64, idx, off);
    warmFromStream(tier, 0, idx);

    for (std::size_t b = 0; b < tier.numBlocks(); ++b)
        tier.quarantineBlock(b);
    EXPECT_TRUE(tier.blockQuarantined(0));

    // Every probe falls through: correct bytes, zero hits.
    const auto before = tier.stats();
    std::vector<float> got(8 * m.dim), want(8 * m.dim);
    tier.bag(0, idx.data(), off.data(), 8, got.data());
    store->table(0).bag(idx.data(), off.data(), 8, want.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(float)),
              0);
    const auto mid = tier.stats();
    EXPECT_EQ(mid.hits, before.hits);
    EXPECT_GT(mid.misses, before.misses);

    for (std::size_t b = 0; b < tier.numBlocks(); ++b)
        tier.repairBlock(b);
    EXPECT_FALSE(tier.blockQuarantined(0));
    tier.bag(0, idx.data(), off.data(), 8, got.data());
    EXPECT_GT(tier.stats().hits, mid.hits);
}

TEST(HotTier, RetargetServesTheNewVersionsBytes)
{
    const auto m = tinyModel();
    const auto v1 = EmbeddingStore::create(m, 100);
    const auto v2 = EmbeddingStore::create(m, 200); // same shape,
                                                    // different bytes
    HotTierConfig hc;
    hc.budgetBytes = 32 * 1024;
    hc.minAccesses = 1;
    HotTierCache tier(v1, hc);

    std::vector<RowIndex> idx, off;
    makeBag(m, 8, 55, 10, 64, idx, off);
    warmFromStream(tier, 0, idx);
    const std::size_t resident = tier.stats().residentRows;
    ASSERT_GT(resident, 0u);

    ASSERT_TRUE(tier.retarget(v2));
    EXPECT_TRUE(tier.matches(*v2));
    EXPECT_FALSE(tier.matches(*v1));
    // The resident set carried over...
    EXPECT_EQ(tier.stats().residentRows, resident);
    // ...and serves version 2's bytes from the first dispatch.
    std::vector<float> got(8 * m.dim), want(8 * m.dim);
    const auto before = tier.stats();
    tier.bag(0, idx.data(), off.data(), 8, got.data());
    v2->table(0).bag(idx.data(), off.data(), 8, want.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(float)),
              0);
    EXPECT_GT(tier.stats().hits, before.hits);

    // Geometry / dtype mismatches refuse and leave the tier as-is.
    auto wide = m;
    wide.dim = 64;
    EXPECT_FALSE(tier.retarget(EmbeddingStore::create(wide, 1)));
    EXPECT_FALSE(tier.retarget(
        EmbeddingStore::create(m, 1, 256, EmbDtype::Bf16)));
    EXPECT_TRUE(tier.matches(*v2));
    EXPECT_THROW(tier.retarget(nullptr), std::invalid_argument);
}

TEST(HotTier, ResetDropsResidencyAndCounters)
{
    const auto m = tinyModel();
    const auto store = EmbeddingStore::create(m, 3);
    HotTierConfig hc;
    hc.budgetBytes = 32 * 1024;
    hc.minAccesses = 1;
    HotTierCache tier(store, hc);

    std::vector<RowIndex> idx, off;
    makeBag(m, 8, 21, 40, 64, idx, off);
    warmFromStream(tier, 0, idx);
    ASSERT_GT(tier.stats().residentRows, 0u);

    tier.reset();
    const auto st = tier.stats();
    EXPECT_EQ(st.residentRows, 0u);
    EXPECT_EQ(tier.accessCount(0, 40), 0u);
    EXPECT_FALSE(tier.isResident(0, 40));

    // All-miss pass-through, still bitwise-correct.
    std::vector<float> got(8 * m.dim), want(8 * m.dim);
    const auto before = tier.stats();
    tier.bag(0, idx.data(), off.data(), 8, got.data());
    store->table(0).bag(idx.data(), off.data(), 8, want.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(float)),
              0);
    EXPECT_EQ(tier.stats().hits, before.hits);
}

TEST(HotTier, FullForwardIsBitwiseIdenticalTierOnOff)
{
    const auto m = tinyModel();
    DlrmModel model(m, 77);
    for (const EmbDtype dt :
         {EmbDtype::Fp32, EmbDtype::Bf16, EmbDtype::Int8}) {
        if (dt != EmbDtype::Fp32) {
            model.attachQuantizedStore(
                EmbeddingStore::create(m, 77, 256, dt));
        }
        const auto& store = model.sharedStoreFor(dt);
        HotTierConfig hc;
        hc.budgetBytes = 64 * 1024;
        hc.minAccesses = 1;
        HotTierCache tier(store, hc);

        const std::size_t batch = 6;
        SparseBatch sb;
        sb.batchSize = batch;
        sb.indices.resize(m.tables);
        sb.offsets.resize(m.tables);
        std::vector<RowIndex> idx, off;
        for (std::size_t t = 0; t < m.tables; ++t) {
            makeBag(m, batch, 900 + t, 64, 96, idx, off);
            sb.indices[t] = idx;
            sb.offsets[t] = off;
            warmFromStream(tier, t, idx);
        }
        Tensor dense(batch, m.denseDim());
        dense.randomize(5);

        DlrmWorkspace with_tier, without;
        const auto pf = PrefetchSpec::paperDefault();
        model.forward(dense, sb, with_tier, pf, dt, &tier);
        model.forward(dense, sb, without, pf, dt, nullptr);
        EXPECT_EQ(std::memcmp(with_tier.pred.data(),
                              without.pred.data(),
                              batch * sizeof(float)),
                  0)
            << "dtype " << embDtypeName(dt);
        EXPECT_GT(tier.stats().hits, 0u);

        // A tier built over a *different* store must be ignored by
        // the guard, not probed: predictions still match.
        const auto other = EmbeddingStore::create(m, 123, 256, dt);
        HotTierCache stale(other, hc);
        DlrmWorkspace guarded;
        model.forward(dense, sb, guarded, pf, dt, &stale);
        EXPECT_EQ(std::memcmp(guarded.pred.data(),
                              without.pred.data(),
                              batch * sizeof(float)),
                  0);
        EXPECT_EQ(stale.stats().hits + stale.stats().misses, 0u);
    }
}

/**
 * Concurrency: serving bags race promotion/demotion epochs, the
 * scrubber, bit flips, and a retarget. Run under
 * -DCMAKE_CXX_FLAGS=-fsanitize=thread (the sanitize-threads preset)
 * this is the data-race probe for the shared/exclusive lock protocol;
 * un-sanitized it still asserts the outputs stay bitwise-correct
 * through every interleaving.
 */
TEST(HotTier, ConcurrentBagsEpochsScrubAndRetargetStayCoherent)
{
    const auto m = tinyModel();
    const auto v1 = EmbeddingStore::create(m, 100);
    const auto v2 = EmbeddingStore::create(m, 100); // same bytes:
    // retargeting mid-serve must not change any output, so the race
    // check can assert bitwise equality throughout.
    HotTierConfig hc;
    hc.budgetBytes = 32 * 1024;
    hc.blockRows = 8;
    hc.minAccesses = 1;
    HotTierCache tier(v1, hc);

    std::vector<RowIndex> idx, off;
    makeBag(m, 8, 21, 40, 64, idx, off);
    warmFromStream(tier, 0, idx);
    std::vector<float> want(8 * m.dim);
    v1->table(0).bag(idx.data(), off.data(), 8, want.data());

    std::atomic<bool> stop{false};
    std::atomic<int> wrong{0};

    std::vector<std::thread> workers;
    for (int w = 0; w < 2; ++w) {
        workers.emplace_back([&, w] {
            std::vector<float> out(8 * m.dim);
            for (int i = 0; i < 300; ++i) {
                tier.bag(0, idx.data(), off.data(), 8, out.data());
                if (std::memcmp(out.data(), want.data(),
                                out.size() * sizeof(float)) != 0)
                    wrong.fetch_add(1);
                tier.recordAccess(0, static_cast<RowIndex>(
                                         (w * 331 + i) % m.rows));
            }
        });
    }
    std::thread churner([&] {
        for (int i = 0; i < 40 && !stop.load(); ++i) {
            tier.scrubTick(2);
            if (i % 10 == 7)
                tier.endEpoch();
            if (i == 20)
                tier.retarget(v2);
            std::this_thread::yield();
        }
    });
    for (auto& t : workers)
        t.join();
    stop.store(true);
    churner.join();

    EXPECT_EQ(wrong.load(), 0);
    // Whatever the interleaving, the tier must end internally
    // consistent: full scrub leaves zero corrupt blocks and a fresh
    // bag is still bitwise-identical.
    for (std::size_t b = 0; b < tier.numBlocks(); ++b)
        tier.scrubTick(1);
    EXPECT_TRUE(tier.findCorruptBlocks().empty());
    std::vector<float> out(8 * m.dim);
    tier.bag(0, idx.data(), off.data(), 8, out.data());
    EXPECT_EQ(std::memcmp(out.data(), want.data(),
                          out.size() * sizeof(float)),
              0);
}

} // namespace
