/**
 * @file
 * ModelSnapshot: crash-consistent save/load round trips at every
 * dtype, plus the corruption matrix — truncation at every section
 * boundary, single-bit flips in each section, dtype/config mismatch —
 * each of which must fail load cleanly with the serving model
 * untouched.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dlrm.hpp"
#include "core/errors.hpp"
#include "core/snapshot.hpp"

namespace core = dlrmopt::core;

namespace
{

core::ModelConfig
tinyConfig()
{
    core::ModelConfig cfg = core::rm1();
    cfg = cfg.scaledToFit(1u << 20);
    return cfg;
}

/** Self-cleaning path in the build dir's scratch space. */
class TempPath
{
  public:
    explicit TempPath(const std::string& name)
        : _path("snapshot_test_" + name + ".dlrmsnap")
    {
        std::remove(_path.c_str());
        std::remove((_path + ".tmp").c_str());
    }

    ~TempPath()
    {
        std::remove(_path.c_str());
        std::remove((_path + ".tmp").c_str());
    }

    const std::string& str() const { return _path; }

  private:
    std::string _path;
};

std::vector<std::uint8_t>
readAll(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string& path, const std::vector<std::uint8_t>& buf)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
}

core::DlrmModel
buildModel(const core::ModelConfig& cfg, core::EmbDtype dtype,
           std::uint64_t seed = 7)
{
    auto store = std::make_shared<const core::EmbeddingStore>(
        cfg, seed, 64, dtype);
    return core::DlrmModel(cfg, store, seed);
}

} // namespace

TEST(SnapshotTest, RoundTripIsBitwiseIdenticalPerDtype)
{
    const core::ModelConfig cfg = tinyConfig();
    for (core::EmbDtype dtype :
         {core::EmbDtype::Fp32, core::EmbDtype::Bf16,
          core::EmbDtype::Int8}) {
        SCOPED_TRACE(core::embDtypeName(dtype));
        TempPath path(std::string("roundtrip_") +
                      core::embDtypeName(dtype));
        const core::DlrmModel model = buildModel(cfg, dtype);

        ASSERT_TRUE(core::ModelSnapshot::save(path.str(), model, 3, 7));
        const core::LoadedSnapshot snap =
            core::ModelSnapshot::load(path.str(), &cfg);

        EXPECT_EQ(snap.info.modelVersion, 3u);
        EXPECT_EQ(snap.info.weightSeed, 7u);
        EXPECT_EQ(snap.info.dtype, dtype);
        ASSERT_EQ(snap.store->numTables(), cfg.tables);

        // Payload bytes identical, table by table.
        for (std::size_t t = 0; t < cfg.tables; ++t) {
            const core::EmbeddingTable& a = model.store()->table(t);
            const core::EmbeddingTable& b = snap.store->table(t);
            ASSERT_EQ(a.bytes(), b.bytes());
            EXPECT_EQ(
                0, std::memcmp(a.rawBytes(), b.rawBytes(), a.bytes()))
                << "table " << t;
            EXPECT_EQ(snap.store->tableSeed(t),
                      model.store()->tableSeed(t));
        }

        // MLP weights identical, layer by layer.
        for (std::size_t l = 0; l < model.bottomMlp().numLayers(); ++l) {
            const core::Tensor& a = model.bottomMlp().layerWeights(l);
            const core::Tensor& b = snap.model->bottomMlp().layerWeights(l);
            EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                                     a.rows() * a.cols() * sizeof(float)));
            EXPECT_EQ(model.bottomMlp().layerBias(l),
                      snap.model->bottomMlp().layerBias(l));
        }

        // The loaded model reproduces the golden probe bitwise.
        const std::vector<float> orig =
            core::ModelSnapshot::probePredictions(model);
        const std::vector<float> loaded =
            core::ModelSnapshot::probePredictions(*snap.model);
        ASSERT_EQ(orig.size(), loaded.size());
        EXPECT_EQ(0, std::memcmp(orig.data(), loaded.data(),
                                 orig.size() * sizeof(float)));
        EXPECT_EQ(orig, snap.probePredictions);

        // Save the loaded model again: the files must be bitwise
        // identical (full round-trip closure).
        TempPath again(std::string("again_") + core::embDtypeName(dtype));
        ASSERT_TRUE(
            core::ModelSnapshot::save(again.str(), *snap.model, 3, 7));
        EXPECT_EQ(readAll(path.str()), readAll(again.str()));
    }
}

TEST(SnapshotTest, VerifyFileReportsMetadata)
{
    const core::ModelConfig cfg = tinyConfig();
    TempPath path("verify");
    const core::DlrmModel model =
        buildModel(cfg, core::EmbDtype::Int8);
    ASSERT_TRUE(core::ModelSnapshot::save(path.str(), model, 9, 42));

    const core::SnapshotInfo info =
        core::ModelSnapshot::verifyFile(path.str());
    EXPECT_EQ(info.formatVersion, core::ModelSnapshot::kFormatVersion);
    EXPECT_EQ(info.modelVersion, 9u);
    EXPECT_EQ(info.weightSeed, 42u);
    EXPECT_EQ(info.dtype, core::EmbDtype::Int8);
    EXPECT_EQ(info.cfg.rows, cfg.rows);
    EXPECT_EQ(info.cfg.tables, cfg.tables);
    EXPECT_EQ(info.blocksPerTable,
              (cfg.rows + info.blockRows - 1) / info.blockRows);
    EXPECT_EQ(info.blockChecksums.size(),
              cfg.tables * info.blocksPerTable);
    EXPECT_EQ(info.probeCount, core::ModelSnapshot::kProbeBatch);
    EXPECT_EQ(info.fileBytes, readAll(path.str()).size());
}

TEST(SnapshotTest, ShardViewRefusesToSave)
{
    const core::ModelConfig cfg = tinyConfig();
    auto store = core::EmbeddingStore::create(cfg, 7);
    const core::DlrmModel shard(cfg, store, 0, 1, 7);
    TempPath path("shard");
    EXPECT_THROW(core::ModelSnapshot::save(path.str(), shard, 1),
                 std::invalid_argument);
}

TEST(SnapshotTest, MissingFileFailsWithIoError)
{
    EXPECT_THROW(
        core::ModelSnapshot::load("definitely_not_a_snapshot.bin"),
        core::IoError);
    EXPECT_THROW(
        core::ModelSnapshot::verifyFile("definitely_not_a_snapshot.bin"),
        core::IoError);
}

TEST(SnapshotTest, TruncationAtEveryBoundaryFailsCleanly)
{
    const core::ModelConfig cfg = tinyConfig();
    TempPath path("truncate");
    const core::DlrmModel model =
        buildModel(cfg, core::EmbDtype::Fp32);
    ASSERT_TRUE(core::ModelSnapshot::save(path.str(), model, 1));
    const std::vector<std::uint8_t> full = readAll(path.str());

    // A representative cut inside every section, plus the exact
    // section boundaries: header start, header/tables boundary area,
    // mid-payload, MLP section, probe floats, inside the footer.
    const std::size_t cuts[] = {
        0,               // empty file
        4,               // inside the magic
        8,               // magic only
        40,              // inside the header
        200,             // early table payload
        full.size() / 2, // mid payload
        full.size() - 200, // inside MLPs/probe
        full.size() - 17,  // one byte into the file CRC
        full.size() - 16,  // footer boundary (no CRC/end magic)
        full.size() - 8,   // CRC present, end magic missing
        full.size() - 1,   // one byte short
    };
    for (std::size_t cut : cuts) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        writeAll(path.str(), std::vector<std::uint8_t>(
                                 full.begin(), full.begin() + cut));
        EXPECT_THROW(core::ModelSnapshot::load(path.str()),
                     core::IoError);
        EXPECT_THROW(core::ModelSnapshot::verifyFile(path.str()),
                     core::IoError);
    }

    // Restore the intact bytes: the file must load again (the matrix
    // didn't poison anything).
    writeAll(path.str(), full);
    EXPECT_NO_THROW(core::ModelSnapshot::verifyFile(path.str()));
}

TEST(SnapshotTest, SingleBitFlipAnywhereFailsCleanly)
{
    const core::ModelConfig cfg = tinyConfig();
    TempPath path("bitflip");
    const core::DlrmModel model =
        buildModel(cfg, core::EmbDtype::Bf16);
    ASSERT_TRUE(core::ModelSnapshot::save(path.str(), model, 1));
    const std::vector<std::uint8_t> full = readAll(path.str());

    // One flip per section: magic, header field, header CRC, table
    // payload, recorded block checksum area, MLP weights, probe
    // floats, file CRC, end magic.
    const std::size_t offsets[] = {
        0, 13, 60, 300, full.size() / 3, full.size() / 2,
        full.size() - 100, full.size() - 40, full.size() - 12,
        full.size() - 3,
    };
    for (std::size_t off : offsets) {
        SCOPED_TRACE("offset=" + std::to_string(off));
        std::vector<std::uint8_t> bad = full;
        bad[off] ^= 0x10;
        writeAll(path.str(), bad);
        EXPECT_THROW(core::ModelSnapshot::load(path.str()),
                     core::IoError);
        EXPECT_THROW(core::ModelSnapshot::verifyFile(path.str()),
                     core::IoError);
    }
    writeAll(path.str(), full);
    EXPECT_NO_THROW(core::ModelSnapshot::load(path.str()));
}

TEST(SnapshotTest, ConfigMismatchIsRejected)
{
    const core::ModelConfig cfg = tinyConfig();
    TempPath path("mismatch");
    const core::DlrmModel model =
        buildModel(cfg, core::EmbDtype::Fp32);
    ASSERT_TRUE(core::ModelSnapshot::save(path.str(), model, 1));

    // Same file, different expectation: geometry, name, MLP widths.
    core::ModelConfig other = cfg;
    other.rows += 1;
    EXPECT_THROW(core::ModelSnapshot::load(path.str(), &other),
                 core::IoError);
    other = cfg;
    other.name = "someone-else";
    EXPECT_THROW(core::ModelSnapshot::load(path.str(), &other),
                 core::IoError);
    other = cfg;
    other.bottomMlp.front() += 1;
    EXPECT_THROW(core::ModelSnapshot::load(path.str(), &other),
                 core::IoError);

    // The matching config still loads.
    EXPECT_NO_THROW(core::ModelSnapshot::load(path.str(), &cfg));
}

TEST(SnapshotTest, TornWriteNeverTouchesTheTarget)
{
    const core::ModelConfig cfg = tinyConfig();
    TempPath path("torn");
    const core::DlrmModel v1 = buildModel(cfg, core::EmbDtype::Fp32, 7);
    ASSERT_TRUE(core::ModelSnapshot::save(path.str(), v1, 1));
    const std::vector<std::uint8_t> before = readAll(path.str());

    // A "crash" partway through writing version 2: the published file
    // still holds version 1, bit for bit, and still loads.
    const core::DlrmModel v2 =
        buildModel(cfg, core::EmbDtype::Fp32, 8);
    core::SnapshotFaults faults;
    faults.tornWrite = true;
    faults.tornBytes = before.size() / 2;
    EXPECT_FALSE(
        core::ModelSnapshot::save(path.str(), v2, 2, 8, &faults));
    EXPECT_EQ(before, readAll(path.str()));
    const core::LoadedSnapshot snap =
        core::ModelSnapshot::load(path.str());
    EXPECT_EQ(snap.info.modelVersion, 1u);

    // The torn temp file itself must never load.
    EXPECT_THROW(core::ModelSnapshot::load(path.str() + ".tmp"),
                 core::IoError);
}

TEST(SnapshotTest, ScriptedBitFlipFaultIsDetected)
{
    const core::ModelConfig cfg = tinyConfig();
    TempPath path("flipfault");
    const core::DlrmModel model =
        buildModel(cfg, core::EmbDtype::Int8);

    core::SnapshotFaults faults;
    faults.flipBit = true;
    faults.flipByteOffset = 12345;
    faults.flipMask = 0x40;
    ASSERT_TRUE(
        core::ModelSnapshot::save(path.str(), model, 1, 0, &faults));
    EXPECT_THROW(core::ModelSnapshot::load(path.str()),
                 core::IoError);
}

TEST(SnapshotTest, ScriptedBadAllocPropagates)
{
    const core::ModelConfig cfg = tinyConfig();
    TempPath path("badalloc");
    const core::DlrmModel model =
        buildModel(cfg, core::EmbDtype::Fp32);
    ASSERT_TRUE(core::ModelSnapshot::save(path.str(), model, 1));

    core::SnapshotFaults faults;
    faults.loadBadAlloc = true;
    EXPECT_THROW(
        core::ModelSnapshot::load(path.str(), nullptr, &faults),
        std::bad_alloc);
    // The fault is scripted, not sticky: a clean retry succeeds.
    EXPECT_NO_THROW(core::ModelSnapshot::load(path.str()));
}

TEST(SnapshotTest, LoadedStoreStaysRepairable)
{
    const core::ModelConfig cfg = tinyConfig();
    TempPath path("repair");
    const core::DlrmModel model =
        buildModel(cfg, core::EmbDtype::Fp32);
    ASSERT_TRUE(core::ModelSnapshot::save(path.str(), model, 1));

    core::LoadedSnapshot snap = core::ModelSnapshot::load(path.str());
    // Corrupt a row of the loaded store; scrub-style repair must
    // restore the as-built bytes because table seeds round-tripped.
    snap.store->flipBit(0, 3, 11);
    EXPECT_FALSE(snap.store->verifyBlock(0, snap.store->blockOfRow(3)));
    snap.store->repairBlock(0, snap.store->blockOfRow(3));
    EXPECT_TRUE(snap.store->verifyBlock(0, snap.store->blockOfRow(3)));
    EXPECT_TRUE(snap.store->findCorruptBlocks().empty());
}

TEST(SnapshotTest, ProbeBatchIsAPureFunctionOfTheConfig)
{
    const core::ModelConfig cfg = tinyConfig();
    core::Tensor d1, d2;
    core::SparseBatch s1, s2;
    core::ModelSnapshot::makeProbeBatch(cfg, d1, s1);
    core::ModelSnapshot::makeProbeBatch(cfg, d2, s2);
    ASSERT_EQ(d1.rows(), core::ModelSnapshot::kProbeBatch);
    EXPECT_EQ(0, std::memcmp(d1.data(), d2.data(),
                             d1.rows() * d1.cols() * sizeof(float)));
    EXPECT_EQ(s1.indices, s2.indices);
    EXPECT_EQ(s1.offsets, s2.offsets);
    EXPECT_TRUE(s1.valid(cfg.rows));
}
