/**
 * @file
 * Tests for the prefetch auto-tuner (structure and determinism of
 * the search, not absolute timings).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/autotune.hpp"

namespace
{

using namespace dlrmopt::core;
using dlrmopt::RowIndex;

TEST(TuneGrid, CoversPaperSweepAndDeduplicates)
{
    const auto grid8 = defaultTuneGrid(8);
    // 5 distances x 3 amounts, all distinct for 8-line rows.
    EXPECT_EQ(grid8.size(), 15u);
    for (const auto& s : grid8) {
        EXPECT_TRUE(s.enabled());
        EXPECT_LE(s.lines, 8);
        EXPECT_EQ(s.locality, 3);
    }

    // With 2-line rows, amounts {2, 4, full} collapse to {2}.
    const auto grid2 = defaultTuneGrid(2);
    EXPECT_EQ(grid2.size(), 5u);
    for (const auto& s : grid2)
        EXPECT_EQ(s.lines, 2);
}

class AutotuneTest : public ::testing::Test
{
  protected:
    AutotuneTest() : table(4096, 64, 11)
    {
        offsets.push_back(0);
        for (std::size_t s = 0; s < 16; ++s) {
            for (std::size_t l = 0; l < 20; ++l) {
                indices.push_back(static_cast<RowIndex>(
                    dlrmopt::mix64(s * 100 + l) % 4096));
            }
            offsets.push_back(static_cast<RowIndex>(indices.size()));
        }
    }

    EmbeddingTable table;
    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets;
};

TEST_F(AutotuneTest, MeasuresEveryCandidate)
{
    std::vector<PrefetchSpec> cands = {{1, 2, 3}, {4, 4, 3}, {8, 4, 3}};
    const auto res = tunePrefetch(table, indices.data(),
                                  offsets.data(), 16, cands, 1);
    EXPECT_EQ(res.measurements.size(), 3u);
    EXPECT_GT(res.baselineMs, 0.0);
    for (const auto& m : res.measurements)
        EXPECT_GT(m.millis, 0.0);
}

TEST_F(AutotuneTest, BestIsNeverSlowerThanReported)
{
    const auto res = tunePrefetch(table, indices.data(),
                                  offsets.data(), 16, {}, 1);
    EXPECT_LE(res.bestMs, res.baselineMs + 1e-9);
    for (const auto& m : res.measurements)
        EXPECT_LE(res.bestMs, m.millis + 1e-9);
    EXPECT_GE(res.speedup(), 1.0 - 1e-9);
}

TEST_F(AutotuneTest, WinnerIsBaselineOrACandidate)
{
    std::vector<PrefetchSpec> cands = {{4, 4, 3}};
    const auto res = tunePrefetch(table, indices.data(),
                                  offsets.data(), 16, cands, 1);
    const bool is_baseline = !res.best.enabled();
    const bool is_candidate = res.best.distance == 4 &&
                              res.best.lines == 4;
    EXPECT_TRUE(is_baseline || is_candidate);
}

TEST_F(AutotuneTest, TuningDoesNotCorruptResults)
{
    std::vector<float> want(16 * 64), got(16 * 64);
    table.bag(indices.data(), offsets.data(), 16, want.data());
    tunePrefetch(table, indices.data(), offsets.data(), 16, {}, 1);
    table.bag(indices.data(), offsets.data(), 16, got.data(),
              PrefetchSpec{4, 4, 3});
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(want[i], got[i]);
}

} // namespace
