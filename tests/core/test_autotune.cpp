/**
 * @file
 * Tests for the prefetch auto-tuner and the GEMM blocking-tile
 * auto-tuner (structure and determinism of the search, not absolute
 * timings).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "core/autotune.hpp"
#include "core/simd.hpp"

namespace
{

using namespace dlrmopt::core;
using dlrmopt::RowIndex;

TEST(TuneGrid, CoversPaperSweepAndDeduplicates)
{
    const auto grid8 = defaultTuneGrid(8);
    // 5 distances x 3 amounts, all distinct for 8-line rows.
    EXPECT_EQ(grid8.size(), 15u);
    for (const auto& s : grid8) {
        EXPECT_TRUE(s.enabled());
        EXPECT_LE(s.lines, 8);
        EXPECT_EQ(s.locality, 3);
    }

    // With 2-line rows, amounts {2, 4, full} collapse to {2}.
    const auto grid2 = defaultTuneGrid(2);
    EXPECT_EQ(grid2.size(), 5u);
    for (const auto& s : grid2)
        EXPECT_EQ(s.lines, 2);
}

class AutotuneTest : public ::testing::Test
{
  protected:
    AutotuneTest() : table(4096, 64, 11)
    {
        offsets.push_back(0);
        for (std::size_t s = 0; s < 16; ++s) {
            for (std::size_t l = 0; l < 20; ++l) {
                indices.push_back(static_cast<RowIndex>(
                    dlrmopt::mix64(s * 100 + l) % 4096));
            }
            offsets.push_back(static_cast<RowIndex>(indices.size()));
        }
    }

    EmbeddingTable table;
    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets;
};

TEST_F(AutotuneTest, MeasuresEveryCandidate)
{
    std::vector<PrefetchSpec> cands = {{1, 2, 3}, {4, 4, 3}, {8, 4, 3}};
    const auto res = tunePrefetch(table, indices.data(),
                                  offsets.data(), 16, cands, 1);
    EXPECT_EQ(res.measurements.size(), 3u);
    EXPECT_GT(res.baselineMs, 0.0);
    for (const auto& m : res.measurements)
        EXPECT_GT(m.millis, 0.0);
}

TEST_F(AutotuneTest, BestIsNeverSlowerThanReported)
{
    const auto res = tunePrefetch(table, indices.data(),
                                  offsets.data(), 16, {}, 1);
    EXPECT_LE(res.bestMs, res.baselineMs + 1e-9);
    for (const auto& m : res.measurements)
        EXPECT_LE(res.bestMs, m.millis + 1e-9);
    EXPECT_GE(res.speedup(), 1.0 - 1e-9);
}

TEST_F(AutotuneTest, WinnerIsBaselineOrACandidate)
{
    std::vector<PrefetchSpec> cands = {{4, 4, 3}};
    const auto res = tunePrefetch(table, indices.data(),
                                  offsets.data(), 16, cands, 1);
    const bool is_baseline = !res.best.enabled();
    const bool is_candidate = res.best.distance == 4 &&
                              res.best.lines == 4;
    EXPECT_TRUE(is_baseline || is_candidate);
}

TEST_F(AutotuneTest, TuningDoesNotCorruptResults)
{
    std::vector<float> want(16 * 64), got(16 * 64);
    table.bag(indices.data(), offsets.data(), 16, want.data());
    tunePrefetch(table, indices.data(), offsets.data(), 16, {}, 1);
    table.bag(indices.data(), offsets.data(), 16, got.data(),
              PrefetchSpec{4, 4, 3});
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(want[i], got[i]);
}

TEST(GemmTune, DefaultGridRespectsShapeAndLevel)
{
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512}) {
        const auto grid = defaultGemmTileGrid(64, 256, level);
        ASSERT_FALSE(grid.empty());
        for (const GemmTile& t : grid) {
            EXPECT_GE(t.mr, 1u);
            EXPECT_LE(t.mr, gemmMaxRows(level));
            EXPECT_GE(t.kc, 1u);
            EXPECT_LE(t.kc, 256u);
        }
        // Deduplicated and sorted.
        for (std::size_t i = 1; i < grid.size(); ++i)
            EXPECT_TRUE(std::tie(grid[i - 1].mr, grid[i - 1].kc) <
                        std::tie(grid[i].mr, grid[i].kc));
    }
    // GEMV-shaped point never proposes multi-row microtiles.
    for (const GemmTile& t :
         defaultGemmTileGrid(1, 512, SimdLevel::Avx512))
        EXPECT_EQ(t.mr, 1u);
}

TEST(GemmTune, MeasuresEveryCandidateAndInstallsWinner)
{
    GemmTileCache::instance().clear();
    const std::vector<GemmTile> cands = {{1, 64}, {2, 64}, {4, 32}};
    const auto res = tuneGemmTile(16, 64, 48, cands, 1, 5);

    EXPECT_EQ(res.batch, 16u);
    EXPECT_EQ(res.inDim, 64u);
    EXPECT_EQ(res.outDim, 48u);
    EXPECT_EQ(res.level, currentSimdLevel());
    EXPECT_EQ(res.measurements.size(), cands.size());
    EXPECT_GT(res.baselineMs, 0.0);
    for (const auto& m : res.measurements) {
        EXPECT_GT(m.millis, 0.0);
        EXPECT_LE(res.bestMs, m.millis + 1e-9);
    }
    // The winner is one of the candidates and lands in the cache.
    EXPECT_NE(std::find(cands.begin(), cands.end(), res.best),
              cands.end());
    EXPECT_TRUE(GemmTileCache::instance().contains(16, 64, 48,
                                                   res.level));
    EXPECT_EQ(GemmTileCache::instance().lookup(16, 64, 48, res.level),
              res.best);
    GemmTileCache::instance().clear();
}

TEST(GemmTune, TunedForwardStaysCorrect)
{
    GemmTileCache::instance().clear();
    tuneGemmTile(8, 96, 40, {}, 1, 9);

    // A forward through the freshly installed tile must still match
    // the reference.
    const std::size_t batch = 8, in_dim = 96, out_dim = 40;
    std::vector<float> in(batch * in_dim), w(out_dim * in_dim),
        b(out_dim);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(i)) - 0.5);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(i + 7)) - 0.5);
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<float>(
            dlrmopt::toUnitInterval(dlrmopt::mix64(i + 13)) - 0.5);

    const PackedWeights packed(w.data(), in_dim, out_dim);
    std::vector<float> got(batch * out_dim), want(batch * out_dim);
    denseLayerForwardPacked(in.data(), batch, packed, b.data(),
                            got.data(), true);
    denseLayerForwardRef(in.data(), batch, in_dim, w.data(), b.data(),
                         out_dim, want.data(), true);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_NEAR(got[i], want[i], 1e-3f) << "at " << i;
    GemmTileCache::instance().clear();
}

TEST(GemmTune, RejectsDegenerateShapes)
{
    EXPECT_THROW(tuneGemmTile(0, 16, 16), std::invalid_argument);
    EXPECT_THROW(tuneGemmTile(4, 16, 0), std::invalid_argument);
    EXPECT_THROW(tuneMlpGemm({64}), std::invalid_argument);
}

TEST(GemmTune, MlpSweepCoversEveryBucketAndLayer)
{
    GemmTileCache::instance().clear();
    const std::vector<std::size_t> dims = {32, 24, 8};
    const auto results = tuneMlpGemm(dims, {1, 16}, 1, 3);

    // 2 batches x (2 layers + the first layer's n-major slot),
    // layers innermost, trans point last per batch.
    ASSERT_EQ(results.size(), 6u);
    EXPECT_EQ(results[0].batch, 1u);
    EXPECT_EQ(results[0].inDim, 32u);
    EXPECT_EQ(results[0].outDim, 24u);
    EXPECT_FALSE(results[0].trans);
    EXPECT_EQ(results[1].inDim, 24u);
    EXPECT_EQ(results[1].outDim, 8u);
    EXPECT_TRUE(results[2].trans);
    EXPECT_EQ(results[2].inDim, 32u);
    EXPECT_EQ(results[2].outDim, 24u);
    EXPECT_EQ(results[3].batch, 16u);
    EXPECT_TRUE(results[5].trans);
    for (const auto& r : results) {
        EXPECT_TRUE(GemmTileCache::instance().contains(
            r.batch, r.inDim, r.outDim, r.level, r.trans));
    }
    EXPECT_EQ(GemmTileCache::instance().size(), 6u);

    // Default batches: one representative per m-bucket, each tuning
    // the single layer plus its n-major slot.
    GemmTileCache::instance().clear();
    const auto all = tuneMlpGemm({16, 8}, {}, 1, 3);
    EXPECT_EQ(all.size(),
              2 * static_cast<std::size_t>(GemmTileCache::numBuckets));
    GemmTileCache::instance().clear();
}

} // namespace
