/**
 * @file
 * Unit tests for the Mlp stack.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/gemm.hpp"
#include "core/mlp.hpp"
#include "core/simd.hpp"

namespace
{

using namespace dlrmopt::core;

TEST(Mlp, ShapesFollowDims)
{
    Mlp m({256, 128, 128}, 1);
    EXPECT_EQ(m.inputDim(), 256u);
    EXPECT_EQ(m.outputDim(), 128u);
    EXPECT_EQ(m.numLayers(), 2u);
}

TEST(Mlp, RejectsDegenerateDims)
{
    EXPECT_THROW(Mlp({128}, 1), std::invalid_argument);
    EXPECT_THROW(Mlp({}, 1), std::invalid_argument);
}

TEST(Mlp, FlopsPerSampleIsTwiceWeightCount)
{
    Mlp m({10, 20, 5}, 1);
    EXPECT_DOUBLE_EQ(m.flopsPerSample(), 2.0 * (10 * 20 + 20 * 5));
}

TEST(Mlp, ForwardProducesCorrectShape)
{
    Mlp m({256, 128, 128}, 1);
    Tensor in(64, 256);
    in.randomize(5);
    Tensor out;
    m.forward(in, out);
    EXPECT_EQ(out.rows(), 64u);
    EXPECT_EQ(out.cols(), 128u);
}

TEST(Mlp, ForwardIsDeterministic)
{
    Mlp m({64, 32, 8}, 9);
    Tensor in(4, 64);
    in.randomize(11);
    Tensor out1, out2;
    m.forward(in, out1);
    m.forward(in, out2);
    for (std::size_t i = 0; i < out1.size(); ++i)
        EXPECT_EQ(out1.data()[i], out2.data()[i]);
}

TEST(Mlp, SameSeedSameWeights)
{
    Mlp a({32, 16, 4}, 77);
    Mlp b({32, 16, 4}, 77);
    Tensor in(2, 32);
    in.randomize(3);
    Tensor oa, ob;
    a.forward(in, oa);
    b.forward(in, ob);
    for (std::size_t i = 0; i < oa.size(); ++i)
        EXPECT_EQ(oa.data()[i], ob.data()[i]);
}

TEST(Mlp, DifferentSeedsDifferentOutputs)
{
    Mlp a({32, 16, 4}, 1);
    Mlp b({32, 16, 4}, 2);
    Tensor in(2, 32);
    in.randomize(3);
    Tensor oa, ob;
    a.forward(in, oa);
    b.forward(in, ob);
    int diff = 0;
    for (std::size_t i = 0; i < oa.size(); ++i)
        diff += oa.data()[i] != ob.data()[i];
    EXPECT_GT(diff, 0);
}

TEST(Mlp, SingleLayerMatchesDenseKernel)
{
    Mlp m({8, 3}, 4);
    Tensor in(5, 8);
    in.randomize(21);
    Tensor out;
    m.forward(in, out);
    // The final layer is linear (no ReLU): negative values must
    // survive.
    bool has_negative = false;
    for (std::size_t i = 0; i < out.size(); ++i)
        has_negative |= out.data()[i] < 0.0f;
    EXPECT_TRUE(has_negative);
}

TEST(Mlp, PackedLayersMatchConstructionShapes)
{
    Mlp m({256, 128, 17}, 6);
    ASSERT_EQ(m.numLayers(), 2u);
    EXPECT_EQ(m.packedLayer(0).inDim(), 256u);
    EXPECT_EQ(m.packedLayer(0).outDim(), 128u);
    EXPECT_EQ(m.packedLayer(1).inDim(), 128u);
    EXPECT_EQ(m.packedLayer(1).outDim(), 17u); // tail panel, padded
    EXPECT_EQ(m.packedLayer(1).numPanels(), 2u);
    EXPECT_EQ(m.packedBytes(),
              m.packedLayer(0).bytes() + m.packedLayer(1).bytes());
}

TEST(Mlp, PackedForwardBitwiseIdenticalAcrossSimdLevels)
{
    // The whole stack, not just one layer: every hidden activation is
    // produced by the packed kernel and re-consumed by the next layer,
    // so any cross-level divergence would compound and be caught here.
    const SimdLevel saved = currentSimdLevel();
    Mlp m({96, 64, 32, 1}, 15);
    Tensor in(13, 96);
    in.randomize(8);

    setSimdLevel(SimdLevel::Scalar);
    Tensor want;
    m.forward(in, want);
    for (const SimdLevel level : {SimdLevel::Avx2, SimdLevel::Avx512}) {
        setSimdLevel(level);
        Tensor got;
        m.forward(in, got);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(want.data()[i], got.data()[i])
                << "level " << static_cast<int>(level) << " at " << i;
    }
    setSimdLevel(saved);
}

TEST(Mlp, TransposedForwardBitwiseIdentical)
{
    // forwardFromTransposed consumes feature-major activations
    // through the n-major packed engine for layer 0 and the normal
    // engine afterwards — the whole stack must match the row-major
    // forward bit for bit at every dispatch level.
    const SimdLevel saved = currentSimdLevel();
    Mlp m({40, 24, 8, 1}, 43);
    const std::size_t batch = 11;
    Tensor in(batch, 40);
    in.randomize(19);
    Tensor in_t(40, batch);
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t k = 0; k < 40; ++k)
            in_t.at(k, b) = in.at(b, k);
    }

    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512}) {
        setSimdLevel(level);
        Tensor want, got, sa, sb;
        m.forward(in, want);
        m.forwardFromTransposed(in_t, got, sa, sb);
        ASSERT_EQ(got.rows(), want.rows());
        ASSERT_EQ(got.cols(), want.cols());
        for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(want.data()[i], got.data()[i])
                << "level " << static_cast<int>(level) << " at " << i;
    }
    setSimdLevel(saved);
}

TEST(Mlp, ScratchForwardStillBitwiseIdentical)
{
    // The zero-alloc overload shares the packed engine; its ping-pong
    // scratch must not change a bit vs. the allocating overload.
    Mlp m({64, 48, 16}, 23);
    Tensor in(9, 64);
    in.randomize(31);
    Tensor want, got, sa, sb;
    m.forward(in, want);
    m.forward(in, got, sa, sb);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(want.data()[i], got.data()[i]);
}

TEST(Mlp, HiddenLayersApplyRelu)
{
    // With ReLU on hidden layers, feeding the negated input can only
    // change the output (check the nonlinearity is actually there).
    Mlp m({16, 16, 1}, 13);
    Tensor in(1, 16), neg(1, 16);
    in.randomize(5);
    for (std::size_t i = 0; i < 16; ++i)
        neg.data()[i] = -in.data()[i];
    Tensor o1, o2;
    m.forward(in, o1);
    m.forward(neg, o2);
    EXPECT_NE(o1.at(0, 0), -o2.at(0, 0)); // a linear map would negate
}

} // namespace
