/**
 * @file
 * Tests for CPU topology discovery and synthetic layouts.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/topology.hpp"

namespace
{

using namespace dlrmopt::sched;

TEST(Topology, SyntheticLayout)
{
    const Topology t = Topology::synthetic(4, 2);
    EXPECT_EQ(t.numPhysicalCores(), 4u);
    EXPECT_EQ(t.numLogicalCpus(), 8u);
    EXPECT_TRUE(t.smtAvailable());
    EXPECT_EQ(t.siblings(0), (std::vector<int>{0, 1}));
    EXPECT_EQ(t.siblings(3), (std::vector<int>{6, 7}));
}

TEST(Topology, SyntheticWithoutSmt)
{
    const Topology t = Topology::synthetic(6, 1);
    EXPECT_EQ(t.numPhysicalCores(), 6u);
    EXPECT_EQ(t.numLogicalCpus(), 6u);
    EXPECT_FALSE(t.smtAvailable());
}

TEST(Topology, DetectReturnsSomething)
{
    const Topology t = Topology::detect();
    EXPECT_GE(t.numPhysicalCores(), 1u);
    EXPECT_GE(t.numLogicalCpus(), t.numPhysicalCores());
    // Every logical CPU id appears exactly once.
    std::vector<int> all;
    for (std::size_t c = 0; c < t.numPhysicalCores(); ++c) {
        for (int cpu : t.siblings(c))
            all.push_back(cpu);
    }
    std::sort(all.begin(), all.end());
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) ==
                all.end());
}

TEST(Topology, PinToCurrentCpuSucceedsOrFailsGracefully)
{
    // Pinning to CPU 0 should normally work; a restricted sandbox may
    // refuse, which must be reported as false, not crash.
    const bool ok = pinThreadToCpu(0);
    (void)ok;
    // Invalid ids must fail cleanly.
    EXPECT_FALSE(pinThreadToCpu(-1));
    EXPECT_FALSE(pinThreadToCpu(1 << 20));
}

} // namespace
