/**
 * @file
 * Tests for CPU topology discovery and synthetic layouts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sched/topology.hpp"

namespace
{

using namespace dlrmopt::sched;

TEST(Topology, SyntheticLayout)
{
    const Topology t = Topology::synthetic(4, 2);
    EXPECT_EQ(t.numPhysicalCores(), 4u);
    EXPECT_EQ(t.numLogicalCpus(), 8u);
    EXPECT_TRUE(t.smtAvailable());
    EXPECT_EQ(t.siblings(0), (std::vector<int>{0, 1}));
    EXPECT_EQ(t.siblings(3), (std::vector<int>{6, 7}));
}

TEST(Topology, SyntheticWithoutSmt)
{
    const Topology t = Topology::synthetic(6, 1);
    EXPECT_EQ(t.numPhysicalCores(), 6u);
    EXPECT_EQ(t.numLogicalCpus(), 6u);
    EXPECT_FALSE(t.smtAvailable());
}

TEST(Topology, DetectReturnsSomething)
{
    const Topology t = Topology::detect();
    EXPECT_GE(t.numPhysicalCores(), 1u);
    EXPECT_GE(t.numLogicalCpus(), t.numPhysicalCores());
    // Every logical CPU id appears exactly once.
    std::vector<int> all;
    for (std::size_t c = 0; c < t.numPhysicalCores(); ++c) {
        for (int cpu : t.siblings(c))
            all.push_back(cpu);
    }
    std::sort(all.begin(), all.end());
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) ==
                all.end());
}

TEST(Topology, PartitionCoversAllCoresDisjointly)
{
    const Topology t = Topology::synthetic(6, 2);
    const auto groups = t.partition(3);
    ASSERT_EQ(groups.size(), 3u);

    // Every logical CPU of the parent appears in exactly one group.
    std::vector<int> all;
    for (const Topology& g : groups) {
        EXPECT_EQ(g.numPhysicalCores(), 2u);
        EXPECT_TRUE(g.smtAvailable());
        for (std::size_t c = 0; c < g.numPhysicalCores(); ++c) {
            for (int cpu : g.siblings(c))
                all.push_back(cpu);
        }
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), t.numLogicalCpus());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], static_cast<int>(i));
}

TEST(Topology, PartitionSplitsUnevenCountsNearEvenly)
{
    // 7 cores over 3 groups: sizes 3, 2, 2 (leading groups take the
    // remainder), never 5, 1, 1.
    const Topology t = Topology::synthetic(7, 1);
    const auto groups = t.partition(3);
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0].numPhysicalCores(), 3u);
    EXPECT_EQ(groups[1].numPhysicalCores(), 2u);
    EXPECT_EQ(groups[2].numPhysicalCores(), 2u);

    // n == cores degenerates to one core per group.
    for (const Topology& g : t.partition(7))
        EXPECT_EQ(g.numPhysicalCores(), 1u);
}

TEST(Topology, PartitionRejectsImpossibleGroupCounts)
{
    const Topology t = Topology::synthetic(4, 2);
    EXPECT_THROW(t.partition(0), std::invalid_argument);
    EXPECT_THROW(t.partition(5), std::invalid_argument);
}

TEST(Topology, PipelineSplitGivesGatherTheExtraCore)
{
    // Even count: a clean halving.
    const PipelineSplit even = Topology::synthetic(4, 2).pipelineSplit();
    EXPECT_EQ(even.gather.numPhysicalCores(), 2u);
    EXPECT_EQ(even.compute.numPhysicalCores(), 2u);

    // Odd count: the memory-bound gather group takes the remainder
    // (partition puts the extra core in the leading group).
    const PipelineSplit odd = Topology::synthetic(5, 2).pipelineSplit();
    EXPECT_EQ(odd.gather.numPhysicalCores(), 3u);
    EXPECT_EQ(odd.compute.numPhysicalCores(), 2u);

    // The two lanes are disjoint and jointly cover the parent.
    const Topology t = Topology::synthetic(5, 2);
    std::vector<int> all;
    for (const Topology *g : {&odd.gather, &odd.compute}) {
        for (std::size_t c = 0; c < g->numPhysicalCores(); ++c) {
            for (int cpu : g->siblings(c))
                all.push_back(cpu);
        }
    }
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), t.numLogicalCpus());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], static_cast<int>(i));

    // A two-core host still pipelines: one core per lane.
    const PipelineSplit pair = Topology::synthetic(2, 1).pipelineSplit();
    EXPECT_EQ(pair.gather.numPhysicalCores(), 1u);
    EXPECT_EQ(pair.compute.numPhysicalCores(), 1u);
}

TEST(Topology, PipelineSplitRejectsSingleCoreHosts)
{
    EXPECT_THROW(Topology::synthetic(1, 2).pipelineSplit(),
                 std::invalid_argument);
}

TEST(Topology, PinToCurrentCpuSucceedsOrFailsGracefully)
{
    // Pinning to CPU 0 should normally work; a restricted sandbox may
    // refuse, which must be reported as false, not crash.
    const bool ok = pinThreadToCpu(0);
    (void)ok;
    // Invalid ids must fail cleanly.
    EXPECT_FALSE(pinThreadToCpu(-1));
    EXPECT_FALSE(pinThreadToCpu(1 << 20));
}

} // namespace
