/**
 * @file
 * Tests for the HT-aware thread pool: per-core queues, no task
 * migration, exception propagation, and idle synchronization.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "sched/ht_thread_pool.hpp"

namespace
{

using namespace dlrmopt::sched;

TEST(HtThreadPool, SpawnsOneWorkerPerHyperthread)
{
    HtThreadPool pool(Topology::synthetic(3, 2), false);
    EXPECT_EQ(pool.numCores(), 3u);
    EXPECT_EQ(pool.numWorkers(), 6u);
}

TEST(HtThreadPool, ExecutesSubmittedTasks)
{
    HtThreadPool pool(Topology::synthetic(2, 2), false);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 50; ++i)
        futs.push_back(pool.submit(i % 2, [&] { ++counter; }));
    for (auto& f : futs)
        f.get();
    EXPECT_EQ(counter.load(), 50);
}

TEST(HtThreadPool, TasksStayOnTheirCore)
{
    // The paper's thread-pool change: a task submitted to core c runs
    // only on that core's sibling workers (no work stealing).
    const Topology topo = Topology::synthetic(2, 2);
    HtThreadPool pool(topo, false);

    std::mutex mtx;
    std::set<std::thread::id> core0_threads, core1_threads;

    std::vector<std::future<void>> futs;
    for (int i = 0; i < 40; ++i) {
        futs.push_back(pool.submit(0, [&] {
            std::lock_guard<std::mutex> lk(mtx);
            core0_threads.insert(std::this_thread::get_id());
        }));
        futs.push_back(pool.submit(1, [&] {
            std::lock_guard<std::mutex> lk(mtx);
            core1_threads.insert(std::this_thread::get_id());
        }));
    }
    for (auto& f : futs)
        f.get();

    // At most 2 distinct worker threads per core, and the sets are
    // disjoint (no migration across cores).
    EXPECT_LE(core0_threads.size(), 2u);
    EXPECT_LE(core1_threads.size(), 2u);
    for (const auto& id : core0_threads)
        EXPECT_EQ(core1_threads.count(id), 0u);
}

TEST(HtThreadPool, SubmitAnyDistributesAcrossCores)
{
    HtThreadPool pool(Topology::synthetic(4, 1), false);
    std::mutex mtx;
    std::set<std::thread::id> threads;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i) {
        futs.push_back(pool.submitAny([&] {
            std::lock_guard<std::mutex> lk(mtx);
            threads.insert(std::this_thread::get_id());
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }));
    }
    for (auto& f : futs)
        f.get();
    // With 64 spread tasks, more than one core must have been used.
    EXPECT_GE(threads.size(), 2u);
}

TEST(HtThreadPool, ExceptionsPropagateThroughFutures)
{
    HtThreadPool pool(Topology::synthetic(1, 2), false);
    auto fut = pool.submit(0, [] {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(HtThreadPool, SubmitToUnknownCoreThrows)
{
    HtThreadPool pool(Topology::synthetic(2, 1), false);
    EXPECT_THROW(pool.submit(5, [] {}), std::out_of_range);
}

TEST(HtThreadPool, WaitIdleBlocksUntilDrained)
{
    HtThreadPool pool(Topology::synthetic(2, 2), false);
    std::atomic<int> done{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit(i % 2, [&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            ++done;
        });
    }
    pool.waitIdle();
    EXPECT_EQ(done.load(), 16);
}

TEST(HtThreadPool, ColocatedStageTasksRunConcurrently)
{
    // The MP-HT pattern: an embedding task and a bottom-MLP task on
    // the same core's two hyperthreads must be able to overlap.
    HtThreadPool pool(Topology::synthetic(1, 2), false);
    std::atomic<bool> a_started{false}, b_observed_a{false};

    auto fa = pool.submit(0, [&] {
        a_started = true;
        // Hold the "embedding" thread busy until the sibling sees us
        // or a timeout passes.
        for (int i = 0; i < 2000 && !b_observed_a; ++i)
            std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
    auto fb = pool.submit(0, [&] {
        for (int i = 0; i < 2000 && !a_started; ++i)
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        b_observed_a = a_started.load();
    });
    fa.get();
    fb.get();
    EXPECT_TRUE(b_observed_a.load());
}

TEST(HtThreadPool, PoolSurvivesThrowingTasksAndStaysUsable)
{
    // Regression: a throwing task used to be able to take the whole
    // process down; now it must settle the future and leave the pool
    // fully operational.
    HtThreadPool pool(Topology::synthetic(2, 2), false);

    std::vector<std::future<void>> bad;
    for (int i = 0; i < 20; ++i) {
        bad.push_back(pool.submit(i % 2, [] {
            throw std::runtime_error("injected");
        }));
    }
    for (auto& f : bad)
        EXPECT_THROW(f.get(), std::runtime_error);

    std::atomic<int> ok{0};
    std::vector<std::future<void>> good;
    for (int i = 0; i < 20; ++i)
        good.push_back(pool.submit(i % 2, [&] { ++ok; }));
    for (auto& f : good)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(ok.load(), 20);
}

TEST(HtThreadPool, HealthCountersTrackFailuresPerCore)
{
    HtThreadPool pool(Topology::synthetic(2, 1), false);

    std::vector<std::future<void>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(pool.submit(0, [] {}));
    for (int i = 0; i < 4; ++i) {
        futs.push_back(pool.submit(1, [] {
            throw std::runtime_error("injected");
        }));
    }
    for (auto& f : futs)
        f.wait();
    pool.waitIdle();

    EXPECT_EQ(pool.health(0).completed, 6u);
    EXPECT_EQ(pool.health(0).failed, 0u);
    EXPECT_EQ(pool.health(1).completed, 0u);
    EXPECT_EQ(pool.health(1).failed, 4u);
    EXPECT_EQ(pool.totalFailed(), 4u);
    EXPECT_THROW(pool.health(9), std::out_of_range);
}

TEST(HtThreadPool, WaitIdleNotPoisonedByThrowingTasks)
{
    // The inflight/pending bookkeeping must be exception-safe, or
    // waitIdle() would hang forever after a failed task.
    HtThreadPool pool(Topology::synthetic(2, 2), false);
    for (int i = 0; i < 16; ++i) {
        pool.submit(i % 2, [] {
            throw std::runtime_error("injected");
        });
    }
    pool.waitIdle(); // must return, not deadlock
    EXPECT_EQ(pool.totalFailed(), 16u);
}

TEST(HtThreadPool, DestructorSafeAfterWorkerFailedMidTask)
{
    // Submit throwing tasks and destroy the pool immediately — the
    // join must not deadlock on a queue whose worker just failed a
    // task, and discarded futures must not crash anything.
    for (int round = 0; round < 8; ++round) {
        HtThreadPool pool(Topology::synthetic(2, 2), false);
        for (int i = 0; i < 8; ++i) {
            pool.submit(i % 2, [] {
                throw std::runtime_error("injected");
            });
        }
        // No waitIdle: destructor runs with tasks still in flight.
    }
    SUCCEED();
}

TEST(HtThreadPool, DestructorDrainsCleanly)
{
    std::atomic<int> count{0};
    {
        HtThreadPool pool(Topology::synthetic(2, 2), false);
        for (int i = 0; i < 8; ++i)
            pool.submit(i % 2, [&] { ++count; });
        pool.waitIdle();
    } // destructor joins workers
    EXPECT_EQ(count.load(), 8);
}

} // namespace
