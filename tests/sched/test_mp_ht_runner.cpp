/**
 * @file
 * Tests for the real MP-HT runner: predictions must match sequential
 * inference exactly under every topology, batch-to-core mapping must
 * hold, and in-flight batches must not corrupt each other.
 */

#include <gtest/gtest.h>

#include "core/errors.hpp"
#include "sched/mp_ht_runner.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;

core::ModelConfig
smallModel()
{
    core::ModelConfig m;
    m.name = "runner_small";
    m.cls = core::ModelClass::RMC2;
    m.rows = 8192;
    m.dim = 32;
    m.tables = 4;
    m.lookups = 6;
    m.bottomMlp = {48, 32, 32};
    m.topMlp = {16, 1};
    return m;
}

class MpHtRunnerTest : public ::testing::Test
{
  protected:
    MpHtRunnerTest() : model(smallModel(), 21)
    {
        traces::TraceConfig tc = traces::TraceConfig::forModel(
            smallModel(), traces::Hotness::Medium, 3);
        tc.batchSize = 8;
        traces::TraceGenerator gen(tc);
        for (std::size_t b = 0; b < 10; ++b)
            batches.push_back(gen.batch(b));
        dense.reshape(8, smallModel().denseDim());
        dense.randomize(5);

        // Sequential reference predictions.
        core::DlrmWorkspace ws;
        for (const auto& b : batches) {
            model.forward(dense, b, ws);
            expected.emplace_back(ws.pred.data(),
                                  ws.pred.data() + ws.pred.size());
        }
    }

    core::DlrmModel model;
    std::vector<core::SparseBatch> batches;
    core::Tensor dense;
    std::vector<std::vector<float>> expected;
};

TEST_F(MpHtRunnerTest, MatchesSequentialOnSmtTopology)
{
    sched::MpHtRunner runner(model, sched::Topology::synthetic(2, 2),
                             {}, false);
    std::vector<std::vector<float>> got;
    const auto st = runner.run(dense, batches, &got);
    EXPECT_EQ(st.batches, batches.size());
    EXPECT_GT(st.totalMs, 0.0);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t b = 0; b < got.size(); ++b)
        EXPECT_EQ(got[b], expected[b]) << "batch " << b;
}

TEST_F(MpHtRunnerTest, MatchesSequentialWithoutSmt)
{
    // One worker per core: stages serialize but results are intact.
    sched::MpHtRunner runner(model, sched::Topology::synthetic(3, 1),
                             {}, false);
    std::vector<std::vector<float>> got;
    runner.run(dense, batches, &got);
    for (std::size_t b = 0; b < got.size(); ++b)
        EXPECT_EQ(got[b], expected[b]) << "batch " << b;
}

TEST_F(MpHtRunnerTest, PrefetchSpecPreservesResults)
{
    // Integrated scheme: SW prefetching inside the embedding stage.
    sched::MpHtRunner runner(model, sched::Topology::synthetic(2, 2),
                             core::PrefetchSpec::paperDefault(),
                             false);
    std::vector<std::vector<float>> got;
    runner.run(dense, batches, &got);
    for (std::size_t b = 0; b < got.size(); ++b)
        EXPECT_EQ(got[b], expected[b]) << "batch " << b;
}

TEST_F(MpHtRunnerTest, SingleCoreManyBatchesInFlight)
{
    // All batches funnel through one physical core — the strongest
    // test that per-batch workspaces don't alias.
    sched::MpHtRunner runner(model, sched::Topology::synthetic(1, 2),
                             {}, false);
    std::vector<std::vector<float>> got;
    runner.run(dense, batches, &got);
    for (std::size_t b = 0; b < got.size(); ++b)
        EXPECT_EQ(got[b], expected[b]) << "batch " << b;
}

TEST_F(MpHtRunnerTest, NoPredictionSinkIsFine)
{
    sched::MpHtRunner runner(model, sched::Topology::synthetic(2, 2),
                             {}, false);
    const auto st = runner.run(dense, batches, nullptr);
    EXPECT_EQ(st.batches, batches.size());
    EXPECT_GT(st.avgBatchMs(), 0.0);
}

TEST_F(MpHtRunnerTest, EmptyBatchStream)
{
    sched::MpHtRunner runner(model, sched::Topology::synthetic(2, 2),
                             {}, false);
    std::vector<std::vector<float>> got;
    const auto st = runner.run(dense, {}, &got);
    EXPECT_EQ(st.batches, 0u);
    EXPECT_TRUE(got.empty());
}

TEST_F(MpHtRunnerTest, PoisonedBatchRaisesInsteadOfHanging)
{
    // An out-of-range index inside one batch must surface as an
    // exception from run(), after all other in-flight batches have
    // finished — not deadlock the bottom/embedding stage pair and not
    // crash the process.
    auto poisoned = batches;
    poisoned[3].indices[1][0] =
        static_cast<RowIndex>(smallModel().rows + 17);

    sched::MpHtRunner runner(model, sched::Topology::synthetic(2, 2),
                             {}, false);
    std::vector<std::vector<float>> preds;
    EXPECT_THROW(runner.run(dense, poisoned, &preds),
                 core::IndexError);

    // The runner (and its pool) must remain usable afterwards.
    const auto st = runner.run(dense, batches, &preds);
    EXPECT_EQ(st.batches, batches.size());
    ASSERT_EQ(preds.size(), expected.size());
    for (std::size_t b = 0; b < expected.size(); ++b)
        EXPECT_EQ(preds[b], expected[b]);
}

} // namespace
