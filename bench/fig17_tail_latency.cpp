/**
 * @file
 * Reproduces Fig. 17: p95 tail latency under a Poisson load
 * generator as the mean arrival time varies, for rm2_1
 * (embedding-heavy, 400 ms SLA) and rm1 (mixed, 100 ms SLA) on the
 * Low Hot dataset, for all design points.
 *
 * Paper shape: each scheme has an SLA-compliant region and a
 * saturation region; the optimized schemes cut p95 by up to 1.8x
 * (rm2_1) / 2.5x (rm1) in the compliant region and tolerate 1.4x /
 * 2.3x faster arrivals while staying under the SLA.
 */

#include "common.hpp"
#include "serve/loadgen.hpp"
#include "serve/queue_sim.hpp"
#include "serve/sla.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

namespace
{

void
runModel(const core::ModelConfig& model,
         const std::vector<double>& arrival_ms)
{
    const auto cpu = platform::cascadeLake();
    const std::size_t cores = quickMode() ? 8 : 24;
    const std::size_t requests = quickMode() ? 2'000 : 10'000;

    const auto r = evalAllSchemes(makeConfig(
        cpu, model, traces::Hotness::Low, core::Scheme::Baseline,
        cores));

    struct Point
    {
        const char *name;
        double service;
    };
    const Point schemes[] = {
        {"Baseline", r.base.batchMs},   {"w/o HW-PF", r.off.batchMs},
        {"SW-PF", r.swpf.batchMs},      {"DP-HT", r.dpht.batchMs},
        {"MP-HT", r.mpht.batchMs},      {"Integrated", r.integ.batchMs},
    };

    std::printf("\n-- %s (SLA %.0f ms, %zu serving cores, service = "
                "per-batch latency) --\n",
                model.name.c_str(), model.slaMs(), cores);
    std::printf("%-12s", "arrival(ms)");
    for (const auto& s : schemes)
        std::printf("%12s", s.name);
    std::printf("\n");

    for (double a : arrival_ms) {
        serve::PoissonLoadGen gen(a, 17);
        const auto arrivals = gen.arrivals(requests);
        std::printf("%-12.2f", a);
        for (const auto& s : schemes) {
            const auto q =
                serve::simulateQueue(arrivals, s.service, cores);
            const double p95 = q.latency.p95();
            std::printf("%10.1f%s", p95,
                        p95 <= model.slaMs() ? " +" : " x");
        }
        std::printf("\n");
    }
    std::printf("('+' = meets SLA, 'x' = violates; service times: ");
    for (const auto& s : schemes)
        std::printf("%s %.1f ms; ", s.name, s.service);
    std::printf(")\n");

    // SLA-region boundary: the fastest tolerated arrival rate per
    // scheme (bisection over the queue simulator).
    serve::SlaSearchConfig sc;
    sc.servers = cores;
    sc.slaMs = model.slaMs();
    sc.requests = requests;
    sc.serviceMs = r.base.batchMs;
    const double base_boundary = serve::minCompliantArrivalMs(sc);
    std::printf("SLA-compliant down to arrival (ms): ");
    for (const auto& s : schemes) {
        sc.serviceMs = s.service;
        const double b = serve::minCompliantArrivalMs(sc);
        std::printf("%s %.2f (%.2fx)  ", s.name, b,
                    base_boundary / b);
    }
    std::printf("\n(paper: Integrated tolerates ~1.4x (rm2_1) / "
                "~2.3x (rm1) faster arrivals than baseline)\n");
}

} // namespace

int
main()
{
    printHeader("Fig. 17", "p95 tail latency vs Poisson arrival time",
                "Discrete-event FCFS queue over per-batch inference "
                "latencies; Cascade Lake, Low Hot.");

    runModel(core::rm2_1(),
             {40.0, 30.0, 20.0, 15.0, 10.0, 7.0, 5.0, 4.0, 3.0});
    runModel(core::rm1(),
             {3.0, 2.0, 1.5, 1.0, 0.7, 0.5, 0.35, 0.25});

    std::printf("\nShape check: faster schemes extend the "
                "SLA-compliant arrival region (paper: Integrated "
                "tolerates ~1.4x (rm2_1) / ~2.3x (rm1) faster "
                "arrivals).\n");
    return 0;
}
