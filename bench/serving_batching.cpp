/**
 * @file
 * Deadline-aware dynamic batching bench: sweeps arrival rate x
 * coalescing policy over the real-execution serving loop and reports
 * sustained throughput and latency percentiles against the unbatched
 * baseline.
 *
 * The service model is affine (base + per-sample), so each coalesced
 * dispatch amortizes the fixed cost across its members; the paper's
 * at-scale serving argument (Sec. 6.5) is exactly this trade — batch
 * enough to keep cores efficient, never so much that a member blows
 * its SLA. The headline row is the overloaded regime, where
 * coalescing must deliver >= 1.3x served throughput at an
 * equal-or-better p95.
 *
 * The streamed policy rows run the stage-pipelined dispatch (gather
 * of dispatch k+1 overlapping compute of dispatch k on split core
 * groups); a final steady-state section measures the pipelined
 * per-dispatch makespan on a saturating stream and FAILS the run
 * when it exceeds 1.15x the bottleneck stage. Emits
 * BENCH_serving.json (one record per measured point) into the
 * working directory.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/dlrm.hpp"
#include "sched/topology.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;

struct Policy
{
    const char *name;
    bool enabled;
    std::size_t maxRequests;
    double lingerMs;
    bool streamed = false;
};

struct Record
{
    std::string name;
    double arrivalMs = 0.0;
    std::size_t served = 0;
    std::size_t shed = 0;
    double reqPerSec = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double makespanMs = 0.0;
};

void
writeJson(const std::vector<Record>& recs, const char *path)
{
    std::ofstream os(path);
    if (!os)
        return;
    os << "[\n";
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const Record& r = recs[i];
        char buf[320];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"name\": \"%s\", \"arrival_ms\": %.3f, "
            "\"served\": %zu, \"shed\": %zu, \"req_per_sec\": %.2f, "
            "\"p50_ms\": %.4f, \"p95_ms\": %.4f, "
            "\"makespan_ms\": %.4f}%s\n",
            r.name.c_str(), r.arrivalMs, r.served, r.shed,
            r.reqPerSec, r.p50, r.p95, r.makespanMs,
            i + 1 < recs.size() ? "," : "");
        os << buf;
    }
    os << "]\n";
    std::printf("\nwrote %s (%zu records)\n", path, recs.size());
}

} // namespace

int
main()
{
    using bench::quickMode;

    bench::printHeader(
        "BATCH", "Deadline-aware dynamic request batching",
        "real execution; virtual-clock serving; affine service model");

    const auto model_cfg =
        core::modelByName("rm1").scaledToFit(quickMode() ? 2.0e6
                                                         : 16.0e6);
    core::DlrmModel model(model_cfg, 7);

    traces::TraceConfig tc = traces::TraceConfig::forModel(
        model_cfg, traces::Hotness::Medium, 7);
    tc.batchSize = 8;
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 16; ++b)
        batches.push_back(gen.batch(b));
    core::Tensor dense(tc.batchSize, model_cfg.denseDim());
    dense.randomize(11);

    serve::ServerConfig base_cfg;
    base_cfg.slaMs = 25.0;
    base_cfg.service = serve::ServiceModel{0.8, 0.04};
    const auto topo = sched::Topology::synthetic(2, 2);

    const std::size_t requests = quickMode() ? 150 : 600;
    const std::vector<double> interarrivals =
        quickMode() ? std::vector<double>{0.6, 0.3}
                    : std::vector<double>{1.2, 0.6, 0.3, 0.2};

    const Policy policies[] = {
        {"unbatched", false, 1, 0.0},
        {"batch 4 @ 0ms", true, 4, 0.0},
        {"batch 8 @ 0ms", true, 8, 0.0},
        {"batch 8 @ 1ms", true, 8, 1.0},
        {"streamed 8 @ 0ms", true, 8, 0.0, true},
        {"streamed 8 @ 1ms", true, 8, 1.0, true},
    };

    std::vector<Record> records;
    std::printf("%-8s %-16s %9s %8s %8s %8s %7s %6s\n", "arr(ms)",
                "policy", "req/s", "p50", "p95", "p99", "shed%",
                "vs.un");
    for (const double arr : interarrivals) {
        const auto arrivals =
            serve::PoissonLoadGen(arr, 13).arrivals(requests);
        double unbatched_rate = 0.0;
        for (const Policy& p : policies) {
            serve::ServerConfig cfg = base_cfg;
            cfg.batching.enabled = p.enabled;
            cfg.batching.maxRequests = p.maxRequests;
            cfg.batching.maxLingerMs = p.lingerMs;
            cfg.streamed = p.streamed;
            serve::Server srv(model, topo, cfg);
            const auto st = srv.serve(dense, batches, arrivals);
            const double rate =
                st.makespanMs > 0.0
                    ? 1000.0 * static_cast<double>(st.served) /
                          st.makespanMs
                    : 0.0;
            if (!p.enabled)
                unbatched_rate = rate;
            std::printf(
                "%-8.2f %-16s %9.1f %8.2f %8.2f %8.2f %6.1f%% %5.2fx\n",
                arr, p.name, rate, st.latency.percentile(50.0),
                st.latency.p95(), st.latency.p99(),
                st.arrived ? 100.0 * static_cast<double>(st.shed) /
                                 static_cast<double>(st.arrived)
                           : 0.0,
                unbatched_rate > 0.0 ? rate / unbatched_rate : 0.0);
            records.push_back(Record{p.name, arr, st.served, st.shed,
                                     rate, st.latency.percentile(50.0),
                                     st.latency.p95(),
                                     st.makespanMs});
        }
        std::printf("\n");
    }
    std::printf("throughput = served / virtual makespan; vs.un = "
                "speedup over the unbatched policy at the same "
                "arrival rate.\n");

    // Steady-state pipeline check: a saturating stream of equal-size
    // dispatches through the streamed loop. The first dispatch fills
    // the pipeline (gather + compute); after that each dispatch may
    // cost at most 1.15x the bottleneck stage or the overlap claim
    // is broken and the bench fails.
    bool ok = true;
    {
        const std::size_t d = quickMode() ? 64 : 256;
        serve::ServerConfig cfg = base_cfg;
        cfg.slaMs = 1e6; // saturation, not shedding, is under test
        cfg.admission = false;
        cfg.batching.enabled = true;
        cfg.batching.maxRequests = 1;
        cfg.streamed = true;
        serve::Server srv(model, topo, cfg);
        const std::vector<double> at_once(d, 0.0);
        const auto st = srv.serve(dense, batches, at_once);

        const serve::StageServiceModel stages =
            serve::StageServiceModel::split(cfg.service,
                                            cfg.gatherFraction);
        const std::size_t samples = batches.front().batchSize;
        const double g = stages.gatherMs(samples);
        const double c = stages.computeMs(samples);
        const double fill = g + c;
        const double steady =
            st.dispatches > 1
                ? (st.makespanMs - fill) /
                      static_cast<double>(st.dispatches - 1)
                : st.makespanMs;
        const double bound = 1.15 * std::max(g, c);
        std::printf(
            "\nsteady-state pipeline: %zu dispatches, gather %.3f ms, "
            "compute %.3f ms\n  per-dispatch %.4f ms vs bound %.4f ms "
            "(1.15 x max stage): %s\n",
            st.dispatches, g, c, steady, bound,
            steady <= bound ? "PASS" : "FAIL");
        if (steady > bound || st.served != d)
            ok = false;
        records.push_back(Record{"steady-state streamed", 0.0,
                                 st.served, st.shed,
                                 st.makespanMs > 0.0
                                     ? 1000.0 *
                                           static_cast<double>(
                                               st.served) /
                                           st.makespanMs
                                     : 0.0,
                                 st.latency.percentile(50.0),
                                 st.latency.p95(), st.makespanMs});
    }

    writeJson(records, "BENCH_serving.json");
    return ok ? 0 : 1;
}
