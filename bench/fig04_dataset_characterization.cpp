/**
 * @file
 * Reproduces Fig. 4: RM2_1 embedding-stage performance across input
 * types — (a) batch latency, (b) average load latency and L1D/L2/L3
 * hit rates — for {one-item, High, Medium, Low, random}.
 *
 * Paper shape: one-item is the regular best case (load latency ~=
 * L1D hit latency); hit rates fall and load latency rises toward
 * random, with up to ~16x spread in average load latency (key
 * takeaway 2 of Sec. 3.3).
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 4",
                "RM2_1 embedding-stage comparison across datasets",
                "Single core, Cascade Lake model, batch size 64.");

    const auto cpu = platform::cascadeLake();
    const auto model = core::rm2_1();

    std::printf("\n%-12s %-12s %-12s %-9s %-9s %-9s\n", "Input",
                "Batch(ms)", "LoadLat(cy)", "L1D hit", "L2 hit",
                "L3 hit");

    double one_item_lat = 0.0, worst_lat = 0.0;
    for (auto h :
         {traces::Hotness::OneItem, traces::Hotness::High,
          traces::Hotness::Medium, traces::Hotness::Low,
          traces::Hotness::Random}) {
        const auto cfg = makeConfig(cpu, model, h,
                                    core::Scheme::Baseline, 1);
        const auto r = platform::compose(cfg, cachedSimulate(cfg));
        std::printf("%-12s %-12.2f %-12.1f %-9.3f %-9.3f %-9.3f\n",
                    traces::hotnessName(h).c_str(), r.embMs,
                    r.embTiming.avgLoadLatency,
                    r.sim.vtuneL1HitRate(), r.sim.l2HitRate(),
                    r.sim.l3HitRate());
        if (h == traces::Hotness::OneItem)
            one_item_lat = r.embTiming.avgLoadLatency;
        worst_lat = std::max(worst_lat, r.embTiming.avgLoadLatency);
    }
    std::printf("\nLoad-latency spread one-item vs worst: %.1fx "
                "(paper: up to ~16x)\n",
                worst_lat / one_item_lat);
    std::printf("one-item avg load latency %.1f cy vs L1D hit latency "
                "%.0f cy (paper: nearly equal)\n",
                one_item_lat, cpu.l1LatencyCycles);
    return 0;
}
