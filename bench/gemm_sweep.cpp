/**
 * @file
 * Dense-layer GEMM sweep on real hardware: the packed register-blocked
 * microkernel engine vs the scalar blocked baseline it replaced,
 * over coalesced batch sizes m in {1, 4, 16, 64, 128} x the rm2_1/rm1
 * MLP layer shapes, at every SimdLevel the host supports.
 *
 * Prints a GFLOP/s table with per-point speedups and emits
 * BENCH_gemm.json (machine-readable, one record per measured point)
 * into the working directory. Each point also cross-checks the packed
 * output against denseLayerForwardRef and fails the run on divergence,
 * so the GemmSmoke ctest entry guards correctness as well as harness
 * rot. DLRMOPT_BENCH_QUICK=1 shrinks the grid, not the code paths.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/gemm.hpp"
#include "core/simd.hpp"
#include "core/tensor.hpp"

namespace
{

using namespace dlrmopt;
using Clock = std::chrono::steady_clock;

struct Shape
{
    std::size_t inDim;
    std::size_t outDim;
    const char *origin;
};

struct Point
{
    std::size_t m = 0;
    Shape shape{};
    core::SimdLevel level = core::SimdLevel::Scalar;
    double blockedMs = 0.0;
    double packedMs = 0.0;
    double transMs = 0.0;     //!< n-major (transposed-activation) engine
    bool transBitwise = false; //!< trans output == m-major output, bitwise
    double maxAbsDiff = 0.0; //!< packed vs denseLayerForwardRef

    double
    gflops(double ms) const
    {
        const double flops = 2.0 * static_cast<double>(m) *
                             static_cast<double>(shape.inDim) *
                             static_cast<double>(shape.outDim);
        return ms > 0.0 ? flops / (ms * 1e6) : 0.0;
    }

    double
    speedup() const
    {
        return packedMs > 0.0 ? blockedMs / packedMs : 1.0;
    }
};

/** Best-of-reps wall time of @p fn, with enough inner iterations that
 *  one reading is well above clock granularity. */
template <typename Fn>
double
timeMs(Fn&& fn, double flops_per_call, int reps)
{
    const int iters = static_cast<int>(std::clamp(
        2e7 / std::max(flops_per_call, 1.0), 1.0, 20000.0));
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        for (int i = 0; i < iters; ++i)
            fn();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count() /
            iters;
        best = std::min(best, ms);
    }
    return best;
}

Point
measurePoint(std::size_t m, const Shape& shape, core::SimdLevel level,
             int reps)
{
    Point p;
    p.m = m;
    p.shape = shape;
    p.level = level;

    core::Tensor in(m, std::max<std::size_t>(shape.inDim, 1));
    in.randomize(mix64(7), 0.5f);
    core::Tensor w(shape.outDim, std::max<std::size_t>(shape.inDim, 1));
    w.randomize(mix64(8), 0.1f);
    std::vector<float> bias(shape.outDim, 0.01f);
    std::vector<float> out(m * shape.outDim);
    std::vector<float> ref(m * shape.outDim);
    const core::PackedWeights packed(w.data(), shape.inDim,
                                     shape.outDim);
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(shape.inDim) *
                         static_cast<double>(shape.outDim);

    p.blockedMs = timeMs(
        [&] {
            core::denseLayerForward(in.data(), m, shape.inDim,
                                    w.data(), bias.data(),
                                    shape.outDim, out.data(), true);
        },
        flops, reps);
    p.packedMs = timeMs(
        [&] {
            core::denseLayerForwardPackedLevel(level, in.data(), m,
                                               packed, bias.data(),
                                               out.data(), true);
        },
        flops, reps);

    // The n-major engine consumes the same activations feature-major
    // (the streaming pipeline's handoff layout).
    core::Tensor in_t(std::max<std::size_t>(shape.inDim, 1), m);
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t k = 0; k < shape.inDim; ++k)
            in_t.at(k, r) = in.at(r, k);
    }
    std::vector<float> out_t(m * shape.outDim);
    p.transMs = timeMs(
        [&] {
            core::denseLayerForwardPackedTransLevel(
                level, in_t.data(), m, packed, bias.data(),
                out_t.data(), true);
        },
        flops, reps);
    p.transBitwise =
        std::memcmp(out.data(), out_t.data(),
                    out.size() * sizeof(float)) == 0;

    core::denseLayerForwardRef(in.data(), m, shape.inDim, w.data(),
                               bias.data(), shape.outDim, ref.data(),
                               true);
    for (std::size_t i = 0; i < out.size(); ++i) {
        p.maxAbsDiff = std::max(
            p.maxAbsDiff,
            static_cast<double>(std::fabs(out[i] - ref[i])));
    }
    return p;
}

void
writeJson(const std::vector<Point>& points, const char *path)
{
    std::ofstream os(path);
    if (!os)
        return;
    os << "[\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"m\": %zu, \"in_dim\": %zu, \"out_dim\": %zu, "
            "\"origin\": \"%s\", \"level\": \"%s\", "
            "\"blocked_ms\": %.6f, \"packed_ms\": %.6f, "
            "\"trans_ms\": %.6f, "
            "\"blocked_gflops\": %.3f, \"packed_gflops\": %.3f, "
            "\"trans_gflops\": %.3f, \"trans_bitwise\": %s, "
            "\"speedup\": %.3f, \"max_abs_diff\": %.3g}%s\n",
            p.m, p.shape.inDim, p.shape.outDim, p.shape.origin,
            core::simdLevelName(p.level).c_str(), p.blockedMs,
            p.packedMs, p.transMs, p.gflops(p.blockedMs),
            p.gflops(p.packedMs), p.gflops(p.transMs),
            p.transBitwise ? "true" : "false", p.speedup(),
            p.maxAbsDiff, i + 1 < points.size() ? "," : "");
        os << buf;
    }
    os << "]\n";
    std::printf("\nwrote %s (%zu points)\n", path, points.size());
}

} // namespace

int
main()
{
    bench::printHeader(
        "GEMM sweep", "packed register-blocked engine vs blocked baseline",
        "m x layer-shape x SimdLevel on THIS host; speedup = blocked/packed");

    const bool quick = bench::quickMode();
    const std::vector<std::size_t> ms =
        quick ? std::vector<std::size_t>{1, 16}
              : std::vector<std::size_t>{1, 4, 16, 64, 128};
    std::vector<Shape> shapes = {
        {256, 128, "rm2_1 bottom"},  {128, 64, "rm2_1 top"},
        {2048, 2048, "rm1 bottom"},  {2048, 256, "rm1 bottom"},
        {768, 384, "rm1 top"},
    };
    if (quick)
        shapes = {{256, 128, "rm2_1 bottom"}, {768, 384, "rm1 top"}};
    const int reps = quick ? 2 : 5;

    std::vector<core::SimdLevel> levels{core::SimdLevel::Scalar};
    if (core::detectSimdLevel() >= core::SimdLevel::Avx2)
        levels.push_back(core::SimdLevel::Avx2);
    if (core::detectSimdLevel() >= core::SimdLevel::Avx512)
        levels.push_back(core::SimdLevel::Avx512);

    std::vector<Point> points;
    bool ok = true;
    for (const core::SimdLevel level : levels) {
        std::printf("\n-- %s (packed microtile up to %zu x %u) --\n",
                    core::simdLevelName(level).c_str(),
                    core::gemmMaxRows(level),
                    core::PackedWeights::panelWidth);
        std::printf("    m   layer shape      origin          "
                    "blocked GF/s  packed GF/s  trans GF/s  speedup\n");
        for (const Shape& shape : shapes) {
            for (const std::size_t m : ms) {
                const Point p = measurePoint(m, shape, level, reps);
                std::printf("  %4zu  %5zu x %-6zu  %-14s  %12.2f  "
                            "%11.2f  %10.2f  %6.2fx\n",
                            p.m, p.shape.inDim, p.shape.outDim,
                            p.shape.origin, p.gflops(p.blockedMs),
                            p.gflops(p.packedMs), p.gflops(p.transMs),
                            p.speedup());
                if (p.maxAbsDiff > 1e-3) {
                    std::printf("  ^^ FAIL: packed output diverges "
                                "from reference (max abs diff %g)\n",
                                p.maxAbsDiff);
                    ok = false;
                }
                if (!p.transBitwise) {
                    std::printf("  ^^ FAIL: n-major engine diverges "
                                "bitwise from the m-major engine\n");
                    ok = false;
                }
                points.push_back(p);
            }
        }
    }

    writeJson(points, "BENCH_gemm.json");
    return ok ? 0 : 1;
}
