/**
 * @file
 * Batch-size ablation (extension beyond the paper's fixed batch 64,
 * which Sec. 5 picks "to maximize throughput while meeting the
 * SLA"): how per-batch latency, per-sample cost, and the SW-PF gain
 * move with the batch size, and where the SLA admits each size.
 */

#include "common.hpp"
#include "trace/generator.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Ablation: batch size",
                "Latency/throughput vs batch size (rm2_1, Low Hot)",
                "The paper fixes batch 64; this sweep shows why that "
                "sits at the knee.");

    const auto cpu = platform::cascadeLake();
    const auto model = core::rm2_1();
    const std::size_t cores = quickMode() ? 4 : 8;

    std::printf("\n%-8s %-12s %-14s %-12s %-10s %-8s\n", "Batch",
                "Base(ms)", "us/sample", "SW-PF(ms)", "Speedup",
                "SLA ok");
    for (std::size_t bs : {16u, 32u, 64u, 128u, 256u}) {
        auto run = [&](bool sw) {
            memsim::EmbSimConfig sc;
            sc.trace =
                traces::TraceConfig::forModel(model,
                                              traces::Hotness::Low, 1);
            sc.trace.tables = simTables();
            sc.trace.hotSetSize = static_cast<std::size_t>(
                1024.0 * model.tables / sc.trace.tables);
            sc.trace.batchSize = bs;
            sc.dim = model.dim;
            sc.hier = cpu.hierarchy(cores);
            if (sw)
                sc.swPf = core::PrefetchSpec{4, 8, 3};
            sc.numBatches = cores;
            return memsim::EmbeddingSim(sc).run();
        };
        const double fold = static_cast<double>(model.tables) /
                            static_cast<double>(simTables());
        platform::TimingModel tm(cpu);
        const auto base_t =
            tm.embeddingTime(run(false), cores, cores, {});
        const auto pf_t = tm.embeddingTime(
            run(true), cores, cores, core::PrefetchSpec{4, 8, 3});
        const double base_ms = base_t.msPerBatch * fold;
        const double pf_ms = pf_t.msPerBatch * fold;
        std::printf("%-8zu %-12.2f %-14.1f %-12.2f %-10.2f %-8s\n",
                    bs, base_ms,
                    1000.0 * base_ms / static_cast<double>(bs), pf_ms,
                    base_ms / pf_ms,
                    base_ms <= model.slaMs() ? "yes" : "NO");
    }
    std::printf("\n(expected: per-sample cost falls with batch size "
                "— intra-batch row reuse — while absolute latency "
                "rises toward the SLA; the SW-PF gain persists at "
                "every size)\n");
    return 0;
}
