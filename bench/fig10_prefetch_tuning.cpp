/**
 * @file
 * Reproduces Fig. 10: the software-prefetch design-space exploration
 * on rm2_1 at 24 cores —
 *  (a) off-the-shelf alternatives (hardware prefetcher off,
 *      compiler-style inserted prefetching) vs the baseline;
 *  (b) execution time vs prefetch distance (paper optimum: 4);
 *  (c) L1D hit rate and average load latency vs prefetch amount
 *      (paper optimum on CSL: the full 8-line row).
 *
 * Compiler-inserted prefetching (gcc -fprefetch-loop-arrays /
 * icc -qopt-prefetch=5) is emulated as next-iteration software
 * prefetching (distance 1-2) without the application-level distance
 * tuning — the control the paper identifies as the missing knob
 * (Sec. 2.3).
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 10", "Prefetch design-space exploration",
                "rm2_1, Low Hot, 24 cores, Cascade Lake model.");

    const auto cpu = platform::cascadeLake();
    const auto model = core::rm2_1();
    const auto h = traces::Hotness::Low;
    const std::size_t cores = quickMode() ? 8 : 24;

    // ---- (a) off-the-shelf techniques ----
    std::printf("\n-- (a) Existing HW/compiler techniques "
                "(speedup vs baseline) --\n");
    auto base_cfg =
        makeConfig(cpu, model, h, core::Scheme::Baseline, cores);
    const auto base = platform::compose(base_cfg,
                                        cachedSimulate(base_cfg));

    auto report = [&](const char *name, platform::EvalConfig cfg) {
        const auto r = platform::compose(cfg, cachedSimulate(cfg));
        std::printf("%-22s %6.2f ms  %5.2fx\n", name, r.embMs,
                    base.embMs / r.embMs);
    };
    std::printf("%-22s %6.2f ms  %5.2fx\n", "Baseline (HW-PF on)",
                base.embMs, 1.0);
    report("w/o HW-PF",
           makeConfig(cpu, model, h, core::Scheme::HwPfOff, cores));
    {
        auto c = makeConfig(cpu, model, h, core::Scheme::SwPf, cores);
        c.pfDistance = 1; // compiler inserts for the next iteration
        report("gcc-style compiler PF", c);
        c.pfDistance = 2;
        report("icc-style compiler PF", c);
        c = makeConfig(cpu, model, h, core::Scheme::SwPf, cores);
        report("SW-PF (this work)", c);
    }
    std::printf("(paper: compiler prefetching shows limited benefit "
                "or slight degradation)\n");

    // ---- (b) prefetch distance ----
    std::printf("\n-- (b) Execution time vs prefetch distance --\n");
    std::printf("%-10s %-12s %-9s\n", "Distance", "Batch(ms)",
                "Speedup");
    const int dists[] = {1, 2, 4, 8, 16, 32};
    double best = 1e18;
    int best_d = 0;
    for (int d : dists) {
        auto c = makeConfig(cpu, model, h, core::Scheme::SwPf, cores);
        c.pfDistance = d;
        const auto r = platform::compose(c, cachedSimulate(c));
        std::printf("%-10d %-12.2f %-9.2f\n", d, r.embMs,
                    base.embMs / r.embMs);
        if (r.embMs < best) {
            best = r.embMs;
            best_d = d;
        }
    }
    std::printf("best distance: %d (paper: 4, ~200 instructions of "
                "look-ahead)\n", best_d);

    // ---- (c) prefetch amount ----
    std::printf("\n-- (c) L1D hit rate / load latency vs prefetch "
                "amount --\n");
    std::printf("%-10s %-10s %-14s\n", "Lines", "L1D hit",
                "LoadLat(cy)");
    for (int lines : {1, 2, 4, 8}) {
        auto c = makeConfig(cpu, model, h, core::Scheme::SwPf, cores);
        c.pfAmount = lines;
        const auto r = platform::compose(c, cachedSimulate(c));
        std::printf("%-10d %-10.3f %-14.1f\n", lines,
                    r.sim.vtuneL1HitRate(),
                    r.embTiming.avgLoadLatency);
    }
    std::printf("(paper: full 8-line rows give the highest hit rate "
                "and lowest latency on CSL)\n");
    return 0;
}
