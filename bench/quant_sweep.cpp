/**
 * @file
 * Quantized-inference sweep on real hardware, two parts:
 *
 *  1. Embedding-bag bandwidth by storage dtype (fp32 / bf16 / int8)
 *     on a larger-than-LLC table. The bag kernel is memory-bound, so
 *     the figure of merit is *effective* GB/s: fp32-equivalent bytes
 *     delivered per second. Reduced-precision rows move fewer stored
 *     bytes for the same logical data, which is where the speedup
 *     comes from; the table also reports the honest stored-byte GB/s.
 *     The run FAILS (exit 1) unless bf16 reaches >= 1.5x and int8
 *     >= 2x the fp32 effective bandwidth — the ISSUE 8 acceptance
 *     floor — or unless each dtype's bag output matches its bagRef
 *     scalar mirror bitwise.
 *
 *  2. The u8·s8 packed GEMM engine vs the fp32 packed engine over the
 *     rm2_1/rm1 MLP layer shapes x coalesced batch size m, with a
 *     per-point accuracy cross-check against denseLayerForwardRef.
 *
 * Emits BENCH_quant.json (one record per measured point) into the
 * working directory. DLRMOPT_BENCH_QUICK=1 shrinks the grid and the
 * bag table, not the code paths.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/embedding.hpp"
#include "core/gemm.hpp"
#include "core/quant.hpp"
#include "core/simd.hpp"
#include "core/tensor.hpp"

namespace
{

using namespace dlrmopt;
using Clock = std::chrono::steady_clock;

/** Best-of-reps wall time of one call to @p fn, in milliseconds. */
template <typename Fn>
double
timeMs(Fn&& fn, int iters, int reps)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        for (int i = 0; i < iters; ++i)
            fn();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count() /
            iters;
        best = std::min(best, ms);
    }
    return best;
}

struct BagPoint
{
    core::EmbDtype dtype = core::EmbDtype::Fp32;
    double ms = 0.0;
    double storedBytes = 0.0; //!< bytes actually read+written per call
    double logicalBytes = 0.0; //!< fp32-equivalent bytes per call
    bool bitwise = false;      //!< bag == bagRef scalar mirror

    double storedGBs() const
    {
        return ms > 0.0 ? storedBytes / (ms * 1e6) : 0.0;
    }
    double effectiveGBs() const
    {
        return ms > 0.0 ? logicalBytes / (ms * 1e6) : 0.0;
    }
};

struct GemmPoint
{
    std::size_t m = 0;
    std::size_t inDim = 0;
    std::size_t outDim = 0;
    const char *origin = "";
    double fp32Ms = 0.0;
    double int8Ms = 0.0;
    double maxAbsDiff = 0.0; //!< int8 output vs denseLayerForwardRef
    double refRange = 0.0;

    double
    gflops(double ms) const
    {
        const double flops = 2.0 * static_cast<double>(m) *
                             static_cast<double>(inDim) *
                             static_cast<double>(outDim);
        return ms > 0.0 ? flops / (ms * 1e6) : 0.0;
    }

    double
    speedup() const
    {
        return int8Ms > 0.0 ? fp32Ms / int8Ms : 1.0;
    }
};

BagPoint
measureBag(core::EmbDtype dtype, std::size_t rows, std::size_t dim,
           std::size_t samples, std::size_t lookups, int reps)
{
    const core::EmbeddingTable table(rows, dim, 42, dtype);

    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets{0};
    for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t l = 0; l < lookups; ++l) {
            indices.push_back(static_cast<RowIndex>(
                mix64(s * 7919 + l) % rows));
        }
        offsets.push_back(static_cast<RowIndex>(indices.size()));
    }
    std::vector<float> out(samples * dim);
    const core::PrefetchSpec pf = core::PrefetchSpec::paperDefault();

    BagPoint p;
    p.dtype = dtype;
    p.ms = timeMs(
        [&] {
            table.bag(indices.data(), offsets.data(), samples,
                      out.data(), pf);
        },
        1, reps);

    std::vector<float> ref(out.size());
    table.bagRef(indices.data(), offsets.data(), samples, ref.data());
    p.bitwise = std::memcmp(out.data(), ref.data(),
                            out.size() * sizeof(float)) == 0;

    const double rowBytes =
        static_cast<double>(table.bytes()) / static_cast<double>(rows);
    const double nlook = static_cast<double>(indices.size());
    const double outBytes =
        static_cast<double>(out.size()) * sizeof(float);
    p.storedBytes = nlook * rowBytes + outBytes;
    p.logicalBytes =
        nlook * static_cast<double>(dim) * sizeof(float) + outBytes;
    return p;
}

GemmPoint
measureGemm(std::size_t m, std::size_t in_dim, std::size_t out_dim,
            const char *origin, int reps)
{
    GemmPoint p;
    p.m = m;
    p.inDim = in_dim;
    p.outDim = out_dim;
    p.origin = origin;

    core::Tensor in(m, in_dim);
    in.randomize(mix64(7), 0.5f);
    core::Tensor w(out_dim, in_dim);
    w.randomize(mix64(8), 0.1f);
    std::vector<float> bias(out_dim, 0.01f);
    std::vector<float> out(m * out_dim);

    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(in_dim) *
                         static_cast<double>(out_dim);
    const int iters = static_cast<int>(
        std::clamp(2e7 / std::max(flops, 1.0), 1.0, 20000.0));

    const core::PackedWeights packed(w.data(), in_dim, out_dim);
    p.fp32Ms = timeMs(
        [&] {
            core::denseLayerForwardPacked(in.data(), m, packed,
                                          bias.data(), out.data(),
                                          true);
        },
        iters, reps);

    const core::PackedWeightsInt8 qpacked(w.data(), in_dim, out_dim);
    std::vector<std::uint8_t> qin(m * qpacked.paddedK());
    const core::QuantParams qp = core::quantizeActivationsInt8(
        in.data(), m, in_dim, qpacked.paddedK(), qin.data());
    // Steady-state serving re-quantizes each batch but reuses the
    // packed weights; time the whole int8 path including quantization.
    p.int8Ms = timeMs(
        [&] {
            const core::QuantParams q = core::quantizeActivationsInt8(
                in.data(), m, in_dim, qpacked.paddedK(), qin.data());
            core::denseLayerForwardPackedInt8(qin.data(), m, qpacked,
                                              bias.data(), out.data(),
                                              true, q.scale, q.bias);
        },
        iters, reps);

    std::vector<float> ref(out.size());
    core::denseLayerForwardRef(in.data(), m, in_dim, w.data(),
                               bias.data(), out_dim, ref.data(), true);
    core::denseLayerForwardPackedInt8(qin.data(), m, qpacked,
                                      bias.data(), out.data(), true,
                                      qp.scale, qp.bias);
    for (std::size_t i = 0; i < out.size(); ++i) {
        p.maxAbsDiff = std::max(
            p.maxAbsDiff,
            static_cast<double>(std::fabs(out[i] - ref[i])));
        p.refRange = std::max(p.refRange,
                              static_cast<double>(std::fabs(ref[i])));
    }
    return p;
}

void
writeJson(const std::vector<BagPoint>& bags,
          const std::vector<GemmPoint>& gemms, const char *path)
{
    std::ofstream os(path);
    if (!os)
        return;
    os << "[\n";
    const std::size_t total = bags.size() + gemms.size();
    std::size_t n = 0;
    for (const BagPoint& p : bags) {
        char buf[384];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"kind\": \"bag\", \"dtype\": \"%s\", "
            "\"ms\": %.6f, \"stored_gbs\": %.3f, "
            "\"effective_gbs\": %.3f, \"bitwise\": %s}%s\n",
            core::embDtypeName(p.dtype).c_str(), p.ms, p.storedGBs(),
            p.effectiveGBs(), p.bitwise ? "true" : "false",
            ++n < total ? "," : "");
        os << buf;
    }
    for (const GemmPoint& p : gemms) {
        char buf[384];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"kind\": \"gemm\", \"m\": %zu, \"in_dim\": %zu, "
            "\"out_dim\": %zu, \"origin\": \"%s\", "
            "\"fp32_gflops\": %.3f, \"int8_gflops\": %.3f, "
            "\"speedup\": %.3f, \"max_abs_diff\": %.3g}%s\n",
            p.m, p.inDim, p.outDim, p.origin, p.gflops(p.fp32Ms),
            p.gflops(p.int8Ms), p.speedup(), p.maxAbsDiff,
            ++n < total ? "," : "");
        os << buf;
    }
    os << "]\n";
    std::printf("\nwrote %s (%zu points)\n", path, total);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Quantized-inference sweep",
        "bf16/int8 embedding bags and the u8·s8 packed GEMM vs fp32",
        "bag figure of merit: effective GB/s (fp32-equivalent bytes); "
        "run fails unless bf16 >= 1.5x and int8 >= 2x fp32");

    const bool quick = bench::quickMode();
    // Capacity-fit regime, where precision moves the working set
    // across level boundaries: 20k rows x dim 128 is 10 MB at fp32
    // (spills a desktop L2 and its share of a sliced LLC, and at
    // 4 KiB pages overflows the second-level TLB), 5 MB at bf16 and
    // 2.7 MB at int8 (cache- and TLB-resident). This is precisely the
    // table-shard-per-core sizing the paper's SNC partitioning aims
    // for, and where quantized storage pays the most.
    const std::size_t rows = 20'000;
    const std::size_t dim = 128;
    const std::size_t samples = 64;
    const std::size_t lookups = 120;
    const int reps = quick ? 3 : 7;

    bool ok = true;

    std::printf("\n-- embedding bags: %zu rows x dim %zu, %zu samples "
                "x %zu lookups, %s --\n",
                rows, dim, samples, lookups,
                core::simdLevelName(core::currentSimdLevel()).c_str());
    std::printf("  dtype       ms/call   stored GB/s   effective GB/s"
                "   vs fp32   bitwise\n");
    std::vector<BagPoint> bags;
    for (const core::EmbDtype dtype :
         {core::EmbDtype::Fp32, core::EmbDtype::Bf16,
          core::EmbDtype::Int8}) {
        bags.push_back(
            measureBag(dtype, rows, dim, samples, lookups, reps));
        const BagPoint& p = bags.back();
        const double ratio = bags[0].effectiveGBs() > 0.0
                                 ? p.effectiveGBs() /
                                       bags[0].effectiveGBs()
                                 : 0.0;
        std::printf("  %-5s  %10.3f  %12.2f  %15.2f  %7.2fx   %s\n",
                    core::embDtypeName(p.dtype).c_str(), p.ms,
                    p.storedGBs(), p.effectiveGBs(), ratio,
                    p.bitwise ? "yes" : "NO");
        if (!p.bitwise) {
            std::printf("  ^^ FAIL: %s bag diverges bitwise from its "
                        "bagRef scalar mirror\n",
                        core::embDtypeName(p.dtype).c_str());
            ok = false;
        }
    }
    const double fp32Eff = bags[0].effectiveGBs();
    const double bf16Ratio =
        fp32Eff > 0.0 ? bags[1].effectiveGBs() / fp32Eff : 0.0;
    const double int8Ratio =
        fp32Eff > 0.0 ? bags[2].effectiveGBs() / fp32Eff : 0.0;
    if (bf16Ratio < 1.5) {
        std::printf("FAIL: bf16 effective bandwidth %.2fx fp32, "
                    "acceptance floor is 1.5x\n",
                    bf16Ratio);
        ok = false;
    }
    if (int8Ratio < 2.0) {
        std::printf("FAIL: int8 effective bandwidth %.2fx fp32, "
                    "acceptance floor is 2x\n",
                    int8Ratio);
        ok = false;
    }

    std::vector<std::size_t> ms_grid =
        quick ? std::vector<std::size_t>{1, 16}
              : std::vector<std::size_t>{1, 4, 16, 64, 128};
    struct Shape
    {
        std::size_t inDim, outDim;
        const char *origin;
    };
    std::vector<Shape> shapes = {
        {256, 128, "rm2_1 bottom"},
        {128, 64, "rm2_1 top"},
        {2048, 256, "rm1 bottom"},
        {768, 384, "rm1 top"},
    };
    if (quick)
        shapes = {{256, 128, "rm2_1 bottom"}, {768, 384, "rm1 top"}};

    std::printf("\n-- u8·s8 packed GEMM vs fp32 packed engine "
                "(quantize included in the int8 time) --\n");
    std::printf("    m   layer shape      origin          "
                "fp32 GF/s   int8 GF/s  speedup\n");
    std::vector<GemmPoint> gemms;
    for (const Shape& s : shapes) {
        for (const std::size_t m : ms_grid) {
            gemms.push_back(
                measureGemm(m, s.inDim, s.outDim, s.origin, reps));
            const GemmPoint& p = gemms.back();
            std::printf("  %4zu  %5zu x %-6zu  %-14s  %9.2f  "
                        "%10.2f  %6.2fx\n",
                        p.m, p.inDim, p.outDim, p.origin,
                        p.gflops(p.fp32Ms), p.gflops(p.int8Ms),
                        p.speedup());
            // int8 is an approximation by design; fail only when the
            // error leaves the quantization-noise regime.
            if (p.maxAbsDiff > std::max(1.0, p.refRange) * 0.05) {
                std::printf("  ^^ FAIL: int8 output diverges from the "
                            "fp32 reference (max abs diff %g, "
                            "ref range %g)\n",
                            p.maxAbsDiff, p.refRange);
                ok = false;
            }
        }
    }

    writeJson(bags, gemms, "BENCH_quant.json");
    return ok ? 0 : 1;
}
