/**
 * @file
 * Reproduces Fig. 1 (execution-time breakdown of different DLRMs by
 * stage) and echoes Tables 1 and 2 (model classes, SLA targets, and
 * architecture parameters) from their in-code encodings.
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 1 / Tables 1-2",
                "Execution time breakdown of different DLRMs",
                "Platform: Cascade Lake model, Medium Hot dataset, "
                "multi-core. Paper reference: Emb%% column of Table 2.");

    std::printf("\n-- Table 1: model classes --\n");
    std::printf("%-6s %-22s %-10s\n", "Class", "Bottleneck",
                "SLA target");
    std::printf("%-6s %-22s %6.0f ms\n", "RMC1", "Embedding ~60%",
                core::slaTargetMs(core::ModelClass::RMC1));
    std::printf("%-6s %-22s %6.0f ms\n", "RMC2", "Embedding ~90%",
                core::slaTargetMs(core::ModelClass::RMC2));
    std::printf("%-6s %-22s %6.0f ms\n", "RMC3", "MLP ~80%",
                core::slaTargetMs(core::ModelClass::RMC3));

    std::printf("\n-- Table 2: model architecture parameters --\n");
    std::printf("%-7s %-9s %-8s %-5s %-7s %-8s %-10s %-10s\n", "Model",
                "Emb(GB)", "Rows", "Dim", "Tables", "Lookups",
                "PerTbl(MB)", "Emb%(tab2)");
    for (const auto& m : core::allModels()) {
        std::printf("%-7s %-9.1f %-8zu %-5zu %-7zu %-8zu %-10.1f %.0f\n",
                    m.name.c_str(), m.embeddingBytes() / (1 << 30),
                    m.rows, m.dim, m.tables, m.lookups,
                    m.tableBytes() / (1 << 20), m.embTimePercent);
    }

    std::printf("\n-- Fig. 1: measured stage breakdown (%% of batch) --\n");
    std::printf("%-7s %-8s %-8s %-8s %-8s | %-10s %-10s\n", "Model",
                "Bottom", "Emb", "Inter", "Top", "Emb% meas",
                "Emb% paper");
    const auto cpu = platform::cascadeLake();
    const std::size_t cores = quickMode() ? 4 : 24;
    for (const auto& m : core::allModels()) {
        const auto cfg = makeConfig(cpu, m, traces::Hotness::Medium,
                                    core::Scheme::Baseline, cores);
        const auto r = platform::compose(cfg, cachedSimulate(cfg));
        const double tot = r.batchMs;
        std::printf("%-7s %7.2f%% %7.2f%% %7.2f%% %7.2f%% | %9.1f%% "
                    "%9.0f%%\n",
                    m.name.c_str(), 100 * r.stages.bottom / tot,
                    100 * r.stages.emb / tot,
                    100 * r.stages.inter / tot,
                    100 * r.stages.top / tot, 100 * r.stages.emb / tot,
                    m.embTimePercent);
    }
    std::printf("\nShape check: RMC2 models are embedding-dominated "
                "(>90%%), RM1 mixed (~60-70%%).\n");
    return 0;
}
