/**
 * @file
 * Live-reload bench: pushes a retrained model version through the
 * multi-tenant fleet's staged canary rollout while the fleet serves a
 * Poisson stream, and replays the same push under persistence and
 * cluster chaos (torn snapshot write, canary-window corruption, a
 * replica crash mid-rollout). Every scenario replays the *same*
 * arrivals and virtual clock as the reload-free reference session, so
 * the latency and availability deltas are attributable to the reload
 * machinery alone.
 *
 * Acceptance claims (ISSUE 9) — the bench exits nonzero when any
 * fails:
 *  - zero wrong predictions: after every session the serving version
 *    reproduces its reference build's canonical probe predictions
 *    bitwise (the committed v2 after a clean push; the untouched v1
 *    after a failed one);
 *  - no availability collapse: every session conserves requests and
 *    serves at least 90% of the reference session's count;
 *  - bounded tail during the swap: session p95 stays within 1.5x of
 *    the reload-free reference p95.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/snapshot.hpp"
#include "core/versioned.hpp"
#include "sched/topology.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/fleet.hpp"
#include "serve/loadgen.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;
using Kind = serve::LifecycleEvent::Kind;

core::ModelConfig
tenantModel(const char *name)
{
    core::ModelConfig m;
    m.name = name;
    m.cls = core::ModelClass::RMC2;
    m.rows = bench::quickMode() ? 2048 : 8192;
    m.dim = 32;
    m.tables = 4;
    m.lookups = 8;
    m.bottomMlp = {48, 32, 32};
    m.topMlp = {16, 1};
    return m;
}

serve::TenantConfig
makeTenant(const char *name, const core::ModelConfig& m)
{
    serve::TenantConfig t;
    t.name = name;
    t.model = m;
    t.slaMs = 12.0;
    t.weight = 1.0;
    t.service = serve::ServiceModel{0.8, 0.04};
    t.truth = serve::ServiceTimeline(serve::ServiceModel{0.8, 0.04});
    return t;
}

serve::TenantWorkload
makeWork(const core::ModelConfig& m, std::uint64_t seed,
         std::vector<double> arrivals)
{
    traces::TraceConfig tc =
        traces::TraceConfig::forModel(m, traces::Hotness::Medium, seed);
    tc.batchSize = 4;
    traces::TraceGenerator gen(tc);
    serve::TenantWorkload w;
    for (std::size_t b = 0; b < 16; ++b)
        w.batches.push_back(gen.batch(b));
    w.dense.reshape(tc.batchSize, m.denseDim());
    w.dense.randomize(seed);
    w.arrivalsMs = std::move(arrivals);
    return w;
}

serve::FleetConfig
fleetConfig()
{
    serve::FleetConfig cfg;
    cfg.instances = 3;
    cfg.batching.maxRequests = 4;
    cfg.batching.maxLingerMs = 0.2;
    cfg.reload.loadMs = 5.0;
    cfg.reload.shadowRequests = 8;
    cfg.reload.shadowDriftBudget = 1.0; // a retrain moves predictions
    cfg.reload.canaryWindowMs = 30.0;
    cfg.reload.stageHoldMs = 5.0;
    return cfg;
}

/** True when two probe-prediction vectors match bitwise. */
bool
bitwiseEqual(const std::vector<float>& a, const std::vector<float>& b)
{
    if (a.size() != b.size() || a.empty())
        return false;
    return std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(float)) == 0;
}

struct Claim
{
    bool ok = true;
    void
    check(bool cond, const char *what)
    {
        if (!cond) {
            std::printf("  CLAIM FAILED: %s\n", what);
            ok = false;
        }
    }
};

} // namespace

int
main()
{
    bench::printHeader(
        "RELOAD", "Zero-downtime versioned live reload under chaos",
        "real execution; snapshot pushes + scripted faults on the "
        "virtual clock");

    const std::uint64_t seed = 42; // fleet boot weight seed
    const auto model_a = tenantModel("ranking");
    const auto model_b = tenantModel("retrieval");
    const auto topo = sched::Topology::synthetic(6, 2);

    const std::size_t requests = bench::quickMode() ? 300 : 1000;
    const auto arrivals =
        serve::PoissonLoadGen(2.0, 13).arrivals(requests);
    const double push_at = arrivals.back() * 0.3;

    // Reference builds: v1 mirrors the fleet's boot version (same
    // config + seed); v2 is the "retrained" push. Their canonical
    // probe predictions are the bitwise ground truth each session's
    // serving version must reproduce.
    const auto v1 = core::ModelVersion::build(model_a, 1, seed);
    const auto v2 = core::ModelVersion::build(model_a, 2, 99);
    const std::vector<float> ref_v1 =
        core::ModelSnapshot::probePredictions(*v1->model);
    const std::vector<float> ref_v2 =
        core::ModelSnapshot::probePredictions(*v2->model);

    // Crash-consistent snapshot of v2 (and the torn-write variant
    // that never publishes its file).
    const std::string snap = "/tmp/dlrmopt_bench_reload_v2.snap";
    const std::string torn = "/tmp/dlrmopt_bench_reload_torn.snap";
    std::remove(snap.c_str());
    std::remove(torn.c_str());
    if (!core::ModelSnapshot::save(snap, *v2->model, 2, 99)) {
        std::printf("snapshot save failed\n");
        return 1;
    }
    const core::SnapshotInfo info = core::ModelSnapshot::verifyFile(snap);
    std::printf("snapshot: v%llu seed %llu, %zu bytes, %zu tables x "
                "%zu blocks, %zu probe rows — verified\n",
                static_cast<unsigned long long>(info.modelVersion),
                static_cast<unsigned long long>(info.weightSeed),
                info.fileBytes, info.cfg.tables, info.blocksPerTable,
                info.probeCount);

    serve::FaultConfig torn_cfg;
    torn_cfg.snapshotTornWriteRate = 1.0;
    const serve::FaultInjector torn_inj(torn_cfg);
    const core::SnapshotFaults torn_faults = torn_inj.snapshotFaults(2);
    if (core::ModelSnapshot::save(torn, *v2->model, 2, 99,
                                  &torn_faults)) {
        std::printf("torn-write save unexpectedly succeeded\n");
        return 1;
    }

    auto runSession = [&](const std::vector<serve::ReloadEvent>& pushes,
                          const serve::FaultSchedule *chaos) {
        serve::TenantRegistry reg;
        reg.add(makeTenant("ranking", model_a));
        reg.add(makeTenant("retrieval", model_b));
        serve::TenantFleet fleet(reg, topo, fleetConfig());
        std::vector<serve::TenantWorkload> work;
        work.push_back(makeWork(model_a, 5, arrivals));
        work.push_back(makeWork(model_b, 6, arrivals));
        const serve::FleetStats fs = fleet.serve(
            work, core::PrefetchSpec::paperDefault(), chaos, pushes);
        const std::vector<float> serving =
            core::ModelSnapshot::probePredictions(
                *fleet.versioned(0).current()->model);
        return std::make_pair(fs, serving);
    };

    Claim claim;
    std::printf("\n%zu requests/tenant, 2 tenants, 3 instances, push "
                "at %.0f ms\n\n",
                requests, push_at);
    std::printf("%-18s %9s %7s %6s %8s %8s %7s %6s %s\n", "scenario",
                "p95 ms", "served", "fail", "outcome", "version",
                "swaps", "preds", "");

    // ---- reference: no reload ------------------------------------
    const auto [ref_fs, ref_serving] = runSession({}, nullptr);
    claim.check(ref_fs.conserved(), "reference conserves requests");
    claim.check(bitwiseEqual(ref_serving, ref_v1),
                "boot version reproduces the v1 reference probe");
    const double ref_p95 = ref_fs.total.latency.p95();
    const double p95_bound = 1.5 * ref_p95;
    std::printf("%-18s %9.2f %7zu %6zu %8s %8llu %7s %6s\n",
                "steady-state", ref_p95, ref_fs.total.served,
                ref_fs.total.failed, "-", 1ull, "-", "v1==v1");

    auto report = [&](const char *name, const serve::FleetStats& fs,
                      const std::vector<float>& serving,
                      const std::vector<float>& want,
                      const char *want_name) {
        const bool preds_ok = bitwiseEqual(serving, want);
        std::printf("%-18s %9.2f %7zu %6zu %8s %8llu %7zu %6s\n", name,
                    fs.total.latency.p95(), fs.total.served,
                    fs.total.failed,
                    fs.reloadOutcomes.empty()
                        ? "-"
                        : serve::reloadStateName(
                              fs.reloadOutcomes.back().finalState),
                    static_cast<unsigned long long>(
                        fs.finalVersions[0]),
                    fs.versionSwaps, preds_ok ? want_name : "WRONG");
        claim.check(fs.conserved(), "session conserves requests");
        claim.check(preds_ok,
                    "serving version reproduces its reference probe "
                    "bitwise (zero wrong predictions)");
        claim.check(fs.total.served * 10 >= ref_fs.total.served * 9,
                    "availability holds (served >= 90% of reference)");
        claim.check(fs.total.latency.p95() <= p95_bound,
                    "p95 bounded during the swap (<= 1.5x reference)");
        claim.check(fs.finalVersions[1] == 1,
                    "the other tenant's version is untouched");
    };

    // ---- clean snapshot push: canary -> rollout -> commit --------
    {
        std::vector<serve::ReloadEvent> pushes(1);
        pushes[0].atMs = push_at;
        pushes[0].newVersion = 2;
        pushes[0].snapshotPath = snap;
        const auto [fs, serving] = runSession(pushes, nullptr);
        report("clean-push", fs, serving, ref_v2, "v2==v2");
        claim.check(fs.reloadsCommitted == 1, "clean push commits");
        claim.check(fs.finalVersions[0] == 2,
                    "clean push publishes version 2");
        claim.check(fs.versionsRetired >= 1,
                    "the old version retires after draining");
    }

    // ---- torn write: the push never finds a published file -------
    {
        std::vector<serve::ReloadEvent> pushes(1);
        pushes[0].atMs = push_at;
        pushes[0].newVersion = 2;
        pushes[0].snapshotPath = torn;
        const auto [fs, serving] = runSession(pushes, nullptr);
        report("torn-write", fs, serving, ref_v1, "v1==v1");
        claim.check(fs.reloadsFailed == 1, "torn push fails cleanly");
        claim.check(fs.finalVersions[0] == 1,
                    "version 1 keeps serving after a torn push");
    }

    // ---- corruption inside the canary window: rollback -----------
    // The scripted upset lands on the *incoming* version mid-canary;
    // the integrity gate catches it before rollout. (The shared
    // current store also takes the flip, so the bitwise-prediction
    // claim is asserted by the scenarios above, not this one.)
    {
        std::vector<serve::ReloadEvent> pushes(1);
        pushes[0].atMs = push_at;
        pushes[0].newVersion = 2;
        pushes[0].weightSeed = 99;
        serve::FaultSchedule chaos(
            {}, {},
            {serve::BitFlipEvent{push_at + 10.0, 0, 50, 7}});
        serve::TenantRegistry reg;
        reg.add(makeTenant("ranking", model_a));
        reg.add(makeTenant("retrieval", model_b));
        serve::TenantFleet fleet(reg, topo, fleetConfig());
        std::vector<serve::TenantWorkload> work;
        work.push_back(makeWork(model_a, 5, arrivals));
        work.push_back(makeWork(model_b, 6, arrivals));
        const serve::FleetStats fs = fleet.serve(
            work, core::PrefetchSpec::paperDefault(), &chaos, pushes);
        std::printf("%-18s %9.2f %7zu %6zu %8s %8llu %7zu %6s\n",
                    "canary-corrupt", fs.total.latency.p95(),
                    fs.total.served, fs.total.failed,
                    serve::reloadStateName(
                        fs.reloadOutcomes.back().finalState),
                    static_cast<unsigned long long>(
                        fs.finalVersions[0]),
                    fs.versionSwaps, "-");
        claim.check(fs.conserved(), "rollback session conserves");
        claim.check(fs.reloadsRolledBack == 1,
                    "canary corruption rolls the push back");
        claim.check(fs.finalVersions[0] == 1,
                    "version 1 keeps serving after rollback");
        claim.check(fs.total.latency.p95() <= p95_bound,
                    "p95 bounded through the rollback");
    }

    // ---- replica crash mid-rollout: commit still lands -----------
    {
        std::vector<serve::ReloadEvent> pushes(1);
        pushes[0].atMs = push_at;
        pushes[0].newVersion = 2;
        pushes[0].snapshotPath = snap;
        serve::FaultSchedule chaos(
            {},
            {serve::LifecycleEvent{push_at + 38.0, 1, Kind::Crash},
             serve::LifecycleEvent{push_at + 80.0, 1, Kind::Recover}},
            {});
        const auto [fs, serving] = runSession(pushes, &chaos);
        report("crash-in-rollout", fs, serving, ref_v2, "v2==v2");
        claim.check(fs.reloadsCommitted == 1,
                    "commit lands despite the mid-rollout crash");
        claim.check(fs.crashes == 1, "the scripted crash happened");
    }

    std::remove(snap.c_str());
    std::remove(torn.c_str());

    std::printf("\npreds = serving version's canonical probe "
                "predictions vs the reference build, bitwise. All "
                "scenarios replay the same arrivals.\n");
    std::printf("reload acceptance: %s\n",
                claim.ok ? "ALL CLAIMS HOLD" : "CLAIM(S) FAILED");
    return claim.ok ? 0 : 1;
}
