/**
 * @file
 * Reproduces Fig. 7: reuse-distance histograms of the rm2_1
 * embedding index trace for the three datasets at 24 cores / batch
 * 64, with the cache-capacity hit-rate markers (L1D/L2/L3 in
 * embedding vectors) and the cold-miss fraction.
 *
 * Paper shape: L1D-scale hit rates are very poor everywhere; cold
 * misses reach ~72% (Low) and remain ~22% even for High hot (key
 * takeaway 4); an inter-batch reuse bump sits at very large
 * distances (the thick red arrow).
 */

#include "common.hpp"
#include "memsim/reuse_model.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 7", "Reuse distance study (rm2_1, 24 cores)",
                "Distances are in distinct embedding rows; capacities "
                "are caches expressed in 512 B row vectors.");

    const auto model = core::rm2_1();
    const auto cpu = platform::cascadeLake();

    for (auto h : {traces::Hotness::High, traces::Hotness::Medium,
                   traces::Hotness::Low}) {
        memsim::ReuseModelConfig rc;
        rc.trace = traces::TraceConfig::forModel(model, h, 1);
        rc.trace.tables = simTables(); // fold like the evaluator
        rc.trace.hotSetSize = static_cast<std::size_t>(
            1024.0 * model.tables / rc.trace.tables);
        rc.dim = model.dim;
        rc.cores = quickMode() ? 8 : 24;
        rc.numBatches = rc.cores;
        rc.cacheBytes = {cpu.l1.sizeBytes, cpu.l2.sizeBytes,
                         cpu.l3.sizeBytes};
        const auto res = memsim::runReuseModel(rc);

        std::printf("\n-- %s --\n", traces::hotnessName(h).c_str());
        std::printf("accesses=%llu distinct rows=%llu cold=%.1f%%\n",
                    static_cast<unsigned long long>(
                        res.hist.totalAccesses),
                    static_cast<unsigned long long>(res.distinctRows),
                    100.0 * res.coldFraction());
        std::printf("hit rate @ L1D (%llu vecs) = %.3f, @ L2 (%llu) = "
                    "%.3f, @ L3 (%llu) = %.3f\n",
                    static_cast<unsigned long long>(
                        res.capacityVectors[0]),
                    res.hitRates[0],
                    static_cast<unsigned long long>(
                        res.capacityVectors[1]),
                    res.hitRates[1],
                    static_cast<unsigned long long>(
                        res.capacityVectors[2]),
                    res.hitRates[2]);

        std::printf("distance histogram (log2 bins, %% of accesses):\n");
        for (std::size_t b = 0; b < res.hist.bins.size(); ++b) {
            const double pct = 100.0 *
                               static_cast<double>(res.hist.bins[b]) /
                               static_cast<double>(
                                   res.hist.totalAccesses);
            if (pct >= 0.05) {
                std::printf("  [2^%-2zu, 2^%-2zu): %6.2f%% %s\n", b,
                            b + 1, pct,
                            std::string(
                                static_cast<std::size_t>(pct), '#')
                                .c_str());
            }
        }
    }
    std::printf("\nPaper reference: cold misses up to 72%% (Low), "
                "~22%% (High); L1D hit rates \"very bad\" in all "
                "datasets.\n");
    return 0;
}
