/**
 * @file
 * Hot-tier serving cache bench on real hardware, four parts:
 *
 *  1. Bitwise identity: full DLRM forward with the tier attached vs
 *     detached at fp32 / bf16 / int8 — predictions AND the embedding
 *     stage output must match byte-for-byte (the tier is a placement
 *     optimization, never a numeric one). Any divergence FAILS the
 *     run.
 *
 *  2. Hit rate by hotness class: for each of High / Medium / Low the
 *     tier is warmed from measured batch hotness (AccessAccumulator
 *     replay + one promotion epoch), then real batches are served
 *     through the tiered embedding stage. The run FAILS unless the
 *     hit rate clears the per-class floor (High >= 75%, Medium
 *     >= 35%, Low >= 2% — measured values sit near 90 / 50 / 7%).
 *
 *  3. Per-request embedding-stage latency at High hotness: real
 *     wall-clock p50/p95 across requests, tier vs cold at the exact
 *     same configuration. The run FAILS unless p95 with the tier is
 *     strictly better than p95 without it.
 *
 *  4. Tiered vs cold embedding-bag sweep per dtype on a skewed
 *     single-table stream: latency and delivered GB/s with the hot
 *     set pinned, next to the cold gather, with a bitwise
 *     cross-check per point.
 *
 * Emits BENCH_cache.json (one record per measured point) into the
 * working directory. DLRMOPT_BENCH_QUICK=1 shrinks batch counts and
 * reps, not the code paths.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/dlrm.hpp"
#include "core/embedding_store.hpp"
#include "core/hot_tier.hpp"
#include "core/model_config.hpp"
#include "core/tensor.hpp"
#include "trace/generator.hpp"
#include "trace/stats.hpp"

namespace
{

using namespace dlrmopt;
using Clock = std::chrono::steady_clock;

/** Best-of-reps wall time of one call to @p fn, in milliseconds. */
template <typename Fn>
double
timeMs(Fn&& fn, int iters, int reps)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        for (int i = 0; i < iters; ++i)
            fn();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count() /
            iters;
        best = std::min(best, ms);
    }
    return best;
}

/** Nearest-rank-with-interpolation percentile of @p v (q in [0,1]). */
double
percentile(std::vector<double> v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + (v[hi] - v[lo]) * frac;
}

void
attachQuantized(core::DlrmModel& model, const core::ModelConfig& cfg,
                std::uint64_t seed, core::EmbDtype dtype)
{
    if (dtype == core::EmbDtype::Fp32)
        return;
    model.attachQuantizedStore(
        core::EmbeddingStore::create(cfg, seed, 256, dtype));
}

/**
 * Warms @p tier for hotness class @p h the way serving would have:
 * measure real generated batches into the trace-side accumulator,
 * replay the hottest rows into the admission counters, promote.
 * Returns the number of batches observed (the generator's batch ids
 * [0, n) are consumed; serve from @p n onward).
 */
std::size_t
warmTier(core::HotTierCache& tier, const traces::TraceGenerator& gen,
         std::size_t warm_batches)
{
    const auto& store = tier.coldStore();
    traces::AccessAccumulator acc(store->numTables(), store->rows());
    for (std::size_t b = 0; b < warm_batches; ++b)
        acc.observeBatch(gen.batch(b));
    for (const auto& [t, row] : acc.hottest(tier.capacityRows())) {
        tier.recordAccess(
            t, row, static_cast<std::uint32_t>(acc.count(t, row)));
    }
    tier.endEpoch();
    return warm_batches;
}

struct IdentityPoint
{
    core::EmbDtype dtype = core::EmbDtype::Fp32;
    bool predBitwise = false;
    bool embBitwise = false;
    double hitRate = 0.0; //!< tier hit rate while producing this
};

struct ClassPoint
{
    traces::Hotness hotness = traces::Hotness::High;
    core::EmbDtype dtype = core::EmbDtype::Fp32;
    double hitRate = 0.0;
    double floorRate = 0.0;
    std::size_t residentRows = 0;
    std::size_t capacityRows = 0;

    bool pass() const { return hitRate >= floorRate; }
};

struct LatencyPoint
{
    double p50ColdMs = 0.0;
    double p95ColdMs = 0.0;
    double p50TierMs = 0.0;
    double p95TierMs = 0.0;
    double hitRate = 0.0;
    std::size_t requests = 0;

    double
    p95Speedup() const
    {
        return p95TierMs > 0.0 ? p95ColdMs / p95TierMs : 0.0;
    }
};

struct BagRow
{
    core::EmbDtype dtype = core::EmbDtype::Fp32;
    double coldMs = 0.0;
    double tierMs = 0.0;
    double storedBytes = 0.0; //!< bytes read+written per cold call
    double hitRate = 0.0;
    bool bitwise = false;

    double coldGBs() const
    {
        return coldMs > 0.0 ? storedBytes / (coldMs * 1e6) : 0.0;
    }
    double tierGBs() const
    {
        return tierMs > 0.0 ? storedBytes / (tierMs * 1e6) : 0.0;
    }
    double speedup() const
    {
        return tierMs > 0.0 ? coldMs / tierMs : 0.0;
    }
};

/** Part 1: full-forward bitwise identity, tier on vs off. */
IdentityPoint
measureIdentity(core::EmbDtype dtype, const core::ModelConfig& cfg,
                std::uint64_t seed, std::size_t budget_bytes,
                std::size_t batch_size, std::size_t batches)
{
    core::DlrmModel model(cfg, seed);
    attachQuantized(model, cfg, seed, dtype);

    core::HotTierConfig hc;
    hc.budgetBytes = budget_bytes;
    core::HotTierCache tier(model.sharedStoreFor(dtype), hc);

    traces::TraceConfig tc =
        traces::TraceConfig::forModel(cfg, traces::Hotness::High, seed);
    tc.batchSize = batch_size;
    const traces::TraceGenerator gen(tc);
    const std::size_t first = warmTier(tier, gen, 4);

    const core::PrefetchSpec pf = core::PrefetchSpec::paperDefault();
    core::Tensor dense(batch_size, cfg.denseDim());
    dense.randomize(mix64(seed + 17));

    IdentityPoint p;
    p.dtype = dtype;
    p.predBitwise = true;
    p.embBitwise = true;
    const core::HotTierStats before = tier.stats();
    core::DlrmWorkspace with_tier, without;
    for (std::size_t b = 0; b < batches; ++b) {
        const core::SparseBatch sparse = gen.batch(first + b);
        model.forward(dense, sparse, with_tier, pf, dtype, &tier);
        model.forward(dense, sparse, without, pf, dtype, nullptr);
        if (std::memcmp(with_tier.pred.data(), without.pred.data(),
                        batch_size * sizeof(float)) != 0)
            p.predBitwise = false;
        if (std::memcmp(with_tier.embOut.data(), without.embOut.data(),
                        cfg.tables * batch_size * cfg.dim *
                            sizeof(float)) != 0)
            p.embBitwise = false;
    }
    const core::HotTierStats after = tier.stats();
    const std::uint64_t hits = after.hits - before.hits;
    const std::uint64_t total = hits + (after.misses - before.misses);
    p.hitRate = total ? static_cast<double>(hits) /
                            static_cast<double>(total)
                      : 0.0;
    return p;
}

/** Part 2: hit rate for one (hotness class, dtype) cell. */
ClassPoint
measureClass(traces::Hotness h, core::EmbDtype dtype,
             const core::ModelConfig& cfg, std::uint64_t seed,
             std::size_t budget_bytes, std::size_t batch_size,
             std::size_t warm_batches, std::size_t measure_batches,
             double floor_rate)
{
    core::DlrmModel model(cfg, seed);
    attachQuantized(model, cfg, seed, dtype);

    core::HotTierConfig hc;
    hc.budgetBytes = budget_bytes;
    // Offline replay already admits by measured count; letting the
    // tier fill to budget matches what a served session converges to
    // (the near-uniform Low class otherwise strands capacity on the
    // one-epoch warmup).
    hc.minAccesses = 1;
    core::HotTierCache tier(model.sharedStoreFor(dtype), hc);

    traces::TraceConfig tc = traces::TraceConfig::forModel(cfg, h, seed);
    tc.batchSize = batch_size;
    const traces::TraceGenerator gen(tc);
    const std::size_t first = warmTier(tier, gen, warm_batches);

    const core::PrefetchSpec pf = core::PrefetchSpec::paperDefault();
    core::Tensor emb_out(cfg.tables, batch_size * cfg.dim);

    const core::HotTierStats before = tier.stats();
    for (std::size_t b = 0; b < measure_batches; ++b)
        model.embeddingForward(gen.batch(first + b), emb_out, pf,
                               dtype, &tier);
    const core::HotTierStats after = tier.stats();

    ClassPoint p;
    p.hotness = h;
    p.dtype = dtype;
    p.floorRate = floor_rate;
    p.residentRows = after.residentRows;
    p.capacityRows = after.capacityRows;
    const std::uint64_t hits = after.hits - before.hits;
    const std::uint64_t total = hits + (after.misses - before.misses);
    p.hitRate = total ? static_cast<double>(hits) /
                            static_cast<double>(total)
                      : 0.0;
    return p;
}

/** Part 3: per-request wall-clock embedding latency at High hotness,
 *  tier vs cold over the identical request stream. */
LatencyPoint
measureLatency(const core::ModelConfig& cfg, std::uint64_t seed,
               std::size_t budget_bytes, std::size_t batch_size,
               std::size_t requests, int reps)
{
    core::DlrmModel model(cfg, seed);

    core::HotTierConfig hc;
    hc.budgetBytes = budget_bytes;
    core::HotTierCache tier(model.sharedStoreFor(core::EmbDtype::Fp32),
                            hc);

    traces::TraceConfig tc = traces::TraceConfig::forModel(
        cfg, traces::Hotness::High, seed);
    tc.batchSize = batch_size;
    const traces::TraceGenerator gen(tc);
    const std::size_t first = warmTier(tier, gen, 6);

    std::vector<core::SparseBatch> stream;
    stream.reserve(requests);
    for (std::size_t r = 0; r < requests; ++r)
        stream.push_back(gen.batch(first + r));

    const core::PrefetchSpec pf = core::PrefetchSpec::paperDefault();
    core::Tensor emb_out(cfg.tables, batch_size * cfg.dim);

    // Per-request best-of-reps (the deterministic stream makes every
    // rep identical work, so min is the noise-free estimate), cold
    // and tiered interleaved so neither side owns a warmer cache.
    std::vector<double> cold(requests, 1e300), tiered(requests, 1e300);
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t r = 0; r < requests; ++r) {
            auto t0 = Clock::now();
            model.embeddingForward(stream[r], emb_out, pf,
                                   core::EmbDtype::Fp32, nullptr);
            cold[r] = std::min(
                cold[r], std::chrono::duration<double, std::milli>(
                             Clock::now() - t0)
                             .count());
            t0 = Clock::now();
            model.embeddingForward(stream[r], emb_out, pf,
                                   core::EmbDtype::Fp32, &tier);
            tiered[r] = std::min(
                tiered[r], std::chrono::duration<double, std::milli>(
                               Clock::now() - t0)
                               .count());
        }
    }

    LatencyPoint p;
    p.requests = requests;
    p.p50ColdMs = percentile(cold, 0.50);
    p.p95ColdMs = percentile(cold, 0.95);
    p.p50TierMs = percentile(tiered, 0.50);
    p.p95TierMs = percentile(tiered, 0.95);
    const core::HotTierStats st = tier.stats();
    p.hitRate = st.hitRate();
    return p;
}

/** Part 4: tiered vs cold single-table bag on a skewed stream. */
BagRow
measureBagRow(core::EmbDtype dtype, const core::ModelConfig& cfg,
              std::uint64_t seed, std::size_t hot_rows,
              std::size_t samples, std::size_t lookups, int reps)
{
    const auto store = core::EmbeddingStore::create(cfg, seed, 256, dtype);

    core::HotTierConfig hc;
    // Budget exactly the hot set (single-table sweep: the skewed
    // stream's hot rows all fit, the uniform tail falls through).
    const std::size_t stride =
        (store->table(0).storedRowBytes() + 63) / 64 * 64;
    hc.budgetBytes = hot_rows * stride;
    core::HotTierCache tier(store, hc);

    // Hot rows scattered across the whole table (coprime stride walk)
    // — real hot sets are not index-contiguous. Cold gathers touch
    // hot_rows distinct pages; the tier packs the same rows into a
    // contiguous line-aligned buffer.
    const auto hotRow = [&](std::size_t r) {
        return static_cast<RowIndex>((r * 104'729) % cfg.rows);
    };
    for (std::size_t r = 0; r < hot_rows; ++r) {
        tier.recordAccess(0, hotRow(r),
                          static_cast<std::uint32_t>(hot_rows - r + 2));
    }
    tier.endEpoch();

    // 90% of lookups land in the pinned hot set, 10% gather cold —
    // the High-class shape from Sec. 3.1.
    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets{0};
    for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t l = 0; l < lookups; ++l) {
            const std::uint64_t r = mix64(s * 7919 + l);
            indices.push_back(r % 10
                                  ? hotRow(r % hot_rows)
                                  : static_cast<RowIndex>(r % cfg.rows));
        }
        offsets.push_back(static_cast<RowIndex>(indices.size()));
    }
    std::vector<float> out(samples * cfg.dim);
    std::vector<float> ref(out.size());
    const core::PrefetchSpec pf = core::PrefetchSpec::paperDefault();

    BagRow row;
    row.dtype = dtype;
    row.coldMs = timeMs(
        [&] {
            store->table(0).bag(indices.data(), offsets.data(),
                                samples, ref.data(), pf);
        },
        1, reps);
    row.tierMs = timeMs(
        [&] {
            tier.bag(0, indices.data(), offsets.data(), samples,
                     out.data(), pf);
        },
        1, reps);
    row.bitwise = std::memcmp(out.data(), ref.data(),
                              out.size() * sizeof(float)) == 0;

    const double rowBytes = static_cast<double>(
        store->table(0).storedRowBytes());
    row.storedBytes =
        static_cast<double>(indices.size()) * rowBytes +
        static_cast<double>(out.size()) * sizeof(float);
    const core::HotTierStats st = tier.stats();
    row.hitRate = st.hitRate();
    return row;
}

void
writeJson(const std::vector<IdentityPoint>& ids,
          const std::vector<ClassPoint>& classes,
          const LatencyPoint& lat, const std::vector<BagRow>& bags,
          const char *path)
{
    std::ofstream os(path);
    if (!os)
        return;
    os << "[\n";
    const std::size_t total = ids.size() + classes.size() + 1 +
                              bags.size();
    std::size_t n = 0;
    char buf[384];
    for (const IdentityPoint& p : ids) {
        std::snprintf(
            buf, sizeof(buf),
            "  {\"kind\": \"identity\", \"dtype\": \"%s\", "
            "\"pred_bitwise\": %s, \"emb_bitwise\": %s, "
            "\"hit_rate\": %.4f}%s\n",
            core::embDtypeName(p.dtype).c_str(),
            p.predBitwise ? "true" : "false",
            p.embBitwise ? "true" : "false", p.hitRate,
            ++n < total ? "," : "");
        os << buf;
    }
    for (const ClassPoint& p : classes) {
        std::snprintf(
            buf, sizeof(buf),
            "  {\"kind\": \"hit_rate\", \"hotness\": \"%s\", "
            "\"dtype\": \"%s\", \"hit_rate\": %.4f, \"floor\": %.2f, "
            "\"resident_rows\": %zu, \"capacity_rows\": %zu}%s\n",
            traces::hotnessName(p.hotness).c_str(),
            core::embDtypeName(p.dtype).c_str(), p.hitRate,
            p.floorRate, p.residentRows, p.capacityRows,
            ++n < total ? "," : "");
        os << buf;
    }
    std::snprintf(
        buf, sizeof(buf),
        "  {\"kind\": \"latency\", \"hotness\": \"High\", "
        "\"requests\": %zu, \"p50_cold_ms\": %.6f, "
        "\"p95_cold_ms\": %.6f, \"p50_tier_ms\": %.6f, "
        "\"p95_tier_ms\": %.6f, \"p95_speedup\": %.3f, "
        "\"hit_rate\": %.4f}%s\n",
        lat.requests, lat.p50ColdMs, lat.p95ColdMs, lat.p50TierMs,
        lat.p95TierMs, lat.p95Speedup(), lat.hitRate,
        ++n < total ? "," : "");
    os << buf;
    for (const BagRow& p : bags) {
        std::snprintf(
            buf, sizeof(buf),
            "  {\"kind\": \"bag\", \"dtype\": \"%s\", "
            "\"cold_ms\": %.6f, \"tier_ms\": %.6f, "
            "\"cold_gbs\": %.3f, \"tier_gbs\": %.3f, "
            "\"speedup\": %.3f, \"hit_rate\": %.4f, "
            "\"bitwise\": %s}%s\n",
            core::embDtypeName(p.dtype).c_str(), p.coldMs, p.tierMs,
            p.coldGBs(), p.tierGBs(), p.speedup(), p.hitRate,
            p.bitwise ? "true" : "false", ++n < total ? "," : "");
        os << buf;
    }
    os << "]\n";
    std::printf("\nwrote %s (%zu points)\n", path, total);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Hot-tier serving cache",
        "pinned hot rows over the shared cold store: identity, hit "
        "rate, tail latency",
        "run fails unless predictions are bitwise-identical tier "
        "on/off, per-class hit rates clear their floors, and High-hot "
        "p95 is strictly better with the tier");

    const bool quick = bench::quickMode();
    const std::uint64_t seed = 1;
    const auto cfg =
        core::modelByName("rm2_1").scaledToFit(16.0 * (1u << 20));
    const std::size_t budget = 4u << 20;
    const std::size_t batch_size = 16;
    const int reps = quick ? 3 : 7;

    bool ok = true;

    // -- Part 1: bitwise identity, tier on vs off, every dtype ------
    std::printf("\n-- full forward, tier on vs off (%s, %zu MB "
                "embeddings, %.0f MB tier) --\n",
                cfg.name.c_str(),
                static_cast<std::size_t>(cfg.embeddingBytes()) >> 20,
                static_cast<double>(budget) / (1u << 20));
    std::printf("  dtype   predictions   emb stage   tier hit rate\n");
    std::vector<IdentityPoint> ids;
    for (const core::EmbDtype dtype :
         {core::EmbDtype::Fp32, core::EmbDtype::Bf16,
          core::EmbDtype::Int8}) {
        ids.push_back(measureIdentity(dtype, cfg, seed, budget,
                                      batch_size, quick ? 4 : 12));
        const IdentityPoint& p = ids.back();
        std::printf("  %-5s   %-11s   %-9s   %10.1f%%\n",
                    core::embDtypeName(p.dtype).c_str(),
                    p.predBitwise ? "bitwise" : "DIVERGED",
                    p.embBitwise ? "bitwise" : "DIVERGED",
                    100.0 * p.hitRate);
        if (!p.predBitwise || !p.embBitwise) {
            std::printf("  ^^ FAIL: %s forward is not "
                        "bitwise-identical with the tier attached\n",
                        core::embDtypeName(p.dtype).c_str());
            ok = false;
        }
        if (p.hitRate <= 0.0) {
            std::printf("  ^^ FAIL: tier never hit — identity check "
                        "did not exercise the tiered path\n");
            ok = false;
        }
    }

    // -- Part 2: hit rate by hotness class x dtype ------------------
    const std::size_t warm_n = quick ? 6 : 8;
    const std::size_t measure_n = quick ? 8 : 16;
    struct Floor
    {
        traces::Hotness h;
        double rate;
    };
    const Floor floors[] = {{traces::Hotness::High, 0.75},
                            {traces::Hotness::Medium, 0.35},
                            {traces::Hotness::Low, 0.02}};
    std::printf("\n-- hit rate by hotness class (floors: High 75%% / "
                "Medium 35%% / Low 2%%) --\n");
    std::printf("  class    dtype    hit rate   floor   resident\n");
    std::vector<ClassPoint> classes;
    for (const Floor& f : floors) {
        for (const core::EmbDtype dtype :
             {core::EmbDtype::Fp32, core::EmbDtype::Bf16,
              core::EmbDtype::Int8}) {
            classes.push_back(measureClass(
                f.h, dtype, cfg, seed, budget, batch_size, warm_n,
                measure_n, f.rate));
            const ClassPoint& p = classes.back();
            std::printf("  %-8s %-5s   %7.1f%%   %4.0f%%   %zu/%zu\n",
                        traces::hotnessName(p.hotness).c_str(),
                        core::embDtypeName(p.dtype).c_str(),
                        100.0 * p.hitRate, 100.0 * p.floorRate,
                        p.residentRows, p.capacityRows);
            if (!p.pass()) {
                std::printf("  ^^ FAIL: %s/%s hit rate %.1f%% is "
                            "under the %.0f%% floor\n",
                            traces::hotnessName(p.hotness).c_str(),
                            core::embDtypeName(p.dtype).c_str(),
                            100.0 * p.hitRate, 100.0 * p.floorRate);
                ok = false;
            }
        }
    }

    // -- Part 3: per-request p50/p95 at High hotness ----------------
    const LatencyPoint lat = measureLatency(
        cfg, seed, budget, batch_size, quick ? 32 : 64, reps);
    std::printf("\n-- embedding-stage latency, High hotness, %zu "
                "requests (tier hit %.1f%%) --\n",
                lat.requests, 100.0 * lat.hitRate);
    std::printf("            p50 ms      p95 ms\n");
    std::printf("  cold   %9.4f   %9.4f\n", lat.p50ColdMs,
                lat.p95ColdMs);
    std::printf("  tier   %9.4f   %9.4f   (p95 %.2fx)\n",
                lat.p50TierMs, lat.p95TierMs, lat.p95Speedup());
    if (!(lat.p95TierMs < lat.p95ColdMs)) {
        std::printf("FAIL: High-hot p95 %.4f ms with the tier is not "
                    "strictly better than %.4f ms without\n",
                    lat.p95TierMs, lat.p95ColdMs);
        ok = false;
    }

    // -- Part 4: tiered vs cold bag sweep per dtype -----------------
    core::ModelConfig bag_cfg = cfg;
    bag_cfg.tables = 1;
    bag_cfg.rows = quick ? 100'000 : 400'000;
    const std::size_t hot_rows = 2048;
    std::printf("\n-- single-table bag, %zu rows, hot set %zu pinned "
                "(90%% of lookups) --\n",
                bag_cfg.rows, hot_rows);
    std::printf("  dtype    cold ms    tier ms   cold GB/s   "
                "tier GB/s   speedup   bitwise\n");
    std::vector<BagRow> bags;
    for (const core::EmbDtype dtype :
         {core::EmbDtype::Fp32, core::EmbDtype::Bf16,
          core::EmbDtype::Int8}) {
        bags.push_back(measureBagRow(dtype, bag_cfg, seed, hot_rows,
                                     64, 120, reps));
        const BagRow& p = bags.back();
        std::printf("  %-5s  %9.4f  %9.4f  %10.2f  %10.2f   "
                    "%6.2fx   %s\n",
                    core::embDtypeName(p.dtype).c_str(), p.coldMs,
                    p.tierMs, p.coldGBs(), p.tierGBs(), p.speedup(),
                    p.bitwise ? "yes" : "NO");
        if (!p.bitwise) {
            std::printf("  ^^ FAIL: %s tiered bag diverges bitwise "
                        "from the cold bag\n",
                        core::embDtypeName(p.dtype).c_str());
            ok = false;
        }
    }

    writeJson(ids, classes, lat, bags, "BENCH_cache.json");
    return ok ? 0 : 1;
}
