/**
 * @file
 * Real-hardware kernel microbenchmarks (google-benchmark): the
 * embedding_bag operator with and without the paper's software
 * prefetching (Algorithm 3) on a larger-than-LLC table, the dense
 * (MLP) layer kernel — blocked baseline and packed register-blocked
 * microkernel, swept over coalesced batch size m and SimdLevel — the
 * dot interaction, and the simulation substrate's own throughput
 * (cache model, reuse-distance analyzer).
 *
 * Unlike the figure benches (which model the paper's server CPUs),
 * these numbers are measured on THIS host; the prefetch benefit's
 * magnitude depends on the host's memory system but its direction
 * matches the paper on any CPU whose LLC misses dominate the bag
 * kernel.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/embedding.hpp"
#include "core/embedding_store.hpp"
#include "core/hot_tier.hpp"
#include "core/gemm.hpp"
#include "core/interaction.hpp"
#include "core/quant.hpp"
#include "core/simd.hpp"
#include "memsim/cache.hpp"
#include "memsim/reuse.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;

/** Shared fixture state: one big table + a random index stream. */
struct BagSetup
{
    static constexpr std::size_t rows = 1'000'000; // 512 MB @ dim 128
    static constexpr std::size_t dim = 128;
    static constexpr std::size_t samples = 64;
    static constexpr std::size_t lookups = 120;

    core::EmbeddingTable table{rows, dim, 42};
    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets;
    std::vector<float> out;

    BagSetup()
    {
        offsets.push_back(0);
        for (std::size_t s = 0; s < samples; ++s) {
            for (std::size_t l = 0; l < lookups; ++l) {
                indices.push_back(static_cast<RowIndex>(
                    mix64(s * 7919 + l) % rows));
            }
            offsets.push_back(
                static_cast<RowIndex>(indices.size()));
        }
        out.resize(samples * dim);
    }

    static BagSetup&
    instance()
    {
        static BagSetup s;
        return s;
    }
};

void
BM_EmbeddingBag(benchmark::State& state)
{
    auto& s = BagSetup::instance();
    const core::PrefetchSpec pf{static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)), 3};
    for (auto _ : state) {
        s.table.bag(s.indices.data(), s.offsets.data(),
                    BagSetup::samples, s.out.data(), pf);
        benchmark::DoNotOptimize(s.out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(s.indices.size()));
    state.SetLabel(pf.enabled()
                       ? "sw-prefetch d=" +
                             std::to_string(pf.distance) + " lines=" +
                             std::to_string(pf.lines)
                       : "baseline");
}
// Baseline, the paper's CSL spec (4, 8), and ablation points.
BENCHMARK(BM_EmbeddingBag)
    ->Args({0, 0})
    ->Args({1, 8})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({4, 2})
    ->Unit(benchmark::kMillisecond);

void
BM_DenseLayer(benchmark::State& state)
{
    const std::size_t batch = 64;
    const std::size_t in_dim = static_cast<std::size_t>(state.range(0));
    const std::size_t out_dim =
        static_cast<std::size_t>(state.range(1));
    std::vector<float> in(batch * in_dim, 0.5f);
    std::vector<float> w(out_dim * in_dim, 0.25f);
    std::vector<float> b(out_dim, 0.1f);
    std::vector<float> out(batch * out_dim);
    for (auto _ : state) {
        core::denseLayerForward(in.data(), batch, in_dim, w.data(),
                                b.data(), out_dim, out.data(), true);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2 * batch *
        in_dim * out_dim);
}
// rm2_1 and rm1 bottom-MLP layer shapes.
BENCHMARK(BM_DenseLayer)
    ->Args({256, 128})
    ->Args({2048, 2048})
    ->Args({2048, 256})
    ->Unit(benchmark::kMicrosecond);

void
BM_DenseLayerBatchSweep(benchmark::State& state)
{
    // Fixed rm2-style layer, swept batch: small batches are dominated
    // by per-call fixed costs, which is the inefficiency request
    // coalescing amortizes. GFLOP/s rises with batch until the kernel
    // saturates.
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    const std::size_t in_dim = 256, out_dim = 128;
    std::vector<float> in(batch * in_dim, 0.5f);
    std::vector<float> w(out_dim * in_dim, 0.25f);
    std::vector<float> b(out_dim, 0.1f);
    std::vector<float> out(batch * out_dim);
    for (auto _ : state) {
        core::denseLayerForward(in.data(), batch, in_dim, w.data(),
                                b.data(), out_dim, out.data(), true);
        benchmark::DoNotOptimize(out.data());
    }
    const double flops =
        2.0 * static_cast<double>(batch * in_dim * out_dim);
    const double bytes = static_cast<double>(
        (in.size() + w.size() + b.size() + out.size()) *
        sizeof(float));
    state.counters["GFLOP/s"] = benchmark::Counter(
        flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
    state.counters["GB/s"] = benchmark::Counter(
        bytes * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DenseLayerBatchSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

/** (in_dim, out_dim) layer shapes from the rm2_1 and rm1 MLPs. */
constexpr std::size_t kGemmShapes[][2] = {
    {256, 128},   // rm2_1 bottom
    {128, 64},    // rm2_1 top
    {2048, 256},  // rm1 bottom funnel
    {768, 384},   // rm1 top
};

void
BM_GemmPackedSweep(benchmark::State& state)
{
    // The GEMM sweep of the packed register-blocked engine:
    // m in {1, 4, 16, 64, 128} x MLP layer shapes x SimdLevel.
    // Compare against BM_GemmBlockedSweep (same args, old kernel) for
    // the speedup; m = 1 is the GEMV-shaped per-request path, larger
    // m the coalesced batched path.
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    const auto& shape = kGemmShapes[state.range(1)];
    const std::size_t in_dim = shape[0], out_dim = shape[1];
    const auto want = static_cast<core::SimdLevel>(state.range(2));

    const core::SimdLevel prev = core::currentSimdLevel();
    core::setSimdLevel(want); // clamped to what the host supports
    const core::SimdLevel got = core::currentSimdLevel();

    std::vector<float> in(batch * in_dim, 0.5f);
    std::vector<float> w(out_dim * in_dim, 0.25f);
    std::vector<float> b(out_dim, 0.1f);
    std::vector<float> out(batch * out_dim);
    const core::PackedWeights packed(w.data(), in_dim, out_dim);
    for (auto _ : state) {
        core::denseLayerForwardPacked(in.data(), batch, packed,
                                      b.data(), out.data(), true);
        benchmark::DoNotOptimize(out.data());
    }
    core::setSimdLevel(prev);

    const double flops =
        2.0 * static_cast<double>(batch * in_dim * out_dim);
    state.counters["GFLOP/s"] = benchmark::Counter(
        flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
    state.SetLabel("packed " + core::simdLevelName(got) +
                   (got == want ? "" : " (clamped)"));
}
BENCHMARK(BM_GemmPackedSweep)
    ->ArgsProduct({{1, 4, 16, 64, 128},
                   {0, 1, 2, 3},
                   {static_cast<long>(core::SimdLevel::Scalar),
                    static_cast<long>(core::SimdLevel::Avx2),
                    static_cast<long>(core::SimdLevel::Avx512)}})
    ->Unit(benchmark::kMicrosecond);

void
BM_GemmBlockedSweep(benchmark::State& state)
{
    // The pre-packing blocked baseline over the same (m, shape) grid
    // (it has no SIMD dispatch, so no level axis).
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    const auto& shape = kGemmShapes[state.range(1)];
    const std::size_t in_dim = shape[0], out_dim = shape[1];
    std::vector<float> in(batch * in_dim, 0.5f);
    std::vector<float> w(out_dim * in_dim, 0.25f);
    std::vector<float> b(out_dim, 0.1f);
    std::vector<float> out(batch * out_dim);
    for (auto _ : state) {
        core::denseLayerForward(in.data(), batch, in_dim, w.data(),
                                b.data(), out_dim, out.data(), true);
        benchmark::DoNotOptimize(out.data());
    }
    const double flops =
        2.0 * static_cast<double>(batch * in_dim * out_dim);
    state.counters["GFLOP/s"] = benchmark::Counter(
        flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
    state.SetLabel("blocked baseline");
}
BENCHMARK(BM_GemmBlockedSweep)
    ->ArgsProduct({{1, 4, 16, 64, 128}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMicrosecond);

void
BM_EmbeddingBagBatchSweep(benchmark::State& state)
{
    // Same table and per-sample lookup count as BM_EmbeddingBag, but
    // swept over the number of pooled samples per call. The kernel is
    // bandwidth-bound: GB/s is the figure of merit, and small batches
    // under-utilize the memory system.
    auto& s = BagSetup::instance();
    const std::size_t samples = static_cast<std::size_t>(state.range(0));
    const core::PrefetchSpec pf =
        state.range(1) ? core::PrefetchSpec{4, 8, 3}
                       : core::PrefetchSpec{};
    for (auto _ : state) {
        s.table.bag(s.indices.data(), s.offsets.data(), samples,
                    s.out.data(), pf);
        benchmark::DoNotOptimize(s.out.data());
    }
    const double lookups = static_cast<double>(
        s.offsets[samples]); // lookups feeding these samples
    const double bytes =
        (lookups + static_cast<double>(samples)) *
        static_cast<double>(BagSetup::dim) * sizeof(float);
    state.counters["GB/s"] = benchmark::Counter(
        bytes * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
    const double flops = lookups *
                         static_cast<double>(BagSetup::dim);
    state.counters["GFLOP/s"] = benchmark::Counter(
        flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
    state.SetLabel(pf.enabled() ? "sw-prefetch" : "baseline");
}
BENCHMARK(BM_EmbeddingBagBatchSweep)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/**
 * Best effective GB/s seen per storage dtype by the dtype bag sweep,
 * checked after the run: the quantized rows must beat fp32 by the
 * ISSUE 8 acceptance floors (bf16 >= 1.5x, int8 >= 2x) or the bench
 * exits nonzero. Indexed by EmbDtype.
 */
double g_bagEffGBs[3] = {0.0, 0.0, 0.0};

/**
 * Fixture for the dtype sweep: capacity-fit geometry (20k rows x dim
 * 128 — 10 MB at fp32, 5 MB bf16, 2.7 MB int8), where precision moves
 * the working set across cache/TLB level boundaries. This is the
 * table-shard-per-core sizing the paper's SNC partitioning aims for;
 * the big BagSetup table (512 MB, every dtype DRAM-bound) stays the
 * fp32 prefetch-study baseline.
 */
struct QuantBagSetup
{
    static constexpr std::size_t rows = 20'000;
    static constexpr std::size_t dim = 128;
    static constexpr std::size_t samples = 64;
    static constexpr std::size_t lookups = 120;

    std::vector<RowIndex> indices;
    std::vector<RowIndex> offsets;
    std::vector<float> out;

    QuantBagSetup()
    {
        offsets.push_back(0);
        for (std::size_t s = 0; s < samples; ++s) {
            for (std::size_t l = 0; l < lookups; ++l) {
                indices.push_back(static_cast<RowIndex>(
                    mix64(s * 7919 + l) % rows));
            }
            offsets.push_back(
                static_cast<RowIndex>(indices.size()));
        }
        out.resize(samples * dim);
    }

    static QuantBagSetup&
    instance()
    {
        static QuantBagSetup s;
        return s;
    }
};

void
BM_EmbeddingBagDtypeSweep(benchmark::State& state)
{
    // The fused-dequant bag over reduced-precision storage. The
    // kernel is bandwidth-bound, so shrinking the stored rows (bf16
    // 2x, int8 ~4x) raises *effective* bandwidth: fp32-equivalent
    // bytes per second. "GB/s" counts the bytes actually moved
    // (stored rows + output writes); "effGB/s" counts the
    // fp32-equivalent bytes the model consumed. fp32 rows run the
    // unchanged baseline kernel.
    const auto dtype = static_cast<core::EmbDtype>(state.range(0));
    static core::EmbeddingTable *tables[3] = {nullptr, nullptr,
                                              nullptr};
    const auto d = static_cast<std::size_t>(state.range(0));
    if (!tables[d]) {
        tables[d] = new core::EmbeddingTable(
            QuantBagSetup::rows, QuantBagSetup::dim, 42, dtype);
    }
    const core::EmbeddingTable& table = *tables[d];
    auto& s = QuantBagSetup::instance();
    const core::PrefetchSpec pf = core::PrefetchSpec::paperDefault();

    const auto t0 = std::chrono::steady_clock::now();
    std::int64_t calls = 0;
    for (auto _ : state) {
        table.bag(s.indices.data(), s.offsets.data(),
                  QuantBagSetup::samples, s.out.data(), pf);
        benchmark::DoNotOptimize(s.out.data());
        ++calls;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    const double lookups = static_cast<double>(s.indices.size());
    const double row_bytes = static_cast<double>(table.bytes()) /
                             static_cast<double>(QuantBagSetup::rows);
    const double out_bytes = static_cast<double>(
        QuantBagSetup::samples * QuantBagSetup::dim * sizeof(float));
    const double stored = lookups * row_bytes + out_bytes;
    const double logical =
        lookups * static_cast<double>(QuantBagSetup::dim) *
            sizeof(float) +
        out_bytes;
    state.counters["GB/s"] = benchmark::Counter(
        stored * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
    state.counters["effGB/s"] = benchmark::Counter(
        logical * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
    state.SetLabel(core::embDtypeName(dtype));

    // Track the best effective bandwidth for the post-run acceptance
    // check in main().
    if (calls > 0 && secs > 0.0) {
        g_bagEffGBs[d] = std::max(
            g_bagEffGBs[d],
            logical * static_cast<double>(calls) / secs * 1e-9);
    }
}
BENCHMARK(BM_EmbeddingBagDtypeSweep)
    ->Arg(static_cast<long>(core::EmbDtype::Fp32))
    ->Arg(static_cast<long>(core::EmbDtype::Bf16))
    ->Arg(static_cast<long>(core::EmbDtype::Int8))
    ->Unit(benchmark::kMillisecond);

void
BM_HotTierBagDtypeSweep(benchmark::State& state)
{
    // The tiered bag over the same skewed stream: 90% of lookups hit
    // a pinned hot set that fits in a few MB of contiguous slots, so
    // the gather mostly walks cache-resident lines and the
    // whole-sample pointer kernels store each output row once.
    // Compare against BM_EmbeddingBagDtypeSweep (the cold bag) at the
    // same dtype for the tier's placement win; output is
    // bitwise-identical between the two by construction.
    const auto dtype = static_cast<core::EmbDtype>(state.range(0));
    const auto d = static_cast<std::size_t>(state.range(0));

    static constexpr std::size_t kRows = 400'000;
    static constexpr std::size_t kDim = 128;
    static constexpr std::size_t kSamples = 64;
    static constexpr std::size_t kLookups = 120;
    static constexpr std::size_t kHotRows = 2048;

    struct Tiered
    {
        std::shared_ptr<const core::EmbeddingStore> store;
        std::unique_ptr<core::HotTierCache> tier;
        std::vector<RowIndex> indices;
        std::vector<RowIndex> offsets;
    };
    static Tiered *tiered[3] = {nullptr, nullptr, nullptr};
    if (!tiered[d]) {
        auto *t = new Tiered;
        core::ModelConfig m;
        m.name = "tier_bench";
        m.cls = core::ModelClass::RMC2;
        m.rows = kRows;
        m.dim = kDim;
        m.tables = 1;
        m.lookups = kLookups;
        m.bottomMlp = {64, kDim};
        m.topMlp = {16, 1};
        t->store = core::EmbeddingStore::create(m, 42, 256, dtype);
        // Scattered hot set (coprime walk, so cold locality is not
        // accidentally as good as the tier's), 90% of lookups.
        const auto hotRow = [](std::size_t r) {
            return static_cast<RowIndex>((r * 104'729) % kRows);
        };
        core::HotTierConfig hc;
        hc.budgetBytes =
            kHotRows * ((t->store->table(0).storedRowBytes() + 63) /
                        64 * 64);
        hc.minAccesses = 1;
        t->tier =
            std::make_unique<core::HotTierCache>(t->store, hc);
        t->offsets.push_back(0);
        for (std::size_t s = 0; s < kSamples; ++s) {
            for (std::size_t l = 0; l < kLookups; ++l) {
                const std::uint64_t r = mix64(s * 7919 + l);
                t->indices.push_back(
                    r % 10 ? hotRow(r % kHotRows)
                           : static_cast<RowIndex>(r % kRows));
            }
            t->offsets.push_back(
                static_cast<RowIndex>(t->indices.size()));
        }
        for (const RowIndex idx : t->indices)
            t->tier->recordAccess(0, idx);
        t->tier->endEpoch();
        tiered[d] = t;
    }
    Tiered& t = *tiered[d];
    std::vector<float> out(kSamples * kDim);
    const core::PrefetchSpec pf = core::PrefetchSpec::paperDefault();

    for (auto _ : state) {
        t.tier->bag(0, t.indices.data(), t.offsets.data(), kSamples,
                    out.data(), pf);
        benchmark::DoNotOptimize(out.data());
    }

    const double lookups = static_cast<double>(t.indices.size());
    const double row_bytes =
        static_cast<double>(t.store->table(0).storedRowBytes());
    const double out_bytes =
        static_cast<double>(kSamples * kDim * sizeof(float));
    state.counters["GB/s"] = benchmark::Counter(
        (lookups * row_bytes + out_bytes) * 1e-9,
        benchmark::Counter::kIsIterationInvariantRate);
    state.counters["hit%"] = benchmark::Counter(
        100.0 * t.tier->stats().hitRate());
    state.SetLabel(core::embDtypeName(dtype));
}
BENCHMARK(BM_HotTierBagDtypeSweep)
    ->Arg(static_cast<long>(core::EmbDtype::Fp32))
    ->Arg(static_cast<long>(core::EmbDtype::Bf16))
    ->Arg(static_cast<long>(core::EmbDtype::Int8))
    ->Unit(benchmark::kMillisecond);

void
BM_DotInteraction(benchmark::State& state)
{
    const std::size_t tables = static_cast<std::size_t>(state.range(0));
    const std::size_t dim = 128, batch = 64;
    std::vector<float> bottom(batch * dim, 0.5f);
    std::vector<std::vector<float>> emb_store(
        tables, std::vector<float>(batch * dim, 0.25f));
    std::vector<const float *> emb;
    for (auto& e : emb_store)
        emb.push_back(e.data());
    std::vector<float> out(batch *
                           core::interactionOutputDim(tables, dim));
    for (auto _ : state) {
        core::dotInteraction(bottom.data(), emb, tables, batch, dim,
                             out.data());
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_DotInteraction)->Arg(32)->Arg(60)->Unit(
    benchmark::kMicrosecond);

void
BM_CacheModelThroughput(benchmark::State& state)
{
    memsim::Cache cache(
        memsim::CacheConfig{1024 * 1024, 16, 64}); // L2-like
    std::uint64_t i = 0;
    for (auto _ : state) {
        const std::uint64_t addr = (mix64(i++) % (1 << 22)) * 64;
        benchmark::DoNotOptimize(cache.accessFill(addr));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheModelThroughput);

void
BM_ReuseDistanceThroughput(benchmark::State& state)
{
    memsim::ReuseDistanceAnalyzer analyzer(1 << 20);
    std::uint64_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(analyzer.access(mix64(i++) % 65536));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReuseDistanceThroughput);

void
BM_TraceGeneration(benchmark::State& state)
{
    traces::TraceConfig tc;
    tc.rows = 1'000'000;
    tc.tables = 60;
    tc.lookups = 120;
    tc.batchSize = 64;
    tc.hotness = traces::Hotness::Low;
    traces::TraceGenerator gen(tc);
    std::size_t b = 0;
    for (auto _ : state) {
        auto batch = gen.batch(b++ % 16);
        benchmark::DoNotOptimize(batch.indices[0].data());
    }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

} // namespace

/**
 * BENCHMARK_MAIN() plus the quantized-bag acceptance check: when the
 * dtype bag sweep ran (it may be filtered out), bf16 must deliver
 * >= 1.5x and int8 >= 2x the fp32 effective bandwidth (ISSUE 8), or
 * the bench exits nonzero.
 */
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const double fp32 = g_bagEffGBs[0];
    const double bf16 = g_bagEffGBs[1];
    const double int8 = g_bagEffGBs[2];
    if (fp32 <= 0.0 || bf16 <= 0.0 || int8 <= 0.0)
        return 0; // dtype sweep filtered out of this run
    std::printf("quantized-bag effective bandwidth: fp32 %.2f GB/s, "
                "bf16 %.2f GB/s (%.2fx), int8 %.2f GB/s (%.2fx)\n",
                fp32, bf16, bf16 / fp32, int8, int8 / fp32);
    bool ok = true;
    if (bf16 < 1.5 * fp32) {
        std::printf("FAIL: bf16 bag below the 1.5x fp32 effective-"
                    "bandwidth acceptance floor\n");
        ok = false;
    }
    if (int8 < 2.0 * fp32) {
        std::printf("FAIL: int8 bag below the 2x fp32 effective-"
                    "bandwidth acceptance floor\n");
        ok = false;
    }
    return ok ? 0 : 1;
}
