/**
 * @file
 * Reproduces Table 4: batch execution time (ms) of the
 * embedding-only stage, multi-core (24 cores), for all four models
 * and three datasets, under HW-PF OFF / Baseline / SW-PF.
 *
 * Paper values are printed alongside the model's for a direct
 * comparison (also recorded in EXPERIMENTS.md).
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

namespace
{

/** Table 4 of the paper, indexed [hotness][model][scheme]. */
struct PaperRow
{
    double off, base, swpf;
};

// Order: rm2_1, rm2_2, rm2_3, rm1.
const PaperRow paperLow[4] = {{72.59, 74.36, 51.91},
                              {180.42, 180.88, 129.61},
                              {306.77, 303.56, 232.79},
                              {11.23, 10.95, 9.14}};
const PaperRow paperMed[4] = {{48.94, 49.65, 36.74},
                              {115.76, 120.48, 90.88},
                              {196.93, 201.87, 146.39},
                              {7.33, 6.62, 5.31}};
const PaperRow paperHigh[4] = {{32.92, 29.89, 24.43},
                               {83.18, 70.28, 60.65},
                               {126.54, 124.84, 99.26},
                               {5.85, 4.68, 3.95}};

} // namespace

int
main()
{
    printHeader("Table 4",
                "Embedding-only batch time (ms), multi-core",
                "Model vs paper; Cascade Lake, 24 cores, batch 64.");

    const auto cpu = platform::cascadeLake();
    const std::size_t cores = quickMode() ? 8 : 24;
    auto models = core::allModels();

    const struct
    {
        traces::Hotness h;
        const char *name;
        const PaperRow *paper;
    } groups[] = {{traces::Hotness::Low, "Low", paperLow},
                  {traces::Hotness::Medium, "Medium", paperMed},
                  {traces::Hotness::High, "High", paperHigh}};

    for (const auto& g : groups) {
        std::printf("\n-- %s Hot --\n", g.name);
        std::printf("%-8s %-22s %-22s %-22s\n", "Model",
                    "HW-PF OFF (model/paper)",
                    "Baseline (model/paper)", "SW-PF (model/paper)");
        for (std::size_t i = 0; i < models.size(); ++i) {
            if (quickMode() && i > 0)
                break;
            const auto& m = models[i];
            auto cfg = makeConfig(cpu, m, g.h, core::Scheme::HwPfOff,
                                  cores);
            const auto off =
                platform::compose(cfg, cachedSimulate(cfg));
            cfg.scheme = core::Scheme::Baseline;
            const auto base =
                platform::compose(cfg, cachedSimulate(cfg));
            cfg.scheme = core::Scheme::SwPf;
            const auto pf =
                platform::compose(cfg, cachedSimulate(cfg));
            std::printf("%-8s %9.2f /%9.2f  %9.2f /%9.2f  %9.2f "
                        "/%9.2f\n",
                        m.name.c_str(), off.embMs, g.paper[i].off,
                        base.embMs, g.paper[i].base, pf.embMs,
                        g.paper[i].swpf);
        }
    }
    std::printf("\nShape checks: times rise Low > Medium > High and "
                "rm2_3 > rm2_2 > rm2_1 >> rm1; SW-PF < Baseline "
                "everywhere.\n");
    return 0;
}
