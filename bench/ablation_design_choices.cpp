/**
 * @file
 * Ablations for the design choices DESIGN.md calls out, beyond the
 * paper's own sweeps:
 *
 *  1. "Where to prefetch" (Sec. 4.2): locality hint T0/T1/T2 —
 *     which cache level the prefetched row lands in.
 *  2. Instruction-window sensitivity: how the SW-PF gain shrinks as
 *     the ROB grows (the Sec. 6.4 ICL/SPR observation, isolated).
 *  3. DP-HT cache-sharing assumption: static halving of private
 *     caches vs optimistic full-size caches.
 *  4. Hot-set size: how the Zipf hot-set footprint moves the
 *     baseline (trace-generator robustness).
 *  5. Table folding: the simulation-cost approximation validated
 *     against exact full-table runs.
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Ablations", "Design-choice sensitivity studies",
                "rm2_1, Low Hot unless stated; Cascade Lake model.");

    const auto cpu = platform::cascadeLake();
    const auto model = core::rm2_1();
    const auto h = traces::Hotness::Low;
    const std::size_t cores = quickMode() ? 4 : 8;

    // ---- 1. Prefetch target level ----
    std::printf("\n-- 1. Where to prefetch (locality hint) --\n");
    std::printf("%-18s %-10s %-10s %-12s\n", "Hint", "Emb(ms)",
                "L1D hit", "LoadLat(cy)");
    for (int loc : {3, 2, 1}) {
        auto c = makeConfig(cpu, model, h, core::Scheme::SwPf, cores);
        c.pfLocality = loc;
        const auto r = platform::compose(c, cachedSimulate(c));
        const char *name = loc == 3 ? "T0 (L1D, paper)"
            : loc == 2              ? "T1 (L2)"
                                    : "T2 (LLC)";
        std::printf("%-18s %-10.2f %-10.3f %-12.1f\n", name, r.embMs,
                    r.sim.vtuneL1HitRate(),
                    r.embTiming.avgLoadLatency);
    }
    std::printf("(expected: T0 fastest — it puts rows closest to the "
                "core, Sec. 4.2)\n");

    // ---- 2. Instruction-window sensitivity ----
    std::printf("\n-- 2. SW-PF gain vs instruction window (ROB) --\n");
    std::printf("%-8s %-12s %-12s %-9s\n", "ROB", "Base(ms)",
                "SW-PF(ms)", "Speedup");
    for (std::size_t rob : {128u, 224u, 352u, 512u}) {
        auto cb = makeConfig(cpu, model, h, core::Scheme::Baseline,
                             cores);
        cb.cpu.robSize = rob;
        auto cp = cb;
        cp.scheme = core::Scheme::SwPf;
        const auto rb = platform::compose(cb, cachedSimulate(cb));
        const auto rp = platform::compose(cp, cachedSimulate(cp));
        std::printf("%-8zu %-12.2f %-12.2f %-9.2f\n", rob, rb.embMs,
                    rp.embMs, rb.embMs / rp.embMs);
    }
    std::printf("(expected: monotonically shrinking gain — bigger "
                "windows already overlap misses, Sec. 6.4)\n");

    // ---- 3. DP-HT private-cache sharing ----
    std::printf("\n-- 3. DP-HT contents assumption --\n");
    {
        auto c = makeConfig(cpu, model, h, core::Scheme::DpHt, cores);
        const auto halved = platform::compose(c, cachedSimulate(c));
        // Optimistic variant: pretend each instance kept full L1/L2.
        auto c_opt = c;
        c_opt.scheme = core::Scheme::Baseline; // full-size contents
        const auto opt_run = cachedSimulate(c_opt);
        c_opt.scheme = core::Scheme::DpHt;
        const auto optimistic = platform::compose(c_opt, opt_run);
        std::printf("halved private caches: %.2f ms; full-size "
                    "(optimistic): %.2f ms (%.1f%% of the DP-HT "
                    "penalty is cache contention)\n",
                    halved.batchMs, optimistic.batchMs,
                    100.0 * (halved.batchMs - optimistic.batchMs) /
                        halved.batchMs);
    }

    // ---- 4. Hot-set size ----
    std::printf("\n-- 4. Hot-set size sensitivity (Medium Hot) --\n");
    std::printf("%-10s %-12s %-10s\n", "HotSet", "Base emb(ms)",
                "L1D hit");
    for (std::size_t hs : {256u, 1024u, 4096u}) {
        platform::EvalConfig c = makeConfig(
            cpu, model, traces::Hotness::Medium,
            core::Scheme::Baseline, cores);
        c.maxSimTables = 0; // fold also rescales hot set; keep exact
        c.model.tables = simTables();
        c.seed = 1000 + hs; // distinct cache entries
        auto run = [&]() {
            memsim::EmbSimConfig sc;
            sc.trace = traces::TraceConfig::forModel(c.model,
                                                     c.hotness,
                                                     c.seed);
            sc.trace.hotSetSize = hs;
            sc.dim = c.model.dim;
            sc.hier = c.cpu.hierarchy(c.cores);
            sc.numBatches = c.numBatches;
            return memsim::EmbeddingSim(sc).run();
        };
        const auto st = run();
        platform::TimingModel tm(cpu);
        const auto t = tm.embeddingTime(st, cores, c.numBatches, {});
        std::printf("%-10zu %-12.2f %-10.3f\n", hs, t.msPerBatch,
                    st.vtuneL1HitRate());
    }
    std::printf("(expected: mild sensitivity — the unique-fraction "
                "calibration compensates for the hot-set size)\n");

    // ---- 5. Table folding accuracy ----
    std::printf("\n-- 5. Table folding vs exact simulation --\n");
    {
        auto c = makeConfig(cpu, model, h, core::Scheme::Baseline,
                            quickMode() ? 2 : 4);
        c.maxSimTables = 0;
        const auto exact = platform::compose(c, cachedSimulate(c));
        c.maxSimTables = simTables();
        const auto folded = platform::compose(c, cachedSimulate(c));
        std::printf("exact (60 tables): %.2f ms; folded (%zu "
                    "tables): %.2f ms; error %.1f%%\n",
                    exact.embMs, simTables(), folded.embMs,
                    100.0 * (folded.embMs - exact.embMs) /
                        exact.embMs);
    }
    return 0;
}
