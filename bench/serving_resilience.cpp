/**
 * @file
 * Cluster-resilience bench: replays the scripted chaos timelines
 * (crash storm, rolling corruption, flapping straggler) against the
 * routed multi-instance cluster, once with every resilience feature
 * off and once with circuit breakers + hedged failover + integrity
 * repair on, over the *same* Poisson arrival stream and virtual
 * clock. The only variable is the resilience layer, so the SLA
 * compliance delta is directly attributable to it.
 *
 * The headline claim (ISSUE 4 acceptance): the resilient column must
 * be strictly more SLA-compliant than the baseline on every scenario
 * where faults actually bite, and corruption must never be served —
 * it is detected and repaired (resilient) or the whole session just
 * eats the corrupt-read risk (baseline, which is the point of the
 * comparison).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/embedding_store.hpp"
#include "sched/topology.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/loadgen.hpp"
#include "serve/router.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;

struct RunResult
{
    serve::RouterStats stats;
    double complianceRate = 0.0;
};

RunResult
runScenario(const core::ModelConfig& model_cfg,
            const std::string& scenario, bool resilient,
            const core::Tensor& dense,
            const std::vector<core::SparseBatch>& batches,
            const std::vector<double>& arrivals,
            const sched::Topology& topo, std::size_t instances,
            std::uint64_t seed)
{
    // Fresh store per run: chaos schedules flip stored bits, and a
    // shared store would leak corruption across configurations.
    auto store = core::EmbeddingStore::createMutable(model_cfg, seed);
    const double session_ms = arrivals.back();

    // The corruption scenario additionally upsets a row the trace
    // *actually looks up* (scripted/random flips land on arbitrary
    // rows, which mostly go unread): the baseline then serves wrong
    // predictions from it, while integrity checking repairs it on
    // first touch.
    if (scenario == "rolling-corruption") {
        store->flipBit(0,
                       static_cast<std::size_t>(
                           batches.front().indices[0][0]),
                       30);
    }

    serve::RouterConfig cfg;
    cfg.server.slaMs = 12.0;
    cfg.server.service = serve::ServiceModel{0.8, 0.04};
    cfg.server.maxRetries = 2;
    cfg.instances = instances;
    cfg.policy = serve::RoutePolicy::RoundRobin;
    cfg.seed = seed;
    cfg.probationMs = 5.0;
    cfg.recordPredictions = true;
    if (resilient) {
        cfg.breaker.enabled = true;
        cfg.hedging = true;
        cfg.integrity.enabled = true;
        cfg.integrity.repair = true;
    }

    serve::Router router(model_cfg, store, topo, cfg);
    RunResult r;
    if (scenario.empty()) { // fault-free reference run
        r.stats = router.serve(dense, batches, arrivals);
    } else {
        const auto schedule = serve::FaultSchedule::chaosScenario(
            scenario, instances, session_ms, seed);
        r.stats = router.serve(dense, batches, arrivals,
                               core::PrefetchSpec::paperDefault(),
                               &schedule);
    }
    r.complianceRate =
        r.stats.total.arrived > 0
            ? 100.0 * static_cast<double>(r.stats.compliant) /
                  static_cast<double>(r.stats.total.arrived)
            : 0.0;
    return r;
}

/** Served requests whose prediction bits differ from the fault-free
 *  reference: wrong answers a client actually received. */
std::size_t
wrongPredictions(const std::vector<std::uint64_t>& got,
                 const std::vector<std::uint64_t>& ref)
{
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < got.size() && i < ref.size(); ++i) {
        if (got[i] != 0 && ref[i] != 0 && got[i] != ref[i])
            ++wrong;
    }
    return wrong;
}

} // namespace

int
main()
{
    using bench::quickMode;

    bench::printHeader(
        "RESILIENCE", "Chaos replay: SLA compliance with and without "
        "the resilience layer",
        "real execution; scripted crash/corruption/straggler "
        "timelines on the virtual clock");

    const auto model_cfg =
        core::modelByName("rm1").scaledToFit(quickMode() ? 2.0e6
                                                         : 16.0e6);
    const std::uint64_t seed = 7;

    traces::TraceConfig tc = traces::TraceConfig::forModel(
        model_cfg, traces::Hotness::Medium, seed);
    tc.batchSize = 8;
    traces::TraceGenerator gen(tc);
    std::vector<core::SparseBatch> batches;
    for (std::size_t b = 0; b < 16; ++b)
        batches.push_back(gen.batch(b));
    core::Tensor dense(tc.batchSize, model_cfg.denseDim());
    dense.randomize(11);

    // ~80% utilization when healthy: light enough that a fault-free
    // session is near-fully compliant, heavy enough that losing an
    // instance (or flapping one) builds real backlog — which is
    // exactly where hedging and breakers earn their keep.
    const std::size_t cores = 4;
    const std::size_t instances = 2;
    const std::size_t requests = quickMode() ? 400 : 1000;
    const auto topo = sched::Topology::synthetic(cores, 2);
    const auto arrivals =
        serve::PoissonLoadGen(0.35, 13).arrivals(requests);

    std::printf("%zu instance(s) on %zu core(s), %zu requests, SLA "
                "12 ms, rr routing\n\n",
                instances, cores, requests);
    // Fault-free reference fingerprints: what every request's
    // prediction *should* be (replicas are bitwise-identical, so the
    // reference is routing-independent).
    const RunResult ref = runScenario(model_cfg, "", false, dense,
                                      batches, arrivals, topo,
                                      instances, seed);

    std::printf("%-20s %-10s %9s %7s %7s %6s %6s %7s %8s %8s %6s\n",
                "scenario", "config", "complnt", "served", "shed",
                "fail", "trips", "hedges", "restarts", "repaired",
                "wrong");

    std::size_t base_compliant = 0, res_compliant = 0;
    std::size_t res_wrong = 0;
    bool never_worse = true;
    for (const auto& scenario :
         serve::FaultSchedule::scenarioNames()) {
        std::size_t base_row = 0;
        for (const bool resilient : {false, true}) {
            const RunResult r = runScenario(
                model_cfg, scenario, resilient, dense, batches,
                arrivals, topo, instances, seed);
            const auto& st = r.stats;
            const std::size_t wrong = wrongPredictions(
                st.predFingerprints, ref.stats.predFingerprints);
            std::printf("%-20s %-10s %8.1f%% %7zu %7zu %6zu %6zu "
                        "%7zu %8zu %8zu %6zu\n",
                        scenario.c_str(),
                        resilient ? "resilient" : "baseline",
                        r.complianceRate, st.total.served,
                        st.total.shed, st.total.failed,
                        st.breakerTrips, st.hedges, st.restarts,
                        st.blocksRepaired, wrong);
            if (!resilient) {
                base_row = st.compliant;
                base_compliant += st.compliant;
            } else {
                res_compliant += st.compliant;
                res_wrong += wrong;
                if (st.compliant < base_row)
                    never_worse = false;
            }
        }
        std::printf("\n");
    }

    std::printf("complnt = served within SLA / arrived; wrong = "
                "served predictions differing bitwise from the "
                "fault-free run; both rows of a scenario replay the "
                "same arrivals and fault timeline.\n");
    std::printf("aggregate SLA-compliant requests: baseline %zu, "
                "resilient %zu -> resilience layer %s\n",
                base_compliant, res_compliant,
                res_compliant > base_compliant && never_worse
                    ? "IMPROVED compliance (and never hurt it)"
                    : res_compliant > base_compliant
                          ? "IMPROVED aggregate compliance"
                          : "did NOT improve compliance");
    std::printf("wrong predictions served with integrity checks on: "
                "%zu (must be 0)\n", res_wrong);
    return 0;
}
