/**
 * @file
 * Reproduces Fig. 16: SW-PF / MP-HT / Integrated speedups across the
 * five CPU platforms of Sec. 6.4 (SKL, CSL, ICL, SPR, Zen3), for
 * rm2_1 (embedding-heavy) and rm1 (mixed) on the Low Hot dataset,
 * (a) single-core and (b) all cores.
 *
 * Paper shape: improvements are consistent on every platform;
 * multi-core speedups are below single-core (shared-resource
 * interference); ICL/SPR benefit less from SW-PF (their larger
 * instruction windows already extract more memory-level
 * parallelism); each platform uses its tuned prefetch amount
 * (8 / 8 / 2 / 2 / 4 lines).
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 16", "Speedups across CPU platforms",
                "rm2_1 + rm1, Low Hot; per-platform tuned prefetch "
                "amount (Sec. 6.4).");

    for (const bool multi : {false, true}) {
        if (quickMode() && multi)
            continue;
        std::printf("\n-- (%s) %s --\n", multi ? "b" : "a",
                    multi ? "multi-core (all cores)" : "single-core");
        std::printf("%-6s %-7s %-7s %-9s %-8s %-8s %-10s\n", "CPU",
                    "Cores", "Model", "Base(ms)", "SW-PF", "MP-HT",
                    "Integrated");
        for (const auto& cpu : platform::allCpus()) {
            for (const auto& m : {core::rm2_1(), core::rm1()}) {
                const std::size_t cores = multi ? cpu.totalCores() : 1;
                const auto cfg = makeConfig(
                    cpu, m, traces::Hotness::Low,
                    core::Scheme::Baseline, cores);

                using core::Scheme;
                auto c2 = cfg;
                c2.scheme = Scheme::Baseline;
                const auto base_run = cachedSimulate(c2);
                const auto base = platform::compose(c2, base_run);
                c2.scheme = Scheme::MpHt;
                const auto mp = platform::compose(c2, base_run);
                c2.scheme = Scheme::SwPf;
                const auto pf_run = cachedSimulate(c2);
                const auto pf = platform::compose(c2, pf_run);
                c2.scheme = Scheme::Integrated;
                const auto in = platform::compose(c2, pf_run);

                std::printf(
                    "%-6s %-7zu %-7s %-9.2f %-8.2f %-8.2f %-10.2f\n",
                    cpu.name.c_str(), cores, m.name.c_str(),
                    base.batchMs, base.batchMs / pf.batchMs,
                    base.batchMs / mp.batchMs,
                    base.batchMs / in.batchMs);
            }
        }
    }
    std::printf("\nShape checks: every platform gains; Integrated "
                ">= SW-PF, MP-HT; ICL/SPR SW-PF gains < CSL/SKL "
                "(bigger ROB).\n");
    return 0;
}
