/**
 * @file
 * Reproduces Fig. 15: L1D hit rate and average load latency of the
 * embedding stage for Baseline / SW-PF / Integrated on the Low Hot
 * dataset, models rm2_1..3.
 *
 * Paper bands: Baseline hit 72-84% at 23-90 cycles; SW-PF 96.7-99.4%
 * at 5.6-7.1 cycles; Integrated 99.3-99.5% at 5.5-5.7 cycles. (In
 * the contents model SW-PF and Integrated share the same address
 * stream, so their cache metrics coincide; the paper's small extra
 * gain comes from cross-thread effects the timing model represents
 * instead via the SMT assist term.)
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 15",
                "L1D hit rate / avg load latency, Low Hot",
                "Profiler view (row loads + paired accumulator "
                "loads); Cascade Lake, 24 cores.");

    const auto cpu = platform::cascadeLake();
    std::vector<core::ModelConfig> models = {core::rm2_1(),
                                             core::rm2_2(),
                                             core::rm2_3()};
    if (quickMode())
        models.resize(1);
    const std::size_t cores = quickMode() ? 8 : 24;

    std::printf("\n%-8s %-12s %-10s %-14s\n", "Model", "Scheme",
                "L1D hit", "LoadLat(cy)");
    for (const auto& m : models) {
        auto cfg = makeConfig(cpu, m, traces::Hotness::Low,
                              core::Scheme::Baseline, cores);
        for (auto s : {core::Scheme::Baseline, core::Scheme::SwPf,
                       core::Scheme::Integrated}) {
            cfg.scheme = s;
            const auto r = platform::compose(cfg, cachedSimulate(cfg));
            std::printf("%-8s %-12s %-10.3f %-14.1f\n", m.name.c_str(),
                        core::schemeName(s).c_str(),
                        r.sim.vtuneL1HitRate(),
                        r.embTiming.avgLoadLatency);
        }
    }
    std::printf("\nPaper: baseline 72-84%% / 23-90 cy; SW-PF "
                "96.7-99.4%% / 5.6-7.1 cy; Integrated 99.3-99.5%% / "
                "5.5-5.7 cy.\n");
    return 0;
}
