/**
 * @file
 * Shared helpers for the figure/table benches: evaluation-config
 * factories, scheme bundles that share contents simulations, a
 * disk-backed simulation cache (full-size sims take seconds to tens
 * of seconds; several benches need the same runs), and table
 * printing.
 *
 * Environment knobs:
 *  - DLRMOPT_BENCH_QUICK=1 : smoke mode (fewer configs, same code
 *    paths) for iterating on the harness.
 *  - DLRMOPT_CACHE_DIR=dir : where cached sim results live
 *    (default ./bench_cache). Delete the directory to force re-runs.
 */

#ifndef DLRMOPT_BENCH_COMMON_HPP
#define DLRMOPT_BENCH_COMMON_HPP

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/model_config.hpp"
#include "core/scheme.hpp"
#include "platform/evaluator.hpp"
#include "trace/hotness.hpp"

namespace dlrmopt::bench
{

/** True when DLRMOPT_BENCH_QUICK is set to a nonzero value. */
inline bool
quickMode()
{
    const char *v = std::getenv("DLRMOPT_BENCH_QUICK");
    return v && v[0] && std::strcmp(v, "0") != 0;
}

/** Table-fold cap used by all benches (see EvalConfig::maxSimTables). */
inline std::size_t
simTables()
{
    return quickMode() ? 12 : 24;
}

/** Standard evaluation config for a bench data point. */
inline platform::EvalConfig
makeConfig(const platform::CpuConfig& cpu, const core::ModelConfig& model,
           traces::Hotness h, core::Scheme s, std::size_t cores)
{
    platform::EvalConfig c;
    c.cpu = cpu;
    c.model = model;
    c.hotness = h;
    c.scheme = s;
    c.cores = cores;
    c.numBatches = cores == 1 ? (quickMode() ? 2 : 4) : cores;
    c.maxSimTables = simTables();
    return c;
}

/** Key string capturing everything a sim result depends on. */
inline std::string
simKey(const platform::EvalConfig& c)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "v4|s%zu|%s|r%zu|d%zu|t%zu|l%zu|%d|hw%d|sw%d|dp%d|c%zu|b%zu|f%zu|"
        "pf%d-%d-%d|l1-%llu|l2-%llu|l3-%llu|seed%llu",
        c.cpu.activeSockets(c.cores), c.model.name.c_str(), c.model.rows, c.model.dim, c.model.tables,
        c.model.lookups, static_cast<int>(c.hotness),
        core::usesHwPrefetch(c.scheme), core::usesSwPrefetch(c.scheme),
        c.scheme == core::Scheme::DpHt, c.cores,
        c.numBatches ? c.numBatches : std::max<std::size_t>(c.cores, 6),
        c.maxSimTables, c.pfDistance,
        c.pfAmount >= 0 ? c.pfAmount : c.cpu.bestPfAmount, c.pfLocality,
        static_cast<unsigned long long>(c.cpu.l1.sizeBytes),
        static_cast<unsigned long long>(c.cpu.l2.sizeBytes),
        static_cast<unsigned long long>(c.cpu.l3.sizeBytes),
        static_cast<unsigned long long>(c.seed));
    return buf;
}

/** simulateEmbedding() with a transparent on-disk cache. */
inline platform::SimRun
cachedSimulate(const platform::EvalConfig& cfg)
{
    const char *dir_env = std::getenv("DLRMOPT_CACHE_DIR");
    const std::filesystem::path dir =
        dir_env && dir_env[0] ? dir_env : "./bench_cache";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    const std::string key = simKey(cfg);
    std::uint64_t h = 1469598103934665603ull;
    for (char c : key)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    const auto path = dir / (std::to_string(h) + ".simrun");

    // Try to load; validate the full key to rule out hash collisions.
    if (std::ifstream in{path, std::ios::binary}) {
        std::uint32_t klen = 0;
        in.read(reinterpret_cast<char *>(&klen), sizeof(klen));
        std::string stored(klen, '\0');
        in.read(stored.data(), klen);
        platform::SimRun run;
        in.read(reinterpret_cast<char *>(&run.stats),
                sizeof(run.stats));
        in.read(reinterpret_cast<char *>(&run.fold), sizeof(run.fold));
        in.read(reinterpret_cast<char *>(&run.batches),
                sizeof(run.batches));
        if (in && stored == key)
            return run;
    }

    const platform::SimRun run = platform::simulateEmbedding(cfg);
    if (std::ofstream out{path, std::ios::binary}) {
        const auto klen = static_cast<std::uint32_t>(key.size());
        out.write(reinterpret_cast<const char *>(&klen), sizeof(klen));
        out.write(key.data(), klen);
        out.write(reinterpret_cast<const char *>(&run.stats),
                  sizeof(run.stats));
        out.write(reinterpret_cast<const char *>(&run.fold),
                  sizeof(run.fold));
        out.write(reinterpret_cast<const char *>(&run.batches),
                  sizeof(run.batches));
    }
    return run;
}

/** Results for every Sec. 6 design point at one (model, dataset,
 *  cores) cell; contents sims are shared where schemes allow. */
struct SchemeResults
{
    platform::EvalResult off;   //!< w/o HW-PF
    platform::EvalResult base;  //!< Baseline
    platform::EvalResult swpf;  //!< SW-PF
    platform::EvalResult dpht;  //!< DP-HT
    platform::EvalResult mpht;  //!< MP-HT (shares Baseline contents)
    platform::EvalResult integ; //!< Integrated (shares SW-PF contents)

    double speedup(const platform::EvalResult& r) const
    {
        return base.batchMs / r.batchMs;
    }

    double embSpeedup(const platform::EvalResult& r) const
    {
        return base.embMs / r.embMs;
    }
};

/** Evaluates all six schemes with four contents simulations. */
inline SchemeResults
evalAllSchemes(platform::EvalConfig cfg)
{
    using core::Scheme;
    SchemeResults r;

    cfg.scheme = Scheme::Baseline;
    const auto base_run = cachedSimulate(cfg);
    r.base = platform::compose(cfg, base_run);
    cfg.scheme = Scheme::MpHt;
    r.mpht = platform::compose(cfg, base_run);

    cfg.scheme = Scheme::SwPf;
    const auto pf_run = cachedSimulate(cfg);
    r.swpf = platform::compose(cfg, pf_run);
    cfg.scheme = Scheme::Integrated;
    r.integ = platform::compose(cfg, pf_run);

    cfg.scheme = Scheme::HwPfOff;
    r.off = platform::compose(cfg, cachedSimulate(cfg));

    cfg.scheme = Scheme::DpHt;
    r.dpht = platform::compose(cfg, cachedSimulate(cfg));
    return r;
}

/** Prints a bench banner naming the reproduced figure/table. */
inline void
printHeader(const char *id, const char *title, const char *note = nullptr)
{
    std::printf("\n==============================================="
                "=============================\n");
    std::printf("%s — %s\n", id, title);
    if (note)
        std::printf("%s\n", note);
    if (quickMode())
        std::printf("[quick mode: reduced configs — unset "
                    "DLRMOPT_BENCH_QUICK for full runs]\n");
    std::printf("================================================"
                "============================\n");
}

} // namespace dlrmopt::bench

#endif // DLRMOPT_BENCH_COMMON_HPP
