/**
 * @file
 * Day-in-the-life mixed-tenant replay (ISSUE 6 acceptance bench):
 * three Table 2 model classes share one fleet under diurnal,
 * phase-skewed traffic whose aggregate peak is >= 2x what the
 * mean-provisioned static fleet can serve. Every configuration
 * replays the *identical* per-tenant arrival streams on the virtual
 * clock, so the deltas are attributable to the mechanism under test:
 *
 *  - **Fair-share floors.** Each tenant first runs alone on its
 *    weight-proportional slice of the instance slots. That goodput is
 *    the isolation floor weighted-fair queueing must defend: in the
 *    shared fleet no tenant may fall below what its fair share alone
 *    would have delivered (no cross-tenant starvation).
 *  - **Static vs elastic.** The same mixed traffic then hits (a) a
 *    static fleet provisioned for the day-average load, (b) a static
 *    fleet provisioned for the aggregate peak, and (c) the elastic
 *    fleet, which forecasts offered load and moves the Up set between
 *    the two. Elastic must beat static-mean on aggregate SLA
 *    compliance outright, while spending fewer instance-ms than
 *    static-peak.
 *  - **Chaos overlay.** Finally the elastic configuration replays the
 *    scripted chaos scenarios; per-tenant accounting must conserve
 *    (arrived == served + shed + failed) under every one.
 *
 * Any violated claim flips the exit code to 1, so the ctest smoke run
 * (`tenant-smoke` preset) enforces the acceptance criteria, not just
 * harness liveness.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "sched/topology.hpp"
#include "serve/fault_schedule.hpp"
#include "serve/fleet.hpp"
#include "serve/loadgen.hpp"
#include "trace/generator.hpp"

namespace
{

using namespace dlrmopt;

/** One tenant's full bench description: fleet binding + traffic. */
struct TenantSpec
{
    serve::TenantConfig cfg;
    double meanInterarrivalMs = 1.0;
    double phase = 0.0; //!< fraction of a day its peak is shifted by
};

serve::TenantWorkload
makeWork(const core::ModelConfig& m, std::uint64_t seed,
         std::vector<double> arrivals)
{
    traces::TraceConfig tc = traces::TraceConfig::forModel(
        m, traces::Hotness::Medium, seed);
    tc.batchSize = 4;
    traces::TraceGenerator gen(tc);
    serve::TenantWorkload w;
    for (std::size_t b = 0; b < 8; ++b)
        w.batches.push_back(gen.batch(b));
    w.dense.reshape(4, m.denseDim());
    w.dense.randomize(seed);
    w.arrivalsMs = std::move(arrivals);
    return w;
}

serve::FleetConfig
fleetConfig(std::size_t instances)
{
    serve::FleetConfig cfg;
    cfg.instances = instances;
    cfg.batching.maxRequests = 4;
    cfg.batching.maxLingerMs = 0.2;
    cfg.recalibration.enabled = true;
    cfg.recalibration.intervalMs = 10.0;
    cfg.recalibration.window = 128;
    cfg.recalibration.minObservations = 16;
    cfg.scrub.enabled = true;
    cfg.scrub.repair = true;
    return cfg;
}

/** Runs one fleet session over 2-cores-per-instance slots. */
serve::FleetStats
run(const std::vector<TenantSpec>& specs,
    const std::vector<serve::TenantWorkload>& work,
    serve::FleetConfig cfg,
    const serve::FaultSchedule *schedule = nullptr)
{
    serve::TenantRegistry reg;
    for (const TenantSpec& s : specs)
        reg.add(s.cfg);
    const auto topo = sched::Topology::synthetic(2 * cfg.instances, 2);
    serve::TenantFleet fleet(reg, topo, cfg);
    return fleet.serve(work, core::PrefetchSpec::paperDefault(),
                       schedule);
}

void
printTenantRows(const std::vector<TenantSpec>& specs,
                const serve::FleetStats& fs)
{
    for (std::size_t k = 0; k < specs.size(); ++k) {
        const serve::TenantStats& t = fs.perTenant[k];
        std::printf("    %-10s %7zu %7zu %6zu %6zu %6zu %9zu "
                    "%8.1f%% %8.1f%%\n",
                    specs[k].cfg.name.c_str(), t.stats.arrived,
                    t.stats.served, t.budgetShed, t.deadlineShed,
                    t.stats.failed, t.compliant, 100.0 * t.goodput(),
                    100.0 * t.complianceOfServed());
    }
}

} // namespace

int
main()
{
    using bench::quickMode;

    bench::printHeader(
        "MIXED-TENANT", "Day-in-the-life replay: weighted-fair "
        "admission + elastic capacity under diurnal overload",
        "real execution; identical per-tenant arrival streams across "
        "every configuration");

    // One simulated "day" on the virtual clock. Diurnal skew: ranking
    // and ads peak close together in the morning (a sharp aggregate
    // crest), retrieval runs nearly anti-phase in the evening — so
    // the day has both a >2x overload peak and a real trough for the
    // capacity controller to scale down into.
    const double day_ms = quickMode() ? 60.0 : 240.0;
    const double model_bytes = quickMode() ? 1.0e6 : 4.0e6;
    const std::uint64_t seed = 7;

    const serve::ServiceModel law{0.5, 0.1};
    std::vector<TenantSpec> specs(3);
    specs[0].cfg.name = "ranking";
    specs[0].cfg.model =
        core::modelByName("rm1").scaledToFit(model_bytes);
    specs[0].cfg.slaMs = 10.0;
    specs[0].cfg.weight = 2.0;
    specs[0].cfg.admissionBudget = 24;
    specs[0].cfg.service = law;
    // Mid-day the ranking tenant's service law drifts (co-located
    // jobs steal bandwidth at peak); the seed estimate starts wrong
    // from that point on and in-session recalibration must close it.
    specs[0].cfg.truth = serve::ServiceTimeline(
        std::vector<serve::ServiceTimeline::Segment>{
            {0.0, law}, {0.5 * day_ms, {0.7, 0.13}}});
    specs[0].meanInterarrivalMs = 0.16;
    specs[0].phase = 0.0;

    specs[1].cfg.name = "retrieval";
    specs[1].cfg.model =
        core::modelByName("rm2_1").scaledToFit(model_bytes);
    specs[1].cfg.slaMs = 15.0;
    specs[1].cfg.weight = 1.0;
    specs[1].cfg.admissionBudget = 16;
    specs[1].cfg.service = law;
    specs[1].cfg.truth = serve::ServiceTimeline(law);
    specs[1].meanInterarrivalMs = 0.65;
    specs[1].phase = 0.55;

    specs[2].cfg.name = "ads";
    specs[2].cfg.model =
        core::modelByName("rm2_3").scaledToFit(model_bytes);
    specs[2].cfg.slaMs = 12.0;
    specs[2].cfg.weight = 1.0;
    specs[2].cfg.admissionBudget = 16;
    specs[2].cfg.service = law;
    specs[2].cfg.truth = serve::ServiceTimeline(law);
    specs[2].meanInterarrivalMs = 0.24;
    specs[2].phase = 0.10;

    const double amplitude = 0.9;
    std::vector<serve::DiurnalLoadGen> gens;
    std::vector<serve::TenantWorkload> work;
    for (std::size_t k = 0; k < specs.size(); ++k) {
        gens.emplace_back(specs[k].meanInterarrivalMs, amplitude,
                          day_ms, specs[k].phase, seed + k);
        work.push_back(makeWork(specs[k].cfg.model, seed + 10 * k,
                                gens.back().arrivalsUntil(day_ms)));
    }

    // Provisioning points. The static-mean fleet is sized for the
    // day-average aggregate load; the slot count is sized for the
    // aggregate peak. Overload factor = peak offered service-ms per
    // ms over the static-mean fleet's core-ms per ms; the acceptance
    // scenario requires >= 2x.
    const std::size_t slots = 4, static_mean = 2, cores = 2;
    double peak_rate = 0.0, mean_rate = 0.0;
    for (double t = 0.0; t < day_ms; t += day_ms / 512.0) {
        double r = 0.0;
        for (const auto& g : gens)
            r += g.rateAt(t);
        peak_rate = std::max(peak_rate, r);
        mean_rate += r / 512.0;
    }
    // One request is a 4-sample batch; amortized service cost per
    // request at full coalescing (4 requests per dispatch).
    const double per_request_ms = law.serviceMs(16) / 4.0;
    const double overload =
        peak_rate * per_request_ms /
        static_cast<double>(static_mean * cores);

    std::size_t total_requests = 0;
    for (const auto& w : work)
        total_requests += w.arrivalsMs.size();
    std::printf("day %.0f ms, %zu requests, offered load mean %.1f "
                "peak %.1f req/ms, amplitude %.1f\n",
                day_ms, total_requests, mean_rate, peak_rate,
                amplitude);
    std::printf("static-mean %zu / slots %zu instances x %zu cores "
                "-> peak overload %.2fx the static-mean fleet\n\n",
                static_mean, slots, cores, overload);

    int violations = 0;
    const auto check = [&](bool ok, const char *claim) {
        std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", claim);
        if (!ok)
            ++violations;
    };

    // --- Fair-share isolation floors -----------------------------
    // Tenant k alone on floor(slots * w_k / sum w) instances: the
    // bandwidth WFQ guarantees it under full contention.
    double weight_sum = 0.0;
    for (const TenantSpec& s : specs)
        weight_sum += s.cfg.weight;
    std::printf("isolated fair-share floors (tenant alone on its "
                "share of the slots):\n");
    std::vector<double> floor_goodput(specs.size(), 0.0);
    for (std::size_t k = 0; k < specs.size(); ++k) {
        const auto share = static_cast<std::size_t>(
            static_cast<double>(slots) * specs[k].cfg.weight /
            weight_sum);
        std::vector<TenantSpec> solo{specs[k]};
        std::vector<serve::TenantWorkload> solo_work{work[k]};
        const auto fs = run(solo, solo_work, fleetConfig(share));
        floor_goodput[k] = fs.perTenant[0].goodput();
        std::printf("    %-10s %zu instance(s): goodput %5.1f%% "
                    "(%zu/%zu compliant)\n",
                    specs[k].cfg.name.c_str(), share,
                    100.0 * floor_goodput[k], fs.perTenant[0].compliant,
                    fs.perTenant[0].stats.arrived);
        if (!fs.conserved())
            ++violations;
    }

    // --- Mixed runs on the identical streams ---------------------
    const char *hdr = "    %-10s %7s %7s %6s %6s %6s %9s %9s %9s\n";
    serve::FleetConfig cfg_mean = fleetConfig(static_mean);
    serve::FleetConfig cfg_peak = fleetConfig(slots);
    serve::FleetConfig cfg_elastic = fleetConfig(slots);
    cfg_elastic.capacity.elastic = true;
    cfg_elastic.capacity.minInstances = static_mean;
    cfg_elastic.capacity.windowMs = day_ms / 24.0;
    cfg_elastic.capacity.forecastDecay = 0.3;
    cfg_elastic.capacity.targetUtilization = 0.8;
    cfg_elastic.capacity.downLag = 2;
    cfg_elastic.capacity.probationMs = 2.0;
    cfg_elastic.capacity.partialDrainCores = 1;
    cfg_elastic.capacity.drainGraceMs = 4.0;

    struct MixedRun
    {
        const char *name;
        serve::FleetConfig cfg;
        serve::FleetStats fs;
    };
    std::vector<MixedRun> runs;
    runs.push_back({"static-mean", cfg_mean, {}});
    runs.push_back({"static-peak", cfg_peak, {}});
    runs.push_back({"elastic", cfg_elastic, {}});
    for (MixedRun& r : runs) {
        r.fs = run(specs, work, r.cfg);
        std::printf("\n%s (%zu slots%s): %s\n", r.name,
                    r.cfg.instances,
                    r.cfg.capacity.elastic ? ", elastic" : "",
                    r.fs.summary().c_str());
        std::printf(hdr, "tenant", "arrived", "served", "bshed",
                    "dshed", "fail", "compliant", "goodput",
                    "of-served");
        printTenantRows(specs, r.fs);
        std::printf("    instance-ms %.0f (static-peak would be "
                    "%.0f), scale ups %zu downs %zu, refits %zu\n",
                    r.fs.instanceMsUp,
                    static_cast<double>(slots) * r.fs.makespanMs,
                    r.fs.scaleUps, r.fs.scaleDowns,
                    r.fs.recalibrations);
        if (!r.fs.conserved())
            ++violations;
    }
    const serve::FleetStats& fs_mean = runs[0].fs;
    const serve::FleetStats& fs_peak = runs[1].fs;
    const serve::FleetStats& fs_el = runs[2].fs;

    std::printf("\nacceptance claims:\n");
    check(overload >= 2.0, "aggregate peak >= 2x the static-mean "
                           "fleet's capacity (genuine overload)");
    for (std::size_t k = 0; k < specs.size(); ++k) {
        char claim[128];
        std::snprintf(claim, sizeof(claim),
                      "%s: shared-fleet goodput %.1f%% >= isolated "
                      "fair-share floor %.1f%% (no starvation)",
                      specs[k].cfg.name.c_str(),
                      100.0 * fs_el.perTenant[k].goodput(),
                      100.0 * floor_goodput[k]);
        check(fs_el.perTenant[k].goodput() >=
                  floor_goodput[k] - 0.02,
              claim);
    }
    {
        char claim[128];
        std::snprintf(claim, sizeof(claim),
                      "elastic compliant %zu > static-mean %zu on "
                      "the identical stream",
                      fs_el.compliant, fs_mean.compliant);
        check(fs_el.compliant > fs_mean.compliant, claim);
        std::snprintf(claim, sizeof(claim),
                      "elastic instance-ms %.0f < static-peak %.0f",
                      fs_el.instanceMsUp, fs_peak.instanceMsUp);
        check(fs_el.instanceMsUp < fs_peak.instanceMsUp, claim);
    }
    check(fs_el.recalibrations > 0 &&
              fs_el.estimateError[0] < 0.25,
          "recalibration tracked the scripted mid-day service drift");

    // --- Chaos overlay: conservation under every scenario --------
    std::printf("\nchaos replays (elastic config, same streams):\n");
    for (const std::string& scenario :
         serve::FaultSchedule::scenarioNames()) {
        const auto schedule = serve::FaultSchedule::chaosScenario(
            scenario, slots, day_ms, seed);
        const auto fs = run(specs, work, cfg_elastic, &schedule);
        char claim[160];
        std::snprintf(
            claim, sizeof(claim),
            "%-20s conserved per tenant and aggregate (%zu served, "
            "%zu shed, %zu failed, %zu crashes)",
            scenario.c_str(), fs.total.served, fs.total.shed,
            fs.total.failed, fs.crashes);
        check(fs.conserved(), claim);
    }

    std::printf("\n%s\n", violations == 0
                              ? "all acceptance claims hold"
                              : "ACCEPTANCE VIOLATIONS — see FAIL "
                                "rows above");
    return violations == 0 ? 0 : 1;
}
