/**
 * @file
 * Reproduces Fig. 8: multi-core scalability of rm2_1 — (a) per-batch
 * execution time and (b) aggregate memory bandwidth as the core
 * count grows from 1 to 24 (batch-per-core mapping).
 *
 * Paper shape: from 1 to 24 cores, execution time grows only ~14%
 * while bandwidth grows ~15.5x, yet stays below the socket peak —
 * the headroom the SW-PF scheme later exploits (Sec. 3.2).
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 8", "Multi-core scaling of rm2_1",
                "Execution time (ms/batch) and DRAM bandwidth (GB/s) "
                "vs active cores; Cascade Lake, 140 GB/s peak.");

    const auto cpu = platform::cascadeLake();
    const auto model = core::rm2_1();
    // 48 engages the second socket (the full 2 x 6240R machine).
    const std::size_t core_list_full[] = {1, 2, 4, 8, 16, 24, 48};
    const std::size_t core_list_quick[] = {1, 4, 8};
    const auto *cores = quickMode() ? core_list_quick : core_list_full;
    const std::size_t n = quickMode() ? 3 : 7;

    for (auto h : {traces::Hotness::Low, traces::Hotness::Medium,
                   traces::Hotness::High}) {
        std::printf("\n-- %s --\n", traces::hotnessName(h).c_str());
        std::printf("%-7s %-12s %-12s %-8s\n", "Cores", "Batch(ms)",
                    "BW(GB/s)", "DRAM rho");
        double t1 = 0.0, bw1 = 0.0, tn = 0.0, bwn = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const auto cfg = makeConfig(cpu, model, h,
                                        core::Scheme::Baseline,
                                        cores[i]);
            const auto r = platform::compose(cfg, cachedSimulate(cfg));
            std::printf("%-7zu %-12.2f %-12.1f %-8.2f\n", cores[i],
                        r.embMs, r.embTiming.achievedGBs,
                        r.embTiming.dramUtilization);
            if (i == 0) {
                t1 = r.embMs;
                bw1 = r.embTiming.achievedGBs;
            }
            if (cores[i] == 24) {
                tn = r.embMs;
                bwn = r.embTiming.achievedGBs;
            }
        }
        std::printf("1 -> 24 cores: time x%.2f (paper Low: ~1.14), "
                    "bandwidth x%.1f (paper Low: ~15.5)\n",
                    tn / t1, bwn / bw1);
    }
    return 0;
}
