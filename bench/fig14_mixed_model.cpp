/**
 * @file
 * Reproduces Fig. 14: end-to-end speedups of all design points on
 * the mixed model RM1 (RMC1 class, embedding ~65%).
 *
 * Paper shape: SW-PF averages ~1.1x (less irregularity to hide);
 * MP-HT 1.25-1.37x (better overlap opportunity than RMC2 models);
 * Integrated is non-linear, 1.37-1.54x; w/o HW-PF degrades (~0.85x)
 * because the MLP stages rely on regular-pattern HW prefetching.
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 14", "End-to-end speedups, mixed model RM1",
                "Speedup over Baseline; Cascade Lake, 24 cores "
                "(single-core shown for completeness).");

    const auto cpu = platform::cascadeLake();
    const auto model = core::rm1();

    for (std::size_t cores : {std::size_t(1), std::size_t(24)}) {
        if (quickMode() && cores != 1)
            continue;
        std::printf("\n-- %zu core(s) --\n", cores);
        std::printf("%-12s %-10s %-8s %-8s %-8s %-8s %-10s\n",
                    "Dataset", "Base(ms)", "w/oHW", "SW-PF", "DP-HT",
                    "MP-HT", "Integrated");
        double sum_pf = 0.0, sum_mp_lo = 1e9, sum_mp_hi = 0.0;
        double int_lo = 1e9, int_hi = 0.0;
        int cells = 0;
        for (auto h : {traces::Hotness::High, traces::Hotness::Medium,
                       traces::Hotness::Low}) {
            const auto r = evalAllSchemes(makeConfig(
                cpu, model, h, core::Scheme::Baseline, cores));
            std::printf("%-12s %-10.2f %-8.2f %-8.2f %-8.2f %-8.2f "
                        "%-10.2f\n",
                        traces::hotnessName(h).c_str(), r.base.batchMs,
                        r.speedup(r.off), r.speedup(r.swpf),
                        r.speedup(r.dpht), r.speedup(r.mpht),
                        r.speedup(r.integ));
            sum_pf += r.speedup(r.swpf);
            sum_mp_lo = std::min(sum_mp_lo, r.speedup(r.mpht));
            sum_mp_hi = std::max(sum_mp_hi, r.speedup(r.mpht));
            int_lo = std::min(int_lo, r.speedup(r.integ));
            int_hi = std::max(int_hi, r.speedup(r.integ));
            ++cells;
        }
        std::printf("SW-PF avg %.2fx (paper ~1.1x); MP-HT %.2f-%.2fx "
                    "(paper 1.25-1.37x); Integrated %.2f-%.2fx "
                    "(paper 1.37-1.54x)\n",
                    sum_pf / cells, sum_mp_lo, sum_mp_hi, int_lo,
                    int_hi);
    }
    return 0;
}
