/**
 * @file
 * Reproduces Fig. 12: embedding-only speedups of w/o HW-PF and SW-PF
 * over the baseline for the embedding-heavy models (rm2_1..3) across
 * datasets, (a) single-core and (b) multi-core (24 cores).
 *
 * Paper bands: SW-PF 1.25-1.47x single-core, 1.16-1.43x multi-core;
 * best on Low Hot; w/o HW-PF slightly slow except High Hot.
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 12", "Embedding-only speedups (rm2_1..3)",
                "Speedup over Baseline (HW-PF on); Cascade Lake.");

    const auto cpu = platform::cascadeLake();
    std::vector<core::ModelConfig> models = {core::rm2_1(),
                                             core::rm2_2(),
                                             core::rm2_3()};
    if (quickMode())
        models.resize(1);

    for (std::size_t cores : {std::size_t(1), std::size_t(24)}) {
        std::printf("\n-- (%s) %zu core(s) --\n",
                    cores == 1 ? "a" : "b", cores);
        std::printf("%-8s %-12s %-12s %-12s %-12s\n", "Model",
                    "Dataset", "Base(ms)", "w/oHW-PF", "SW-PF");
        double min_pf = 1e9, max_pf = 0.0;
        for (const auto& m : models) {
            for (auto h :
                 {traces::Hotness::High, traces::Hotness::Medium,
                  traces::Hotness::Low}) {
                auto cfg = makeConfig(cpu, m, h,
                                      core::Scheme::Baseline, cores);
                const auto base =
                    platform::compose(cfg, cachedSimulate(cfg));
                cfg.scheme = core::Scheme::HwPfOff;
                const auto off =
                    platform::compose(cfg, cachedSimulate(cfg));
                cfg.scheme = core::Scheme::SwPf;
                const auto pf =
                    platform::compose(cfg, cachedSimulate(cfg));

                const double s_off = base.embMs / off.embMs;
                const double s_pf = base.embMs / pf.embMs;
                min_pf = std::min(min_pf, s_pf);
                max_pf = std::max(max_pf, s_pf);
                std::printf("%-8s %-12s %-12.2f %-12.2f %-12.2f\n",
                            m.name.c_str(),
                            traces::hotnessName(h).c_str(),
                            base.embMs, s_off, s_pf);
            }
        }
        std::printf("SW-PF speedup range: %.2fx - %.2fx (paper: "
                    "%s)\n", min_pf, max_pf,
                    cores == 1 ? "1.25x - 1.47x" : "1.16x - 1.43x");
    }
    return 0;
}
