/**
 * @file
 * Reproduces Fig. 13: end-to-end speedups of all design points over
 * the baseline for the embedding-heavy models (rm2_1..3), across
 * datasets, single- and multi-core.
 *
 * Paper bands: SW-PF 1.21-1.46x (1 core) / 1.18-1.42x (24 cores);
 * MP-HT up to 1.24x, best at High Hot; DP-HT as low as 0.62x and
 * SLA-violating; Integrated 1.40-1.59x (1 core) / 1.29-1.43x (24).
 */

#include "common.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 13",
                "End-to-end speedups, embedding-heavy models",
                "Speedup over Baseline; Cascade Lake.");

    const auto cpu = platform::cascadeLake();
    std::vector<core::ModelConfig> models = {core::rm2_1(),
                                             core::rm2_2(),
                                             core::rm2_3()};
    if (quickMode())
        models.resize(1);

    for (std::size_t cores : {std::size_t(1), std::size_t(24)}) {
        std::printf("\n-- (%s) %zu core(s) --\n",
                    cores == 1 ? "a" : "b", cores);
        std::printf("%-8s %-12s %-10s %-8s %-8s %-8s %-8s %-10s\n",
                    "Model", "Dataset", "Base(ms)", "w/oHW", "SW-PF",
                    "DP-HT", "MP-HT", "Integrated");
        double max_int = 0.0;
        for (const auto& m : models) {
            for (auto h :
                 {traces::Hotness::High, traces::Hotness::Medium,
                  traces::Hotness::Low}) {
                const auto r = evalAllSchemes(
                    makeConfig(cpu, m, h, core::Scheme::Baseline,
                               cores));
                std::printf(
                    "%-8s %-12s %-10.2f %-8.2f %-8.2f %-8.2f %-8.2f "
                    "%-10.2f\n",
                    m.name.c_str(), traces::hotnessName(h).c_str(),
                    r.base.batchMs, r.speedup(r.off),
                    r.speedup(r.swpf), r.speedup(r.dpht),
                    r.speedup(r.mpht), r.speedup(r.integ));
                max_int = std::max(max_int, r.speedup(r.integ));

                // The paper calls out DP-HT exceeding the 400 ms SLA
                // on rm2_3 / Low Hot.
                if (m.name == "rm2_3" && h == traces::Hotness::Low &&
                    cores == 24) {
                    std::printf("   DP-HT batch: %.0f ms vs %.0f ms "
                                "SLA (paper: exceeds SLA by 152 ms)\n",
                                r.dpht.batchMs, m.slaMs());
                }
            }
        }
        std::printf("max Integrated speedup: %.2fx (paper: %s)\n",
                    max_int, cores == 1 ? "1.59x" : "1.43x");
    }
    return 0;
}
