/**
 * @file
 * Reproduces Fig. 5: sorted hot-embedding access counts for the
 * three dataset hotness classes, plus the unique-access fractions of
 * Sec. 5 (Low 60%, Medium 24%, High 3%).
 */

#include "common.hpp"
#include "trace/generator.hpp"
#include "trace/stats.hpp"

using namespace dlrmopt;
using namespace dlrmopt::bench;

int
main()
{
    printHeader("Fig. 5", "Hot embedding access counts (sorted)",
                "One rm2_1-shaped table over the paper's 120-batch "
                "window; counts at log-spaced ranks.");

    const auto model = core::rm2_1();
    const std::size_t window = quickMode() ? 30 : 120;

    std::printf("\n%-12s", "rank");
    for (std::size_t rank = 1; rank <= 1u << 20; rank *= 4)
        std::printf("%9zu", rank);
    std::printf("\n");

    for (auto h : {traces::Hotness::High, traces::Hotness::Medium,
                   traces::Hotness::Low}) {
        traces::TraceConfig tc =
            traces::TraceConfig::forModel(model, h, 1);
        tc.numBatches = window;
        traces::TraceGenerator gen(tc);
        const auto st =
            traces::computeAccessStats(gen.tableStream(0, 0, window));

        std::printf("%-12s", traces::hotnessName(h).c_str());
        for (std::size_t rank = 1; rank <= 1u << 20; rank *= 4) {
            if (rank <= st.sortedCounts.size())
                std::printf("%9llu",
                            static_cast<unsigned long long>(
                                st.sortedCounts[rank - 1]));
            else
                std::printf("%9s", "-");
        }
        std::printf("\n");
        std::printf("%-12s unique=%.1f%% (paper %.0f%%)  "
                    "top-1024 rows carry %.1f%% of accesses\n",
                    "", 100.0 * st.uniqueFraction(),
                    100.0 * traces::targetUniqueFraction(h),
                    100.0 * st.topKShare(1024));
    }
    std::printf("\nShape check: power-law head steepens from Low to "
                "High hot (Fig. 5's ordering).\n");
    return 0;
}
