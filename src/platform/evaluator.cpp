#include "platform/evaluator.hpp"

#include <algorithm>

namespace dlrmopt::platform
{

double
mlpFlops(const std::vector<std::size_t>& dims, std::size_t batch)
{
    double f = 0.0;
    for (std::size_t l = 0; l + 1 < dims.size(); ++l)
        f += 2.0 * static_cast<double>(dims[l]) *
             static_cast<double>(dims[l + 1]);
    return f * static_cast<double>(batch);
}

double
interactionFlops(const core::ModelConfig& m, std::size_t batch)
{
    const double pairs =
        static_cast<double>(m.tables) * (m.tables + 1) / 2.0;
    return pairs * 2.0 * static_cast<double>(m.dim) *
           static_cast<double>(batch);
}

core::PrefetchSpec
resolvePrefetchSpec(const EvalConfig& cfg)
{
    core::PrefetchSpec pf;
    pf.distance = cfg.pfDistance;
    pf.lines = cfg.pfAmount >= 0 ? cfg.pfAmount : cfg.cpu.bestPfAmount;
    pf.locality = cfg.pfLocality;
    // EvalConfigs carry user input (CLI flags); a negative distance
    // or out-of-range hint must not silently change the scheme.
    pf.validate();
    return pf;
}

namespace
{

/** Batch count an EvalConfig resolves to. */
std::size_t
resolveBatches(const EvalConfig& cfg)
{
    return cfg.numBatches ? cfg.numBatches
                          : std::max<std::size_t>(cfg.cores, 6);
}

/** Runs the contents simulation for one scheme variant.
 *  @param fold_out Receives the table-fold ratio (>= 1) that
 *         per-batch embedding times must be scaled by. */
memsim::EmbSimStats
runSim(const EvalConfig& cfg, bool hw_pf, bool sw_pf, bool halve_private,
       std::size_t num_batches, double *fold_out)
{
    memsim::EmbSimConfig sc;
    sc.trace = traces::TraceConfig::forModel(cfg.model, cfg.hotness,
                                             cfg.seed);
    *fold_out = 1.0;
    if (cfg.maxSimTables != 0 &&
        cfg.model.tables > cfg.maxSimTables) {
        *fold_out = static_cast<double>(cfg.model.tables) /
                    static_cast<double>(cfg.maxSimTables);
        sc.trace.tables = cfg.maxSimTables;
        sc.trace.hotSetSize = static_cast<std::size_t>(
            static_cast<double>(sc.trace.hotSetSize) * *fold_out);
    }
    sc.dim = cfg.model.dim;
    sc.hier = cfg.cpu.hierarchy(cfg.cores);
    if (halve_private) {
        // DP-HT: two instances competitively share each core's
        // private caches; approximate with static halving.
        sc.hier.l1.sizeBytes /= 2;
        sc.hier.l2.sizeBytes /= 2;
    }
    sc.hwPrefetch = hw_pf;
    if (sw_pf)
        sc.swPf = resolvePrefetchSpec(cfg);
    sc.numBatches = num_batches;
    return memsim::EmbeddingSim(sc).run();
}

} // namespace

SimRun
simulateEmbedding(const EvalConfig& cfg)
{
    SimRun run;
    run.batches = resolveBatches(cfg);
    run.stats = runSim(cfg, core::usesHwPrefetch(cfg.scheme),
                       core::usesSwPrefetch(cfg.scheme),
                       cfg.scheme == core::Scheme::DpHt, run.batches,
                       &run.fold);
    return run;
}

EvalResult
compose(const EvalConfig& cfg, const SimRun& run)
{
    using core::Scheme;

    const std::size_t batches = run.batches;
    const TimingModel tm(cfg.cpu, cfg.timing);
    const bool hw_pf = core::usesHwPrefetch(cfg.scheme);
    const bool sw_pf = core::usesSwPrefetch(cfg.scheme);
    const core::PrefetchSpec pf =
        sw_pf ? resolvePrefetchSpec(cfg) : core::PrefetchSpec{};

    EvalResult res;

    // --- Embedding stage timing from the contents sim. ---
    double window_share = 1.0;
    double compute_inflation = 1.0;
    if (cfg.scheme == Scheme::DpHt) {
        window_share = tm.params().dpHtWindowShare;
        compute_inflation = tm.params().dpHtComputeInflation;
    }
    res.sim = run.stats;
    res.embTiming = tm.embeddingTime(
        res.sim, cfg.cores, batches, pf, window_share,
        compute_inflation, cfg.cpu.activeSockets(cfg.cores));
    res.embTiming.msPerBatch *= run.fold;
    res.embMs = res.embTiming.msPerBatch;

    // --- Dense stages. ---
    const std::size_t bs = core::paperBatchSize;
    const double dense_penalty =
        hw_pf ? 1.0 : tm.params().hwPfOffMlpPenalty;
    double bottom_ms =
        tm.mlpMs(mlpFlops(cfg.model.bottomMlp, bs), dense_penalty);
    double inter_ms =
        tm.interactionMs(interactionFlops(cfg.model, bs), dense_penalty);
    double top_ms =
        tm.mlpMs(mlpFlops(cfg.model.topMlpDims(), bs), dense_penalty);

    // --- Scheme composition. ---
    StageTimesMs& st = res.stages;
    st.inter = inter_ms;
    st.top = top_ms;

    switch (cfg.scheme) {
      case Scheme::MpHt:
      case Scheme::Integrated: {
        // Fig. 11 MP-HT: bottom-MLP on the sibling hyperthread,
        // hidden under the embedding stage; once done, the sibling's
        // spare pipeline assists the memory-bound embedding thread
        // (SMT memory-level parallelism), which is what makes MP-HT
        // profitable even for embedding-dominated models. The assist
        // fades as DRAM saturates. SW prefetching frees issue slots
        // and fill buffers, so Integrated gets a stronger assist
        // (the Sec. 4.4 synergy).
        const bool integrated = cfg.scheme == Scheme::Integrated;
        const double eta = integrated
            ? tm.params().smtAssistEtaIntegrated
            : tm.params().smtAssistEta;
        const double kappa = integrated
            ? tm.params().mpHtMlpSlowdownIntegrated
            : tm.params().mpHtMlpSlowdown;
        const double emb = res.embMs;

        // Embedding thread, with the sibling assisting once its MLP
        // work is done (idle fraction of the embedding window).
        const double idle_frac =
            emb > 0.0
                ? std::clamp(1.0 - bottom_ms * kappa / emb, 0.0, 1.0)
                : 0.0;
        const double headroom =
            std::clamp(1.0 - res.embTiming.dramUtilization, 0.0, 1.0);
        const double emb_t =
            emb / (1.0 + eta * idle_frac * headroom);

        // Sibling bottom-MLP: runs kappa-times slower while the
        // embedding thread is active, then at full speed solo.
        const double overlapped = emb_t / kappa; // work done during emb
        const double bottom_t = bottom_ms > overlapped
            ? emb_t + (bottom_ms - overlapped)
            : bottom_ms * kappa;

        st.bottom = bottom_t;
        st.emb = emb_t;
        res.batchMs = std::max(emb_t, bottom_t) + inter_ms + top_ms;
        return res;
      }
      case Scheme::DpHt: {
        // Both instances run concurrently; batch latency is the
        // inflated per-instance time (throughput pays for latency,
        // which is why the paper finds DP-HT detrimental).
        st.bottom = bottom_ms * tm.params().dpHtComputeInflation;
        st.emb = res.embMs;
        st.inter = inter_ms * tm.params().dpHtComputeInflation;
        st.top = top_ms * tm.params().dpHtComputeInflation;
        res.batchMs = st.total();
        return res;
      }
      default: {
        st.bottom = bottom_ms;
        st.emb = res.embMs;
        res.batchMs = st.total();
        return res;
      }
    }
}

EvalResult
evaluate(const EvalConfig& cfg)
{
    return compose(cfg, simulateEmbedding(cfg));
}

} // namespace dlrmopt::platform
