/**
 * @file
 * CPU platform descriptions.
 *
 * Encodes the paper's evaluation hardware: the primary Cascade Lake
 * 6240R (Table 3) plus the four additional platforms of Sec. 6.4
 * (SkyLake, Ice Lake, Sapphire Rapids, Zen3). Cache geometry feeds
 * the contents simulator; latency/bandwidth/window parameters feed
 * the timing model.
 */

#ifndef DLRMOPT_PLATFORM_CPU_CONFIG_HPP
#define DLRMOPT_PLATFORM_CPU_CONFIG_HPP

#include <algorithm>
#include <string>
#include <vector>

#include "memsim/dram.hpp"
#include "memsim/hierarchy.hpp"

namespace dlrmopt::platform
{

/**
 * One CPU platform.
 */
struct CpuConfig
{
    std::string name;
    std::size_t cores = 24;        //!< physical cores per socket
    std::size_t sockets = 2;       //!< sockets in the machine
    std::size_t smtWays = 2;
    double freqGHz = 2.4;

    memsim::CacheConfig l1{32 * 1024, 8, 64};
    memsim::CacheConfig l2{1024 * 1024, 16, 64};
    memsim::CacheConfig l3{35 * 1024 * 1024 + 768 * 1024, 11, 64};

    double l1LatencyCycles = 5.0;
    double l2LatencyCycles = 14.0;
    double l3LatencyCycles = 44.0;
    double dramLatencyCycles = 220.0;
    double dramBandwidthGBs = 140.0; //!< per socket
    double dramQueueCap = 2.5;       //!< max queueing latency inflation

    std::size_t robSize = 224;       //!< OoO instruction window
    double simdFlopsPerCycle = 64.0; //!< peak fp32 FLOPs/cycle/core

    /** Best software-prefetch amount in cache lines (Sec. 6.4). */
    int bestPfAmount = 8;

    /** Total physical cores across all sockets. */
    std::size_t totalCores() const { return cores * sockets; }

    /** Sockets engaged when @p active_cores are running (cores fill
     *  socket 0 first, like a compact affinity policy). */
    std::size_t
    activeSockets(std::size_t active_cores) const
    {
        return std::min(sockets, (active_cores + cores - 1) / cores);
    }

    /** Cache geometry for the contents simulator. */
    memsim::HierarchyConfig
    hierarchy(std::size_t active_cores) const
    {
        memsim::HierarchyConfig h;
        h.l1 = l1;
        h.l2 = l2;
        h.l3 = l3;
        h.cores = active_cores;
        h.sockets = activeSockets(active_cores);
        return h;
    }

    /** DRAM timing for the timing model. */
    memsim::DramConfig
    dram() const
    {
        memsim::DramConfig d;
        d.baseLatencyCycles = dramLatencyCycles;
        d.peakBandwidthGBs = dramBandwidthGBs;
        d.freqGHz = freqGHz;
        d.queueCap = dramQueueCap;
        return d;
    }
};

/** Cascade Lake 6240R — the paper's primary platform (Table 3). */
CpuConfig cascadeLake();

/** SkyLake Xeon Gold 6136 (Sec. 6.4). */
CpuConfig skylake();

/** Ice Lake Xeon Silver 4314 (Sec. 6.4). */
CpuConfig icelake();

/** Sapphire Rapids Xeon Platinum 8480+ (Sec. 6.4). */
CpuConfig sapphireRapids();

/** AMD EPYC 7763 (Zen3) (Sec. 6.4). */
CpuConfig zen3();

/** All Fig. 16 platforms in the paper's order. */
const std::vector<CpuConfig>& allCpus();

/** Looks up a platform by name; throws std::out_of_range. */
const CpuConfig& cpuByName(const std::string& name);

} // namespace dlrmopt::platform

#endif // DLRMOPT_PLATFORM_CPU_CONFIG_HPP
