#include "platform/report.hpp"

#include <cstdio>
#include <sstream>

#include "trace/hotness.hpp"

namespace dlrmopt::platform
{

namespace
{

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::string
csvHeader()
{
    return "cpu,model,hotness,scheme,cores,batch_ms,emb_ms,bottom_ms,"
           "inter_ms,top_ms,l1_hit_vtune,l2_hit,l3_hit,"
           "avg_load_latency_cy,dram_utilization,achieved_gbs,"
           "sw_pf_issued,sw_pf_covered,dram_bytes\n";
}

void
writeCsvRow(std::ostream& os, const EvalConfig& cfg,
            const EvalResult& res)
{
    os << cfg.cpu.name << ',' << cfg.model.name << ','
       << traces::hotnessName(cfg.hotness) << ','
       << core::schemeName(cfg.scheme) << ',' << cfg.cores << ','
       << fmt(res.batchMs) << ',' << fmt(res.embMs) << ','
       << fmt(res.stages.bottom) << ',' << fmt(res.stages.inter) << ','
       << fmt(res.stages.top) << ',' << fmt(res.sim.vtuneL1HitRate())
       << ',' << fmt(res.sim.l2HitRate()) << ','
       << fmt(res.sim.l3HitRate()) << ','
       << fmt(res.embTiming.avgLoadLatency) << ','
       << fmt(res.embTiming.dramUtilization) << ','
       << fmt(res.embTiming.achievedGBs) << ',' << res.sim.swPfIssued
       << ',' << res.sim.swCoveredTotal() << ','
       << fmt(res.sim.dramBytes()) << '\n';
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
toJson(const EvalConfig& cfg, const EvalResult& res)
{
    std::ostringstream os;
    os << "{";
    os << "\"cpu\":\"" << jsonEscape(cfg.cpu.name) << "\",";
    os << "\"model\":\"" << jsonEscape(cfg.model.name) << "\",";
    os << "\"hotness\":\""
       << jsonEscape(traces::hotnessName(cfg.hotness)) << "\",";
    os << "\"scheme\":\"" << jsonEscape(core::schemeName(cfg.scheme))
       << "\",";
    os << "\"cores\":" << cfg.cores << ",";
    os << "\"batch_ms\":" << fmt(res.batchMs) << ",";
    os << "\"stages_ms\":{";
    os << "\"bottom\":" << fmt(res.stages.bottom) << ",";
    os << "\"embedding\":" << fmt(res.stages.emb) << ",";
    os << "\"interaction\":" << fmt(res.stages.inter) << ",";
    os << "\"top\":" << fmt(res.stages.top) << "},";
    os << "\"cache\":{";
    os << "\"l1_hit_vtune\":" << fmt(res.sim.vtuneL1HitRate()) << ",";
    os << "\"l2_hit\":" << fmt(res.sim.l2HitRate()) << ",";
    os << "\"l3_hit\":" << fmt(res.sim.l3HitRate()) << ",";
    os << "\"avg_load_latency_cy\":"
       << fmt(res.embTiming.avgLoadLatency) << "},";
    os << "\"memory\":{";
    os << "\"dram_utilization\":" << fmt(res.embTiming.dramUtilization)
       << ",";
    os << "\"achieved_gbs\":" << fmt(res.embTiming.achievedGBs) << ",";
    os << "\"dram_bytes\":" << fmt(res.sim.dramBytes()) << "},";
    os << "\"prefetch\":{";
    os << "\"issued\":" << res.sim.swPfIssued << ",";
    os << "\"covered\":" << res.sim.swCoveredTotal() << ",";
    os << "\"useless\":" << res.sim.swPfUseless << "}";
    os << "}";
    return os.str();
}

} // namespace dlrmopt::platform
