#include "platform/timing.hpp"

#include <algorithm>
#include <cmath>

namespace dlrmopt::platform
{

TimingModel::TimingModel(const CpuConfig& cpu, TimingParams params)
    : _cpu(cpu), _p(params), _dram(cpu.dram())
{
}

EmbTiming
TimingModel::embeddingTime(const memsim::EmbSimStats& st,
                           std::size_t cores, std::size_t num_batches,
                           const core::PrefetchSpec& sw_pf,
                           double window_share,
                           double compute_inflation,
                           std::size_t sockets) const
{
    sockets = std::max<std::size_t>(sockets, 1);
    EmbTiming out;
    if (st.lookups == 0 || num_batches == 0)
        return out;

    const double lookups = static_cast<double>(st.lookups);
    const double row_lines = static_cast<double>(st.lines) / lookups;

    // Per-lookup class mix from the contents simulation.
    const double f_pf_l2 = static_cast<double>(st.cls.pfL2) / lookups;
    const double f_pf_l3 = static_cast<double>(st.cls.pfL3) / lookups;
    const double f_pf_dram = static_cast<double>(st.cls.pfDram) / lookups;
    const double f_l2 = static_cast<double>(st.cls.l2) / lookups;
    const double f_l3 = static_cast<double>(st.cls.l3) / lookups;
    const double f_dram = static_cast<double>(st.cls.dram) / lookups;

    const bool pf_on = sw_pf.enabled();
    const double pf_instr = pf_on ? static_cast<double>(sw_pf.lines) : 0.0;
    const double pf_dist =
        pf_on ? static_cast<double>(sw_pf.distance) : 0.0;

    const double dram_lines_per_lookup =
        st.dramBytes() / 64.0 / lookups;

    // Pure pipeline work per lookup; the DRAM fill-occupancy term is
    // added on top for the total, but must not count as look-ahead
    // slack for prefetch timeliness (it IS the memory pipe working).
    const double compute_pipe =
        (_p.cyclesPerLookupBase + row_lines * _p.cyclesPerLine +
         pf_instr * _p.cyclesPerPrefetchInstr) *
        compute_inflation;
    const double compute =
        compute_pipe +
        dram_lines_per_lookup * _p.cyclesPerDramLine *
            compute_inflation;

    // Window occupancy scales with the row's line count: shorter
    // rows (rm1's dim 64) fit more lookups in flight.
    const double mlp = overlapFactor(window_share, row_lines);
    const double lookups_per_core =
        lookups / static_cast<double>(cores);

    // Hard bandwidth floor: all active cores share the socket's DRAM
    // pins, so a lookup can never complete faster than its DRAM
    // bytes can be transferred. This is what caps SW-PF gains on
    // bandwidth-saturated many-core parts (the paper's Zen3
    // multi-core exception, Sec. 6.4).
    const double bw_floor =
        dram_lines_per_lookup * 64.0 * static_cast<double>(cores) /
        (_dram.config().peakBytesPerCycle() *
         static_cast<double>(sockets));

    // Fixed point: per-lookup time determines DRAM utilization (all
    // cores concurrently) and prefetch timeliness, which feed back
    // into the per-lookup time.
    double t = compute + 100.0; // starting guess
    double rho = 0.0;
    double l_dram = _dram.latencyAt(0.0);
    for (int iter = 0; iter < 50; ++iter) {
        l_dram = _dram.latencyAt(rho);

        // Residual latency of a prefetch-covered lookup: a software
        // prefetch was issued pf_dist lookups (pf_dist * t cycles)
        // before the demand load; a hardware prefetch only triggers
        // one access ahead. Either way a floor fraction of the
        // *source level's* latency stays exposed (fill-buffer and
        // queue occupancy).
        const double hidden =
            pf_on ? pf_dist * t : _p.hwPfHideCycles;
        auto residual = [&](double src_lat) {
            double e = std::max(_p.pfResidualFraction * src_lat,
                                src_lat - hidden);
            if (pf_on && pf_dist > 0.0) {
                // Pipelining bound: only pf_dist prefetches are in
                // flight, so one line group completes every
                // src_lat / pf_dist cycles; short distances leave the
                // prefetch pipe under-filled (why Fig. 10b's distance
                // 1 is "too late").
                e = std::max(e, src_lat / pf_dist - compute_pipe);
            }
            return e;
        };

        const double exposed =
            (f_pf_l2 * residual(_cpu.l2LatencyCycles) +
             f_pf_l3 * residual(_cpu.l3LatencyCycles) +
             f_pf_dram * residual(l_dram) +
             f_l2 * _cpu.l2LatencyCycles +
             f_l3 * _cpu.l3LatencyCycles +
             f_dram * l_dram / (1.0 + _p.dramOverlapBoost * f_dram)) /
            mlp;

        const double t_new = std::max(compute + exposed, bw_floor);
        const double wall_cycles = lookups_per_core * t_new;
        const double rho_new = _dram.utilization(
            st.dramBytes() / static_cast<double>(sockets),
            wall_cycles);

        if (std::abs(t_new - t) < 1e-6 * t &&
            std::abs(rho_new - rho) < 1e-9) {
            t = t_new;
            rho = rho_new;
            break;
        }
        // Damp the utilization update for stability near saturation.
        rho = 0.5 * rho + 0.5 * rho_new;
        t = t_new;
    }

    const double wall_cycles = lookups_per_core * t;
    out.cyclesPerLookup = t;
    out.dramUtilization = rho;
    out.effectiveDramLatency = l_dram;
    out.achievedGBs = _dram.achievedGBs(st.dramBytes(), wall_cycles);
    out.msPerBatch = wall_cycles /
                     (static_cast<double>(num_batches) /
                      static_cast<double>(cores)) /
                     (_cpu.freqGHz * 1e6);

    // VTune-style average load latency: the kernel pairs every
    // row-data load with an accumulator load that always hits L1
    // (Algorithm 1), so the profiler view averages over both.
    const double lines = static_cast<double>(st.lines);
    if (lines > 0.0) {
        const double row_lat =
            static_cast<double>(st.lineL1) * _cpu.l1LatencyCycles +
            static_cast<double>(st.lineL2) * _cpu.l2LatencyCycles +
            static_cast<double>(st.lineL3) * _cpu.l3LatencyCycles +
            static_cast<double>(st.lineDram) * l_dram;
        const double accum_lat = lines * _cpu.l1LatencyCycles;
        out.avgLoadLatency = (row_lat + accum_lat) / (2.0 * lines);
    }
    return out;
}

double
TimingModel::mlpMs(double flops, double inflation) const
{
    const double cycles =
        flops / (_cpu.simdFlopsPerCycle * _p.mlpEfficiency);
    return cycles * inflation / (_cpu.freqGHz * 1e6);
}

double
TimingModel::interactionMs(double flops, double inflation) const
{
    const double cycles =
        flops / (_cpu.simdFlopsPerCycle * _p.interEfficiency);
    return cycles * inflation / (_cpu.freqGHz * 1e6);
}

} // namespace dlrmopt::platform
