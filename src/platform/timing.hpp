/**
 * @file
 * Analytic CPU timing model layered on the contents simulator.
 *
 * Converts embedding-simulation statistics (who hit where, what was
 * prefetched) into cycles and milliseconds for one platform, and
 * provides dense-stage (MLP/interaction) compute timing. The model
 * is deliberately simple — a handful of calibrated parameters, all
 * in TimingParams — and captures the effects the paper's evaluation
 * turns on:
 *
 *  - exposed memory latency limited by the OoO window's memory-level
 *    parallelism (bigger ROB => less SW-PF headroom, Sec. 6.4);
 *  - software-prefetch timeliness as a fixed point of the per-lookup
 *    time (prefetch distance knob, Fig. 10b);
 *  - DRAM bandwidth contention across cores via M/D/1-style queueing
 *    (multi-core scaling, Fig. 8);
 *  - SMT composition rules for DP-HT / MP-HT / Integrated (Fig. 11).
 */

#ifndef DLRMOPT_PLATFORM_TIMING_HPP
#define DLRMOPT_PLATFORM_TIMING_HPP

#include "core/embedding.hpp"
#include "memsim/dram.hpp"
#include "memsim/embedding_sim.hpp"
#include "platform/cpu_config.hpp"

namespace dlrmopt::platform
{

/**
 * Calibrated model constants. Defaults are fitted so the Cascade
 * Lake configuration lands in the paper's Table 4 / Fig. 12-15
 * ranges (see EXPERIMENTS.md for the paper-vs-model comparison).
 */
struct TimingParams
{
    double cyclesPerLookupBase = 50.0; //!< loop/offset/index overhead
    double cyclesPerLine = 8.0;       //!< vector load+add+store per line
    double cyclesPerPrefetchInstr = 0.25;

    double instrPerLookup = 240.0;     //!< occupancy of one lookup in ROB
    double mlpCap = 8.0;               //!< max overlapped memory accesses

    /** Floor fraction of the source-level latency still exposed for
     *  a timely prefetch (queueing, fill-buffer occupancy). */
    double pfResidualFraction = 0.08;

    /** Cycles of look-ahead a hardware next-line/stride prefetch
     *  achieves (it triggers only one access ahead). */
    double hwPfHideCycles = 40.0;

    /**
     * Fill-pipeline occupancy: every line transferred from DRAM
     * (demand or prefetch) holds a fill buffer / MSHR for a share of
     * the access latency. This throughput term is what keeps software
     * prefetching from fully collapsing DRAM-heavy (low-hot) stalls —
     * the prefetch pipe itself becomes the bottleneck.
     */
    double cyclesPerDramLine = 16.0;

    /**
     * Miss-clustering overlap boost: when most lookups miss to DRAM
     * the OoO window fills with independent misses and memory-level
     * parallelism rises (runahead-like behaviour), so the exposed
     * DRAM stall saturates instead of growing linearly with the miss
     * fraction. Exposed DRAM time is divided by
     * (1 + dramOverlapBoost * f_dram).
     */
    double dramOverlapBoost = 2.0;

    double mlpEfficiency = 0.60;       //!< GEMM fraction-of-peak
    double interEfficiency = 0.30;     //!< interaction fraction-of-peak
    double hwPfOffMlpPenalty = 1.25;   //!< dense stages w/o HW prefetch

    double smtAssistEta = 0.15;        //!< MP-HT sibling assist strength
    double smtAssistEtaIntegrated = 0.12; //!< with SW-PF freeing the pipe
    double mpHtMlpSlowdown = 2.1;     //!< bottom-MLP beside memory thread
    /** Same penalty under Integrated: SW prefetching frees issue
     *  slots and fill buffers, so the sibling MLP runs closer to
     *  solo speed (part of the Sec. 4.4 synergy). */
    double mpHtMlpSlowdownIntegrated = 2.1;
    double dpHtComputeInflation = 1.9; //!< two instances sharing ports
    double dpHtWindowShare = 0.5;      //!< ROB statically partitioned
};

/** Embedding-stage timing results. */
struct EmbTiming
{
    double msPerBatch = 0.0;      //!< embedding latency of one batch
    double cyclesPerLookup = 0.0;
    double avgLoadLatency = 0.0;  //!< cycles per demand line (VTune-like)
    double dramUtilization = 0.0; //!< converged rho
    double achievedGBs = 0.0;     //!< aggregate DRAM bandwidth
    double effectiveDramLatency = 0.0;
};

/** Per-stage end-to-end times for one batch (ms). */
struct StageTimesMs
{
    double bottom = 0.0;
    double emb = 0.0;
    double inter = 0.0;
    double top = 0.0;

    double
    total() const
    {
        return bottom + emb + inter + top;
    }
};

/**
 * The timing model for one CPU platform.
 */
class TimingModel
{
  public:
    explicit TimingModel(const CpuConfig& cpu, TimingParams params = {});

    const TimingParams& params() const { return _p; }
    const CpuConfig& cpu() const { return _cpu; }

    /**
     * Embedding-stage timing from contents-simulation statistics.
     *
     * @param st Aggregate sim statistics (all cores, all batches).
     * @param cores Active cores (sharing DRAM bandwidth).
     * @param num_batches Batches covered by @p st.
     * @param sw_pf SW prefetch spec used in the sim ({} if none).
     * @param window_share Fraction of the ROB available to the
     *        embedding thread (DP-HT halves it).
     * @param compute_inflation Multiplier on compute cycles (SMT port
     *        contention).
     * @param sockets Sockets the active cores span; DRAM bandwidth
     *        scales with the socket count.
     */
    EmbTiming embeddingTime(const memsim::EmbSimStats& st,
                            std::size_t cores, std::size_t num_batches,
                            const core::PrefetchSpec& sw_pf,
                            double window_share = 1.0,
                            double compute_inflation = 1.0,
                            std::size_t sockets = 1) const;

    /** Dense-layer stage time for @p flops total FLOPs (one batch). */
    double mlpMs(double flops, double inflation = 1.0) const;

    /** Interaction stage time for @p flops total FLOPs (one batch). */
    double interactionMs(double flops, double inflation = 1.0) const;

    /**
     * Effective memory-level-parallelism factor: how many long-latency
     * lookups the OoO window keeps in flight.
     */
    double
    overlapFactor(double window_share = 1.0,
                  double row_lines = 8.0) const
    {
        const double f =
            static_cast<double>(_cpu.robSize) * window_share /
            (_p.instrPerLookup * row_lines / 8.0);
        // A partitioned window (SMT sharing) can push the factor
        // below 1: misses that no longer fit serialize and the
        // exposure grows, which is the DP-HT failure mode.
        return std::clamp(f, window_share, _p.mlpCap);
    }

  private:
    CpuConfig _cpu;
    TimingParams _p;
    memsim::DramModel _dram;
};

} // namespace dlrmopt::platform

#endif // DLRMOPT_PLATFORM_TIMING_HPP
