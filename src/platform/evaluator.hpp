/**
 * @file
 * End-to-end evaluation driver: composes the contents simulator and
 * the timing model into per-scheme batch latencies — the quantity
 * every evaluation figure of the paper reports.
 */

#ifndef DLRMOPT_PLATFORM_EVALUATOR_HPP
#define DLRMOPT_PLATFORM_EVALUATOR_HPP

#include <cstdint>

#include "core/model_config.hpp"
#include "core/scheme.hpp"
#include "memsim/embedding_sim.hpp"
#include "platform/timing.hpp"
#include "trace/hotness.hpp"

namespace dlrmopt::platform
{

/** One evaluation point: (cpu, model, dataset, scheme, cores). */
struct EvalConfig
{
    CpuConfig cpu;
    core::ModelConfig model;
    traces::Hotness hotness = traces::Hotness::Low;
    core::Scheme scheme = core::Scheme::Baseline;
    std::size_t cores = 1;

    /** Batches to simulate; 0 = auto (>= 1 per core, min 6). */
    std::size_t numBatches = 0;

    /**
     * Table folding for simulation cost: when nonzero and the model
     * has more tables, only this many tables are simulated, with the
     * hot-set size scaled up by the fold ratio so the aggregate LLC
     * footprint of hot rows is preserved, and the per-batch embedding
     * time scaled back by the same ratio. Tables are homogeneous and
     * processed sequentially (Algorithm 1), so per-table behaviour is
     * unchanged; only the very long inter-batch reuse distances are
     * approximated. 0 = simulate every table exactly.
     */
    std::size_t maxSimTables = 0;

    /** SW prefetch tuning; amount < 0 = platform's best (Sec. 6.4). */
    int pfDistance = 4;
    int pfAmount = -1;
    int pfLocality = 3;

    std::uint64_t seed = 1;
    TimingParams timing{};
};

/** Results of one evaluation point. */
struct EvalResult
{
    StageTimesMs stages;   //!< per-stage ms for one batch
    double batchMs = 0.0;  //!< end-to-end latency of one batch
    double embMs = 0.0;    //!< embedding-only latency of one batch

    memsim::EmbSimStats sim;
    EmbTiming embTiming;
};

/** FLOPs of one batch through an MLP given its size list. */
double mlpFlops(const std::vector<std::size_t>& dims, std::size_t batch);

/** FLOPs of one batch through the interaction stage. */
double interactionFlops(const core::ModelConfig& m, std::size_t batch);

/** A completed embedding contents simulation plus its fold ratio. */
struct SimRun
{
    memsim::EmbSimStats stats;
    double fold = 1.0;      //!< table-fold scale factor for times
    std::size_t batches = 0; //!< batches the stats cover
};

/**
 * Runs the embedding contents simulation appropriate for the
 * config's scheme (hardware prefetch on/off, software prefetch,
 * halved private caches for DP-HT).
 *
 * Schemes that share contents can share a SimRun: MP-HT uses the
 * Baseline run, Integrated uses the SW-PF run — compose() does not
 * re-simulate.
 */
SimRun simulateEmbedding(const EvalConfig& cfg);

/**
 * Applies the scheme's timing composition (Sec. 4.3/4.4) to a
 * completed simulation. @p run must have contents matching the
 * scheme (see simulateEmbedding()).
 */
EvalResult compose(const EvalConfig& cfg, const SimRun& run);

/**
 * Evaluates one configuration: simulateEmbedding() then compose().
 */
EvalResult evaluate(const EvalConfig& cfg);

/** The PrefetchSpec an EvalConfig resolves to for its platform. */
core::PrefetchSpec resolvePrefetchSpec(const EvalConfig& cfg);

} // namespace dlrmopt::platform

#endif // DLRMOPT_PLATFORM_EVALUATOR_HPP
