#include "platform/cpu_config.hpp"

#include <stdexcept>

namespace dlrmopt::platform
{

CpuConfig
cascadeLake()
{
    CpuConfig c;
    c.name = "CSL";
    c.cores = 24; // 6240R cores per socket
    c.sockets = 2;
    c.freqGHz = 2.4;
    c.l1 = {32 * 1024, 8, 64};
    c.l2 = {1024 * 1024, 16, 64};
    c.l3 = {35 * 1024 * 1024 + 768 * 1024, 11, 64};
    c.l1LatencyCycles = 5.0;
    c.l2LatencyCycles = 30.0;  // effective, incl. L1 miss handling
    c.l3LatencyCycles = 90.0;
    c.dramLatencyCycles = 220.0;
    c.dramBandwidthGBs = 140.0;
    c.robSize = 224;
    c.simdFlopsPerCycle = 64.0; // AVX-512, 2 FMA ports
    c.bestPfAmount = 8;
    return c;
}

CpuConfig
skylake()
{
    CpuConfig c = cascadeLake();
    c.name = "SKL";
    c.cores = 12; // Gold 6136, 2 sockets = 24 cores
    c.sockets = 2;
    c.freqGHz = 3.0;
    c.l3 = {24 * 1024 * 1024 + 768 * 1024, 11, 64}; // 24.75 MB
    c.dramLatencyCycles = 240.0;
    c.dramBandwidthGBs = 119.0; // DDR4-2666, 6 channels
    c.l3LatencyCycles = 80.0;
    c.robSize = 224;
    c.bestPfAmount = 8;
    return c;
}

CpuConfig
icelake()
{
    CpuConfig c = cascadeLake();
    c.name = "ICL";
    c.cores = 16; // Silver 4314, 2 sockets = 32 cores
    c.sockets = 2;
    c.freqGHz = 2.4;
    c.l2 = {1280 * 1024, 20, 64};
    c.l3 = {24 * 1024 * 1024, 12, 64};
    c.dramLatencyCycles = 230.0;
    c.dramBandwidthGBs = 170.0; // DDR4-3200, 8 channels
    c.l3LatencyCycles = 86.0;
    c.robSize = 352;            // +58% over CSL (Sec. 6.4)
    c.bestPfAmount = 2;
    return c;
}

CpuConfig
sapphireRapids()
{
    CpuConfig c = cascadeLake();
    c.name = "SPR";
    c.cores = 56; // Platinum 8480+, single socket
    c.sockets = 1;
    c.freqGHz = 2.0;
    c.l2 = {2048 * 1024, 16, 64};
    c.l3 = {105 * 1024 * 1024, 15, 64};
    c.dramLatencyCycles = 250.0;
    c.dramBandwidthGBs = 280.0; // DDR5-4800, 8 channels
    c.l3LatencyCycles = 100.0;
    c.robSize = 512;            // +129% over CSL (Sec. 6.4)
    c.bestPfAmount = 2;
    return c;
}

CpuConfig
zen3()
{
    CpuConfig c = cascadeLake();
    c.name = "Zen3";
    c.cores = 64; // EPYC 7763 per socket; Sec. 6.4 runs 128 cores
    c.sockets = 2;
    c.freqGHz = 2.45;
    c.l1 = {32 * 1024, 8, 64};
    c.l2 = {512 * 1024, 8, 64};
    // 256 MB total L3, but 32 MB per 8-core CCX; model the per-CCX
    // slice scaled to the whole chip as one shared pool.
    c.l3 = {256 * 1024 * 1024, 16, 64};
    c.l3LatencyCycles = 95.0;
    c.dramLatencyCycles = 240.0;
    // Effective random-64B-access bandwidth: the Infinity Fabric /
    // per-CCD GMI links limit irregular traffic well below the
    // DDR4-3200 8-channel pin rate (204 GB/s). This is what makes
    // Zen3's many-core runs bandwidth-saturated — the paper's Sec.
    // 6.4 exception where SW-PF gains collapse for rm2_1.
    c.dramBandwidthGBs = 130.0;
    c.robSize = 256;
    c.simdFlopsPerCycle = 32.0; // AVX2, 2 FMA ports
    c.bestPfAmount = 4;
    return c;
}

const std::vector<CpuConfig>&
allCpus()
{
    static const std::vector<CpuConfig> cpus = {
        skylake(), cascadeLake(), icelake(), sapphireRapids(), zen3()};
    return cpus;
}

const CpuConfig&
cpuByName(const std::string& name)
{
    for (const auto& c : allCpus()) {
        if (c.name == name)
            return c;
    }
    throw std::out_of_range("unknown CPU: " + name);
}

} // namespace dlrmopt::platform
