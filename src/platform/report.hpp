/**
 * @file
 * Machine-readable export of evaluation results (CSV rows and JSON
 * objects, no external dependencies). Lets downstream tooling —
 * plotting scripts, regression dashboards — consume the same data
 * the benches print as text.
 */

#ifndef DLRMOPT_PLATFORM_REPORT_HPP
#define DLRMOPT_PLATFORM_REPORT_HPP

#include <ostream>
#include <string>

#include "platform/evaluator.hpp"

namespace dlrmopt::platform
{

/** Column header matching writeCsvRow(); ends with a newline. */
std::string csvHeader();

/**
 * One result as a CSV row (same column order as csvHeader()).
 * Ends with a newline.
 */
void writeCsvRow(std::ostream& os, const EvalConfig& cfg,
                 const EvalResult& res);

/**
 * One result as a self-contained JSON object (configuration and
 * metrics). Deterministic key order; no trailing newline.
 */
std::string toJson(const EvalConfig& cfg, const EvalResult& res);

/** Escapes a string for safe embedding in JSON output. */
std::string jsonEscape(const std::string& s);

} // namespace dlrmopt::platform

#endif // DLRMOPT_PLATFORM_REPORT_HPP
