#include "memsim/reuse.hpp"

#include <algorithm>

#include "core/types.hpp"

namespace dlrmopt::memsim
{

double
ReuseHistogram::hitRateAtCapacity(std::uint64_t capacity_elems) const
{
    if (totalAccesses == 0)
        return 0.0;
    // Count accesses with distance < capacity. Bin i spans
    // [2^i, 2^(i+1)) (bin 0 spans [0, 2)); bins entirely below the
    // capacity count fully, the straddling bin counts pro rata
    // (distances are near-uniform inside a bin at this granularity).
    double hits = 0.0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const double lo = i == 0 ? 0.0 : static_cast<double>(1ull << i);
        const double hi = static_cast<double>(1ull << (i + 1));
        const double cap = static_cast<double>(capacity_elems);
        if (cap >= hi) {
            hits += static_cast<double>(bins[i]);
        } else if (cap > lo) {
            hits += static_cast<double>(bins[i]) * (cap - lo) / (hi - lo);
        }
    }
    return hits / static_cast<double>(totalAccesses);
}

void
ReuseHistogram::merge(const ReuseHistogram& other)
{
    if (other.bins.size() > bins.size())
        bins.resize(other.bins.size(), 0);
    for (std::size_t i = 0; i < other.bins.size(); ++i)
        bins[i] += other.bins[i];
    coldAccesses += other.coldAccesses;
    totalAccesses += other.totalAccesses;
}

namespace
{

std::size_t
binOf(std::int64_t distance)
{
    std::size_t b = 0;
    while ((std::int64_t(1) << (b + 1)) <= distance)
        ++b;
    return b;
}

} // namespace

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(std::size_t capacity_hint)
{
    const std::size_t n = std::max<std::size_t>(capacity_hint, 1024);
    _tree.assign(n + 1, 0);
    _mapSize = 2048;
    while (_mapSize < n * 2)
        _mapSize <<= 1;
    _lastPos.assign(_mapSize, 0);
    _keys.assign(_mapSize, 0);
    _used.assign(_mapSize, 0);
}

void
ReuseDistanceAnalyzer::fenwickAdd(std::size_t pos, std::int64_t delta)
{
    for (std::size_t i = pos + 1; i < _tree.size(); i += i & (~i + 1))
        _tree[i] += delta;
}

std::int64_t
ReuseDistanceAnalyzer::fenwickSum(std::size_t pos) const
{
    // Sum of marks in positions [0, pos].
    std::int64_t s = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1))
        s += _tree[i];
    return s;
}

std::size_t
ReuseDistanceAnalyzer::findSlot(std::uint64_t key) const
{
    std::size_t slot = mix64(key) & (_mapSize - 1);
    while (_used[slot] && _keys[slot] != key)
        slot = (slot + 1) & (_mapSize - 1);
    return slot;
}

void
ReuseDistanceAnalyzer::growMap()
{
    const std::size_t old_size = _mapSize;
    auto old_keys = std::move(_keys);
    auto old_pos = std::move(_lastPos);
    auto old_used = std::move(_used);
    _mapSize <<= 1;
    _keys.assign(_mapSize, 0);
    _lastPos.assign(_mapSize, 0);
    _used.assign(_mapSize, 0);
    for (std::size_t i = 0; i < old_size; ++i) {
        if (!old_used[i])
            continue;
        const std::size_t slot = findSlot(old_keys[i]);
        _keys[slot] = old_keys[i];
        _lastPos[slot] = old_pos[i];
        _used[slot] = 1;
    }
}

std::int64_t
ReuseDistanceAnalyzer::access(std::uint64_t key)
{
    // Grow the Fenwick tree by rebuilding when the trace outruns the
    // hint. Marks are recoverable from the live last-position map.
    if (_time + 2 >= _tree.size()) {
        const std::size_t new_size = _tree.size() * 2;
        _tree.assign(new_size, 0);
        for (std::size_t i = 0; i < _mapSize; ++i) {
            if (_used[i])
                fenwickAdd(_lastPos[i] - 1, 1);
        }
    }

    if (_mapCount * 10 >= _mapSize * 7)
        growMap();

    const std::size_t slot = findSlot(key);
    std::int64_t distance = -1;
    ++_hist.totalAccesses;

    if (_used[slot]) {
        const std::uint64_t prev = _lastPos[slot] - 1;
        // Distinct keys touched strictly after prev and before now.
        distance = fenwickSum(static_cast<std::size_t>(_time)) -
                   fenwickSum(static_cast<std::size_t>(prev));
        fenwickAdd(static_cast<std::size_t>(prev), -1);
        const std::size_t b = binOf(distance);
        if (b >= _hist.bins.size())
            _hist.bins.resize(b + 1, 0);
        ++_hist.bins[b];
    } else {
        _used[slot] = 1;
        _keys[slot] = key;
        ++_mapCount;
        ++_hist.coldAccesses;
    }

    fenwickAdd(static_cast<std::size_t>(_time), 1);
    _lastPos[slot] = _time + 1;
    ++_time;
    return distance;
}

std::uint64_t
ReuseDistanceAnalyzer::distinctKeys() const
{
    return _mapCount;
}

std::vector<std::int64_t>
computeStackDistances(const std::vector<std::uint64_t>& trace)
{
    ReuseDistanceAnalyzer a(trace.size());
    std::vector<std::int64_t> out;
    out.reserve(trace.size());
    for (std::uint64_t key : trace)
        out.push_back(a.access(key));
    return out;
}

ReuseHistogram
computeReuseHistogram(const std::vector<std::uint64_t>& trace)
{
    ReuseDistanceAnalyzer a(trace.size());
    for (std::uint64_t key : trace)
        a.access(key);
    return a.histogram();
}

} // namespace dlrmopt::memsim
