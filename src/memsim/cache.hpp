/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * This is the building block of the trace-driven memory-hierarchy
 * simulator that substitutes for VTune measurements (see DESIGN.md).
 * It models contents (hits/misses/evictions), not timing; timing is
 * layered on top by the platform timing model.
 *
 * Performance matters here: simulations replay hundreds of millions
 * of accesses, so each way is packed into a single 64-bit word
 * (tag | LRU stamp | annotation flag) — an 8-way set scan touches
 * exactly one host cache line — and fused operations (accessFill,
 * insertProbe) avoid scanning a set twice on the miss path.
 */

#ifndef DLRMOPT_MEMSIM_CACHE_HPP
#define DLRMOPT_MEMSIM_CACHE_HPP

#include <cstdint>
#include <vector>

namespace dlrmopt::memsim
{

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t lineBytes = 64;

    std::uint64_t
    numSets() const
    {
        const std::uint64_t denom =
            static_cast<std::uint64_t>(assoc) * lineBytes;
        return denom ? sizeBytes / denom : 0;
    }

    std::uint64_t
    numLines() const
    {
        return lineBytes ? sizeBytes / lineBytes : 0;
    }
};

/**
 * A single set-associative, LRU-replacement cache. Addresses are byte
 * addresses; the cache operates on aligned lines.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig& cfg);

    const CacheConfig& config() const { return _cfg; }

    /** Result of a demand access. */
    struct LookupResult
    {
        bool hit = false;
        std::uint8_t flag = 0; //!< line's annotation at hit time
    };

    /**
     * Looks up @p addr, updating LRU state on a hit. A hit consumes
     * the line's annotation flag (returned in the result and cleared
     * on the line) — used to credit prefetches on first demand use.
     *
     * @return Hit/miss plus the consumed flag. Does NOT allocate on
     *         miss; callers decide fill policy.
     */
    LookupResult lookup(std::uint64_t addr);

    /**
     * Demand access with allocate-on-miss, in a single set scan:
     * behaves like lookup(), but on a miss fills the line (evicting
     * the LRU way if needed).
     */
    LookupResult accessFill(std::uint64_t addr);

    /** Peeks without touching replacement state or flags. */
    bool contains(std::uint64_t addr) const;

    /**
     * Inserts the line for @p addr, evicting the set's LRU line if
     * needed. If the line is already present, refreshes recency and
     * overwrites its flag.
     *
     * @param flag Annotation stored on the line (0 = plain demand
     *        fill; prefetch fills encode kind and source level).
     * @retval true when an existing (valid) line was evicted.
     */
    bool insert(std::uint64_t addr, std::uint8_t flag = 0);

    /**
     * Prefetch-style fused probe + fill in one scan: like insert(),
     * but reports prior residency instead of eviction.
     *
     * @retval true when the line was already present (the fill only
     *         refreshed recency and the flag).
     */
    bool insertProbe(std::uint64_t addr, std::uint8_t flag = 0);

    /** Removes the line holding @p addr if present. */
    void invalidate(std::uint64_t addr);

    /**
     * Hints the host CPU to pull this address's set row into its own
     * caches. Pure simulation-speed optimization: the hierarchy
     * prefetches the L2/LLC set rows while the L1 scan runs, hiding
     * host memory latency on the (dominant) miss path.
     */
    void
    hostPrefetch(std::uint64_t addr) const
    {
        const std::uint64_t line = addr >> _lineShift;
        __builtin_prefetch(_ways.data() + setIndex(line) * _cfg.assoc,
                           0, 1);
    }

    /** Drops all contents and statistics. */
    void reset();

    std::uint64_t accesses() const { return _accesses; }
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _accesses - _hits; }
    std::uint64_t evictions() const { return _evictions; }

    double
    hitRate() const
    {
        return _accesses
            ? static_cast<double>(_hits) / static_cast<double>(_accesses)
            : 0.0;
    }

  private:
    // Way word layout: [tag:32][use:24][flag:8].
    static constexpr std::uint64_t invalidWord = ~std::uint64_t(0);
    static constexpr std::uint64_t tagMask = 0xffffffff00000000ull;
    static constexpr std::uint32_t useMax = 0xffffff;

    static std::uint32_t wordFlag(std::uint64_t w)
    {
        return static_cast<std::uint32_t>(w & 0xff);
    }

    static std::uint32_t wordUse(std::uint64_t w)
    {
        return static_cast<std::uint32_t>((w >> 8) & 0xffffff);
    }

    std::uint64_t setIndex(std::uint64_t line) const;
    std::uint64_t tagBitsOf(std::uint64_t line) const;

    std::uint32_t _lineShift = 6; //!< log2(lineBytes)
    std::uint32_t _setShift = 0;  //!< log2(numSets) when power of two
    std::uint32_t nextTick();
    void renormalizeTicks();

    /** Core fill: scans once; returns (wasPresent, evicted). */
    std::pair<bool, bool> fill(std::uint64_t addr, std::uint8_t flag);

    CacheConfig _cfg;
    std::uint64_t _numSets;
    bool _setsPow2 = true;

    std::vector<std::uint64_t> _ways; //!< numSets x assoc, row-major

    std::uint32_t _tick = 0; //!< LRU timestamp source (24-bit domain)
    std::uint64_t _accesses = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _evictions = 0;
};

} // namespace dlrmopt::memsim

#endif // DLRMOPT_MEMSIM_CACHE_HPP
