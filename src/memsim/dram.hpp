/**
 * @file
 * DRAM latency/bandwidth model.
 *
 * Captures the two memory-system effects the paper's evaluation
 * hinges on: a long base access latency (hidden by prefetching) and a
 * finite per-socket bandwidth that multi-core embedding stages
 * saturate (Sec. 3.2, Fig. 8). Queueing delay grows with utilization
 * following an M/D/1-style 1/(1-rho) curve, capped to keep the model
 * stable at saturation.
 */

#ifndef DLRMOPT_MEMSIM_DRAM_HPP
#define DLRMOPT_MEMSIM_DRAM_HPP

#include <algorithm>

namespace dlrmopt::memsim
{

/** Parameters of the memory interface (per socket). */
struct DramConfig
{
    double baseLatencyCycles = 220.0; //!< unloaded load-to-use latency
    double peakBandwidthGBs = 140.0;  //!< per-socket peak (Table 3)
    double freqGHz = 2.4;             //!< core clock for unit conversion
    double queueCap = 4.0;            //!< max latency inflation factor

    /** Peak bytes transferred per core clock cycle. */
    double
    peakBytesPerCycle() const
    {
        return peakBandwidthGBs / freqGHz;
    }
};

/**
 * Analytic DRAM timing: effective latency at a given utilization.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig& cfg) : _cfg(cfg) {}

    const DramConfig& config() const { return _cfg; }

    /**
     * Effective average access latency (cycles) at utilization
     * @p rho in [0, 1]. Unloaded latency at rho = 0; inflates as
     * 1 + rho^2/(1-rho) (M/D/1 mean wait) capped at queueCap x.
     */
    double
    latencyAt(double rho) const
    {
        const double r = std::clamp(rho, 0.0, 0.999);
        const double inflation =
            std::min(_cfg.queueCap, 1.0 + r * r / (1.0 - r));
        return _cfg.baseLatencyCycles * inflation;
    }

    /**
     * Utilization implied by moving @p bytes over @p cycles.
     * Clamped to [0, 1].
     */
    double
    utilization(double bytes, double cycles) const
    {
        if (cycles <= 0.0)
            return 1.0;
        return std::clamp(bytes / (cycles * _cfg.peakBytesPerCycle()),
                          0.0, 1.0);
    }

    /**
     * Achieved bandwidth in GB/s for @p bytes over @p cycles.
     */
    double
    achievedGBs(double bytes, double cycles) const
    {
        if (cycles <= 0.0)
            return 0.0;
        return bytes / cycles * _cfg.freqGHz;
    }

  private:
    DramConfig _cfg;
};

} // namespace dlrmopt::memsim

#endif // DLRMOPT_MEMSIM_DRAM_HPP
