#include "memsim/embedding_sim.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "memsim/hw_prefetcher.hpp"

namespace dlrmopt::memsim
{

namespace
{

/**
 * Severity rank for worst-line lookup classification, ordered by the
 * effective exposed latency of each line category.
 */
enum Severity : int
{
    sevL1 = 0,
    sevPfL2 = 1,
    sevL2 = 2,
    sevPfL3 = 3,
    sevL3 = 4,
    sevPfDram = 5,
    sevDram = 6,
};

/** Walk state of one core through its assigned batches. */
struct CoreCursor
{
    std::size_t nextBatch = 0;  //!< next batch id to start (stride cores)
    std::size_t batch = 0;      //!< current batch id
    std::size_t table = 0;
    std::size_t sample = 0;
    std::size_t lookup = 0;
    bool active = false;        //!< currently executing a batch
    bool done = false;          //!< no more batches
};

} // namespace

EmbeddingSim::EmbeddingSim(const EmbSimConfig& cfg) : _cfg(cfg) {}

EmbSimStats
EmbeddingSim::run()
{
    const std::size_t cores = _cfg.hier.cores;
    const std::size_t tables = _cfg.trace.tables;
    const std::size_t batch_size = _cfg.trace.batchSize;
    const std::size_t lookups = _cfg.trace.lookups;
    const std::size_t row_lines = _cfg.rowLines();
    const std::uint64_t row_bytes = _cfg.dim * sizeof(float);

    // Lay tables out back to back, 4 KiB aligned.
    const std::uint64_t table_stride =
        ((static_cast<std::uint64_t>(_cfg.trace.rows) * row_bytes + 4095) /
         4096) *
        4096;

    traces::TraceGenerator gen(_cfg.trace);
    CacheHierarchy hier(_cfg.hier);
    EmbSimStats st;

    std::vector<std::unique_ptr<NextLinePrefetcher>> l1pf(cores);
    std::vector<std::unique_ptr<StridePrefetcher>> l2pf(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        l1pf[c] = std::make_unique<NextLinePrefetcher>();
        l2pf[c] = std::make_unique<StridePrefetcher>();
    }

    std::vector<CoreCursor> cur(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        cur[c].nextBatch = c;
        cur[c].done = c >= _cfg.numBatches;
    }

    const std::size_t per_batch_per_table = batch_size * lookups;
    const bool sw_enabled = _cfg.swPf.enabled();
    const std::size_t sw_dist =
        sw_enabled ? static_cast<std::size_t>(_cfg.swPf.distance) : 0;
    const std::size_t sw_lines = sw_enabled
        ? std::min<std::size_t>(static_cast<std::size_t>(_cfg.swPf.lines),
                                row_lines)
        : 0;
    const bool sw_fill_l1 = _cfg.swPf.locality >= 3;
    const bool sw_fill_l2 = _cfg.swPf.locality >= 2;

    std::vector<std::uint64_t> cands;

    auto row_addr = [&](std::size_t table, RowIndex row) {
        return table * table_stride +
               static_cast<std::uint64_t>(row) * row_bytes;
    };

    std::size_t active_cores = cores;
    while (active_cores > 0) {
        active_cores = 0;
        for (std::size_t c = 0; c < cores; ++c) {
            CoreCursor& k = cur[c];
            if (k.done)
                continue;
            if (!k.active) {
                if (k.nextBatch >= _cfg.numBatches) {
                    k.done = true;
                    continue;
                }
                k.batch = k.nextBatch;
                k.nextBatch += cores;
                k.table = k.sample = k.lookup = 0;
                k.active = true;
            }
            ++active_cores;

            // ---- One lookup of Algorithm 1 on this core. ----
            const std::size_t pos = k.sample * lookups + k.lookup;
            const std::uint64_t counter =
                static_cast<std::uint64_t>(k.batch) * per_batch_per_table +
                pos;
            const RowIndex row = gen.drawIndex(k.table, counter);
            const std::uint64_t base = row_addr(k.table, row);

            // Software prefetch for the row sw_dist lookups ahead,
            // clamped to the current (table, batch) segment exactly
            // like the kernel's bounds check (Algorithm 3).
            if (sw_enabled && pos + sw_dist < per_batch_per_table) {
                const RowIndex pf_row =
                    gen.drawIndex(k.table, counter + sw_dist);
                const std::uint64_t pf_base = row_addr(k.table, pf_row);
                for (std::size_t cb = 0; cb < sw_lines; ++cb) {
                    const std::uint64_t a = pf_base + cb * 64;
                    ++st.swPfIssued;
                    const HitLevel src = hier.prefetch(
                        c, a, sw_fill_l1, sw_fill_l2, pfflag::sw);
                    if (src == HitLevel::L1)
                        ++st.swPfUseless;
                    else if (src == HitLevel::Dram)
                        ++st.swPfDramFills;
                }
            }

            // Demand loads for every line of the selected row. When
            // this row was software-prefetched with a partial amount
            // (fewer lines than the row has), the remaining lines'
            // misses are "row-primed": the prefetch already paid the
            // TLB walk and opened the DRAM row, and the leading
            // covered lines free the window, so the trailing misses
            // behave like prefetch residuals rather than full stalls
            // (this is what makes small amounts viable on
            // large-window CPUs, Sec. 6.4).
            const bool row_prefetched =
                sw_enabled && pos >= sw_dist;
            int worst = sevL1;
            for (std::size_t cb = 0; cb < row_lines; ++cb) {
                const std::uint64_t a = base + cb * 64;
                const auto r = hier.access(c, a);
                ++st.lines;

                int sev;
                switch (r.level) {
                  case HitLevel::L1:
                    ++st.lineL1;
                    if (r.flag != 0) {
                        const HitLevel src = pfflag::srcOf(r.flag);
                        const std::size_t si =
                            static_cast<std::size_t>(src) - 1;
                        if (pfflag::kindOf(r.flag) == pfflag::sw)
                            ++st.swCovered[si];
                        else
                            ++st.hwCovered[si];
                        sev = src == HitLevel::Dram ? sevPfDram
                            : src == HitLevel::L3  ? sevPfL3
                                                   : sevPfL2;
                    } else {
                        sev = sevL1;
                    }
                    break;
                  case HitLevel::L2:
                    ++st.lineL2;
                    sev = sevL2;
                    break;
                  case HitLevel::L3:
                    ++st.lineL3;
                    sev = row_prefetched && cb >= sw_lines ? sevPfL3
                                                           : sevL3;
                    break;
                  default:
                    ++st.lineDram;
                    ++st.dramDemandFills;
                    sev = row_prefetched && cb >= sw_lines
                        ? sevPfDram
                        : sevDram;
                    break;
                }
                worst = std::max(worst, sev);

                // Hardware prefetchers observe the demand stream.
                if (_cfg.hwPrefetch) {
                    cands.clear();
                    l1pf[c]->observe(a, r.level != HitLevel::L1, cands);
                    for (std::uint64_t pa : cands) {
                        ++st.hwPfIssued;
                        const HitLevel src = hier.prefetch(
                            c, pa, true, true, pfflag::hw);
                        if (src == HitLevel::Dram)
                            ++st.hwPfDramFills;
                    }
                    if (r.level != HitLevel::L1) {
                        cands.clear();
                        l2pf[c]->observe(a, r.level != HitLevel::L2,
                                         cands);
                        for (std::uint64_t pa : cands) {
                            ++st.hwPfIssued;
                            const HitLevel src = hier.prefetch(
                                c, pa, false, true, pfflag::hw);
                            if (src == HitLevel::Dram)
                                ++st.hwPfDramFills;
                        }
                    }
                }
            }
            ++st.lookups;
            switch (worst) {
              case sevL1:
                ++st.cls.l1;
                break;
              case sevPfL2:
                ++st.cls.pfL2;
                break;
              case sevL2:
                ++st.cls.l2;
                break;
              case sevPfL3:
                ++st.cls.pfL3;
                break;
              case sevL3:
                ++st.cls.l3;
                break;
              case sevPfDram:
                ++st.cls.pfDram;
                break;
              default:
                ++st.cls.dram;
                break;
            }

            // Advance the cursor (innermost: lookup, then sample,
            // then table, then batch).
            if (++k.lookup == lookups) {
                k.lookup = 0;
                if (++k.sample == batch_size) {
                    k.sample = 0;
                    if (++k.table == tables) {
                        k.table = 0;
                        k.active = false;
                    }
                }
            }
        }
    }
    return st;
}

} // namespace dlrmopt::memsim
