/**
 * @file
 * Trace-driven simulation of the embedding lookup stage's memory
 * behaviour.
 *
 * Replays the exact load stream of Algorithm 1/2 of the paper — for
 * every batch, table, sample, and lookup, the dim/16 cache lines of
 * the selected embedding row — through the multi-core cache
 * hierarchy, with optional hardware prefetchers and the paper's
 * application-initiated software prefetching (Algorithm 3). Cores
 * execute their assigned batches with their lookups interleaved
 * round-robin, so constructive/destructive LLC sharing (Sec. 3.1.2
 * "inter-core") is captured.
 *
 * The simulator models *contents* (who hits where, which prefetches
 * were useful and from which level they pulled the line, DRAM
 * traffic); the platform timing model converts its statistics into
 * cycles and milliseconds.
 */

#ifndef DLRMOPT_MEMSIM_EMBEDDING_SIM_HPP
#define DLRMOPT_MEMSIM_EMBEDDING_SIM_HPP

#include <cstdint>

#include "core/embedding.hpp"
#include "memsim/hierarchy.hpp"
#include "trace/generator.hpp"

namespace dlrmopt::memsim
{

/** Configuration of one embedding-stage simulation. */
struct EmbSimConfig
{
    traces::TraceConfig trace;  //!< index trace (rows/tables/lookups/hotness)
    std::size_t dim = 128;      //!< embedding dimension (fp32)
    HierarchyConfig hier;       //!< cache geometry incl. core count
    bool hwPrefetch = true;     //!< model HW next-line + stride prefetchers
    core::PrefetchSpec swPf{};  //!< SW prefetch spec ({} = disabled)
    std::size_t numBatches = 12; //!< batches simulated (across all cores)

    /** Cache lines per embedding row. */
    std::size_t
    rowLines() const
    {
        return (dim * sizeof(float) + 63) / 64;
    }
};

/**
 * Per-lookup worst-line classification, ordered by effective exposed
 * latency: a lookup stalls for its slowest line. "pfX" means the
 * worst line was prefetch-covered and the prefetch pulled it from
 * level X (so only X's latency — mostly hidden — is exposed).
 */
struct LookupClasses
{
    std::uint64_t l1 = 0;     //!< all lines hit L1, no prefetch credit
    std::uint64_t pfL2 = 0;   //!< worst: covered line sourced from L2
    std::uint64_t l2 = 0;     //!< worst: plain L2 hit
    std::uint64_t pfL3 = 0;   //!< worst: covered line sourced from L3
    std::uint64_t l3 = 0;     //!< worst: plain L3 hit
    std::uint64_t pfDram = 0; //!< worst: covered line sourced from DRAM
    std::uint64_t dram = 0;   //!< worst: plain DRAM access

    std::uint64_t
    total() const
    {
        return l1 + pfL2 + l2 + pfL3 + l3 + pfDram + dram;
    }
};

/** Aggregate results of an embedding-stage simulation. */
struct EmbSimStats
{
    std::uint64_t lookups = 0;
    std::uint64_t lines = 0;       //!< demand line accesses (row data)

    std::uint64_t lineL1 = 0;      //!< demand lines satisfied in L1
    std::uint64_t lineL2 = 0;
    std::uint64_t lineL3 = 0;
    std::uint64_t lineDram = 0;

    /** L1 demand hits credited to a SW prefetch, by source level the
     *  prefetch pulled from: [0] = L2, [1] = L3, [2] = DRAM. */
    std::uint64_t swCovered[3] = {0, 0, 0};
    std::uint64_t hwCovered[3] = {0, 0, 0};

    std::uint64_t swPfIssued = 0;    //!< SW prefetch line requests
    std::uint64_t swPfUseless = 0;   //!< target already in L1
    std::uint64_t swPfDramFills = 0; //!< SW prefetches sourced from DRAM
    std::uint64_t hwPfIssued = 0;
    std::uint64_t hwPfDramFills = 0;

    std::uint64_t dramDemandFills = 0; //!< demand misses to DRAM

    LookupClasses cls;

    /** Raw row-data L1 hit rate (contents view). */
    double
    l1HitRate() const
    {
        return lines ? static_cast<double>(lineL1) /
                           static_cast<double>(lines)
                     : 0.0;
    }

    /**
     * Profiler-view L1D hit rate: the kernel issues one accumulator
     * load (always L1-resident) per row-data load (Algorithm 1's
     * vec.ld accm / vec.ld row_block pair), so measured hit rates sit
     * halfway between the row hit rate and 1. This is the number to
     * compare against the paper's VTune figures (Figs. 4, 10c, 15).
     */
    double
    vtuneL1HitRate() const
    {
        return lines ? (static_cast<double>(lines) +
                        static_cast<double>(lineL1)) /
                           (2.0 * static_cast<double>(lines))
                     : 0.0;
    }

    double
    l2HitRate() const
    {
        const std::uint64_t seen = lines - lineL1;
        return seen ? static_cast<double>(lineL2) /
                          static_cast<double>(seen)
                    : 0.0;
    }

    double
    l3HitRate() const
    {
        const std::uint64_t seen = lines - lineL1 - lineL2;
        return seen ? static_cast<double>(lineL3) /
                          static_cast<double>(seen)
                    : 0.0;
    }

    std::uint64_t
    swCoveredTotal() const
    {
        return swCovered[0] + swCovered[1] + swCovered[2];
    }

    std::uint64_t
    hwCoveredTotal() const
    {
        return hwCovered[0] + hwCovered[1] + hwCovered[2];
    }

    /** Total bytes moved from DRAM (demand + both prefetch kinds). */
    double
    dramBytes() const
    {
        return 64.0 * static_cast<double>(dramDemandFills + swPfDramFills +
                                          hwPfDramFills);
    }
};

/**
 * Runs the embedding-stage memory simulation described above.
 */
class EmbeddingSim
{
  public:
    explicit EmbeddingSim(const EmbSimConfig& cfg);

    /**
     * Simulates the configured number of batches. Batch b is assigned
     * to core b % cores (the paper's batch-per-core mapping); cores
     * advance one lookup per round-robin turn.
     */
    EmbSimStats run();

  private:
    EmbSimConfig _cfg;
};

} // namespace dlrmopt::memsim

#endif // DLRMOPT_MEMSIM_EMBEDDING_SIM_HPP
