#include "memsim/cache.hpp"

#include <stdexcept>

namespace dlrmopt::memsim
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig& cfg)
    : _cfg(cfg), _numSets(cfg.numSets())
{
    if (cfg.lineBytes == 0 || !isPow2(cfg.lineBytes))
        throw std::invalid_argument("line size must be a power of two");
    if (cfg.assoc == 0 || _numSets == 0)
        throw std::invalid_argument("cache too small for its associativity");
    // Real LLCs (e.g. 35.75 MB 11-way) have non-power-of-two set
    // counts; those are indexed with a multiply-shift hash instead of
    // a mask.
    _setsPow2 = isPow2(_numSets);
    _lineShift = 0;
    while ((1u << _lineShift) < cfg.lineBytes)
        ++_lineShift;
    if (_setsPow2) {
        _setShift = 0;
        while ((std::uint64_t(1) << _setShift) < _numSets)
            ++_setShift;
    }
    _ways.assign(_numSets * cfg.assoc, invalidWord);
}

std::uint64_t
Cache::setIndex(std::uint64_t line) const
{
    if (_setsPow2)
        return line & (_numSets - 1);
    // Fibonacci multiply-shift: maps the line id uniformly onto
    // [0, numSets) without a division. The exact set mapping of a
    // non-power-of-two LLC is undocumented anyway; uniformity is what
    // matters for the model.
    const std::uint64_t h = line * 0x9e3779b97f4a7c15ull;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(h) * _numSets) >> 64);
}

std::uint64_t
Cache::tagBitsOf(std::uint64_t line) const
{
    // Line ids stay below 2^31 for every modeled address space
    // (<= 170 tables x 512 MB), so 32 tag bits never collide. With
    // power-of-two sets the set bits are redundant and shifted out;
    // with hashed indexing the full line id is kept.
    const std::uint64_t tag32 = _setsPow2
        ? (line >> _setShift) & 0xffffffffull
        : line & 0x7fffffffull;
    return tag32 << 32;
}

std::uint32_t
Cache::nextTick()
{
    if (++_tick >= useMax)
        renormalizeTicks();
    return _tick;
}

void
Cache::renormalizeTicks()
{
    // 24-bit tick overflow: compress all timestamps, preserving
    // order. Amortized cost is negligible (once per ~16M touches).
    for (auto& w : _ways) {
        if (w == invalidWord)
            continue;
        const std::uint32_t use = wordUse(w) >> 12;
        w = (w & ~0xffffff00ull) | (std::uint64_t(use) << 8);
    }
    _tick >>= 12;
}

Cache::LookupResult
Cache::lookup(std::uint64_t addr)
{
    ++_accesses;
    const std::uint64_t line = addr >> _lineShift;
    const std::size_t base = setIndex(line) * _cfg.assoc;
    const std::uint64_t tag = tagBitsOf(line);
    for (std::uint32_t w = 0; w < _cfg.assoc; ++w) {
        std::uint64_t& word = _ways[base + w];
        if (word != invalidWord && (word & tagMask) == tag) {
            ++_hits;
            const auto flag = static_cast<std::uint8_t>(wordFlag(word));
            word = tag | (std::uint64_t(nextTick()) << 8); // flag -> 0
            return {true, flag};
        }
    }
    return {false, 0};
}

Cache::LookupResult
Cache::accessFill(std::uint64_t addr)
{
    ++_accesses;
    const std::uint64_t line = addr >> _lineShift;
    const std::size_t base = setIndex(line) * _cfg.assoc;
    const std::uint64_t tag = tagBitsOf(line);

    std::size_t victim = base;
    std::uint32_t victim_use = ~0u;
    for (std::uint32_t w = 0; w < _cfg.assoc; ++w) {
        std::uint64_t& word = _ways[base + w];
        if (word == invalidWord) {
            if (victim_use != 0) {
                victim = base + w;
                victim_use = 0;
            }
            continue;
        }
        if ((word & tagMask) == tag) {
            ++_hits;
            const auto flag = static_cast<std::uint8_t>(wordFlag(word));
            word = tag | (std::uint64_t(nextTick()) << 8);
            return {true, flag};
        }
        if (wordUse(word) < victim_use) {
            victim = base + w;
            victim_use = wordUse(word);
        }
    }

    if (_ways[victim] != invalidWord)
        ++_evictions;
    _ways[victim] = tag | (std::uint64_t(nextTick()) << 8);
    return {false, 0};
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::uint64_t line = addr >> _lineShift;
    const std::size_t base = setIndex(line) * _cfg.assoc;
    const std::uint64_t tag = tagBitsOf(line);
    for (std::uint32_t w = 0; w < _cfg.assoc; ++w) {
        const std::uint64_t word = _ways[base + w];
        if (word != invalidWord && (word & tagMask) == tag)
            return true;
    }
    return false;
}

std::pair<bool, bool>
Cache::fill(std::uint64_t addr, std::uint8_t flag)
{
    const std::uint64_t line = addr >> _lineShift;
    const std::size_t base = setIndex(line) * _cfg.assoc;
    const std::uint64_t tag = tagBitsOf(line);

    std::size_t victim = base;
    std::uint32_t victim_use = ~0u;
    for (std::uint32_t w = 0; w < _cfg.assoc; ++w) {
        std::uint64_t& word = _ways[base + w];
        if (word == invalidWord) {
            if (victim_use != 0) {
                victim = base + w;
                victim_use = 0;
            }
            continue;
        }
        if ((word & tagMask) == tag) {
            word = tag | (std::uint64_t(nextTick()) << 8) | flag;
            return {true, false};
        }
        if (wordUse(word) < victim_use) {
            victim = base + w;
            victim_use = wordUse(word);
        }
    }
    const bool evicted = _ways[victim] != invalidWord;
    if (evicted)
        ++_evictions;
    _ways[victim] = tag | (std::uint64_t(nextTick()) << 8) | flag;
    return {false, evicted};
}

bool
Cache::insert(std::uint64_t addr, std::uint8_t flag)
{
    return fill(addr, flag).second;
}

bool
Cache::insertProbe(std::uint64_t addr, std::uint8_t flag)
{
    return fill(addr, flag).first;
}

void
Cache::invalidate(std::uint64_t addr)
{
    const std::uint64_t line = addr >> _lineShift;
    const std::size_t base = setIndex(line) * _cfg.assoc;
    const std::uint64_t tag = tagBitsOf(line);
    for (std::uint32_t w = 0; w < _cfg.assoc; ++w) {
        if (_ways[base + w] != invalidWord &&
            (_ways[base + w] & tagMask) == tag) {
            _ways[base + w] = invalidWord;
            return;
        }
    }
}

void
Cache::reset()
{
    _ways.assign(_ways.size(), invalidWord);
    _tick = 0;
    _accesses = 0;
    _hits = 0;
    _evictions = 0;
}

} // namespace dlrmopt::memsim
