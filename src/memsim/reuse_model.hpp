/**
 * @file
 * The paper's reuse-distance "model" (Fig. 6): index trace in,
 * reuse-distance bins and per-cache-level hit rates out.
 *
 * Pipeline: (1) generate the index access trace from the dataset and
 * embedding parameters, interleaving cores round-robin; (2) compute
 * stack distances over the trace; (3) convert each cache capacity
 * into "how many embedding row vectors fit" (fully-associative
 * assumption) and read the hit rate off the distance distribution.
 */

#ifndef DLRMOPT_MEMSIM_REUSE_MODEL_HPP
#define DLRMOPT_MEMSIM_REUSE_MODEL_HPP

#include <cstdint>
#include <vector>

#include "memsim/reuse.hpp"
#include "trace/generator.hpp"

namespace dlrmopt::memsim
{

/** Inputs of the Fig. 6 model. */
struct ReuseModelConfig
{
    traces::TraceConfig trace; //!< dataset + embedding parameters
    std::size_t dim = 128;     //!< embedding dimension (fp32)
    std::size_t cores = 1;     //!< concurrent cores (batch-per-core)
    std::size_t numBatches = 12;

    /** Cache capacities (bytes) to mark on the histogram; defaults to
     *  CSL L1D/L2/L3 when empty. */
    std::vector<std::uint64_t> cacheBytes;
};

/** Outputs of the Fig. 6 model. */
struct ReuseModelResult
{
    ReuseHistogram hist;       //!< row-granularity reuse distances
    std::vector<std::uint64_t> capacityVectors; //!< rows that fit/level
    std::vector<double> hitRates;               //!< hit rate per level
    std::uint64_t distinctRows = 0;

    double coldFraction() const { return hist.coldFraction(); }
};

/**
 * Runs the model: builds the interleaved multi-core row-id trace and
 * feeds it through the stack-distance analyzer.
 */
ReuseModelResult runReuseModel(const ReuseModelConfig& cfg);

} // namespace dlrmopt::memsim

#endif // DLRMOPT_MEMSIM_REUSE_MODEL_HPP
