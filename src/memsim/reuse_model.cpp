#include "memsim/reuse_model.hpp"
#include <algorithm>


namespace dlrmopt::memsim
{

ReuseModelResult
runReuseModel(const ReuseModelConfig& cfg)
{
    const std::size_t cores = std::max<std::size_t>(1, cfg.cores);
    const std::size_t tables = cfg.trace.tables;
    const std::size_t per_table =
        cfg.trace.batchSize * cfg.trace.lookups;
    const std::size_t per_batch = per_table * tables;

    traces::TraceGenerator gen(cfg.trace);

    // Interleave the per-core lookup streams round-robin, mirroring
    // the batch-per-core execution (Sec. 3.2): core c owns batches
    // c, c + cores, ...
    struct Walker
    {
        std::size_t batch;
        std::size_t pos = 0; //!< flat position within the batch
        bool done = false;
    };
    std::vector<Walker> w(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        w[c].batch = c;
        w[c].done = c >= cfg.numBatches;
    }

    ReuseDistanceAnalyzer analyzer(cfg.numBatches * per_batch);
    std::size_t active = cores;
    while (active > 0) {
        active = 0;
        for (std::size_t c = 0; c < cores; ++c) {
            if (w[c].done)
                continue;
            ++active;
            const std::size_t table = w[c].pos / per_table;
            const std::size_t off = w[c].pos % per_table;
            const std::uint64_t counter =
                static_cast<std::uint64_t>(w[c].batch) * per_table + off;
            const RowIndex row = gen.drawIndex(table, counter);
            // Qualify by table so rows of different tables never alias.
            const std::uint64_t key =
                static_cast<std::uint64_t>(table) * cfg.trace.rows +
                static_cast<std::uint64_t>(row);
            analyzer.access(key);

            if (++w[c].pos == per_batch) {
                w[c].pos = 0;
                w[c].batch += cores;
                if (w[c].batch >= cfg.numBatches)
                    w[c].done = true;
            }
        }
    }

    ReuseModelResult res;
    res.hist = analyzer.histogram();
    res.distinctRows = analyzer.distinctKeys();

    std::vector<std::uint64_t> levels = cfg.cacheBytes;
    if (levels.empty()) {
        levels = {32ull * 1024, 1024ull * 1024,
                  35ull * 1024 * 1024 + 768ull * 1024};
    }
    const std::uint64_t row_bytes = cfg.dim * sizeof(float);
    for (std::uint64_t bytes : levels) {
        const std::uint64_t vecs = bytes / row_bytes;
        res.capacityVectors.push_back(vecs);
        res.hitRates.push_back(res.hist.hitRateAtCapacity(vecs));
    }
    return res;
}

} // namespace dlrmopt::memsim
