#include "memsim/hw_prefetcher.hpp"

#include <cstdlib>

namespace dlrmopt::memsim
{

void
NextLinePrefetcher::observe(std::uint64_t addr, bool miss,
                            std::vector<std::uint64_t>& out)
{
    if (!miss)
        return;
    const std::uint64_t line = addr / _lineBytes;
    for (std::uint32_t d = 1; d <= _degree; ++d) {
        out.push_back((line + d) * _lineBytes);
        ++_issued;
    }
}

StridePrefetcher::StridePrefetcher(std::uint32_t line_bytes,
                                   std::size_t table_size,
                                   std::uint32_t degree)
    : _lineBytes(line_bytes), _degree(degree), _table(table_size)
{
}

void
StridePrefetcher::observe(std::uint64_t addr, bool miss,
                          std::vector<std::uint64_t>& out)
{
    (void)miss; // stride detection trains on hits too
    const std::uint64_t line = addr / _lineBytes;
    // 4 KiB-page-region tag approximates per-stream tracking without
    // PCs (the simulator has no instruction stream).
    const std::uint64_t region = line >> 6;
    StreamEntry& e = _table[region % _table.size()];
    ++_tick;

    if (e.valid && (e.lastLine >> 6) == region) {
        const std::int64_t stride =
            static_cast<std::int64_t>(line) -
            static_cast<std::int64_t>(e.lastLine);
        if (stride != 0 && stride == e.stride) {
            if (e.confidence < 4)
                ++e.confidence;
        } else {
            e.stride = stride;
            e.confidence = stride != 0 ? 1 : 0;
        }
        if (e.confidence >= 2 && e.stride != 0) {
            for (std::uint32_t d = 1; d <= _degree; ++d) {
                const std::int64_t target =
                    static_cast<std::int64_t>(line) + e.stride * d;
                if (target > 0) {
                    out.push_back(static_cast<std::uint64_t>(target) *
                                  _lineBytes);
                    ++_issued;
                }
            }
        }
    } else {
        e.stride = 0;
        e.confidence = 0;
    }
    e.lastLine = line;
    e.lastUse = _tick;
    e.valid = true;
}

} // namespace dlrmopt::memsim
