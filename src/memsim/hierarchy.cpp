#include "memsim/hierarchy.hpp"

#include <stdexcept>

namespace dlrmopt::memsim
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig& cfg)
    : _cfg(cfg)
{
    if (cfg.cores == 0)
        throw std::invalid_argument("hierarchy needs at least one core");
    if (cfg.sockets == 0 || cfg.sockets > cfg.cores)
        throw std::invalid_argument("bad socket count");
    _coresPerSocket = (cfg.cores + cfg.sockets - 1) / cfg.sockets;
    for (std::size_t c = 0; c < cfg.cores; ++c) {
        _l1.push_back(std::make_unique<Cache>(cfg.l1));
        _l2.push_back(std::make_unique<Cache>(cfg.l2));
    }
    for (std::size_t s = 0; s < cfg.sockets; ++s)
        _l3.push_back(std::make_unique<Cache>(cfg.l3));
}

CacheHierarchy::AccessResult
CacheHierarchy::access(std::size_t core, std::uint64_t addr)
{
    // Each level is probed and (on miss) filled in one fused scan —
    // NINE behaviour, no back-invalidation. Deeper levels' set rows
    // are host-prefetched up front so their scans don't serialize on
    // host memory latency.
    _l2[core]->hostPrefetch(addr);
    _l3[socketOf(core)]->hostPrefetch(addr);
    ++_stats.accesses[0];
    if (auto r = _l1[core]->accessFill(addr); r.hit) {
        ++_stats.hits[0];
        return {HitLevel::L1, r.flag};
    }

    ++_stats.accesses[1];
    if (auto r = _l2[core]->accessFill(addr); r.hit) {
        ++_stats.hits[1];
        return {HitLevel::L2, r.flag};
    }

    ++_stats.accesses[2];
    if (auto r = _l3[socketOf(core)]->accessFill(addr); r.hit) {
        ++_stats.hits[2];
        return {HitLevel::L3, r.flag};
    }

    ++_stats.dramFills;
    return {HitLevel::Dram, 0};
}

HitLevel
CacheHierarchy::prefetch(std::size_t core, std::uint64_t addr, bool fill_l1,
                         bool fill_l2, pfflag::Kind kind)
{
    // Prefetches probe without perturbing demand hit statistics.
    if (_l1[core]->contains(addr))
        return HitLevel::L1; // already where the demand will look

    HitLevel src;
    if (_l2[core]->contains(addr)) {
        // Line already in this core's L2; the prefetch just pulls it
        // closer (NINE: no need to touch the LLC).
        src = HitLevel::L2;
    } else {
        // Fused LLC probe + fill. The flag assumes a DRAM source
        // (the common cold case); if the line turned out to be LLC
        // resident, rewrite the annotation with the true source.
        Cache& llc = *_l3[socketOf(core)];
        const bool in_l3 = llc.insertProbe(
            addr, pfflag::make(kind, HitLevel::Dram));
        if (in_l3) {
            src = HitLevel::L3;
            llc.insert(addr, pfflag::make(kind, src));
        } else {
            src = HitLevel::Dram;
            ++_stats.dramFills;
        }
    }

    const std::uint8_t flag = pfflag::make(kind, src);
    if (fill_l2 && src != HitLevel::L2)
        _l2[core]->insert(addr, flag);
    if (fill_l1)
        _l1[core]->insert(addr, flag);
    return src;
}

} // namespace dlrmopt::memsim
