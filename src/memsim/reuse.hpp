/**
 * @file
 * Reuse-distance (LRU stack distance) analysis — the "model" of
 * Fig. 6 of the paper.
 *
 * Given an index access trace, computes for every access the number
 * of *distinct* elements touched since the previous access to the
 * same element (infinite for first-touch / cold accesses). Comparing
 * the distance distribution against a cache's capacity in elements
 * yields the hit rate a fully-associative LRU cache of that capacity
 * would achieve (Sec. 3.1.2, Fig. 7).
 */

#ifndef DLRMOPT_MEMSIM_REUSE_HPP
#define DLRMOPT_MEMSIM_REUSE_HPP

#include <cstdint>
#include <vector>

namespace dlrmopt::memsim
{

/**
 * Histogram of reuse distances in power-of-two bins.
 */
struct ReuseHistogram
{
    /** bins[i] counts accesses with distance in [2^i, 2^(i+1)).
     *  bins[0] covers distances 0 and 1. */
    std::vector<std::uint64_t> bins;

    std::uint64_t coldAccesses = 0;  //!< first touches (infinite dist)
    std::uint64_t totalAccesses = 0;

    /** Fraction of all accesses that are cold (Fig. 7 yellow marker). */
    double
    coldFraction() const
    {
        return totalAccesses ? static_cast<double>(coldAccesses) /
                                   static_cast<double>(totalAccesses)
                             : 0.0;
    }

    /**
     * Hit rate of a fully-associative LRU cache holding
     * @p capacity_elems elements: the fraction of accesses whose
     * reuse distance is strictly below the capacity.
     */
    double hitRateAtCapacity(std::uint64_t capacity_elems) const;

    /** Merges another histogram into this one. */
    void merge(const ReuseHistogram& other);
};

/**
 * Streaming stack-distance calculator. Feed accesses one at a time;
 * distances are exact (Bennett-Kruskal algorithm: hash map of last
 * positions + Fenwick tree over live positions, O(log n) per access).
 */
class ReuseDistanceAnalyzer
{
  public:
    /** @param capacity_hint Expected trace length (reserve sizing). */
    explicit ReuseDistanceAnalyzer(std::size_t capacity_hint = 0);

    /**
     * Records an access to @p key.
     *
     * @return The reuse distance, or -1 for a cold (first) access.
     */
    std::int64_t access(std::uint64_t key);

    /** Histogram of everything recorded so far, with exact counts. */
    ReuseHistogram histogram() const { return _hist; }

    std::uint64_t distinctKeys() const;

  private:
    void fenwickAdd(std::size_t pos, std::int64_t delta);
    std::int64_t fenwickSum(std::size_t pos) const;

    std::vector<std::int64_t> _tree;  //!< Fenwick over access positions
    std::vector<std::uint64_t> _lastPos; //!< open-addressing: position+1
    std::vector<std::uint64_t> _keys;
    std::vector<std::uint8_t> _used;
    std::size_t _mapSize = 0;
    std::size_t _mapCount = 0;
    std::uint64_t _time = 0;
    ReuseHistogram _hist;

    std::size_t findSlot(std::uint64_t key) const;
    void growMap();
};

/**
 * Convenience wrapper: exact reuse distance per access of @p trace
 * (-1 = cold). Used by tests to validate against a brute-force
 * reference.
 */
std::vector<std::int64_t>
computeStackDistances(const std::vector<std::uint64_t>& trace);

/** One-shot histogram over a full trace. */
ReuseHistogram computeReuseHistogram(const std::vector<std::uint64_t>& trace);

} // namespace dlrmopt::memsim

#endif // DLRMOPT_MEMSIM_REUSE_HPP
