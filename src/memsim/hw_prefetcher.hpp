/**
 * @file
 * Hardware prefetcher models.
 *
 * Off-the-shelf CPUs ship simple next-line and stride prefetchers
 * (Sec. 4.1 / [29] in the paper); they capture the sequential lines
 * inside one embedding row but not the indirect row-to-row pattern.
 * These models observe the demand line stream and emit prefetch
 * candidate addresses for the hierarchy to fill.
 */

#ifndef DLRMOPT_MEMSIM_HW_PREFETCHER_HPP
#define DLRMOPT_MEMSIM_HW_PREFETCHER_HPP

#include <cstdint>
#include <vector>

namespace dlrmopt::memsim
{

/**
 * Interface for hardware prefetchers: observe an access, propose
 * prefetch addresses.
 */
class HwPrefetcher
{
  public:
    virtual ~HwPrefetcher() = default;

    /**
     * Observes a demand access and appends prefetch candidate byte
     * addresses to @p out.
     *
     * @param addr Demand byte address.
     * @param miss Whether the demand access missed its cache level.
     * @param out Candidate list (not cleared).
     */
    virtual void observe(std::uint64_t addr, bool miss,
                         std::vector<std::uint64_t>& out) = 0;

    std::uint64_t issued() const { return _issued; }

  protected:
    std::uint64_t _issued = 0;
};

/**
 * Next-line prefetcher (L1-adjacent): on a miss to line X, prefetch
 * X+1. Catches the sequential walk over an embedding row's lines.
 */
class NextLinePrefetcher : public HwPrefetcher
{
  public:
    explicit NextLinePrefetcher(std::uint32_t line_bytes = 64,
                                std::uint32_t degree = 1)
        : _lineBytes(line_bytes), _degree(degree)
    {
    }

    void observe(std::uint64_t addr, bool miss,
                 std::vector<std::uint64_t>& out) override;

  private:
    std::uint32_t _lineBytes;
    std::uint32_t _degree;
};

/**
 * Stream/stride prefetcher (L2-style): tracks a small table of
 * recently seen streams; after observing the same line-stride twice
 * in a stream's region, prefetches ahead by the stride.
 */
class StridePrefetcher : public HwPrefetcher
{
  public:
    explicit StridePrefetcher(std::uint32_t line_bytes = 64,
                              std::size_t table_size = 16,
                              std::uint32_t degree = 2);

    void observe(std::uint64_t addr, bool miss,
                 std::vector<std::uint64_t>& out) override;

  private:
    struct StreamEntry
    {
        std::uint64_t lastLine = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t _lineBytes;
    std::uint32_t _degree;
    std::vector<StreamEntry> _table;
    std::uint64_t _tick = 0;
};

} // namespace dlrmopt::memsim

#endif // DLRMOPT_MEMSIM_HW_PREFETCHER_HPP
