/**
 * @file
 * Three-level cache hierarchy: private L1D and L2 per core, one
 * shared LLC. Models contents and hit levels; latency numbers are
 * attached by the platform timing model.
 */

#ifndef DLRMOPT_MEMSIM_HIERARCHY_HPP
#define DLRMOPT_MEMSIM_HIERARCHY_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "memsim/cache.hpp"

namespace dlrmopt::memsim
{

/** Where a demand access was satisfied. */
enum class HitLevel : std::uint8_t
{
    L1 = 0,
    L2 = 1,
    L3 = 2,
    Dram = 3,
};

/**
 * Annotation flags stored on cache lines to credit prefetches when a
 * demand access first touches a prefetched line. Encodes who issued
 * the prefetch and where the line was sourced from.
 */
namespace pfflag
{

enum Kind : std::uint8_t
{
    none = 0,
    sw = 1, //!< application-initiated software prefetch
    hw = 2, //!< hardware prefetcher
};

/** Builds a flag from prefetch kind and source level. */
constexpr std::uint8_t
make(Kind kind, HitLevel src)
{
    return static_cast<std::uint8_t>(
        (static_cast<std::uint8_t>(kind) << 3) |
        (static_cast<std::uint8_t>(src) + 1));
}

constexpr Kind
kindOf(std::uint8_t flag)
{
    return static_cast<Kind>(flag >> 3);
}

constexpr HitLevel
srcOf(std::uint8_t flag)
{
    return static_cast<HitLevel>((flag & 0x7) - 1);
}

} // namespace pfflag

/** Geometry of the whole hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1{32 * 1024, 8, 64};
    CacheConfig l2{1024 * 1024, 16, 64};
    CacheConfig l3{35 * 1024 * 1024 + 768 * 1024, 11, 64}; //!< CSL 35.75 MB
    std::size_t cores = 1;   //!< total cores across all sockets
    std::size_t sockets = 1; //!< each socket has its own LLC
};

/** Hit/access counters per level, aggregated over all cores. */
struct HierarchyStats
{
    std::array<std::uint64_t, 3> accesses{}; //!< per level L1/L2/L3
    std::array<std::uint64_t, 3> hits{};
    std::uint64_t dramFills = 0;

    double
    hitRate(HitLevel level) const
    {
        const auto l = static_cast<std::size_t>(level);
        return accesses[l] ? static_cast<double>(hits[l]) /
                                 static_cast<double>(accesses[l])
                           : 0.0;
    }
};

/**
 * Multi-core cache hierarchy with demand and prefetch access paths.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig& cfg);

    const HierarchyConfig& config() const { return _cfg; }

    /** Result of a demand access. */
    struct AccessResult
    {
        HitLevel level = HitLevel::Dram;
        std::uint8_t flag = 0; //!< consumed prefetch annotation, if any
    };

    /**
     * Demand access from @p core to byte address @p addr. Fills every
     * level on the way in (NINE behaviour: no back-invalidation). If
     * the hit line carries a prefetch annotation, it is consumed and
     * returned so the caller can credit the prefetch.
     *
     * @return The level that satisfied the access plus the flag.
     */
    AccessResult access(std::size_t core, std::uint64_t addr);

    /**
     * Prefetch fill from @p core. A line already resident in the
     * core's L1D is left untouched (the prefetch is useless).
     *
     * @param fill_l1 Insert into the core's L1D (T0 hint).
     * @param fill_l2 Insert into the core's L2 (T0/T1 hints).
     *                The LLC is always filled (all hints).
     * @param kind Annotation recorded on the filled lines.
     * @return The level the line was sourced from (Dram = the
     *         prefetch paid a DRAM transfer; L1 = useless).
     */
    HitLevel prefetch(std::size_t core, std::uint64_t addr, bool fill_l1,
                      bool fill_l2, pfflag::Kind kind);

    /** True when the line is already in the core's L1D. */
    bool
    inL1(std::size_t core, std::uint64_t addr) const
    {
        return _l1[core]->contains(addr);
    }

    const HierarchyStats& stats() const { return _stats; }
    void
    resetStats()
    {
        _stats = HierarchyStats{};
    }

    Cache& l1(std::size_t core) { return *_l1[core]; }
    Cache& l2(std::size_t core) { return *_l2[core]; }

    /** The LLC shared by @p core's socket. */
    Cache&
    l3(std::size_t core = 0)
    {
        return *_l3[socketOf(core)];
    }

    /** Socket index of a core (cores are striped contiguously). */
    std::size_t
    socketOf(std::size_t core) const
    {
        return core / _coresPerSocket;
    }

  private:
    HierarchyConfig _cfg;
    std::size_t _coresPerSocket = 1;
    std::vector<std::unique_ptr<Cache>> _l1;
    std::vector<std::unique_ptr<Cache>> _l2;
    std::vector<std::unique_ptr<Cache>> _l3; //!< one per socket
    HierarchyStats _stats;
};

} // namespace dlrmopt::memsim

#endif // DLRMOPT_MEMSIM_HIERARCHY_HPP
