#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>

namespace dlrmopt::serve
{

namespace
{

/** One scheduled attempt in the virtual-time event loop. */
struct Attempt
{
    double readyMs;       //!< earliest virtual start (arrival/backoff)
    std::uint64_t seq;    //!< tie-break for deterministic ordering
    std::uint64_t req;    //!< request id
    std::uint64_t tries;  //!< attempts already burned (0 = first)
    double arrivalMs;     //!< original arrival (latency baseline)
};

struct AttemptLater
{
    bool
    operator()(const Attempt& a, const Attempt& b) const
    {
        if (a.readyMs != b.readyMs)
            return a.readyMs > b.readyMs;
        return a.seq > b.seq;
    }
};

} // namespace

Server::Server(const core::DlrmModel& model,
               const sched::Topology& topo, const ServerConfig& cfg,
               const FaultInjector *fault)
    : _model(model), _cfg(cfg), _fault(fault), _pool(topo, cfg.pin)
{
    if (!(cfg.slaMs > 0.0) || !std::isfinite(cfg.slaMs))
        throw std::invalid_argument("Server: SLA must be positive");
    if (!(cfg.serviceMs > 0.0) || !std::isfinite(cfg.serviceMs))
        throw std::invalid_argument(
            "Server: serviceMs must be positive");
    if (cfg.backoffBaseMs < 0.0 ||
        cfg.backoffCapMs < cfg.backoffBaseMs) {
        throw std::invalid_argument(
            "Server: backoff cap must be >= base >= 0");
    }
}

double
Server::executeAttempt(std::size_t core, const core::Tensor& dense,
                const core::SparseBatch& sparse,
                const DegradeState& tier,
                const core::PrefetchSpec& pf, std::uint64_t req,
                std::uint64_t attempt)
{
    using Clock = std::chrono::steady_clock;
    const core::PrefetchSpec eff_pf =
        tier.prefetchEnabled ? pf : core::PrefetchSpec{};
    core::DlrmWorkspace ws;
    const auto t0 = Clock::now();

    if (core::usesMpHt(tier.scheme)) {
        // MP-HT stage colocation, exception-safe: the bottom promise
        // is settled on *every* exit path so the sibling can never
        // wait on it forever.
        auto bottom_done = std::make_shared<std::promise<void>>();
        auto bottom_fut = bottom_done->get_future().share();
        auto f1 = _pool.submit(core, [this, &dense, &ws, bottom_done] {
            try {
                _model.bottomForward(dense, ws.bottomOut);
                bottom_done->set_value();
            } catch (...) {
                bottom_done->set_exception(std::current_exception());
                throw;
            }
        });
        auto f2 = _pool.submit(
            core, [this, &sparse, &ws, bottom_fut, eff_pf, req,
                   attempt] {
                if (_fault)
                    _fault->maybeThrow(req, attempt);
                _model.embeddingForward(sparse, ws.embOut, eff_pf);
                bottom_fut.get();
                _model.interactionForward(ws.bottomOut, ws.embOut,
                                          sparse.batchSize,
                                          ws.interOut);
                _model.topForward(ws.interOut, ws.pred);
            });
        // Both tasks reference this frame's workspace: wait for both
        // before any exception can unwind it.
        f1.wait();
        f2.wait();
        f1.get();
        f2.get();
    } else {
        // Sequential degradation tier: one task, one thread.
        auto f = _pool.submit(
            core,
            [this, &dense, &sparse, &ws, eff_pf, req, attempt] {
                if (_fault)
                    _fault->maybeThrow(req, attempt);
                _model.forward(dense, sparse, ws, eff_pf);
            });
        f.wait();
        f.get();
    }
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

ServeStats
Server::serve(const core::Tensor& dense,
              const std::vector<core::SparseBatch>& batches,
              const std::vector<double>& arrivals_ms,
              const core::PrefetchSpec& pf)
{
    if (batches.empty())
        throw std::invalid_argument("Server: need at least one batch");

    const std::size_t cores = _pool.numCores();
    const std::size_t rows = _model.config().rows;

    DegradationPolicy policy(_cfg.degrade, _cfg.slaMs);

    // Dense inputs per effective batch size (tiers shrink batches).
    // std::map gives reference stability while tasks read entries.
    std::map<std::size_t, core::Tensor> dense_by_rows;
    const auto denseFor =
        [&](std::size_t n) -> const core::Tensor& {
        auto it = dense_by_rows.find(n);
        if (it == dense_by_rows.end()) {
            core::Tensor t(n, dense.cols());
            std::memcpy(t.data(), dense.data(),
                        n * dense.cols() * sizeof(float));
            it = dense_by_rows.emplace(n, std::move(t)).first;
        }
        return it->second;
    };

    std::priority_queue<Attempt, std::vector<Attempt>, AttemptLater>
        events;
    std::uint64_t seq = 0;
    for (std::size_t r = 0; r < arrivals_ms.size(); ++r) {
        events.push(Attempt{arrivals_ms[r], seq++, r, 0,
                            arrivals_ms[r]});
    }

    std::vector<double> free_at(cores, 0.0);
    ServeStats st;
    st.arrived = arrivals_ms.size();
    double busy = 0.0;
    double makespan = 0.0;

    while (!events.empty()) {
        const Attempt a = events.top();
        events.pop();

        // Earliest-free core, lowest index on ties (deterministic).
        std::size_t core = 0;
        for (std::size_t c = 1; c < cores; ++c) {
            if (free_at[c] < free_at[core])
                core = c;
        }

        const DegradeState tier = policy.state();
        const double start = std::max(free_at[core], a.readyMs);
        const double wait = start - a.readyMs;
        const double straggle =
            _fault ? _fault->serviceFactor(core) : 1.0;
        const double service =
            _cfg.serviceMs * tier.serviceFactor * straggle;

        // Admission control: shed on arrival when the projected
        // completion already misses the deadline. Retries are always
        // admitted — the work is already paid for.
        if (_cfg.admission && a.tries == 0 &&
            wait + service > _cfg.slaMs) {
            ++st.shed;
            continue;
        }

        // Real execution. Any throw — injected fault, bad_alloc,
        // IndexError from a poisoned index — lands here via the
        // pool's futures instead of killing the process.
        const core::SparseBatch& base =
            batches[a.req % batches.size()];
        const std::size_t eff_batch = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::floor(tier.batchFraction *
                              static_cast<double>(base.batchSize))));
        core::SparseBatch sparse = eff_batch < base.batchSize
            ? base.truncated(eff_batch)
            : base;
        if (_fault)
            sparse = _fault->maybeCorrupt(sparse, rows, a.req,
                                          a.tries);

        bool ok = true;
        try {
            st.execTotalMs += executeAttempt(
                core, denseFor(sparse.batchSize), sparse, tier, pf,
                a.req, a.tries);
        } catch (...) {
            ok = false;
        }

        // Failed or not, the attempt burned the core (virtually).
        const double end = start + service;
        free_at[core] = end;
        busy += service;
        makespan = std::max(makespan, end);

        if (ok) {
            ++st.served;
            const double latency = end - a.arrivalMs;
            st.latency.add(latency);
            policy.observe(latency);
        } else if (a.tries < _cfg.maxRetries) {
            ++st.retried;
            const double backoff = std::min(
                _cfg.backoffBaseMs *
                    static_cast<double>(1ull << a.tries),
                _cfg.backoffCapMs);
            events.push(Attempt{end + backoff, seq++, a.req,
                                a.tries + 1, a.arrivalMs});
        } else {
            ++st.failed;
        }
    }

    if (makespan > 0.0) {
        st.serverUtilization =
            busy / (makespan * static_cast<double>(cores));
    }
    st.degradeEscalations = policy.escalations();
    st.finalTier = policy.tier();
    return st;
}

} // namespace dlrmopt::serve
