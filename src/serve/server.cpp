#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>

namespace dlrmopt::serve
{

namespace
{

/** One scheduled attempt in the virtual-time event loop. */
struct Attempt
{
    double readyMs;       //!< earliest virtual start (arrival/backoff)
    std::uint64_t seq;    //!< tie-break for deterministic ordering
    std::uint64_t req;    //!< request id
    std::uint64_t tries;  //!< attempts already burned (0 = first)
    double arrivalMs;     //!< original arrival (latency baseline)
};

struct AttemptLater
{
    bool
    operator()(const Attempt& a, const Attempt& b) const
    {
        if (a.readyMs != b.readyMs)
            return a.readyMs > b.readyMs;
        return a.seq > b.seq;
    }
};

/**
 * Order-sensitive fingerprint of a prediction tensor: a mix64 chain
 * over the raw fp32 bit patterns. Two attempts fingerprint equal iff
 * their predictions are bitwise identical, which is how the
 * resilience tests assert "zero wrong answers served" against a
 * fault-free baseline.
 */
std::uint64_t
fingerprintPredictions(const core::Tensor& pred)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    const float *p = pred.data();
    const std::size_t n = pred.rows() * pred.cols();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t u;
        std::memcpy(&u, p + i, sizeof(u));
        h = dlrmopt::mix64(h ^ u);
    }
    return h;
}

} // namespace

const char *
instanceStateName(InstanceState s)
{
    switch (s) {
      case InstanceState::Up:
        return "Up";
      case InstanceState::Draining:
        return "Draining";
      case InstanceState::Down:
        return "Down";
      case InstanceState::WarmRestart:
        return "WarmRestart";
    }
    return "?";
}

Server::Server(const core::DlrmModel& model,
               const sched::Topology& topo, const ServerConfig& cfg,
               const FaultInjector *fault)
    : _model(model), _cfg(cfg), _fault(fault), _pool(topo, cfg.pin)
{
    if (!(cfg.slaMs > 0.0) || !std::isfinite(cfg.slaMs))
        throw std::invalid_argument("Server: SLA must be positive");
    cfg.service.validate();
    if (cfg.dtypeServiceEnabled) {
        cfg.serviceBf16.validate();
        cfg.serviceInt8.validate();
    }
    cfg.batching.validate();
    if (cfg.backoffBaseMs < 0.0 ||
        cfg.backoffCapMs < cfg.backoffBaseMs) {
        throw std::invalid_argument(
            "Server: backoff cap must be >= base >= 0");
    }
    if (cfg.streamed) {
        if (!cfg.batching.enabled) {
            throw std::invalid_argument(
                "Server: streamed dispatch requires batching.enabled "
                "(the streamed loop is a batched event loop)");
        }
        // Throws on an out-of-range gather fraction.
        StageServiceModel::split(cfg.service, cfg.gatherFraction);
    }
    // The Server knows its core count, so it can range-check the one
    // FaultConfig knob validate() alone cannot.
    if (fault)
        fault->config().validate(_pool.numCores());
    _activeCores = _pool.numCores();
}

void
Server::setActiveCores(std::size_t n)
{
    if (n > _pool.numCores()) {
        throw std::invalid_argument(
            "Server::setActiveCores: " + std::to_string(n) +
            " exceeds the instance's " +
            std::to_string(_pool.numCores()) + " cores");
    }
    _activeCores = n;
}

void
Server::beginDrain()
{
    if (_lifecycle != InstanceState::Up) {
        throw std::logic_error(
            std::string("Server::beginDrain: instance is ") +
            instanceStateName(_lifecycle) + ", expected Up");
    }
    _lifecycle = InstanceState::Draining;
    // All-or-nothing by default: no new work while draining. A
    // partial drain re-opens a smaller core group via
    // setActiveCores() right after.
    _activeCores = 0;
}

void
Server::cancelDrain()
{
    if (_lifecycle != InstanceState::Draining) {
        throw std::logic_error(
            std::string("Server::cancelDrain: instance is ") +
            instanceStateName(_lifecycle) + ", expected Draining");
    }
    _lifecycle = InstanceState::Up;
    _activeCores = _pool.numCores();
}

void
Server::markDown()
{
    if (_lifecycle != InstanceState::Draining) {
        throw std::logic_error(
            std::string("Server::markDown: instance is ") +
            instanceStateName(_lifecycle) + ", expected Draining");
    }
    _lifecycle = InstanceState::Down;
    _activeCores = 0;
}

void
Server::beginWarmRestart()
{
    if (_lifecycle != InstanceState::Down) {
        throw std::logic_error(
            std::string("Server::beginWarmRestart: instance is ") +
            instanceStateName(_lifecycle) + ", expected Down");
    }
    _lifecycle = InstanceState::WarmRestart;
}

void
Server::completeWarmRestart()
{
    if (_lifecycle != InstanceState::WarmRestart) {
        throw std::logic_error(
            std::string("Server::completeWarmRestart: instance is ") +
            instanceStateName(_lifecycle) + ", expected WarmRestart");
    }
    _lifecycle = InstanceState::Up;
    _activeCores = _pool.numCores();
    ++_restarts;
}

double
Server::executeAttempt(std::size_t core, const core::Tensor& dense,
                const core::SparseBatch& sparse,
                const DegradeState& tier,
                const core::PrefetchSpec& pf, std::uint64_t req,
                std::uint64_t attempt)
{
    return executeAttempt(core, dense, sparse, tier, pf, req, attempt,
                          _fault, nullptr);
}

double
Server::executeAttempt(std::size_t core, const core::Tensor& dense,
                const core::SparseBatch& sparse,
                const DegradeState& tier,
                const core::PrefetchSpec& pf, std::uint64_t req,
                std::uint64_t attempt, const FaultInjector *fault,
                std::uint64_t *pred_fp)
{
    using Clock = std::chrono::steady_clock;
    const core::PrefetchSpec eff_pf =
        tier.prefetchEnabled ? pf : core::PrefetchSpec{};
    const core::EmbDtype dtype = _cfg.effectiveDtype(tier);
    core::DlrmWorkspace ws;
    const auto t0 = Clock::now();

    if (core::usesMpHt(tier.scheme)) {
        // MP-HT stage colocation, exception-safe: the bottom promise
        // is settled on *every* exit path so the sibling can never
        // wait on it forever.
        auto bottom_done = std::make_shared<std::promise<void>>();
        auto bottom_fut = bottom_done->get_future().share();
        auto f1 = _pool.submit(
            core, [this, &dense, &ws, bottom_done, dtype] {
                try {
                    _model.bottomForward(dense, ws.bottomOut, dtype);
                    bottom_done->set_value();
                } catch (...) {
                    bottom_done->set_exception(
                        std::current_exception());
                    throw;
                }
            });
        auto f2 = _pool.submit(
            core, [this, &sparse, &ws, bottom_fut, eff_pf, req,
                   attempt, fault, dtype] {
                if (fault)
                    fault->maybeThrow(req, attempt);
                _model.embeddingForward(sparse, ws.embOut, eff_pf,
                                        dtype, _hotTier.get());
                bottom_fut.get();
                _model.interactionForward(ws.bottomOut, ws.embOut,
                                          sparse.batchSize,
                                          ws.interOut);
                _model.topForward(ws.interOut, ws.pred, dtype);
            });
        // Both tasks reference this frame's workspace: wait for both
        // before any exception can unwind it.
        f1.wait();
        f2.wait();
        f1.get();
        f2.get();
    } else {
        // Sequential degradation tier: one task, one thread.
        auto f = _pool.submit(
            core, [this, &dense, &sparse, &ws, eff_pf, req, attempt,
                   fault, dtype] {
                if (fault)
                    fault->maybeThrow(req, attempt);
                _model.forward(dense, sparse, ws, eff_pf, dtype,
                               _hotTier.get());
            });
        f.wait();
        f.get();
    }
    if (pred_fp)
        *pred_fp = fingerprintPredictions(ws.pred);
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

ServeStats
Server::serve(const core::Tensor& dense,
              const std::vector<core::SparseBatch>& batches,
              const std::vector<double>& arrivals_ms,
              const core::PrefetchSpec& pf)
{
    if (batches.empty())
        throw std::invalid_argument("Server: need at least one batch");
    if (_lifecycle != InstanceState::Up) {
        throw std::logic_error(
            std::string("Server::serve: instance is ") +
            instanceStateName(_lifecycle) + ", not Up");
    }

    if (_cfg.batching.enabled) {
        if (_cfg.streamed)
            return serveStreamed(dense, batches, arrivals_ms, pf);
        return serveBatched(dense, batches, arrivals_ms, pf);
    }

    const std::size_t cores = _pool.numCores();
    const std::size_t rows = _model.config().rows;

    DegradationPolicy policy(_cfg.degrade, _cfg.slaMs);

    // Dense inputs per effective batch size (tiers shrink batches).
    // std::map gives reference stability while tasks read entries.
    std::map<std::size_t, core::Tensor> dense_by_rows;
    const auto denseFor =
        [&](std::size_t n) -> const core::Tensor& {
        auto it = dense_by_rows.find(n);
        if (it == dense_by_rows.end()) {
            core::Tensor t(n, dense.cols());
            std::memcpy(t.data(), dense.data(),
                        n * dense.cols() * sizeof(float));
            it = dense_by_rows.emplace(n, std::move(t)).first;
        }
        return it->second;
    };

    std::priority_queue<Attempt, std::vector<Attempt>, AttemptLater>
        events;
    std::uint64_t seq = 0;
    for (std::size_t r = 0; r < arrivals_ms.size(); ++r) {
        events.push(Attempt{arrivals_ms[r], seq++, r, 0,
                            arrivals_ms[r]});
    }

    std::vector<double> free_at(cores, 0.0);
    ServeStats st;
    st.arrived = arrivals_ms.size();
    double busy = 0.0;
    double makespan = 0.0;

    while (!events.empty()) {
        const Attempt a = events.top();
        events.pop();

        // Earliest-free core, lowest index on ties (deterministic).
        std::size_t core = 0;
        for (std::size_t c = 1; c < cores; ++c) {
            if (free_at[c] < free_at[core])
                core = c;
        }

        const DegradeState tier = policy.state();
        const core::EmbDtype dtype = _cfg.effectiveDtype(tier);
        const double start = std::max(free_at[core], a.readyMs);
        const double wait = start - a.readyMs;
        const double straggle =
            _fault ? _fault->serviceFactor(core) : 1.0;
        const core::SparseBatch& base =
            batches[a.req % batches.size()];
        const std::size_t eff_batch = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::floor(tier.batchFraction *
                              static_cast<double>(base.batchSize))));
        const double service =
            _cfg.serviceModelFor(dtype).serviceMs(eff_batch) *
            _cfg.tierServiceFactor(tier) * straggle;

        // Admission control: shed on arrival when the projected
        // completion already misses the deadline. Retries are always
        // admitted — the work is already paid for.
        if (_cfg.admission && a.tries == 0 &&
            wait + service > _cfg.slaMs) {
            ++st.shed;
            continue;
        }

        // Real execution. Any throw — injected fault, bad_alloc,
        // IndexError from a poisoned index — lands here via the
        // pool's futures instead of killing the process.
        core::SparseBatch sparse = eff_batch < base.batchSize
            ? base.truncated(eff_batch)
            : base;
        if (_fault)
            sparse = _fault->maybeCorrupt(sparse, rows, a.req,
                                          a.tries);

        bool ok = true;
        try {
            st.execTotalMs += executeAttempt(
                core, denseFor(sparse.batchSize), sparse, tier, pf,
                a.req, a.tries);
        } catch (...) {
            ok = false;
        }

        // Failed or not, the attempt burned the core (virtually).
        ++st.dispatches;
        if (dtype != core::EmbDtype::Fp32)
            ++st.quantDispatches;
        const double end = start + service;
        free_at[core] = end;
        busy += service;
        makespan = std::max(makespan, end);

        if (ok) {
            ++st.served;
            const double latency = end - a.arrivalMs;
            st.latency.add(latency);
            policy.observe(latency);
        } else if (a.tries < _cfg.maxRetries) {
            ++st.retried;
            const double backoff = std::min(
                _cfg.backoffBaseMs *
                    static_cast<double>(1ull << a.tries),
                _cfg.backoffCapMs);
            events.push(Attempt{end + backoff, seq++, a.req,
                                a.tries + 1, a.arrivalMs});
        } else {
            ++st.failed;
        }
    }

    st.makespanMs = makespan;
    if (makespan > 0.0) {
        st.serverUtilization =
            busy / (makespan * static_cast<double>(cores));
    }
    st.degradeEscalations = policy.escalations();
    st.finalTier = policy.tier();
    return st;
}

double
Server::executeBatchedAttempt(
    std::size_t core,
    const std::vector<const core::SparseBatch *>& parts,
    const std::vector<const core::Tensor *>& dense_parts,
    const DegradeState& tier, const core::PrefetchSpec& pf)
{
    return executeBatchedAttempt(core, parts, dense_parts, tier, pf,
                                 _model);
}

double
Server::executeBatchedAttempt(
    std::size_t core,
    const std::vector<const core::SparseBatch *>& parts,
    const std::vector<const core::Tensor *>& dense_parts,
    const DegradeState& tier, const core::PrefetchSpec& pf,
    const core::DlrmModel& model)
{
    using Clock = std::chrono::steady_clock;
    const core::PrefetchSpec eff_pf =
        tier.prefetchEnabled ? pf : core::PrefetchSpec{};
    const core::EmbDtype dtype = _cfg.effectiveDtype(tier);

    // Grow the persistent workspace when this group exceeds its
    // current capacity (direct fleet callers skip serveBatched's
    // upfront sizing); steady-state dispatches stay allocation-free.
    std::size_t total = 0;
    std::size_t max_lookups = 1;
    for (const core::SparseBatch *p : parts) {
        total += p->batchSize;
        for (const auto& v : p->indices) {
            max_lookups = std::max<std::size_t>(
                max_lookups,
                (v.size() + p->batchSize - 1) / p->batchSize);
        }
    }
    if (_batchWs.maxBatch() < total)
        _batchWs.reserve(model, total, max_lookups);

    // Coalesce on the serving thread (pure data movement into the
    // persistent workspace), run the fused forward on the pool.
    const core::SparseBatch& merged =
        _batchWs.coalesce(parts, dense_parts);
    const core::Tensor& dense = _batchWs.stagedDense();

    const auto t0 = Clock::now();
    auto f = _pool.submit(core, [this, &model, &dense, &merged, eff_pf,
                                 dtype] {
        _batchWs.forward(model, dense, merged, eff_pf, dtype,
                         _hotTier.get());
    });
    f.wait();
    f.get();
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

ServeStats
Server::serveBatched(const core::Tensor& dense,
                     const std::vector<core::SparseBatch>& batches,
                     const std::vector<double>& arrivals_ms,
                     const core::PrefetchSpec& pf)
{
    const std::size_t cores = _pool.numCores();
    const std::size_t rows = _model.config().rows;

    DegradationPolicy policy(_cfg.degrade, _cfg.slaMs);

    // Size the persistent workspace for the largest possible
    // coalesced dispatch; every later reshape stays within capacity.
    std::size_t max_req_batch = 1;
    std::size_t max_lookups = 1;
    for (const auto& b : batches) {
        max_req_batch = std::max(max_req_batch, b.batchSize);
        for (const auto& v : b.indices) {
            max_lookups = std::max<std::size_t>(
                max_lookups,
                (v.size() + b.batchSize - 1) / b.batchSize);
        }
    }
    const std::size_t max_coalesced =
        max_req_batch * _cfg.batching.maxRequests;
    if (_batchWs.maxBatch() < max_coalesced)
        _batchWs.reserve(_model, max_coalesced, max_lookups);

    // Dense inputs per request batch size, reference-stable.
    std::map<std::size_t, core::Tensor> dense_by_rows;
    const auto denseFor =
        [&](std::size_t n) -> const core::Tensor& {
        auto it = dense_by_rows.find(n);
        if (it == dense_by_rows.end()) {
            core::Tensor t(n, dense.cols());
            std::memcpy(t.data(), dense.data(),
                        n * dense.cols() * sizeof(float));
            it = dense_by_rows.emplace(n, std::move(t)).first;
        }
        return it->second;
    };

    BatchQueue queue(_cfg.batching);
    std::uint64_t seq = 0;
    for (std::size_t r = 0; r < arrivals_ms.size(); ++r) {
        const auto& b = batches[r % batches.size()];
        queue.push(PendingRequest{arrivals_ms[r], seq++, r, 0,
                                  arrivals_ms[r], b.batchSize});
    }

    std::vector<double> free_at(cores, 0.0);
    ServeStats st;
    st.arrived = arrivals_ms.size();
    double busy = 0.0;
    double makespan = 0.0;

    // Reused per-dispatch scratch (cleared, never shrunk).
    std::vector<PendingRequest> members;
    std::vector<const core::SparseBatch *> parts;
    std::vector<const core::Tensor *> dense_parts;
    std::vector<std::size_t> member_sizes;
    std::vector<char> member_ok;
    std::vector<core::SparseBatch> corrupted;

    while (!queue.empty()) {
        // Earliest-free core, lowest index on ties (deterministic).
        std::size_t core = 0;
        for (std::size_t c = 1; c < cores; ++c) {
            if (free_at[c] < free_at[core])
                core = c;
        }

        const DegradeState tier = policy.state();
        const core::EmbDtype dtype = _cfg.effectiveDtype(tier);
        const double straggle =
            _fault ? _fault->serviceFactor(core) : 1.0;

        // Degradation shrinks how much we coalesce before anything
        // is shed: less batching trims the service estimate, which
        // keeps marginal requests admissible.
        const std::size_t cap = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::floor(tier.batchFraction *
                              static_cast<double>(
                                  _cfg.batching.maxRequests))));

        // Quantized tiers price with their own service model when
        // dtype pricing is enabled (cheaper per sample, so marginal
        // requests stay admissible — precision drops before work is
        // shed).
        const ServiceModel& tier_service =
            _cfg.serviceModelFor(dtype);
        queue.nextBatch(free_at[core], cap, _cfg.slaMs, tier_service,
                        straggle, members);

        double latest_ready = members.front().readyMs;
        std::size_t total_samples = 0;
        for (const auto& m : members) {
            latest_ready = std::max(latest_ready, m.readyMs);
            total_samples += m.samples;
        }
        const double start = std::max(free_at[core], latest_ready);
        const double service =
            tier_service.serviceMs(total_samples) * straggle;

        // Admission control: a solo head on its first try whose
        // projected completion misses the deadline is shed (multi-
        // member groups are deadline-feasible by construction, and
        // retries are always admitted).
        if (_cfg.admission && members.size() == 1 &&
            members.front().tries == 0 &&
            start + service >
                members.front().arrivalMs + _cfg.slaMs) {
            ++st.shed;
            continue;
        }

        // Per-member fault resolution *before* the fused forward, so
        // one poisoned request fails alone instead of taking its
        // batch siblings down with it. Hits burn the member's attempt
        // exactly like the unbatched path.
        parts.clear();
        dense_parts.clear();
        member_sizes.clear();
        member_ok.assign(members.size(), 1);
        corrupted.clear();
        if (_fault)
            corrupted.reserve(members.size());
        for (std::size_t i = 0; i < members.size(); ++i) {
            const auto& m = members[i];
            const core::SparseBatch *sparse =
                &batches[m.req % batches.size()];
            if (_fault) {
                try {
                    _fault->maybeThrow(m.req, m.tries);
                } catch (...) {
                    member_ok[i] = 0;
                    continue;
                }
                corrupted.push_back(_fault->maybeCorrupt(
                    *sparse, rows, m.req, m.tries));
                sparse = &corrupted.back();
                if (!sparse->valid(rows)) {
                    // Poisoned index: the bounds-checked kernel would
                    // raise IndexError; fail the member pre-dispatch.
                    member_ok[i] = 0;
                    continue;
                }
            }
            parts.push_back(sparse);
            dense_parts.push_back(&denseFor(m.samples));
            member_sizes.push_back(m.samples);
        }

        bool exec_ok = true;
        if (!parts.empty()) {
            try {
                st.execTotalMs += executeBatchedAttempt(
                    core, parts, dense_parts, tier, pf);
                core::splitPredictions(_batchWs.predictions(),
                                       member_sizes, _splitScratch);
            } catch (...) {
                exec_ok = false;
            }
        }

        // The dispatch burned the core whether or not members failed.
        ++st.dispatches;
        if (dtype != core::EmbDtype::Fp32)
            ++st.quantDispatches;
        const double end = start + service;
        free_at[core] = end;
        busy += service;
        makespan = std::max(makespan, end);

        for (std::size_t i = 0; i < members.size(); ++i) {
            const auto& m = members[i];
            const bool ok = member_ok[i] && exec_ok;
            if (ok) {
                ++st.served;
                const double latency = end - m.arrivalMs;
                st.latency.add(latency);
                policy.observe(latency);
            } else if (m.tries < _cfg.maxRetries) {
                ++st.retried;
                const double backoff = std::min(
                    _cfg.backoffBaseMs *
                        static_cast<double>(1ull << m.tries),
                    _cfg.backoffCapMs);
                queue.push(PendingRequest{end + backoff, seq++, m.req,
                                          m.tries + 1, m.arrivalMs,
                                          m.samples});
            } else {
                ++st.failed;
            }
        }
    }

    st.makespanMs = makespan;
    if (makespan > 0.0) {
        st.serverUtilization =
            busy / (makespan * static_cast<double>(cores));
    }
    st.degradeEscalations = policy.escalations();
    st.finalTier = policy.tier();
    return st;
}

ServeStats
Server::serveStreamed(const core::Tensor& dense,
                      const std::vector<core::SparseBatch>& batches,
                      const std::vector<double>& arrivals_ms,
                      const core::PrefetchSpec& pf)
{
    using Clock = std::chrono::steady_clock;
    constexpr std::size_t kNoSet =
        std::numeric_limits<std::size_t>::max();

    const std::size_t cores = _pool.numCores();
    const std::size_t rows = _model.config().rows;

    // Lane assignment mirrors Topology::pipelineSplit: the gather
    // lane takes the first (larger) core group, the compute lane the
    // first core of the second group. With one core both lanes share
    // it and every dispatch collapses to sequential.
    const std::size_t gather_core = 0;
    const std::size_t compute_core = cores > 1 ? (cores + 1) / 2 : 0;

    const StageServiceModel stages =
        StageServiceModel::split(_cfg.service, _cfg.gatherFraction);

    DegradationPolicy policy(_cfg.degrade, _cfg.slaMs);

    // Size the persistent workspace for the largest possible
    // coalesced dispatch; every later reshape stays within capacity.
    std::size_t max_req_batch = 1;
    std::size_t max_lookups = 1;
    for (const auto& b : batches) {
        max_req_batch = std::max(max_req_batch, b.batchSize);
        for (const auto& v : b.indices) {
            max_lookups = std::max<std::size_t>(
                max_lookups,
                (v.size() + b.batchSize - 1) / b.batchSize);
        }
    }
    const std::size_t max_coalesced =
        max_req_batch * _cfg.batching.maxRequests;
    if (_batchWs.maxBatch() < max_coalesced)
        _batchWs.reserve(_model, max_coalesced, max_lookups);
    _batchWs.resetRotation();

    // Dense inputs per request batch size, reference-stable.
    std::map<std::size_t, core::Tensor> dense_by_rows;
    const auto denseFor =
        [&](std::size_t n) -> const core::Tensor& {
        auto it = dense_by_rows.find(n);
        if (it == dense_by_rows.end()) {
            core::Tensor t(n, dense.cols());
            std::memcpy(t.data(), dense.data(),
                        n * dense.cols() * sizeof(float));
            it = dense_by_rows.emplace(n, std::move(t)).first;
        }
        return it->second;
    };

    BatchQueue queue(_cfg.batching);
    std::uint64_t seq = 0;
    for (std::size_t r = 0; r < arrivals_ms.size(); ++r) {
        const auto& b = batches[r % batches.size()];
        queue.push(PendingRequest{arrivals_ms[r], seq++, r, 0,
                                  arrivals_ms[r], b.batchSize});
    }

    ServeStats st;
    st.arrived = arrivals_ms.size();
    double gather_free = 0.0;
    double compute_free = 0.0;
    double gather_busy = 0.0;
    double compute_busy = 0.0;
    double makespan = 0.0;

    // Compute-end times of the last two dispatches: gather k may not
    // start before compute k-2 finishes (its StageBuffers set is
    // still being read until then — the two-set ring constraint).
    double ring[core::ForwardWorkspace::numSets] = {0.0, 0.0};
    std::size_t dispatch_idx = 0;

    // The in-flight dispatch: gathered into a StageBuffers set, its
    // compute stage not yet run. Retired when that compute finishes.
    struct Inflight
    {
        std::vector<PendingRequest> members;
        std::vector<char> ok;           //!< per-member pre-dispatch ok
        std::vector<std::size_t> sizes; //!< sizes of dispatched parts
        std::size_t set = 0;            //!< staged StageBuffers set
        bool gatherOk = false;          //!< gather stage succeeded
        double endMs = 0.0;             //!< virtual compute-stage end
        bool active = false;
    };
    Inflight pending;

    // Reused per-dispatch scratch (cleared, never shrunk).
    std::vector<PendingRequest> members;
    std::vector<const core::SparseBatch *> parts;
    std::vector<const core::Tensor *> dense_parts;
    std::vector<std::size_t> member_sizes;
    std::vector<char> member_ok;
    std::vector<core::SparseBatch> corrupted;

    // Retires the in-flight dispatch: members whose pre-dispatch
    // resolution, gather stage, and compute stage all succeeded are
    // served at its virtual compute end; the rest retry or fail.
    const auto retire = [&](bool compute_ok) {
        for (std::size_t i = 0; i < pending.members.size(); ++i) {
            const auto& m = pending.members[i];
            const bool ok =
                pending.ok[i] && pending.gatherOk && compute_ok;
            if (ok) {
                ++st.served;
                const double latency = pending.endMs - m.arrivalMs;
                st.latency.add(latency);
                policy.observe(latency);
            } else if (m.tries < _cfg.maxRetries) {
                ++st.retried;
                const double backoff = std::min(
                    _cfg.backoffBaseMs *
                        static_cast<double>(1ull << m.tries),
                    _cfg.backoffCapMs);
                queue.push(PendingRequest{pending.endMs + backoff,
                                          seq++, m.req, m.tries + 1,
                                          m.arrivalMs, m.samples});
            } else {
                ++st.failed;
            }
        }
        pending.active = false;
    };

    // Runs the in-flight dispatch's compute stage alone (pipeline
    // drain: queue empty, tier collapse, or end of session).
    const auto drainPending = [&]() {
        if (!pending.active)
            return;
        bool compute_ok = pending.gatherOk && pending.set != kNoSet;
        if (compute_ok) {
            const auto t0 = Clock::now();
            auto f = _pool.submit(
                compute_core, [this, set = pending.set] {
                    _batchWs.stageCompute(_model, set);
                });
            f.wait();
            try {
                f.get();
            } catch (...) {
                compute_ok = false;
            }
            st.execTotalMs +=
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          t0)
                    .count();
            if (compute_ok) {
                core::splitPredictions(
                    _batchWs.predictions(pending.set), pending.sizes,
                    _splitScratch);
            }
        }
        retire(compute_ok);
    };

    while (!queue.empty() || pending.active) {
        if (queue.empty()) {
            drainPending();
            continue;
        }

        const DegradeState tier = policy.state();
        const core::EmbDtype dtype = _cfg.effectiveDtype(tier);
        const bool overlap = core::usesMpHt(tier.scheme) && cores > 1;
        // Tier collapse: finish the in-flight stage before running
        // sequential dispatches (the pipeline empties).
        if (!overlap)
            drainPending();

        const double gather_straggle =
            _fault ? _fault->serviceFactor(gather_core) : 1.0;
        const double compute_straggle =
            _fault ? _fault->serviceFactor(compute_core) : 1.0;

        // Degradation shrinks how much we coalesce before anything
        // is shed, exactly like serveBatched.
        const std::size_t cap = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::floor(tier.batchFraction *
                              static_cast<double>(
                                  _cfg.batching.maxRequests))));

        // Group feasibility is priced with the *sequential* model:
        // a dispatch entering an empty pipeline pays both stages.
        queue.nextBatch(gather_free, cap, _cfg.slaMs, _cfg.service,
                        gather_straggle, members);

        double latest_ready = members.front().readyMs;
        std::size_t total_samples = 0;
        for (const auto& m : members) {
            latest_ready = std::max(latest_ready, m.readyMs);
            total_samples += m.samples;
        }

        const double g_ms = stages.gatherMs(total_samples) *
                            tier.serviceFactor * gather_straggle;
        const double c_ms = stages.computeMs(total_samples) *
                            tier.serviceFactor * compute_straggle;

        double gather_start, gather_end, compute_start, compute_end;
        if (overlap) {
            gather_start =
                std::max({gather_free, latest_ready,
                          ring[dispatch_idx %
                               core::ForwardWorkspace::numSets]});
            gather_end = gather_start + g_ms;
            compute_start = std::max(compute_free, gather_end);
            compute_end = compute_start + c_ms;
        } else {
            gather_start = std::max({gather_free, compute_free,
                                     latest_ready});
            gather_end = gather_start + g_ms;
            compute_start = gather_end;
            compute_end = compute_start + c_ms;
        }

        // Admission control: a solo head on its first try whose
        // projected *pipelined* completion misses the deadline is
        // shed (multi-member groups are deadline-feasible by
        // construction, and retries are always admitted).
        if (_cfg.admission && members.size() == 1 &&
            members.front().tries == 0 &&
            compute_end > members.front().arrivalMs + _cfg.slaMs) {
            ++st.shed;
            continue;
        }

        // Per-member fault resolution before anything is staged, so
        // one poisoned request fails alone instead of taking its
        // batch siblings down with it.
        parts.clear();
        dense_parts.clear();
        member_sizes.clear();
        member_ok.assign(members.size(), 1);
        corrupted.clear();
        if (_fault)
            corrupted.reserve(members.size());
        for (std::size_t i = 0; i < members.size(); ++i) {
            const auto& m = members[i];
            const core::SparseBatch *sparse =
                &batches[m.req % batches.size()];
            if (_fault) {
                try {
                    _fault->maybeThrow(m.req, m.tries);
                } catch (...) {
                    member_ok[i] = 0;
                    continue;
                }
                corrupted.push_back(_fault->maybeCorrupt(
                    *sparse, rows, m.req, m.tries));
                sparse = &corrupted.back();
                if (!sparse->valid(rows)) {
                    member_ok[i] = 0;
                    continue;
                }
            }
            parts.push_back(sparse);
            dense_parts.push_back(&denseFor(m.samples));
            member_sizes.push_back(m.samples);
        }

        // The dispatch burns both lanes whether or not members
        // failed (matching serveBatched's accounting).
        ++st.dispatches;
        if (dtype != core::EmbDtype::Fp32)
            ++st.quantDispatches;
        gather_free = gather_end;
        compute_free = compute_end;
        gather_busy += g_ms;
        compute_busy += c_ms;
        makespan = std::max(makespan, compute_end);
        ring[dispatch_idx % core::ForwardWorkspace::numSets] =
            compute_end;
        ++dispatch_idx;

        if (overlap) {
            // Really overlapped: this dispatch's gather runs on the
            // gather lane while the in-flight dispatch's compute runs
            // on the compute lane — disjoint StageBuffers sets.
            std::size_t staged = kNoSet;
            bool gather_ok = true;
            bool compute_ok = true;
            const auto t0 = Clock::now();
            std::future<void> gf, cf;
            if (!parts.empty()) {
                gf = _pool.submit(gather_core, [&] {
                    const core::PrefetchSpec eff_pf =
                        tier.prefetchEnabled ? pf
                                             : core::PrefetchSpec{};
                    staged = _batchWs.stageGather(_model, parts,
                                                  dense_parts, eff_pf,
                                                  dtype,
                                                  _hotTier.get());
                });
            }
            const bool run_compute = pending.active &&
                                     pending.gatherOk &&
                                     pending.set != kNoSet;
            if (run_compute) {
                cf = _pool.submit(compute_core,
                                  [this, set = pending.set] {
                                      _batchWs.stageCompute(_model,
                                                            set);
                                  });
            }
            if (gf.valid())
                gf.wait();
            if (cf.valid())
                cf.wait();
            try {
                if (gf.valid())
                    gf.get();
            } catch (...) {
                gather_ok = false;
            }
            try {
                if (cf.valid())
                    cf.get();
            } catch (...) {
                compute_ok = false;
            }
            st.execTotalMs +=
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          t0)
                    .count();
            if (pending.active) {
                const bool ok = run_compute && compute_ok;
                if (ok) {
                    core::splitPredictions(
                        _batchWs.predictions(pending.set),
                        pending.sizes, _splitScratch);
                }
                retire(ok);
            }
            pending.members.swap(members);
            pending.ok.swap(member_ok);
            pending.sizes.swap(member_sizes);
            pending.set = staged;
            pending.gatherOk = gather_ok && staged != kNoSet;
            pending.endMs = compute_end;
            pending.active = true;
        } else {
            // Sequential tier (or a single core): both stages back
            // to back on the gather lane, retired immediately.
            bool ok = !parts.empty();
            std::size_t staged = kNoSet;
            if (!parts.empty()) {
                const auto t0 = Clock::now();
                auto f = _pool.submit(gather_core, [&] {
                    const core::PrefetchSpec eff_pf =
                        tier.prefetchEnabled ? pf
                                             : core::PrefetchSpec{};
                    const std::size_t s = _batchWs.stageGather(
                        _model, parts, dense_parts, eff_pf, dtype,
                        _hotTier.get());
                    _batchWs.stageCompute(_model, s);
                    staged = s;
                });
                f.wait();
                try {
                    f.get();
                } catch (...) {
                    ok = false;
                }
                st.execTotalMs +=
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
                if (ok && staged != kNoSet) {
                    core::splitPredictions(
                        _batchWs.predictions(staged), member_sizes,
                        _splitScratch);
                }
            }
            pending.members.swap(members);
            pending.ok.swap(member_ok);
            pending.sizes.swap(member_sizes);
            pending.set = staged;
            pending.gatherOk = ok;
            pending.endMs = compute_end;
            pending.active = true;
            retire(ok);
        }
    }
    drainPending();

    st.makespanMs = makespan;
    st.gatherBusyMs = gather_busy;
    st.computeBusyMs = compute_busy;
    if (makespan > 0.0) {
        const double lanes = cores > 1 ? 2.0 : 1.0;
        st.serverUtilization =
            (gather_busy + compute_busy) / (makespan * lanes);
    }
    st.degradeEscalations = policy.escalations();
    st.finalTier = policy.tier();
    return st;
}

} // namespace dlrmopt::serve
