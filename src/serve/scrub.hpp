/**
 * @file
 * Background checksum scrubbing over the shared EmbeddingStore.
 *
 * The on-demand integrity path (Router's IntegrityConfig) verifies
 * only the blocks a request's lookups touch, so a bit flip in a cold
 * block sits undetected until an unlucky request lands on it — by
 * which time a long-tail of requests may already have raced past it.
 * An EmbeddingScrubber closes that gap the way production memory
 * scrubbers do: on a periodic idle tick of the virtual clock it
 * verifies the next few blocks of a round-robin sweep over every
 * (table, block) pair, repairing (regenerating the as-built bytes)
 * what it finds. Detection latency for *any* flipped bit is bounded
 * by one sweep period instead of by request luck.
 *
 * Like every resilience component here, the scrubber is deterministic
 * on the virtual clock: scrub ticks land at scripted times, the sweep
 * order is fixed, and the coverage counters are bit-reproducible.
 */

#ifndef DLRMOPT_SERVE_SCRUB_HPP
#define DLRMOPT_SERVE_SCRUB_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/embedding_store.hpp"
#include "core/hot_tier.hpp"

namespace dlrmopt::serve
{

/** Background-scrub knobs. */
struct ScrubConfig
{
    bool enabled = false;

    /** Virtual ms between scrub ticks. */
    double intervalMs = 10.0;

    /** Blocks verified per tick. With numBlocks() * numTables() total
     *  blocks, one full sweep takes ceil(total / blocksPerTick) ticks
     *  — the worst-case detection latency for a silent flip. */
    std::size_t blocksPerTick = 4;

    /** Regenerate a corrupt block's as-built bytes on detection;
     *  false only counts (verify-only scrub over a const store). */
    bool repair = true;

    /** @throws std::invalid_argument on a non-positive interval or
     *          zero blocksPerTick. */
    void validate() const;
};

/**
 * Round-robin block scrubber over one EmbeddingStore.
 */
class EmbeddingScrubber
{
  public:
    /**
     * Verify-only scrubber: detects and counts, never repairs.
     *
     * @throws std::invalid_argument when cfg fails validate(), the
     *         store is null, or cfg.repair is set (a const store
     *         cannot be repaired).
     */
    EmbeddingScrubber(std::shared_ptr<const core::EmbeddingStore> store,
                      const ScrubConfig& cfg);

    /**
     * Repairing scrubber over a mutable store handle.
     *
     * @throws std::invalid_argument when cfg fails validate() or the
     *         store is null.
     */
    EmbeddingScrubber(std::shared_ptr<core::EmbeddingStore> store,
                      const ScrubConfig& cfg);

    /**
     * Advances the scrubber to @p now_ms, running every tick whose
     * scheduled time has passed (ticks are never skipped: a long gap
     * between calls runs the backlog, keeping coverage independent of
     * caller cadence). Returns the number of blocks verified by this
     * call. No-op when disabled.
     */
    std::size_t advanceTo(double now_ms);

    /**
     * Repoints the sweep at a different store — the live-reload
     * commit path: after a version swap, scrub ticks must verify the
     * instance's *current* version's blocks, not keep sweeping a
     * retiring store whose refcount is only waiting on in-flight
     * work. The sweep cursor restarts (block geometry may differ);
     * tick schedule and counters carry over (coverage counters span
     * versions, like a machine-lifetime scrubber's do). Thread-safe
     * against a concurrent advanceTo.
     *
     * @throws std::invalid_argument on a null store.
     */
    void retarget(std::shared_ptr<core::EmbeddingStore> store);

    /**
     * Extends the sweep to a hot tier (borrowed; appends — a fleet
     * attaches every replica's tier over this store): each tick
     * additionally verifies cfg.blocksPerTick of each attached tier's
     * checksum blocks through HotTierCache::scrubTick, which
     * quarantines and repairs (re-copies from the cold store) what it
     * finds. Store blocks are scrubbed first within a tick, so a flip
     * that hit both copies is repaired cold-first and the tier repair
     * picks up clean bytes. Tier coverage counters live in
     * HotTierStats, store coverage in this scrubber's counters. A
     * null tier is ignored.
     */
    void attachHotTier(core::HotTierCache *tier);

    /// @name Coverage counters
    /// @{

    std::uint64_t blocksScrubbed() const;
    std::uint64_t corruptionsFound() const;
    std::uint64_t blocksRepaired() const;

    /** Completed full sweeps over every (table, block) pair. */
    std::uint64_t sweepsCompleted() const;

    /** Fraction of the current sweep already verified, in [0, 1). */
    double sweepProgress() const;

    /// @}

    /** Total (table, block) pairs in one sweep. */
    std::size_t blocksPerSweep() const;

  private:
    void scrubOne();

    mutable std::mutex _mu;
    ScrubConfig _cfg;
    std::shared_ptr<const core::EmbeddingStore> _store;
    std::shared_ptr<core::EmbeddingStore> _mutableStore; //!< aliases
    std::vector<core::HotTierCache *> _tiers; //!< borrowed
    std::size_t _totalBlocks;
    std::size_t _cursor = 0;   //!< next block index in the sweep
    double _nextTickMs;
    std::uint64_t _blocksScrubbed = 0;
    std::uint64_t _corruptions = 0;
    std::uint64_t _repaired = 0;
    std::uint64_t _sweeps = 0;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_SCRUB_HPP
