#include "serve/serve_stats.hpp"

#include <cstdio>

namespace dlrmopt::serve
{

std::string
ServeStats::summary() const
{
    char buf[320];
    const double per_dispatch = dispatches
        ? static_cast<double>(served) / static_cast<double>(dispatches)
        : 0.0;
    std::snprintf(
        buf, sizeof(buf),
        "arrived %zu served %zu shed %zu failed %zu retried %zu "
        "(shed %.1f%%) | %zu dispatches (%.2f served/dispatch, "
        "%zu quantized) | "
        "p50 %.3f p95 %.3f p99 %.3f ms | tier %d (%zu escalations)",
        arrived, served, shed, failed, retried, 100.0 * shedRate(),
        dispatches, per_dispatch, quantDispatches,
        latency.percentile(50.0),
        latency.p95(), latency.p99(), finalTier, degradeEscalations);
    return buf;
}

} // namespace dlrmopt::serve
