/**
 * @file
 * Fault-tolerant request server: the real serving loop the paper's
 * Sec. 6.5 evaluation implies but the queue simulator only models.
 *
 * Each request is one inference batch drawn from a Poisson arrival
 * stream. The server:
 *
 *  - enforces per-request deadlines with admission control: a request
 *    whose projected queue wait already blows the SLA is shed on
 *    arrival (load shedding, counted in ServeStats::shed);
 *  - optionally coalesces queued requests into larger dispatches
 *    (ServerConfig::batching + serve/batch_queue.hpp), bounded by the
 *    tightest member deadline, amortizing the per-dispatch fixed cost
 *    captured by the batch-size-aware ServiceModel — the coalesced
 *    forward runs allocation-free through a persistent
 *    core::ForwardWorkspace and is bitwise-identical to per-request
 *    execution;
 *  - executes admitted requests as *real* DLRM inference on an
 *    exception-safe HtThreadPool using the paper's MP-HT stage
 *    colocation (falling back to sequential execution in the deepest
 *    degradation tier);
 *  - retries transiently failed requests with capped exponential
 *    backoff, giving up after maxRetries (counted in failed);
 *  - degrades gracefully under tail-latency pressure via
 *    DegradationPolicy (drop precision fp32 -> bf16 -> int8, then
 *    shrink batch -> disable prefetch -> go sequential): quantized
 *    tiers run the fused-dequant bags and u8·s8 MLP engine, trading
 *    bounded accuracy for bandwidth before any request is shed;
 *  - tolerates injected faults (serve/fault.hpp): task exceptions,
 *    allocation failures, poisoned embedding indices, and straggler
 *    cores never crash the process — they surface as retries/failures
 *    in the stats.
 *
 * Time accounting is *virtual*: queue waits, deadlines, and reported
 * latencies advance on a deterministic simulated clock derived from
 * the arrival stream and the configured per-batch service time, while
 * the kernels themselves really execute (their measured wall time is
 * reported separately as ServeStats::execTotalMs). This split is what
 * makes serving sessions bit-reproducible under a fixed seed — the
 * property the fault-tolerance tests and the shedding-aware queue
 * simulator comparisons rely on — without giving up real execution.
 */

#ifndef DLRMOPT_SERVE_SERVER_HPP
#define DLRMOPT_SERVE_SERVER_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/batching.hpp"
#include "core/dlrm.hpp"
#include "sched/ht_thread_pool.hpp"
#include "serve/batch_queue.hpp"
#include "serve/degrade.hpp"
#include "serve/fault.hpp"
#include "serve/serve_stats.hpp"

namespace dlrmopt::serve
{

/**
 * Lifecycle of one serving instance, driven by the Router's event
 * loop from a scripted FaultSchedule (serve/fault_schedule.hpp):
 *
 *   Up --crash--> Draining --in-flight done--> Down
 *   Down --recover--> WarmRestart --probation--> Up
 *
 * Draining exists because a crash is *announced* on the virtual clock
 * while a dispatch may still be executing: the instance takes no new
 * work but its in-flight attempt finishes accounting. WarmRestart is
 * the O(weights) rebuild of the replica DlrmModel view over the
 * shared EmbeddingStore — tables are never copied, so restart cost is
 * MLP-sized — followed by a probation window before re-admission.
 */
enum class InstanceState
{
    Up,
    Draining,
    Down,
    WarmRestart
};

/** Human-readable state name ("Up", "Draining", ...). */
const char *instanceStateName(InstanceState s);

/** Serving-session parameters. */
struct ServerConfig
{
    double slaMs = 100.0;    //!< per-request deadline

    /** Batch-size-aware tier-0 service estimate driving the virtual
     *  clock; ServiceModel::constant() reproduces the legacy scalar
     *  per-batch behaviour exactly. */
    ServiceModel service = ServiceModel::constant(1.0);

    /**
     * Per-precision service estimates for the quantized degradation
     * tiers. Off by default (dtypeServiceEnabled = false): pricing
     * then uses `service` scaled by the tier's all-in serviceFactor,
     * which already folds in the ladder's assumed precision speedups.
     * When enabled, a quantized tier prices with its own measured
     * model (serviceBf16 / serviceInt8) times only the tier's
     * knobFactor — the precision win comes from the model, so it is
     * never double-counted.
     */
    bool dtypeServiceEnabled = false;
    ServiceModel serviceBf16 = ServiceModel::constant(1.0);
    ServiceModel serviceInt8 = ServiceModel::constant(1.0);

    /** Service model pricing a tier's precision (see above). */
    const ServiceModel&
    serviceModelFor(core::EmbDtype dtype) const
    {
        if (!dtypeServiceEnabled)
            return service;
        switch (dtype) {
          case core::EmbDtype::Bf16:
            return serviceBf16;
          case core::EmbDtype::Int8:
            return serviceInt8;
          default:
            return service;
        }
    }

    /** Virtual-clock multiplier applied on top of the tier's service
     *  model: all-in when dtype pricing is off, knobs-only when the
     *  per-dtype model already carries the precision win. */
    double
    tierServiceFactor(const DegradeState& tier) const
    {
        return dtypeServiceEnabled ? tier.knobFactor
                                   : tier.serviceFactor;
    }

    /**
     * Base serving precision: every dispatch runs at least this
     * reduced a format, and the degradation ladder can only deepen it
     * (fp32 -> bf16 -> int8). Quantized sessions want the matching
     * store attached to the served model
     * (core::DlrmModel::attachQuantizedStore) so the bags really read
     * reduced-precision bytes; without one the forward falls back to
     * fp32 storage gracefully.
     */
    core::EmbDtype dtype = core::EmbDtype::Fp32;

    /** The deeper of the configured precision floor and the tier's. */
    core::EmbDtype
    effectiveDtype(const DegradeState& tier) const
    {
        return static_cast<int>(tier.dtype) > static_cast<int>(dtype)
                   ? tier.dtype
                   : dtype;
    }

    /** Dynamic request coalescing (serve/batch_queue.hpp). Disabled
     *  by default: every request dispatches alone. */
    BatchConfig batching;

    /**
     * Stage-pipelined streaming dispatch: coalesced dispatches flow
     * through two lanes on disjoint core groups — dispatch k+1's
     * memory-bound embedding gather overlaps dispatch k's
     * compute-bound interaction+MLP via the workspace's rotating
     * StageBuffers. Steady-state per-dispatch cost drops from
     * gather+compute to max(gather, compute); predictions stay
     * bitwise-identical to serveBatched. Requires batching.enabled
     * (the streamed loop is a batched event loop) and degrades to
     * sequential dispatch whenever the degradation tier disables
     * stage overlap or the instance has a single core.
     */
    bool streamed = false;

    /** Fraction of the whole-forward service estimate attributed to
     *  the gather stage when pricing the streamed pipeline
     *  (StageServiceModel::split). */
    double gatherFraction = 0.5;

    bool admission = true;   //!< shed on projected deadline miss

    std::size_t maxRetries = 2;   //!< retry budget per request
    double backoffBaseMs = 1.0;   //!< first retry delay
    double backoffCapMs = 8.0;    //!< exponential backoff ceiling

    DegradeConfig degrade;   //!< graceful-degradation thresholds

    bool pin = false;        //!< pin pool workers to CPUs
};

/**
 * Fault-tolerant serving loop over a real model. The pool is built
 * once per Server and reused across serve() sessions.
 */
class Server
{
  public:
    /**
     * @param model Model to serve (not owned; must outlive server).
     * @param topo One serving instance per physical core.
     * @param cfg Session parameters.
     * @param fault Optional fault injector (not owned; may be null).
     *
     * @throws std::invalid_argument on non-positive SLA/service or a
     *         backoff cap below the base.
     */
    Server(const core::DlrmModel& model, const sched::Topology& topo,
           const ServerConfig& cfg,
           const FaultInjector *fault = nullptr);

    /**
     * Serves one session: requests arrive at @p arrivals_ms and
     * request r runs inference on batches[r % batches.size()].
     *
     * @param dense Dense features shared across requests.
     * @param batches Sparse inputs cycled through by the stream.
     * @param arrivals_ms Ascending arrival timestamps (one request
     *        each), e.g. PoissonLoadGen::arrivals().
     * @param pf Prefetch spec used while the degradation tier allows
     *        software prefetching.
     *
     * @throws std::invalid_argument on an empty batch list.
     */
    ServeStats serve(const core::Tensor& dense,
                     const std::vector<core::SparseBatch>& batches,
                     const std::vector<double>& arrivals_ms,
                     const core::PrefetchSpec& pf =
                         core::PrefetchSpec::paperDefault());

    /** Per-core task health of the underlying pool. */
    sched::CoreHealth coreHealth(std::size_t core) const
    {
        return _pool.health(core);
    }

    /** Sum of failed-task counters across this instance's cores. */
    std::uint64_t totalFailed() const { return _pool.totalFailed(); }

    std::size_t numCores() const { return _pool.numCores(); }

    /**
     * Cores currently accepting *new* dispatches: numCores() when
     * fully up, fewer during a partial drain (cores [0, activeCores)
     * serve residual traffic while the rest wind down), 0 while fully
     * draining. In-flight work on a deactivated core still finishes.
     */
    std::size_t activeCores() const { return _activeCores; }

    /**
     * Shrinks (or restores) the active core group. The caller — the
     * Router's partial-drain path or the fleet's elastic scale-down —
     * drives this; the Server just bounds it.
     *
     * @throws std::invalid_argument when @p n exceeds numCores().
     */
    void setActiveCores(std::size_t n);

    const ServerConfig& config() const { return _cfg; }

    /// @name Instance lifecycle
    /// @{

    InstanceState lifecycleState() const { return _lifecycle; }

    /** Number of completed warm restarts. */
    std::uint64_t restarts() const { return _restarts; }

    /**
     * Up -> Draining: the instance stops accepting new work; its
     * in-flight dispatch finishes accounting first.
     *
     * @throws std::logic_error unless currently Up.
     */
    void beginDrain();

    /**
     * Draining -> Up: the drain was called off (elastic capacity
     * wants the instance back before it ever went Down). Restores the
     * full active core group.
     *
     * @throws std::logic_error unless currently Draining.
     */
    void cancelDrain();

    /**
     * Draining -> Down: the last in-flight work has drained. Clears
     * the active core group.
     *
     * @throws std::logic_error unless currently Draining.
     */
    void markDown();

    /**
     * Down -> WarmRestart: the instance starts rebuilding. The
     * caller (Router) performs the actual O(weights) model-view
     * rebuild; this transition only tracks lifecycle.
     *
     * @throws std::logic_error unless currently Down.
     */
    void beginWarmRestart();

    /**
     * WarmRestart -> Up: probation passed, instance re-admitted.
     * Counts one restart.
     *
     * @throws std::logic_error unless currently WarmRestart.
     */
    void completeWarmRestart();

    /// @}

    /**
     * Really executes one request attempt on @p core and returns the
     * measured kernel wall time (ms). Throws whatever the stage tasks
     * threw (injected faults, IndexError from poisoned indices, ...).
     *
     * serve() drives this internally; the multi-instance Router calls
     * it directly, running its own cluster-level event loop while
     * each instance keeps doing the real execution.
     */
    double executeAttempt(std::size_t core, const core::Tensor& dense,
                          const core::SparseBatch& sparse,
                          const DegradeState& tier,
                          const core::PrefetchSpec& pf,
                          std::uint64_t req, std::uint64_t attempt);

    /**
     * executeAttempt with an explicit fault injector (overriding the
     * constructor-supplied one for this attempt; null = no faults)
     * and an optional prediction fingerprint out-parameter. The
     * Router uses the override to apply time-varying FaultSchedule
     * phases, and the fingerprint (an order-sensitive mix64 chain
     * over the prediction bit patterns) to assert that a resilient
     * session serves bitwise-correct answers.
     */
    double executeAttempt(std::size_t core, const core::Tensor& dense,
                          const core::SparseBatch& sparse,
                          const DegradeState& tier,
                          const core::PrefetchSpec& pf,
                          std::uint64_t req, std::uint64_t attempt,
                          const FaultInjector *fault,
                          std::uint64_t *pred_fp);

    /**
     * Runs one coalesced dispatch on @p core through the persistent
     * ForwardWorkspace and returns the measured kernel wall ms; the
     * workspace grows on demand when the group exceeds its current
     * capacity. Throws whatever the pool task threw. serveBatched
     * drives this internally; the multi-tenant fleet calls it
     * directly from its own cluster-level event loop.
     */
    double executeBatchedAttempt(
        std::size_t core,
        const std::vector<const core::SparseBatch *>& parts,
        const std::vector<const core::Tensor *>& dense_parts,
        const DegradeState& tier, const core::PrefetchSpec& pf);

    /**
     * executeBatchedAttempt against an explicit model instead of the
     * constructor-bound one. The live-reload fleet passes each
     * dispatch's *pinned* version here, so a version swap mid-flight
     * never mixes versions within a batch: the whole dispatch runs on
     * whichever model it started with. @p model must share the bound
     * model's architecture (workspace geometry is config-derived).
     */
    double executeBatchedAttempt(
        std::size_t core,
        const std::vector<const core::SparseBatch *>& parts,
        const std::vector<const core::Tensor *>& dense_parts,
        const DegradeState& tier, const core::PrefetchSpec& pf,
        const core::DlrmModel& model);

    /** Predictions of the last executeBatchedAttempt dispatch. */
    const core::Tensor& lastPredictions() const
    {
        return _batchWs.predictions();
    }

    /**
     * Attaches (or detaches, with null) this instance's hot tier:
     * every execution path probes it before gathering from the cold
     * store. The tier is an instance-local placement optimization —
     * predictions are bitwise-identical with or without it — and it
     * guards itself (HotTierCache::matches) against dispatches pinned
     * to a store it does not front, so attaching is safe under live
     * reload: canary dispatches on the new version simply bypass it
     * until the fleet retargets the tier at commit.
     */
    void attachHotTier(std::shared_ptr<core::HotTierCache> tier)
    {
        _hotTier = std::move(tier);
    }

    /** The attached hot tier (null when serving untiered). */
    const std::shared_ptr<core::HotTierCache>& hotTier() const
    {
        return _hotTier;
    }

    /**
     * Backing-store fingerprint of the persistent batched workspace
     * (core::ForwardWorkspace::bufferFingerprint). Unchanged across
     * sessions means no dispatch reallocated or moved a buffer — the
     * probe the streamed fault tests use to show a poisoned in-flight
     * stage never disturbed the sibling rotation set's storage.
     */
    std::size_t workspaceFingerprint() const
    {
        return _batchWs.bufferFingerprint();
    }

  private:
    /**
     * Event loop used when cfg.batching.enabled: a BatchQueue
     * coalesces queued requests up to the tier-shrunk cap / linger /
     * tightest member deadline, and each dispatch runs one coalesced
     * forward through the persistent ForwardWorkspace (zero heap
     * allocations in the steady state when no fault injector forces
     * per-attempt batch copies).
     */
    ServeStats serveBatched(const core::Tensor& dense,
                            const std::vector<core::SparseBatch>& batches,
                            const std::vector<double>& arrivals_ms,
                            const core::PrefetchSpec& pf);

    /**
     * Event loop used when cfg.streamed: like serveBatched, but the
     * dispatch is split across a gather lane and a compute lane on
     * disjoint cores. While dispatch k's compute stage runs, dispatch
     * k+1's gather stage fills the sibling StageBuffers set — really
     * overlapped on the pool *and* priced as overlapped on the
     * virtual clock (gather_start >= the compute end two dispatches
     * back enforces the two-set ring). A faulted in-flight stage
     * fails only its own dispatch's members; the sibling set is
     * untouched.
     */
    ServeStats serveStreamed(const core::Tensor& dense,
                             const std::vector<core::SparseBatch>& batches,
                             const std::vector<double>& arrivals_ms,
                             const core::PrefetchSpec& pf);

    const core::DlrmModel& _model;
    ServerConfig _cfg;
    const FaultInjector *_fault;
    sched::HtThreadPool _pool;
    InstanceState _lifecycle = InstanceState::Up;
    std::uint64_t _restarts = 0;
    std::size_t _activeCores = 0; //!< set from numCores() at build

    /** Preallocated batched-forward scratch, sized on first batched
     *  session and reused for every dispatch thereafter. */
    core::ForwardWorkspace _batchWs;
    std::vector<core::PredictionSpan> _splitScratch;

    /** Instance-local hot tier, probed by every execution path. */
    std::shared_ptr<core::HotTierCache> _hotTier;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_SERVER_HPP
