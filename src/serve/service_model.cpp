#include "serve/service_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/batching.hpp"

namespace dlrmopt::serve
{

ServiceModel
ServiceModel::fit(const std::vector<std::size_t>& batch_sizes,
                  const std::vector<double>& measured_ms)
{
    if (batch_sizes.empty() || batch_sizes.size() != measured_ms.size()) {
        throw std::invalid_argument(
            "ServiceModel::fit: need one measurement per batch size");
    }
    const double n = static_cast<double>(batch_sizes.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
        const double x = static_cast<double>(batch_sizes[i]);
        const double y = measured_ms[i];
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    const double det = n * sxx - sx * sx;
    double per = 0.0;
    double base = sy / n;
    if (det > 0.0) {
        per = (n * sxy - sx * sy) / det;
        base = (sy - per * sx) / n;
    }
    if (per < 0.0) {
        // Flat-or-noisy data: fall back to the mean as a constant.
        per = 0.0;
        base = sy / n;
    }
    if (base < 0.0) {
        // Pure per-sample cost: refit through the origin.
        base = 0.0;
        per = sxx > 0.0 ? sxy / sxx : 0.0;
    }
    ServiceModel m{base, per};
    m.validate();
    return m;
}

void
ServiceModel::validate() const
{
    if (!std::isfinite(baseMs) || !std::isfinite(perSampleMs) ||
        baseMs < 0.0 || perSampleMs < 0.0 ||
        !(baseMs + perSampleMs > 0.0)) {
        throw std::invalid_argument(
            "ServiceModel: need finite baseMs >= 0, perSampleMs >= 0 "
            "with a positive sum");
    }
}

StageServiceModel
StageServiceModel::split(const ServiceModel& total,
                         double gather_fraction)
{
    if (!std::isfinite(gather_fraction) || gather_fraction <= 0.0 ||
        gather_fraction >= 1.0) {
        throw std::invalid_argument(
            "StageServiceModel::split: gather fraction must lie "
            "strictly between 0 and 1");
    }
    total.validate();
    StageServiceModel s;
    s.gather = ServiceModel{total.baseMs * gather_fraction,
                            total.perSampleMs * gather_fraction};
    s.compute = ServiceModel{total.baseMs * (1.0 - gather_fraction),
                             total.perSampleMs * (1.0 - gather_fraction)};
    return s;
}

void
StageServiceModel::validate() const
{
    gather.validate();
    compute.validate();
}

ServiceTimeline::ServiceTimeline(const ServiceModel& constant_model)
{
    constant_model.validate();
    _segments.push_back({0.0, constant_model});
}

ServiceTimeline::ServiceTimeline(std::vector<Segment> segments)
    : _segments(std::move(segments))
{
    if (_segments.empty()) {
        throw std::invalid_argument(
            "ServiceTimeline: need at least one segment");
    }
    for (const Segment& s : _segments) {
        if (!(s.startMs >= 0.0) || !std::isfinite(s.startMs)) {
            throw std::invalid_argument(
                "ServiceTimeline: startMs must be finite and >= 0");
        }
        s.model.validate();
    }
    std::stable_sort(_segments.begin(), _segments.end(),
                     [](const Segment& a, const Segment& b) {
                         return a.startMs < b.startMs;
                     });
    // Truth must exist from t=0: the first regime covers the gap.
    _segments.front().startMs = 0.0;
}

const ServiceModel&
ServiceTimeline::at(double now_ms) const
{
    std::size_t i = 0;
    while (i + 1 < _segments.size() &&
           _segments[i + 1].startMs <= now_ms)
        ++i;
    return _segments[i].model;
}

ServiceModel
calibrateServiceModel(const core::DlrmModel& model,
                      const core::Tensor& dense,
                      const core::SparseBatch& batch,
                      const std::vector<std::size_t>& probe_sizes,
                      std::size_t reps)
{
    using Clock = std::chrono::steady_clock;
    if (probe_sizes.empty() || reps == 0) {
        throw std::invalid_argument(
            "calibrateServiceModel: need probe sizes and reps >= 1");
    }

    std::size_t max_probe = 1;
    for (std::size_t p : probe_sizes)
        max_probe = std::max(max_probe, std::min(p, batch.batchSize));
    std::size_t max_lookups = 1;
    for (const auto& v : batch.indices) {
        max_lookups = std::max<std::size_t>(
            max_lookups,
            (v.size() + batch.batchSize - 1) / batch.batchSize);
    }

    core::ForwardWorkspace ws;
    ws.reserve(model, max_probe, max_lookups);

    std::vector<std::size_t> sizes;
    std::vector<double> times;
    for (std::size_t p : probe_sizes) {
        const std::size_t n =
            std::max<std::size_t>(1, std::min(p, batch.batchSize));
        const core::SparseBatch probe = batch.truncated(n);
        core::Tensor d(n, dense.cols());
        std::memcpy(d.data(), dense.data(),
                    n * dense.cols() * sizeof(float));
        double best = std::numeric_limits<double>::max();
        for (std::size_t r = 0; r < reps; ++r) {
            const auto t0 = Clock::now();
            ws.forward(model, d, probe);
            best = std::min(
                best, std::chrono::duration<double, std::milli>(
                          Clock::now() - t0)
                          .count());
        }
        sizes.push_back(n);
        times.push_back(best);
    }
    return ServiceModel::fit(sizes, times);
}

} // namespace dlrmopt::serve
