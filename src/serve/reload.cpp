#include "serve/reload.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <new>
#include <stdexcept>

#include "core/dlrm.hpp"
#include "core/errors.hpp"
#include "core/snapshot.hpp"

namespace dlrmopt::serve
{

namespace
{

double
dtypeDriftExtra(const ReloadConfig& cfg, core::EmbDtype d)
{
    switch (d) {
    case core::EmbDtype::Bf16:
        return cfg.shadowDriftExtraBf16;
    case core::EmbDtype::Int8:
        return cfg.shadowDriftExtraInt8;
    default:
        return 0.0;
    }
}

} // namespace

void
ReloadConfig::validate() const
{
    const auto nonneg = [](double v) {
        return v >= 0.0 && std::isfinite(v);
    };
    if (!nonneg(loadMs) || !nonneg(canaryWindowMs) ||
        !nonneg(stageHoldMs)) {
        throw std::invalid_argument(
            "ReloadConfig: durations must be >= 0 and finite");
    }
    if (shadowRequests == 0) {
        throw std::invalid_argument(
            "ReloadConfig: shadowRequests must be >= 1");
    }
    if (!nonneg(shadowDriftBudget) || !nonneg(shadowDriftExtraBf16) ||
        !nonneg(shadowDriftExtraInt8)) {
        throw std::invalid_argument(
            "ReloadConfig: drift budgets must be >= 0 and finite");
    }
    if (canaryMinSamples == 0) {
        throw std::invalid_argument(
            "ReloadConfig: canaryMinSamples must be >= 1");
    }
    if (!(maxP95RegressionFactor >= 1.0) ||
        !std::isfinite(maxP95RegressionFactor)) {
        throw std::invalid_argument(
            "ReloadConfig: maxP95RegressionFactor must be >= 1 and "
            "finite");
    }
    if (rolloutConcurrency == 0) {
        throw std::invalid_argument(
            "ReloadConfig: rolloutConcurrency must be >= 1");
    }
}

const char *
reloadStateName(ReloadState s)
{
    switch (s) {
    case ReloadState::Idle:
        return "idle";
    case ReloadState::Loading:
        return "loading";
    case ReloadState::Canary:
        return "canary";
    case ReloadState::RollingOut:
        return "rolling-out";
    case ReloadState::Committed:
        return "committed";
    case ReloadState::RolledBack:
        return "rolled-back";
    case ReloadState::Failed:
        return "failed";
    }
    return "?";
}

ReloadManager::ReloadManager(const ReloadConfig& cfg,
                             std::vector<ReloadEvent> events,
                             std::vector<core::VersionedModel *> holders,
                             std::size_t instances)
    : _cfg(cfg), _events(std::move(events)),
      _holders(std::move(holders)), _instances(instances)
{
    _cfg.validate();
    if (_holders.empty() || instances == 0) {
        throw std::invalid_argument(
            "ReloadManager: need holders and instance slots");
    }
    for (core::VersionedModel *h : _holders) {
        if (h == nullptr) {
            throw std::invalid_argument(
                "ReloadManager: null version holder");
        }
    }
    for (const ReloadEvent& e : _events) {
        if (e.tenant >= _holders.size()) {
            throw std::invalid_argument(
                "ReloadManager: event tenant out of range");
        }
        if (!(e.atMs >= 0.0) || !std::isfinite(e.atMs)) {
            throw std::invalid_argument(
                "ReloadManager: event atMs must be >= 0 and finite");
        }
        if (e.newVersion == 0) {
            throw std::invalid_argument(
                "ReloadManager: version ids start at 1");
        }
    }
    std::stable_sort(_events.begin(), _events.end(),
                     [](const ReloadEvent& a, const ReloadEvent& b) {
                         return a.atMs < b.atMs;
                     });

    const std::size_t n_t = _holders.size();
    _pins.resize(_instances);
    for (std::size_t i = 0; i < _instances; ++i) {
        _pins[i].reserve(n_t);
        for (std::size_t k = 0; k < n_t; ++k)
            _pins[i].push_back(_holders[k]->current());
    }
    _pending.resize(n_t);
    for (std::size_t e = 0; e < _events.size(); ++e)
        _pending[_events[e].tenant].push_back(e);
    _cursor.assign(n_t, 0);
    _active.resize(n_t);
    _lastDoneMs.assign(n_t, 0.0);
    _scrubbers.assign(n_t, nullptr);
    _tiers.assign(_instances,
                  std::vector<core::HotTierCache *>(n_t, nullptr));
    _shadowDense.assign(n_t, nullptr);
    _shadowBatches.assign(n_t, nullptr);
}

void
ReloadManager::attachScrubber(std::size_t tenant,
                              EmbeddingScrubber *scrub)
{
    _scrubbers.at(tenant) = scrub;
}

void
ReloadManager::attachHotTier(std::size_t instance, std::size_t tenant,
                             core::HotTierCache *tier)
{
    _tiers.at(instance).at(tenant) = tier;
}

void
ReloadManager::attachShadow(std::size_t tenant,
                            const core::Tensor *dense,
                            const std::vector<core::SparseBatch> *batches)
{
    _shadowDense.at(tenant) = dense;
    _shadowBatches.at(tenant) = batches;
}

void
ReloadManager::attachFaults(const FaultSchedule *schedule)
{
    _faults = schedule;
}

bool
ReloadManager::active() const
{
    for (std::size_t k = 0; k < _active.size(); ++k) {
        if (_active[k].state != ReloadState::Idle ||
            _cursor[k] < _pending[k].size())
            return true;
    }
    return false;
}

void
ReloadManager::advanceTo(double now,
                         const std::vector<char>& instanceUp)
{
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t k = 0; k < _active.size(); ++k) {
            if (_active[k].state == ReloadState::Idle)
                progress |= maybeStart(k, now);
            if (_active[k].state != ReloadState::Idle)
                progress |= step(k, now, instanceUp);
        }
    }
}

bool
ReloadManager::maybeStart(std::size_t k, double now)
{
    if (_cursor[k] >= _pending[k].size())
        return false;
    const ReloadEvent& ev = _events[_pending[k][_cursor[k]]];
    const double start = std::max(ev.atMs, _lastDoneMs[k]);
    if (start > now)
        return false;
    ++_cursor[k];
    ++_started;

    Active& a = _active[k];
    a = Active{};
    a.ev = ev;
    a.startMs = start;
    a.readyMs = start + _cfg.loadMs;
    a.prev = _holders[k]->current();
    a.swapped.assign(_instances, 0);
    a.state = ReloadState::Loading;

    if (ev.expectedVersion != 0 &&
        a.prev->version != ev.expectedVersion) {
        finish(k, ReloadState::Failed, start,
               "expected version " +
                   std::to_string(ev.expectedVersion) + " but " +
                   std::to_string(a.prev->version) + " is current");
        return true;
    }

    // The load/build itself: real work now, virtual readiness at
    // startMs + loadMs. Any failure leaves the old version serving.
    const FaultInjector *inj =
        _faults ? _faults->injectorAt(start, 0) : nullptr;
    const core::SnapshotFaults faults =
        inj ? inj->snapshotFaults(ev.newVersion)
            : core::SnapshotFaults{};
    try {
        if (!ev.snapshotPath.empty()) {
            core::LoadedSnapshot ls = core::ModelSnapshot::load(
                ev.snapshotPath, &a.prev->cfg, &faults);
            a.next = core::ModelVersion::adopt(
                ls.info.cfg, ev.newVersion, ls.info.weightSeed,
                std::move(ls.store), std::move(ls.model));
        } else {
            if (faults.loadBadAlloc)
                throw std::bad_alloc();
            a.next = core::ModelVersion::build(a.prev->cfg,
                                               ev.newVersion,
                                               ev.weightSeed, ev.dtype,
                                               ev.blockRows);
        }
    } catch (const core::IoError& e) {
        finish(k, ReloadState::Failed, a.readyMs,
               std::string("load rejected: ") + e.what());
        return true;
    } catch (const std::bad_alloc&) {
        finish(k, ReloadState::Failed, a.readyMs,
               "bad_alloc while materializing the new version");
        return true;
    } catch (const std::invalid_argument& e) {
        finish(k, ReloadState::Failed, a.readyMs,
               std::string("load rejected: ") + e.what());
        return true;
    }
    if (a.next->version <= a.prev->version) {
        finish(k, ReloadState::Failed, a.readyMs,
               "version " + std::to_string(a.next->version) +
                   " does not advance past " +
                   std::to_string(a.prev->version));
        return true;
    }
    return true;
}

bool
ReloadManager::step(std::size_t k, double now,
                    const std::vector<char>& instanceUp)
{
    Active& a = _active[k];
    switch (a.state) {
    case ReloadState::Loading: {
        if (now < a.readyMs)
            return false;
        if (a.shadowed == 0) {
            const std::string verdict = shadowValidate(k, a);
            if (!verdict.empty()) {
                finish(k, ReloadState::Failed, a.readyMs, verdict);
                return true;
            }
        }
        // Canary on the first Up instance; wait for one if the whole
        // fleet is momentarily down (the old version keeps serving
        // nothing either way).
        std::size_t pick = _instances;
        for (std::size_t i = 0; i < _instances; ++i) {
            if (i < instanceUp.size() && instanceUp[i]) {
                pick = i;
                break;
            }
        }
        if (pick == _instances)
            return false;
        a.canaryInst = pick;
        _pins[pick][k] = a.next;
        a.swapped[pick] = 1;
        ++a.swaps;
        ++_swaps;
        a.canaryEndMs = std::max(a.readyMs, now) + _cfg.canaryWindowMs;
        a.state = ReloadState::Canary;
        return true;
    }
    case ReloadState::Canary: {
        if (now < a.canaryEndMs)
            return false;
        if (!a.next->store->findCorruptBlocks().empty()) {
            setAllPins(k, a.prev);
            finish(k, ReloadState::RolledBack, a.canaryEndMs,
                   "corrupt block detected in the canary window");
            return true;
        }
        if (a.canaryWin.count() >= _cfg.canaryMinSamples &&
            a.fleetWin.count() >= _cfg.canaryMinSamples &&
            a.fleetWin.p95() > 0.0 &&
            a.canaryWin.p95() >
                _cfg.maxP95RegressionFactor * a.fleetWin.p95()) {
            setAllPins(k, a.prev);
            finish(k, ReloadState::RolledBack, a.canaryEndMs,
                   "canary p95 regression");
            return true;
        }
        a.state = ReloadState::RollingOut;
        a.nextStageMs = a.canaryEndMs;
        return true;
    }
    case ReloadState::RollingOut: {
        if (now < a.nextStageMs)
            return false;
        if (!a.next->store->findCorruptBlocks().empty()) {
            setAllPins(k, a.prev);
            finish(k, ReloadState::RolledBack, a.nextStageMs,
                   "corrupt block detected during rollout");
            return true;
        }
        std::size_t moved = 0;
        for (std::size_t i = 0;
             i < _instances && moved < _cfg.rolloutConcurrency; ++i) {
            if (a.swapped[i])
                continue;
            _pins[i][k] = a.next;
            a.swapped[i] = 1;
            ++a.swaps;
            ++_swaps;
            ++moved;
        }
        bool all = true;
        for (char s : a.swapped)
            all = all && s;
        if (all) {
            // Commit: publish (the old version joins the retiring
            // list until its in-flight pins drain), re-reconcile
            // every pin (an instance that restarted mid-rollout was
            // re-pinned to the committed version), and retarget the
            // background scrubber at the new store.
            _holders[k]->publish(a.next);
            setAllPins(k, a.next);
            if (_scrubbers[k] != nullptr)
                _scrubbers[k]->retarget(a.next->store);
            // Re-pin every instance's hot tier at the published
            // store: the resident hot set carries over, its bytes
            // now the new version's, so post-commit dispatches hit a
            // warm tier instead of re-learning the hot set cold.
            for (std::size_t i = 0; i < _instances; ++i) {
                if (_tiers[i][k] != nullptr)
                    _tiers[i][k]->retarget(a.next->store);
            }
            finish(k, ReloadState::Committed, a.nextStageMs, "");
            return true;
        }
        a.nextStageMs += _cfg.stageHoldMs;
        return true;
    }
    default:
        return false;
    }
}

std::string
ReloadManager::shadowValidate(std::size_t k, Active& a)
{
    if (!a.next->store->findCorruptBlocks().empty())
        return "corrupt block in the loaded version";

    const core::EmbDtype prevD = a.prev->store->dtype();
    const core::EmbDtype nextD = a.next->store->dtype();
    const double budget = _cfg.shadowDriftBudget +
                          dtypeDriftExtra(_cfg, prevD) +
                          dtypeDriftExtra(_cfg, nextD);

    // Replay source: the tenant's workload when attached, else the
    // canonical probe batch.
    core::Tensor probeDense;
    core::SparseBatch probeSparse;
    const core::Tensor *dense = _shadowDense[k];
    const std::vector<core::SparseBatch> *batches = _shadowBatches[k];
    std::vector<core::SparseBatch> probeVec;
    if (dense == nullptr || batches == nullptr || batches->empty()) {
        core::ModelSnapshot::makeProbeBatch(a.prev->cfg, probeDense,
                                            probeSparse);
        probeVec.push_back(std::move(probeSparse));
        dense = &probeDense;
        batches = &probeVec;
    }

    core::DlrmWorkspace wsOld;
    core::DlrmWorkspace wsNew;
    const core::PrefetchSpec pf = core::PrefetchSpec::paperDefault();
    std::map<std::size_t, core::Tensor> denseBySize;
    double driftSum = 0.0;
    std::size_t samples = 0;
    const std::size_t n =
        std::min(_cfg.shadowRequests,
                 std::max<std::size_t>(batches->size(), 1));
    for (std::size_t r = 0; r < n; ++r) {
        const core::SparseBatch& sparse = (*batches)[r % batches->size()];
        const std::size_t b = sparse.batchSize;
        auto it = denseBySize.find(b);
        if (it == denseBySize.end()) {
            core::Tensor t(b, dense->cols());
            std::memcpy(t.data(), dense->data(),
                        b * dense->cols() * sizeof(float));
            it = denseBySize.emplace(b, std::move(t)).first;
        }
        a.prev->model->forward(it->second, sparse, wsOld, pf, prevD);
        a.next->model->forward(it->second, sparse, wsNew, pf, nextD);
        for (std::size_t s = 0; s < b; ++s) {
            const float po = wsOld.pred.data()[s];
            const float pn = wsNew.pred.data()[s];
            if (!std::isfinite(pn) || pn < 0.0f || pn > 1.0f) {
                return "shadow prediction out of [0, 1]";
            }
            driftSum += std::abs(static_cast<double>(pn) -
                                 static_cast<double>(po));
            ++samples;
        }
        ++a.shadowed;
        ++_shadowed;
    }
    const double drift =
        samples ? driftSum / static_cast<double>(samples) : 0.0;
    if (drift > budget) {
        return "shadow drift " + std::to_string(drift) +
               " exceeds budget " + std::to_string(budget);
    }
    return "";
}

void
ReloadManager::observeLatency(std::size_t instance, std::size_t tenant,
                              double latency_ms)
{
    Active& a = _active.at(tenant);
    if (a.state != ReloadState::Canary)
        return;
    if (instance == a.canaryInst)
        a.canaryWin.add(latency_ms);
    else
        a.fleetWin.add(latency_ms);
}

void
ReloadManager::notifyRestart(std::size_t instance)
{
    if (instance >= _instances)
        return;
    for (std::size_t k = 0; k < _holders.size(); ++k) {
        _pins[instance][k] = _holders[k]->current();
        if (_active[k].state == ReloadState::Canary ||
            _active[k].state == ReloadState::RollingOut) {
            // The replica lost its in-memory copy of the incoming
            // version; the commit/rollback step re-reconciles it.
            _active[k].swapped[instance] = 0;
            if (_active[k].state == ReloadState::Canary &&
                _active[k].canaryInst == instance) {
                // The canary died mid-window: treat the window as
                // unjudgeable, reset both latency windows, and
                // re-canary on the next step.
                _active[k].state = ReloadState::Loading;
                _active[k].shadowed =
                    std::max<std::size_t>(_active[k].shadowed, 1);
                _active[k].canaryWin = WindowedP95{64};
                _active[k].fleetWin = WindowedP95{64};
            }
        }
    }
}

void
ReloadManager::applyBitFlip(std::size_t table, std::size_t row,
                            std::size_t bit)
{
    for (Active& a : _active) {
        if (a.state == ReloadState::Idle || a.next == nullptr)
            continue;
        core::EmbeddingStore& st = *a.next->store;
        if (table < st.numTables() && row < st.rows() &&
            bit < st.dim() * 32) {
            st.flipBit(table, row, bit);
        }
    }
}

void
ReloadManager::setAllPins(
    std::size_t k, const std::shared_ptr<const core::ModelVersion>& v)
{
    for (std::size_t i = 0; i < _instances; ++i)
        _pins[i][k] = v;
}

void
ReloadManager::finish(std::size_t k, ReloadState state, double at,
                      const std::string& detail)
{
    Active& a = _active[k];
    ReloadOutcome out;
    out.tenant = k;
    out.version = a.ev.newVersion;
    out.finalState = state;
    out.detail = detail;
    out.startedMs = a.startMs;
    out.finishedMs = at;
    out.shadowed = a.shadowed;
    out.instanceSwaps = a.swaps;
    _outcomes.push_back(std::move(out));
    switch (state) {
    case ReloadState::Committed:
        ++_committed;
        break;
    case ReloadState::RolledBack:
        ++_rolledBack;
        break;
    default:
        ++_failed;
        break;
    }
    _lastDoneMs[k] = at;
    a = Active{};
}

} // namespace dlrmopt::serve
