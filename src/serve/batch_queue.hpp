/**
 * @file
 * Deadline-aware request coalescing queue for the serving loop, with
 * optional weighted-fair queueing across tenants.
 *
 * BatchQueue holds pending request attempts in deterministic
 * (readyMs, seq) order and forms dispatch groups under three bounds:
 *
 *  - **capacity**: at most `cap` member requests per dispatch (the
 *    caller shrinks the cap with the degradation tier — under tail
 *    pressure the server coalesces less before it sheds at all);
 *  - **linger**: a follower may join only if it is ready within
 *    maxLingerMs of the head's ready time (or before the core frees
 *    up anyway, which costs nothing to wait for);
 *  - **deadline**: the whole group must finish by the *tightest*
 *    member deadline under the batch-size-aware service estimate
 *    serviceMs(total samples) — a request is never coalesced past its
 *    deadline. Retries are always *admitted* (matching the unbatched
 *    path) but still carry a fresh SLA-derived deadline from their
 *    backoff expiry, so a stale retry bounds its group like any other
 *    member instead of being exempt from the deadline check.
 *
 * In the default single-tenant mode every request shares one queue
 * and the SLA offset passed to nextBatch(). The weighted-fair mode
 * (WfqConfig) adds per-tenant sub-queues arbitrated by deficit round
 * robin: each nonempty tenant accrues weight-proportional deficit per
 * round, the first tenant whose deficit covers its head dispatches,
 * and the dispatched samples are charged against its deficit. A
 * tenant that floods the fleet therefore cannot starve the others —
 * it only burns through its own deficit faster. Groups never mix
 * tenants (different tenants serve different models), and within a
 * tenant formation keeps the exact single-tenant semantics, with each
 * request's own SLA (PendingRequest::slaMs) anchoring its deadline.
 *
 * Formation is greedy in queue order and purely a function of the
 * queue contents and the arguments, so batched sessions stay
 * bit-reproducible on the virtual clock.
 */

#ifndef DLRMOPT_SERVE_BATCH_QUEUE_HPP
#define DLRMOPT_SERVE_BATCH_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include "serve/service_model.hpp"

namespace dlrmopt::serve
{

/** Dynamic-batching knobs for the serving loop. */
struct BatchConfig
{
    bool enabled = false;        //!< coalesce queued requests

    std::size_t maxRequests = 8; //!< coalescing cap at tier 0

    /** How long (virtual ms) the head may wait for followers beyond
     *  its ready time. 0 still coalesces whatever is ready by the
     *  time a core frees up. */
    double maxLingerMs = 0.0;

    /** @throws std::invalid_argument on a zero cap or negative /
     *          non-finite linger. */
    void validate() const;
};

/** Weighted-fair queueing knobs for a multi-tenant BatchQueue. */
struct WfqConfig
{
    /** Per-tenant scheduling weights; tenant t may only be queued
     *  when t < weights.size(). Empty disables WFQ (single queue). */
    std::vector<double> weights;

    /** Samples of deficit a unit-weight tenant accrues per DRR round.
     *  Smaller quanta interleave tenants more finely; larger quanta
     *  favour bigger (better-amortized) single-tenant groups. */
    double quantumSamples = 8.0;

    /** @throws std::invalid_argument on a non-positive / non-finite
     *          weight or quantum. */
    void validate() const;
};

/** One queued request attempt awaiting dispatch. */
struct PendingRequest
{
    double readyMs = 0.0;     //!< earliest virtual start
    std::uint64_t seq = 0;    //!< deterministic tie-break
    std::uint64_t req = 0;    //!< request id
    std::uint64_t tries = 0;  //!< attempts already burned
    double arrivalMs = 0.0;   //!< original arrival (deadline anchor)
    std::size_t samples = 0;  //!< batch size of this request
    std::uint32_t tenant = 0; //!< owning tenant (WFQ sub-queue key)

    /** Per-request SLA offset (ms). 0 = use the session-wide SLA
     *  passed to nextBatch(); positive overrides it (per-tenant
     *  SLAs in the multi-tenant fleet). */
    double slaMs = 0.0;
};

/**
 * Deterministic coalescing queue. Not thread-safe; the serving loop
 * owns it and advances it on the virtual clock.
 */
class BatchQueue
{
  public:
    /** Single-tenant queue: every request shares one sub-queue. */
    explicit BatchQueue(const BatchConfig& cfg);

    /** Weighted-fair queue over wfq.weights.size() tenants. */
    BatchQueue(const BatchConfig& cfg, const WfqConfig& wfq);

    /** @throws std::invalid_argument when the request's tenant has no
     *          configured weight (WFQ mode only). */
    void push(const PendingRequest& r);

    bool empty() const { return _count == 0; }
    std::size_t size() const { return _count; }

    /** Requests currently queued for @p tenant (admission budgets). */
    std::size_t queuedOf(std::uint32_t tenant) const;

    /** Samples currently queued for @p tenant. */
    std::size_t queuedSamplesOf(std::uint32_t tenant) const;

    /** Earliest ready time over every sub-queue head; queue must be
     *  non-empty. */
    double headReadyMs() const;

    /**
     * Pops the next head and every compatible follower into @p out
     * (head first, then queue order). The head is always dispatched —
     * even when it alone cannot meet its deadline, in which case it
     * is returned solo so the caller can shed it; followers only join
     * when every member's deadline stays feasible. In WFQ mode the
     * head tenant is chosen by deficit round robin and followers come
     * only from the same tenant, additionally bounded by the tenant's
     * remaining deficit.
     *
     * @param core_free_ms When the dispatching core frees up.
     * @param cap Max member count this dispatch (tier-shrunk).
     * @param sla_ms Deadline offset for members without their own
     *        PendingRequest::slaMs.
     * @param service Batch-size-aware service estimate.
     * @param straggle Service multiplier of the dispatching core.
     * @param out Reused output buffer (cleared first).
     */
    void nextBatch(double core_free_ms, std::size_t cap, double sla_ms,
                   const ServiceModel& service, double straggle,
                   std::vector<PendingRequest>& out);

    /**
     * Same, with one service estimate per tenant (indexed by tenant
     * id): different tenants serve different models, so the deadline
     * feasibility of a group must be priced with the *owning*
     * tenant's estimate. The single-model overload is equivalent to
     * every tenant sharing one estimate.
     *
     * @throws std::invalid_argument when fewer models than tenants
     *         are supplied.
     */
    void nextBatch(double core_free_ms, std::size_t cap, double sla_ms,
                   const std::vector<ServiceModel>& service_by_tenant,
                   double straggle, std::vector<PendingRequest>& out);

    /**
     * Same, with one coalescing cap per tenant id: per-tenant
     * degradation tiers shrink how much the *pressured* tenant
     * coalesces without touching its neighbours' caps. The cap of
     * the DRR-selected head tenant bounds the group (groups never
     * mix tenants).
     *
     * @throws std::invalid_argument when fewer caps or models than
     *         tenants are supplied, or a cap is zero.
     */
    void nextBatch(double core_free_ms,
                   const std::vector<std::size_t>& cap_by_tenant,
                   double sla_ms,
                   const std::vector<ServiceModel>& service_by_tenant,
                   double straggle, std::vector<PendingRequest>& out);

  private:
    struct EarlierReady
    {
        bool
        operator()(const PendingRequest& a,
                   const PendingRequest& b) const
        {
            if (a.readyMs != b.readyMs)
                return a.readyMs < b.readyMs;
            return a.seq < b.seq;
        }
    };

    using SubQueue = std::set<PendingRequest, EarlierReady>;

    /** Forms one group from sub-queue @p q whose head was already
     *  popped into @p out; @p max_samples bounds the group's total
     *  samples (WFQ deficit), 0 = unbounded. Returns total samples. */
    std::size_t formGroup(SubQueue& q, double core_free_ms,
                          std::size_t cap, double sla_ms,
                          const ServiceModel& service, double straggle,
                          std::size_t max_samples,
                          std::vector<PendingRequest>& out);

    /** Shared selection + formation; @p service points at one model
     *  (per_tenant false) or one per tenant id (per_tenant true), and
     *  @p cap_by_tenant (nullable) overrides @p cap with the head
     *  tenant's own coalescing cap. */
    void nextBatchImpl(double core_free_ms, std::size_t cap,
                       const std::size_t *cap_by_tenant, double sla_ms,
                       const ServiceModel *service, bool per_tenant,
                       double straggle,
                       std::vector<PendingRequest>& out);

    BatchConfig _cfg;
    WfqConfig _wfq;             //!< weights empty in single-tenant mode
    bool _fair = false;
    std::vector<SubQueue> _sub; //!< one per tenant (1 when !_fair)
    std::vector<double> _deficit;
    std::size_t _cursor = 0;    //!< DRR round-robin position
    std::size_t _count = 0;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_BATCH_QUEUE_HPP
