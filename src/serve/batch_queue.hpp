/**
 * @file
 * Deadline-aware request coalescing queue for the serving loop.
 *
 * BatchQueue holds pending request attempts in deterministic
 * (readyMs, seq) order and forms dispatch groups under three bounds:
 *
 *  - **capacity**: at most `cap` member requests per dispatch (the
 *    caller shrinks the cap with the degradation tier — under tail
 *    pressure the server coalesces less before it sheds at all);
 *  - **linger**: a follower may join only if it is ready within
 *    maxLingerMs of the head's ready time (or before the core frees
 *    up anyway, which costs nothing to wait for);
 *  - **deadline**: the whole group must finish by the *tightest*
 *    member deadline under the batch-size-aware service estimate
 *    serviceMs(total samples) — a request is never coalesced past its
 *    deadline. Retries are always *admitted* (matching the unbatched
 *    path) but still carry a fresh SLA-derived deadline from their
 *    backoff expiry, so a stale retry bounds its group like any other
 *    member instead of being exempt from the deadline check.
 *
 * Formation is greedy in queue order and purely a function of the
 * queue contents and the arguments, so batched sessions stay
 * bit-reproducible on the virtual clock.
 */

#ifndef DLRMOPT_SERVE_BATCH_QUEUE_HPP
#define DLRMOPT_SERVE_BATCH_QUEUE_HPP

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include "serve/service_model.hpp"

namespace dlrmopt::serve
{

/** Dynamic-batching knobs for the serving loop. */
struct BatchConfig
{
    bool enabled = false;        //!< coalesce queued requests

    std::size_t maxRequests = 8; //!< coalescing cap at tier 0

    /** How long (virtual ms) the head may wait for followers beyond
     *  its ready time. 0 still coalesces whatever is ready by the
     *  time a core frees up. */
    double maxLingerMs = 0.0;

    /** @throws std::invalid_argument on a zero cap or negative /
     *          non-finite linger. */
    void validate() const;
};

/** One queued request attempt awaiting dispatch. */
struct PendingRequest
{
    double readyMs = 0.0;     //!< earliest virtual start
    std::uint64_t seq = 0;    //!< deterministic tie-break
    std::uint64_t req = 0;    //!< request id
    std::uint64_t tries = 0;  //!< attempts already burned
    double arrivalMs = 0.0;   //!< original arrival (deadline anchor)
    std::size_t samples = 0;  //!< batch size of this request
};

/**
 * Deterministic coalescing queue. Not thread-safe; the serving loop
 * owns it and advances it on the virtual clock.
 */
class BatchQueue
{
  public:
    explicit BatchQueue(const BatchConfig& cfg);

    void push(const PendingRequest& r);

    bool empty() const { return _pending.empty(); }
    std::size_t size() const { return _pending.size(); }

    /** Ready time of the next head; queue must be non-empty. */
    double headReadyMs() const { return _pending.begin()->readyMs; }

    /**
     * Pops the head and every compatible follower into @p out (head
     * first, then queue order). The head is always dispatched — even
     * when it alone cannot meet its deadline, in which case it is
     * returned solo so the caller can shed it; followers only join
     * when every member's deadline stays feasible.
     *
     * @param core_free_ms When the dispatching core frees up.
     * @param cap Max member count this dispatch (tier-shrunk).
     * @param sla_ms Per-request deadline offset from arrival.
     * @param service Batch-size-aware service estimate.
     * @param straggle Service multiplier of the dispatching core.
     * @param out Reused output buffer (cleared first).
     */
    void nextBatch(double core_free_ms, std::size_t cap, double sla_ms,
                   const ServiceModel& service, double straggle,
                   std::vector<PendingRequest>& out);

  private:
    struct EarlierReady
    {
        bool
        operator()(const PendingRequest& a,
                   const PendingRequest& b) const
        {
            if (a.readyMs != b.readyMs)
                return a.readyMs < b.readyMs;
            return a.seq < b.seq;
        }
    };

    BatchConfig _cfg;
    std::set<PendingRequest, EarlierReady> _pending;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_BATCH_QUEUE_HPP
