/**
 * @file
 * Batch-size-aware service-time model for the serving layer.
 *
 * The virtual-clock serving loops (Server, Router, the shedding queue
 * simulator) need a deterministic estimate of how long one dispatch
 * takes. A single scalar per-request number cannot price coalesced
 * batches: real DLRM forwards have a fixed per-dispatch cost (kernel
 * launch, small-batch GEMM inefficiency, stage setup) plus a marginal
 * per-sample cost, which is exactly why coalescing k small requests
 * into one dispatch beats k dispatches. ServiceModel is that affine
 * model: serviceMs(n) = baseMs + perSampleMs * n, calibrated from
 * measured forwards, with constant(ms) reproducing the legacy scalar
 * behaviour bit-for-bit (serviceMs(n) == ms for every n).
 */

#ifndef DLRMOPT_SERVE_SERVICE_MODEL_HPP
#define DLRMOPT_SERVE_SERVICE_MODEL_HPP

#include <cstddef>
#include <vector>

#include "core/dlrm.hpp"

namespace dlrmopt::serve
{

/** Affine batch-size -> service-time model (virtual milliseconds). */
struct ServiceModel
{
    double baseMs = 0.0;      //!< fixed cost per dispatch
    double perSampleMs = 1.0; //!< marginal cost per sample

    /** Estimated service time for one dispatch of @p samples. */
    double
    serviceMs(std::size_t samples) const
    {
        return baseMs + perSampleMs * static_cast<double>(samples);
    }

    /**
     * Batch-size-independent model: serviceMs(n) == ms for every n.
     * Reproduces the legacy scalar `serviceMs` accounting exactly.
     */
    static ServiceModel
    constant(double ms)
    {
        return ServiceModel{ms, 0.0};
    }

    /**
     * Least-squares fit of (batch size, measured ms) pairs. Negative
     * fitted coefficients are clamped to the physical model (a flat
     * fit when the slope comes out negative, a through-origin fit
     * when the intercept does).
     *
     * @throws std::invalid_argument on empty or mismatched inputs.
     */
    static ServiceModel fit(const std::vector<std::size_t>& batch_sizes,
                            const std::vector<double>& measured_ms);

    /** @throws std::invalid_argument unless 0 <= base, 0 <= per,
     *          base + per > 0, and both are finite. */
    void validate() const;
};

/**
 * Two-stage service-time model for the stage-pipelined dispatch.
 *
 * The streaming serving mode splits one dispatch into a memory-bound
 * gather stage (sparse coalesce + embedding bag) and a compute-bound
 * stage (bottom MLP + interaction + top MLP), run on disjoint core
 * groups. Pricing that pipeline needs per-stage times: sequential
 * (unpipelined) cost is the sum of the stages, but once the pipeline
 * is full each new dispatch only costs the *slower* stage — the other
 * stage's work hides under it. sequentialMs() is what deadline
 * feasibility must use (the first dispatch through an empty pipeline
 * pays the full sum); pipelinedMs() is the steady-state marginal cost
 * ServiceModel-based planners use to price throughput.
 */
struct StageServiceModel
{
    ServiceModel gather;  //!< embedding-gather stage cost
    ServiceModel compute; //!< interaction + MLP stage cost

    double gatherMs(std::size_t n) const { return gather.serviceMs(n); }
    double computeMs(std::size_t n) const
    {
        return compute.serviceMs(n);
    }

    /** Unpipelined dispatch cost: both stages back to back. */
    double
    sequentialMs(std::size_t n) const
    {
        return gatherMs(n) + computeMs(n);
    }

    /** Steady-state per-dispatch cost of a full pipeline. */
    double
    pipelinedMs(std::size_t n) const
    {
        const double g = gatherMs(n), c = computeMs(n);
        return g > c ? g : c;
    }

    /**
     * Splits a calibrated whole-forward model into stages by the
     * fraction of time the gather stage accounts for.
     *
     * @throws std::invalid_argument unless 0 < gather_fraction < 1.
     */
    static StageServiceModel split(const ServiceModel& total,
                                   double gather_fraction);

    /** @throws std::invalid_argument when either stage is invalid. */
    void validate() const;
};

/**
 * Piecewise-constant service-time truth over the virtual clock.
 *
 * A single ServiceModel describes a *stationary* service process.
 * Real fleets drift: caches cool overnight, co-located batch jobs
 * steal bandwidth at peak, a microcode update changes per-sample
 * cost. A ServiceTimeline scripts that drift as dated segments —
 * from each segment's startMs onward its model is the *actual*
 * service time — so sessions exercising in-flight ServiceModel
 * recalibration (serve/capacity.hpp) stay bit-reproducible: the
 * controller's stale estimate diverges from this scripted truth, and
 * the recalibrator closes the gap from observed dispatch times.
 */
class ServiceTimeline
{
  public:
    /** A stationary timeline: one model forever (no drift). */
    explicit ServiceTimeline(const ServiceModel& constant_model);

    /**
     * @param segments (startMs, model) pairs; sorted internally. The
     *        earliest segment is clamped to start at 0.
     *
     * @throws std::invalid_argument on an empty list, a negative /
     *         non-finite startMs, or a model failing validate().
     */
    struct Segment
    {
        double startMs = 0.0;
        ServiceModel model;
    };
    explicit ServiceTimeline(std::vector<Segment> segments);

    /** The model in force at virtual time @p now_ms. */
    const ServiceModel& at(double now_ms) const;

    /** True when more than one distinct regime is scripted. */
    bool drifts() const { return _segments.size() > 1; }

    std::size_t numSegments() const { return _segments.size(); }

  private:
    std::vector<Segment> _segments; //!< ascending startMs
};

/**
 * Calibrates a ServiceModel from real forwards: runs the model at
 * each probe batch size (@p batch truncated per probe), takes the
 * fastest of @p reps wall-clock repetitions per size, and fits.
 *
 * @param probe_sizes Batch sizes to measure (clamped to the batch).
 * @param reps Repetitions per size (>= 1; the min is kept).
 *
 * @throws std::invalid_argument on empty probe sizes or zero reps.
 */
ServiceModel calibrateServiceModel(const core::DlrmModel& model,
                                   const core::Tensor& dense,
                                   const core::SparseBatch& batch,
                                   const std::vector<std::size_t>&
                                       probe_sizes,
                                   std::size_t reps = 3);

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_SERVICE_MODEL_HPP
