/**
 * @file
 * Batch-size-aware service-time model for the serving layer.
 *
 * The virtual-clock serving loops (Server, Router, the shedding queue
 * simulator) need a deterministic estimate of how long one dispatch
 * takes. A single scalar per-request number cannot price coalesced
 * batches: real DLRM forwards have a fixed per-dispatch cost (kernel
 * launch, small-batch GEMM inefficiency, stage setup) plus a marginal
 * per-sample cost, which is exactly why coalescing k small requests
 * into one dispatch beats k dispatches. ServiceModel is that affine
 * model: serviceMs(n) = baseMs + perSampleMs * n, calibrated from
 * measured forwards, with constant(ms) reproducing the legacy scalar
 * behaviour bit-for-bit (serviceMs(n) == ms for every n).
 */

#ifndef DLRMOPT_SERVE_SERVICE_MODEL_HPP
#define DLRMOPT_SERVE_SERVICE_MODEL_HPP

#include <cstddef>
#include <vector>

#include "core/dlrm.hpp"

namespace dlrmopt::serve
{

/** Affine batch-size -> service-time model (virtual milliseconds). */
struct ServiceModel
{
    double baseMs = 0.0;      //!< fixed cost per dispatch
    double perSampleMs = 1.0; //!< marginal cost per sample

    /** Estimated service time for one dispatch of @p samples. */
    double
    serviceMs(std::size_t samples) const
    {
        return baseMs + perSampleMs * static_cast<double>(samples);
    }

    /**
     * Batch-size-independent model: serviceMs(n) == ms for every n.
     * Reproduces the legacy scalar `serviceMs` accounting exactly.
     */
    static ServiceModel
    constant(double ms)
    {
        return ServiceModel{ms, 0.0};
    }

    /**
     * Least-squares fit of (batch size, measured ms) pairs. Negative
     * fitted coefficients are clamped to the physical model (a flat
     * fit when the slope comes out negative, a through-origin fit
     * when the intercept does).
     *
     * @throws std::invalid_argument on empty or mismatched inputs.
     */
    static ServiceModel fit(const std::vector<std::size_t>& batch_sizes,
                            const std::vector<double>& measured_ms);

    /** @throws std::invalid_argument unless 0 <= base, 0 <= per,
     *          base + per > 0, and both are finite. */
    void validate() const;
};

/**
 * Calibrates a ServiceModel from real forwards: runs the model at
 * each probe batch size (@p batch truncated per probe), takes the
 * fastest of @p reps wall-clock repetitions per size, and fits.
 *
 * @param probe_sizes Batch sizes to measure (clamped to the batch).
 * @param reps Repetitions per size (>= 1; the min is kept).
 *
 * @throws std::invalid_argument on empty probe sizes or zero reps.
 */
ServiceModel calibrateServiceModel(const core::DlrmModel& model,
                                   const core::Tensor& dense,
                                   const core::SparseBatch& batch,
                                   const std::vector<std::size_t>&
                                       probe_sizes,
                                   std::size_t reps = 3);

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_SERVICE_MODEL_HPP
