/**
 * @file
 * Common result record for serving sessions, shared by the real
 * request server (serve/server.hpp) and the shedding-aware queueing
 * simulator (serve/queue_sim.hpp) so simulated and real serving paths
 * report comparable numbers.
 */

#ifndef DLRMOPT_SERVE_SERVE_STATS_HPP
#define DLRMOPT_SERVE_SERVE_STATS_HPP

#include <cstddef>
#include <string>

#include "serve/latency_stats.hpp"

namespace dlrmopt::serve
{

/**
 * Outcome counters and latency distribution of one serving session.
 *
 * Latency samples cover *served* requests only; shed and failed
 * requests never produce a latency.
 */
struct ServeStats
{
    std::size_t arrived = 0; //!< requests offered by the load gen
    std::size_t served = 0;  //!< completed within the session
    std::size_t shed = 0;    //!< rejected on arrival by admission ctl
    std::size_t failed = 0;  //!< gave up after exhausting retries
    std::size_t retried = 0; //!< individual retry attempts issued

    LatencyStats latency; //!< end-to-end latency of served requests

    /** Dispatches executed on the virtual clock. Without batching
     *  every attempt is one dispatch; with coalescing enabled,
     *  served / dispatches is the mean coalesced batch size. */
    std::size_t dispatches = 0;

    /** Virtual end time of the last completed dispatch. served /
     *  makespanMs compares sustained throughput across policies over
     *  the same arrival stream. */
    double makespanMs = 0.0;

    double serverUtilization = 0.0; //!< busy time / total capacity

    /** Real kernel wall-clock spent on inference (0 in pure sim). */
    double execTotalMs = 0.0;

    std::size_t degradeEscalations = 0; //!< tier upshifts observed
    int finalTier = 0;                  //!< degradation tier at end

    /** Dispatches executed at reduced precision (bf16/int8 tiers).
     *  quantDispatches > 0 with shed == 0 is the signature of the
     *  quantize-before-shed ladder doing its job. */
    std::size_t quantDispatches = 0;

    /** Virtual busy time of the gather / compute pipeline lanes
     *  (streamed dispatch only; both 0 for unpipelined sessions).
     *  Their overlap is what the streamed mode's makespan win comes
     *  from: gatherBusyMs + computeBusyMs can exceed makespanMs. */
    double gatherBusyMs = 0.0;
    double computeBusyMs = 0.0;

    /** Fraction of arrived requests rejected on arrival. */
    double
    shedRate() const
    {
        return arrived
            ? static_cast<double>(shed) / static_cast<double>(arrived)
            : 0.0;
    }

    /** One-line human-readable summary (served/shed/.../percentiles). */
    std::string summary() const;
};

} // namespace dlrmopt::serve

#endif // DLRMOPT_SERVE_SERVE_STATS_HPP
